// Online: the paper's Remark 2, live — "the dQSQ computation, and the
// generation of results, may start even before the rewriting is complete".
//
// The network starts with nothing but the extensional facts. Peers rewrite
// their own rules lazily, at the moment the evaluation first needs one of
// their adorned relations; delegated rules are installed into the running
// network as messages. The program prints the rewriting trace interleaved
// with the final answers, then renders one diagnosis explanation as
// Graphviz DOT.
//
// Run with: go run ./examples/online
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/diagnosis"
	"repro/internal/dqsq"
	"repro/internal/petri"
	"repro/internal/viz"
)

func main() {
	sys := core.Example()
	seq := alarm.S("b", "p1", "a", "p2", "c", "p1")

	prog, query, err := sys.DiagnosisProgram(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Diagnosis program: %d rules, %d facts — none of it pre-rewritten.\n\n",
		len(prog.Rules), len(prog.Facts))

	res, trace, err := dqsq.RunOnline(prog, query, datalog.Budget{}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Lazy rewriting trace (who rewrote what, in arrival order):")
	for i, e := range trace.Snapshot() {
		fmt.Printf("  %2d. peer %-3s rewrote %s with adornment %s\n", i+1, e.Peer, e.Key.Rel, e.Key.Ad)
	}

	diags := diagnosis.ExtractDiagnoses(res.Store, res.Answers, true)
	fmt.Printf("\n%d explanation(s), identical to the static rewriting's:\n", len(diags))
	for i, cfg := range diags {
		fmt.Printf("  explanation %d:\n", i+1)
		for _, ev := range cfg {
			fmt.Printf("    %s\n", ev)
		}
	}

	fmt.Println("\nGraphviz DOT of the first explanation over the unfolding")
	fmt.Println("(pipe into `dot -Tpng` to render; shaded boxes are the diagnosis):")
	fmt.Println()
	fmt.Print(viz.Diagnosis(petri.Example(), diags[0], 3))
}
