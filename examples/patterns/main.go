// Patterns: the Section 4.4 extensions — hidden transitions and alarm
// patterns.
//
// Part 1 diagnoses a net with an unobservable (silent) transition: the
// explanation must include an event that reported nothing.
//
// Part 2 seeks explanations of the regular pattern a.(b.a)* on the running
// example, the paper's "α.β*.α" shape, using the automaton-encoded
// alarmSeq relation and the depth-bound termination gadget.
//
// Run with: go run ./examples/patterns
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/parser"
)

const hiddenNet = `
# A chain whose middle step is unobservable.
place a p
place b p
place c p
place d p
trans t1 p x : a -> b
trans h  p _ : b -> c
trans t2 p y : c -> d
init a
`

func main() {
	// Part 1: hidden transitions.
	sys, err := core.LoadNet(hiddenNet)
	if err != nil {
		log.Fatal(err)
	}
	seq, _ := core.ParseAlarms("x@p y@p")
	rep, err := sys.Diagnose(seq, core.DQSQ, core.Options{
		Timeout: time.Minute,
		Budget:  datalog.Budget{MaxTermDepth: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Hidden transitions ===")
	fmt.Printf("observed %q; %d explanation(s):\n", parser.FormatAlarms(seq), len(rep.Diagnoses))
	for _, cfg := range rep.Diagnoses {
		for _, ev := range cfg {
			fmt.Printf("  %s\n", ev)
		}
	}
	fmt.Println("the silent event f(h,...) reported nothing yet appears in the explanation.")

	// Part 2: alarm patterns on the running example.
	example := core.Example()
	pat := alarm.Concat(
		alarm.Sym("a", "p2"),
		alarm.Star(alarm.Concat(alarm.Sym("b", "p2"), alarm.Sym("a", "p2"))),
	)
	fmt.Println("\n=== Alarm pattern a.(b.a)* at peer p2 ===")
	diags, err := example.DiagnosePattern(pat, core.Options{
		Timeout: time.Minute,
		Budget:  datalog.Budget{MaxTermDepth: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d explanation(s) within the depth bound:\n", len(diags))
	for i, cfg := range diags {
		fmt.Printf("  explanation %d (%d events):\n", i+1, len(cfg))
		for _, ev := range cfg {
			fmt.Printf("    %s\n", ev)
		}
	}
	fmt.Println("\nexplanations of growing length walk the v/vi cycle of the example net;")
	fmt.Println("the depth bound (Section 4.4's gadget) keeps the computation finite.")
}
