// Quickstart: the paper's running example end to end.
//
// It builds the Figure 1 Petri net, shows its bounded unfolding (Figure
// 2), then diagnoses the alarm sequence (b,p1),(a,p2),(c,p1) from Section
// 2 with all four engines and prints the explanations — including the
// "shaded" configuration {i, iii, iv} of Figure 2.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	sys := core.Example()
	fmt.Println("Peers:", sys.Peers())

	// Figure 2: a branching process of the net.
	u := sys.Unfold(2, 1000)
	fmt.Printf("\nUnfolding prefix to depth 2: %d events, %d conditions\n",
		len(u.Events), len(u.Conditions))
	for _, e := range u.Events {
		fmt.Printf("  %s  (alarm %s at %s)\n", e.Name, e.Alarm, e.Peer)
	}

	// The supervisor receives three alarms over asynchronous channels.
	seq, err := core.ParseAlarms("b@p1 a@p2 c@p1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nObserved sequence: %v\n", seq)

	for _, engine := range []core.Engine{core.Direct, core.Product, core.Naive, core.DQSQ} {
		rep, err := sys.Diagnose(seq, engine, core.Options{Timeout: time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%v] %d explanation(s) in %s\n", engine, len(rep.Diagnoses), rep.Elapsed.Round(time.Millisecond))
		for i, cfg := range rep.Diagnoses {
			fmt.Printf("  explanation %d:\n", i+1)
			for _, ev := range cfg {
				fmt.Printf("    %s\n", ev)
			}
		}
		if rep.TransFacts > 0 {
			fmt.Printf("  materialized prefix: %d events, %d conditions\n", rep.TransFacts, rep.PlaceFacts)
		}
	}

	fmt.Println("\nNote how every engine returns the same two explanations, and how")
	fmt.Println("dQSQ materializes the same prefix as the dedicated algorithm [8].")
}
