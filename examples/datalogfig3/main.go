// Datalogfig3: Figures 3, 4 and 5 of the paper, live.
//
// It parses the three-peer dDatalog program of Figure 3 from its textual
// form, prints the centralized QSQ rewriting (Figure 4) and the
// distributed dQSQ rewriting (Figure 5), then evaluates the query
// Q@r(y) :- R@r("1", y) both ways and shows that they compute the same
// answers from the same amount of materialized data (Theorem 1).
//
// Run with: go run ./examples/datalogfig3
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dqsq"
	"repro/internal/parser"
	"repro/internal/qsq"
	"repro/internal/term"
)

const figure3 = `
% Figure 3: a dDatalog program over peers r, s, t.
R@r(X, Y) :- A@r(X, Y).
R@r(X, Y) :- S@s(X, Z), T@t(Z, Y).
S@s(X, Y) :- R@r(X, Y), B@s(Y, Z).
T@t(X, Y) :- C@t(X, Y).

% Base data.
A@r("1", "2").
A@r("2", "3").
B@s("2", ok).
B@s("3", ok).
C@t("2", "4").
C@t("3", "5").
`

func main() {
	store := term.NewStore()
	prog, err := parser.DistProgram(figure3, store)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 4: the centralized QSQ rewriting of the localized program.
	local := prog.Localize()
	q := datalog.Atom{Rel: "R@r", Args: []term.ID{store.Constant("1"), store.Variable("Y")}}
	rw, err := qsq.Rewrite(local, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 4: centralized QSQ rewriting ===")
	for _, f := range rw.Program.Facts {
		if f.Rel[:3] == "in-" {
			fmt.Println(f.String(store) + ".   % seed")
		}
	}
	for _, r := range rw.Program.Rules {
		fmt.Println(r.String(store))
	}

	// Figure 5: the distributed rewriting, each peer rewriting only its
	// own rules.
	prog2, err := parser.DistProgram(figure3, term.NewStore())
	if err != nil {
		log.Fatal(err)
	}
	s2 := prog2.Store
	pq := ddatalog.At("R", "r", s2.Constant("1"), s2.Variable("Y"))
	drw, err := dqsq.Rewrite(prog2, pq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 5: distributed dQSQ rewriting (note the cross-peer rules) ===")
	for _, r := range drw.Program.Rules {
		cross := ""
		for _, a := range r.Body {
			if a.Peer != r.Head.Peer {
				cross = "   % crosses " + string(a.Peer) + " -> " + string(r.Head.Peer)
			}
		}
		fmt.Println(r.String(s2) + cross)
	}

	// Evaluate both and compare (Theorem 1).
	db, st := rw.Eval(datalog.Budget{})
	qsqAnswers := rw.Answers(db)
	fmt.Printf("\nQSQ:  %d answers, %d facts derived\n", len(qsqAnswers), st.Derived)

	res, err := dqsq.Run(prog2, pq, datalog.Budget{}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dQSQ: %d answers, %d facts derived, %d messages between peers\n",
		len(res.Answers), res.Stats.Derived, res.Stats.Net.MessagesSent)

	if len(qsqAnswers) == len(res.Answers) && st.Derived == res.Stats.Derived {
		fmt.Println("\nTheorem 1 live: same answers, same materialized data — computed by")
		fmt.Println("three autonomous peers exchanging asynchronous messages.")
	} else {
		log.Fatal("Theorem 1 violated!")
	}
}
