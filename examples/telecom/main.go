// Telecom: the motivating scenario of the paper's introduction — a
// telecommunication network of line cards and a shared switch, each peer
// modeled by a Petri net, alarms reported asynchronously to a single
// supervisor who must reconstruct what happened.
//
// A line card failure congests the switch; the switch raises an overload
// alarm; the card is reset. The supervisor sees the three alarms in an
// arbitrary cross-peer order and recovers the causal explanation with
// dQSQ.
//
// Run with: go run ./examples/telecom
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/petri"
)

func main() {
	const lines = 3
	pn := gen.Telecom(lines)
	sys, err := core.NewSystem(pn, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Telecom network: %d line-card peers + 1 switch peer\n", lines)

	// Simulate the fault: line 1 fails, switch overloads, line 1 resets.
	// The supervisor's channel scrambles cross-peer order (per-peer order
	// is preserved — the asynchronous model of Section 2).
	rng := rand.New(rand.NewSource(time.Now().UnixNano()%1000 + 1))
	perPeer := map[petri.Peer][]petri.Alarm{
		"line1":  {"fail", "reset"},
		"switch": {"overload"},
	}
	seq := petri.Interleave(rng, perPeer)
	fmt.Printf("Supervisor observed: %v\n\n", alarm.Seq(seq))

	rep, err := sys.Diagnose(seq, core.DQSQ, core.Options{Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dQSQ found %d explanation(s) (%d unfolding events materialized):\n",
		len(rep.Diagnoses), rep.TransFacts)
	for i, cfg := range rep.Diagnoses {
		fmt.Printf("  explanation %d:\n", i+1)
		for _, ev := range cfg {
			fmt.Printf("    %s\n", ev)
		}
	}

	// Cross-check against the ground-truth search.
	direct, err := sys.Diagnose(seq, core.Direct, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Diagnoses.Equal(direct.Diagnoses) {
		fmt.Println("\ndQSQ agrees with the direct search — Theorem 3 live.")
	} else {
		log.Fatal("engines disagree!")
	}

	// Which line failed? Every explanation blames line1's fail transition.
	fmt.Println("\nRoot cause: the fail event of peer line1 appears in every explanation,")
	fmt.Println("causally before the switch overload — the supervisor can page the right team.")
}
