// Command datalogcli evaluates Datalog and dDatalog programs with every
// strategy in the library, printing answers and evaluation statistics —
// a workbench for the paper's Section 3.
//
// Usage:
//
//	datalogcli -program fig3.dl -query 'R@r("1", Y)' -strategy dqsq
//	datalogcli -program tc.dl   -query 'tc(a, X)'    -strategy qsq
//
// Strategies for centralized programs (no @peers): naive, seminaive, qsq,
// magic. For distributed programs: dnaive, dqsq.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dqsq"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/qsq"
	"repro/internal/term"
)

func main() {
	var (
		progFile = flag.String("program", "", "program file")
		queryStr = flag.String("query", "", `query atom, e.g. 'tc(a, X)' or 'R@r("1", Y)'`)
		strategy = flag.String("strategy", "seminaive", "naive | seminaive | qsq | magic | dnaive | dqsq")
		maxFacts = flag.Int("maxfacts", 0, "fact budget (0 = default)")
		maxDepth = flag.Int("maxdepth", 0, "term depth budget (0 = unlimited)")
		timeout  = flag.Duration("timeout", time.Minute, "distributed evaluation timeout")
	)
	flag.Parse()
	if *progFile == "" || *queryStr == "" {
		fatal(fmt.Errorf("-program and -query are required"))
	}
	src, err := os.ReadFile(*progFile)
	if err != nil {
		fatal(err)
	}
	store := term.NewStore()
	budget := datalog.Budget{MaxFacts: *maxFacts, MaxTermDepth: *maxDepth}

	relName, peer, args, err := parser.Query(*queryStr, store)
	if err != nil {
		fatal(fmt.Errorf("query: %w", err))
	}

	start := time.Now()
	switch *strategy {
	case "naive", "seminaive", "qsq", "magic":
		p, err := parser.Program(string(src), store)
		if err != nil {
			fatal(err)
		}
		if peer != "" {
			fatal(fmt.Errorf("located query %s@%s against a centralized program", relName, peer))
		}
		q := datalog.Atom{Rel: relName, Args: args}
		var rows [][]term.ID
		var st datalog.Stats
		switch *strategy {
		case "naive":
			db, s := p.Naive(budget)
			rows, st = datalog.Answers(db, store, q), s
		case "seminaive":
			db, s := p.SemiNaive(budget)
			rows, st = datalog.Answers(db, store, q), s
		case "qsq":
			rows, _, st, err = qsq.Run(p, q, budget)
			if err != nil {
				fatal(err)
			}
		case "magic":
			rows, _, st, err = magic.Run(p, q, budget)
			if err != nil {
				fatal(err)
			}
		}
		printRows(store, rows)
		fmt.Printf("derived=%d seeded=%d iterations=%d truncated=%v elapsed=%s\n",
			st.Derived, st.Seeded, st.Iterations, st.Truncated, time.Since(start).Round(time.Microsecond))
	case "dnaive", "dqsq":
		p, err := parser.DistProgram(string(src), store)
		if err != nil {
			fatal(err)
		}
		if peer == "" {
			fatal(fmt.Errorf("distributed query needs a peer: R@peer(...)"))
		}
		q := ddatalog.PAtom{Rel: relName, Peer: peer, Args: args}
		if *strategy == "dnaive" {
			res, _, err := ddatalog.Run(p, q, budget, *timeout)
			if err != nil {
				fatal(err)
			}
			printRows(res.Store, res.Answers)
			fmt.Printf("derived=%d replicated=%d messages=%d elapsed=%s\n",
				res.Stats.Derived, res.Stats.Replicated, res.Stats.Net.MessagesSent,
				time.Since(start).Round(time.Microsecond))
		} else {
			res, err := dqsq.Run(p, q, budget, *timeout)
			if err != nil {
				fatal(err)
			}
			printRows(res.Store, res.Answers)
			fmt.Printf("derived=%d replicated=%d messages=%d elapsed=%s\n",
				res.Stats.Derived, res.Stats.Replicated, res.Stats.Net.MessagesSent,
				time.Since(start).Round(time.Microsecond))
		}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
}

func printRows(store *term.Store, rows [][]term.ID) {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = store.String(t)
		}
		lines = append(lines, strings.Join(parts, ", "))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("%d answer(s)\n", len(lines))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datalogcli:", err)
	os.Exit(1)
}
