package main

import (
	"bufio"
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/transport"
)

// peerProc is one spawned peerd process.
type peerProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *lockedBuffer
}

type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// kill sends SIGKILL and reaps the process.
func (p *peerProc) kill() {
	p.cmd.Process.Kill() //nolint:errcheck
	p.cmd.Wait()         //nolint:errcheck
}

// waitForStderr polls for a substring in the process's stderr: the exec
// package copies stderr through a pipe goroutine, so output ordered
// before the stdout ready line can still arrive after it.
func waitForStderr(t *testing.T, p *peerProc, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(p.stderr.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("peerd stderr never contained %q; stderr:\n%s", substr, p.stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startPeerd spawns a peerd and waits for its ready line.
func startPeerd(t *testing.T, bin, name, listen, dataDir string) *peerProc {
	t.Helper()
	cmd := exec.Command(bin, "-name", name, "-listen", listen, "-data-dir", dataDir)
	stderr := &lockedBuffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &peerProc{cmd: cmd, stderr: stderr}
	t.Cleanup(p.kill)
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("peerd %s exited before announcing its address; stderr:\n%s", name, stderr.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "peerd" || fields[1] != "listening" {
		t.Fatalf("unexpected peerd ready line %q", sc.Text())
	}
	p.addr = fields[2]
	return p
}

// TestPeerdKillRestore is the cluster half of the checkpoint subsystem's
// acceptance: a peerd member killed with SIGKILL and restarted from its
// -data-dir checkpoint must rejoin the cluster, and every evaluation —
// including one that was mid-round when the member died — must end with
// exactly the diagnoses, derived-fact count and message count of a
// single-process run.
func TestPeerdKillRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "peerd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/peerd").CombinedOutput(); err != nil {
		t.Fatalf("go build peerd: %v\n%s", err, out)
	}
	dataDir1 := filepath.Join(dir, "n1-data")
	dataDir2 := filepath.Join(dir, "n2-data")
	n1 := startPeerd(t, bin, "n1", "127.0.0.1:0", dataDir1)
	n2 := startPeerd(t, bin, "n2", "127.0.0.1:0", dataDir2)

	drv, err := transport.ListenTCP("driver", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	drv.AddRoute("n1", n1.addr)
	drv.AddRoute("n2", n2.addr)
	cl := &diagnosis.Cluster{
		Transport: drv,
		Nodes:     []string{"n1", "n2"},
		Addrs:     map[string]string{"driver": drv.Addr(), "n1": n1.addr, "n2": n2.addr},
		Retries:   2,
	}
	t.Cleanup(func() { cl.Close() })

	check := func(phase string, pn *petri.PetriNet, seq alarm.Seq, base *diagnosis.Report) {
		t.Helper()
		rep, err := diagnosis.RunDistributed(pn, seq, diagnosis.EngineNaive,
			diagnosis.Options{Timeout: 30 * time.Second}, cl)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if !rep.Diagnoses.Equal(base.Diagnoses) || rep.Derived != base.Derived || rep.Messages != base.Messages {
			t.Fatalf("%s: got %d diagnoses/%d derived/%d messages, want %d/%d/%d",
				phase, len(rep.Diagnoses), rep.Derived, rep.Messages,
				len(base.Diagnoses), base.Derived, base.Messages)
		}
	}

	quickPN, quickSeq := petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1")
	quickBase, err := diagnosis.Run(quickPN, quickSeq, diagnosis.EngineNaive, diagnosis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	check("fresh cluster", quickPN, quickSeq, quickBase)

	// Kill n1 between evaluations and restart it on the same address from
	// its checkpoint. The next evaluation ships a new job generation; the
	// restarted member must accept it and the results stay exact.
	n1.kill()
	n1 = startPeerd(t, bin, "n1", n1.addr, dataDir1)
	waitForStderr(t, n1, "restored checkpoint")
	check("after idle kill+restore", quickPN, quickSeq, quickBase)

	// Kill n1 mid-round: start the longer telecom evaluation, wait until
	// round traffic is flowing, SIGKILL the member, restart it. The
	// restored member refuses the dead round (the driver fails fast and
	// retries under a fresh generation), and the retried evaluation must
	// be exact.
	telePN, teleSeq := gen.Telecom(3), gen.TelecomSeqFixed()
	teleBase, err := diagnosis.Run(telePN, teleSeq, diagnosis.EngineNaive, diagnosis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep *diagnosis.Report
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rep, err := diagnosis.RunDistributed(telePN, teleSeq, diagnosis.EngineNaive,
			diagnosis.Options{Timeout: 30 * time.Second}, cl)
		resCh <- result{rep, err}
	}()
	target := drv.Stats().FramesReceived + 15
	killed := false
	for !killed {
		select {
		case res := <-resCh:
			// The evaluation outran the kill; results must still be exact,
			// but the mid-round phase did not run — fail loudly so the
			// traffic threshold gets fixed rather than silently skipped.
			if res.err != nil {
				t.Fatal(res.err)
			}
			t.Fatalf("evaluation finished before the mid-round kill landed")
		default:
		}
		if drv.Stats().FramesReceived >= target {
			n1.kill()
			killed = true
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	n1 = startPeerd(t, bin, "n1", n1.addr, dataDir1)
	waitForStderr(t, n1, "restored checkpoint")
	res := <-resCh
	if res.err != nil {
		t.Fatalf("mid-round kill+restore: %v", res.err)
	}
	rep := res.rep
	if !rep.Diagnoses.Equal(teleBase.Diagnoses) || rep.Derived != teleBase.Derived || rep.Messages != teleBase.Messages {
		t.Fatalf("mid-round kill+restore: got %d diagnoses/%d derived/%d messages, want %d/%d/%d",
			len(rep.Diagnoses), rep.Derived, rep.Messages,
			len(teleBase.Diagnoses), teleBase.Derived, teleBase.Messages)
	}
	// One more evaluation on the healed cluster.
	check("after mid-round kill+restore", quickPN, quickSeq, quickBase)
	_ = n2
}
