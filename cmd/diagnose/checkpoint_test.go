package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiagnoseCheckpointResume: a run checkpointed after a prefix of the
// alarms and resumed with the rest must print exactly the diagnoses of
// one uninterrupted run, and a checkpoint taken with one engine must
// refuse to resume under another.
func TestDiagnoseCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "diagnose")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diagnose").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnose: %v\n%s", err, out)
	}
	ck := filepath.Join(dir, "ck.dsnp")

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			var stderr []byte
			if ee, ok := err.(*exec.ExitError); ok {
				stderr = ee.Stderr
			}
			t.Fatalf("diagnose %v: %v\n%s", args, err, stderr)
		}
		return string(out)
	}

	run("-example", "-alarms", "b@p1 a@p2", "-checkpoint", ck, "-q")
	resumed := run("-resume", ck, "-alarms", "c@p1", "-q")
	full := run("-example", "-alarms", "b@p1 a@p2 c@p1", "-q")
	if resumed != full {
		t.Fatalf("resumed run diverges from the uninterrupted one:\nresumed:\n%s\nfull:\n%s", resumed, full)
	}

	// Engine mismatch is refused with a clear message.
	out, err := exec.Command(bin, "-resume", ck, "-engine", "naive", "-alarms", "c@p1").CombinedOutput()
	if err == nil {
		t.Fatalf("resuming a dqsq checkpoint under -engine naive succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "cannot resume") {
		t.Fatalf("engine-mismatch refusal lacks a clear message:\n%s", out)
	}

	// Corrupt checkpoints are refused, not half-restored.
	bad := filepath.Join(dir, "bad.dsnp")
	if out, err := exec.Command("cp", ck, bad).CombinedOutput(); err != nil {
		t.Fatalf("cp: %v\n%s", err, out)
	}
	b, err := exec.Command("sh", "-c", "dd if=/dev/zero of="+bad+" bs=1 seek=200 count=64 conv=notrunc 2>/dev/null").CombinedOutput()
	if err != nil {
		t.Fatalf("corrupting checkpoint: %v\n%s", err, b)
	}
	if out, err := exec.Command(bin, "-resume", bad, "-alarms", "c@p1").CombinedOutput(); err == nil {
		t.Fatalf("resuming a corrupted checkpoint succeeded:\n%s", out)
	}
}
