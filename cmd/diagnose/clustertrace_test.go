package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterTraceSmoke is the cluster observability end-to-end: two
// peerd processes with admin endpoints, a traced multi-process diagnosis,
// and three assertions — each /healthz reports ready, each /metrics
// carries engine counters plus Go runtime gauges, and the merged trace
// file spans all three processes.
func TestClusterTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	peerd := build("peerd", "repro/cmd/peerd")
	diagnose := build("diagnose", "repro/cmd/diagnose")

	// startPeer returns the transport address and the admin address, read
	// from the two announce lines in order (transport first).
	startPeer := func(name string) (string, string) {
		t.Helper()
		cmd := exec.Command(peerd, "-name", name, "-listen", "127.0.0.1:0", "-admin", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("peerd %s exited before announcing its address", name)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 || fields[1] != "listening" {
			t.Fatalf("unexpected peerd ready line %q", sc.Text())
		}
		addr := fields[2]
		if !sc.Scan() {
			t.Fatalf("peerd %s exited before announcing its admin address", name)
		}
		fields = strings.Fields(sc.Text())
		if len(fields) != 4 || fields[1] != "admin" {
			t.Fatalf("unexpected peerd admin line %q", sc.Text())
		}
		return addr, fields[3]
	}
	addr1, admin1 := startPeer("n1")
	addr2, admin2 := startPeer("n2")

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Readiness: the admin line prints after the ready bit flips, so by
	// the time the address is known /healthz must answer 200 "ok".
	for _, admin := range []string{admin1, admin2} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			code, body := get("http://" + admin + "/healthz")
			if code == http.StatusOK && strings.TrimSpace(body) == "ok" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s/healthz = %d %q, want 200 ok", admin, code, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	traceFile := filepath.Join(dir, "trace.json")
	args := []string{"-example", "-alarms", "b@p1 a@p2 c@p1", "-engine", "dqsq",
		"-peers", "n1=" + addr1 + ",n2=" + addr2, "-trace", traceFile}
	if out, err := exec.Command(diagnose, args...).CombinedOutput(); err != nil {
		t.Fatalf("diagnose %v: %v\n%s", args, err, out)
	}

	// The merged trace: one file, three processes, named in the metadata.
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	procNames := map[string]bool{}
	for _, e := range file.TraceEvents {
		pids[e.Pid] = true
		if e.Ph == "M" && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procNames[n] = true
			}
		}
	}
	if len(pids) != 3 {
		t.Errorf("merged trace spans %d pids, want 3", len(pids))
	}
	for _, want := range []string{"driver", "n1", "n2"} {
		if !procNames[want] {
			t.Errorf("merged trace has no process named %q (have %v)", want, procNames)
		}
	}

	// Each member's /metrics: engine counters the evaluation drove, plus
	// the runtime gauges.
	for _, admin := range []string{admin1, admin2} {
		code, body := get("http://" + admin + "/metrics")
		if code != http.StatusOK {
			t.Fatalf("%s/metrics = %d", admin, code)
		}
		for _, series := range []string{
			"ddatalog_facts_derived_total",
			"go_goroutines",
			"go_heap_bytes",
			"go_gc_pause_seconds",
			"trace_events_dropped_total",
		} {
			if !strings.Contains(body, series) {
				t.Errorf("%s/metrics missing %s:\n%s", admin, series, body)
			}
		}
	}

	// The per-node trace endpoint serves loadable JSON with spans.
	code, body := get("http://" + admin1 + "/v1/trace")
	if code != http.StatusOK {
		t.Fatalf("/v1/trace = %d", code)
	}
	var nodeTrace map[string]any
	if err := json.Unmarshal([]byte(body), &nodeTrace); err != nil {
		t.Fatalf("node trace not valid JSON: %v", err)
	}
	if events, ok := nodeTrace["traceEvents"].([]any); !ok || len(events) == 0 {
		t.Fatal("node trace has no events")
	}
}
