package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/parser"
)

func TestPickEngines(t *testing.T) {
	for name, want := range map[string]int{
		"direct": 1, "product": 1, "naive": 1, "dqsq": 1, "all": 4,
	} {
		engines, err := pickEngines(name)
		if err != nil || len(engines) != want {
			t.Fatalf("%s: %v %v", name, engines, err)
		}
	}
	if _, err := pickEngines("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestLoadSystem(t *testing.T) {
	if _, err := loadSystem("", false); err == nil {
		t.Fatal("missing flags accepted")
	}
	if _, err := loadSystem("x", true); err == nil {
		t.Fatal("conflicting flags accepted")
	}
	sys, err := loadSystem("", true)
	if err != nil || len(sys.Peers()) != 2 {
		t.Fatalf("example: %v %v", sys, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(path, []byte(parser.FormatNet(core.Example().PN)), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err = loadSystem(path, false)
	if err != nil || len(sys.Peers()) != 2 {
		t.Fatalf("file: %v %v", sys, err)
	}
	if _, err := loadSystem(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestExitStatus(t *testing.T) {
	if got := exitStatus(nil, false); got != 0 {
		t.Fatalf("clean run: %d", got)
	}
	if got := exitStatus(nil, true); got != exitBudget {
		t.Fatalf("truncated report: %d, want %d", got, exitBudget)
	}
	err := fmt.Errorf("eval: %w", datalog.ErrBudget)
	if got := exitStatus(err, false); got != exitBudget {
		t.Fatalf("budget error: %d, want %d", got, exitBudget)
	}
	if got := exitStatus(errors.New("parse"), false); got != exitErr {
		t.Fatalf("plain error: %d, want %d", got, exitErr)
	}
}
