package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// TestDiagnoseWALResume: a run killed between the append and the
// checkpoint write leaves its progress only in the <ck>.wal append log;
// the next -resume must replay it on top of the stale snapshot, report
// the recovery on stderr, and end up byte-identical to an uninterrupted
// run over the whole sequence.
func TestDiagnoseWALResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "diagnose")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diagnose").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnose: %v\n%s", err, out)
	}
	ck := filepath.Join(dir, "ck.dsnp")

	run := func(args ...string) (stdout, stderr string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var errBuf strings.Builder
		cmd.Stderr = &errBuf
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("diagnose %v: %v\n%s", args, err, errBuf.String())
		}
		return string(out), errBuf.String()
	}

	// Checkpoint after the first alarm. The run completed cleanly, so the
	// log holds only a stale record (covered by the snapshot).
	run("-example", "-alarms", "b@p1", "-checkpoint", ck, "-q")

	// Simulate the crash window: the second append was logged (the intent
	// record is in ck.dsnp.wal, alarms-before = 1) but the process died
	// before SaveIncremental — the snapshot still holds one alarm.
	l, err := wal.Open(ck+walSuffix, wal.Options{Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	sw := &snapshot.Writer{}
	sw.Uvarint(1)
	sw.String("a@p2")
	if _, err := l.Append(sw.Body()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, logs := run("-resume", ck, "-alarms", "c@p1", "-q")
	if !strings.Contains(logs, "1 records replayed (1 alarms recovered)") {
		t.Fatalf("-resume stderr does not report the WAL recovery:\n%s", logs)
	}
	full, _ := run("-example", "-alarms", "b@p1 a@p2 c@p1", "-q")
	if resumed != full {
		t.Fatalf("WAL-recovered run diverges from the uninterrupted one:\nresumed:\n%s\nfull:\n%s", resumed, full)
	}

	// A clean resume (nothing pending) reports zero replayed records.
	run("-example", "-alarms", "b@p1 a@p2", "-checkpoint", ck, "-q")
	_, logs = run("-resume", ck, "-alarms", "c@p1", "-q")
	if !strings.Contains(logs, "0 records replayed") {
		t.Fatalf("clean -resume should report zero replayed records:\n%s", logs)
	}
}
