package main

import (
	"fmt"
	"strings"

	"repro/internal/diagnosis"
	"repro/internal/transport"
)

// dialPeers builds the driver side of a peerd cluster from a
// "name=host:port,name=host:port" spec: it binds the driver's own socket
// on listenAddr and routes each named node to its address. The peers are
// spread over the nodes round-robin (diagnosis.RoundRobinAssign).
func dialPeers(spec, listenAddr string) (*diagnosis.Cluster, error) {
	var nodes []string
	addrs := make(map[string]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q: want name=host:port", entry)
		}
		if _, dup := addrs[name]; dup {
			return nil, fmt.Errorf("duplicate -peers node %q", name)
		}
		nodes = append(nodes, name)
		addrs[name] = addr
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers lists no nodes")
	}
	tr, err := transport.ListenTCP("driver", listenAddr)
	if err != nil {
		return nil, err
	}
	addrs["driver"] = tr.Addr()
	for _, n := range nodes {
		tr.AddRoute(n, addrs[n])
	}
	return &diagnosis.Cluster{Transport: tr, Nodes: nodes, Addrs: addrs}, nil
}
