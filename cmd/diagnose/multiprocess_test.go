package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMultiProcessSmoke builds peerd and diagnose, starts two peerd
// processes on ephemeral ports, diagnoses the running example across
// them, and checks the output — diagnoses, message count, fact count —
// against a single-process run of the same binary.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	peerd := build("peerd", "repro/cmd/peerd")
	diagnose := build("diagnose", "repro/cmd/diagnose")

	startPeer := func(name string) string {
		t.Helper()
		cmd := exec.Command(peerd, "-name", name, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		// The ready line is printed once the socket is bound.
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("peerd %s exited before announcing its address", name)
		}
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "peerd" || fields[1] != "listening" {
			t.Fatalf("unexpected peerd ready line %q", line)
		}
		return fields[2]
	}
	addr1 := startPeer("n1")
	addr2 := startPeer("n2")

	run := func(args ...string) string {
		t.Helper()
		// Compare stdout only: the stderr summary line carries wall-clock
		// timing, which of course differs run to run.
		out, err := exec.Command(diagnose, args...).Output()
		if err != nil {
			var stderr []byte
			if ee, ok := err.(*exec.ExitError); ok {
				stderr = ee.Stderr
			}
			t.Fatalf("diagnose %v: %v\n%s%s", args, err, out, stderr)
		}
		return string(out)
	}
	base := []string{"-example", "-alarms", "b@p1 a@p2 c@p1"}
	for _, engine := range []string{"naive", "dqsq"} {
		single := run(append(base, "-engine", engine, "-q")...)
		multi := run(append(base, "-engine", engine, "-q", "-peers", "n1="+addr1+",n2="+addr2)...)
		if single != multi {
			t.Errorf("engine %s: multi-process diagnoses differ\nsingle:\n%s\nmulti:\n%s", engine, single, multi)
		}
		// The full (non-quiet) report prints "derived facts: N, messages: M";
		// those counts must survive the process split too.
		singleFull := run(append(base, "-engine", engine)...)
		multiFull := run(append(base, "-engine", engine, "-peers", "n1="+addr1+",n2="+addr2)...)
		want := statsLine(t, singleFull)
		got := statsLine(t, multiFull)
		if want != got {
			t.Errorf("engine %s: stats line = %q, want %q", engine, got, want)
		}
	}
}

func statsLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "derived facts:") {
			return line
		}
	}
	t.Fatalf("no stats line in output:\n%s", out)
	return ""
}
