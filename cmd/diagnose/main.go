// Command diagnose runs the diagnosis problem of the paper end to end:
// given a distributed safe Petri net and an observed alarm sequence, it
// prints every configuration of the net's unfolding that explains the
// sequence, using any of the four engines.
//
// Usage:
//
//	diagnose -example -alarms "b@p1 a@p2 c@p1" -engine dqsq
//	diagnose -net mynet.txt -alarms "fail@line1 overload@switch" -engine all
//	diagnose -example -alarms "b@p1 a@p2" -checkpoint ck.dsnp
//	diagnose -resume ck.dsnp -alarms "c@p1"
//
// Engines: direct (explicit search), product (the dedicated algorithm of
// reference [8]), naive (naive distributed Datalog), dqsq (distributed
// QSQ — the paper's contribution), all (run and compare every engine).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/diagnosis"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/snapshot"
	"repro/internal/viz"
	"repro/internal/wal"
)

// Exit statuses. exitBudget is distinct so scripts can tell "the answer
// may be incomplete — raise -depth or the budget" from "the input is
// wrong": an evaluation that hit its budget is NOT a successful
// diagnosis.
const (
	exitErr    = 1
	exitBudget = 3
)

func main() {
	var (
		netFile    = flag.String("net", "", "net description file (see docs for format)")
		example    = flag.Bool("example", false, "use the paper's running example net (Figure 1)")
		alarms     = flag.String("alarms", "", `observed alarm sequence, e.g. "b@p1 a@p2 c@p1"`)
		engine     = flag.String("engine", "dqsq", "direct | product | naive | dqsq | all")
		depth      = flag.Int("depth", 0, "term-depth bound (Section 4.4 gadget); 0 = engine default")
		facts      = flag.Int("facts", 0, "materialized-fact budget; 0 = engine default")
		timeout    = flag.Duration("timeout", time.Minute, "distributed evaluation timeout")
		quiet      = flag.Bool("q", false, "print only the diagnoses")
		peers      = flag.String("peers", "", `run the Datalog evaluation across peerd processes: "n1=host:port,n2=host:port"`)
		listen     = flag.String("listen", "127.0.0.1:0", "driver listen address for -peers mode")
		dot        = flag.String("dot", "", "write the explanations as Graphviz DOT to this file ('-' for stdout)")
		trace      = flag.String("trace", "", "write the evaluation as Chrome trace-event JSON to this file ('-' for stdout); open in chrome://tracing or Perfetto")
		checkpoint = flag.String("checkpoint", "", "write a session checkpoint to this file after the run (resume with -resume)")
		resume     = flag.String("resume", "", "resume from a checkpoint file; the net and engine come from it and -alarms extend its sequence")
	)
	flag.Parse()

	seq, err := core.ParseAlarms(*alarms)
	if err != nil {
		fatal(err)
	}
	engines, err := pickEngines(*engine)
	if err != nil {
		fatal(err)
	}
	opt := core.Options{
		Timeout: *timeout,
		Budget:  datalog.Budget{MaxTermDepth: *depth, MaxFacts: *facts},
	}
	var tw *obs.ChromeTraceWriter
	if *trace != "" {
		tw = obs.NewChromeTraceWriter(-1) // a one-shot CLI run keeps everything
		opt.Tracer = tw
	}

	if *checkpoint != "" || *resume != "" {
		if *peers != "" {
			fatal(errors.New("-checkpoint/-resume cannot combine with -peers"))
		}
		runCheckpointed(*resume, *checkpoint, *netFile, *example, engines, seq, opt, tw, *trace, *dot, *quiet)
		return
	}

	sys, err := loadSystem(*netFile, *example)
	if err != nil {
		fatal(err)
	}

	diagnose := func(e core.Engine) (*core.Report, error) { return sys.Diagnose(seq, e, opt) }
	var cl *diagnosis.Cluster
	if *peers != "" {
		var err error
		cl, err = dialPeers(*peers, *listen)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		for _, e := range engines {
			if e != core.Naive && e != core.DQSQ {
				fatal(fmt.Errorf("engine %v cannot run distributed; -peers supports naive and dqsq", e))
			}
		}
		diagnose = func(e core.Engine) (*core.Report, error) {
			return diagnosis.RunDistributed(sys.PN, seq, e, opt, cl)
		}
	}

	start := time.Now()
	var prev *core.Report
	truncated := false
	for _, e := range engines {
		rep, err := diagnose(e)
		if err != nil {
			exit(fmt.Errorf("%v: %w", e, err), exitStatus(err, false))
		}
		printReport(rep, *quiet)
		truncated = truncated || rep.Truncated
		if prev != nil && !prev.Diagnoses.Equal(rep.Diagnoses) {
			fatal(fmt.Errorf("engines %v and %v disagree", prev.Engine, rep.Engine))
		}
		prev = rep
	}
	if *dot != "" && prev != nil {
		out := viz.Report(sys.PN, prev)
		if *dot == "-" {
			fmt.Print(out)
		} else if err := os.WriteFile(*dot, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	}
	if tw != nil {
		// With -peers the trace is cluster-wide: the driver's own spans plus
		// every member's shipped telemetry, offset-corrected onto the
		// driver's clock, in one file.
		var err error
		if cl != nil {
			err = writeClusterTrace(tw, cl, *trace)
		} else {
			err = writeTrace(tw, *trace)
		}
		if err != nil {
			fatal(err)
		}
		dropped := tw.Dropped()
		if cl != nil {
			dropped += cl.TraceDropped()
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "diagnose: %d trace events dropped by buffer bounds; the trace is incomplete\n", dropped)
		}
	}
	if prev != nil {
		fmt.Fprintf(os.Stderr, "diagnose: %d peers, %d messages, %d facts derived, %.1fms elapsed\n",
			len(sys.Peers()), prev.Messages, prev.Derived,
			float64(time.Since(start).Microseconds())/1000)
	}
	if truncated {
		exit(errors.New("evaluation hit a budget or depth bound; the diagnosis above may be incomplete"),
			exitBudget)
	}
}

// runCheckpointed is the -checkpoint/-resume path: a single-engine
// incremental session that can be saved after the run and picked up
// later. Resuming restores the net, engine, options and warm engine
// state from the snapshot — a resumed dQSQ session continues exactly
// where the checkpointed one stopped — and -alarms extend its sequence.
func runCheckpointed(resume, checkpoint, netFile string, example bool,
	engines []core.Engine, seq alarm.Seq, opt core.Options,
	tw *obs.ChromeTraceWriter, tracePath, dot string, quiet bool) {
	if len(engines) != 1 {
		fatal(errors.New("-checkpoint/-resume need a single -engine, not all"))
	}
	engineSet := false
	flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })

	var inc *core.Incremental
	if resume != "" {
		if netFile != "" || example {
			fatal(errors.New("-resume carries its net; drop -net/-example"))
		}
		var err error
		if inc, err = core.LoadIncremental(resume); err != nil {
			fatal(err)
		}
		if engineSet && inc.Engine() != engines[0] {
			fatal(fmt.Errorf("checkpoint %s was taken with engine %v; -engine %v cannot resume it",
				resume, inc.Engine(), engines[0]))
		}
		snapped := len(inc.Seq())
		records, recovered := replayCheckpointWAL(resume, inc)
		fmt.Fprintf(os.Stderr, "diagnose: resumed %s (%d alarms in checkpoint); wal: %d records replayed (%d alarms recovered)\n",
			resume, snapped, records, recovered)
		if tw != nil {
			inc.SetTracer(tw)
		}
	} else {
		sys, err := loadSystem(netFile, example)
		if err != nil {
			fatal(err)
		}
		if inc, err = sys.NewIncremental(engines[0], opt); err != nil {
			fatal(err)
		}
	}

	// With -checkpoint, every append intent is logged (and fsynced) to
	// <checkpoint>.wal before the evaluation runs: a run killed between
	// the append and the snapshot write leaves its progress in the log,
	// and the next -resume replays it on top of the old snapshot.
	var ckLog *wal.Log
	if checkpoint != "" {
		var err error
		if ckLog, err = wal.Open(checkpoint+walSuffix, wal.Options{Fsync: wal.SyncAlways}); err != nil {
			fmt.Fprintf(os.Stderr, "diagnose: wal unavailable (%v); checkpointing without it\n", err)
		}
	}

	rep := inc.Report()
	if len(seq) > 0 {
		if ckLog != nil {
			sw := &snapshot.Writer{}
			sw.Uvarint(uint64(len(inc.Seq())))
			sw.String(parser.FormatAlarms(seq))
			if _, err := ckLog.Append(sw.Body()); err != nil {
				fmt.Fprintf(os.Stderr, "diagnose: wal append failed (%v); this run's progress is snapshot-only\n", err)
			}
		}
		var err error
		if rep, err = inc.Append(seq, 0); err != nil {
			exit(fmt.Errorf("%v: %w", inc.Engine(), err), exitStatus(err, false))
		}
	}
	if rep == nil {
		fatal(errors.New("nothing to diagnose: the session has no alarms (give -alarms)"))
	}
	printReport(rep, quiet)
	if dot != "" {
		out := viz.Report(inc.System().PN, rep)
		if dot == "-" {
			fmt.Print(out)
		} else if err := os.WriteFile(dot, []byte(out), 0o644); err != nil {
			fatal(err)
		}
	}
	if tw != nil {
		if err := writeTrace(tw, tracePath); err != nil {
			fatal(err)
		}
	}
	if checkpoint != "" {
		n, err := core.SaveIncremental(checkpoint, inc)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "diagnose: checkpoint written to %s (%d bytes, %d alarms)\n",
			checkpoint, n, len(inc.Seq()))
		if ckLog != nil {
			// The snapshot covers everything; the log prefix is redundant.
			ckLog.Truncate(ckLog.LastSeq()) //nolint:errcheck // compaction is advisory
		}
	}
	if ckLog != nil {
		ckLog.Close() //nolint:errcheck // records were fsynced on append
	}
	if rep.Truncated {
		exit(errors.New("evaluation hit a budget or depth bound; the diagnosis above may be incomplete"),
			exitBudget)
	}
}

// walSuffix names the append log next to a checkpoint file: ck.dsnp's
// log lives at ck.dsnp.wal.
const walSuffix = ".wal"

// replayCheckpointWAL applies the checkpoint's append log on top of a
// freshly loaded session: records whose alarms-before mark lines up with
// the session's current sequence length are progress the snapshot never
// absorbed (the run was killed between the append and the snapshot
// write); anything else is a stale, already-covered record and is
// skipped. Returns how many records and alarms were recovered. A missing
// or unreadable log recovers nothing — the snapshot alone is a complete
// session.
func replayCheckpointWAL(path string, inc *core.Incremental) (records, alarms int) {
	l, err := wal.Open(path+walSuffix, wal.Options{Fsync: wal.SyncAlways})
	if err != nil {
		return 0, 0
	}
	defer l.Close() //nolint:errcheck // read-only use
	err = l.Replay(1, func(seq uint64, payload []byte) error {
		r := snapshot.NewReader(payload)
		before := int(r.Uvarint())
		text := r.String()
		if r.Finish() != nil || before != len(inc.Seq()) {
			return nil
		}
		obs, err := core.ParseAlarms(text)
		if err != nil {
			return nil
		}
		if _, err := inc.Append(obs, 0); err != nil {
			return fmt.Errorf("replaying logged append %q: %w", text, err)
		}
		records++
		alarms += len(obs)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diagnose: wal replay stopped: %v\n", err)
	}
	return records, alarms
}

// exitStatus classifies a run outcome: budget exhaustion (by error or by
// a truncated report) gets the distinct exitBudget status.
func exitStatus(err error, truncated bool) int {
	if truncated || errors.Is(err, datalog.ErrBudget) {
		return exitBudget
	}
	if err != nil {
		return exitErr
	}
	return 0
}

func loadSystem(netFile string, example bool) (*core.System, error) {
	switch {
	case example && netFile != "":
		return nil, fmt.Errorf("use either -net or -example")
	case example:
		return core.Example(), nil
	case netFile != "":
		text, err := os.ReadFile(netFile)
		if err != nil {
			return nil, err
		}
		return core.LoadNet(string(text))
	default:
		return nil, fmt.Errorf("one of -net or -example is required")
	}
}

func pickEngines(name string) ([]core.Engine, error) {
	switch name {
	case "direct":
		return []core.Engine{core.Direct}, nil
	case "product":
		return []core.Engine{core.Product}, nil
	case "naive":
		return []core.Engine{core.Naive}, nil
	case "dqsq":
		return []core.Engine{core.DQSQ}, nil
	case "all":
		return []core.Engine{core.Direct, core.Product, core.Naive, core.DQSQ}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func printReport(rep *diagnosis.Report, quiet bool) {
	if !quiet {
		fmt.Printf("== engine %v (%.1fms)\n", rep.Engine, float64(rep.Elapsed.Microseconds())/1000)
	}
	if len(rep.Diagnoses) == 0 {
		fmt.Println("no explanation: the sequence is inconsistent with the net")
	}
	for i, cfg := range rep.Diagnoses {
		fmt.Printf("diagnosis %d (%d events):\n", i+1, len(cfg))
		for _, e := range cfg {
			fmt.Printf("  %s\n", e)
		}
	}
	if quiet {
		return
	}
	if rep.TransFacts > 0 || rep.PlaceFacts > 0 {
		fmt.Printf("materialized unfolding prefix: %d events, %d conditions\n", rep.TransFacts, rep.PlaceFacts)
	}
	if rep.Derived > 0 {
		fmt.Printf("derived facts: %d, messages: %d\n", rep.Derived, rep.Messages)
	}
	if rep.Truncated {
		fmt.Println("warning: a budget bound was hit; the answer may be incomplete")
	}
	fmt.Println()
}

// writeTrace exports the captured evaluation trace.
func writeTrace(tw *obs.ChromeTraceWriter, dest string) error {
	var buf bytes.Buffer
	if err := tw.WriteJSON(&buf); err != nil {
		return err
	}
	return writeTraceFile(buf, dest)
}

// writeClusterTrace merges the driver's trace with the member telemetry
// the cluster harvested into a single timeline spanning every process.
func writeClusterTrace(tw *obs.ChromeTraceWriter, cl *diagnosis.Cluster, dest string) error {
	procs := append([]obs.ProcessTrace{tw.Export("driver")}, cl.ProcessTraces()...)
	var buf bytes.Buffer
	if err := obs.WriteClusterJSON(&buf, procs); err != nil {
		return err
	}
	return writeTraceFile(buf, dest)
}

func writeTraceFile(buf bytes.Buffer, dest string) error {
	if dest == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(dest, buf.Bytes(), 0o644)
}

func fatal(err error) { exit(err, exitErr) }

func exit(err error, status int) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(status)
}
