package main

import (
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/petri"
)

// TestPoolWorkerKillMigration is the end-to-end pool acceptance: a
// diagnosed frontend schedules sessions onto three peerd workers, one
// worker dies by SIGKILL mid-session and another drains via SIGTERM,
// and every session must keep answering with zero acknowledged-append
// loss — final diagnoses identical to an uninterrupted in-process run.
func TestPoolWorkerKillMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	diagnosedBin := filepath.Join(dir, "diagnosed")
	peerdBin := filepath.Join(dir, "peerd")
	if out, err := exec.Command("go", "build", "-o", diagnosedBin, "repro/cmd/diagnosed").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnosed: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", peerdBin, "repro/cmd/peerd").CombinedOutput(); err != nil {
		t.Fatalf("go build peerd: %v\n%s", err, out)
	}

	spawn := func(bin string, args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		return cmd
	}

	// Three workers, each with a pool transport and an admin endpoint.
	workerAddrs := make([]string, 3)
	adminAddrs := make([]string, 3)
	workerCmds := make([]*exec.Cmd, 3)
	for i := range workerAddrs {
		workerAddrs[i] = freeAddr(t)
		adminAddrs[i] = freeAddr(t)
		workerCmds[i] = spawn(peerdBin,
			"-name", "pool-w"+string(rune('1'+i)),
			"-pool", workerAddrs[i],
			"-admin", adminAddrs[i])
	}
	for _, a := range adminAddrs {
		waitReady(t, "http://"+a)
	}

	feAddr := freeAddr(t)
	feBase := "http://" + feAddr
	spawn(diagnosedBin, "-addr", feAddr, "-pool", strings.Join(workerAddrs, ","))
	waitReady(t, feBase)

	// Reference: the full alarm sequence on a warm in-process engine.
	alarms := []string{"b@p1", "a@p2", "c@p1"}
	netText := parser.FormatNet(petri.Example())
	sys, err := core.LoadNet(netText)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sys.NewIncremental(core.DQSQ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want *core.Report
	for _, a := range alarms {
		seq, err := core.ParseAlarms(a)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = inc.Append(seq, 0); err != nil {
			t.Fatal(err)
		}
	}

	// One session per worker (least-loaded spreads them), first alarm
	// acknowledged everywhere before any failure is injected.
	ids := make([]string, 3)
	for i := range ids {
		var created struct {
			ID string `json:"id"`
		}
		if code := postJSON(t, feBase+"/v1/sessions", map[string]string{"net": netText, "engine": "dqsq"}, &created); code != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids[i] = created.ID
	}
	appendAll := func(alarm string) {
		t.Helper()
		for _, id := range ids {
			if code := postJSON(t, feBase+"/v1/sessions/"+id+"/alarms",
				map[string]string{"alarms": alarm}, nil); code != http.StatusOK {
				t.Fatalf("append %q to %s: status %d", alarm, id, code)
			}
		}
	}
	appendAll(alarms[0])

	// Kill -9 one worker and SIGTERM-drain another: at most one worker
	// is untouched, so migration provably happened for most sessions.
	workerCmds[0].Process.Kill()                  //nolint:errcheck
	workerCmds[0].Wait()                          //nolint:errcheck
	workerCmds[1].Process.Signal(syscall.SIGTERM) //nolint:errcheck

	// The drained worker's /healthz must say so — 503 with a "draining"
	// body, distinguishable from the killed worker (which refuses TCP).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + adminAddrs[1] + "/healthz")
		if err == nil {
			body := make([]byte, 64)
			n, _ := resp.Body.Read(body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body[:n]), "draining") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("drained worker's /healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every session — including those homed on the dead and draining
	// workers — absorbs the remaining alarms without losing the first.
	for _, a := range alarms[1:] {
		appendAll(a)
	}
	for _, id := range ids {
		var got struct {
			Alarms int `json:"alarms"`
			Report *wireReport
		}
		if code := getJSON(t, feBase+"/v1/sessions/"+id, &got); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, code)
		}
		if got.Alarms != len(alarms) {
			t.Fatalf("session %s holds %d alarms, want %d (an acknowledged append was lost)", id, got.Alarms, len(alarms))
		}
		if !reflect.DeepEqual(got.Report.Diagnoses, [][]string(want.Diagnoses)) {
			t.Fatalf("session %s diagnoses diverge after worker failure:\ngot  %v\nwant %v", id, got.Report.Diagnoses, want.Diagnoses)
		}
		if got.Report.Derived != want.Derived || got.Report.Messages != want.Messages {
			t.Fatalf("session %s counters diverge: got %d derived/%d messages, want %d/%d",
				id, got.Report.Derived, got.Report.Messages, want.Derived, want.Messages)
		}
	}

	// The survivors absorbed at least one migration (the frontend's
	// metric counts both the kill recovery and the drain).
	if v, ok := scrapeMetric(t, feBase, "pool_migrations_total"); !ok || v < 1 {
		t.Fatalf("pool_migrations_total = %v (present %v), want >= 1", v, ok)
	}
	// New placements still work with one worker dead and one draining.
	var fresh struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, feBase+"/v1/sessions", map[string]string{"net": netText}, &fresh); code != http.StatusCreated {
		t.Fatalf("post-failure create: status %d", code)
	}
}
