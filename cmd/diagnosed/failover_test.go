package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/petri"
)

// getJSON fetches url into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// scrapeMetric reads one metric value line off /metrics ("name value").
func scrapeMetric(t *testing.T, base, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			if _, err := fmt.Sscan(fields[1], &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestDiagnosedFailoverSmoke is the end-to-end failover acceptance: a
// primary streams sessions to a live follower, dies by SIGKILL
// mid-stream, the follower is promoted via the admin endpoint, and the
// promoted server must hold every acknowledged append — its diagnoses
// byte-identical to an uninterrupted in-process run — and accept new
// writes under the bumped epoch.
func TestDiagnosedFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "diagnosed")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diagnosed").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnosed: %v\n%s", err, out)
	}

	pAddr, fAddr := freeAddr(t), freeAddr(t)
	replAddr := freeAddr(t)
	pBase, fBase := "http://"+pAddr, "http://"+fAddr

	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		return cmd
	}

	primary := spawn("-addr", pAddr, "-data-dir", filepath.Join(dir, "primary"),
		"-replicate-listen", replAddr, "-repl-heartbeat", "50ms")
	waitReady(t, pBase)
	spawn("-addr", fAddr, "-data-dir", filepath.Join(dir, "follower"),
		"-follow", replAddr, "-repl-heartbeat", "50ms")
	waitReady(t, fBase)

	// Two sessions over the paper's running example; the reference run
	// mirrors session one's appends on a warm in-process handle.
	alarms := []string{"b@p1", "a@p2", "c@p1"}
	netText := parser.FormatNet(petri.Example())
	sys, err := core.LoadNet(netText)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sys.NewIncremental(core.DQSQ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want *core.Report
	for _, a := range alarms {
		seq, err := core.ParseAlarms(a)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = inc.Append(seq, 0); err != nil {
			t.Fatal(err)
		}
	}

	var sessA, sessB struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, pBase+"/v1/sessions", map[string]string{"net": netText, "engine": "dqsq"}, &sessA); code != http.StatusCreated {
		t.Fatalf("create A: status %d", code)
	}
	if code := postJSON(t, pBase+"/v1/sessions", map[string]string{"net": netText, "engine": "dqsq"}, &sessB); code != http.StatusCreated {
		t.Fatalf("create B: status %d", code)
	}
	for _, a := range alarms {
		if code := postJSON(t, pBase+"/v1/sessions/"+sessA.ID+"/alarms",
			map[string]string{"alarms": a}, nil); code != http.StatusOK {
			t.Fatalf("append %q: status %d", a, code)
		}
	}
	if code := postJSON(t, pBase+"/v1/sessions/"+sessB.ID+"/alarms",
		map[string]string{"alarms": alarms[0]}, nil); code != http.StatusOK {
		t.Fatalf("append B: status %d", code)
	}

	// Wait for the follower to hold every acknowledged append (both
	// sessions at full alarm count), then kill -9 the primary.
	waitFollower := func(id string, alarmCount int) {
		deadline := time.Now().Add(15 * time.Second)
		for {
			var got struct {
				Alarms int `json:"alarms"`
			}
			if code := getJSON(t, fBase+"/v1/sessions/"+id, &got); code == http.StatusOK && got.Alarms == alarmCount {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower never caught up on %s (want %d alarms)", id, alarmCount)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFollower(sessA.ID, len(alarms))
	waitFollower(sessB.ID, 1)

	primary.Process.Kill() //nolint:errcheck
	primary.Wait()         //nolint:errcheck

	// The follower refuses writes until promoted.
	if code := postJSON(t, fBase+"/v1/sessions/"+sessB.ID+"/alarms",
		map[string]string{"alarms": alarms[1]}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-promote append: status %d, want 503", code)
	}
	var promoted struct {
		Epoch uint64 `json:"epoch"`
	}
	if code := postJSON(t, fBase+"/v1/admin/promote", struct{}{}, &promoted); code != http.StatusOK {
		t.Fatalf("promote: status %d", code)
	}
	if promoted.Epoch < 2 {
		t.Fatalf("promote epoch %d, want >= 2", promoted.Epoch)
	}
	if v, ok := scrapeMetric(t, fBase, "repl_epoch"); ok && v < 2 {
		t.Fatalf("repl_epoch gauge %v after promote", v)
	}

	// Zero acked loss: session A's diagnosis on the promoted node is
	// byte-identical to the uninterrupted reference run.
	var got struct {
		Alarms int `json:"alarms"`
		Report *wireReport
	}
	if code := getJSON(t, fBase+"/v1/sessions/"+sessA.ID, &got); code != http.StatusOK {
		t.Fatalf("post-promote GET A: status %d", code)
	}
	if got.Alarms != len(alarms) {
		t.Fatalf("promoted node holds %d alarms for A, want %d", got.Alarms, len(alarms))
	}
	if !reflect.DeepEqual(got.Report.Diagnoses, [][]string(want.Diagnoses)) {
		t.Fatalf("diagnoses diverge across failover:\ngot  %v\nwant %v", got.Report.Diagnoses, want.Diagnoses)
	}
	if got.Report.Derived != want.Derived || got.Report.Messages != want.Messages {
		t.Fatalf("counters diverge across failover: got %d derived/%d messages, want %d/%d",
			got.Report.Derived, got.Report.Messages, want.Derived, want.Messages)
	}

	// The promoted primary serves new writes.
	if code := postJSON(t, fBase+"/v1/sessions/"+sessB.ID+"/alarms",
		map[string]string{"alarms": alarms[1]}, nil); code != http.StatusOK {
		t.Fatalf("post-promote append: status %d", code)
	}
	var fresh struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, fBase+"/v1/sessions", map[string]string{"net": netText}, &fresh); code != http.StatusCreated {
		t.Fatalf("post-promote create: status %d", code)
	}
}
