package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/petri"
	"repro/internal/serve"
)

// freeAddr reserves a TCP port and releases it for the server to take.
// The restart must reuse one address, so :0 auto-assignment cannot work.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitReady polls /healthz until the server answers.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("diagnosed at %s never became ready: %v", base, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

type wireReport struct {
	Diagnoses [][]string `json:"diagnoses"`
	Derived   int        `json:"derived"`
	Messages  int        `json:"messages"`
}

// TestDiagnosedRestartSmoke is the end-to-end durability acceptance for
// the server: stream alarms into a session, kill the process with
// SIGKILL once the write-behind snapshot is on disk, restart it on the
// same address and data dir, and finish the sequence. The final report
// must be byte-identical to an uninterrupted in-process run — same
// diagnoses, same derived-fact count, same message count.
func TestDiagnosedRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "diagnosed")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diagnosed").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnosed: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		waitReady(t, base)
		return cmd
	}

	alarms := []string{"b@p1", "a@p2", "c@p1"}

	// Uninterrupted reference: the same per-alarm appends on a warm
	// in-process handle.
	sys, err := core.LoadNet(parser.FormatNet(petri.Example()))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sys.NewIncremental(core.DQSQ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want *core.Report
	for _, a := range alarms {
		seq, err := core.ParseAlarms(a)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = inc.Append(seq, 0); err != nil {
			t.Fatal(err)
		}
	}

	srv := start()
	var created struct {
		ID string `json:"id"`
	}
	code := postJSON(t, base+"/v1/sessions",
		map[string]string{"net": parser.FormatNet(petri.Example()), "engine": "dqsq"}, &created)
	if code != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d id %q", code, created.ID)
	}
	for _, a := range alarms[:2] {
		if code := postJSON(t, base+"/v1/sessions/"+created.ID+"/alarms",
			map[string]string{"alarms": a}, nil); code != http.StatusOK {
			t.Fatalf("append %q: status %d", a, code)
		}
	}

	// The write-behind snapshot lands without any shutdown; wait until
	// the on-disk file holds both appends (a snapshot of the first append
	// alone can land first), then kill -9.
	snap := filepath.Join(dataDir, created.ID+".dsnp")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sess, err := serve.LoadSessionFile(snap, nil); err == nil && sess.Alarms() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-behind snapshot %s never reached 2 alarms", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Process.Kill() //nolint:errcheck
	srv.Wait()         //nolint:errcheck

	start()
	var got struct {
		Alarms int         `json:"alarms"`
		Report *wireReport `json:"report"`
	}
	resp, err := http.Get(base + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored session GET: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Alarms != 2 {
		t.Fatalf("restored session has %d alarms, want 2", got.Alarms)
	}

	var final struct {
		Report *wireReport `json:"report"`
	}
	if code := postJSON(t, base+"/v1/sessions/"+created.ID+"/alarms",
		map[string]string{"alarms": alarms[2]}, &final); code != http.StatusOK {
		t.Fatalf("append after restart: status %d", code)
	}
	if !reflect.DeepEqual(final.Report.Diagnoses, [][]string(want.Diagnoses)) {
		t.Fatalf("diagnoses diverge after kill -9 + restore:\ngot  %v\nwant %v",
			final.Report.Diagnoses, want.Diagnoses)
	}
	if final.Report.Derived != want.Derived || final.Report.Messages != want.Messages {
		t.Fatalf("counters diverge after kill -9 + restore: got %d derived/%d messages, want %d/%d",
			final.Report.Derived, final.Report.Messages, want.Derived, want.Messages)
	}
}
