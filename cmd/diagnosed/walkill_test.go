package main

import (
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/petri"
)

// TestDiagnosedWALKillSmoke is the zero-loss acceptance for the WAL:
// with -fsync=always and the write-behind snapshot stalled so it can
// NEVER land (-snapshot-delay far beyond the test), every acknowledged
// append exists only in the write-ahead log when the process is killed
// with SIGKILL. The restarted server must replay the session to the
// exact state an uninterrupted run reaches — same diagnoses, same
// derived-fact count, same message count — and keep serving appends.
func TestDiagnosedWALKillSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "diagnosed")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/diagnosed").CombinedOutput(); err != nil {
		t.Fatalf("go build diagnosed: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	start := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, append([]string{"-addr", addr, "-data-dir", dataDir}, args...)...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		})
		waitReady(t, base)
		return cmd
	}

	alarms := []string{"b@p1", "a@p2", "c@p1"}

	// Uninterrupted reference over the full sequence.
	sys, err := core.LoadNet(parser.FormatNet(petri.Example()))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sys.NewIncremental(core.DQSQ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want *core.Report
	for _, a := range alarms {
		seq, err := core.ParseAlarms(a)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = inc.Append(seq, 0); err != nil {
			t.Fatal(err)
		}
	}

	srv := start("-fsync", "always", "-snapshot-delay", "1h")
	var created struct {
		ID string `json:"id"`
	}
	code := postJSON(t, base+"/v1/sessions",
		map[string]string{"net": parser.FormatNet(petri.Example()), "engine": "dqsq"}, &created)
	if code != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d id %q", code, created.ID)
	}
	for _, a := range alarms[:2] {
		if code := postJSON(t, base+"/v1/sessions/"+created.ID+"/alarms",
			map[string]string{"alarms": a}, nil); code != http.StatusOK {
			t.Fatalf("append %q: status %d", a, code)
		}
	}

	// Kill -9 the instant the second append is acknowledged: no snapshot
	// exists (the persister is stalled for an hour), so recovery rides on
	// the fsynced log alone.
	srv.Process.Kill() //nolint:errcheck
	srv.Wait()         //nolint:errcheck

	start("-fsync", "always")
	var got struct {
		Alarms int         `json:"alarms"`
		Report *wireReport `json:"report"`
	}
	resp, err := http.Get(base + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed session GET: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Alarms != 2 {
		t.Fatalf("replayed session has %d alarms, want 2 (acknowledged appends lost)", got.Alarms)
	}

	var final struct {
		Report *wireReport `json:"report"`
	}
	if code := postJSON(t, base+"/v1/sessions/"+created.ID+"/alarms",
		map[string]string{"alarms": alarms[2]}, &final); code != http.StatusOK {
		t.Fatalf("append after restart: status %d", code)
	}
	if !reflect.DeepEqual(final.Report.Diagnoses, [][]string(want.Diagnoses)) {
		t.Fatalf("diagnoses diverge after kill -9 + WAL replay:\ngot  %v\nwant %v",
			final.Report.Diagnoses, want.Diagnoses)
	}
	if final.Report.Derived != want.Derived || final.Report.Messages != want.Messages {
		t.Fatalf("counters diverge after kill -9 + WAL replay: got %d derived/%d messages, want %d/%d",
			final.Report.Derived, final.Report.Messages, want.Derived, want.Messages)
	}
}
