// Command diagnosed is the streaming diagnosis server: it keeps warm
// incremental diagnosis sessions (internal/serve) behind an HTTP/JSON
// API, so a supervisor can open a session on a net once and stream
// alarms to it as they are observed.
//
//	diagnosed -addr :8344
//	diagnosed -addr :8344 -data-dir /var/lib/diagnosed
//
//	POST   /v1/sessions             {"net": "...", "engine": "dqsq", "max_facts": 0}
//	POST   /v1/sessions/{id}/alarms {"alarms": "b@p1 a@p2"}
//	GET    /v1/sessions/{id}
//	DELETE /v1/sessions/{id}
//	POST   /v1/admin/promote
//	GET    /healthz
//	GET    /metrics
//
// With -replicate-listen the server additionally streams its WAL (and
// full session snapshots, when a follower needs a fresh start) to live
// replicas; with -follow ADDR it runs as a read-only follower of the
// primary at ADDR, applying the stream through the same replay path
// boot recovery uses. POST /v1/admin/promote turns a follower into the
// primary: the stream drains, the fencing epoch bumps (persisted to
// <data-dir>/repl.epoch, and stamped on every replication frame, so a
// partitioned ex-primary can never feed promoted nodes again), and the
// mutating endpoints open.
//
// SIGINT/SIGTERM drain gracefully: new work is refused with 503 (plus a
// Retry-After header) while in-flight evaluations finish (bounded by
// -drain-timeout). With -data-dir, sessions are snapshotted to disk on
// every append (write-behind) and on drain, and a restarted server
// restores them: even a kill -9 loses at most the appends that had not
// been flushed yet.
//
// Every request is access-logged to stderr as structured log/slog lines
// (method, path, session, status, duration; /healthz and /metrics polls
// log at debug level and are hidden unless -v). Per-session evaluation
// traces are exported at GET /v1/sessions/{id}/trace; -pprof additionally
// serves the runtime profiles at /debug/pprof/.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/pool"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		maxSessions  = flag.Int("max-sessions", 64, "session table cap (LRU eviction past it)")
		sessionFacts = flag.Int("session-facts", 1<<20, "default per-session fact budget")
		globalFacts  = flag.Int("global-facts", 64<<20, "global reserved-fact budget (503 past it)")
		ttl          = flag.Duration("ttl", 15*time.Minute, "idle session expiry")
		sweepEvery   = flag.Duration("sweep", 30*time.Second, "TTL sweep period")
		evalTimeout  = flag.Duration("eval-timeout", 30*time.Second, "per-append evaluation timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		dataDir      = flag.String("data-dir", "", "directory for session snapshots (enables restart recovery)")
		fsync        = flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
		snapDelay    = flag.Duration("snapshot-delay", 0, "stall each write-behind snapshot (crash-test hook)")
		replListen   = flag.String("replicate-listen", "", "address to stream the WAL to followers on (requires -data-dir)")
		follow       = flag.String("follow", "", "primary replication address to follow; the server starts read-only (requires -data-dir)")
		replHB       = flag.Duration("repl-heartbeat", 500*time.Millisecond, "replication heartbeat interval (must match on both ends)")
		replLagBound = flag.Duration("repl-lag-bound", 15*time.Second, "how stale the replication stream may go before the follower reports unhealthy")
		poolAddrs    = flag.String("pool", "", "comma-separated peerd pool worker addresses; enables frontend mode (sessions run on workers, not in-process)")
		poolListen   = flag.String("pool-listen", "127.0.0.1:0", "transport listen address for pool replies (frontend mode)")
		poolPolicy   = flag.String("pool-policy", "least", "pool placement policy: least (least-loaded) | hash (consistent-hash session affinity)")
		withPprof    = flag.Bool("pprof", false, "serve runtime profiles at /debug/pprof/")
		verbose      = flag.Bool("v", false, "log /healthz and /metrics polls too")
	)
	flag.Parse()

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		slog.Error("bad -fsync", "err", err)
		os.Exit(2)
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if (*replListen != "" || *follow != "") && *dataDir == "" {
		logger.Error("replication requires -data-dir (the WAL is what gets shipped)")
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Config{
		Store: serve.StoreConfig{
			MaxSessions:  *maxSessions,
			SessionFacts: *sessionFacts,
			GlobalFacts:  *globalFacts,
			TTL:          *ttl,
		},
		EvalTimeout:   *evalTimeout,
		SweepEvery:    *sweepEvery,
		DataDir:       *dataDir,
		Fsync:         policy,
		SnapshotDelay: *snapDelay,
		ReadOnly:      *follow != "",
		Logger:        logger,
	})
	start := time.Now()
	srv.Metrics().Gauge("diagnosed_uptime_seconds", func() int64 {
		return int64(time.Since(start).Seconds())
	})

	// Frontend mode: schedule sessions onto a fleet of peerd workers
	// instead of evaluating them in-process.
	var sessPool *pool.Pool
	if *poolAddrs != "" {
		var policy pool.Policy
		switch *poolPolicy {
		case "least":
			policy = pool.LeastLoaded{}
		case "hash":
			policy = pool.ConsistentHash{}
		default:
			logger.Error("bad -pool-policy (want least | hash)", "got", *poolPolicy)
			os.Exit(2)
		}
		var suffix [4]byte
		rand.Read(suffix[:]) //nolint:errcheck // crypto/rand never fails here
		tr, err := transport.ListenTCP("fe-"+hex.EncodeToString(suffix[:]), *poolListen)
		if err != nil {
			logger.Error("pool transport listen failed", "addr", *poolListen, "err", err)
			os.Exit(1)
		}
		sessPool, err = pool.New(pool.Config{
			Transport: tr,
			Workers:   strings.Split(*poolAddrs, ","),
			Policy:    policy,
			Metrics:   srv.Metrics(),
			Logger:    logger,
		})
		if err != nil {
			logger.Error("pool setup failed", "err", err)
			os.Exit(1)
		}
		srv.SetPool(sessPool)
		logger.Info("frontend mode: pooling sessions", "workers", *poolAddrs, "policy", *poolPolicy)
	}

	// Replication: ship the WAL to followers and/or follow a primary.
	// The fencing epoch lives next to the data it fences.
	var (
		replPrimary  *repl.Primary
		replFollower *repl.Follower
	)
	if *replListen != "" || *follow != "" {
		if !srv.ReplEnabled() {
			logger.Error("replication unavailable: the WAL failed to open")
			os.Exit(1)
		}
		epochPath := filepath.Join(*dataDir, repl.EpochFile)
		epoch, err := repl.LoadEpoch(epochPath)
		if err != nil {
			logger.Error("bad epoch file", "path", epochPath, "err", err)
			os.Exit(1)
		}
		if *replListen != "" {
			ln, err := net.Listen("tcp", *replListen)
			if err != nil {
				logger.Error("replication listen failed", "addr", *replListen, "err", err)
				os.Exit(1)
			}
			replPrimary = repl.NewPrimary(srv.WALLog(), srv.ReplSource(), repl.PrimaryOptions{
				Epoch:     epoch,
				Heartbeat: *replHB,
				Metrics:   srv.Metrics(),
				Logger:    logger,
			})
			go func() {
				if err := replPrimary.Serve(ln); err != nil {
					logger.Error("replication serve failed", "err", err)
				}
			}()
			logger.Info("replicating to followers", "listen", *replListen, "epoch", epoch)
		}
		if *follow != "" {
			replFollower = repl.NewFollower(*follow, srv.ReplApplier(), repl.FollowerOptions{
				Epoch:        epoch,
				PersistEpoch: func(e uint64) error { return repl.SaveEpoch(epochPath, e) },
				Heartbeat:    *replHB,
				LagBound:     *replLagBound,
				Metrics:      srv.Metrics(),
				Logger:       logger,
			})
			replFollower.Start()
			srv.Metrics().GaugeFloat("repl_lag_seconds", func() float64 {
				return replFollower.Status().SinceContact.Seconds()
			})
			// Promote: drain the stream, then bump and persist the fencing
			// epoch BEFORE serving writes — the bump is what keeps a
			// partitioned ex-primary from ever feeding this node again. A
			// configured -replicate-listen keeps shipping under the new epoch.
			srv.SetPromote(func() (uint64, error) {
				replFollower.Stop()
				newEpoch := replFollower.Epoch() + 1
				if err := repl.SaveEpoch(epochPath, newEpoch); err != nil {
					return 0, err
				}
				if replPrimary != nil {
					replPrimary.SetEpoch(newEpoch)
				}
				srv.Metrics().SetGauge("repl_epoch", int64(newEpoch))
				logger.Info("promoted: now serving writes", "epoch", newEpoch)
				return newEpoch, nil
			})
			logger.Info("following primary", "addr", *follow, "epoch", epoch, "lag_bound", *replLagBound)
		}
	}

	var handler http.Handler = srv
	if *withPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	handler = accessLog(logger, handler)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", *withPprof)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "timeout", *drainTimeout)
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then the replication stream (it
	// holds the WAL open), then drain in-flight evaluations.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	if replFollower != nil {
		replFollower.Stop()
	}
	if replPrimary != nil {
		replPrimary.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	if sessPool != nil {
		sessPool.Close()
	}
	logger.Info("drained cleanly")
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog wraps h with structured request logging: method, path,
// session (when the path names one), status and duration. Health and
// metrics polls log at debug so they do not drown the interesting lines.
func accessLog(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)

		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start).Round(time.Microsecond).String(),
		}
		if id := sessionID(r.URL.Path); id != "" {
			attrs = append(attrs, "session", id)
		}
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			logger.Debug("request", attrs...)
			return
		}
		logger.Info("request", attrs...)
	})
}

// sessionID extracts the {id} segment of /v1/sessions/{id}[/...] paths.
func sessionID(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
