// Command diagnosed is the streaming diagnosis server: it keeps warm
// incremental diagnosis sessions (internal/serve) behind an HTTP/JSON
// API, so a supervisor can open a session on a net once and stream
// alarms to it as they are observed.
//
//	diagnosed -addr :8344
//
//	POST   /v1/sessions             {"net": "...", "engine": "dqsq", "max_facts": 0}
//	POST   /v1/sessions/{id}/alarms {"alarms": "b@p1 a@p2"}
//	GET    /v1/sessions/{id}
//	DELETE /v1/sessions/{id}
//	GET    /healthz
//	GET    /metrics
//
// SIGINT/SIGTERM drain gracefully: new work is refused with 503 while
// in-flight evaluations finish (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		maxSessions  = flag.Int("max-sessions", 64, "session table cap (LRU eviction past it)")
		sessionFacts = flag.Int("session-facts", 1<<20, "default per-session fact budget")
		globalFacts  = flag.Int("global-facts", 64<<20, "global reserved-fact budget (503 past it)")
		ttl          = flag.Duration("ttl", 15*time.Minute, "idle session expiry")
		sweepEvery   = flag.Duration("sweep", 30*time.Second, "TTL sweep period")
		evalTimeout  = flag.Duration("eval-timeout", 30*time.Second, "per-append evaluation timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Store: serve.StoreConfig{
			MaxSessions:  *maxSessions,
			SessionFacts: *sessionFacts,
			GlobalFacts:  *globalFacts,
			TTL:          *ttl,
		},
		EvalTimeout: *evalTimeout,
		SweepEvery:  *sweepEvery,
	})
	start := time.Now()
	srv.Metrics().Gauge("diagnosed_uptime_seconds", func() int64 {
		return int64(time.Since(start).Seconds())
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "diagnosed: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "diagnosed: %v, draining (up to %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "diagnosed: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain in-flight evaluations.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "diagnosed: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "diagnosed: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "diagnosed: drained cleanly")
}
