// Command unfolder computes bounded prefixes of Petri net unfoldings
// (Definition 4, Figure 2) and prints their events, conditions and
// relations, either with the direct unfolder or through the Section 4.1
// dDatalog program (Theorem 2 live).
//
// Usage:
//
//	unfolder -example -depth 3
//	unfolder -net mynet.txt -depth 4 -via datalog
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/diagnosis"
	"repro/internal/term"
	"repro/internal/unfold"
)

func main() {
	var (
		netFile = flag.String("net", "", "net description file")
		example = flag.Bool("example", false, "use the paper's running example (Figure 1)")
		depth   = flag.Int("depth", 3, "maximum event depth")
		events  = flag.Int("events", 100000, "maximum number of events")
		via     = flag.String("via", "direct", "direct | datalog (evaluate Prog(N,M) instead)")
	)
	flag.Parse()

	var sys *core.System
	switch {
	case *example:
		sys = core.Example()
	case *netFile != "":
		text, err := os.ReadFile(*netFile)
		if err != nil {
			fatal(err)
		}
		s, err := core.LoadNet(string(text))
		if err != nil {
			fatal(err)
		}
		sys = s
	default:
		fatal(fmt.Errorf("one of -net or -example is required"))
	}

	start := time.Now()
	switch *via {
	case "direct":
		u := sys.Unfold(*depth, *events)
		printDirect(u)
	case "datalog":
		printViaDatalog(sys, *depth)
	default:
		fatal(fmt.Errorf("unknown -via %q", *via))
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Microsecond))
}

func printDirect(u *unfold.Unfolding) {
	fmt.Printf("events: %d, conditions: %d, truncated: %v\n",
		len(u.Events), len(u.Conditions), u.Truncated)
	for _, e := range u.Events {
		fmt.Printf("event  %-8s depth=%d alarm=%-4s peer=%-4s %s\n",
			e.Trans, e.Depth, e.Alarm, e.Peer, e.Name)
	}
	for _, c := range u.Conditions {
		producer := unfold.Root
		if c.Pre != nil {
			producer = string(c.Pre.Trans)
		}
		fmt.Printf("cond   %-8s peer=%-4s from=%-8s %s\n", c.Place, c.Peer, producer, c.Name)
	}
}

func printViaDatalog(sys *core.System, depth int) {
	prog, err := sys.UnfoldingProgram()
	if err != nil {
		fatal(err)
	}
	// Term depth 2*depth covers events down to the requested event depth.
	local := prog.Localize()
	db, st := local.SemiNaive(datalog.Budget{MaxTermDepth: 2 * depth})
	var lines []string
	collect := func(base string) {
		for _, name := range db.Names() {
			if !strings.HasPrefix(string(name), base+"@") {
				continue
			}
			for _, tup := range db.Lookup(name).All() {
				lines = append(lines, fmt.Sprintf("%-7s %s", base, render(local.Store, tup)))
			}
		}
	}
	collect(diagnosis.RelTrans)
	collect(diagnosis.RelPlaces)
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("derived=%d iterations=%d truncated=%v\n", st.Derived, st.Iterations, st.Truncated)
}

func render(s *term.Store, tup []term.ID) string {
	parts := make([]string, len(tup))
	for i, t := range tup {
		parts[i] = s.String(t)
	}
	return strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unfolder:", err)
	os.Exit(1)
}
