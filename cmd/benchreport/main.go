// Command benchreport re-runs the reproduction's experiment suite and
// prints the EXPERIMENTS.md tables: Theorem 1 (dQSQ ≡ QSQ), Theorem 4 /
// S1 (materialized prefix: dQSQ = product[8] ≪ naive), S2 (peer scaling),
// S3 (concurrency), and the QSQ-vs-magic-sets ablation.
//
// Usage:
//
//	benchreport                 # every experiment at default sizes
//	benchreport -exp s1 -max 5  # one experiment, custom size
//	benchreport -json           # also write BENCH_<exp>.json per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

// benchDir is where -json drops the BENCH_<exp>.json files ("." in the
// binary; tests point it at a temp dir).
var benchDir = "."

// emitJSON mirrors the -json flag.
var emitJSON = false

func main() {
	var (
		exp        = flag.String("exp", "all", "all | t1 | s1 | s2 | s3 | ablation | placement | trace_overhead | cluster_trace_overhead | transport_overhead | snapshot_overhead | wal_overhead | repl_overhead | pool_overhead | engine_hotpath")
		max        = flag.Int("max", 0, "sweep size override (0 = defaults)")
		jsonOut    = flag.Bool("json", false, "also write machine-readable rows to BENCH_<exp>.json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
	)
	flag.Parse()
	emitJSON = *jsonOut

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("t1", func() error { return reportT1(*max) })
	run("s1", func() error { return reportS1(*max) })
	run("s2", func() error { return reportS2(*max) })
	run("s3", func() error { return reportS3(*max) })
	run("ablation", func() error { return reportAblation(*max) })
	run("placement", func() error { return reportPlacement(*max) })
	run("trace_overhead", func() error { return reportTraceOverhead(*max) })
	run("cluster_trace_overhead", func() error { return reportClusterTraceOverhead(*max) })
	run("transport_overhead", func() error { return reportTransportOverhead(*max) })
	run("snapshot_overhead", func() error { return reportSnapshotOverhead(*max) })
	run("wal_overhead", func() error { return reportWALOverhead(*max) })
	run("repl_overhead", func() error { return reportReplOverhead(*max) })
	run("pool_overhead", func() error { return reportPoolOverhead(*max) })
	run("engine_hotpath", func() error { return reportEngineHotpath(*max) })
}

func reportEngineHotpath(max int) error {
	rows, err := experiments.EngineHotpath(max) // max doubles as the pipeline append count
	if err != nil {
		return err
	}
	header("Engine hot path — per-append diagnosis latency after the arena-storage overhaul; sequential vs 4-worker pool, baseline = pre-overhaul pool_overhead record",
		"workload", "appends", "seq ns/append", "par ns/append", "baseline ns", "speedup", "equal?",
		"derived", "replicated")
	for _, r := range rows {
		row(r.Workload, r.Appends, r.SeqNsPerAppend, r.ParNsPerAppend, r.BaselineNs,
			fmt.Sprintf("%.2f", r.Speedup), r.DiagnosesEqual, r.SeqDerived, r.SeqReplicated)
	}
	return maybeBench("engine_hotpath", rows)
}

func reportPoolOverhead(max int) error {
	rows, err := experiments.PoolOverhead(max) // max doubles as the append count
	if err != nil {
		return err
	}
	header("Session-pool overhead — pipeline net appends, direct backend vs pooled over a mesh; 8-session batch by fleet width (hedging off)",
		"appends", "local ns/append", "pooled ns/append", "ratio", "bodies equal?",
		"sessions", "1-worker ms", "3-worker ms", "1-worker cpu ms", "3-worker cpu ms", "gain")
	row(rows.Appends, rows.LocalNsPerAppend, rows.PooledNsPerAppend,
		fmt.Sprintf("%.2f", rows.OverheadRatio), rows.BodiesEqual,
		rows.Sessions, rows.OneWorkerMs, rows.ThreeWorkerMs,
		rows.OneWorkerCPUMs, rows.ThreeWorkerCPUMs, fmt.Sprintf("%.2f", rows.WorkerGain))
	return maybeBench("pool_overhead", []experiments.PoolOverheadRow{*rows})
}

func reportReplOverhead(max int) error {
	rows, err := experiments.ReplOverhead(max) // max doubles as the append count
	if err != nil {
		return err
	}
	header("Replication overhead — SyncAlways WAL appends with followers tailing over loopback; 8-writer group commit",
		"appends", "p50 ns (0 fo)", "p50 ns (1 fo)", "p50 ns (2 fo)", "1-fo ratio", "caught up?",
		"group ns/op", "solo ns/op", "group gain")
	row(rows.Appends, rows.P50NsNoFollower, rows.P50NsOneFollower, rows.P50NsTwoFollowers,
		fmt.Sprintf("%.2f", rows.OneFollowerRatio), rows.FollowersCaughtUp,
		rows.GroupNsPerOp, rows.SoloNsPerOp, fmt.Sprintf("%.2f", rows.GroupCommitGain))
	return maybeBench("repl_overhead", []experiments.ReplOverheadRow{*rows})
}

func reportWALOverhead(max int) error {
	rows, err := experiments.WALOverhead(max) // max doubles as the append count
	if err != nil {
		return err
	}
	header("WAL overhead — warm dQSQ session, per-append logging by fsync policy; snapshot+replay vs recompute",
		"appends", "plain ns/append", "always ns/append", "interval ns/append", "never ns/append",
		"always %", "interval %", "replay ns", "recompute ns", "equal?")
	row(rows.Appends, rows.PlainNsPerAppend, rows.AlwaysNsPerAppend,
		rows.IntervalNsPerAppend, rows.NeverNsPerAppend,
		fmt.Sprintf("%.1f", rows.AlwaysOverheadPct), fmt.Sprintf("%.1f", rows.IntervalOverheadPct),
		rows.ReplayNs, rows.RecomputeNs, rows.Equal)
	return maybeBench("wal_overhead", []experiments.WALOverheadRow{*rows})
}

func reportSnapshotOverhead(max int) error {
	rows, err := experiments.SnapshotOverhead(max) // max doubles as the append count
	if err != nil {
		return err
	}
	header("Checkpoint overhead — warm dQSQ session, per-append checkpoint vs none; restore vs replay",
		"appends", "plain ns/append", "ckpt ns/append", "overhead %", "snapshot bytes",
		"restore ns", "replay ns", "equal?")
	row(rows.Appends, rows.PlainNsPerAppend, rows.CkptNsPerAppend,
		fmt.Sprintf("%.1f", rows.OverheadPct), rows.SnapshotBytes,
		rows.RestoreNs, rows.ReplayNs, rows.Equal)
	return maybeBench("snapshot_overhead", []experiments.SnapshotOverheadRow{*rows})
}

func reportTransportOverhead(max int) error {
	rows, err := experiments.TransportOverhead(max) // max doubles as the iteration count
	if err != nil {
		return err
	}
	header("Transport overhead — quickstart distributed diagnosis, in-process mesh vs TCP loopback",
		"iters", "msgs/op", "inproc ns/op", "tcp ns/op", "overhead %", "tcp bytes/op")
	row(rows.Iters, rows.Messages, rows.InProcNsPerOp, rows.TCPNsPerOp,
		fmt.Sprintf("%.1f", rows.OverheadPct), rows.TCPBytesPerOp)
	return maybeBench("transport_overhead", []experiments.TransportOverheadRow{*rows})
}

func reportTraceOverhead(max int) error {
	rows, err := experiments.TraceOverhead(max) // max doubles as the iteration count
	if err != nil {
		return err
	}
	header("Tracing overhead — quickstart diagnosis, no-op tracer vs ChromeTraceWriter capture",
		"iters", "nop ns/op", "traced ns/op", "overhead %", "trace events")
	row(rows.Iters, rows.NopNsPerOp, rows.TracedNsPerOp,
		fmt.Sprintf("%.1f", rows.OverheadPct), rows.TraceEvents)
	return maybeBench("trace_overhead", []experiments.TraceOverheadRow{*rows})
}

func reportClusterTraceOverhead(max int) error {
	rows, err := experiments.ClusterTraceOverhead(max) // max doubles as the iteration count
	if err != nil {
		return err
	}
	header("Cluster telemetry overhead — distributed quickstart diagnosis, telemetry off vs on (mesh, 2 members)",
		"iters", "off ns/op", "on ns/op", "overhead %", "member events", "telemetry nodes")
	row(rows.Iters, rows.OffNsPerOp, rows.OnNsPerOp,
		fmt.Sprintf("%.1f", rows.OverheadPct), rows.MemberEvents, rows.TelemetryNodes)
	return maybeBench("cluster_trace_overhead", []experiments.ClusterTraceOverheadRow{*rows})
}

func reportPlacement(max int) error {
	if max == 0 {
		max = 12
	}
	var lens []int
	for n := 4; n <= max; n += 4 {
		lens = append(lens, n)
	}
	rows, err := experiments.PlacementAblation(lens)
	if err != nil {
		return err
	}
	header("Remark 1 — supplementary-relation placement (Figure 5 layout vs at-head)",
		"chain len", "at-data msgs", "at-data repl", "at-head msgs", "at-head repl", "same answers?")
	for _, r := range rows {
		row(r.ChainLen, r.AtDataMsgs, r.AtDataRepl, r.AtHeadMsgs, r.AtHeadRepl, r.SameAnswers)
	}
	return maybeBench("placement", rows)
}

// writeBench writes one experiment's rows as an indented JSON array to
// dir/BENCH_<name>.json. Durations serialize as nanoseconds (Go's
// time.Duration JSON default).
func writeBench(dir, name string, rows any) error {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s\n", path)
	return nil
}

// maybeBench is writeBench gated on the -json flag.
func maybeBench(name string, rows any) error {
	if !emitJSON {
		return nil
	}
	return writeBench(benchDir, name, rows)
}

func header(title string, cols ...string) {
	fmt.Printf("\n## %s\n\n", title)
	fmt.Println("| " + strings.Join(cols, " | ") + " |")
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Println("| " + strings.Join(sep, " | ") + " |")
}

func row(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	fmt.Println("| " + strings.Join(parts, " | ") + " |")
}

func reportT1(max int) error {
	if max == 0 {
		max = 12
	}
	var lens []int
	for n := 3; n <= max; n += 3 {
		lens = append(lens, n)
	}
	rows, err := experiments.Theorem1Sweep(lens)
	if err != nil {
		return err
	}
	header("Theorem 1 — dQSQ materializes exactly what centralized QSQ does (Figure 3 family)",
		"chain len", "answers", "QSQ derived", "dQSQ derived", "naive derived", "equal?")
	for _, r := range rows {
		row(r.ChainLen, r.Answers, r.QSQDerived, r.DQSQDerived, r.NaiveDerived, r.Equal)
	}
	return maybeBench("t1", rows)
}

func reportS1(max int) error {
	if max == 0 {
		max = 4
	}
	rows, err := experiments.MaterializationSweep(max)
	if err != nil {
		return err
	}
	header("S1 / Theorem 4 — materialized unfolding prefix vs |A| (running example, p2 loop)",
		"|A|", "diagnoses", "product[8] events", "dQSQ events", "naive events",
		"dQSQ derived", "naive derived", "prefix equal?")
	for _, r := range rows {
		row(r.SeqLen, r.Diagnoses, r.ProductEvents, r.DQSQEvents, r.NaiveEvents,
			r.DQSQDerived, r.NaiveDerived, r.ExactPrefixEq)
	}
	return maybeBench("s1", rows)
}

func reportS2(max int) error {
	if max == 0 {
		max = 5
	}
	var peers []int
	for k := 2; k <= max; k++ {
		peers = append(peers, k)
	}
	rows, err := experiments.PipelineSweep(peers, 2, 3, 7)
	if err != nil {
		return err
	}
	header("S2 — peer scaling (pipeline, branching 2, 3 observed alarms)",
		"peers", "diagnoses", "dQSQ derived", "dQSQ msgs", "naive derived", "naive msgs",
		"dQSQ ms", "naive ms")
	for _, r := range rows {
		row(r.Peers, r.Diagnoses, r.DQSQDerived, r.DQSQMessages, r.NaiveDerived, r.NaiveMsgs,
			r.DQSQElapsed.Milliseconds(), r.NaiveElapsed.Milliseconds())
	}
	return maybeBench("s2", rows)
}

func reportS3(max int) error {
	if max == 0 {
		max = 4
	}
	var branches []int
	for b := 2; b <= max; b++ {
		branches = append(branches, b)
	}
	rows, err := experiments.ConcurrencySweep(branches, 2, 5)
	if err != nil {
		return err
	}
	header("S3 — concurrency (fork, depth 2): one configuration under factorial interleavings",
		"branches", "|A|", "diagnoses", "product events", "dQSQ events", "direct ms", "dQSQ ms")
	for _, r := range rows {
		row(r.Branches, r.SeqLen, r.Diagnoses, r.ProductEvents, r.DQSQEvents,
			r.DirectElapsed.Milliseconds(), r.DQSQElapsed.Milliseconds())
	}
	return maybeBench("s3", rows)
}

func reportAblation(max int) error {
	if max == 0 {
		max = 16
	}
	var lens []int
	for n := 4; n <= max; n += 4 {
		lens = append(lens, n)
	}
	rows, err := experiments.MagicAblation(lens)
	if err != nil {
		return err
	}
	header("Ablation — QSQ vs magic sets (the paper's two sibling optimizations)",
		"chain len", "QSQ derived", "magic derived", "same answers?")
	for _, r := range rows {
		row(r.ChainLen, r.QSQDerived, r.MagicDerived, r.SameAnswers)
	}
	return maybeBench("ablation", rows)
}
