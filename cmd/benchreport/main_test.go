package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestWriteBenchS1S2 runs a small S1 and S2 sweep and round-trips their
// rows through the -json output files.
func TestWriteBenchS1S2(t *testing.T) {
	dir := t.TempDir()

	s1, err := experiments.MaterializationSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBench(dir, "s1", s1); err != nil {
		t.Fatal(err)
	}
	var gotS1 []experiments.MaterializationRow
	readJSON(t, filepath.Join(dir, "BENCH_s1.json"), &gotS1)
	if len(gotS1) != len(s1) || gotS1[0].SeqLen != s1[0].SeqLen || gotS1[0].DQSQDerived != s1[0].DQSQDerived {
		t.Fatalf("S1 rows did not round-trip: %+v vs %+v", gotS1, s1)
	}

	s2, err := experiments.PipelineSweep([]int{2}, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBench(dir, "s2", s2); err != nil {
		t.Fatal(err)
	}
	var gotS2 []experiments.PipelineRow
	readJSON(t, filepath.Join(dir, "BENCH_s2.json"), &gotS2)
	if len(gotS2) != len(s2) || gotS2[0].Peers != s2[0].Peers || gotS2[0].DQSQDerived != s2[0].DQSQDerived {
		t.Fatalf("S2 rows did not round-trip: %+v vs %+v", gotS2, s2)
	}
}

// TestMaybeBenchGate: without -json nothing is written.
func TestMaybeBenchGate(t *testing.T) {
	dir := t.TempDir()
	benchDir = dir
	emitJSON = false
	defer func() { benchDir = "."; emitJSON = false }()
	if err := maybeBench("t1", []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_t1.json")); !os.IsNotExist(err) {
		t.Fatal("file written without -json")
	}
	emitJSON = true
	if err := maybeBench("t1", []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_t1.json")); err != nil {
		t.Fatal("file not written with -json")
	}
}

func readJSON(t *testing.T, path string, out any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
