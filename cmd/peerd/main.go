// Command peerd hosts a share of the peers of a distributed diagnosis in
// its own process. A driver (diagnose -peers, or code using
// diagnosis.RunDistributed) ships it the system description and the peer
// assignment; peerd rebuilds the Datalog program locally and evaluates
// its peers' share of every round over TCP.
//
// Usage:
//
//	peerd -name n1                          # pick a free port
//	peerd -name n2 -listen 127.0.0.1:7402
//
// It prints "peerd listening ADDR" once the socket is bound, then serves
// until killed. The -name must match the name the driver uses for this
// node in its -peers list.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/diagnosis"
	"repro/internal/transport"
)

func main() {
	var (
		name   = flag.String("name", "", "this node's name in the cluster (required)")
		listen = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		driver = flag.String("driver", "driver", "the driver node's name")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "peerd: -name is required")
		os.Exit(2)
	}
	tr, err := transport.ListenTCP(*name, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("peerd listening %s\n", tr.Addr())
	if err := diagnosis.ServeNode(tr, *driver); err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
}
