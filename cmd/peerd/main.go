// Command peerd hosts a share of the peers of a distributed diagnosis in
// its own process. A driver (diagnose -peers, or code using
// diagnosis.RunDistributed) ships it the system description and the peer
// assignment; peerd rebuilds the Datalog program locally and evaluates
// its peers' share of every round over TCP.
//
// Usage:
//
//	peerd -name n1                          # pick a free port
//	peerd -name n2 -listen 127.0.0.1:7402
//	peerd -name n2 -listen 127.0.0.1:7402 -data-dir /var/lib/peerd
//
// With -data-dir, peerd checkpoints every accepted job before
// acknowledging it. A killed process restarted with the same flags
// restores the checkpoint and rejoins the cluster: a round that was in
// flight when it died is refused with an error report (so the driver
// fails fast and re-ships instead of timing out), and the next shipped
// job proceeds normally.
//
// It prints "peerd listening ADDR" once the socket is bound, then serves
// until killed. The -name must match the name the driver uses for this
// node in its -peers list.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/diagnosis"
	"repro/internal/transport"
)

func main() {
	var (
		name    = flag.String("name", "", "this node's name in the cluster (required)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		driver  = flag.String("driver", "driver", "the driver node's name")
		dataDir = flag.String("data-dir", "", "directory for job checkpoints (enables kill/restart recovery)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "peerd: -name is required")
		os.Exit(2)
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
			os.Exit(1)
		}
	}
	tr, err := transport.ListenTCP(*name, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
	n, err := diagnosis.NewNode(tr, *driver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
	if err := n.SetDataDir(*dataDir); err != nil {
		// Serve checkpoint-only rather than refuse to start: job durability
		// degrades to the synchronous checkpoint-before-ack path.
		fmt.Fprintf(os.Stderr, "peerd: job log unavailable: %v\n", err)
	}
	if job, err := n.RestoreCheckpoint(); err != nil {
		// A bad checkpoint must not keep the node down: report it and
		// serve fresh — the next shipped job overwrites it.
		fmt.Fprintf(os.Stderr, "peerd: checkpoint not restored: %v\n", err)
	} else if job != nil {
		fmt.Fprintf(os.Stderr, "peerd: restored checkpoint (job generation %d, %d hosted peers); rejoining\n",
			job.Gen, len(job.Hosted))
	}
	fmt.Printf("peerd listening %s\n", tr.Addr())
	if err := n.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
}
