// Command peerd hosts a share of the peers of a distributed diagnosis in
// its own process. A driver (diagnose -peers, or code using
// diagnosis.RunDistributed) ships it the system description and the peer
// assignment; peerd rebuilds the Datalog program locally and evaluates
// its peers' share of every round over TCP.
//
// Usage:
//
//	peerd -name n1                          # pick a free port
//	peerd -name n2 -listen 127.0.0.1:7402
//	peerd -name n2 -listen 127.0.0.1:7402 -data-dir /var/lib/peerd
//
// With -data-dir, peerd checkpoints every accepted job before
// acknowledging it. A killed process restarted with the same flags
// restores the checkpoint and rejoins the cluster: a round that was in
// flight when it died is refused with an error report (so the driver
// fails fast and re-ships instead of timing out), and the next shipped
// job proceeds normally.
//
// It prints "peerd listening ADDR" once the socket is bound, then serves
// until killed. The -name must match the name the driver uses for this
// node in its -peers list.
//
// With -admin ADDR, peerd also serves an HTTP admin endpoint:
//
//	GET /metrics   engine counters plus Go runtime gauges, Prometheus text
//	GET /healthz   200 "ok" once the node is bound and any checkpoint is
//	               restored; 503 "starting" before that
//	GET /v1/trace  this node's spans as Chrome trace-event JSON
//
// The admin line "peerd admin listening ADDR" prints after the transport
// line, so scripts scanning the first line keep working.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/serve"
	"repro/internal/transport"
)

// adminEndpoint is the peerd observability surface: a metrics registry fed
// by the node's tracer, a bounded trace buffer, and the lifecycle bits
// health probes read: ready (bound, checkpoint restored) and draining
// (finishing owned work, place nothing new here).
type adminEndpoint struct {
	metrics  *serve.Metrics
	trace    *obs.ChromeTraceWriter
	ready    atomic.Bool
	draining atomic.Bool
}

func newAdminEndpoint() *adminEndpoint {
	a := &adminEndpoint{metrics: serve.NewMetrics(), trace: obs.NewChromeTraceWriter(0)}
	serve.RegisterRuntimeGauges(a.metrics)
	a.metrics.Gauge("trace_events_dropped_total", a.trace.Dropped)
	return a
}

// tracer is what the node's engines observe through: spans and flows into
// the trace buffer, counters and gauges folded into /metrics. Round spans
// additionally feed the dist_round_latency_seconds histogram — this node's
// own view of each cluster round, complementing the per-node series the
// driver computes from its poll round trips.
func (a *adminEndpoint) tracer() obs.Tracer {
	sink := obs.NewMetricsSink(a.metrics)
	sink.ObserveSpans("dist-round", "dist_round_latency_seconds")
	return obs.Multi(a.trace, sink)
}

// serveHTTP binds addr and serves the admin API in the background,
// returning the bound address.
func (a *adminEndpoint) serveHTTP(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		a.metrics.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Draining is 503 like dead-adjacent states, but the body tells a
		// pool frontend (and ops scripts) "stop placing, migrate" apart
		// from "evict": a drained worker is cooperating, not failing.
		if a.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if a.ready.Load() {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "starting", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		a.trace.WriteJSON(w) //nolint:errcheck // a hung-up scraper is its own problem
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // runs until the process exits
	return ln.Addr().String(), nil
}

func main() {
	var (
		name         = flag.String("name", "", "this node's name in the cluster (required)")
		listen       = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		driver       = flag.String("driver", "driver", "the driver node's name")
		dataDir      = flag.String("data-dir", "", "directory for job checkpoints (enables kill/restart recovery)")
		admin        = flag.String("admin", "", "HTTP admin listen address (/metrics, /healthz, /v1/trace); empty disables")
		poolAddr     = flag.String("pool", "", "session-pool listen address (host:port; doubles as this worker's pool identity); empty disables worker mode")
		poolSessions = flag.Int("pool-max-sessions", 64, "session table cap in pool worker mode")
		poolFacts    = flag.Int("pool-global-facts", 64<<20, "global reserved-fact budget in pool worker mode")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for pooled sessions to migrate away before exiting")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "peerd: -name is required")
		os.Exit(2)
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
			os.Exit(1)
		}
	}
	tr, err := transport.ListenTCP(*name, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
	n, err := diagnosis.NewNode(tr, *driver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
		os.Exit(1)
	}
	var adm *adminEndpoint
	adminAddr := ""
	if *admin != "" {
		adm = newAdminEndpoint()
		adminAddr, err = adm.serveHTTP(*admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peerd: admin listener: %v\n", err)
			os.Exit(1)
		}
		n.SetTracer(adm.tracer())
	}
	if err := n.SetDataDir(*dataDir); err != nil {
		// Serve checkpoint-only rather than refuse to start: job durability
		// degrades to the synchronous checkpoint-before-ack path.
		fmt.Fprintf(os.Stderr, "peerd: job log unavailable: %v\n", err)
	}
	if job, err := n.RestoreCheckpoint(); err != nil {
		// A bad checkpoint must not keep the node down: report it and
		// serve fresh — the next shipped job overwrites it.
		fmt.Fprintf(os.Stderr, "peerd: checkpoint not restored: %v\n", err)
	} else if job != nil {
		fmt.Fprintf(os.Stderr, "peerd: restored checkpoint (job generation %d, %d hosted peers); rejoining\n",
			job.Gen, len(job.Hosted))
	}
	// Pool worker mode: a second transport (identity = the advertised
	// pool address, which is what frontends dial and name it by) feeding
	// session jobs into a local serve Store through the pool Backend.
	var worker *pool.Worker
	if *poolAddr != "" {
		ptr, err := transport.ListenTCP(*poolAddr, *poolAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peerd: pool listener: %v\n", err)
			os.Exit(1)
		}
		metrics := serve.NewMetrics()
		if adm != nil {
			metrics = adm.metrics
		}
		store := serve.NewStore(serve.StoreConfig{
			MaxSessions: *poolSessions,
			GlobalFacts: *poolFacts,
		}, metrics)
		worker = pool.NewWorker(pool.WorkerConfig{
			Transport: ptr,
			Backend:   serve.NewPoolBackend(store, metrics),
			AdminAddr: adminAddr,
			Metrics:   metrics,
		})
		if err := worker.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "peerd: pool worker: %v\n", err)
			os.Exit(1)
		}
		defer ptr.Close() //nolint:errcheck // process exit path
		fmt.Printf("peerd pool listening %s\n", ptr.Addr())
	}

	fmt.Printf("peerd listening %s\n", tr.Addr())
	if adm != nil {
		// Bound and restored: the node is ready for a driver's jobs.
		adm.ready.Store(true)
		fmt.Printf("peerd admin listening %s\n", adminAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- n.Serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "peerd: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		// Graceful drain: flip /healthz to "draining" and refuse new pool
		// placements, then wait for the frontend to migrate the sessions
		// away (bounded) before exiting.
		if adm != nil {
			adm.draining.Store(true)
		}
		if worker != nil {
			worker.SetDraining(true)
			fmt.Fprintf(os.Stderr, "peerd: %s: draining %d pooled sessions\n", sig, worker.Active())
			deadline := time.Now().Add(*drainWait)
			for worker.Active() > 0 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Millisecond)
			}
			worker.Close()
			if left := worker.Active(); left > 0 {
				fmt.Fprintf(os.Stderr, "peerd: drain timeout with %d sessions still here\n", left)
			}
		}
	}
}
