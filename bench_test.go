// Package repro's root benchmark harness: one testing.B benchmark per
// experiment of EXPERIMENTS.md. The paper has no measured tables — its
// evaluation artifacts are Figures 1-5, Theorems 1-4 and Proposition 1 —
// so each benchmark regenerates the corresponding validation row and
// reports the reproduction's own materialization metrics alongside
// wall-clock time:
//
//	go test -bench=. -benchmem
//	go run ./cmd/benchreport        # the same rows as tables
package repro

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/diagnosis"
	"repro/internal/dqsq"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/product"
	"repro/internal/qsq"
	"repro/internal/term"
	"repro/internal/unfold"
)

// seqA1 is the paper's Section 2 example sequence (b,p1),(a,p2),(c,p1).
var seqA1 = alarm.S("b", "p1", "a", "p2", "c", "p1")

// BenchmarkF1F2_Unfolding regenerates Figure 2: bounded unfolding of the
// running example.
func BenchmarkF1F2_Unfolding(b *testing.B) {
	pn := petri.Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := unfold.Build(pn, unfold.Options{MaxDepth: 4, MaxEvents: 100000})
		if len(u.Events) == 0 {
			b.Fatal("empty unfolding")
		}
	}
}

// BenchmarkF4_QSQRewriting regenerates Figure 4: the centralized QSQ
// rewriting and evaluation of the Figure 3 program.
func BenchmarkF4_QSQRewriting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Theorem1Sweep([]int{6})
		if err != nil || !rows[0].Equal {
			b.Fatalf("rows=%v err=%v", rows, err)
		}
	}
}

// BenchmarkF5_DQSQRewriting regenerates Figure 5: per-peer rewriting of
// the Figure 3 program (rewriting only, no evaluation).
func BenchmarkF5_DQSQRewriting(b *testing.B) {
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("A", "r", x, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("S", "s", x, z), ddatalog.At("T", "t", z, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("S", "s", x, y), Body: []ddatalog.PAtom{ddatalog.At("R", "r", x, y), ddatalog.At("B", "s", y, z)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("T", "t", x, y), Body: []ddatalog.PAtom{ddatalog.At("C", "t", x, y)}})
	p.AddFact(ddatalog.At("A", "r", s.Constant("1"), s.Constant("2")))
	q := ddatalog.At("R", "r", s.Constant("1"), s.Variable("Ans"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dqsq.Rewrite(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT2_UnfoldingProgram regenerates Theorem 2: evaluating
// Prog(N, M) to a bounded depth on the running example.
func BenchmarkT2_UnfoldingProgram(b *testing.B) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := diagnosis.BuildUnfoldingProgram(padded)
		if err != nil {
			b.Fatal(err)
		}
		_, st := prog.Localize().SemiNaive(datalog.Budget{MaxTermDepth: 6})
		if st.Truncated {
			b.Fatal("truncated")
		}
	}
}

// BenchmarkT3_Diagnosis regenerates Theorem 3 on the running example, one
// sub-benchmark per engine.
func BenchmarkT3_Diagnosis(b *testing.B) {
	pn := petri.Example()
	for _, e := range []diagnosis.Engine{
		diagnosis.EngineDirect, diagnosis.EngineProduct,
		diagnosis.EngineNaive, diagnosis.EngineDQSQ,
	} {
		b.Run(e.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := diagnosis.Run(pn, seqA1, e, diagnosis.Options{Timeout: 2 * time.Minute})
				if err != nil || len(rep.Diagnoses) != 2 {
					b.Fatalf("err=%v rep=%v", err, rep)
				}
			}
		})
	}
}

// BenchmarkT4_Materialization regenerates the Theorem 4 comparison for
// growing alarm sequences; the reported custom metrics are the prefix
// sizes (events) of each engine.
func BenchmarkT4_Materialization(b *testing.B) {
	pn := petri.Example()
	for _, n := range []int{1, 2, 3, 4} {
		seq := make(alarm.Seq, 0, n)
		for i := 0; i < n; i++ {
			a := petri.Alarm("a")
			if i%2 == 1 {
				a = "b"
			}
			seq = append(seq, alarm.Obs{Alarm: a, Peer: "p2"})
		}
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			var row *experiments.MaterializationRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.Materialization(pn, seq)
				if err != nil {
					b.Fatal(err)
				}
				if !row.ExactPrefixEq {
					b.Fatalf("Theorem 4 violated: dQSQ %d vs product %d", row.DQSQEvents, row.ProductEvents)
				}
			}
			b.ReportMetric(float64(row.ProductEvents), "prefix-events")
			b.ReportMetric(float64(row.NaiveEvents), "naive-events")
			b.ReportMetric(float64(row.DQSQDerived), "dqsq-derived")
			b.ReportMetric(float64(row.NaiveDerived), "naive-derived")
		})
	}
}

// BenchmarkP1_DQSQTermination regenerates Proposition 1: dQSQ reaches
// quiescence on the cyclic example's diagnosis program with no depth
// bound.
func BenchmarkP1_DQSQTermination(b *testing.B) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, query, err := diagnosis.BuildDiagnosisProgram(padded, seqA1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := dqsq.Run(prog, query, datalog.Budget{}, 2*time.Minute)
		if err != nil || res.Stats.Truncated {
			b.Fatalf("err=%v stats=%+v", err, res.Stats)
		}
	}
}

// BenchmarkS2_PipelinePeers regenerates the peer-scaling sweep.
func BenchmarkS2_PipelinePeers(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		pn := gen.Pipeline(k, 2)
		seq := gen.PipelineSeq(pn, rand.New(rand.NewSource(7)), 3)
		b.Run(fmt.Sprintf("peers=%d/dqsq", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, diagnosis.Options{Timeout: 2 * time.Minute})
				if err != nil || len(rep.Diagnoses) != 1 {
					b.Fatalf("err=%v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("peers=%d/naive", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := diagnosis.Run(pn, seq, diagnosis.EngineNaive, diagnosis.Options{Timeout: 2 * time.Minute})
				if err != nil || len(rep.Diagnoses) != 1 {
					b.Fatalf("err=%v", err)
				}
			}
		})
	}
}

// BenchmarkS3_ForkConcurrency regenerates the concurrency sweep: one
// configuration hiding under factorially many interleavings.
func BenchmarkS3_ForkConcurrency(b *testing.B) {
	for _, branches := range []int{2, 3, 4} {
		pn := gen.Fork(branches, 2)
		seq := gen.ForkSeq(pn, rand.New(rand.NewSource(5)))
		b.Run(fmt.Sprintf("branches=%d/direct", branches), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if d := diagnosis.Direct(pn, seq, diagnosis.DirectOptions{}); len(d) != 1 {
					b.Fatal("want one configuration")
				}
			}
		})
		b.Run(fmt.Sprintf("branches=%d/product", branches), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := product.Run(pn, seq, product.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_QSQvsMagic regenerates the sibling-optimization
// comparison on the Figure 3 family.
func BenchmarkAblation_QSQvsMagic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MagicAblation([]int{8})
		if err != nil || !rows[0].SameAnswers {
			b.Fatalf("rows=%v err=%v", rows, err)
		}
	}
}

// BenchmarkE2_PatternDiagnosis regenerates the Section 4.4 pattern
// experiment: a.(b.a)* on the running example under the depth gadget.
func BenchmarkE2_PatternDiagnosis(b *testing.B) {
	pn := petri.Example()
	pat := alarm.Concat(alarm.Sym("a", "p2"),
		alarm.Star(alarm.Concat(alarm.Sym("b", "p2"), alarm.Sym("a", "p2"))))
	nfa := pat.Compile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := diagnosis.DiagnosePattern(pn, nfa, diagnosis.Options{
			Timeout: 2 * time.Minute,
			Budget:  datalog.Budget{MaxTermDepth: 14},
		})
		if err != nil || len(d) == 0 {
			b.Fatalf("err=%v d=%v", err, d)
		}
	}
}

// BenchmarkTelecom regenerates the intro scenario at growing line counts.
func BenchmarkTelecom(b *testing.B) {
	for _, lines := range []int{2, 4, 8} {
		pn := gen.Telecom(lines)
		seq := alarm.Seq(gen.TelecomSeqFixed())
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, diagnosis.Options{Timeout: 2 * time.Minute})
				if err != nil || len(rep.Diagnoses) == 0 {
					b.Fatalf("err=%v", err)
				}
			}
		})
	}
}

// BenchmarkRemark1_Placement regenerates the supplementary-relation
// placement ablation.
func BenchmarkRemark1_Placement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PlacementAblation([]int{8})
		if err != nil || !rows[0].SameAnswers {
			b.Fatalf("rows=%v err=%v", rows, err)
		}
	}
}

// BenchmarkE4_ForbiddenPattern regenerates the Section 4.4 blocking
// extension: diagnosis constrained by a forbidden-pattern monitor.
func BenchmarkE4_ForbiddenPattern(b *testing.B) {
	pn := petri.Example()
	alpha := alarm.Alphabet{
		{Alarm: "a", Peer: "p2"}, {Alarm: "b", Peer: "p2"},
		{Alarm: "b", Peer: "p1"}, {Alarm: "c", Peer: "p1"},
	}
	mon := alarm.Avoiding(alarm.Sym("b", "p2"), alpha)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := diagnosis.DiagnosePattern(pn, mon, diagnosis.Options{
			Timeout: 2 * time.Minute,
			Budget:  datalog.Budget{MaxTermDepth: 12},
		})
		if err != nil || len(d) == 0 {
			b.Fatalf("err=%v d=%v", err, d)
		}
	}
}

// BenchmarkQSQRewriteOnly isolates the cost of the rewriting itself.
func BenchmarkQSQRewriteOnly(b *testing.B) {
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, y), Body: []datalog.Atom{datalog.A("e", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, z), Body: []datalog.Atom{datalog.A("e", x, y), datalog.A("tc", y, z)}})
	p.AddFact(datalog.A("e", s.Constant("a"), s.Constant("b")))
	q := datalog.A("tc", s.Constant("a"), s.Variable("Y"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := qsq.Rewrite(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuickstartDiagnosis measures the quickstart diagnosis with the
// tracer off (the default no-op path every untraced run pays) and on (a
// full ChromeTraceWriter capture, as cmd/diagnose -trace uses). The
// verify.sh overhead guard compares the two: the no-op path must not cost
// more than a traced run — if it does, instrumentation leaked onto the
// hot path.
func BenchmarkQuickstartDiagnosis(b *testing.B) {
	pn := petri.Example()
	run := func(b *testing.B, opt diagnosis.Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := diagnosis.Run(pn, seqA1, diagnosis.EngineDQSQ, opt)
			if err != nil || len(rep.Diagnoses) == 0 {
				b.Fatalf("err=%v", err)
			}
		}
	}
	b.Run("TracerOff", func(b *testing.B) {
		run(b, diagnosis.Options{Timeout: 2 * time.Minute})
	})
	b.Run("TracerOn", func(b *testing.B) {
		run(b, diagnosis.Options{Timeout: 2 * time.Minute, Tracer: obs.NewChromeTraceWriter(-1)})
	})
}
