#!/usr/bin/env sh
# Repo verification gate: formatting, vet, full build, full tests, and a
# race pass over the concurrency-heavy packages (the distributed runtime
# and the session server). CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/serve ./internal/dist ./internal/transport ./internal/wire ./internal/snapshot ./internal/wal ./internal/obs ./internal/repl ./internal/pool ./internal/ddatalog ./internal/rel"
go test -race ./internal/serve ./internal/dist ./internal/transport ./internal/wire ./internal/snapshot ./internal/wal ./internal/obs ./internal/repl ./internal/pool ./internal/ddatalog ./internal/rel

echo "== wire codec fuzz smoke"
# The seed corpus runs under plain `go test` above; this also gives the
# mutator a moment on each target to shake out decoder panics.
go test -run '^$' -fuzz '^FuzzDecodeFrame$' -fuzztime 3s ./internal/wire
go test -run '^$' -fuzz '^FuzzFrameRoundTrip$' -fuzztime 3s ./internal/wire

echo "== snapshot container fuzz smoke"
# Same deal for the checkpoint container: corrupt or truncated snapshots
# must error, never panic or over-allocate.
go test -run '^$' -fuzz '^FuzzOpen$' -fuzztime 3s ./internal/snapshot
go test -run '^$' -fuzz '^FuzzReader$' -fuzztime 3s ./internal/snapshot

echo "== wal fuzz smoke"
# And for the write-ahead log: arbitrary segment bytes and multi-segment
# directories must replay a valid prefix or error — never panic.
go test -run '^$' -fuzz '^FuzzSegment$' -fuzztime 3s ./internal/wal
go test -run '^$' -fuzz '^FuzzReplay$' -fuzztime 3s ./internal/wal

echo "== repl stream-framing fuzz smoke"
# And for the replication protocol: arbitrary frame bytes off the wire
# must decode-or-error (and round-trip byte-identically when they do) —
# a malicious or corrupted primary must never panic a follower.
go test -run '^$' -fuzz '^FuzzDecodeFrame$' -fuzztime 3s ./internal/repl
go test -run '^$' -fuzz '^FuzzReadFrame$' -fuzztime 3s ./internal/repl

echo "== multi-process smoke"
# Two peerd daemons on ephemeral ports, diagnosed against from a separate
# diagnose process; output must match the single-process run exactly.
go test -run '^TestMultiProcessSmoke$' -count 1 ./cmd/diagnose

echo "== cluster trace smoke (peerd admin endpoints + merged timeline)"
# Two peerd daemons with -admin endpoints, one traced multi-process
# diagnosis: /healthz must report ready, each /metrics must carry engine
# counters plus Go runtime gauges, and the merged trace file must contain
# spans from all three processes.
go test -run '^TestClusterTraceSmoke$' -count 1 ./cmd/diagnose

echo "== snapshot round-trip smoke (write-behind, kill -9, restart, re-query)"
# Stream alarms into a diagnosed session, SIGKILL the server once the
# write-behind snapshot is on disk, restart it on the same address and
# data dir, and finish the sequence; the final report must match an
# uninterrupted run exactly.
go test -run '^TestDiagnosedRestartSmoke$' -count 1 ./cmd/diagnosed

echo "== WAL round-trip smoke (kill -9 mid-append, before any snapshot)"
# Same drill with snapshots stalled for an hour: every acknowledged
# append survives on the WAL alone, and the restarted session's next
# report matches an uninterrupted run exactly.
go test -run '^TestDiagnosedWALKillSmoke$' -count 1 ./cmd/diagnosed

echo "== replication failover smoke (kill -9 the primary, promote the follower)"
# A primary streams two live sessions to a follower, dies by SIGKILL
# mid-stream, and the follower is promoted via POST /v1/admin/promote:
# zero acknowledged appends may be lost, the promoted node's diagnoses
# must match an uninterrupted single-process run exactly, and writes
# must flow again under the bumped fencing epoch.
go test -run '^TestDiagnosedFailoverSmoke$' -count 1 ./cmd/diagnosed

echo "== session-pool smoke (kill -9 a worker mid-stream, drain another)"
# A diagnosed frontend schedules sessions across three peerd workers; one
# worker dies by SIGKILL and another drains via SIGTERM mid-stream. Every
# session must migrate (snapshot ship or journal replay) and finish with
# diagnoses identical to an in-process run, and fresh creates must still
# land on the survivors.
go test -run '^TestPoolWorkerKillMigration$' -count 1 ./cmd/diagnosed

echo "== tracing-overhead guard"
# The no-op tracer is what every untraced run pays, so it must never cost
# more than a run that records a full Chrome trace. Compare the two
# quickstart benchmarks with a generous noise margin (the zero-alloc tests
# in internal/obs pin the per-call cost; this catches gross leaks of
# instrumentation work onto the disabled path).
bench_out=$(go test -run '^$' -bench 'BenchmarkQuickstartDiagnosis' -benchtime 5x .)
echo "$bench_out"
echo "$bench_out" | awk '
    /BenchmarkQuickstartDiagnosis\/TracerOff/ { off = $3 }
    /BenchmarkQuickstartDiagnosis\/TracerOn/  { on  = $3 }
    END {
        if (off == "" || on == "") { print "guard: benchmarks missing" > "/dev/stderr"; exit 1 }
        if (off > 1.5 * on) {
            printf "guard: no-op tracer path (%s ns/op) is >1.5x the traced path (%s ns/op)\n", off, on > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (off %s ns/op, on %s ns/op)\n", off, on
    }'
go run ./cmd/benchreport -exp trace_overhead -max 3 -json
go run ./cmd/benchreport -exp transport_overhead -max 3 -json

echo "== cluster-telemetry-overhead guard"
# Full cluster telemetry — members recording spans, Telemetry frames every
# round, the driver merging timelines — must stay within 1.15x of the
# untelemetered distributed run. Both sides are best-of-three batches over
# one warm mesh cluster, so the ratio compares floors, not noise.
ctrace_out=$(go run ./cmd/benchreport -exp cluster_trace_overhead -max 3 -json)
echo "$ctrace_out"
echo "$ctrace_out" | awk -F'|' '
    NF >= 7 && $2 + 0 > 0 && $3 + 0 > 0 {
        found = 1
        off = $3 + 0; on = $4 + 0; nodes = $7 + 0
        if (nodes != 2) { printf "guard: telemetry from %d nodes, want 2\n", nodes > "/dev/stderr"; exit 1 }
        if (on > 1.15 * off) {
            printf "guard: telemetry-on (%d ns/op) is >1.15x telemetry-off (%d ns/op)\n", on, off > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (off %d ns/op, on %d ns/op, %d member events)\n", off, on, $6 + 0
    }
    END { if (!found) { print "guard: cluster_trace_overhead row missing" > "/dev/stderr"; exit 1 } }'

echo "== checkpoint-overhead guard"
# Restoring a checkpoint must be cheaper than replaying the sequence it
# replaces (O(snapshot size), not O(re-running N appends)), and the
# restored session must be equivalent to the uninterrupted one. The
# restore-vs-replay gap is ~10x at 8 appends, so a direct comparison has
# plenty of noise margin.
snap_out=$(go run ./cmd/benchreport -exp snapshot_overhead -max 8 -json)
echo "$snap_out"
echo "$snap_out" | awk -F'|' '
    NF >= 9 && $2 + 0 == 8 {
        found = 1
        restore = $7 + 0; replay = $8 + 0; equal = $9
        gsub(/ /, "", equal)
        if (equal != "true") { print "guard: restored session diverged from the uninterrupted run" > "/dev/stderr"; exit 1 }
        if (restore <= 0 || replay <= 0) { print "guard: missing timings" > "/dev/stderr"; exit 1 }
        if (restore >= replay) {
            printf "guard: restore (%d ns) is not cheaper than replaying the appends (%d ns)\n", restore, replay > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (restore %d ns vs replay %d ns, snapshot %d bytes)\n", restore, replay, $6 + 0
    }
    END { if (!found) { print "guard: snapshot_overhead row missing" > "/dev/stderr"; exit 1 } }'

echo "== wal-overhead guard"
# Logging every append with fsync=interval must stay within 2x of the
# no-WAL baseline (the write is a small sequential buffered append; only
# fsync=always is allowed to be expensive), and a session recovered from
# snapshot + WAL replay must be equivalent to the uninterrupted run.
wal_out=$(go run ./cmd/benchreport -exp wal_overhead -max 8 -json)
echo "$wal_out"
echo "$wal_out" | awk -F'|' '
    NF >= 11 && $2 + 0 == 8 {
        found = 1
        plain = $3 + 0; interval = $5 + 0; equal = $11
        gsub(/ /, "", equal)
        if (equal != "true") { print "guard: WAL-replayed session diverged from the uninterrupted run" > "/dev/stderr"; exit 1 }
        if (plain <= 0 || interval <= 0) { print "guard: missing timings" > "/dev/stderr"; exit 1 }
        if (interval > 2 * plain) {
            printf "guard: fsync=interval appends (%d ns) are >2x the no-WAL baseline (%d ns)\n", interval, plain > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (plain %d ns/append, interval %d ns/append, always %d ns/append)\n", plain, interval, $4 + 0
    }
    END { if (!found) { print "guard: wal_overhead row missing" > "/dev/stderr"; exit 1 } }'

echo "== repl-overhead guard"
# Shipping the WAL to a live follower is asynchronous, so the primary's
# p50 append latency with one follower attached must stay within 1.25x
# of the no-follower baseline, every follower must end holding every
# appended record, and group commit must buy >=2x append throughput at
# 8 concurrent writers under fsync=always. Each latency configuration is
# best-of-three batches, so the ratio compares floors, not noise.
repl_out=$(go run ./cmd/benchreport -exp repl_overhead -json)
echo "$repl_out"
echo "$repl_out" | awk -F'|' '
    NF >= 10 && $2 + 0 > 0 {
        found = 1
        p50zero = $3 + 0; p50one = $4 + 0; ratio = $6 + 0; caught = $7; gain = $10 + 0
        gsub(/ /, "", caught)
        if (caught != "true") { print "guard: a follower lost appended records" > "/dev/stderr"; exit 1 }
        if (p50zero <= 0 || p50one <= 0) { print "guard: missing timings" > "/dev/stderr"; exit 1 }
        if (ratio > 1.25) {
            printf "guard: one-follower p50 (%d ns) is >1.25x the baseline (%d ns)\n", p50one, p50zero > "/dev/stderr"
            exit 1
        }
        if (gain < 2) {
            printf "guard: group commit gain %.2fx at 8 writers, want >=2x\n", gain > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (p50 %d -> %d ns with a follower, group commit %.2fx)\n", p50zero, p50one, gain
    }
    END { if (!found) { print "guard: repl_overhead row missing" > "/dev/stderr"; exit 1 } }'

echo "== pool-overhead guard"
# An append through the session pool pays the wire codec, dispatch, the
# worker executor queue, and journal bookkeeping on top of the evaluation
# itself; that machinery must stay within 1.5x of the direct backend on
# the pipeline-net stream, and pooled bodies must stay byte-identical to
# the local serving path. The worker-fleet batch gain is reported but not
# guarded — it tracks the cores actually available on the box.
pool_out=$(go run ./cmd/benchreport -exp pool_overhead -json)
echo "$pool_out"
echo "$pool_out" | awk -F'|' '
    NF >= 12 && $2 + 0 > 0 {
        found = 1
        direct = $3 + 0; pooled = $4 + 0; equal = $6; gain = $12 + 0
        gsub(/ /, "", equal)
        if (equal != "true") { print "guard: pooled session bodies diverged from the local serving path" > "/dev/stderr"; exit 1 }
        if (direct <= 0 || pooled <= 0) { print "guard: missing timings" > "/dev/stderr"; exit 1 }
        if (pooled > 1.5 * direct) {
            printf "guard: pooled appends (%d ns) are >1.5x the direct backend (%d ns)\n", pooled, direct > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (direct %d ns/append, pooled %d ns/append, 3-worker batch gain %.2fx)\n", direct, pooled, gain
    }
    END { if (!found) { print "guard: pool_overhead row missing" > "/dev/stderr"; exit 1 } }'

echo "== engine-hotpath guard"
# The arena-storage engine must hold its win: the pipeline(6,2) append
# stream must run at least 2x faster per append than the pre-overhaul
# baseline recorded in the experiment, and on every workload the 4-worker
# pool must produce diagnosis bodies byte-identical to the sequential
# evaluation (with matching derived/replicated totals — checked inside the
# experiment, folded into the equal? column).
hot_out=$(go run ./cmd/benchreport -exp engine_hotpath -json)
echo "$hot_out"
echo "$hot_out" | awk -F'|' '
    NF >= 10 && $3 + 0 > 0 {
        rows++
        workload = $2; seq = $4 + 0; baseline = $6 + 0; speedup = $7 + 0; equal = $8
        gsub(/ /, "", workload); gsub(/ /, "", equal)
        if (equal != "true") {
            printf "guard: %s parallel evaluation diverged from sequential\n", workload > "/dev/stderr"
            exit 1
        }
        if (baseline > 0) {
            guarded++
            if (seq <= 0) { print "guard: missing timings" > "/dev/stderr"; exit 1 }
            if (speedup < 2) {
                printf "guard: %s runs %.2fx the pre-overhaul baseline, want >=2x\n", workload, speedup > "/dev/stderr"
                exit 1
            }
            printf "guard: ok (%s %d ns/append vs baseline %d ns, %.2fx)\n", workload, seq, baseline, speedup
        }
    }
    END {
        if (rows < 2) { print "guard: engine_hotpath rows missing" > "/dev/stderr"; exit 1 }
        if (guarded < 1) { print "guard: no baselined engine_hotpath row" > "/dev/stderr"; exit 1 }
    }'

echo "verify: OK"
