#!/usr/bin/env sh
# Repo verification gate: formatting, vet, full build, full tests, and a
# race pass over the concurrency-heavy packages (the distributed runtime
# and the session server). CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/serve ./internal/dist"
go test -race ./internal/serve ./internal/dist

echo "verify: OK"
