#!/usr/bin/env sh
# Repo verification gate: formatting, vet, full build, full tests, and a
# race pass over the concurrency-heavy packages (the distributed runtime
# and the session server). CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/serve ./internal/dist ./internal/transport ./internal/wire"
go test -race ./internal/serve ./internal/dist ./internal/transport ./internal/wire

echo "== wire codec fuzz smoke"
# The seed corpus runs under plain `go test` above; this also gives the
# mutator a moment on each target to shake out decoder panics.
go test -run '^$' -fuzz '^FuzzDecodeFrame$' -fuzztime 3s ./internal/wire
go test -run '^$' -fuzz '^FuzzFrameRoundTrip$' -fuzztime 3s ./internal/wire

echo "== multi-process smoke"
# Two peerd daemons on ephemeral ports, diagnosed against from a separate
# diagnose process; output must match the single-process run exactly.
go test -run '^TestMultiProcessSmoke$' -count 1 ./cmd/diagnose

echo "== tracing-overhead guard"
# The no-op tracer is what every untraced run pays, so it must never cost
# more than a run that records a full Chrome trace. Compare the two
# quickstart benchmarks with a generous noise margin (the zero-alloc tests
# in internal/obs pin the per-call cost; this catches gross leaks of
# instrumentation work onto the disabled path).
bench_out=$(go test -run '^$' -bench 'BenchmarkQuickstartDiagnosis' -benchtime 5x .)
echo "$bench_out"
echo "$bench_out" | awk '
    /BenchmarkQuickstartDiagnosis\/TracerOff/ { off = $3 }
    /BenchmarkQuickstartDiagnosis\/TracerOn/  { on  = $3 }
    END {
        if (off == "" || on == "") { print "guard: benchmarks missing" > "/dev/stderr"; exit 1 }
        if (off > 1.5 * on) {
            printf "guard: no-op tracer path (%s ns/op) is >1.5x the traced path (%s ns/op)\n", off, on > "/dev/stderr"
            exit 1
        }
        printf "guard: ok (off %s ns/op, on %s ns/op)\n", off, on
    }'
go run ./cmd/benchreport -exp trace_overhead -max 3 -json
go run ./cmd/benchreport -exp transport_overhead -max 3 -json

echo "verify: OK"
