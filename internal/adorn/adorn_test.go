package adorn

import (
	"testing"

	"repro/internal/term"
)

func TestComputeAdornment(t *testing.T) {
	s := term.NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	c := s.Constant("c")
	bound := VarSet{x: true}

	args := []term.ID{x, y, c, s.Compound("f", x, c), s.Compound("f", y, c)}
	if got := Compute(s, bound, args); got != "bfbbf" {
		t.Fatalf("Compute = %q, want bfbbf", got)
	}
}

func TestVarSetOps(t *testing.T) {
	s := term.NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	v := VarSet{}
	v.AddTerm(s, s.Compound("f", x, s.Constant("c")))
	if !v[x] || v[y] {
		t.Fatalf("AddTerm wrong: %v", v)
	}
	c := v.Clone()
	c.AddTerm(s, y)
	if v[y] {
		t.Fatal("Clone aliased")
	}
	if !c.CoversTerm(s, s.Compound("g", x, y)) {
		t.Fatal("CoversTerm false negative")
	}
	if v.CoversTerm(s, y) {
		t.Fatal("CoversTerm false positive")
	}
	if !v.CoversTerm(s, s.Constant("ground")) {
		t.Fatal("ground term must be covered")
	}
}

func TestNames(t *testing.T) {
	if Name("R", "bf") != "R#bf" {
		t.Fatalf("Name = %q", Name("R", "bf"))
	}
	if InputName("R", "bf") != "in-R#bf" {
		t.Fatalf("InputName = %q", InputName("R", "bf"))
	}
	if AllFree(3) != "fff" {
		t.Fatalf("AllFree = %q", AllFree(3))
	}
	if AllFree(0) != "" {
		t.Fatal("AllFree(0) nonempty")
	}
}

func TestBoundArgsProjection(t *testing.T) {
	s := term.NewStore()
	a, b, c := s.Constant("a"), s.Constant("b"), s.Constant("c")
	got := BoundArgs("bfb", []term.ID{a, b, c})
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("BoundArgs = %v", got)
	}
	if Adornment("bfb").CountBound() != 2 {
		t.Fatal("CountBound wrong")
	}
	if !Adornment("bf").Bound(0) || Adornment("bf").Bound(1) {
		t.Fatal("Bound wrong")
	}
}
