// Package adorn implements binding patterns ("adornments") for Datalog
// relations, the common machinery under both the QSQ rewriting (Section
// 3.1, Figure 4) and the magic-sets rewriting the paper cites as the
// sibling technique.
//
// An adornment annotates each argument position of a relation with 'b'
// (bound: every variable in the argument is known when the subquery is
// issued) or 'f' (free). R with adornment "bf" is written R#bf here —
// rendered R^bf in the paper.
package adorn

import (
	"strings"

	"repro/internal/rel"
	"repro/internal/term"
)

// Adornment is a string over {'b','f'}, one character per argument
// position.
type Adornment string

// AllFree returns the adornment of n free positions.
func AllFree(n int) Adornment {
	return Adornment(strings.Repeat("f", n))
}

// Bound reports whether position i is bound.
func (a Adornment) Bound(i int) bool { return a[i] == 'b' }

// CountBound returns the number of bound positions.
func (a Adornment) CountBound() int {
	n := 0
	for i := 0; i < len(a); i++ {
		if a[i] == 'b' {
			n++
		}
	}
	return n
}

// VarSet tracks which variables are currently bound during a left-to-right
// pass over a rule body.
type VarSet map[term.ID]bool

// Clone copies the set.
func (v VarSet) Clone() VarSet {
	out := make(VarSet, len(v))
	for k := range v {
		out[k] = true
	}
	return out
}

// AddTerm marks every variable of t as bound.
func (v VarSet) AddTerm(s *term.Store, t term.ID) {
	for _, x := range s.Vars(nil, t) {
		v[x] = true
	}
}

// CoversTerm reports whether every variable of t is in the set (a ground
// term is trivially covered).
func (v VarSet) CoversTerm(s *term.Store, t term.ID) bool {
	for _, x := range s.Vars(nil, t) {
		if !v[x] {
			return false
		}
	}
	return true
}

// Compute returns the adornment of an atom's argument list given the
// currently bound variables: a position is bound iff the whole argument is
// covered.
func Compute(s *term.Store, bound VarSet, args []term.ID) Adornment {
	b := make([]byte, len(args))
	for i, t := range args {
		if bound.CoversTerm(s, t) {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return Adornment(b)
}

// Name returns the adorned relation name, e.g. Name("R", "bf") == "R#bf".
// The all-free adornment of a 0-ary relation yields "R#".
func Name(r rel.Name, a Adornment) rel.Name {
	return r + "#" + rel.Name(a)
}

// InputName returns the name of the input ("call") relation carrying the
// bound arguments of subqueries on R#a — the paper's in-R^bf.
func InputName(r rel.Name, a Adornment) rel.Name {
	return "in-" + Name(r, a)
}

// BoundArgs projects args to the bound positions of a, in order.
func BoundArgs(a Adornment, args []term.ID) []term.ID {
	out := make([]term.ID, 0, a.CountBound())
	for i, t := range args {
		if a.Bound(i) {
			out = append(out, t)
		}
	}
	return out
}

// Key identifies a relation-adornment pair, used to queue rewriting work.
type Key struct {
	Rel rel.Name
	Ad  Adornment
}
