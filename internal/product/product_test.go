package product

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/alarm"
	"repro/internal/petri"
)

var (
	seqA1 = alarm.S("b", "p1", "a", "p2", "c", "p1")
	seqA2 = alarm.S("b", "p1", "c", "p1", "a", "p2")
	seqA3 = alarm.S("c", "p1", "b", "p1", "a", "p2")
)

const (
	evI   = "f(i,g(r,1),g(r,7))"
	evII  = "f(ii,g(r,4))"
	evIII = "f(iii,g(f(i,g(r,1),g(r,7)),2))"
	evIV  = "f(iv,g(f(i,g(r,1),g(r,7)),3))"
	evV   = "f(v,g(r,7))"
)

func diagKeys(d [][]string) []string {
	out := make([]string, 0, len(d))
	for _, cfg := range d {
		out = append(out, strings.Join(cfg, ";"))
	}
	sort.Strings(out)
	return out
}

func TestProductNetStructure(t *testing.T) {
	pn := petri.Example()
	prod, err := Build(pn, seqA1)
	if err != nil {
		t.Fatal(err)
	}
	// A_p1 = (b, c): transition i (alarm b) synchronizes at position 0;
	// ii and iii (alarm c) at position 1; iv and v (alarm a) at p2's
	// position 0; vi (alarm b) has no occurrence in A_p2 and disappears.
	wantTrans := map[string]bool{
		"i×0": true, "ii×1": true, "iii×1": true, "iv×0": true, "v×0": true,
	}
	got := prod.Net.Transitions()
	if len(got) != len(wantTrans) {
		t.Fatalf("product transitions %v", got)
	}
	for _, id := range got {
		if !wantTrans[string(id)] {
			t.Fatalf("unexpected product transition %s", id)
		}
	}
	// Position chains: p1 has 3 position places, p2 has 2.
	for _, pl := range []string{"pos.p1.0", "pos.p1.1", "pos.p1.2", "pos.p2.0", "pos.p2.1"} {
		if prod.Net.Place(petri.NodeID(pl)) == nil {
			t.Fatalf("missing position place %s", pl)
		}
	}
	// Initial marking includes both position starts.
	if !prod.M0["pos.p1.0"] || !prod.M0["pos.p2.0"] {
		t.Fatal("position chains not initially marked")
	}
	// The product is safe.
	if _, exhaustive, err := prod.CheckSafe(100000); err != nil || !exhaustive {
		t.Fatalf("product not safe/finite: %v", err)
	}
}

func TestDiagnosesOfRunningExample(t *testing.T) {
	pn := petri.Example()
	res, err := Run(pn, seqA1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("product unfolding truncated")
	}
	keys := diagKeys(res.Diagnoses)
	want := []string{
		evI + ";" + evII + ";" + evIV,
		evI + ";" + evIII + ";" + evIV,
	}
	sort.Strings(want)
	if strings.Join(keys, "|") != strings.Join(want, "|") {
		t.Fatalf("diagnoses:\n%v\nwant:\n%v", keys, want)
	}
}

func TestEquivalentSequencesSameDiagnoses(t *testing.T) {
	// A1 and A2 differ only in cross-peer interleaving; the supervisor must
	// compute identical diagnosis sets (Section 2's example).
	pn := petri.Example()
	r1, err := Run(pn, seqA1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(pn, seqA2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(diagKeys(r1.Diagnoses), "|") != strings.Join(diagKeys(r2.Diagnoses), "|") {
		t.Fatalf("A1 diagnoses %v != A2 diagnoses %v", diagKeys(r1.Diagnoses), diagKeys(r2.Diagnoses))
	}
}

func TestSwappedPeerOrderChangesDiagnoses(t *testing.T) {
	// A3 swaps b and c within p1: the shaded configuration {i,iii,iv} must
	// no longer be a diagnosis, while {i,ii,iv} still is (ii ‖ i).
	pn := petri.Example()
	res, err := Run(pn, seqA3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := diagKeys(res.Diagnoses)
	shaded := evI + ";" + evIII + ";" + evIV
	concurrent := evI + ";" + evII + ";" + evIV
	for _, k := range keys {
		if k == shaded {
			t.Fatal("shaded configuration wrongly explains A3")
		}
	}
	found := false
	for _, k := range keys {
		if k == concurrent {
			found = true
		}
	}
	if !found {
		t.Fatalf("{i,ii,iv} missing from A3 diagnoses: %v", keys)
	}
}

func TestPrefixContainsOnlyRelevantNodes(t *testing.T) {
	pn := petri.Example()
	res, err := Run(pn, seqA1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The prefix contains the five events that explain some prefix of A
	// (v explains the a-prefix of A_p2 even though it extends no complete
	// explanation) and nothing else — in particular no vi instance.
	want := map[string]bool{evI: true, evII: true, evIII: true, evIV: true, evV: true}
	if len(res.PrefixEvents) != len(want) {
		t.Fatalf("prefix events = %v", res.PrefixEvents)
	}
	for e := range want {
		if !res.PrefixEvents[e] {
			t.Fatalf("missing prefix event %s", e)
		}
	}
	for e := range res.PrefixEvents {
		if strings.HasPrefix(e, "f(vi") {
			t.Fatalf("irrelevant event %s materialized", e)
		}
	}
	// Conditions: the three roots plus the posts of i, ii, iv, v.
	if len(res.PrefixConditions) != 3+2+1+1+1 {
		t.Fatalf("prefix conditions = %v", res.PrefixConditions)
	}
}

func TestEmptySequence(t *testing.T) {
	pn := petri.Example()
	res, err := Run(pn, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The only explanation of the empty sequence is the empty configuration.
	if len(res.Diagnoses) != 1 || len(res.Diagnoses[0]) != 0 {
		t.Fatalf("diagnoses of empty sequence: %v", res.Diagnoses)
	}
	if len(res.PrefixEvents) != 0 {
		t.Fatalf("prefix events for empty sequence: %v", res.PrefixEvents)
	}
}

func TestUnexplainableSequence(t *testing.T) {
	pn := petri.Example()
	// p1 never emits alarm "z".
	res, err := Run(pn, alarm.S("z", "p1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnoses) != 0 {
		t.Fatalf("impossible sequence explained: %v", res.Diagnoses)
	}
}

func TestLongerSequenceUsesCycle(t *testing.T) {
	// a then b at p2 exercises v (a) then vi (b) through the 7->6->7 loop.
	pn := petri.Example()
	res, err := Run(pn, alarm.S("a", "p2", "b", "p2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "f(v,g(r,7));f(vi,g(f(v,g(r,7)),6))"
	keys := diagKeys(res.Diagnoses)
	if len(keys) != 1 || keys[0] != want {
		t.Fatalf("diagnoses %v, want [%s]", keys, want)
	}
}

func TestPadded2ParentFormAgrees(t *testing.T) {
	// Diagnoses on the padded net project to the same transition multisets.
	pn := petri.Example()
	padded, err := petri.Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(pn, seqA1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(padded, seqA1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare by fired transition multiset (names differ due to pads).
	toTrans := func(d [][]string) []string {
		var out []string
		for _, cfg := range d {
			var ts []string
			for _, name := range cfg {
				end := strings.IndexByte(name, ',')
				ts = append(ts, name[2:end])
			}
			sort.Strings(ts)
			out = append(out, strings.Join(ts, ";"))
		}
		sort.Strings(out)
		return out
	}
	a, b := toTrans(r1.Diagnoses), toTrans(r2.Diagnoses)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("padded diagnoses differ: %v vs %v", a, b)
	}
}

func BenchmarkProductExampleA1(b *testing.B) {
	pn := petri.Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pn, seqA1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
