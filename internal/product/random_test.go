package product

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/unfold"
)

// TestRandomPrefixContainedInUnfolding: the projected prefix of the
// product unfolding is always a subset of the full (depth-bounded)
// unfolding of the original net — U\nfold(N,M,A) ⊑ Unfold(N,M).
func TestRandomPrefixContainedInUnfolding(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for i := 0; i < 40 && checked < 10; i++ {
		pn := gen.RandomSafe(rng, gen.Params{Peers: 2, Places: 5, Transitions: 4, Alarms: 2})
		if pn == nil {
			continue
		}
		exec, _ := pn.RandomExecution(rng, 3)
		if len(exec) == 0 {
			continue
		}
		seq := petri.Interleave(rng, exec.ObservedAlarms())
		res, err := Run(pn, seq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			continue
		}
		checked++

		full := unfold.Build(pn, unfold.Options{MaxDepth: len(seq) + 1, MaxEvents: 100000})
		names := map[string]bool{}
		for _, e := range full.Events {
			names[e.Name] = true
		}
		for e := range res.PrefixEvents {
			if !names[e] {
				t.Fatalf("net %d: prefix event %s not in the full unfolding", i, e)
			}
		}
		// The observed execution itself is among the diagnoses.
		if len(res.Diagnoses) == 0 {
			t.Fatalf("net %d: observed execution unexplained", i)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d nets checked", checked)
	}
}

// TestDiagnosesDependOnlyOnPerPeerOrder: the supervisor cannot distinguish
// equivalent interleavings (Section 2), so the diagnosis set is invariant
// under cross-peer reshuffling.
func TestDiagnosesDependOnlyOnPerPeerOrder(t *testing.T) {
	pn := petri.Example()
	base := seqA1
	rng := rand.New(rand.NewSource(5))
	want, err := Run(pn, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		shuffled := petri.Interleave(rng, alarmSeqPerPeer(base))
		res, err := Run(pn, shuffled, Options{})
		if err != nil {
			t.Fatal(err)
		}
		a := diagKeys(want.Diagnoses)
		b := diagKeys(res.Diagnoses)
		if len(a) != len(b) {
			t.Fatalf("interleaving %v changed diagnoses", shuffled)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("interleaving %v changed diagnoses", shuffled)
			}
		}
	}
}

func alarmSeqPerPeer(seq []petri.Observation) map[petri.Peer][]petri.Alarm {
	out := map[petri.Peer][]petri.Alarm{}
	for _, o := range seq {
		out[o.Peer] = append(out[o.Peer], o.Alarm)
	}
	return out
}
