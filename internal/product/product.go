// Package product implements the dedicated diagnosis algorithm the paper
// compares dQSQ against (Section 4.3, reference [8]: Benveniste, Fabre,
// Haar, Jard, "Diagnosis of asynchronous discrete event systems: a net
// unfolding approach", IEEE TAC 2003), re-implemented from the paper's own
// sketch:
//
//	(i)  model the alarm sequence A as a linear Petri net — one linear
//	     chain per emitting peer, since only per-peer order is meaningful;
//	(ii) compute the product of (N, M) with the alarm net and unfold it
//	     completely;
//	(iii) project the product unfolding back to Unfold(N, M): the image is
//	     the prefix containing exactly the nodes "relevant" to A.
//
// Theorem 4 states that dQSQ materializes exactly this prefix; the
// benchmark suite compares the two node sets.
package product

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alarm"
	"repro/internal/petri"
	"repro/internal/unfold"
)

// posPlace names the alarm-position place q_i of peer p in the product net.
func posPlace(p petri.Peer, i int) petri.NodeID {
	return petri.NodeID(fmt.Sprintf("pos.%s.%d", p, i))
}

// prodTrans names the product transition of net transition t at alarm
// position i of its peer.
func prodTrans(t petri.NodeID, i int) petri.NodeID {
	return petri.NodeID(fmt.Sprintf("%s×%d", t, i))
}

// splitProd recovers the original transition from a product transition id.
func splitProd(id petri.NodeID) (petri.NodeID, bool) {
	s := string(id)
	i := strings.LastIndex(s, "×")
	if i < 0 {
		return "", false
	}
	return petri.NodeID(s[:i]), true
}

// Build computes the product Petri net of pn and the alarm sequence A.
// Every transition of peer p is replicated once per position of its alarm
// symbol in A_p, synchronized on the position chain of p. Peers of pn that
// emitted no alarm in A contribute no transitions (their alarms would have
// been observed).
func Build(pn *petri.PetriNet, seq alarm.Seq) (*petri.PetriNet, error) {
	per := seq.PerPeer()
	n := petri.NewNet()
	for _, pl := range pn.Net.Places() {
		n.AddPlace(pl, pn.Net.Place(pl).Peer)
	}
	m0 := pn.M0.Clone()

	// Position chains.
	peers := seq.Peers()
	for _, p := range peers {
		k := len(per[p])
		for i := 0; i <= k; i++ {
			n.AddPlace(posPlace(p, i), p)
		}
		m0[posPlace(p, 0)] = true
	}

	// Synchronized transitions.
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		sub := per[t.Peer]
		for i, a := range sub {
			if a != t.Alarm {
				continue
			}
			pre := append(append([]petri.NodeID(nil), t.Pre...), posPlace(t.Peer, i))
			post := append(append([]petri.NodeID(nil), t.Post...), posPlace(t.Peer, i+1))
			n.AddTransition(prodTrans(tid, i), t.Peer, t.Alarm, pre, post)
		}
	}
	return petri.New(n, m0)
}

// Result is the output of the dedicated algorithm.
type Result struct {
	// Product is the synchronized net.
	Product *petri.PetriNet
	// ProductUnfolding is its complete unfolding.
	ProductUnfolding *unfold.Unfolding
	// PrefixEvents and PrefixConditions are the canonical names of the
	// Unfold(N, M) nodes in the projected image — the materialized prefix
	// the algorithm of [8] constructs.
	PrefixEvents     map[string]bool
	PrefixConditions map[string]bool
	// Diagnoses are the configurations (as sorted slices of original
	// unfolding event names) that explain the complete sequence.
	Diagnoses [][]string
	// Truncated is set if the bounded unfolding stopped early (product
	// unfoldings are finite, so this indicates MaxEvents was too small).
	Truncated bool
}

// Options bounds the product unfolding.
type Options struct {
	MaxEvents int // 0 = 200000
}

// Run executes the dedicated algorithm end to end.
func Run(pn *petri.PetriNet, seq alarm.Seq, opt Options) (*Result, error) {
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 200000
	}
	prod, err := Build(pn, seq)
	if err != nil {
		return nil, err
	}
	// The product unfolding is finite: every event advances one peer's
	// position counter, so event depth is bounded by |A| times the longest
	// silent-free chain — here every transition is synchronized, so depth
	// is at most |A|.
	u := unfold.Build(prod, unfold.Options{MaxEvents: opt.MaxEvents})

	res := &Result{
		Product:          prod,
		ProductUnfolding: u,
		PrefixEvents:     make(map[string]bool),
		PrefixConditions: make(map[string]bool),
		Truncated:        u.Truncated,
	}

	// Projection: rebuild the canonical names of the original unfolding
	// nodes. Position places are dropped; product transitions map to their
	// original transition.
	projEvent := make(map[*unfold.Event]string)
	projCond := make(map[*unfold.Condition]string)
	var eventName func(e *unfold.Event) string
	var condName func(c *unfold.Condition) string
	condName = func(c *unfold.Condition) string {
		if s, ok := projCond[c]; ok {
			return s
		}
		parent := unfold.Root
		if c.Pre != nil {
			parent = eventName(c.Pre)
		}
		s := fmt.Sprintf("g(%s,%s)", parent, c.Place)
		projCond[c] = s
		return s
	}
	eventName = func(e *unfold.Event) string {
		if s, ok := projEvent[e]; ok {
			return s
		}
		orig, ok := splitProd(e.Trans)
		if !ok {
			panic(fmt.Sprintf("product: event %s is not a product transition", e.Trans))
		}
		origT := pn.Net.Transition(orig)
		// Parents in the original preset order (position places dropped).
		byPlace := map[petri.NodeID]*unfold.Condition{}
		for _, c := range e.Pre {
			byPlace[c.Place] = c
		}
		parts := []string{string(orig)}
		for _, pl := range origT.Pre {
			parts = append(parts, condName(byPlace[pl]))
		}
		s := "f(" + strings.Join(parts, ",") + ")"
		projEvent[e] = s
		return s
	}

	for _, e := range u.Events {
		res.PrefixEvents[eventName(e)] = true
	}
	for _, c := range u.Conditions {
		if !strings.HasPrefix(string(c.Place), "pos.") {
			res.PrefixConditions[condName(c)] = true
		}
	}

	res.Diagnoses = diagnoses(u, len(seq), eventName)
	return res, nil
}

// diagnoses extracts, from the product unfolding, every configuration that
// consumes the complete alarm sequence, projected to original event names.
// It explores cuts of the product unfolding (the "extracted bottom up"
// step of [8] done forward), memoizing on the fired set so that the
// interleavings of one configuration are explored once.
func diagnoses(u *unfold.Unfolding, need int, eventName func(*unfold.Event) string) [][]string {
	seen := map[string]bool{}
	visited := map[string]bool{}
	var out [][]string

	firedKey := func(fired map[*unfold.Event]bool) string {
		idx := make([]int, 0, len(fired))
		for e := range fired {
			idx = append(idx, e.Index)
		}
		sort.Ints(idx)
		var b strings.Builder
		for _, i := range idx {
			fmt.Fprintf(&b, "%d,", i)
		}
		return b.String()
	}
	record := func(fired map[*unfold.Event]bool) {
		names := make([]string, 0, len(fired))
		for e := range fired {
			names = append(names, eventName(e))
		}
		sort.Strings(names)
		key := strings.Join(names, ";")
		if !seen[key] {
			seen[key] = true
			out = append(out, names)
		}
	}

	// DFS over cuts. A cut is a set of conditions; an event is enabled if
	// its whole preset is inside the cut.
	var dfs func(cut map[*unfold.Condition]bool, fired map[*unfold.Event]bool, count int)
	dfs = func(cut map[*unfold.Condition]bool, fired map[*unfold.Event]bool, count int) {
		k := firedKey(fired)
		if visited[k] {
			return
		}
		visited[k] = true
		if count == need {
			// All alarm positions consumed: a complete explanation. Every
			// transition of the product is synchronized on a position, so
			// nothing can fire beyond this point.
			record(fired)
			return
		}
		for _, c := range u.Conditions {
			if !cut[c] {
				continue
			}
			for _, e := range c.Post {
				if fired[e] || e.Pre[0] != c {
					continue // attempt each event from its first preset condition only
				}
				ok := true
				for _, pre := range e.Pre {
					if !cut[pre] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for _, pre := range e.Pre {
					delete(cut, pre)
				}
				for _, post := range e.Post {
					cut[post] = true
				}
				fired[e] = true
				dfs(cut, fired, count+1)
				delete(fired, e)
				for _, post := range e.Post {
					delete(cut, post)
				}
				for _, pre := range e.Pre {
					cut[pre] = true
				}
			}
		}
	}

	cut := map[*unfold.Condition]bool{}
	for _, c := range u.Conditions {
		if c.Pre == nil {
			cut[c] = true
		}
	}
	dfs(cut, map[*unfold.Event]bool{}, 0)
	return out
}
