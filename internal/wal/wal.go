// Package wal is a segmented, append-only write-ahead log: the
// zero-loss half of the durability story whose snapshot half lives in
// internal/snapshot. A snapshot bounds recovery work but loses every
// append since it was taken; logging each append here *before*
// acknowledging it shrinks that window to nothing. Because the online
// dQSQ evaluation is deterministic per append (the paper's Remark 2), a
// replayed log atop a snapshot reproduces byte-identical diagnoses,
// derived-fact counts and message counts — the log is the recoverable
// ground truth, the snapshot only an accelerator.
//
// Layout. The log is a directory of segment files named
// <firstSeq>.wal. Each segment opens with a magic+version header and
// its first sequence number, then carries CRC-framed records:
//
//	"DWAL" | uvarint version | uvarint firstSeq
//	then per record: uvarint seq | uvarint len | payload | crc32 LE
//
// The CRC covers the encoded seq, length and payload, so a bit flip in
// any of them surfaces. Sequence numbers are assigned by the log,
// start at 1 and increase by exactly one per record; a CRC-valid
// record with the wrong sequence number is treated as corruption.
//
// Torn tails. A crash mid-write leaves a partial record at the end of
// the active segment. Open scans every segment and stops at the first
// short read, bad CRC or sequence break: the file is truncated back to
// the last valid record, any later segments are deleted, and replay
// never surfaces a partial record. What is lost is exactly the appends
// that were never acknowledged.
//
// Durability is tunable per Options.Fsync: SyncAlways fsyncs before
// Append returns (an acknowledged append survives kill -9), SyncInterval
// fsyncs on a timer (bounded loss, near-zero per-append cost), SyncNever
// leaves flushing to the OS. Truncate(upTo) drops whole segments once a
// snapshot covers their records — compaction, not history rewriting:
// the active segment is never touched.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Magic identifies a WAL segment file.
const Magic = "DWAL"

// Version is the segment format version this build writes and the only
// one it reads (matching the snapshot container's no-shims policy).
const Version = 1

// MaxRecord bounds one record's payload (64 MiB): a corrupt length
// prefix must read as a torn tail, not force a giant allocation.
const MaxRecord = 1 << 26

// segmentExt names segment files inside the log directory.
const segmentExt = ".wal"

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCompacted reports a read of records that Truncate already dropped.
// Replication primaries treat it as "fall back to a snapshot ship".
var ErrCompacted = errors.New("wal: records compacted away")

// ErrStopped reports a WaitSeq canceled by its stop channel.
var ErrStopped = errors.New("wal: wait stopped")

// Policy selects when appends reach stable storage.
type Policy int

const (
	// SyncAlways fsyncs before Append returns: an acknowledged append
	// survives kill -9. The default.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a timer (Options.SyncEvery): per-append cost
	// of a buffered write, loss bounded by the interval.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache.
	SyncNever
)

// ParsePolicy maps the flag spelling onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always | interval | never)", s)
	}
}

// String is the inverse of ParsePolicy.
func (p Policy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "always"
	}
}

// Metrics is the registry surface the log feeds (a subset of
// obs.Registry; internal/serve's *Metrics satisfies it). All methods
// must be safe for concurrent use. A nil Metrics disables reporting.
type Metrics interface {
	Add(name string, delta int64)
	Observe(name string, d time.Duration)
}

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// 0 means 4 MiB.
	SegmentBytes int
	// Fsync is the durability policy (default SyncAlways).
	Fsync Policy
	// SyncEvery is the SyncInterval flush period. 0 means 100ms.
	SyncEvery time.Duration
	// Metrics receives wal_appends_total, wal_bytes_total,
	// wal_fsync_seconds, wal_replay_records_total,
	// wal_truncated_tail_total and wal_group_commit_size. nil discards
	// them.
	Metrics Metrics
	// SyncDelay stalls every fsync by this much extra. It is a benchmark
	// hook modeling a device with non-trivial sync latency, so the
	// group-commit batching effect stays measurable on CI filesystems
	// where a real fsync is nearly free. 0 (production) disables it.
	SyncDelay time.Duration
	// NoGroupCommit forces the pre-batching SyncAlways path: each Append
	// fsyncs on its own while holding the append lock. Ablation hook for
	// the group-commit benchmark; leave false in production.
	NoGroupCommit bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// segment is one on-disk segment file.
type segment struct {
	first uint64 // sequence number of its first record
	last  uint64 // sequence number of its last record; first-1 when empty
	path  string
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized by the log's mutex.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	segs    []segment
	active  *os.File // nil until the first append after Open/rotation
	size    int      // bytes in the active segment
	nextSeq uint64
	synced  uint64        // highest seq known durable (group-commit)
	wake    chan struct{} // non-nil while a WaitSeq is parked; closed on progress
	dirty   bool          // unsynced writes (SyncInterval bookkeeping)
	closed  bool

	// syncMu serializes group-commit fsyncs. Lock order: syncMu before
	// mu, never the reverse — Append releases mu before electing a
	// group-commit leader.
	syncMu sync.Mutex

	tickStop chan struct{}
	tickDone chan struct{}
}

// Open creates dir if needed, scans the segments already there,
// truncates any torn tail (counting it on wal_truncated_tail_total) and
// returns a log positioned to append after the last valid record.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, nextSeq: 1}
	if err := l.scan(); err != nil {
		return nil, err
	}
	l.synced = l.nextSeq - 1 // what scan found on disk needs no fsync
	if opt.Fsync == SyncInterval {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// Dir reports the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq reports the sequence number of the last record in the log (0
// when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq reports the sequence number of the oldest record still on
// disk, or 0 when the log holds no records (empty, or everything
// compacted and nothing appended since).
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segs {
		if s.last >= s.first {
			return s.first
		}
	}
	return 0
}

// wakeLocked releases every parked WaitSeq. Callers hold l.mu.
func (l *Log) wakeLocked() {
	if l.wake != nil {
		close(l.wake)
		l.wake = nil
	}
}

// WaitSeq blocks until the log holds a record with sequence >= seq,
// returning the then-current LastSeq. It returns ErrClosed once the log
// closes and ErrStopped when stop is closed first. Replication
// primaries use it to follow the tail without polling.
func (l *Log) WaitSeq(seq uint64, stop <-chan struct{}) (uint64, error) {
	for {
		l.mu.Lock()
		last := l.nextSeq - 1
		if last >= seq {
			l.mu.Unlock()
			return last, nil
		}
		if l.closed {
			l.mu.Unlock()
			return last, ErrClosed
		}
		if l.wake == nil {
			l.wake = make(chan struct{})
		}
		ch := l.wake
		l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return last, ErrStopped
		}
	}
}

// scan validates the on-disk segments, repairing the torn tail: the
// first invalid byte truncates its file back to the last valid record
// and deletes every later segment.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentExt) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentExt), 10, 64)
		if err != nil || first == 0 {
			continue // not a segment of ours; leave it alone
		}
		segs = append(segs, segment{first: first, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	torn := false
	for i := 0; i < len(segs); i++ {
		s := &segs[i]
		// Segments must chain: a gap means the earlier tail was lost, so
		// everything after the gap is unreachable history.
		if i > 0 && s.first != segs[i-1].last+1 {
			torn = true
			l.dropFrom(segs, i)
			segs = segs[:i]
			break
		}
		b, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		validLen, last, ok := scanSegment(b, s.first)
		s.last = last
		if !ok {
			torn = true
			if validLen == 0 {
				// Not even a whole header: the file holds nothing usable.
				if err := os.Remove(s.path); err != nil {
					return err
				}
				l.dropFrom(segs, i+1)
				segs = segs[:i]
			} else {
				if err := os.Truncate(s.path, int64(validLen)); err != nil {
					return err
				}
				l.dropFrom(segs, i+1)
				segs = segs[:i+1]
			}
			break
		}
	}
	if torn {
		l.metricAdd("wal_truncated_tail_total", 1)
	}
	l.segs = segs
	if n := len(segs); n > 0 {
		l.nextSeq = segs[n-1].last + 1
		if fi, err := os.Stat(segs[n-1].path); err == nil {
			l.size = int(fi.Size())
		}
	}
	return nil
}

// dropFrom removes the segment files at and after index i.
func (l *Log) dropFrom(segs []segment, i int) {
	for ; i < len(segs); i++ {
		os.Remove(segs[i].path) //nolint:errcheck // already past the valid prefix
	}
}

// scanSegment walks one segment body: header, then records with
// contiguous sequence numbers starting at first. It returns the byte
// length of the valid prefix, the last valid sequence number (first-1
// when no record is valid) and whether the whole file parsed cleanly.
// It never panics on arbitrary input.
func scanSegment(b []byte, first uint64) (validLen int, last uint64, ok bool) {
	last = first - 1
	off := len(Magic)
	if len(b) < off || string(b[:off]) != Magic {
		return 0, last, false
	}
	v, n := binary.Uvarint(b[off:])
	if n <= 0 || v != Version {
		return 0, last, false
	}
	off += n
	f, n := binary.Uvarint(b[off:])
	if n <= 0 || f != first {
		return 0, last, false
	}
	off += n
	validLen = off
	want := first
	for off < len(b) {
		seq, plen, payload, next, recOK := parseRecord(b, off)
		if !recOK || seq != want || plen > MaxRecord {
			return validLen, last, false
		}
		_ = payload
		off = next
		validLen = off
		last = seq
		want++
	}
	return validLen, last, true
}

// parseRecord decodes the record at off: seq, payload length, payload
// view, the offset past the record, and validity (framing + CRC).
func parseRecord(b []byte, off int) (seq, plen uint64, payload []byte, next int, ok bool) {
	start := off
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, 0, nil, 0, false
	}
	off += n
	plen, n = binary.Uvarint(b[off:])
	if n <= 0 || plen > MaxRecord || plen > uint64(len(b)-off-n) {
		return 0, 0, nil, 0, false
	}
	off += n
	payload = b[off : off+int(plen)]
	off += int(plen)
	if len(b)-off < 4 {
		return 0, 0, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(b[off:])
	if crc32.ChecksumIEEE(b[start:off]) != want {
		return 0, 0, nil, 0, false
	}
	return seq, plen, payload, off + 4, true
}

// Append durably logs one record per the fsync policy and returns its
// sequence number. The payload is copied into the OS before return;
// callers may reuse the slice.
//
// Under SyncAlways, concurrent appenders group-commit: the record is
// written under the log lock, the lock is released, and the first
// caller to reach the sync lock fsyncs on behalf of everyone who wrote
// before it (leader/follower around a single Sync). Later callers find
// their record already durable and return without touching the disk,
// so throughput scales with concurrency instead of paying one fsync
// per append.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	rec := make([]byte, 0, 16+len(payload))
	rec = binary.AppendUvarint(rec, l.nextSeq)
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))

	if err := l.ensureActiveLocked(len(rec)); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	if _, err := l.active.Write(rec); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.size += len(rec)
	seq := l.nextSeq
	l.nextSeq++
	l.segs[len(l.segs)-1].last = seq
	l.metricAdd("wal_appends_total", 1)
	l.metricAdd("wal_bytes_total", int64(len(rec)))
	l.wakeLocked()
	switch l.opt.Fsync {
	case SyncAlways:
		if l.opt.NoGroupCommit {
			err := l.syncLocked()
			l.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return seq, nil
		}
		l.mu.Unlock()
		if err := l.groupSync(seq); err != nil {
			return 0, err
		}
		return seq, nil
	case SyncInterval:
		l.dirty = true
	}
	l.mu.Unlock()
	return seq, nil
}

// groupSync makes the record at seq durable, sharing the fsync with
// every record written before the leader runs. Lock order: syncMu is
// taken without holding mu.
func (l *Log) groupSync(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.synced >= seq {
		l.mu.Unlock()
		return nil // a previous leader's fsync covered us
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	f := l.active
	target := l.nextSeq - 1 // everything written so far rides this fsync
	l.mu.Unlock()

	start := time.Now()
	if f != nil {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if l.opt.SyncDelay > 0 {
		time.Sleep(l.opt.SyncDelay)
	}
	l.metricObserve("wal_fsync_seconds", time.Since(start))

	l.mu.Lock()
	// Records below target live either in f (just synced) or in sealed
	// segments, which were flushed before rotation.
	if target > l.synced {
		l.metricAdd("wal_group_commit_size", int64(target-l.synced))
		l.synced = target
	}
	if l.nextSeq-1 == target {
		l.dirty = false
	}
	l.mu.Unlock()
	return nil
}

// ensureActiveLocked readies a segment with room for a need-byte record:
// reopen the tail segment Open found, rotate a full one, or create the
// first. An empty tail is reused, never sealed — its filename already
// carries nextSeq.
func (l *Log) ensureActiveLocked(need int) error {
	if l.active == nil && len(l.segs) > 0 {
		s := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.active = f
		if fi, err := f.Stat(); err == nil {
			l.size = int(fi.Size())
		}
	}
	if l.active == nil {
		return l.newSegmentLocked()
	}
	tail := l.segs[len(l.segs)-1]
	if l.size+need > l.opt.SegmentBytes && tail.last >= tail.first {
		// Seal the full segment: flush it first (unless the policy is
		// SyncNever) so a sealed segment is durable before anything lands
		// after it.
		if l.opt.Fsync != SyncNever {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
		if err := l.active.Close(); err != nil {
			return err
		}
		l.active = nil
		return l.newSegmentLocked()
	}
	return nil
}

// newSegmentLocked creates the segment whose first record will be
// nextSeq and writes its header.
func (l *Log) newSegmentLocked() error {
	first := l.nextSeq
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", first, segmentExt))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, Magic...)
	hdr = binary.AppendUvarint(hdr, Version)
	hdr = binary.AppendUvarint(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path) //nolint:errcheck
		return err
	}
	l.active = f
	l.size = len(hdr)
	l.segs = append(l.segs, segment{first: first, last: first - 1, path: path})
	syncDir(l.dir) // the new name must survive a crash too
	return nil
}

// Sync flushes the active segment to stable storage, whatever the
// policy. Consumers call it to put a floor under SyncInterval/SyncNever
// (e.g. before acknowledging something that must not be lost).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.active == nil {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		return err
	}
	if l.opt.SyncDelay > 0 {
		time.Sleep(l.opt.SyncDelay)
	}
	l.metricObserve("wal_fsync_seconds", time.Since(start))
	l.dirty = false
	if l.nextSeq-1 > l.synced {
		l.synced = l.nextSeq - 1
	}
	return nil
}

// syncLoop is the SyncInterval flusher.
func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				l.syncLocked() //nolint:errcheck // the next Append surfaces a sick disk
			}
			l.mu.Unlock()
		}
	}
}

// Replay streams every record with seq >= from, in order, to fn. A
// non-nil error from fn stops the replay and is returned. Replay reads
// the segment files as repaired by Open; run it before concurrent
// appends (boot-time recovery), not during them.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	replayed := int64(0)
	defer func() {
		if replayed > 0 {
			l.metricAdd("wal_replay_records_total", replayed)
		}
	}()
	for _, s := range segs {
		if s.last < from {
			continue
		}
		b, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		off := headerLen(b)
		if off == 0 {
			return fmt.Errorf("wal: segment %s lost its header", s.path)
		}
		for off < len(b) {
			seq, _, payload, next, ok := parseRecord(b, off)
			if !ok {
				// Open repaired the tail; bytes going bad afterwards stop
				// the replay at the last good record, like a torn tail.
				return nil
			}
			off = next
			if seq < from {
				continue
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			replayed++
		}
	}
	return nil
}

// headerLen returns the byte length of a valid segment header, or 0.
func headerLen(b []byte) int {
	off := len(Magic)
	if len(b) < off || string(b[:off]) != Magic {
		return 0
	}
	v, n := binary.Uvarint(b[off:])
	if n <= 0 || v != Version {
		return 0
	}
	off += n
	_, n = binary.Uvarint(b[off:])
	if n <= 0 {
		return 0
	}
	return off + n
}

// ReadRange streams the records with from <= seq <= to, in order, to
// fn. Unlike Replay it is safe during concurrent appends, provided to
// <= LastSeq() at the time of the call: a record's bytes are fully
// written before its sequence number is published, so the range is
// readable even while later records land. It returns ErrCompacted when
// Truncate has already dropped part of the range (the caller falls
// back to a snapshot ship) and an error if a promised record turns out
// unreadable.
func (l *Log) ReadRange(from, to uint64, fn func(seq uint64, payload []byte) error) error {
	if from == 0 {
		from = 1
	}
	if to < from {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	last := l.nextSeq - 1
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	if to > last {
		return fmt.Errorf("wal: ReadRange(%d, %d) past end %d", from, to, last)
	}
	first := uint64(0)
	for _, s := range segs {
		if s.last >= s.first {
			first = s.first
			break
		}
	}
	if first == 0 || from < first {
		return ErrCompacted
	}
	for _, s := range segs {
		if s.last < from || s.first > to {
			continue
		}
		b, err := os.ReadFile(s.path)
		if err != nil {
			if os.IsNotExist(err) {
				return ErrCompacted // raced a Truncate
			}
			return err
		}
		off := headerLen(b)
		if off == 0 {
			return fmt.Errorf("wal: segment %s lost its header", s.path)
		}
		for off < len(b) {
			seq, _, payload, next, ok := parseRecord(b, off)
			if !ok {
				// Bytes below `to` were fully written before their seq was
				// published; an unreadable record inside the promised range
				// is real corruption, not a concurrent-append tail.
				return fmt.Errorf("wal: segment %s unreadable at offset %d", s.path, off)
			}
			if seq > to {
				return nil
			}
			off = next
			if seq < from {
				continue
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			if seq == to {
				return nil
			}
		}
	}
	return nil
}

// SkipTo discards every record and positions the log so the next
// append is assigned sequence seq. Replication followers call it after
// a full snapshot resync: the shipped state already covers everything
// below seq, and the local log must mirror the primary's numbering
// from there on. Anything previously in the log — possibly a divergent
// history from a fenced primary — is deleted.
func (l *Log) SkipTo(seq uint64) error {
	if seq == 0 {
		return fmt.Errorf("wal: SkipTo(0): sequences start at 1")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active != nil {
		l.active.Close() //nolint:errcheck // contents are being discarded
		l.active = nil
	}
	for _, s := range l.segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	l.segs = nil
	l.size = 0
	l.nextSeq = seq
	l.synced = seq - 1
	l.dirty = false
	l.wakeLocked()
	syncDir(l.dir)
	return nil
}

// Truncate drops every segment whose records are all covered by seq
// upTo — compaction once a snapshot covers a prefix. The active (last)
// segment is never removed, so Truncate(LastSeq()) keeps the log
// append-ready; rotation retires it eventually.
func (l *Log) Truncate(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	cut := 0
	for cut < len(l.segs)-1 && l.segs[cut].last <= upTo {
		cut++
	}
	if cut == 0 {
		return nil
	}
	for i := 0; i < cut; i++ {
		if err := os.Remove(l.segs[i].path); err != nil {
			l.segs = l.segs[i:]
			return err
		}
	}
	l.segs = l.segs[cut:]
	syncDir(l.dir)
	return nil
}

// Close flushes (per policy) and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.wakeLocked()
	var err error
	if l.active != nil {
		if l.opt.Fsync != SyncNever {
			start := time.Now()
			if serr := l.active.Sync(); serr == nil {
				l.metricObserve("wal_fsync_seconds", time.Since(start))
			} else {
				err = serr
			}
		}
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	stop := l.tickStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.tickDone
	}
	return err
}

func (l *Log) metricAdd(name string, delta int64) {
	if l.opt.Metrics != nil {
		l.opt.Metrics.Add(name, delta)
	}
}

func (l *Log) metricObserve(name string, d time.Duration) {
	if l.opt.Metrics != nil {
		l.opt.Metrics.Observe(name, d)
	}
}

// syncDir best-effort fsyncs a directory so renames/creates/removals in
// it survive a crash (not all platforms support it; errors are ignored).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}
