package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays the whole log into a slice.
func collect(t *testing.T, l *Log, from uint64) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%02d", i))
		want = append(want, p)
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if got := l.LastSeq(); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	seqs, payloads := collect(t, l, 1)
	if len(seqs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d: seq %d payload %q, want seq %d payload %q",
				i, seqs[i], payloads[i], i+1, want[i])
		}
	}
	// Replay from the middle.
	seqs, _ = collect(t, l, 15)
	if len(seqs) != 6 || seqs[0] != 15 {
		t.Fatalf("Replay(15) = %v", seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		seq, err := l.Append([]byte{byte(round)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if seq != uint64(round+1) {
			t.Fatalf("round %d: seq %d, want %d", round, seq, round+1)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seqs, payloads := collect(t, l, 1)
	if len(seqs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(seqs))
	}
	for i := range seqs {
		if payloads[i][0] != byte(i) {
			t.Fatalf("record %d holds %v", i, payloads[i])
		}
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record should land in its own file.
	l, err := Open(dir, Options{SegmentBytes: 24, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if n := countSegments(t, dir); n < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", n)
	}
	if err := l.Truncate(5); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l, 1)
	if len(seqs) == 0 || seqs[len(seqs)-1] != 8 {
		t.Fatalf("post-truncate replay = %v", seqs)
	}
	if seqs[0] > 6 {
		t.Fatalf("truncate(5) removed uncovered records: first surviving seq %d", seqs[0])
	}
	for _, s := range seqs {
		if s <= 5 && s < seqs[0] {
			t.Fatalf("non-contiguous replay %v", seqs)
		}
	}
	// Truncating everything must keep the active segment usable.
	if err := l.Truncate(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append([]byte("after")); err != nil || seq != 9 {
		t.Fatalf("append after full truncate: seq %d err %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// And survive a reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 9 {
		t.Fatalf("reopened LastSeq = %d, want 9", got)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segmentExt {
			n++
		}
	}
	return n
}

// testMetrics is a minimal Metrics capturing counters.
type testMetrics struct {
	mu       sync.Mutex
	counters map[string]int64
	observed map[string]int
}

func newTestMetrics() *testMetrics {
	return &testMetrics{counters: map[string]int64{}, observed: map[string]int{}}
}
func (m *testMetrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}
func (m *testMetrics) Observe(name string, d time.Duration) {
	m.mu.Lock()
	m.observed[name]++
	m.mu.Unlock()
}
func (m *testMetrics) counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

func TestMetricsFeed(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	l, err := Open(dir, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.counter("wal_appends_total"); got != 3 {
		t.Fatalf("wal_appends_total = %d, want 3", got)
	}
	if got := m.counter("wal_bytes_total"); got <= 0 {
		t.Fatalf("wal_bytes_total = %d, want > 0", got)
	}
	m.mu.Lock()
	fsyncs := m.observed["wal_fsync_seconds"]
	m.mu.Unlock()
	if fsyncs < 3 {
		t.Fatalf("wal_fsync_seconds observed %d times, want >= 3 (SyncAlways)", fsyncs)
	}
	if _, _ = collect(t, l, 1); m.counter("wal_replay_records_total") != 3 {
		t.Fatalf("wal_replay_records_total = %d, want 3", m.counter("wal_replay_records_total"))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	m := newTestMetrics()
	l, err := Open(dir, Options{Fsync: SyncInterval, SyncEvery: time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		n := m.observed["wal_fsync_seconds"]
		m.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, name := range []string{"always", "interval", "never"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Fatalf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != SyncAlways {
		t.Fatalf("empty policy: %v %v", p, err)
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestClosedLogRefuses(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append on closed log: %v", err)
	}
	if err := l.Truncate(1); err != ErrClosed {
		t.Fatalf("Truncate on closed log: %v", err)
	}
}
