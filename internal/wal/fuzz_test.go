package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validSegment builds a well-formed segment with n records for seeding.
func validSegment(n int) []byte {
	b := []byte(Magic)
	b = binary.AppendUvarint(b, Version)
	b = binary.AppendUvarint(b, 1)
	for i := 0; i < n; i++ {
		start := len(b)
		b = binary.AppendUvarint(b, uint64(i+1))
		payload := bytes.Repeat([]byte{byte(i)}, i)
		b = binary.AppendUvarint(b, uint64(len(payload)))
		b = append(b, payload...)
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	}
	return b
}

// FuzzSegment: Open over arbitrary segment bytes is total — it repairs
// or discards, never panics, and the repaired file opens cleanly a
// second time with the same contents (repair is idempotent).
func FuzzSegment(f *testing.F) {
	f.Add(validSegment(0))
	f.Add(validSegment(3))
	f.Add(validSegment(3)[:10])
	f.Add([]byte{})
	f.Add([]byte("DWAL"))
	f.Add([]byte("DWAX\x01\x01"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	corrupt := validSegment(2)
	corrupt[len(corrupt)-1] ^= 0xA5
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Fsync: SyncNever})
		if err != nil {
			t.Fatalf("Open must repair, not fail: %v", err)
		}
		var first [][]byte
		if err := l.Replay(1, func(seq uint64, payload []byte) error {
			if seq != uint64(len(first)+1) {
				t.Fatalf("replay out of sequence: %d after %d records", seq, len(first))
			}
			first = append(first, append([]byte(nil), payload...))
			return nil
		}); err != nil {
			t.Fatalf("replay of repaired log: %v", err)
		}
		l.Close()

		// Idempotence: the repaired directory reopens with no further tear
		// and identical records.
		m := newTestMetrics()
		l2, err := Open(dir, Options{Metrics: m, Fsync: SyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer l2.Close()
		if m.counter("wal_truncated_tail_total") != 0 {
			t.Fatal("repair was not idempotent: second Open found another tear")
		}
		i := 0
		l2.Replay(1, func(seq uint64, payload []byte) error { //nolint:errcheck
			if i >= len(first) || !bytes.Equal(payload, first[i]) {
				t.Fatalf("record %d changed across repair", i)
			}
			i++
			return nil
		})
		if i != len(first) {
			t.Fatalf("second replay saw %d records, first saw %d", i, len(first))
		}
	})
}

// FuzzReplay: append fuzzed payload chunks, cut the segment at a
// fuzzed offset, and check the recovered prefix is exactly the records
// whose bytes fully survived — no partial record ever surfaces.
func FuzzReplay(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(3), uint16(0))
	f.Add([]byte(""), uint8(1), uint16(4))
	f.Add(bytes.Repeat([]byte{0x42}, 100), uint8(7), uint16(55))
	f.Add([]byte("xy"), uint8(2), uint16(9999))
	f.Fuzz(func(t *testing.T, data []byte, nRecords uint8, cut uint16) {
		n := int(nRecords)%8 + 1
		dir := t.TempDir()
		l, err := Open(dir, Options{Fsync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for i := 0; i < n; i++ {
			lo := (len(data) * i) / n
			hi := (len(data) * (i + 1)) / n
			p := data[lo:hi]
			want = append(want, append([]byte(nil), p...))
			if _, err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		path := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c := int(cut) % (len(b) + 1)
		if err := os.WriteFile(path, b[:c], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Fsync: SyncNever})
		if err != nil {
			t.Fatalf("Open on cut log: %v", err)
		}
		defer l2.Close()
		i := 0
		l2.Replay(1, func(seq uint64, payload []byte) error { //nolint:errcheck
			if seq != uint64(i+1) {
				t.Fatalf("replay out of sequence: %d", seq)
			}
			if i >= len(want) || !bytes.Equal(payload, want[i]) {
				t.Fatalf("record %d: got %q, want %q", i, payload, want[i])
			}
			i++
			return nil
		})
	})
}
