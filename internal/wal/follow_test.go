package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurable checks that concurrent SyncAlways appends all
// survive a reopen: the shared fsync must cover every record whose
// Append returned.
func TestGroupCommitDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: SyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 1)
	if len(seqs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(seqs), writers*per)
	}
}

// TestGroupCommitShares checks that concurrent appenders actually share
// fsyncs: with a stalled sync, 8 writers must finish with far fewer
// fsyncs than appends, and wal_group_commit_size must account for every
// record exactly once.
func TestGroupCommitShares(t *testing.T) {
	m := newTestMetrics()
	l, err := Open(t.TempDir(), Options{Fsync: SyncAlways, SyncDelay: time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := int64(writers * per)
	if got := m.counter("wal_group_commit_size"); got != total {
		t.Fatalf("wal_group_commit_size = %d, want %d (every record in exactly one batch)", got, total)
	}
	m.mu.Lock()
	fsyncs := m.observed["wal_fsync_seconds"]
	m.mu.Unlock()
	if fsyncs >= int(total) {
		t.Fatalf("%d fsyncs for %d appends: no batching happened", fsyncs, total)
	}
}

func TestWaitSeqFollowsTail(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan uint64, 1)
	go func() {
		last, err := l.WaitSeq(3, nil)
		if err != nil {
			t.Error(err)
		}
		done <- last
	}()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case last := <-done:
		if last < 3 {
			t.Fatalf("WaitSeq returned %d, want >= 3", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSeq never woke")
	}

	// Stop channel cancels a parked wait.
	stop := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		_, err := l.WaitSeq(100, stop)
		res <- err
	}()
	close(stop)
	if err := <-res; !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped wait: err = %v, want ErrStopped", err)
	}

	// Close wakes parked waiters with ErrClosed.
	res2 := make(chan error, 1)
	go func() {
		_, err := l.WaitSeq(100, nil)
		res2 <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it park
	l.Close()
	select {
	case err := <-res2:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("wait over closed log: err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake WaitSeq")
	}
}

func TestReadRangeConcurrentAndCompacted(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Read a middle range while another goroutine keeps appending.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Append([]byte("noise")) //nolint:errcheck
			}
		}
	}()
	var got []uint64
	err = l.ReadRange(10, 30, func(seq uint64, payload []byte) error {
		got = append(got, seq)
		return nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if len(got) != 21 || got[0] != 10 || got[20] != 30 {
		t.Fatalf("ReadRange delivered %v, want 10..30", got)
	}

	// Compact the prefix: reading it must fail with ErrCompacted.
	if err := l.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if l.FirstSeq() <= 1 {
		t.Fatalf("FirstSeq = %d after Truncate(20), want > 1", l.FirstSeq())
	}
	err = l.ReadRange(1, 30, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadRange over compacted prefix: err = %v, want ErrCompacted", err)
	}
}

func TestSkipToMirrorsNumbering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SkipTo(42); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 41 {
		t.Fatalf("LastSeq after SkipTo(42) = %d, want 41", got)
	}
	if got := l.FirstSeq(); got != 0 {
		t.Fatalf("FirstSeq after SkipTo = %d, want 0 (no records)", got)
	}
	seq, err := l.Append([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("first append after SkipTo(42) got seq %d", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The mirrored numbering must survive a reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, payloads := collect(t, l2, 1)
	if len(seqs) != 1 || seqs[0] != 42 || string(payloads[0]) != "new" {
		t.Fatalf("after reopen: seqs %v payloads %q", seqs, payloads)
	}
}

// BenchmarkAppend8Writers measures SyncAlways append throughput with 8
// concurrent writers, group commit on vs off. SyncDelay models a
// device where fsync is not free; the batched path shares that cost
// across the group, the ablation pays it per record.
func BenchmarkAppend8Writers(b *testing.B) {
	for _, mode := range []struct {
		name string
		off  bool
	}{{"GroupCommit", false}, {"PerAppendFsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Fsync: SyncAlways, SyncDelay: 200 * time.Microsecond, NoGroupCommit: mode.off})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 128)
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
