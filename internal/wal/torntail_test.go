package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment writes a log of n records into a fresh directory and
// returns the single segment file's bytes plus the clean truncation
// boundaries: the header end and each record end. Truncating the file
// at any other offset is a torn tail.
func buildSegment(t *testing.T, n int) (data []byte, boundaries map[int]int) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Varying payload sizes, including empty, so the offsets exercise
		// different framing shapes.
		p := bytes.Repeat([]byte{byte('a' + i)}, i*3)
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if countSegments(t, dir) != 1 {
		t.Fatalf("want exactly one segment, got %d", countSegments(t, dir))
	}
	path := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the record boundaries independently of the writer.
	boundaries = map[int]int{} // offset -> number of complete records at it
	off := headerLen(data)
	if off == 0 {
		t.Fatal("segment has no valid header")
	}
	boundaries[off] = 0
	records := 0
	for off < len(data) {
		_, _, _, next, ok := parseRecord(data, off)
		if !ok {
			t.Fatalf("writer produced an invalid record at offset %d", off)
		}
		records++
		off = next
		boundaries[off] = records
	}
	if records != n {
		t.Fatalf("segment holds %d records, want %d", records, n)
	}
	return data, boundaries
}

// TestTornTailEveryOffset is the exhaustive torn-tail acceptance: a
// multi-record segment truncated at EVERY byte offset must always open
// without a panic, replay exactly the longest prefix of complete
// records, report the tear (wal_truncated_tail_total) when there is
// one, and accept new appends afterwards.
func TestTornTailEveryOffset(t *testing.T) {
	data, boundaries := buildSegment(t, 6)
	for cut := 0; cut <= len(data); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segmentExt))
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			m := newTestMetrics()
			l, err := Open(dir, Options{Metrics: m, Fsync: SyncNever})
			if err != nil {
				t.Fatalf("Open on %d-byte prefix: %v", cut, err)
			}
			defer l.Close()

			// The longest valid prefix: the highest boundary <= cut.
			wantRecords := 0
			clean := false
			for b, n := range boundaries {
				if b <= cut && n >= wantRecords {
					wantRecords = n
				}
				if b == cut {
					clean = true
				}
			}
			seqs, payloads := collect(t, l, 1)
			if len(seqs) != wantRecords {
				t.Fatalf("replayed %d records, want %d", len(seqs), wantRecords)
			}
			for i, seq := range seqs {
				if seq != uint64(i+1) {
					t.Fatalf("record %d has seq %d", i, seq)
				}
				want := bytes.Repeat([]byte{byte('a' + i)}, i*3)
				if !bytes.Equal(payloads[i], want) {
					t.Fatalf("record %d payload %q, want %q (partial record surfaced)", i, payloads[i], want)
				}
			}
			if torn := m.counter("wal_truncated_tail_total"); clean && torn != 0 {
				t.Fatalf("clean boundary %d reported a torn tail", cut)
			} else if !clean && torn != 1 {
				t.Fatalf("torn cut %d reported wal_truncated_tail_total=%d, want 1", cut, torn)
			}
			if got := l.LastSeq(); got != uint64(wantRecords) {
				t.Fatalf("LastSeq = %d, want %d", got, wantRecords)
			}

			// The repaired log must keep appending from the right seq.
			seq, err := l.Append([]byte("resumed"))
			if err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			if seq != uint64(wantRecords+1) {
				t.Fatalf("append after repair got seq %d, want %d", seq, wantRecords+1)
			}
		})
	}
}

// TestTornTailDropsLaterSegments: garbage in the middle of the chain
// makes everything after it unreachable — replay must stop at the last
// record before the tear, even though later segments were intact.
func TestTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 24, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, dir); n < 3 {
		t.Fatalf("need >= 3 segments, got %d", n)
	}
	// Corrupt one byte inside the third segment's record area.
	path := filepath.Join(dir, fmt.Sprintf("%020d%s", 3, segmentExt))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestMetrics()
	l2, err := Open(dir, Options{Metrics: m, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 1)
	if len(seqs) != 2 || seqs[len(seqs)-1] != 2 {
		t.Fatalf("replay after mid-chain corruption = %v, want [1 2]", seqs)
	}
	if m.counter("wal_truncated_tail_total") != 1 {
		t.Fatalf("tear not reported")
	}
	if countSegments(t, dir) > 3 {
		t.Fatalf("later segments survived the tear: %d files", countSegments(t, dir))
	}
}
