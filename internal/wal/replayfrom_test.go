package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// replayAll collects (seq, payload) pairs from Replay(from).
func replayAll(t *testing.T, l *Log, from uint64) (seqs []uint64, payloads []string) {
	t.Helper()
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return
}

// checkSuffixProperty asserts that for every k, Replay(from=k) equals
// the suffix of Replay(from=1) starting at the first seq >= k — the
// resume invariant the replication primary depends on.
func checkSuffixProperty(t *testing.T, l *Log) {
	t.Helper()
	allSeqs, allPayloads := replayAll(t, l, 1)
	last := uint64(0)
	if n := len(allSeqs); n > 0 {
		last = allSeqs[n-1]
	}
	for k := uint64(1); k <= last+2; k++ {
		seqs, payloads := replayAll(t, l, k)
		cut := sort.Search(len(allSeqs), func(i int) bool { return allSeqs[i] >= k })
		wantSeqs, wantPayloads := allSeqs[cut:], allPayloads[cut:]
		if len(seqs) != len(wantSeqs) {
			t.Fatalf("Replay(from=%d): %d records, want %d", k, len(seqs), len(wantSeqs))
		}
		for i := range seqs {
			if seqs[i] != wantSeqs[i] || payloads[i] != wantPayloads[i] {
				t.Fatalf("Replay(from=%d) record %d = (%d, %q), want (%d, %q)",
					k, i, seqs[i], payloads[i], wantSeqs[i], wantPayloads[i])
			}
		}
	}
}

// TestReplayFromBoundaryProperty drives the suffix property over a
// multi-segment log: every from=k boundary, including ones that land
// exactly on segment rotation edges, must yield the suffix of a full
// replay. It then crashes the tail mid-record and checks the property
// still holds over the repaired log.
func TestReplayFromBoundaryProperty(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations, so plenty of from=k boundaries
	// coincide with segment starts.
	l, err := Open(dir, Options{Fsync: SyncNever, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	segBefore := countSegments(t, dir)
	if segBefore < 3 {
		t.Fatalf("want a multi-segment log, got %d segments", segBefore)
	}
	checkSuffixProperty(t, l)
	l.Close()

	// Tear the tail mid-record: chop a few bytes off the last segment,
	// as a crash during a write would.
	names, err := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
	if err != nil || len(names) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(names))
	}
	sort.Strings(names)
	tail := names[len(names)-1]
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Open repairs the tear; the property must hold over what survived.
	l2, err := Open(dir, Options{Fsync: SyncNever, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := replayAll(t, l2, 1)
	if len(seqs) == 0 || len(seqs) >= n {
		t.Fatalf("torn log replayed %d records, want 0 < r < %d", len(seqs), n)
	}
	checkSuffixProperty(t, l2)

	// And appends after the repair keep the property intact across the
	// repaired boundary.
	for i := 0; i < 10; i++ {
		if _, err := l2.Append([]byte(fmt.Sprintf("post-crash-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	checkSuffixProperty(t, l2)

	// Sanity: segment names still parse as first-seq numbers (guards the
	// glob above against picking up stray files).
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), segmentExt)
		if len(base) != 20 {
			t.Fatalf("segment name %q is not %%020d", name)
		}
	}
}
