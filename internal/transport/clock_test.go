package transport

import (
	"testing"
	"time"
)

// fakeHandshake feeds tr one dialer-side handshake sample against a
// peer whose clock runs trueOffset µs ahead, over a link with
// asymmetric one-way latencies out and back: the peer stamps its clock
// after the outbound hop, and the reply lands after the return hop.
func fakeHandshake(tr *TCP, node string, trueOffset, out, back int64) {
	t0 := time.Now().UnixMicro()
	wall := uint64(t0 + out + trueOffset)
	t3 := t0 + out + back
	tr.noteClockRTT(node, wall, t0, t3)
}

// TestClockOffsetSymmetrized checks the dialer-side estimator: under
// heavily asymmetric latencies the midpoint estimate must stay within
// RTT/2 of the true offset — where the naive receive-time sample would
// be off by the full return latency.
func TestClockOffsetSymmetrized(t *testing.T) {
	const trueOffset = int64(250_000) // peer runs 250ms ahead

	cases := []struct {
		name      string
		out, back int64 // one-way latencies, µs
	}{
		{"symmetric", 3_000, 3_000},
		{"slow outbound", 40_000, 1_000},
		{"slow return", 1_000, 40_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := &TCP{offsets: make(map[string]*clockFilter)}
			fakeHandshake(tr, "peer", trueOffset, tc.out, tc.back)
			got := tr.ClockOffsetMicros("peer")
			bound := (tc.out + tc.back) / 2 // RTT/2: the provable error bound
			if err := got - trueOffset; err < -bound || err > bound {
				t.Fatalf("estimate %dµs, true %dµs: error %dµs exceeds RTT/2 = %dµs",
					got, trueOffset, err, bound)
			}
			// The exact midpoint error is (out−back)/2; check we achieve it
			// (±1µs of clock-read slop between t0 capture and the check).
			wantErr := (tc.out - tc.back) / 2
			if err := got - trueOffset - wantErr; err < -1000 || err > 1000 {
				t.Fatalf("estimate error %dµs, want midpoint error %dµs",
					got-trueOffset, wantErr)
			}
		})
	}
}

// TestClockEstimatePreference checks noteEstimate's ordering: a
// round-trip-bounded sample beats the one-way sentinel, a tighter RTT
// beats a looser one, and an equal-uncertainty sample refreshes.
func TestClockEstimatePreference(t *testing.T) {
	tr := &TCP{offsets: make(map[string]*clockFilter)}

	// One-way sample (acceptor side) establishes a biased baseline.
	tr.noteEstimate("p", clockEstimate{off: 100, unc: oneWayUncertainty})
	if got := tr.ClockOffsetMicros("p"); got != 100 {
		t.Fatalf("baseline = %d", got)
	}
	// A round-trip sample replaces it.
	tr.noteEstimate("p", clockEstimate{off: 40, unc: 5_000})
	if got := tr.ClockOffsetMicros("p"); got != 40 {
		t.Fatalf("rtt sample did not replace one-way: %d", got)
	}
	// A later one-way sample must NOT shove the better estimate aside.
	tr.noteEstimate("p", clockEstimate{off: 900, unc: oneWayUncertainty})
	if got := tr.ClockOffsetMicros("p"); got != 40 {
		t.Fatalf("one-way sample displaced rtt estimate: %d", got)
	}
	// A tighter round trip wins; an equally tight one refreshes.
	tr.noteEstimate("p", clockEstimate{off: 42, unc: 2_000})
	tr.noteEstimate("p", clockEstimate{off: 43, unc: 2_000})
	if got := tr.ClockOffsetMicros("p"); got != 43 {
		t.Fatalf("equal-uncertainty refresh lost: %d", got)
	}
	tr.noteEstimate("p", clockEstimate{off: 7, unc: 9_000})
	if got := tr.ClockOffsetMicros("p"); got != 43 {
		t.Fatalf("looser sample displaced tighter estimate: %d", got)
	}
}

// TestNoteClockRTTRejectsGarbage: zeroed clocks and negative round
// trips must leave no estimate behind.
func TestNoteClockRTTRejectsGarbage(t *testing.T) {
	tr := &TCP{offsets: make(map[string]*clockFilter)}
	tr.noteClockRTT("p", 0, 10, 20)
	tr.noteClockRTT("p", 1234, 20, 10)
	if got := tr.ClockOffsetMicros("p"); got != 0 {
		t.Fatalf("garbage sample produced estimate %d", got)
	}
	tr.noteClock("p", 0)
	if got := tr.ClockOffsetMicros("p"); got != 0 {
		t.Fatalf("zero wall clock produced estimate %d", got)
	}
}
