package transport

import "testing"

// lcg is a tiny deterministic pseudo-random source for jitter synthesis
// (no math/rand so the sequence is pinned forever).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 33
}

// TestClockFilterJitterMonotone feeds a long run of synthetic handshake
// samples with jittery RTTs — each sample's offset error bounded by its
// own RTT/2 uncertainty, as noteClockRTT guarantees — and asserts the
// filter's reported uncertainty never increases at a fixed instant, and
// that the offset estimate always stays within its claimed bound of the
// true offset. This is the "tightens monotonically instead of
// resetting" contract from the roadmap.
func TestClockFilterJitterMonotone(t *testing.T) {
	const trueOffset = int64(250_000)
	const now = int64(1_700_000_000_000_000)
	var r lcg = 42
	f := &clockFilter{}

	prevUnc := int64(1<<62 - 1)
	for i := 0; i < 400; i++ {
		// RTT jitter: 2ms..80ms, so unc = RTT/2 in 1ms..40ms.
		unc := int64(1_000 + r.next()%39_000)
		// The midpoint error is at most ±unc; pick it adversarially
		// anywhere in that band.
		errBand := int64(r.next()%uint64(2*unc+1)) - unc
		f.add(clockSample{off: trueOffset + errBand, unc: unc, at: now})

		off, gotUnc, ok := f.estimate(now)
		if !ok {
			t.Fatal("estimate vanished")
		}
		if gotUnc > prevUnc {
			t.Fatalf("sample %d: uncertainty loosened %d → %d", i, prevUnc, gotUnc)
		}
		prevUnc = gotUnc
		if d := off - trueOffset; d < -gotUnc || d > gotUnc {
			t.Fatalf("sample %d: offset error %dµs exceeds claimed bound %dµs", i, d, gotUnc)
		}
	}
	if prevUnc > 5_000 {
		t.Fatalf("400 jittered samples settled at %dµs uncertainty; expected the reservoir to find a tight one", prevUnc)
	}
}

// TestClockFilterSurvivesReconnectStorm: one tight round-trip sample
// followed by a storm of loose one-way reconnect samples (the exact
// sequence a flapping acceptor-side link produces). The pre-filter code
// kept only one cell and was safe here, but the reservoir must also not
// let eviction pressure push the tight sample out.
func TestClockFilterSurvivesReconnectStorm(t *testing.T) {
	const now = int64(1_700_000_000_000_000)
	f := &clockFilter{}
	f.add(clockSample{off: 100, unc: 500, at: now})
	for i := 0; i < 10*clockReservoir; i++ {
		f.add(clockSample{off: 9_999, unc: oneWayUncertainty, at: now + int64(i)})
	}
	off, unc, _ := f.estimate(now + 10*clockReservoir)
	if off != 100 || unc > 1_000 {
		t.Fatalf("storm displaced the tight sample: off=%d unc=%d", off, unc)
	}
	if len(f.samples) > clockReservoir {
		t.Fatalf("reservoir grew unbounded: %d samples", len(f.samples))
	}
}

// TestClockFilterDriftAgeing: a tight but ancient sample must eventually
// yield to a fresh, slightly looser one — worst-case drift makes the old
// bound a lie, and the effective-uncertainty comparison encodes that.
func TestClockFilterDriftAgeing(t *testing.T) {
	const t0 = int64(1_700_000_000_000_000)
	f := &clockFilter{}
	f.add(clockSample{off: 100, unc: 1_000, at: t0})

	// 100s later the old sample's effective bound is 1000 + 100s·50ppm =
	// 6000µs; a fresh 3000µs sample should now win...
	later := t0 + 100_000_000
	f.add(clockSample{off: 700, unc: 3_000, at: later})
	if off, _, _ := f.estimate(later); off != 700 {
		t.Fatalf("aged sample still preferred: off=%d", off)
	}
	// ...whereas immediately after capture the old sample was still best.
	if off, _, _ := f.estimate(t0); off != 100 {
		t.Fatalf("fresh-at-t0 preference wrong: off=%d", off)
	}
}
