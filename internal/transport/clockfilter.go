package transport

// The multi-sample clock filter. A single "keep the best estimate"
// cell (what PR 8 shipped) has two failure modes: a reconnect storm of
// high-RTT handshakes can only ever refresh-or-keep, so one lucky tight
// sample is trusted forever even as the clocks drift apart; and a jittery
// link keeps replacing equal-uncertainty samples, so the estimate jumps
// around instead of settling. The filter instead keeps a small reservoir
// of samples per peer, accumulated across reconnects, and answers with
// the minimum-*effective*-uncertainty sample: the handshake's RTT/2 (or
// one-way sentinel) bound, inflated by an assumed worst-case drift for
// the sample's age. Adding a sample can therefore only tighten (or age
// gracefully) the estimate — it never resets on reconnect — and a stale
// tight sample eventually yields to fresher ones as drift outgrows its
// original bound.

const (
	// clockReservoir bounds the per-peer sample set. Eight covers several
	// reconnect rounds without letting a flapping link hoard memory.
	clockReservoir = 8
	// clockDriftPPM is the assumed worst-case relative drift between two
	// peers' clocks, in parts per million (µs of new uncertainty per
	// second of sample age). 50ppm is conservative for machines without
	// NTP discipline; with it, a 1ms-tight sample stays competitive for
	// ~20s per ms of looseness in its challengers.
	clockDriftPPM = 50
)

// clockSample is one handshake-derived offset observation: remote−local
// in µs, its worst-case error at capture time, and when it was captured
// (local clock, µs) for drift ageing.
type clockSample struct {
	off int64
	unc int64
	at  int64
}

// effective is the sample's uncertainty grown by worst-case drift since
// capture. A non-positive age (clock stepped backwards) adds nothing.
func (s clockSample) effective(nowMicros int64) int64 {
	age := nowMicros - s.at
	if age <= 0 {
		return s.unc
	}
	return s.unc + age*clockDriftPPM/1_000_000
}

// clockFilter is the per-peer reservoir. Not self-locking: the owning
// transport guards it with its own mutex.
type clockFilter struct {
	samples []clockSample
}

// add inserts a sample, evicting the worst-effective-uncertainty sample
// (oldest on ties) once the reservoir is full — so the best evidence is
// never displaced by a flood of loose reconnect samples.
func (f *clockFilter) add(s clockSample) {
	f.samples = append(f.samples, s)
	if len(f.samples) <= clockReservoir {
		return
	}
	worst := 0
	for i := 1; i < len(f.samples); i++ {
		wi, ei := f.samples[worst].effective(s.at), f.samples[i].effective(s.at)
		if ei > wi || (ei == wi && f.samples[i].at < f.samples[worst].at) {
			worst = i
		}
	}
	f.samples = append(f.samples[:worst], f.samples[worst+1:]...)
}

// estimate returns the offset and effective uncertainty of the best
// sample at nowMicros (freshest on ties), or ok=false when empty.
func (f *clockFilter) estimate(nowMicros int64) (off, unc int64, ok bool) {
	if len(f.samples) == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < len(f.samples); i++ {
		bu, iu := f.samples[best].effective(nowMicros), f.samples[i].effective(nowMicros)
		if iu < bu || (iu == bu && f.samples[i].at >= f.samples[best].at) {
			best = i
		}
	}
	return f.samples[best].off, f.samples[best].effective(nowMicros), true
}
