// Package transport moves wire frames between named nodes. It is the
// substrate under the multi-process distributed runtime: the cluster
// layer (internal/dist) routes evaluator messages and quiescence-control
// frames through a Transport without knowing whether the other node is a
// goroutine in the same process (InProc) or a process across a socket
// (TCP).
//
// Both implementations give the same two guarantees the evaluation model
// needs:
//
//   - FIFO per directed node pair: frames from node A to node B are
//     delivered in the order A sent them (the paper's per-sender ordering
//     assumption, extended across processes).
//   - Exactly-once delivery: every frame sent is delivered once, even
//     across dropped connections (TCP reconnects, replays its unacked
//     tail, and the receiver drops duplicates by stream sequence number).
//
// Frames are delivered to the handler one sender at a time, so handlers
// need no per-sender locking of their own; handlers must be cheap (an
// enqueue), never blocking, because they run on the receive path.
package transport

import (
	"errors"

	"repro/internal/wire"
)

// Handler receives one inbound frame. It runs on the transport's receive
// path: calls for the same sending node are sequential (preserving that
// sender's FIFO order); calls for different senders may be concurrent. It
// must not block and must not call back into the transport synchronously
// with unbounded work — hand the frame off and return.
type Handler func(from string, f wire.Frame)

// Transport is a full-duplex frame mover between this node and any named
// node it has a route to.
type Transport interface {
	// Self returns this node's name (the identity sent in handshakes).
	Self() string
	// Start installs the inbound handler and begins delivering frames.
	// Must be called exactly once, before the first Send.
	Start(h Handler) error
	// Send enqueues f for the named node and returns immediately. Frames
	// to the same destination are delivered in Send order.
	Send(node string, f wire.Frame) error
	// AddRoute teaches the transport where a node lives. The address
	// format is implementation-defined; InProc ignores it.
	AddRoute(node, addr string)
	// Stats returns a snapshot of the transport's I/O counters.
	Stats() Stats
	// ClockOffsetMicros reports the estimated wall-clock offset of the
	// named node relative to this one (remote minus local, in
	// microseconds), measured from the wall-clock samples exchanged in
	// the Hello handshake. 0 when unknown or when the nodes share a
	// clock (in-process). Dialer-side samples are symmetrized against
	// the handshake round trip (NTP midpoint, worst-case error RTT/2)
	// and preferred over one-way acceptor-side samples — good enough to
	// align trace timelines, not to order events.
	ClockOffsetMicros(node string) int64
	// Close shuts the transport down, flushing frames already queued to
	// connected nodes on a best-effort basis.
	Close() error
}

// Stats counts a transport's I/O. Bytes are encoded frame bytes including
// length prefixes (what actually crosses the wire), so they sit a few
// percent above the payload-byte figures the runtime reports per pair.
type Stats struct {
	Dials          uint64 // successful outbound handshakes
	Reconnects     uint64 // successful handshakes after a drop (subset of Dials)
	FramesSent     uint64
	FramesReceived uint64 // after duplicate suppression
	Duplicates     uint64 // frames dropped as replays
	BytesSent      uint64
	BytesReceived  uint64
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// ErrNoRoute is returned by Send for a node with no known address.
var ErrNoRoute = errors.New("transport: no route to node")
