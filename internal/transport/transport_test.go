package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// collector records inbound frames and lets tests wait for a count.
type collector struct {
	mu     sync.Mutex
	frames []wire.Frame
	froms  []string
	ch     chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1)}
}

func (c *collector) handle(from string, f wire.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.froms = append(c.froms, from)
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *collector) waitFor(t *testing.T, n int) []wire.Frame {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		c.mu.Lock()
		if len(c.frames) >= n {
			out := append([]wire.Frame(nil), c.frames...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.ch:
		case <-deadline:
			c.mu.Lock()
			got := len(c.frames)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d frames, have %d", n, got)
		}
	}
}

// assertSequential checks the frames are Stop{Err: "0"}, Stop{Err: "1"}, …
// — exactly once each, in order.
func assertSequential(t *testing.T, frames []wire.Frame, n int) {
	t.Helper()
	if len(frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(frames), n)
	}
	for i, f := range frames {
		s, ok := f.(wire.Stop)
		if !ok || s.Err != fmt.Sprint(i) {
			t.Fatalf("frame %d = %#v, want Stop{%d}", i, f, i)
		}
	}
}

func TestInProcFIFO(t *testing.T) {
	mesh := NewMesh()
	a, b := mesh.Node("a"), mesh.Node("b")
	col := newCollector()
	if err := b.Start(col.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(func(string, wire.Frame) {}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", wire.Stop{Err: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	assertSequential(t, col.waitFor(t, n), n)
	if st := a.Stats(); st.FramesSent != n || st.BytesSent == 0 {
		t.Fatalf("sender stats = %+v", st)
	}
	if st := b.Stats(); st.FramesReceived != n || st.BytesReceived == 0 {
		t.Fatalf("receiver stats = %+v", st)
	}
}

func TestInProcNoRoute(t *testing.T) {
	mesh := NewMesh()
	a := mesh.Node("a")
	if err := a.Start(func(string, wire.Frame) {}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.Send("ghost", wire.Poll{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

// tcpPair builds two connected TCP transports on ephemeral ports.
func tcpPair(t *testing.T, aHandler, bHandler Handler) (*TCP, *TCP) {
	t.Helper()
	a, err := ListenTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("b", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddRoute("b", b.Addr())
	b.AddRoute("a", a.Addr())
	if err := a.Start(aHandler); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(bHandler); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPFIFOExactlyOnce(t *testing.T) {
	col := newCollector()
	a, _ := tcpPair(t, func(string, wire.Frame) {}, col.handle)

	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send("b", wire.Stop{Err: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	assertSequential(t, col.waitFor(t, n), n)
}

func TestTCPBidirectional(t *testing.T) {
	colA, colB := newCollector(), newCollector()
	a, b := tcpPair(t, colA.handle, colB.handle)

	if err := a.Send("b", wire.Poll{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", wire.Status{Epoch: 1, Idle: true}); err != nil {
		t.Fatal(err)
	}
	if f := colB.waitFor(t, 1)[0]; f.(wire.Poll).Epoch != 1 {
		t.Fatalf("b got %#v", f)
	}
	if f := colA.waitFor(t, 1)[0]; !f.(wire.Status).Idle {
		t.Fatalf("a got %#v", f)
	}
	colA.mu.Lock()
	from := colA.froms[0]
	colA.mu.Unlock()
	if from != "b" {
		t.Fatalf("a got frame from %q, want b", from)
	}
}

// TestTCPReconnectExactlyOnce is the transport-level fault-injection
// test: connections are torn down repeatedly in mid-stream and every
// frame must still arrive exactly once, in order, via handshake replay
// plus receiver-side duplicate suppression.
func TestTCPReconnectExactlyOnce(t *testing.T) {
	col := newCollector()
	a, b := tcpPair(t, func(string, wire.Frame) {}, col.handle)

	// A goroutine streams frames continuously while the main goroutine
	// tears down every connection at three points of observed progress —
	// so drops strand frames that are genuinely in flight and the
	// handshake replay has real work to do.
	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			if a.Send("b", wire.Stop{Err: fmt.Sprint(i)}) != nil {
				return
			}
		}
	}()
	for _, target := range []int{n / 4, n / 2, 3 * n / 4} {
		col.waitFor(t, target)
		a.DropConns()
		b.DropConns()
	}

	assertSequential(t, col.waitFor(t, n), n)

	// Reconnects are counted at handshake completion, which may trail the
	// last delivery; wait for the counter rather than the clock.
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats().Reconnects == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ast, bst := a.Stats(), b.Stats()
	if ast.Reconnects == 0 {
		t.Fatalf("sender never reconnected: %+v", ast)
	}
	if bst.FramesReceived != n {
		t.Fatalf("receiver counted %d frames, want %d", bst.FramesReceived, n)
	}
}

// TestTCPDuplicateSuppression speaks the protocol by hand: a client that
// ignores the handshake's LastSeq and replays already-delivered frames
// must have exactly the replays discarded.
func TestTCPDuplicateSuppression(t *testing.T) {
	col := newCollector()
	b, err := ListenTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := b.Start(col.handle); err != nil {
		t.Fatal(err)
	}

	dial := func() (net.Conn, wire.Hello) {
		t.Helper()
		conn, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		if err := writeFrame(conn, 0, wire.Hello{Version: wire.Version, Node: "x"}); err != nil {
			t.Fatal(err)
		}
		_, f, err := readFrame(bufio.NewReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		return conn, f.(wire.Hello)
	}

	conn, hello := dial()
	if hello.LastSeq != 0 {
		t.Fatalf("fresh handshake LastSeq = %d", hello.LastSeq)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := writeFrame(conn, seq, wire.Stop{Err: fmt.Sprint(seq - 1)}); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 10)
	conn.Close()

	conn2, hello2 := dial()
	if hello2.LastSeq != 10 {
		t.Fatalf("reconnect handshake LastSeq = %d, want 10", hello2.LastSeq)
	}
	// Replay 5..10 (already delivered) and continue with 11..15.
	for seq := uint64(5); seq <= 15; seq++ {
		if err := writeFrame(conn2, seq, wire.Stop{Err: fmt.Sprint(seq - 1)}); err != nil {
			t.Fatal(err)
		}
	}
	assertSequential(t, col.waitFor(t, 15), 15)
	if st := b.Stats(); st.Duplicates != 6 || st.FramesReceived != 15 {
		t.Fatalf("stats = %+v, want 6 duplicates over 15 frames", st)
	}
}

// TestTCPSendBeforeRoute: sends to unrouted nodes fail fast instead of
// queueing forever.
func TestTCPSendBeforeRoute(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.Start(func(string, wire.Frame) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("nowhere", wire.Poll{}); err == nil {
		t.Fatal("send without route succeeded")
	}
}

// TestTCPCloseFlushes: frames queued on a connected stream are delivered
// before Close returns.
func TestTCPCloseFlushes(t *testing.T) {
	col := newCollector()
	a, _ := tcpPair(t, func(string, wire.Frame) {}, col.handle)

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", wire.Stop{Err: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	assertSequential(t, col.waitFor(t, n), n)
}

// TestTCPClockOffset: after a handshake in either direction, both sides
// hold a clock-offset estimate for the peer. Same machine, same clock —
// the estimate must be near zero (bounded by handshake latency), and the
// in-process mesh reports exactly zero.
func TestTCPClockOffset(t *testing.T) {
	colB := newCollector()
	a, b := tcpPair(t, func(string, wire.Frame) {}, colB.handle)

	if err := a.Send("b", wire.Poll{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	colB.waitFor(t, 1)

	const bound = int64(5 * time.Second / time.Microsecond)
	if off := a.ClockOffsetMicros("b"); off < -bound || off > bound {
		t.Fatalf("a's offset estimate for b = %dµs, want |off| < %dµs", off, bound)
	}
	if off := b.ClockOffsetMicros("a"); off < -bound || off > bound {
		t.Fatalf("b's offset estimate for a = %dµs, want |off| < %dµs", off, bound)
	}
	if off := a.ClockOffsetMicros("ghost"); off != 0 {
		t.Fatalf("offset for unknown node = %d, want 0", off)
	}

	mesh := NewMesh()
	if off := mesh.Node("x").ClockOffsetMicros("y"); off != 0 {
		t.Fatalf("in-proc offset = %d, want 0", off)
	}
}
