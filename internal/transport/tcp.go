package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Timing knobs of the TCP transport. Vars, not consts, so fault-injection
// tests can tighten them; production code leaves them alone.
var (
	// handshakeTimeout bounds the Hello exchange on a fresh connection.
	handshakeTimeout = 5 * time.Second
	// writeTimeout bounds each batched write; a peer that cannot accept a
	// batch for this long is treated as disconnected.
	writeTimeout = 10 * time.Second
	// redialBase and redialCap bound the exponential reconnect backoff;
	// each wait is jittered ±50% so peers dialing a restarted node do not
	// thundering-herd it.
	redialBase = 10 * time.Millisecond
	redialCap  = time.Second
	// closeGrace is how long Close keeps redialing on behalf of a stream
	// that still has undelivered frames before giving up on the flush.
	closeGrace = 2 * time.Second
)

// ackEvery is the duplicate-suppression ack cadence: the receiver
// acknowledges every ackEvery-th sequenced frame, bounding the sender's
// resend buffer without an ack per frame.
const ackEvery = 32

// TCP is the socket Transport. Each directed node pair uses its own
// connection: the dialer writes sequenced frames, the acceptor writes
// back only handshake and ack frames. Connections are dialed on demand,
// survive drops by reconnecting with exponential backoff and replaying
// the unacked tail, and deliver exactly once — the receiver tracks the
// last sequence number delivered per sending node (across connections)
// and discards replays.
type TCP struct {
	self string
	boot uint64 // this instance's incarnation, exchanged in the handshake
	ln   net.Listener

	mu       sync.Mutex
	handler  Handler
	routes   map[string]string
	outs     map[string]*outbound
	conns    map[net.Conn]struct{} // inbound connections
	recv     map[string]*recvState
	offsets  map[string]*clockFilter // per-node clock offset sample reservoirs
	closed   bool
	closedAt time.Time
	stats    Stats

	wg sync.WaitGroup // acceptor + inbound readers
}

// recvState is the per-sending-node duplicate filter. Its mutex also
// serializes delivery for that sender, so an old connection draining its
// last frames cannot interleave with a replacement connection. The state
// is scoped to one remote incarnation (boot): a restarted process with
// the same node name starts a fresh sequence space.
type recvState struct {
	mu      sync.Mutex
	boot    uint64 // incarnation the filter state belongs to
	lastSeq uint64
	since   int // sequenced frames since the last ack
}

// outbound is one directed stream to a remote node: a queue of encoded,
// sequence-numbered frames, of which the prefix up to sendIdx has been
// transmitted on the current connection but not yet acknowledged.
type outbound struct {
	t    *TCP
	node string

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []outFrame // unacked frames, ascending seq
	sendIdx int        // buf[:sendIdx] transmitted on the current conn
	nextSeq uint64
	conn    net.Conn // nil while disconnected
	closed  bool
	done    chan struct{}
}

type outFrame struct {
	seq uint64
	enc []byte // full frame including length prefix
}

// ListenTCP creates a TCP transport for node self, listening on addr
// (use ":0" for an ephemeral port; Addr reports the bound address).
func ListenTCP(self, addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var boot [8]byte
	if _, err := crand.Read(boot[:]); err != nil {
		ln.Close()
		return nil, err
	}
	return &TCP{
		self:    self,
		boot:    binary.LittleEndian.Uint64(boot[:]),
		ln:      ln,
		routes:  make(map[string]string),
		outs:    make(map[string]*outbound),
		conns:   make(map[net.Conn]struct{}),
		recv:    make(map[string]*recvState),
		offsets: make(map[string]*clockFilter),
	}, nil
}

// Self returns the node name.
func (t *TCP) Self() string { return t.self }

// Addr returns the listener's bound address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// AddRoute maps a node name to its host:port.
func (t *TCP) AddRoute(node, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[node] = addr
}

// clockEstimate is one node's wall-clock offset estimate (remote −
// local, µs) together with its worst-case error: RTT/2 for a dialer's
// round-trip-symmetrized sample, a handshake-timeout sentinel for an
// acceptor's one-way sample.
type clockEstimate struct {
	off int64
	unc int64
}

// oneWayUncertainty bounds the error of an acceptor-side sample: the
// remote stamped its clock before a network hop of unknown length, so
// nothing tighter than the handshake timeout can be promised. Any
// round-trip-bounded estimate beats it.
var oneWayUncertainty = int64(handshakeTimeout / time.Microsecond)

// ClockOffsetMicros returns the wall-clock offset of node relative to this
// one (remote − local, µs), from the lowest-effective-uncertainty Hello
// sample in the node's reservoir; 0 before any handshake.
func (t *TCP) ClockOffsetMicros(node string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.offsets[node]
	if f == nil {
		return 0
	}
	off, _, _ := f.estimate(time.Now().UnixMicro())
	return off
}

// noteClock records an acceptor-side sample: the peer's handshake
// wall-clock reading against our clock at receipt. The estimate is
// biased by the one-way handshake latency, so it carries the sentinel
// uncertainty and yields to any round-trip-timed estimate.
func (t *TCP) noteClock(node string, wallMicros uint64) {
	if wallMicros == 0 {
		return // pre-v4 peer or zeroed clock: no estimate
	}
	off := int64(wallMicros) - time.Now().UnixMicro()
	t.noteEstimate(node, clockEstimate{off: off, unc: oneWayUncertainty})
}

// noteClockRTT records a dialer-side sample with full round-trip
// timing, the NTP midpoint estimate: the peer read its clock somewhere
// between our send (t0) and our receive (t3), so remote − local is
// wallMicros minus the interval's midpoint, with worst-case error
// RTT/2 whatever the latency asymmetry. This removes the systematic
// one-way bias the acceptor-side sample carries.
func (t *TCP) noteClockRTT(node string, wallMicros uint64, t0, t3 int64) {
	if wallMicros == 0 || t3 < t0 {
		return
	}
	rtt := t3 - t0
	off := int64(wallMicros) - (t0 + rtt/2)
	t.noteEstimate(node, clockEstimate{off: off, unc: rtt/2 + 1})
}

// noteEstimate folds one sample into the node's reservoir. The filter
// answers with the minimum-effective-uncertainty sample, so the estimate
// tightens monotonically across reconnects instead of resetting, and a
// stale tight sample yields only once drift outgrows its original bound.
func (t *TCP) noteEstimate(node string, e clockEstimate) {
	t.mu.Lock()
	f := t.offsets[node]
	if f == nil {
		f = &clockFilter{}
		t.offsets[node] = f
	}
	f.add(clockSample{off: e.off, unc: e.unc, at: time.Now().UnixMicro()})
	t.mu.Unlock()
}

// Start begins accepting connections and delivering frames to h.
func (t *TCP) Start(h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		return fmt.Errorf("transport: TCP %q started twice", t.self)
	}
	t.handler = h
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Send enqueues f on the stream to node. The frame survives connection
// drops: it stays buffered until the receiving node acknowledges it.
func (t *TCP) Send(node string, f wire.Frame) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if _, ok := t.routes[node]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRoute, node)
	}
	o, ok := t.outs[node]
	if !ok {
		o = &outbound{t: t, node: node, nextSeq: 1, done: make(chan struct{})}
		o.cond = sync.NewCond(&o.mu)
		t.outs[node] = o
		go o.run()
	}
	t.mu.Unlock()

	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return ErrClosed
	}
	seq := o.nextSeq
	o.nextSeq++
	body := wire.AppendFrame(nil, seq, f)
	if len(body) > wire.MaxFrame {
		o.mu.Unlock()
		return fmt.Errorf("transport: frame of %d bytes exceeds wire.MaxFrame", len(body))
	}
	enc := binary.AppendUvarint(make([]byte, 0, len(body)+4), uint64(len(body)))
	enc = append(enc, body...)
	o.buf = append(o.buf, outFrame{seq: seq, enc: enc})
	o.cond.Broadcast()
	o.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the transport's counters.
func (t *TCP) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// DropConns closes every live connection (inbound and outbound) without
// closing the transport — the fault-injection hook. Outbound streams
// reconnect and replay their unacked tails; the per-sender sequence
// filter on the receiving side discards any replayed frame that had
// already been delivered.
func (t *TCP) DropConns() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	outs := make([]*outbound, 0, len(t.outs))
	for _, o := range t.outs {
		outs = append(outs, o)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, o := range outs {
		o.dropConn(nil)
	}
}

// Close shuts the transport down. Streams that are connected flush their
// queued frames best-effort; disconnected streams give up immediately.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.closedAt = time.Now()
	outs := make([]*outbound, 0, len(t.outs))
	for _, o := range t.outs {
		outs = append(outs, o)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, o := range outs {
		o.close()
	}
	for _, o := range outs {
		<-o.done
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// --- inbound -------------------------------------------------------------

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

func (t *TCP) forgetConn(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
	conn.Close()
}

func (t *TCP) recvState(node string) *recvState {
	t.mu.Lock()
	defer t.mu.Unlock()
	rs, ok := t.recv[node]
	if !ok {
		rs = &recvState{}
		t.recv[node] = rs
	}
	return rs
}

// serveConn handles one inbound connection: Hello exchange, then a read
// loop delivering sequenced frames through the duplicate filter, writing
// back an ack every ackEvery frames.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer t.forgetConn(conn)

	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	_, f, err := readFrame(br)
	if err != nil {
		return
	}
	hello, ok := f.(wire.Hello)
	if !ok || hello.Version != wire.Version {
		return
	}
	from := hello.Node
	t.noteClock(from, hello.WallMicros)

	// Reply with the last sequence number already delivered from this
	// node, so a reconnecting sender replays exactly the lost tail. A new
	// incarnation of the node (same name, fresh Boot) starts a fresh
	// sequence space: keeping the old filter would drop its frames as
	// replays of its predecessor's.
	rs := t.recvState(from)
	rs.mu.Lock()
	if rs.boot != hello.Boot {
		rs.boot = hello.Boot
		rs.lastSeq = 0
		rs.since = 0
	}
	reply := wire.Hello{Version: wire.Version, Node: t.self, Boot: t.boot, WallMicros: uint64(time.Now().UnixMicro()), LastSeq: rs.lastSeq}
	rs.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if err := writeFrame(conn, 0, reply); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	for {
		n, f, err := readFrame(br)
		if err != nil {
			return
		}
		seq, frame := n, f
		if seq == 0 {
			continue // unsequenced frames are connection control; none inbound today
		}
		// Deliver under the sender's lock: duplicate check, handler call,
		// and ack bookkeeping are one atomic step per sender, which keeps
		// FIFO delivery intact even while an old and a new connection
		// from the same node briefly coexist.
		rs.mu.Lock()
		if seq <= rs.lastSeq {
			rs.mu.Unlock()
			t.mu.Lock()
			t.stats.Duplicates++
			t.mu.Unlock()
			continue
		}
		rs.lastSeq = seq
		rs.since++
		// Ack every ackEvery frames, and additionally whenever the inbound
		// stream goes idle: a quiescent sender then holds no unacked tail,
		// so closing it later cannot trigger a pointless flush-redial of
		// frames the receiver already has.
		ack := rs.since >= ackEvery || br.Buffered() == 0
		if ack {
			rs.since = 0
		}
		t.mu.Lock()
		t.stats.FramesReceived++
		t.stats.BytesReceived += frameBytes(seq, frame)
		h := t.handler
		t.mu.Unlock()
		h(from, frame)
		rs.mu.Unlock()

		if ack {
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := writeFrame(conn, 0, wire.Ack{Seq: seq}); err != nil {
				return
			}
		}
	}
}

func frameBytes(seq uint64, f wire.Frame) uint64 {
	body := wire.AppendFrame(nil, seq, f)
	return uint64(len(body)) + uint64(uvarintLen(uint64(len(body))))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readFrame reads one length-prefixed frame and decodes it.
func readFrame(br *bufio.Reader) (uint64, wire.Frame, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, err
	}
	if size > wire.MaxFrame {
		return 0, nil, fmt.Errorf("transport: frame length %d exceeds wire.MaxFrame", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return decode(body)
}

func decode(body []byte) (uint64, wire.Frame, error) {
	seq, f, err := wire.DecodeFrame(body)
	if err != nil {
		return 0, nil, err
	}
	return seq, f, nil
}

// writeFrame writes one length-prefixed frame directly to w.
func writeFrame(w io.Writer, seq uint64, f wire.Frame) error {
	body := wire.AppendFrame(nil, seq, f)
	enc := binary.AppendUvarint(make([]byte, 0, len(body)+4), uint64(len(body)))
	enc = append(enc, body...)
	_, err := w.Write(enc)
	return err
}

// --- outbound ------------------------------------------------------------

func (o *outbound) close() {
	o.mu.Lock()
	o.closed = true
	if o.conn != nil {
		// Wake a writer blocked in cond.Wait and unstick one blocked in a
		// write; the run loop flushes what it can first.
		o.cond.Broadcast()
	}
	o.cond.Broadcast()
	o.mu.Unlock()
}

// dropConn closes the stream's current connection (any connection when
// conn is nil), sending the writer back to redial and replay.
func (o *outbound) dropConn(conn net.Conn) {
	o.mu.Lock()
	c := o.conn
	if c != nil && (conn == nil || conn == c) {
		o.conn = nil
		o.sendIdx = 0 // retransmit the unacked tail on the next connection
		o.cond.Broadcast()
	}
	o.mu.Unlock()
	if c != nil && (conn == nil || conn == c) {
		c.Close()
	}
}

// ack trims frames acknowledged up to seq from the resend buffer.
func (o *outbound) ack(seq uint64) {
	o.mu.Lock()
	n := 0
	for n < len(o.buf) && o.buf[n].seq <= seq {
		n++
	}
	if n > 0 {
		o.buf = o.buf[n:]
		o.sendIdx -= n
		if o.sendIdx < 0 {
			o.sendIdx = 0
		}
	}
	o.mu.Unlock()
}

// run is the stream's writer loop: dial, handshake, replay, stream, and
// on any error start over — until closed and drained.
func (o *outbound) run() {
	defer close(o.done)
	dials := 0
	for {
		o.mu.Lock()
		for o.sendIdx >= len(o.buf) && !o.closed {
			o.cond.Wait()
		}
		if o.closed && o.sendIdx >= len(o.buf) {
			o.mu.Unlock()
			return
		}
		o.mu.Unlock()

		conn, br, lastSeq, err := o.dial(dials)
		if err != nil {
			return // transport closed while redialing
		}
		dials++
		o.ack(lastSeq) // the receiver already has everything up to lastSeq

		o.mu.Lock()
		o.conn = conn
		o.sendIdx = 0
		o.mu.Unlock()

		// Ack reader for this connection: trims the resend buffer and
		// detects the peer closing the connection. It inherits the
		// handshake's buffered reader so no bytes are stranded.
		go func(c net.Conn, br *bufio.Reader) {
			for {
				_, f, err := readFrame(br)
				if err != nil {
					o.dropConn(c)
					return
				}
				if a, ok := f.(wire.Ack); ok {
					o.ack(a.Seq)
				}
			}
		}(conn, br)

		o.stream(conn)
	}
}

// stream writes queued frames to conn, coalescing bursts through one
// buffered writer and flushing whenever the queue drains, until the
// connection drops or the stream closes with an empty queue.
func (o *outbound) stream(conn net.Conn) {
	bw := bufio.NewWriter(conn)
	for {
		o.mu.Lock()
		// Wait for work, pushing coalesced bytes out before each sleep.
		for o.sendIdx >= len(o.buf) && !o.closed && o.conn == conn {
			if bw.Buffered() > 0 {
				o.mu.Unlock()
				if err := bw.Flush(); err != nil {
					o.dropConn(conn)
					return
				}
				o.mu.Lock()
				continue // the queue may have refilled during the flush
			}
			o.cond.Wait()
		}
		if o.conn != conn {
			o.mu.Unlock()
			return // dropped; run() redials
		}
		if o.sendIdx >= len(o.buf) {
			// closed and drained
			o.mu.Unlock()
			bw.Flush()
			o.dropConn(conn)
			return
		}
		f := o.buf[o.sendIdx]
		o.sendIdx++
		o.mu.Unlock()

		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := bw.Write(f.enc); err != nil {
			o.dropConn(conn)
			return
		}
		o.t.mu.Lock()
		o.t.stats.FramesSent++
		o.t.stats.BytesSent += uint64(len(f.enc))
		o.t.mu.Unlock()
	}
}

// dial connects to the stream's node and completes the Hello exchange,
// retrying with exponential backoff and ±50% jitter until it succeeds or
// the transport closes. It returns the peer's last delivered sequence
// number for replay trimming.
func (o *outbound) dial(attemptBase int) (net.Conn, *bufio.Reader, uint64, error) {
	backoff := redialBase
	for attempt := 0; ; attempt++ {
		o.mu.Lock()
		pending := o.sendIdx < len(o.buf)
		streamClosed := o.closed
		o.mu.Unlock()
		if streamClosed && !pending {
			return nil, nil, 0, ErrClosed
		}
		o.t.mu.Lock()
		tClosed, closedAt := o.t.closed, o.t.closedAt
		o.t.mu.Unlock()
		if tClosed && (!pending || time.Since(closedAt) > closeGrace) {
			// Closing: keep dialing only as a best-effort flush of frames
			// already queued, and only within the grace window.
			return nil, nil, 0, ErrClosed
		}

		o.t.mu.Lock()
		addr := o.t.routes[o.node]
		o.t.mu.Unlock()

		conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
		if err == nil {
			conn.SetDeadline(time.Now().Add(handshakeTimeout))
			t0 := time.Now().UnixMicro()
			err = writeFrame(conn, 0, wire.Hello{Version: wire.Version, Node: o.t.self, Boot: o.t.boot, WallMicros: uint64(t0)})
			var hello wire.Hello
			br := bufio.NewReader(conn)
			if err == nil {
				var f wire.Frame
				_, f, err = readFrame(br)
				if err == nil {
					var ok bool
					if hello, ok = f.(wire.Hello); !ok || hello.Version != wire.Version {
						err = fmt.Errorf("transport: bad handshake from %q", o.node)
					}
				}
			}
			if err == nil {
				// The dialer saw the whole round trip: symmetrize the sample.
				o.t.noteClockRTT(o.node, hello.WallMicros, t0, time.Now().UnixMicro())
				conn.SetDeadline(time.Time{})
				o.t.mu.Lock()
				o.t.stats.Dials++
				if attemptBase+attempt > 0 {
					o.t.stats.Reconnects++
				}
				o.t.mu.Unlock()
				return conn, br, hello.LastSeq, nil
			}
			conn.Close()
		}
		if tClosed {
			// Closing and the flush dial failed: the remote node is gone
			// for good (a live listener would have accepted), so burning
			// the rest of the grace window on redials helps nobody.
			return nil, nil, 0, ErrClosed
		}

		// Jittered exponential backoff before the next attempt.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		time.Sleep(sleep)
		backoff *= 2
		if backoff > redialCap {
			backoff = redialCap
		}
	}
}
