package transport

import (
	"fmt"
	"sync"

	"repro/internal/wire"
)

// Mesh connects InProc transports by name within one process. It is the
// default substrate: a cluster over a Mesh behaves exactly like the
// single-process runtime, except that every frame still round-trips
// through the wire codec — so byte counts are real and codec bugs surface
// in ordinary tests, not just over sockets.
type Mesh struct {
	mu    sync.Mutex
	nodes map[string]*InProc
}

// NewMesh returns an empty mesh.
func NewMesh() *Mesh {
	return &Mesh{nodes: make(map[string]*InProc)}
}

// Node returns the mesh's transport for the given name, creating it on
// first use.
func (m *Mesh) Node(name string) *InProc {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		n = &InProc{mesh: m, self: name}
		n.cond = sync.NewCond(&n.mu)
		m.nodes[name] = n
	}
	return n
}

type inFrame struct {
	from string
	enc  []byte
}

// InProc is the in-process Transport: Send encodes the frame and appends
// it to the destination's inbox; a single delivery goroutine per node
// decodes and hands frames to the handler. One inbox per node keeps
// per-sender FIFO trivially, and the encode/decode round trip keeps the
// wire codec honest.
type InProc struct {
	mesh *Mesh
	self string

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []inFrame
	handler Handler
	started bool
	closed  bool
	done    chan struct{}
	stats   Stats
}

// Self returns the node name.
func (n *InProc) Self() string { return n.self }

// AddRoute is a no-op: mesh nodes address each other by name.
func (n *InProc) AddRoute(node, addr string) {}

// ClockOffsetMicros is always 0: mesh nodes share one process clock.
func (n *InProc) ClockOffsetMicros(node string) int64 { return 0 }

// Start begins delivering inbound frames to h.
func (n *InProc) Start(h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("transport: InProc %q started twice", n.self)
	}
	n.started = true
	n.handler = h
	n.done = make(chan struct{})
	go n.deliver()
	return nil
}

// Send encodes f and appends it to node's inbox.
func (n *InProc) Send(node string, f wire.Frame) error {
	enc := wire.AppendFrame(nil, 0, f)

	n.mesh.mu.Lock()
	dst, ok := n.mesh.nodes[node]
	n.mesh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoute, node)
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.stats.FramesSent++
	n.stats.BytesSent += uint64(len(enc))
	n.mu.Unlock()

	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrClosed, node)
	}
	dst.inbox = append(dst.inbox, inFrame{from: n.self, enc: enc})
	dst.cond.Broadcast()
	dst.mu.Unlock()
	return nil
}

func (n *InProc) deliver() {
	defer close(n.done)
	for {
		n.mu.Lock()
		for len(n.inbox) == 0 && !n.closed {
			n.cond.Wait()
		}
		if len(n.inbox) == 0 { // closed and drained
			n.mu.Unlock()
			return
		}
		f := n.inbox[0]
		n.inbox = n.inbox[1:]
		n.stats.FramesReceived++
		n.stats.BytesReceived += uint64(len(f.enc))
		h := n.handler
		n.mu.Unlock()

		_, frame, err := wire.DecodeFrame(f.enc)
		if err != nil {
			// An in-process frame that does not survive its own codec is
			// a codec bug; surface it loudly rather than dropping it.
			panic(fmt.Sprintf("transport: InProc %q: frame from %q does not decode: %v", n.self, f.from, err))
		}
		h(f.from, frame)
	}
}

// Stats returns a snapshot of the node's counters.
func (n *InProc) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close stops the node after draining already-queued inbound frames.
func (n *InProc) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.cond.Broadcast()
	started := n.started
	done := n.done
	n.mu.Unlock()
	if started {
		<-done
	}
	return nil
}
