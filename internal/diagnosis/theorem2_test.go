package diagnosis

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/petri"
	"repro/internal/rel"
	"repro/internal/term"
	"repro/internal/unfold"
)

// evalUnfoldingProgram builds Prog(N,M) for the padded example and
// evaluates its centralized (localized) form with the given term-depth
// bound, returning the materialized database and its store.
func evalUnfoldingProgram(t *testing.T, pn *petri.PetriNet, depth int) (*rel.DB, *term.Store) {
	t.Helper()
	prog, err := BuildUnfoldingProgram(pn)
	if err != nil {
		t.Fatal(err)
	}
	local := prog.Localize()
	if err := local.Validate(); err != nil {
		t.Fatal(err)
	}
	db, st := local.SemiNaive(datalog.Budget{MaxTermDepth: depth})
	if st.Truncated {
		t.Fatalf("evaluation truncated: %s", st.Reason)
	}
	return db, local.Store
}

// firstArgs gathers the rendered first argument of every fact of the
// relations named base@<any peer>.
func firstArgs(db *rel.DB, store *term.Store, base string) map[string]bool {
	out := map[string]bool{}
	for _, name := range db.Names() {
		s := string(name)
		if !strings.HasPrefix(s, base+"@") {
			continue
		}
		for _, tup := range db.Lookup(name).All() {
			out[store.String(tup[0])] = true
		}
	}
	return out
}

// TestTheorem2 checks the bijection δ between the nodes of the direct
// unfolder's bounded unfolding and the node terms derived by Prog(N,M):
// because both sides use the same canonical Skolem naming, δ is literal
// name equality on trans/places facts.
func TestTheorem2(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	const depth = 6 // term depth; events live at term depths 2, 4, 6

	db, store := evalUnfoldingProgram(t, padded, depth)
	gotEvents := firstArgs(db, store, RelTrans)
	gotConds := firstArgs(db, store, RelPlaces)

	u := unfold.Build(padded, unfold.Options{MaxDepth: depth, MaxEvents: 100000})
	wantEvents := map[string]bool{}
	for _, e := range u.Events {
		if e.TermDepth <= depth {
			wantEvents[e.Name] = true
		}
	}
	wantConds := map[string]bool{}
	for _, c := range u.Conditions {
		if c.TermDepth <= depth {
			wantConds[c.Name] = true
		}
	}

	diff := func(kind string, got, want map[string]bool) {
		for n := range want {
			if !got[n] {
				t.Errorf("Datalog program missing %s %s", kind, n)
			}
		}
		for n := range got {
			if !want[n] {
				t.Errorf("Datalog program derived spurious %s %s", kind, n)
			}
		}
	}
	diff("event", gotEvents, wantEvents)
	diff("condition", gotConds, wantConds)
	if len(wantEvents) < 5 {
		t.Fatalf("unfolding suspiciously small: %d events", len(wantEvents))
	}
}

// TestTheorem2Map checks condition 3 of Theorem 2: map is exactly the
// homomorphism ρ.
func TestTheorem2Map(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	const depth = 4
	db, store := evalUnfoldingProgram(t, padded, depth)
	u := unfold.Build(padded, unfold.Options{MaxDepth: depth, MaxEvents: 100000})

	// Collect map facts: node name -> net node.
	got := map[string]string{}
	for _, name := range db.Names() {
		if !strings.HasPrefix(string(name), RelMap+"@") {
			continue
		}
		for _, tup := range db.Lookup(name).All() {
			got[store.String(tup[0])] = store.String(tup[1])
		}
	}
	for _, e := range u.Events {
		if e.TermDepth <= depth && got[e.Name] != string(e.Trans) {
			t.Fatalf("map(%s) = %q, want %q", e.Name, got[e.Name], e.Trans)
		}
	}
	for _, c := range u.Conditions {
		if c.TermDepth <= depth && got[c.Name] != string(c.Place) {
			t.Fatalf("map(%s) = %q, want %q", c.Name, got[c.Name], c.Place)
		}
	}
}

// TestTheorem2CoRelation checks that the co relation derived by the
// program coincides with the unfolder's concurrency relation on
// conditions (our positive replacement for the paper's notConf guard).
func TestTheorem2CoRelation(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	const depth = 5
	db, store := evalUnfoldingProgram(t, padded, depth)
	u := unfold.Build(padded, unfold.Options{MaxDepth: depth, MaxEvents: 100000})

	gotCo := map[string]bool{}
	for _, name := range db.Names() {
		if !strings.HasPrefix(string(name), RelCo+"@") {
			continue
		}
		for _, tup := range db.Lookup(name).All() {
			gotCo[store.String(tup[0])+"|"+store.String(tup[1])] = true
		}
	}
	checked := 0
	for _, a := range u.Conditions {
		if a.TermDepth > depth {
			continue
		}
		for _, b := range u.Conditions {
			if b.TermDepth > depth || a == b {
				continue
			}
			want := u.ConcurrentConditions(a, b)
			if got := gotCo[a.Name+"|"+b.Name]; got != want {
				t.Fatalf("co(%s, %s) = %v, unfolder says %v", a.Name, b.Name, got, want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

// TestLemma1 checks notCausal and causal against the unfolder's causality:
// causal(x, y) iff y ⪯ x; notCausal(x, y) iff ¬[y ⪯ x], over events.
func TestLemma1(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	const depth = 5
	db, store := evalUnfoldingProgram(t, padded, depth)
	u := unfold.Build(padded, unfold.Options{MaxDepth: depth, MaxEvents: 100000})

	pairs := func(base string) map[string]bool {
		out := map[string]bool{}
		for _, name := range db.Names() {
			if !strings.HasPrefix(string(name), base+"@") {
				continue
			}
			for _, tup := range db.Lookup(name).All() {
				out[store.String(tup[0])+"|"+store.String(tup[1])] = true
			}
		}
		return out
	}
	gotCausal := pairs(RelCausal)
	gotNotCausal := pairs(RelNotCausal)

	var events []*unfold.Event
	for _, e := range u.Events {
		if e.TermDepth <= depth {
			events = append(events, e)
		}
	}
	if len(events) < 4 {
		t.Fatalf("too few events: %d", len(events))
	}
	for _, x := range events {
		for _, y := range events {
			below := u.Causal(y, x) // y ⪯ x
			if got := gotCausal[x.Name+"|"+y.Name]; got != below {
				t.Fatalf("causal(%s, %s) = %v, want %v", x.Name, y.Name, got, below)
			}
			if got := gotNotCausal[x.Name+"|"+y.Name]; got != !below {
				t.Fatalf("notCausal(%s, %s) = %v, want %v", x.Name, y.Name, got, !below)
			}
		}
	}
}
