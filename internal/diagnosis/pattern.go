package diagnosis

import (
	"fmt"

	"repro/internal/alarm"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/petri"
)

// stateConst names the automaton-state constant of NFA state q.
func stateConst(q int) string { return fmt.Sprintf("st.%d", q) }

// RelAccept lists the accepting automaton states in pattern diagnosis.
const RelAccept = "accept"

// BuildPatternProgram generates the Section 4.4 variant of the supervisor
// program for alarm-pattern diagnosis: "the structure of the alarm
// sequences of interest can be easily described by a regular automaton
// whose allowed transitions can be encoded in the alarmSeq relation."
//
// The k-ary sequence index of configPrefixes is replaced by a single
// automaton state; alarmSeq holds the NFA's edges and accept its final
// states. The construction of configurations "then follows the same lines
// as above". Because star patterns describe infinite languages, evaluate
// the result with a MaxTermDepth budget (the paper's termination gadget) —
// the configuration id h(z, x) grows by one level per explained alarm, so
// a depth bound caps the number of alarms an explanation may use.
func BuildPatternProgram(pn *petri.PetriNet, nfa *alarm.NFA) (*ddatalog.Program, ddatalog.PAtom, error) {
	p, err := BuildUnfoldingProgram(pn)
	if err != nil {
		return nil, ddatalog.PAtom{}, err
	}
	s := p.Store
	for _, peer := range pn.Net.Peers() {
		if dist.PeerID(peer) == SupervisorPeer {
			return nil, ddatalog.PAtom{}, fmt.Errorf("diagnosis: peer name %q collides with the supervisor", peer)
		}
	}
	addPetriNetFacts(pn, p)

	// Automaton edges and accepting states.
	edgePeers := map[petri.Peer]bool{}
	for _, e := range nfa.Edges {
		p.AddFact(ddatalog.At(RelAlarmSeq, SupervisorPeer,
			s.Constant(stateConst(e.From)),
			s.Constant(string(e.Obs.Alarm)),
			s.Constant(string(e.Obs.Peer)),
			s.Constant(stateConst(e.To)),
		))
		edgePeers[e.Obs.Peer] = true
	}
	for q := range nfa.Accept {
		p.AddFact(ddatalog.At(RelAccept, SupervisorPeer, s.Constant(stateConst(q))))
	}

	// Initial configuration at the automaton's start state.
	r := s.Constant(RootConst)
	hr := s.Compound("h", r)
	p.AddFact(ddatalog.At(RelConfigPrefixes, SupervisorPeer, hr, hr, r, s.Constant(stateConst(0))))

	// Extension rules: one per peer with automaton edges; the index column
	// is the automaton state, advanced through alarmSeq.
	var peers []petri.Peer
	for _, peer := range pn.Net.Peers() {
		if edgePeers[peer] {
			peers = append(peers, peer)
		}
	}
	addExtensionRules(pn, p, peers, 1, false)
	if hasSilentTransitions(pn) {
		addExtensionRules(pn, p, peers, 1, true)
	}
	addMembershipRules(p, 1)

	// q(z, x) :- configPrefixes(z, w, y, Q), accept(Q), transInConf(z, x).
	z, w, y, x, q := s.Variable("Qz"), s.Variable("Qw"), s.Variable("Qy"), s.Variable("Qx"), s.Variable("Qq")
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At(RelQuery, SupervisorPeer, z, x),
		Body: []ddatalog.PAtom{
			ddatalog.At(RelConfigPrefixes, SupervisorPeer, z, w, y, q),
			ddatalog.At(RelAccept, SupervisorPeer, q),
			ddatalog.At(RelTransInConf, SupervisorPeer, z, x),
		},
	})
	query := ddatalog.At(RelQuery, SupervisorPeer, s.Variable("AnsZ"), s.Variable("AnsX"))
	return p, query, nil
}

// DiagnosePattern runs pattern diagnosis with the Datalog encoding under
// the given budget and returns the diagnoses. See BuildPatternProgram for
// the required depth bound.
func DiagnosePattern(pn *petri.PetriNet, nfa *alarm.NFA, opt Options) (Diagnoses, error) {
	padded, err := petri.Pad2(pn)
	if err != nil {
		return nil, err
	}
	prog, query, err := BuildPatternProgram(padded, nfa)
	if err != nil {
		return nil, err
	}
	res, _, err := ddatalogRunForPattern(prog, query, opt)
	if err != nil {
		return nil, err
	}
	return ExtractDiagnoses(res.Store, res.Answers, true), nil
}

// ddatalogRunForPattern evaluates the pattern program naively (patterns
// need the depth gadget anyway, which dQSQ also respects; the naive run
// keeps this entry point simple). The dQSQ path is exercised via
// dqsq.Run(BuildPatternProgram(...)) in the tests and benchmarks.
func ddatalogRunForPattern(prog *ddatalog.Program, query ddatalog.PAtom, opt Options) (*ddatalog.Result, *ddatalog.Engine, error) {
	budget := opt.Budget
	if budget.MaxTermDepth == 0 {
		budget.MaxTermDepth = 16
	}
	return ddatalog.Run(prog, query, budget, opt.Timeout)
}
