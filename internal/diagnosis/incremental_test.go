package diagnosis

import (
	"errors"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/petri"
)

// TestOnlineDiagnoserMatchesBatch: appending the paper's quickstart
// sequences one alarm at a time yields, after every prefix, exactly the
// batch diagnosis of that prefix — and the final answer matches the
// direct-search ground truth.
func TestOnlineDiagnoserMatchesBatch(t *testing.T) {
	pn := petri.Example()
	for _, seq := range []alarm.Seq{seqA1, seqA2, seqA3} {
		d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range seq {
			rep, err := d.Append([]alarm.Obs{o}, time.Minute)
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			want := Direct(pn, seq[:i+1], DirectOptions{})
			if !rep.Diagnoses.Equal(want) {
				t.Fatalf("prefix %v: online %v != direct %v", seq[:i+1], rep.Diagnoses.Keys(), want.Keys())
			}
		}
		if got := d.Seq(); len(got) != len(seq) {
			t.Fatalf("Seq() = %v", got)
		}
	}
}

// TestOnlineDiagnoserIncrementality: the cumulative facts materialized by
// the alarm-at-a-time session stay within 2x of the one-shot dQSQ run on
// the full sequence — the session extends the warm prefix rather than
// re-deriving it.
func TestOnlineDiagnoserIncrementality(t *testing.T) {
	pn := petri.Example()
	seq := seqA1

	oneshot, err := Run(pn, seq, EngineDQSQ, Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	var rep *Report
	for _, o := range seq {
		if rep, err = d.Append([]alarm.Obs{o}, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !rep.Diagnoses.Equal(oneshot.Diagnoses) {
		t.Fatalf("online %v != one-shot %v", rep.Diagnoses.Keys(), oneshot.Diagnoses.Keys())
	}
	if rep.Derived > 2*oneshot.Derived {
		t.Fatalf("incremental derived %d > 2x one-shot %d", rep.Derived, oneshot.Derived)
	}
	if rep.TransFacts > 2*oneshot.TransFacts {
		t.Fatalf("incremental trans facts %d > 2x one-shot %d", rep.TransFacts, oneshot.TransFacts)
	}
}

// TestOnlineDiagnoserBatchAppend: alarms may arrive in batches; a single
// multi-alarm append equals per-alarm appends.
func TestOnlineDiagnoserBatchAppend(t *testing.T) {
	pn := petri.Example()
	d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Append(seqA1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := Direct(pn, seqA1, DirectOptions{})
	if !rep.Diagnoses.Equal(want) {
		t.Fatalf("batch append %v != direct %v", rep.Diagnoses.Keys(), want.Keys())
	}
	if d.Report() != rep {
		t.Fatal("Report() is not the last report")
	}
}

// TestOnlineDiagnoserPoisonedAfterFailure: an evaluation failure (here a
// budget blow-up mid-query) must not commit the append's durable state —
// Seq() may not claim alarms the evaluation did not cover — and must
// poison the session: the warm engine may have partially absorbed the
// queued facts, so every later Append fails with ErrPoisoned instead of
// serving an answer that silently omits alarms.
func TestOnlineDiagnoserPoisonedAfterFailure(t *testing.T) {
	d, err := NewOnlineDiagnoser(petri.Example(), datalog.Budget{MaxFacts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(seqA1[:1], time.Minute); err == nil {
		t.Fatal("append under an 8-fact budget succeeded")
	}
	if got := d.Seq(); len(got) != 0 {
		t.Fatalf("failed append committed its alarms: Seq() = %v", got)
	}
	if d.Report() != nil {
		t.Fatal("failed append committed a report")
	}
	_, err = d.Append(seqA1[1:2], time.Minute)
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failure: %v, want ErrPoisoned", err)
	}
	if got := d.Seq(); len(got) != 0 {
		t.Fatalf("poisoned append committed its alarms: Seq() = %v", got)
	}
}

// TestOnlineDiagnoserUnknownPeer: appending an alarm from a peer the net
// does not have fails cleanly without corrupting the session.
func TestOnlineDiagnoserUnknownPeer(t *testing.T) {
	d, err := NewOnlineDiagnoser(petri.Example(), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append([]alarm.Obs{{Alarm: "b", Peer: "nope"}}, time.Minute); err == nil {
		t.Fatal("unknown peer accepted")
	}
	rep, err := d.Append(seqA1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnoses.Equal(Direct(petri.Example(), seqA1, DirectOptions{})) {
		t.Fatal("session corrupted after rejected append")
	}
}
