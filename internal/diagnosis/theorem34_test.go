package diagnosis

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dqsq"
	"repro/internal/petri"
	"repro/internal/product"
)

var (
	seqA1 = alarm.S("b", "p1", "a", "p2", "c", "p1")
	seqA2 = alarm.S("b", "p1", "c", "p1", "a", "p2")
	seqA3 = alarm.S("c", "p1", "b", "p1", "a", "p2")
)

// runAll runs every engine on the same instance and returns the reports.
func runAll(t *testing.T, pn *petri.PetriNet, seq alarm.Seq) map[Engine]*Report {
	t.Helper()
	out := map[Engine]*Report{}
	for _, e := range []Engine{EngineDirect, EngineProduct, EngineNaive, EngineDQSQ} {
		rep, err := Run(pn, seq, e, Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		out[e] = rep
	}
	return out
}

// TestTheorem3RunningExample: the configurations computed by the Datalog
// program are exactly the diagnosis set, on the paper's three sequences.
func TestTheorem3RunningExample(t *testing.T) {
	pn := petri.Example()
	for _, tc := range []struct {
		name string
		seq  alarm.Seq
	}{
		{"A1", seqA1}, {"A2", seqA2}, {"A3", seqA3},
		{"longer", alarm.S("a", "p2", "b", "p2")},
		{"empty", nil},
		{"impossible", alarm.S("z", "p1")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reps := runAll(t, pn, tc.seq)
			want := reps[EngineDirect].Diagnoses
			for _, e := range []Engine{EngineProduct, EngineNaive, EngineDQSQ} {
				if !reps[e].Diagnoses.Equal(want) {
					t.Fatalf("%v diagnoses\n%v\n!= direct\n%v", e, reps[e].Diagnoses.Keys(), want.Keys())
				}
			}
		})
	}
}

// TestTheorem3ShadedConfiguration pins the paper's concrete claims about
// the shaded node set of Figure 2.
func TestTheorem3ShadedConfiguration(t *testing.T) {
	pn := petri.Example()
	shaded := "f(i,g(r,1),g(r,7));f(iii,g(f(i,g(r,1),g(r,7)),2));f(iv,g(f(i,g(r,1),g(r,7)),3))"
	contains := func(d Diagnoses) bool {
		for _, k := range d.Keys() {
			if k == shaded {
				return true
			}
		}
		return false
	}
	for _, e := range []Engine{EngineDirect, EngineNaive, EngineDQSQ} {
		r1, err := Run(pn, seqA1, e, Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !contains(r1.Diagnoses) {
			t.Fatalf("%v: shaded configuration not a diagnosis of A1: %v", e, r1.Diagnoses.Keys())
		}
		r2, err := Run(pn, seqA2, e, Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !contains(r2.Diagnoses) {
			t.Fatalf("%v: shaded configuration not a diagnosis of A2", e)
		}
		r3, err := Run(pn, seqA3, e, Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if contains(r3.Diagnoses) {
			t.Fatalf("%v: shaded configuration wrongly explains A3", e)
		}
	}
}

// randomNet builds a random safe multi-peer net with 1/2-parent
// transitions by generating a random acyclic-ish token flow.
func randomNet(rng *rand.Rand) *petri.PetriNet {
	n := petri.NewNet()
	peers := []petri.Peer{"q1", "q2"}
	nPlaces := 4 + rng.Intn(3)
	var places []petri.NodeID
	for i := 0; i < nPlaces; i++ {
		id := petri.NodeID(rune('A' + i))
		n.AddPlace(id, peers[i%2])
		places = append(places, id)
	}
	alphabet := []petri.Alarm{"x", "y"}
	nTrans := 3 + rng.Intn(3)
	for i := 0; i < nTrans; i++ {
		id := petri.NodeID("t" + string(rune('0'+i)))
		k := 1 + rng.Intn(2)
		perm := rng.Perm(len(places))
		pre := []petri.NodeID{places[perm[0]]}
		if k == 2 {
			pre = append(pre, places[perm[1]])
		}
		var post []petri.NodeID
		if rng.Intn(4) != 0 {
			post = append(post, places[perm[len(perm)-1]])
		}
		n.AddTransition(id, peers[rng.Intn(2)], alphabet[rng.Intn(2)], pre, post)
	}
	m0 := petri.Marking{}
	for _, pl := range places[:2+rng.Intn(len(places)-1)] {
		m0[pl] = true
	}
	pn, err := petri.New(n, m0)
	if err != nil {
		return nil
	}
	if _, exhaustive, err := pn.CheckSafe(2000); err != nil || !exhaustive {
		return nil
	}
	return pn
}

// TestTheorem3Random cross-checks all four engines on random nets and
// random observed executions.
func TestTheorem3Random(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 60 && checked < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pn := randomNet(rng)
		if pn == nil {
			continue
		}
		exec, _ := pn.RandomExecution(rng, 1+rng.Intn(3))
		if len(exec) == 0 {
			continue
		}
		seq := petri.Interleave(rng, exec.ObservedAlarms())
		reps := runAll(t, pn, seq)
		want := reps[EngineDirect].Diagnoses
		if len(want) == 0 {
			t.Fatalf("seed %d: observed execution unexplained", seed)
		}
		for _, e := range []Engine{EngineProduct, EngineNaive, EngineDQSQ} {
			if !reps[e].Diagnoses.Equal(want) {
				t.Fatalf("seed %d: %v diagnoses\n%v\n!= direct\n%v",
					seed, e, reps[e].Diagnoses.Keys(), want.Keys())
			}
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d random instances checked", checked)
	}
}

// TestTheorem4Materialization: dQSQ materializes the same unfolding prefix
// as the dedicated algorithm of [8].
func TestTheorem4Materialization(t *testing.T) {
	pn := petri.Example()
	for _, tc := range []struct {
		name string
		seq  alarm.Seq
	}{
		{"A1", seqA1}, {"A2", seqA2}, {"longer", alarm.S("a", "p2", "b", "p2", "a", "p2")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prodRes, err := product.Run(pn, tc.seq, product.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := dqsqPrefixEvents(t, pn, tc.seq)
			for e := range prodRes.PrefixEvents {
				if !got[e] {
					t.Errorf("dQSQ did not materialize prefix event %s", e)
				}
			}
			for e := range got {
				if !prodRes.PrefixEvents[e] {
					t.Errorf("dQSQ materialized %s outside the [8] prefix", e)
				}
			}
		})
	}
}

// dqsqPrefixEvents runs dQSQ diagnosis and collects the materialized
// unfolding events as pad-stripped canonical names.
func dqsqPrefixEvents(t *testing.T, pn *petri.PetriNet, seq alarm.Seq) map[string]bool {
	t.Helper()
	padded, err := petri.Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dqsq.Run(prog, query, datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, id := range res.Engine.Peers() {
		db := res.Engine.PeerDB(id)
		st := res.Engine.PeerStore(id)
		if db == nil {
			continue
		}
		for _, name := range db.Names() {
			plain, _, ok := ddatalog.SplitQualified(name)
			if !ok {
				continue
			}
			s := string(plain)
			if s != RelTrans && !strings.HasPrefix(s, RelTrans+"#") {
				continue
			}
			for _, tup := range db.Lookup(name).All() {
				out[StripPads(st, tup[0])] = true
			}
		}
	}
	return out
}

// TestProposition1: dQSQ terminates (quiesces) on the diagnosis program of
// a cyclic net — whose naive evaluation diverges — without any depth bound.
func TestProposition1(t *testing.T) {
	pn := petri.Example() // cyclic: v/vi loop
	padded, err := petri.Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seqA1)
	if err != nil {
		t.Fatal(err)
	}
	// No MaxTermDepth: termination must come from dQSQ itself.
	res, err := dqsq.Run(prog, query, datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatalf("dQSQ did not terminate: %v", err)
	}
	if res.Stats.Truncated {
		t.Fatal("dQSQ run truncated")
	}
	d := ExtractDiagnoses(res.Store, res.Answers, true)
	if len(d) != 2 {
		t.Fatalf("diagnoses = %v, want 2 configurations", d.Keys())
	}

	// The naive evaluation of the same program diverges: the fact budget
	// must trip (this is the divergence proxy for "QSQ terminates iff ...").
	_, _, err = ddatalog.Run(prog, query, datalog.Budget{MaxFacts: 3000}, 30*time.Second)
	if err == nil {
		t.Fatal("naive evaluation of the cyclic diagnosis program unexpectedly reached a fixpoint")
	}
}
