package diagnosis

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/petri"
	"repro/internal/term"
)

// Relation names of the unfolding program (Section 4.1).
const (
	RelPlaces    = "places"    // places(condition, producing event)  — condition c is a child of event
	RelTrans     = "trans"     // trans(event, parent cond 1, parent cond 2)
	RelMap       = "map"       // map(unfolding node, net node)       — the homomorphism ρ
	RelCo        = "co"        // co(cond, cond)                      — concurrency of conditions
	RelCausal    = "causal"    // causal(x, y): y ⪯ x among events
	RelNotCausal = "notCausal" // notCausal(x, y): ¬[y ⪯ x] among events (Lemma 1)
)

// RootConst is the virtual transition node id r of Section 4.1.
const RootConst = "r"

// peerOf converts net peers to runtime peer IDs.
func peerOf(p petri.Peer) dist.PeerID { return dist.PeerID(p) }

// BuildUnfoldingProgram generates Prog(N, M): the distributed dDatalog
// program of Section 4.1 whose minimal model is (isomorphic to) the
// unfolding of pn — Theorem 2. The net must be in 2-parent form
// (petri.Pad2).
//
// The rules at each peer are derived solely from that peer's nodes and
// their immediate neighborhood, as in the paper. One deliberate deviation,
// recorded in DESIGN.md: the paper guards event creation with
// notCausal/notConf relations maintained via local ancestor-tree copies
// (transTree/placesTree); we guard with the standard concurrency relation
// `co` on conditions, defined by an equally positive and local induction
// (roots are pairwise concurrent; the children of an event are concurrent
// with each other and with everything concurrent with all the event's
// parents). The recognized unfolding is identical, and the notCausal /
// causal relations of Lemma 1 are generated too, verbatim.
func BuildUnfoldingProgram(pn *petri.PetriNet) (*ddatalog.Program, error) {
	if !petri.IsTwoParent(pn) {
		return nil, fmt.Errorf("diagnosis: net must be 2-parent (apply petri.Pad2)")
	}
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	r := s.Constant(RootConst)
	peers := pn.Net.Peers()

	cst := func(id petri.NodeID) term.ID { return s.Constant(string(id)) }
	g := func(parent, place term.ID) term.ID { return s.Compound("g", parent, place) }

	// Variables are shared across generated rules; each rule is evaluated
	// independently so reuse is safe.
	x := s.Variable("X")
	u, v, m := s.Variable("U"), s.Variable("V"), s.Variable("M")
	y := s.Variable("Y")
	up, vp := s.Variable("Up"), s.Variable("Vp")

	// Roots: for each marked place c, places(g(r,c), r) and map(g(r,c), c)
	// at the place's peer; distinct roots are pairwise concurrent.
	marked := []petri.NodeID{}
	for _, pl := range pn.Net.Places() {
		if pn.M0[pl] {
			marked = append(marked, pl)
		}
	}
	for _, c := range marked {
		pc := peerOf(pn.Net.Place(c).Peer)
		root := g(r, cst(c))
		p.AddFact(ddatalog.At(RelPlaces, pc, root, r))
		p.AddFact(ddatalog.At(RelMap, pc, root, cst(c)))
	}
	for _, c1 := range marked {
		for _, c2 := range marked {
			if c1 == c2 {
				continue
			}
			pc := peerOf(pn.Net.Place(c1).Peer)
			p.AddFact(ddatalog.At(RelCo, pc, g(r, cst(c1)), g(r, cst(c2))))
		}
	}

	// Per-transition rules.
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		pt := peerOf(t.Peer)
		c1, c2 := t.Pre[0], t.Pre[1]
		p1 := peerOf(pn.Net.Place(c1).Peer)
		p2 := peerOf(pn.Net.Place(c2).Peer)
		ev := s.Compound("f", cst(tid), u, v)

		// trans@pt(f(t,u,v), u, v), map@pt(f(t,u,v), t) :-
		//   map@p1(u, c1), map@p2(v, c2), co@p1(u, v).
		body := []ddatalog.PAtom{
			ddatalog.At(RelMap, p1, u, cst(c1)),
			ddatalog.At(RelMap, p2, v, cst(c2)),
			ddatalog.At(RelCo, p1, u, v),
		}
		p.AddRule(ddatalog.PRule{Head: ddatalog.At(RelTrans, pt, ev, u, v), Body: body})
		p.AddRule(ddatalog.PRule{Head: ddatalog.At(RelMap, pt, ev, cst(tid)), Body: body})

		// Children: for each post place d, places@pd(g(x,d), x) and
		// map@pd(g(x,d), d) :- map@pt(x, t), trans@pt(x, u, v).
		childBody := []ddatalog.PAtom{
			ddatalog.At(RelMap, pt, x, cst(tid)),
			ddatalog.At(RelTrans, pt, x, u, v),
		}
		for _, d := range t.Post {
			pd := peerOf(pn.Net.Place(d).Peer)
			child := g(x, cst(d))
			p.AddRule(ddatalog.PRule{Head: ddatalog.At(RelPlaces, pd, child, x), Body: childBody})
			p.AddRule(ddatalog.PRule{Head: ddatalog.At(RelMap, pd, child, cst(d)), Body: childBody})
		}

		// Siblings of one event are pairwise concurrent.
		for _, d1 := range t.Post {
			for _, d2 := range t.Post {
				if d1 == d2 {
					continue
				}
				pd := peerOf(pn.Net.Place(d1).Peer)
				p.AddRule(ddatalog.PRule{
					Head: ddatalog.At(RelCo, pd, g(x, cst(d1)), g(x, cst(d2))),
					Body: []ddatalog.PAtom{ddatalog.At(RelTrans, pt, x, u, v)},
				})
			}
		}

		// Induction: a child of x is concurrent with everything concurrent
		// with both parents of x.
		for _, d := range t.Post {
			pd := peerOf(pn.Net.Place(d).Peer)
			p.AddRule(ddatalog.PRule{
				Head: ddatalog.At(RelCo, pd, g(x, cst(d)), m),
				Body: []ddatalog.PAtom{
					ddatalog.At(RelTrans, pt, x, u, v),
					ddatalog.At(RelCo, p1, u, m),
					ddatalog.At(RelCo, p2, v, m),
				},
			})
		}
	}

	// Mirror rules: the symmetric closure of co, hosted at the peer of the
	// pair's first element. (This replaces the paper's transTree /
	// placesTree locality machinery; see the function comment.)
	for _, q := range peers {
		pq := peerOf(q)
		for _, tid := range pn.Net.Transitions() {
			t := pn.Net.Transition(tid)
			pt := peerOf(t.Peer)
			for _, d := range t.Post {
				// trans comes first so that a bound-bound co subquery
				// decomposes the child's name, binds x, and asks only
				// bound-bound co subqueries about the parents — keeping
				// every co request fully bound under (d)QSQ.
				p.AddRule(ddatalog.PRule{
					Head: ddatalog.At(RelCo, pq, m, s.Compound("g", x, cst(d))),
					Body: []ddatalog.PAtom{
						ddatalog.At(RelTrans, pt, x, u, v),
						ddatalog.At(RelCo, pq, m, u),
						ddatalog.At(RelCo, pq, m, v),
					},
				})
			}
		}
	}

	addCausalRules(pn, p, s, x, y, u, v, up, vp)
	return p, nil
}

// addCausalRules generates the causal and notCausal relations of Section
// 4.1 (used by Lemma 1): causal(x,y) iff y ⪯ x, notCausal(x,y) iff
// ¬[y ⪯ x], both over event nodes, both positive.
func addCausalRules(pn *petri.PetriNet, p *ddatalog.Program, s *term.Store,
	x, y, u, v, up, vp term.ID) {

	r := s.Constant(RootConst)
	peers := pn.Net.Peers()

	// producerPeers returns the peers hosting causal/notCausal facts about
	// the producer of an instance of place c: the peers of the producing
	// transitions, plus the place's own peer to cover the virtual root.
	producerPeers := func(c petri.NodeID) []dist.PeerID {
		seen := map[dist.PeerID]bool{}
		var out []dist.PeerID
		add := func(id dist.PeerID) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		for _, prod := range pn.Net.Producers(c) {
			add(peerOf(pn.Net.Transition(prod).Peer))
		}
		add(peerOf(pn.Net.Place(c).Peer))
		return out
	}

	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		pt := peerOf(t.Peer)
		c1, c2 := t.Pre[0], t.Pre[1]
		p1 := peerOf(pn.Net.Place(c1).Peer)
		p2 := peerOf(pn.Net.Place(c2).Peer)

		// causal(x, x) :- trans(x, u, v).
		p.AddRule(ddatalog.PRule{
			Head: ddatalog.At(RelCausal, pt, x, x),
			Body: []ddatalog.PAtom{ddatalog.At(RelTrans, pt, x, u, v)},
		})
		// causal(x, y) :- trans(x,u,v), places(u, u'), causal@q(u', y),
		// one rule per candidate producer peer q of each parent.
		for _, q := range producerPeers(c1) {
			p.AddRule(ddatalog.PRule{
				Head: ddatalog.At(RelCausal, pt, x, y),
				Body: []ddatalog.PAtom{
					ddatalog.At(RelTrans, pt, x, u, v),
					ddatalog.At(RelPlaces, p1, u, up),
					ddatalog.At(RelCausal, q, up, y),
				},
			})
		}
		for _, q := range producerPeers(c2) {
			p.AddRule(ddatalog.PRule{
				Head: ddatalog.At(RelCausal, pt, x, y),
				Body: []ddatalog.PAtom{
					ddatalog.At(RelTrans, pt, x, u, v),
					ddatalog.At(RelPlaces, p2, v, vp),
					ddatalog.At(RelCausal, q, vp, y),
				},
			})
		}

		// notCausal(x, y) :- trans(x,u,v), places(u,u'), places(v,v'),
		//   notCausal@q1(u', y), notCausal@q2(v', y), x != y.
		for _, q1 := range producerPeers(c1) {
			for _, q2 := range producerPeers(c2) {
				p.AddRule(ddatalog.PRule{
					Head: ddatalog.At(RelNotCausal, pt, x, y),
					Body: []ddatalog.PAtom{
						ddatalog.At(RelTrans, pt, x, u, v),
						ddatalog.At(RelPlaces, p1, u, up),
						ddatalog.At(RelPlaces, p2, v, vp),
						ddatalog.At(RelNotCausal, q1, up, y),
						ddatalog.At(RelNotCausal, q2, vp, y),
					},
					Neqs: []datalog.Neq{{X: x, Y: y}},
				})
			}
		}
	}

	// Base: the virtual transition r is not caused by any event:
	// notCausal@q(r, y) :- trans@q'(y, u, v), at every peer, for events of
	// every peer (the paper's "one rule to state that the virtual
	// transition node r is not causal to any transition node").
	for _, q := range peers {
		for _, q2 := range peers {
			p.AddRule(ddatalog.PRule{
				Head: ddatalog.At(RelNotCausal, peerOf(q), r, y),
				Body: []ddatalog.PAtom{ddatalog.At(RelTrans, peerOf(q2), y, u, v)},
			})
		}
	}
}
