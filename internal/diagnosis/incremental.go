package diagnosis

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dqsq"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/rel"
	"repro/internal/term"
)

// This file implements the online supervisor: the paper's setting is
// inherently incremental — "the supervisor ... receives alarms one at a
// time" (Section 2) — and Remark 2 observes that dQSQ evaluation may
// interleave with rewriting. OnlineDiagnoser turns that into a long-lived
// handle: alarms are appended one (or a few) at a time, and each append
// extends the already-materialized unfolding prefix instead of re-running
// the whole diagnosis.
//
// The incremental encoding differs from BuildDiagnosisProgram in two ways:
//
//   - The k-ary configPrefixes index ranges over EVERY net peer (sorted),
//     not just the peers that happen to emit in the sequence — the arity
//     must not change as alarms arrive. Peers that never emit keep their
//     index column pinned at position 0 by an inert extension rule.
//
//   - The completion query is versioned: appending the n-th alarm batch
//     installs q.v<n>(z,x) :- configPrefixes(z,w,y,final_n...),
//     transInConf(z,x) with the new final-position constants, and queries
//     it. Earlier versions stay installed (they are cheap single joins);
//     the warm dqsq.OnlineSession reuses every configPrefixes /
//     trans / places fact already derived.
type OnlineDiagnoser struct {
	pn      *petri.PetriNet // original net (diagnosis names are reported on it)
	padded  *petri.PetriNet
	sess    *dqsq.OnlineSession
	prog    *ddatalog.Program
	peers   []petri.Peer // fixed index order: all net peers, sorted
	counts  map[petri.Peer]int
	seq     alarm.Seq
	version int
	last    *Report
	broken  error      // first evaluation failure; poisons every later Append
	tracer  obs.Tracer // never nil; obs.Nop by default
}

// ErrPoisoned wraps every Append after an evaluation failure: once a
// query has timed out (or the engine otherwise failed mid-evaluation),
// the queued alarm facts may have been partially injected into the warm
// distributed state, so no later answer over this session is trustworthy.
// Callers open a fresh diagnoser and replay the sequence.
var ErrPoisoned = errors.New("diagnosis: online session poisoned by earlier failure")

// indexPeers returns every peer of the net, sorted — the fixed k-ary
// index order of the incremental supervisor program.
func indexPeers(pn *petri.PetriNet) []petri.Peer {
	peers := append([]petri.Peer(nil), pn.Net.Peers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// NewOnlineDiagnoser builds the alarm-independent part of P_A(N,M,·) —
// Prog(N,M), the petriNet facts, the initial configuration and the
// extension/membership rules over the fixed all-peer index — and starts a
// warm online dQSQ session over it. The budget bounds the session's
// lifetime fact count; once exhausted, every later Append fails with
// datalog.ErrBudget.
func NewOnlineDiagnoser(pn *petri.PetriNet, budget datalog.Budget) (*OnlineDiagnoser, error) {
	padded, err := petri.Pad2(pn)
	if err != nil {
		return nil, err
	}
	for _, peer := range padded.Net.Peers() {
		if string(peer) == string(SupervisorPeer) {
			return nil, fmt.Errorf("diagnosis: peer name %q collides with the supervisor", peer)
		}
	}
	p, err := BuildUnfoldingProgram(padded)
	if err != nil {
		return nil, err
	}
	s := p.Store
	addPetriNetFacts(padded, p)

	peers := indexPeers(padded)
	k := len(peers)

	// Initial configuration: configPrefixes(h(r), h(r), r, c0...).
	r := s.Constant(RootConst)
	hr := s.Compound("h", r)
	init := []term.ID{hr, hr, r}
	for _, peer := range peers {
		init = append(init, s.Constant(idxConst(peer, 0)))
	}
	p.AddFact(ddatalog.PAtom{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: init})

	addExtensionRules(padded, p, peers, k, false)
	if hasSilentTransitions(padded) {
		addExtensionRules(padded, p, peers, k, true)
	}
	addMembershipRules(p, k)

	sess, err := dqsq.NewOnlineSession(p, budget)
	if err != nil {
		return nil, err
	}
	return &OnlineDiagnoser{
		pn:     pn,
		padded: padded,
		sess:   sess,
		prog:   p,
		peers:  peers,
		counts: make(map[petri.Peer]int),
		tracer: obs.Nop,
	}, nil
}

// SetTracer installs the diagnoser's tracer (obs.Nop when t is nil) and
// threads it through the warm dQSQ session and its engine: each Append
// gets a span on the "diagnosis" track, the unfolding-node count is
// sampled as a gauge after every evaluation, and the session contributes
// its subquery/engine/network events. Call before the first Append.
func (d *OnlineDiagnoser) SetTracer(t obs.Tracer) {
	d.tracer = obs.Or(t)
	d.sess.SetTracer(d.tracer)
}

// SetParallelism fixes the worker-pool width of the session's evaluation
// networks: 1 forces sequential evaluation, <= 0 restores the GOMAXPROCS
// default. Diagnoses are identical either way — the distributed evaluation
// is confluent — which the equivalence tests assert. Call between Appends.
func (d *OnlineDiagnoser) SetParallelism(n int) { d.sess.SetParallelism(n) }

// Session exposes the warm dQSQ session (materialization totals, engine
// inspection). The caller must not run queries on it concurrently with
// Append.
func (d *OnlineDiagnoser) Session() *dqsq.OnlineSession { return d.sess }

// Seq returns the alarms appended so far.
func (d *OnlineDiagnoser) Seq() alarm.Seq {
	return append(alarm.Seq(nil), d.seq...)
}

// Report returns the report of the last Append (nil before the first).
func (d *OnlineDiagnoser) Report() *Report { return d.last }

// Poisoned returns the evaluation failure that poisoned the session, or
// nil while the session is healthy.
func (d *OnlineDiagnoser) Poisoned() error { return d.broken }

// Append extends the observed sequence and returns the diagnosis of the
// full sequence so far. The report's materialization metrics (TransFacts,
// PlaceFacts, Derived) are cumulative over the session — the substance of
// incrementality is that they grow by the new frontier only. A zero
// timeout means one minute.
//
// Append is transactional on the diagnoser's durable state: counts, seq
// and version commit only after the query succeeds, so a failed append
// never leaves Seq claiming alarms the evaluation did not cover. The warm
// engine itself cannot be rolled back — a timed-out query may have
// partially injected the new alarm facts — so an evaluation failure
// poisons the session: every later Append fails with ErrPoisoned.
func (d *OnlineDiagnoser) Append(batch []alarm.Obs, timeout time.Duration) (*Report, error) {
	if d.broken != nil {
		return nil, fmt.Errorf("%w: %v", ErrPoisoned, d.broken)
	}
	s := d.prog.Store
	counts := make(map[petri.Peer]int, len(d.counts))
	for p, n := range d.counts {
		counts[p] = n
	}
	var facts []ddatalog.PAtom
	for _, o := range batch {
		if !hasPeer(d.padded, o.Peer) {
			return nil, fmt.Errorf("diagnosis: alarm from unknown peer %q", o.Peer)
		}
		i := counts[o.Peer]
		facts = append(facts, ddatalog.At(RelAlarmSeq, SupervisorPeer,
			s.Constant(idxConst(o.Peer, i)),
			s.Constant(string(o.Alarm)),
			s.Constant(string(o.Peer)),
			s.Constant(idxConst(o.Peer, i+1)),
		))
		counts[o.Peer] = i + 1
	}

	version := d.version + 1
	z, w, y, x := s.Variable("Qz"), s.Variable("Qw"), s.Variable("Qy"), s.Variable("Qx")
	final := []term.ID{z, w, y}
	for _, peer := range d.peers {
		final = append(final, s.Constant(idxConst(peer, counts[peer])))
	}
	qRel := rel.Name(fmt.Sprintf("%s.v%d", RelQuery, version))
	rule := ddatalog.PRule{
		Head: ddatalog.At(qRel, SupervisorPeer, z, x),
		Body: []ddatalog.PAtom{
			{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: final},
			ddatalog.At(RelTransInConf, SupervisorPeer, z, x),
		},
	}
	if err := d.sess.Extend(facts, []ddatalog.PRule{rule}); err != nil {
		// Extend queues facts and rules without touching the running
		// engine, but a partial extension (rules in, facts rejected)
		// still desynchronizes the program from the diagnoser.
		d.broken = err
		return nil, err
	}

	start := time.Now()
	var sp obs.Span
	if d.tracer.Enabled() {
		sp = d.tracer.Begin("diagnosis", fmt.Sprintf("append.v%d (%d alarms)", version, len(batch)))
	}
	query := ddatalog.At(qRel, SupervisorPeer, s.Variable("AnsZ"), s.Variable("AnsX"))
	res, err := d.sess.Query(query, timeout)
	sp.End()
	if err != nil {
		d.broken = err
		return nil, err
	}
	d.counts = counts
	d.seq = append(d.seq, batch...)
	d.version = version
	rep := &Report{
		Engine:    EngineDQSQ,
		Diagnoses: ExtractDiagnoses(res.Store, res.Answers, true),
		Derived:   res.Stats.Derived,
		Truncated: res.Stats.Truncated,
		Elapsed:   time.Since(start),
	}
	if d.last != nil {
		rep.Messages = d.last.Messages
	}
	rep.Messages += res.Stats.Net.MessagesSent
	rep.TransFacts = countAdornedNodes(res.Engine, RelTrans)
	rep.PlaceFacts = countAdornedNodes(res.Engine, RelPlaces)
	d.tracer.Gauge("diagnosis", "diagnosis_unfolding_nodes", int64(rep.TransFacts+rep.PlaceFacts))
	d.last = rep
	return rep, nil
}
