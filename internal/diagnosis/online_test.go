package diagnosis

import (
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/dqsq"
	"repro/internal/petri"
)

// TestOnlineDQSQDiagnosis runs the full Section 4 diagnosis program under
// online dQSQ (Remark 2): every peer rewrites lazily, at the moment the
// evaluation first needs one of its adorned relations, and the answers
// still match the ground truth.
func TestOnlineDQSQDiagnosis(t *testing.T) {
	pn := petri.Example()
	padded, err := petri.Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seqA1)
	if err != nil {
		t.Fatal(err)
	}
	res, trace, err := dqsq.RunOnline(prog, query, datalog.Budget{}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := ExtractDiagnoses(res.Store, res.Answers, true)
	want := Direct(pn, seqA1, DirectOptions{})
	if !got.Equal(want) {
		t.Fatalf("online dQSQ %v != direct %v", got.Keys(), want.Keys())
	}

	// The supervisor rewrites first (the query arrives there), and the net
	// peers rewrite only afterwards — rewriting genuinely interleaved with
	// evaluation.
	entries := trace.Snapshot()
	if len(entries) == 0 {
		t.Fatal("no lazy rewriting recorded")
	}
	if entries[0].Peer != SupervisorPeer || entries[0].Key.Rel != RelQuery {
		t.Fatalf("first rewriting %+v, want q at the supervisor", entries[0])
	}
	sawNetPeer := false
	for _, e := range entries {
		if e.Peer == "p1" || e.Peer == "p2" {
			sawNetPeer = true
		}
	}
	if !sawNetPeer {
		t.Fatal("net peers never rewrote")
	}
}

// TestOnlineDQSQTermination: Proposition 1 holds for the online variant
// too — the cyclic net's diagnosis program quiesces with no depth bound.
func TestOnlineDQSQTermination(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seqA2)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := dqsq.RunOnline(prog, query, datalog.Budget{}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Truncated {
		t.Fatal("online run truncated")
	}
	if len(ExtractDiagnoses(res.Store, res.Answers, true)) != 2 {
		t.Fatal("wrong diagnosis count")
	}
}
