package diagnosis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/petri"
)

// netAlphabet collects the distinct observable (alarm, peer) pairs of a
// net — the Σ of a Section 4.4 forbidden-pattern monitor.
func netAlphabet(pn *petri.PetriNet) alarm.Alphabet {
	seen := map[alarm.Obs]bool{}
	var out alarm.Alphabet
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		if t.Alarm == petri.Silent {
			continue
		}
		o := alarm.Obs{Alarm: t.Alarm, Peer: t.Peer}
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// TestForbiddenPatternBlocksConstruction reproduces the third Section 4.4
// extension: "sequences of alarms not containing some known patterns ...
// block the unfolding construction upon detection". We forbid the
// substring (b,p2) — i.e. explanations must never use transition vi — and
// check both engines agree and that no explanation contains vi.
func TestForbiddenPatternBlocksConstruction(t *testing.T) {
	pn := petri.Example()
	mon := alarm.Avoiding(alarm.Sym("b", "p2"), netAlphabet(pn))

	direct := DirectPattern(pn, mon, DirectOptions{MaxAlarms: 3})
	if len(direct) == 0 {
		t.Fatal("no clean explanations")
	}
	for _, cfg := range direct {
		for _, ev := range cfg {
			if strings.HasPrefix(ev, "f(vi") {
				t.Fatalf("forbidden event vi in %v", cfg)
			}
		}
	}

	got, err := DiagnosePattern(pn, mon, Options{Timeout: time.Minute,
		Budget: datalog.Budget{MaxTermDepth: 12}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range got {
		for _, ev := range cfg {
			if strings.HasPrefix(ev, "f(vi") {
				t.Fatalf("Datalog engine produced forbidden event vi in %v", cfg)
			}
		}
	}
	// On the comparable slice (<= 3 events) the engines agree.
	want := filterBySize(direct, 3)
	if !filterBySize(got, 3).Equal(want) {
		t.Fatalf("forbidden-pattern diagnoses differ:\n%v\nvs\n%v",
			filterBySize(got, 3).Keys(), want.Keys())
	}
}

// TestForbiddenVersusUnconstrained: the blocked set is a strict subset of
// the unconstrained bounded explanations.
func TestForbiddenVersusUnconstrained(t *testing.T) {
	pn := petri.Example()
	alpha := netAlphabet(pn)

	free := alarm.Avoiding(alarm.Concat(alarm.Sym("zz", "p1")), alpha) // forbids nothing possible
	blocked := alarm.Avoiding(alarm.Sym("a", "p2"), alpha)             // forbids every p2 "a"

	dFree := DirectPattern(pn, free, DirectOptions{MaxAlarms: 2})
	dBlocked := DirectPattern(pn, blocked, DirectOptions{MaxAlarms: 2})
	if len(dBlocked) >= len(dFree) {
		t.Fatalf("blocking removed nothing: %d vs %d", len(dBlocked), len(dFree))
	}
	for _, cfg := range dBlocked {
		for _, ev := range cfg {
			if strings.HasPrefix(ev, "f(iv") || strings.HasPrefix(ev, "f(v,") {
				t.Fatalf("a-emitting event in blocked diagnosis %v", cfg)
			}
		}
	}
}
