package diagnosis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/petri"
)

// TestNetRoundTrip: the testdata net is the canonical rendering of the
// Figure 1 example, and parse∘format is the identity on it — so nets
// shipped to the diagnosis server (which only speaks the textual format)
// mean exactly what the library builds in memory.
func TestNetRoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "example.net")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if got := parser.FormatNet(petri.Example()); got != string(want) {
		t.Fatalf("testdata/example.net is stale:\n--- file ---\n%s--- FormatNet(Example) ---\n%s", want, got)
	}

	pn, err := parser.Net(string(want))
	if err != nil {
		t.Fatal(err)
	}
	if got := parser.FormatNet(pn); got != string(want) {
		t.Fatalf("parse/format round trip drifted:\n--- in ---\n%s--- out ---\n%s", want, got)
	}

	// The round-tripped net is semantically the example: same diagnoses
	// on the quickstart sequence.
	want1 := Direct(petri.Example(), seqA1, DirectOptions{})
	got1 := Direct(pn, seqA1, DirectOptions{})
	if !got1.Equal(want1) {
		t.Fatalf("round-tripped net diagnoses %v != %v", got1.Keys(), want1.Keys())
	}
}

// TestAlarmsRoundTrip: each quickstart sequence in testdata survives
// parse∘format∘parse unchanged.
func TestAlarmsRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "quickstart.alarms"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("want the three Section 2 sequences, got %d lines", len(lines))
	}
	wantSeqs := []any{seqA1, seqA2, seqA3}
	for i, line := range lines {
		seq, err := parser.Alarms(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(any(seq), wantSeqs[i]) {
			t.Fatalf("line %d parses to %v, want %v", i, seq, wantSeqs[i])
		}
		formatted := parser.FormatAlarms(seq)
		if formatted != line {
			t.Fatalf("line %d formats to %q, want %q", i, formatted, line)
		}
		again, err := parser.Alarms(formatted)
		if err != nil || !reflect.DeepEqual(again, seq) {
			t.Fatalf("line %d re-parse drifted: %v (%v)", i, again, err)
		}
	}
}
