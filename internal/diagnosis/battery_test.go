package diagnosis

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/petri"
	"repro/internal/qsq"
	"repro/internal/term"
)

// The paper's Section 1 thesis: once the problem is stated in Datalog,
// "it can benefit from the large battery of optimization techniques
// developed for Datalog". These tests apply the OTHER techniques in the
// battery — centralized QSQ and magic sets — to the very same diagnosis
// program and check they compute the same diagnosis set.

// centralizedDiagnosis evaluates P_A(N,M,A) with a centralized rewriting.
func centralizedDiagnosis(t *testing.T, rewriter string) Diagnoses {
	t.Helper()
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seqA1)
	if err != nil {
		t.Fatal(err)
	}
	local := prog.Localize()
	s := local.Store
	q := datalog.Atom{
		Rel:  query.Qualified(),
		Args: []term.ID{s.Variable("Z"), s.Variable("X")},
	}
	var rows [][]term.ID
	switch rewriter {
	case "qsq":
		rows, _, _, err = qsq.Run(local, q, datalog.Budget{})
	case "magic":
		rows, _, _, err = magic.Run(local, q, datalog.Budget{})
	default:
		t.Fatalf("unknown rewriter %q", rewriter)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ExtractDiagnoses(s, rows, true)
}

func TestBatteryCentralizedQSQDiagnosis(t *testing.T) {
	got := centralizedDiagnosis(t, "qsq")
	want := Direct(petri.Example(), seqA1, DirectOptions{})
	if !got.Equal(want) {
		t.Fatalf("centralized QSQ diagnosis %v != direct %v", got.Keys(), want.Keys())
	}
}

func TestBatteryMagicSetsDiagnosis(t *testing.T) {
	got := centralizedDiagnosis(t, "magic")
	want := Direct(petri.Example(), seqA1, DirectOptions{})
	if !got.Equal(want) {
		t.Fatalf("magic-sets diagnosis %v != direct %v", got.Keys(), want.Keys())
	}
}

// TestBatteryTerminationWithoutDepthBound: like dQSQ (Proposition 1), the
// centralized rewritings also terminate on the cyclic net's diagnosis
// program with no depth gadget — relevance pruning is what tames the
// infinite unfolding, regardless of which sibling rewriting provides it.
func TestBatteryTerminationWithoutDepthBound(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, query, err := BuildDiagnosisProgram(padded, seqA2)
	if err != nil {
		t.Fatal(err)
	}
	local := prog.Localize()
	s := local.Store
	q := datalog.Atom{Rel: query.Qualified(), Args: []term.ID{s.Variable("Z"), s.Variable("X")}}
	_, _, st, err := qsq.Run(local, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatalf("centralized QSQ hit a budget: %+v", st)
	}
}
