package diagnosis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/petri"
	"repro/internal/rel"
	"repro/internal/term"
)

// SupervisorPeer is the supervisor site p0 of Section 4.2.
const SupervisorPeer dist.PeerID = "p0"

// Supervisor relation names.
const (
	RelPetriNet       = "petriNet"       // petriNet@p(t, a, c, c'): transition t emits a, parents c, c'
	RelPetriNetSilent = "petriNetSilent" // silent transitions (Section 4.4 hidden extension)
	RelAlarmSeq       = "alarmSeq"       // alarmSeq(i, a, p, i'): automaton edge / sequence position
	RelConfigPrefixes = "configPrefixes" // configPrefixes(id, parent, event, index...)
	RelTransInConf    = "transInConf"    // transInConf(id, event)
	RelNotParent      = "notParent"      // notParent(id, condition)
	RelQuery          = "q"              // q(id, event): complete explanations
)

// idxConst names the alarm-position constant c_i of peer p.
func idxConst(p petri.Peer, i int) string {
	return fmt.Sprintf("idx.%s.%d", p, i)
}

// BuildDiagnosisProgram generates P_A(N, M, A): the unfolding program
// Prog(N, M) plus the supervisor rules of Section 4.2 with the k-ary index
// for multiple peers. It returns the program and the located query atom
// q@p0(Z, X) whose answers pair configuration ids with their member
// events. The net must be 2-parent and every alarm-emitting peer of the
// sequence must exist in the net.
//
// Hidden transitions (alarm = petri.Silent) are supported as in Section
// 4.4: they are listed in petriNetSilent and may extend a configuration
// without consuming an alarm position. If the net has silent cycles, use a
// term-depth budget when evaluating.
func BuildDiagnosisProgram(pn *petri.PetriNet, seq alarm.Seq) (*ddatalog.Program, ddatalog.PAtom, error) {
	p, err := BuildUnfoldingProgram(pn)
	if err != nil {
		return nil, ddatalog.PAtom{}, err
	}
	s := p.Store
	for _, peer := range pn.Net.Peers() {
		if dist.PeerID(peer) == SupervisorPeer {
			return nil, ddatalog.PAtom{}, fmt.Errorf("diagnosis: peer name %q collides with the supervisor", peer)
		}
	}
	for _, o := range seq {
		if !hasPeer(pn, o.Peer) {
			return nil, ddatalog.PAtom{}, fmt.Errorf("diagnosis: alarm from unknown peer %q", o.Peer)
		}
	}

	addPetriNetFacts(pn, p)

	// Per-peer subsequences and their position constants.
	per := seq.PerPeer()
	peers := seq.Peers() // sorted; defines the k-ary index order
	k := len(peers)

	// alarmSeq facts: one linear chain per peer.
	for _, peer := range peers {
		sub := per[peer]
		for i, a := range sub {
			p.AddFact(ddatalog.At(RelAlarmSeq, SupervisorPeer,
				s.Constant(idxConst(peer, i)),
				s.Constant(string(a)),
				s.Constant(string(peer)),
				s.Constant(idxConst(peer, i+1)),
			))
		}
	}

	// Initial configuration: configPrefixes(h(r), h(r), r, c0...).
	r := s.Constant(RootConst)
	hr := s.Compound("h", r)
	init := []term.ID{hr, hr, r}
	for _, peer := range peers {
		init = append(init, s.Constant(idxConst(peer, 0)))
	}
	p.AddFact(ddatalog.PAtom{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: init})

	addExtensionRules(pn, p, peers, k, false)
	if hasSilentTransitions(pn) {
		addExtensionRules(pn, p, peers, k, true)
	}
	addMembershipRules(p, k)

	// q(z, x) :- configPrefixes(z, w, y, cfinal...), transInConf(z, x).
	z, w, y, x := s.Variable("Qz"), s.Variable("Qw"), s.Variable("Qy"), s.Variable("Qx")
	final := []term.ID{z, w, y}
	for _, peer := range peers {
		final = append(final, s.Constant(idxConst(peer, len(per[peer]))))
	}
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At(RelQuery, SupervisorPeer, z, x),
		Body: []ddatalog.PAtom{
			{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: final},
			ddatalog.At(RelTransInConf, SupervisorPeer, z, x),
		},
	})

	query := ddatalog.At(RelQuery, SupervisorPeer, s.Variable("AnsZ"), s.Variable("AnsX"))
	return p, query, nil
}

func hasPeer(pn *petri.PetriNet, peer petri.Peer) bool {
	for _, q := range pn.Net.Peers() {
		if q == peer {
			return true
		}
	}
	return false
}

func hasSilentTransitions(pn *petri.PetriNet) bool {
	for _, tid := range pn.Net.Transitions() {
		if pn.Net.Transition(tid).Alarm == petri.Silent {
			return true
		}
	}
	return false
}

// addPetriNetFacts publishes each peer's description of its transitions
// ("Each peer pi provides a description of the transitions in its Petri
// net ... in the atom petriNet@pi(c, a, c', c”)").
func addPetriNetFacts(pn *petri.PetriNet, p *ddatalog.Program) {
	s := p.Store
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		args := []term.ID{s.Constant(string(tid))}
		if t.Alarm != petri.Silent {
			args = append(args, s.Constant(string(t.Alarm)))
		}
		args = append(args, s.Constant(string(t.Pre[0])), s.Constant(string(t.Pre[1])))
		relName := rel.Name(RelPetriNet)
		if t.Alarm == petri.Silent {
			relName = RelPetriNetSilent
		}
		p.AddFact(ddatalog.PAtom{Rel: relName, Peer: dist.PeerID(t.Peer), Args: args})
	}
}

// addExtensionRules generates, per emitting peer, the configPrefixes
// extension rule of Section 4.2 (k-ary index form). With silent=true it
// generates the Section 4.4 variant that consumes no alarm position.
func addExtensionRules(pn *petri.PetriNet, p *ddatalog.Program, peers []petri.Peer, k int, silent bool) {
	s := p.Store
	// Silent rules are generated per net peer (any peer may hide
	// transitions); observable rules per emitting peer of the sequence.
	rulePeers := peers
	if silent {
		rulePeers = nil
		for _, q := range pn.Net.Peers() {
			rulePeers = append(rulePeers, q)
		}
	}
	for j, peer := range rulePeers {
		z, w, y := s.Variable("Cz"), s.Variable("Cw"), s.Variable("Cy")
		x, u, v := s.Variable("Cx"), s.Variable("Cu"), s.Variable("Cv")
		a, t := s.Variable("Ca"), s.Variable("Ct")
		c1, c2 := s.Variable("Cc1"), s.Variable("Cc2")
		idx := make([]term.ID, k)
		for l := 0; l < k; l++ {
			idx[l] = s.Variable(fmt.Sprintf("Ci%d", l))
		}

		prefixArgs := append([]term.ID{z, w, y}, idx...)
		body := []ddatalog.PAtom{
			{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: prefixArgs},
		}
		headIdx := append([]term.ID(nil), idx...)
		if silent {
			body = append(body, ddatalog.At(RelPetriNetSilent, dist.PeerID(peer), t, c1, c2))
		} else {
			// The index column this peer's rule advances: its position in
			// the k-ary vector for sequence diagnosis, or the single
			// shared automaton-state column for pattern diagnosis (k==1).
			col := j
			if k == 1 {
				col = 0
			}
			nextIdx := s.Variable("Cnext")
			headIdx[col] = nextIdx
			body = append(body,
				ddatalog.At(RelAlarmSeq, SupervisorPeer, idx[col], a, s.Constant(string(peer)), nextIdx),
				ddatalog.At(RelPetriNet, dist.PeerID(peer), t, a, c1, c2),
			)
		}
		gu := s.Compound("g", u, c1)
		gv := s.Compound("g", v, c2)
		body = append(body,
			ddatalog.At(RelTransInConf, SupervisorPeer, z, u),
			ddatalog.At(RelTransInConf, SupervisorPeer, z, v),
			ddatalog.At(RelNotParent, SupervisorPeer, z, gu),
			ddatalog.At(RelNotParent, SupervisorPeer, z, gv),
			ddatalog.At(RelTrans, dist.PeerID(peer), x, gu, gv),
		)
		head := append([]term.ID{s.Compound("h", z, x), z, x}, headIdx...)
		p.AddRule(ddatalog.PRule{
			Head: ddatalog.PAtom{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: head},
			Body: body,
		})
	}
}

// addMembershipRules generates transInConf and notParent (Section 4.2).
func addMembershipRules(p *ddatalog.Program, k int) {
	s := p.Store
	r := s.Constant(RootConst)
	z, w, y, x, m := s.Variable("Mz"), s.Variable("Mw"), s.Variable("My"), s.Variable("Mx"), s.Variable("Mm")
	u, v := s.Variable("Mu"), s.Variable("Mv")
	idx := make([]term.ID, k)
	for l := 0; l < k; l++ {
		idx[l] = s.Variable(fmt.Sprintf("Mi%d", l))
	}

	// transInConf(z, x) :- configPrefixes(z, w, x, i...).
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At(RelTransInConf, SupervisorPeer, z, x),
		Body: []ddatalog.PAtom{
			{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: append([]term.ID{z, w, x}, idx...)},
		},
	})
	// transInConf(z, x) :- configPrefixes(z, w, y, i...), transInConf(w, x).
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At(RelTransInConf, SupervisorPeer, z, x),
		Body: []ddatalog.PAtom{
			{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: append([]term.ID{z, w, y}, idx...)},
			ddatalog.At(RelTransInConf, SupervisorPeer, w, x),
		},
	})
	// transInConf(h(r), r).
	p.AddFact(ddatalog.At(RelTransInConf, SupervisorPeer, s.Compound("h", r), r))

	// notParent(z, m) :- configPrefixes(z, w, y, i...), trans@p(y, u, v),
	//                    m != u, m != v, notParent(w, m).  (one rule per peer)
	// notParent(h(r), m) :- places@p(m, y).                (one rule per peer)
	peers := map[dist.PeerID]bool{}
	for _, rule := range p.Rules {
		if rule.Head.Rel == RelTrans {
			peers[rule.Head.Peer] = true
		}
	}
	var peerList []dist.PeerID
	for q := range peers {
		peerList = append(peerList, q)
	}
	sort.Slice(peerList, func(i, j int) bool { return peerList[i] < peerList[j] })
	for _, q := range peerList {
		p.AddRule(ddatalog.PRule{
			Head: ddatalog.At(RelNotParent, SupervisorPeer, z, m),
			Body: []ddatalog.PAtom{
				{Rel: RelConfigPrefixes, Peer: SupervisorPeer, Args: append([]term.ID{z, w, y}, idx...)},
				ddatalog.At(RelTrans, q, y, u, v),
				ddatalog.At(RelNotParent, SupervisorPeer, w, m),
			},
			Neqs: []datalog.Neq{{X: m, Y: u}, {X: m, Y: v}},
		})
		p.AddRule(ddatalog.PRule{
			Head: ddatalog.At(RelNotParent, SupervisorPeer, s.Compound("h", r), m),
			Body: []ddatalog.PAtom{ddatalog.At(RelPlaces, q, m, y)},
		})
	}
}

// StripPads renders an unfolding node term with the padding of petri.Pad2
// erased: arguments of an event term f(t, ...) that are conditions of a
// pad place are dropped, recursively, so that event names on the padded
// net coincide with names on the original net.
func StripPads(store *term.Store, t term.ID) string {
	var render func(t term.ID) string
	isPadCond := func(t term.ID) bool {
		if store.Kind(t) != term.Comp || store.Name(t) != "g" {
			return false
		}
		args := store.Args(t)
		return len(args) == 2 && petri.PadPlace(petri.NodeID(store.Name(args[1])))
	}
	render = func(t term.ID) string {
		if store.Kind(t) != term.Comp {
			return store.Name(t)
		}
		args := store.Args(t)
		parts := make([]string, 0, len(args))
		for i, a := range args {
			if store.Name(t) == "f" && i > 0 && isPadCond(a) {
				continue
			}
			parts = append(parts, render(a))
		}
		return store.Name(t) + "(" + strings.Join(parts, ",") + ")"
	}
	return render(t)
}

// ExtractDiagnoses converts q(z, x) answer rows into a diagnosis set:
// rows are grouped by configuration id z, the virtual root r is dropped,
// and configurations reached through different interleavings (different
// ids, same event set) are deduplicated. With stripPads, event names are
// normalized back to the unpadded net's canonical names.
func ExtractDiagnoses(store *term.Store, rows [][]term.ID, stripPads bool) Diagnoses {
	render := store.String
	if stripPads {
		render = func(t term.ID) string { return StripPads(store, t) }
	}
	byID := map[term.ID]map[string]bool{}
	order := []term.ID{}
	for _, row := range rows {
		if len(row) != 2 {
			continue
		}
		z, x := row[0], row[1]
		if _, ok := byID[z]; !ok {
			byID[z] = map[string]bool{}
			order = append(order, z)
		}
		name := render(x)
		if name != RootConst {
			byID[z][name] = true
		}
	}
	seen := map[string]bool{}
	var out Diagnoses
	for _, z := range order {
		events := byID[z]
		cfg := make([]string, 0, len(events))
		for e := range events {
			cfg = append(cfg, e)
		}
		sort.Strings(cfg)
		key := strings.Join(cfg, ";")
		if !seen[key] {
			seen[key] = true
			out = append(out, cfg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ";") < strings.Join(out[j], ";")
	})
	return out
}
