package diagnosis

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestStressPipelineLongRun pushes a longer diagnosis through dQSQ and
// cross-checks it against direct search — a scale smoke test beyond the
// paper-sized instances. Skipped with -short.
func TestStressPipelineLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	pn := gen.Pipeline(4, 3)
	rng := rand.New(rand.NewSource(99))
	seq := gen.PipelineSeq(pn, rng, 6)
	if len(seq) != 6 {
		t.Fatalf("seq = %v", seq)
	}

	want := Direct(pn, seq, DirectOptions{})
	if len(want) != 1 {
		t.Fatalf("pipeline run has %d explanations", len(want))
	}
	rep, err := Run(pn, seq, EngineDQSQ, Options{Timeout: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnoses.Equal(want) {
		t.Fatalf("dQSQ %v != direct %v", rep.Diagnoses.Keys(), want.Keys())
	}
	// The prefix materialized is small: the 6 executed hops plus the
	// dead-end alternatives reachable from explored cuts.
	if rep.TransFacts >= 60 {
		t.Fatalf("dQSQ materialized %d events for a 6-hop run", rep.TransFacts)
	}
}

// TestStressTelecomWide runs the intro scenario at 10 peers end to end.
func TestStressTelecomWide(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	pn := gen.Telecom(10)
	seq := gen.TelecomSeqFixed()
	want, err := Run(pn, seq, EngineDirect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(pn, seq, EngineDQSQ, Options{Timeout: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnoses.Equal(want.Diagnoses) {
		t.Fatalf("telecom wide: %v != %v", rep.Diagnoses.Keys(), want.Diagnoses.Keys())
	}
}
