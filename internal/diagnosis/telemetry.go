package diagnosis

// Cluster telemetry: members record trace events and counter samples
// while evaluating, ship them to the driver in wire.Telemetry frames at
// each round boundary, and the driver folds them — offset-corrected by
// the transport's handshake clock estimates — into per-process traces
// that obs.WriteClusterJSON merges into one cluster timeline.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/wire"
)

// eventToWire converts a recorded trace event to its wire form.
func eventToWire(ev obs.Event) wire.TraceEvent {
	return wire.TraceEvent{
		Track: ev.Track, Name: ev.Name, Ph: ev.Ph,
		Wall: ev.Wall, Dur: ev.Dur, Value: ev.Value, ID: ev.ID,
	}
}

// eventFromWire converts a shipped trace event back to the obs form.
func eventFromWire(ev wire.TraceEvent) obs.Event {
	return obs.Event{
		Track: ev.Track, Name: ev.Name, Ph: ev.Ph,
		Wall: ev.Wall, Dur: ev.Dur, Value: ev.Value, ID: ev.ID,
	}
}

// runtimeGauges samples the Go runtime for a telemetry frame: the same
// series every /metrics surface exports, so a cluster's health reads the
// same from a member's admin endpoint and from the driver's harvest.
func runtimeGauges() []wire.KV {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []wire.KV{
		{Key: "go_gc_pause_ns", Val: ms.PauseTotalNs},
		{Key: "go_goroutines", Val: uint64(runtime.NumGoroutine())},
		{Key: "go_heap_bytes", Val: ms.HeapAlloc},
	}
}

// shipTelemetry drains the member's per-job trace buffer and sends the
// round's observability sample to the driver. Called between RunMember
// and Finish: the driver's round is still collecting, and per-sender FIFO
// guarantees the sample precedes the Done report the driver waits for.
func shipTelemetry(r *dist.MemberRound, tw *obs.ChromeTraceWriter, traceID uint64, counters map[string]uint64) {
	events, dropped := tw.DrainEvents()
	tel := wire.Telemetry{
		TraceID:    traceID,
		WallMicros: uint64(time.Now().UnixMicro()),
		Dropped:    uint64(dropped),
		Gauges:     runtimeGauges(),
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tel.Counters = append(tel.Counters, wire.KV{Key: k, Val: counters[k]})
	}
	tel.Events = make([]wire.TraceEvent, len(events))
	for i, ev := range events {
		tel.Events[i] = eventToWire(ev)
	}
	r.SendTelemetry(tel) //nolint:errcheck // a closing transport ends the round loop anyway
}

// absorbTelemetry folds member telemetry frames harvested from a round
// into the cluster's accumulated per-node traces and counter samples.
func (cl *Cluster) absorbTelemetry(tels []wire.Telemetry) {
	if len(tels) == 0 {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.traces == nil {
		cl.traces = make(map[string]*obs.ProcessTrace)
		cl.memberCounters = make(map[string]map[string]uint64)
	}
	for _, tel := range tels {
		pt := cl.traces[tel.Node]
		if pt == nil {
			pt = &obs.ProcessTrace{Name: tel.Node}
			cl.traces[tel.Node] = pt
		}
		// Refresh the offset estimate each time: the transport may have
		// re-handshaked (reconnect) since the last sample.
		pt.Offset = cl.Transport.ClockOffsetMicros(tel.Node)
		for _, ev := range tel.Events {
			pt.Events = append(pt.Events, eventFromWire(ev))
		}
		if d := int64(tel.Dropped); d > pt.Dropped {
			pt.Dropped = d // cumulative on the member; keep the max
		}
		c := cl.memberCounters[tel.Node]
		if c == nil {
			c = make(map[string]uint64)
			cl.memberCounters[tel.Node] = c
		}
		for _, kv := range tel.Counters {
			c[kv.Key] = kv.Val // cumulative samples: latest wins
		}
		for _, kv := range tel.Gauges {
			c[kv.Key] = kv.Val
		}
	}
}

// absorbRoundLatencies folds the driver-observed per-node round latency
// summary into the per-member counter samples: the latest mean latency
// per phase (in microseconds, matching the telemetry convention of plain
// uint64 samples) and a cumulative straggler count. Unlike trace
// telemetry these need no member cooperation — the driver measures its
// own poll round trips — so they accumulate on untraced runs too.
func (cl *Cluster) absorbRoundLatencies(lats []dist.RoundLatency) {
	if len(lats) == 0 {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.memberCounters == nil {
		cl.memberCounters = make(map[string]map[string]uint64)
	}
	for _, l := range lats {
		c := cl.memberCounters[l.Node]
		if c == nil {
			c = make(map[string]uint64)
			cl.memberCounters[l.Node] = c
		}
		c[fmt.Sprintf("dist_round_latency_us{phase=%q}", l.Phase)] = uint64(l.Mean.Microseconds())
		if l.Straggler {
			c["dist_straggler_total"]++
		}
	}
}

// ProcessTraces returns the member traces accumulated by RunDistributed
// calls on this cluster, sorted by node name and offset-corrected onto
// the driver's clock. Pass them, together with the driver's own trace
// (ChromeTraceWriter.Export), to obs.WriteClusterJSON for one merged
// cluster timeline.
func (cl *Cluster) ProcessTraces() []obs.ProcessTrace {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	names := make([]string, 0, len(cl.traces))
	for name := range cl.traces {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.ProcessTrace, 0, len(names))
	for _, name := range names {
		pt := cl.traces[name]
		out = append(out, obs.ProcessTrace{
			Name: pt.Name, Offset: pt.Offset, Dropped: pt.Dropped,
			Events: append([]obs.Event(nil), pt.Events...),
		})
	}
	return out
}

// MemberCounters returns the latest engine counter and runtime gauge
// samples per member node (cumulative values from each node's most recent
// telemetry frame), plus the driver-observed round latency summary:
// dist_round_latency_us{phase} means and cumulative dist_straggler_total
// counts, present even on untraced runs.
func (cl *Cluster) MemberCounters() map[string]map[string]uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make(map[string]map[string]uint64, len(cl.memberCounters))
	for node, c := range cl.memberCounters {
		cp := make(map[string]uint64, len(c))
		for k, v := range c {
			cp[k] = v
		}
		out[node] = cp
	}
	return out
}

// TraceDropped sums the member-side dropped trace-event counts across the
// cluster (the driver's own writer keeps its own count).
func (cl *Cluster) TraceDropped() int64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var total int64
	for _, pt := range cl.traces {
		total += pt.Dropped
	}
	return total
}

// traceIDLocked lazily draws the cluster's trace ID, stamped into every
// shipped job so member telemetry of different diagnose invocations
// cannot be conflated.
func (cl *Cluster) traceID() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.traceIDv == 0 {
		cl.traceIDv = uint64(time.Now().UnixNano())
	}
	return cl.traceIDv
}
