package diagnosis

// Member checkpoints: the durable state of one peerd process. What a
// member must survive a kill -9 with is small — the job it accepted (the
// system description, its hosted peers, the cluster layout) and the job's
// generation. Everything else it holds is per-round evaluation state,
// which the generation machinery deliberately discards: a round that was
// in flight when the process died is ended with an error at the first
// contact, and the driver re-ships under a fresh generation, rebuilding
// every engine from the (deterministic) job description.

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
	"repro/internal/snapshot/snapnames"
	"repro/internal/wal"
	"repro/internal/wire"
)

// memberCheckpointFile is the checkpoint's name inside the data dir.
const memberCheckpointFile = "member.ckpt"

// memberWALDir is the job write-ahead log's directory inside the data
// dir. The log moves the durable point off the ack's critical path: an
// accepted job is appended (and fsynced) here before the JobOK goes out,
// and the full member.ckpt rewrite happens behind the ack. Restore takes
// the newest job between the checkpoint and the log's tail.
const memberWALDir = "wal"

// openMemberWAL opens the job log. Jobs are rare and small, so every
// record is fsynced before the append returns.
func openMemberWAL(dir string) (*wal.Log, error) {
	return wal.Open(filepath.Join(dir, memberWALDir), wal.Options{Fsync: wal.SyncAlways})
}

// lastWALJob replays the job log and returns the newest decodable job,
// or nil if the log holds none. Undecodable records are skipped — the
// log's CRC framing already dropped torn tails, and an old-format record
// must not keep the node down.
func lastWALJob(l *wal.Log) *wire.Job {
	var last *wire.Job
	l.Replay(1, func(seq uint64, payload []byte) error { //nolint:errcheck // fn never fails
		_, f, err := wire.DecodeFrame(payload)
		if err != nil {
			return nil
		}
		if job, ok := f.(wire.Job); ok {
			last = &job
		}
		return nil
	})
	return last
}

// memberConsumer tags member checkpoints in the snapshot meta section.
const memberConsumer = "dist.member"

// saveMemberCheckpoint atomically writes the accepted job to dir.
func saveMemberCheckpoint(dir, node, driver string, job wire.Job) error {
	f := snapshot.New()
	w := f.Section(snapnames.Meta)
	w.String(memberConsumer)
	w.String(node)
	w.String(driver)
	jw := f.Section(snapnames.MemberJob)
	jw.Bytes(wire.AppendFrame(nil, 0, job))
	_, err := snapshot.WriteFile(filepath.Join(dir, memberCheckpointFile), f)
	return err
}

// loadMemberCheckpoint reads the checkpoint from dir, validating that it
// is a member checkpoint for this node name and driver. A missing file
// returns (nil, nil); a corrupt or mismatched one returns an error.
func loadMemberCheckpoint(dir, node, driver string) (*wire.Job, error) {
	path := filepath.Join(dir, memberCheckpointFile)
	o, err := snapshot.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	r, err := o.Section(snapnames.Meta)
	if err != nil {
		return nil, err
	}
	consumer, ckNode, ckDriver := r.String(), r.String(), r.String()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if consumer != memberConsumer {
		return nil, fmt.Errorf("%w: %s holds a %q snapshot, not a member checkpoint", snapshot.ErrCorrupt, path, consumer)
	}
	if ckNode != node {
		return nil, fmt.Errorf("diagnosis: checkpoint %s belongs to node %q, this node is %q", path, ckNode, node)
	}
	if ckDriver != driver {
		return nil, fmt.Errorf("diagnosis: checkpoint %s reports to driver %q, this node reports to %q", path, ckDriver, driver)
	}
	jr, err := o.Section(snapnames.MemberJob)
	if err != nil {
		return nil, err
	}
	frame := jr.Bytes()
	if err := jr.Finish(); err != nil {
		return nil, err
	}
	_, f, err := wire.DecodeFrame(frame)
	if err != nil {
		return nil, fmt.Errorf("%w: checkpointed job: %v", snapshot.ErrCorrupt, err)
	}
	job, ok := f.(wire.Job)
	if !ok {
		return nil, fmt.Errorf("%w: checkpoint holds a %T frame, not a job", snapshot.ErrCorrupt, f)
	}
	return &job, nil
}
