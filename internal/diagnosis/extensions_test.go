package diagnosis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/dqsq"
	"repro/internal/petri"
)

// hiddenNet is a chain with an unobservable transition in the middle:
//
//	a -t1(x)-> b -h(silent)-> c -t2(y)-> d
func hiddenNet(t *testing.T) *petri.PetriNet {
	t.Helper()
	n := petri.NewNet()
	for _, id := range []petri.NodeID{"a", "b", "c", "d"} {
		n.AddPlace(id, "p")
	}
	n.AddTransition("t1", "p", "x", []petri.NodeID{"a"}, []petri.NodeID{"b"})
	n.AddTransition("h", "p", petri.Silent, []petri.NodeID{"b"}, []petri.NodeID{"c"})
	n.AddTransition("t2", "p", "y", []petri.NodeID{"c"}, []petri.NodeID{"d"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	return pn
}

// TestHiddenTransitionsDirect: the silent transition must appear in the
// explanation even though it reported nothing.
func TestHiddenTransitionsDirect(t *testing.T) {
	pn := hiddenNet(t)
	d := Direct(pn, alarm.S("x", "p", "y", "p"), DirectOptions{})
	want := "f(h,g(f(t1,g(r,a)),b));f(t1,g(r,a));f(t2,g(f(h,g(f(t1,g(r,a)),b)),c))"
	if len(d) != 1 || strings.Join(d[0], ";") != want {
		t.Fatalf("diagnoses = %v, want [%s]", d.Keys(), want)
	}
	// Without the silent step the y alarm is unexplainable.
	if got := Direct(pn, alarm.S("y", "p"), DirectOptions{}); len(got) != 0 {
		t.Fatalf("y alone explained: %v", got.Keys())
	}
	// x alone is explained by {t1} (no trailing silent padding).
	if got := Direct(pn, alarm.S("x", "p"), DirectOptions{}); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("x alone: %v", got.Keys())
	}
}

// TestHiddenTransitionsDatalog: the Section 4.4 petriNetSilent rules make
// the Datalog engines agree with the direct search.
func TestHiddenTransitionsDatalog(t *testing.T) {
	pn := hiddenNet(t)
	seq := alarm.S("x", "p", "y", "p")
	want := Direct(pn, seq, DirectOptions{})
	for _, e := range []Engine{EngineNaive, EngineDQSQ} {
		rep, err := Run(pn, seq, e, Options{Timeout: 30 * time.Second,
			Budget: datalog.Budget{MaxTermDepth: 16}})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if !rep.Diagnoses.Equal(want) {
			t.Fatalf("%v diagnoses %v != direct %v", e, rep.Diagnoses.Keys(), want.Keys())
		}
	}
}

// TestHiddenSilentChoice: two silent branches lead to different observable
// alarms; the diagnosis must pick the right silent event per explanation.
func TestHiddenSilentChoice(t *testing.T) {
	n := petri.NewNet()
	for _, id := range []petri.NodeID{"a", "l", "r", "le", "re"} {
		n.AddPlace(id, "p")
	}
	n.AddTransition("hl", "p", petri.Silent, []petri.NodeID{"a"}, []petri.NodeID{"l"})
	n.AddTransition("hr", "p", petri.Silent, []petri.NodeID{"a"}, []petri.NodeID{"r"})
	n.AddTransition("tl", "p", "left", []petri.NodeID{"l"}, []petri.NodeID{"le"})
	n.AddTransition("tr", "p", "right", []petri.NodeID{"r"}, []petri.NodeID{"re"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	seq := alarm.S("left", "p")
	want := Direct(pn, seq, DirectOptions{})
	if len(want) != 1 || !strings.Contains(strings.Join(want[0], ";"), "f(hl,") {
		t.Fatalf("direct = %v", want.Keys())
	}
	rep, err := Run(pn, seq, EngineDQSQ, Options{Timeout: 30 * time.Second,
		Budget: datalog.Budget{MaxTermDepth: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnoses.Equal(want) {
		t.Fatalf("dQSQ %v != direct %v", rep.Diagnoses.Keys(), want.Keys())
	}
}

// countEvents counts the events of a configuration.
func countEvents(cfg []string) int { return len(cfg) }

// filterBySize keeps configurations with at most n events.
func filterBySize(d Diagnoses, n int) Diagnoses {
	var out Diagnoses
	for _, cfg := range d {
		if countEvents(cfg) <= n {
			out = append(out, cfg)
		}
	}
	return out
}

// TestPatternLinearEqualsSequence: a linear pattern is the basic problem.
func TestPatternLinearEqualsSequence(t *testing.T) {
	pn := petri.Example()
	seq := alarm.S("a", "p2", "b", "p2")
	nfa := alarm.Linear(seq).Compile()

	want := Direct(pn, seq, DirectOptions{})
	gotDirect := DirectPattern(pn, nfa, DirectOptions{MaxAlarms: len(seq)})
	if !gotDirect.Equal(want) {
		t.Fatalf("DirectPattern %v != Direct %v", gotDirect.Keys(), want.Keys())
	}
	gotDatalog, err := DiagnosePattern(pn, nfa, Options{Timeout: 30 * time.Second,
		Budget: datalog.Budget{MaxTermDepth: 14}})
	if err != nil {
		t.Fatal(err)
	}
	// The depth bound may admit longer accepted configurations for star
	// patterns; for a linear pattern the sets must agree exactly.
	if !gotDatalog.Equal(want) {
		t.Fatalf("Datalog pattern %v != direct %v", gotDatalog.Keys(), want.Keys())
	}
}

// TestPatternStar reproduces the paper's α.β*.α shape: a(ba)* over peer p2
// of the running example, which loops v -> vi -> v through places 7 and 6.
func TestPatternStar(t *testing.T) {
	pn := petri.Example()
	// a . (b . a)* at p2: v, v·vi·v, v·vi·v·vi·v, ...
	pat := alarm.Concat(alarm.Sym("a", "p2"),
		alarm.Star(alarm.Concat(alarm.Sym("b", "p2"), alarm.Sym("a", "p2"))))
	nfa := pat.Compile()

	want := filterBySize(DirectPattern(pn, nfa, DirectOptions{MaxAlarms: 3}), 3)
	got, err := DiagnosePattern(pn, nfa, Options{Timeout: 30 * time.Second,
		Budget: datalog.Budget{MaxTermDepth: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if !filterBySize(got, 3).Equal(want) {
		t.Fatalf("pattern diagnoses (<=3 events)\n%v\n!=\n%v",
			filterBySize(got, 3).Keys(), want.Keys())
	}
	// The one-event and three-event explanations exist.
	sizes := map[int]bool{}
	for _, cfg := range got {
		sizes[len(cfg)] = true
	}
	if !sizes[1] || !sizes[3] {
		t.Fatalf("expected 1- and 3-event explanations, sizes %v", sizes)
	}
}

// TestPatternViaDQSQ evaluates the pattern program with dQSQ under the
// depth gadget — the Section 4.4 claim that the same optimization applies
// to the whole class of problems.
func TestPatternViaDQSQ(t *testing.T) {
	pn := petri.Example()
	padded, err := petri.Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	seq := alarm.S("a", "p2", "b", "p2")
	nfa := alarm.Linear(seq).Compile()
	prog, query, err := BuildPatternProgram(padded, nfa)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dqsq.Run(prog, query, datalog.Budget{MaxTermDepth: 14}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := ExtractDiagnoses(res.Store, res.Answers, true)
	want := Direct(pn, seq, DirectOptions{})
	if !got.Equal(want) {
		t.Fatalf("dQSQ pattern %v != direct %v", got.Keys(), want.Keys())
	}
}

// TestDepthBoundMonotone (E3): deepening the Section 4.4 gadget yields a
// superset of explanations for star patterns on the cyclic example.
func TestDepthBoundMonotone(t *testing.T) {
	pn := petri.Example()
	pat := alarm.Concat(alarm.Sym("a", "p2"),
		alarm.Star(alarm.Concat(alarm.Sym("b", "p2"), alarm.Sym("a", "p2"))))
	nfa := pat.Compile()

	shallow, err := DiagnosePattern(pn, nfa, Options{Timeout: 30 * time.Second,
		Budget: datalog.Budget{MaxTermDepth: 8}})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := DiagnosePattern(pn, nfa, Options{Timeout: 30 * time.Second,
		Budget: datalog.Budget{MaxTermDepth: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deep) <= len(shallow) {
		t.Fatalf("deepening did not add explanations: %d vs %d", len(deep), len(shallow))
	}
	deepKeys := map[string]bool{}
	for _, k := range deep.Keys() {
		deepKeys[k] = true
	}
	for _, k := range shallow.Keys() {
		if !deepKeys[k] {
			t.Fatalf("shallow explanation %s lost at greater depth", k)
		}
	}
}
