package diagnosis

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/dqsq"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/product"
	"repro/internal/rel"
	"repro/internal/term"
)

// Engine selects a diagnosis strategy.
type Engine int

// The four engines of the reproduction.
const (
	// EngineDirect searches interleavings of the net directly — the
	// ground-truth oracle.
	EngineDirect Engine = iota
	// EngineProduct is the dedicated algorithm of [8] (package product).
	EngineProduct
	// EngineNaive evaluates P_A(N,M,A) with the naive distributed
	// evaluation of Section 3.2 — correct but materializes the whole
	// (depth-bounded) unfolding.
	EngineNaive
	// EngineDQSQ evaluates P_A(N,M,A) with distributed QSQ — the paper's
	// contribution (Section 4.3).
	EngineDQSQ
)

func (e Engine) String() string {
	switch e {
	case EngineDirect:
		return "direct"
	case EngineProduct:
		return "product[8]"
	case EngineNaive:
		return "naive-dDatalog"
	case EngineDQSQ:
		return "dQSQ"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures a diagnosis run.
type Options struct {
	// Budget bounds Datalog evaluation. For EngineNaive on cyclic nets a
	// MaxTermDepth is mandatory (the unfolding is infinite); Run supplies
	// 3*len(seq)+4 when none is set. EngineDQSQ needs no depth bound
	// (Proposition 1) but respects one if given.
	Budget datalog.Budget
	// Timeout bounds distributed runs; 0 means one minute.
	Timeout time.Duration
	// MaxEvents bounds the product unfolding (EngineProduct).
	MaxEvents int
	// Direct bounds the direct search (EngineDirect).
	Direct DirectOptions
	// Tracer observes the distributed engines (per-peer spans, message
	// flows, engine counters). Nil means no tracing; the direct and
	// product engines ignore it.
	Tracer obs.Tracer
}

// tracer returns the configured tracer, obs.Nop when unset.
func (o Options) tracer() obs.Tracer { return obs.Or(o.Tracer) }

// Report is the outcome of a diagnosis run, with the materialization
// metrics the experiments compare (Section 4.3, Theorem 4).
type Report struct {
	Engine    Engine
	Diagnoses Diagnoses
	// TransFacts counts materialized unfolding events: trans facts for the
	// Datalog engines, projected prefix events for the product engine.
	// Zero for the direct engine (it materializes no unfolding).
	TransFacts int
	// PlaceFacts likewise counts materialized unfolding conditions.
	PlaceFacts int
	// Derived counts all rule-derived tuples (Datalog engines).
	Derived int
	// Messages counts network messages (distributed engines).
	Messages int
	Elapsed  time.Duration
	// Truncated reports that a budget or depth bound was hit.
	Truncated bool
}

// Run diagnoses seq in pn with the chosen engine. The direct and product
// engines run on the net as given; the Datalog engines run on its 2-parent
// padding (petri.Pad2) and report event names with the padding stripped,
// so diagnoses are comparable across engines.
func Run(pn *petri.PetriNet, seq alarm.Seq, engine Engine, opt Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Engine: engine}
	switch engine {
	case EngineDirect:
		rep.Diagnoses = Direct(pn, seq, opt.Direct)
	case EngineProduct:
		res, err := product.Run(pn, seq, product.Options{MaxEvents: opt.MaxEvents})
		if err != nil {
			return nil, err
		}
		rep.Diagnoses = toDiagnoses(res.Diagnoses)
		rep.TransFacts = len(res.PrefixEvents)
		rep.PlaceFacts = len(res.PrefixConditions)
		rep.Truncated = res.Truncated
	case EngineNaive, EngineDQSQ:
		if err := runDatalog(pn, seq, engine, opt, rep); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("diagnosis: unknown engine %v", engine)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func toDiagnoses(in [][]string) Diagnoses {
	out := make(Diagnoses, len(in))
	for i, cfg := range in {
		out[i] = append([]string(nil), cfg...)
	}
	return out
}

func runDatalog(pn *petri.PetriNet, seq alarm.Seq, engine Engine, opt Options, rep *Report) error {
	padded, err := petri.Pad2(pn)
	if err != nil {
		return err
	}
	prog, query, err := BuildDiagnosisProgram(padded, seq)
	if err != nil {
		return err
	}
	budget := opt.Budget
	if engine == EngineNaive && budget.MaxTermDepth == 0 {
		// Naive evaluation constructs the unfolding bottom-up; on cyclic
		// nets it diverges without the Section 4.4 depth gadget. This
		// bound covers every event any explanation of seq can use.
		budget.MaxTermDepth = 3*len(seq) + 4
	}

	var rows [][]term.ID
	var store *term.Store
	switch engine {
	case EngineNaive:
		eng, err := ddatalog.NewEngine(prog, budget)
		if err != nil {
			return err
		}
		eng.SetTracer(opt.Tracer)
		res, err := eng.Run(query, opt.Timeout)
		if err != nil {
			return err
		}
		rows, store = res.Answers, res.Store
		rep.Derived = res.Stats.Derived
		rep.Messages = res.Stats.Net.MessagesSent
		rep.Truncated = res.Stats.Truncated
		rep.TransFacts = countPlainNodes(eng, padded, RelTrans)
		rep.PlaceFacts = countPlainNodes(eng, padded, RelPlaces)
	case EngineDQSQ:
		res, err := dqsq.RunWith(prog, query, budget, opt.Timeout, opt.Tracer)
		if err != nil {
			return err
		}
		rows, store = res.Answers, res.Store
		rep.Derived = res.Stats.Derived
		rep.Messages = res.Stats.Net.MessagesSent
		rep.Truncated = res.Stats.Truncated
		// Adorned trans/places relations count distinct materialized
		// unfolding nodes: collect distinct first arguments across all
		// adornments and peers.
		rep.TransFacts = countAdornedNodes(res.Engine, RelTrans)
		rep.PlaceFacts = countAdornedNodes(res.Engine, RelPlaces)
	}
	rep.Diagnoses = ExtractDiagnoses(store, rows, true)
	return nil
}

// countPlainNodes counts the distinct non-padding unfolding nodes in the
// plain (unadorned) relations of a naive run, pad-stripped so counts
// compare with the product engine on the unpadded net.
func countPlainNodes(eng *ddatalog.Engine, padded *petri.PetriNet, base rel.Name) int {
	nodes := map[string]bool{}
	for _, peer := range padded.Net.Peers() {
		id := dist.PeerID(peer)
		db := eng.PeerDB(id)
		st := eng.PeerStore(id)
		if db == nil {
			continue
		}
		r := db.Lookup(ddatalog.Qualify(base, id))
		if r == nil {
			continue
		}
		for _, tup := range r.All() {
			if len(tup) == 0 || isPadNode(st, tup[0]) {
				continue
			}
			nodes[StripPads(st, tup[0])] = true
		}
	}
	return len(nodes)
}

// isPadNode reports whether t is a condition of a Pad2 padding place.
func isPadNode(st *term.Store, t term.ID) bool {
	if st.Kind(t) != term.Comp || st.Name(t) != "g" {
		return false
	}
	args := st.Args(t)
	return len(args) == 2 && petri.PadPlace(petri.NodeID(st.Name(args[1])))
}

// countAdornedNodes counts the distinct unfolding nodes materialized by a
// dQSQ engine: the distinct first arguments of every adorned variant of
// the given relation, across peers.
func countAdornedNodes(eng *ddatalog.Engine, base rel.Name) int {
	nodes := map[string]bool{}
	for _, id := range eng.Peers() {
		db := eng.PeerDB(id)
		st := eng.PeerStore(id)
		if db == nil {
			continue
		}
		for _, name := range db.Names() {
			plain, _, ok := ddatalog.SplitQualified(name)
			if !ok {
				continue
			}
			str := string(plain)
			if str != string(base) && !strings.HasPrefix(str, string(base)+"#") {
				continue
			}
			r := db.Lookup(name)
			for _, tup := range r.All() {
				if len(tup) == 0 {
					continue
				}
				// Padding conditions are an artifact of Pad2, not nodes of
				// the original unfolding; skip them so counts compare
				// against the product engine on the unpadded net.
				if isPadNode(st, tup[0]) {
					continue
				}
				nodes[StripPads(st, tup[0])] = true
			}
		}
	}
	return len(nodes)
}
