package diagnosis

// Multi-process diagnosis: the driver ships the system description (net +
// alarms, as text) to every peerd node, each node rebuilds the identical
// Datalog program locally and hosts its assigned peers, and the evaluation
// runs over the cluster transport. Program construction is deterministic,
// so shipping the description instead of the compiled rules keeps the wire
// format independent of engine internals.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/dqsq"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/petri"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// PrepareDatalog parses a shipped system description and builds the
// Datalog evaluation for it: the padded net's diagnosis program, the
// query, and the budget with the engine's defaults applied. Driver and
// members both call it on the same text, so every node derives the same
// program. Only the Datalog engines (naive, dqsq) can run distributed.
func PrepareDatalog(netText, alarmsText string, engine Engine, budget datalog.Budget) (*ddatalog.Program, ddatalog.PAtom, datalog.Budget, error) {
	var zero ddatalog.PAtom
	pn, err := parser.Net(netText)
	if err != nil {
		return nil, zero, budget, err
	}
	seq, err := parser.Alarms(alarmsText)
	if err != nil {
		return nil, zero, budget, err
	}
	padded, err := petri.Pad2(pn)
	if err != nil {
		return nil, zero, budget, err
	}
	prog, query, err := BuildDiagnosisProgram(padded, seq)
	if err != nil {
		return nil, zero, budget, err
	}
	if engine == EngineNaive && budget.MaxTermDepth == 0 {
		budget.MaxTermDepth = 3*len(seq) + 4 // the Section 4.4 depth gadget
	}
	switch engine {
	case EngineNaive:
	case EngineDQSQ:
		rw, err := dqsq.Rewrite(prog, query)
		if err != nil {
			return nil, zero, budget, err
		}
		prog, query = rw.Program, rw.Query
	default:
		return nil, zero, budget, fmt.Errorf("diagnosis: engine %v cannot run distributed", engine)
	}
	return prog, query, budget, nil
}

// Cluster describes a distributed run's topology from the driver's side.
// The same Cluster serves any number of RunDistributed calls (the driver
// endpoint is created once, on first use); Close it when done.
type Cluster struct {
	// Transport is the driver's own transport, not yet started.
	Transport transport.Transport
	// Nodes are the member node names, in assignment order.
	Nodes []string
	// Addrs maps every node name — the driver's included — to its dial
	// address, shipped to members so they can route to each other. Leave
	// nil for transports that address by name alone (the in-proc mesh).
	Addrs map[string]string
	// Assign maps peer names to member nodes. Leave nil to spread the
	// net's peers over the nodes round-robin; the supervisor (the query's
	// peer) always stays with the driver, next to the answer collector.
	Assign map[string]string
	// Retries is how many times RunDistributed re-ships the job and
	// re-runs the evaluation after a member failure (a member that
	// crashed mid-round and rejoined from its checkpoint reports exactly
	// such a failure). Each re-ship bumps the job generation, so frames
	// of the failed attempt cannot leak into the retry. 0 means no
	// retries.
	Retries int
	// Metrics, when set, receives the driver's cluster health series:
	// dist_round_latency_seconds{node,phase} observations and
	// dist_straggler_total{node} counts (internal/serve's *Metrics
	// satisfies the interface). Set before the first RunDistributed.
	Metrics obs.Registry

	mu  sync.Mutex
	drv *dist.Driver

	// Telemetry harvested from members across RunDistributed calls, keyed
	// by node name (see ProcessTraces, MemberCounters). Traces populate
	// only when Options.Tracer is enabled: the job then ships with Trace
	// set and members record and return their spans. Counters also carry
	// the driver-observed per-node round latencies and straggler counts,
	// which accumulate on every run, traced or not.
	traces         map[string]*obs.ProcessTrace
	memberCounters map[string]map[string]uint64
	traceIDv       uint64
}

// Close shuts down the driver transport.
func (cl *Cluster) Close() error {
	return cl.Transport.Close()
}

// driver returns the lazily created driver endpoint. The assignment is
// fixed on first use: transports start exactly once.
func (cl *Cluster) driver(pn *petri.PetriNet) (*dist.Driver, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.drv != nil {
		return cl.drv, nil
	}
	if len(cl.Nodes) == 0 {
		return nil, errors.New("diagnosis: cluster has no member nodes")
	}
	if cl.Assign == nil {
		cl.Assign = RoundRobinAssign(pn, cl.Nodes)
	}
	nodeSet := make(map[string]bool, len(cl.Nodes))
	for _, n := range cl.Nodes {
		nodeSet[n] = true
	}
	assign := make(map[dist.PeerID]string, len(cl.Assign))
	for peer, node := range cl.Assign {
		if !nodeSet[node] {
			return nil, fmt.Errorf("diagnosis: peer %q assigned to unknown node %q", peer, node)
		}
		assign[dist.PeerID(peer)] = node
	}
	drv, err := dist.NewDriver(cl.Transport, cl.Nodes, assign)
	if err != nil {
		return nil, err
	}
	if cl.Metrics != nil {
		drv.SetMetrics(cl.Metrics)
	}
	cl.drv = drv
	return drv, nil
}

// RoundRobinAssign spreads the net's peers over the member nodes in
// round-robin order. The supervisor peer is not a net peer and is never
// assigned: it stays with the driver.
func RoundRobinAssign(pn *petri.PetriNet, nodes []string) map[string]string {
	out := make(map[string]string)
	if len(nodes) == 0 {
		return out
	}
	for i, peer := range pn.Net.Peers() {
		out[string(peer)] = nodes[i%len(nodes)]
	}
	return out
}

// RunDistributed diagnoses seq over the cluster: it ships the system
// description to every member, hosts the unassigned peers (at least the
// supervisor) locally, and evaluates the query with the cluster rounds as
// the network. The report's Diagnoses, Derived and Messages match a
// single-process Run of the same engine exactly; TransFacts/PlaceFacts
// are left zero — the per-peer databases they count live on the members.
//
// A failed evaluation (member crash, timeout, refused job) is retried up
// to cl.Retries times; every attempt re-ships the job under a fresh
// generation and rebuilds every engine, so a retry is exact, never a
// continuation of the failed attempt's partial state.
func RunDistributed(pn *petri.PetriNet, seq alarm.Seq, engine Engine, opt Options, cl *Cluster) (*Report, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep, err := runDistributedOnce(pn, seq, engine, opt, cl)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if attempt >= cl.Retries {
			return nil, lastErr
		}
	}
}

// runDistributedOnce is one ship-and-evaluate attempt.
func runDistributedOnce(pn *petri.PetriNet, seq alarm.Seq, engine Engine, opt Options, cl *Cluster) (*Report, error) {
	start := time.Now()
	netText := parser.FormatNet(pn)
	alarmsText := parser.FormatAlarms(seq)
	prog, query, budget, err := PrepareDatalog(netText, alarmsText, engine, opt.Budget)
	if err != nil {
		return nil, err
	}
	drv, err := cl.driver(pn)
	if err != nil {
		return nil, err
	}

	hosted := make([]dist.PeerID, 0)
	byNode := make(map[string][]string)
	for _, id := range prog.Peers() {
		if node, ok := cl.Assign[string(id)]; ok {
			byNode[node] = append(byNode[node], string(id))
		} else {
			hosted = append(hosted, id)
		}
	}

	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = time.Minute
	}
	base := wire.Job{
		NetText:   netText,
		Alarms:    alarmsText,
		Engine:    uint32(engine),
		MaxDepth:  uint32(opt.Budget.MaxTermDepth),
		MaxFacts:  uint32(opt.Budget.MaxFacts),
		TimeoutMS: uint32(timeout / time.Millisecond),
		Driver:    cl.Transport.Self(),
	}
	if opt.Tracer != nil && opt.Tracer.Enabled() {
		// Propagate the trace context: members see Trace and record their
		// own spans, shipping them back in Telemetry frames. ParentSpan is
		// the driver's flow-ID base — the namespace its flow-begin events
		// live in, which member flow-ends bind to in the merged trace.
		base.Trace = true
		base.TraceID = cl.traceID()
		base.ParentSpan = dist.FlowBase(cl.Transport.Self())
	}
	peerNames := make([]string, 0, len(cl.Assign))
	for peer := range cl.Assign {
		peerNames = append(peerNames, peer)
	}
	sort.Strings(peerNames)
	for _, peer := range peerNames {
		base.Peers = append(base.Peers, wire.Assign{Key: peer, Val: cl.Assign[peer]})
	}
	nodeNames := make([]string, 0, len(cl.Addrs))
	for node := range cl.Addrs {
		nodeNames = append(nodeNames, node)
	}
	sort.Strings(nodeNames)
	for _, node := range nodeNames {
		base.Nodes = append(base.Nodes, wire.Assign{Key: node, Val: cl.Addrs[node]})
	}
	jobs := make(map[string]wire.Job, len(cl.Nodes))
	for _, node := range cl.Nodes {
		j := base
		h := append([]string(nil), byNode[node]...)
		sort.Strings(h)
		j.Hosted = h
		jobs[node] = j
	}
	if err := drv.ShipJob(jobs, timeout); err != nil {
		return nil, err
	}

	eng, err := ddatalog.NewEngineHosted(prog, budget, hosted)
	if err != nil {
		return nil, err
	}
	eng.SetTracer(opt.Tracer)
	var (
		roundsMu sync.Mutex
		rounds   []*dist.DriverRound
	)
	eng.SetNetFactory(func() dist.Net {
		r := drv.NewRound()
		roundsMu.Lock()
		rounds = append(rounds, r)
		roundsMu.Unlock()
		return r
	})
	res, err := eng.Run(query, opt.Timeout)
	// Harvest member telemetry even from a failed attempt: the spans that
	// did arrive are exactly what explains the failure. Driver-observed
	// round latencies accumulate regardless of tracing (members shipped
	// no telemetry then, but the driver measured its own poll round
	// trips either way).
	roundsMu.Lock()
	for _, r := range rounds {
		cl.absorbTelemetry(r.ClusterTelemetry())
		cl.absorbRoundLatencies(r.RoundLatencies())
	}
	roundsMu.Unlock()
	if err != nil {
		return nil, err
	}
	rep := &Report{Engine: engine}
	rep.Diagnoses = ExtractDiagnoses(res.Store, res.Answers, true)
	rep.Derived = res.Stats.Derived
	rep.Messages = res.Stats.Net.MessagesSent
	rep.Truncated = res.Stats.Truncated
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Node is the member side of distributed diagnosis: one peerd process.
// Create it with NewNode, block in Serve, stop it with Close. With a data
// directory set (SetDataDir), the node checkpoints every accepted job
// before acknowledging it, and RestoreCheckpoint lets a restarted process
// rejoin the cluster where the killed one left it.
type Node struct {
	m       *dist.Member
	tr      transport.Transport
	driver  string
	dataDir string
	walLog  *wal.Log // nil when the data dir is unset or the log failed to open
	tracer  obs.Tracer
}

// NewNode creates the member endpoint over tr (starting it), reporting to
// the named driver node.
func NewNode(tr transport.Transport, driver string) (*Node, error) {
	m, err := dist.NewMember(tr, driver)
	if err != nil {
		return nil, err
	}
	return &Node{m: m, tr: tr, driver: driver}, nil
}

// SetDataDir enables job durability into dir: the write-ahead job log
// (appended and fsynced before each job's ack) plus the member.ckpt
// written behind the ack. Call before Serve. An error means the log
// could not be opened; the node still works checkpoint-only.
func (n *Node) SetDataDir(dir string) error {
	n.dataDir = dir
	if dir == "" {
		return nil
	}
	l, err := openMemberWAL(dir)
	if err != nil {
		return err
	}
	n.walLog = l
	return nil
}

// SetTracer attaches the node's own tracer — typically the peerd admin
// endpoint's trace writer and metrics sink — to every engine this node
// hosts, regardless of whether the driver requested tracing. Call before
// Serve.
func (n *Node) SetTracer(t obs.Tracer) {
	n.tracer = t
}

// RestoreCheckpoint loads the member checkpoint from the node's data
// directory, if one exists: it re-validates the checkpointed job (the
// program must still build from it), reinstalls the cluster routes and
// peer assignment it carries, and puts the member in rejoin mode for the
// job's generation — any round of that generation died with the previous
// process, so its frames are refused with an error report that makes the
// driver re-ship instead of waiting out a timeout. Returns the restored
// job, or nil if the directory holds no checkpoint.
func (n *Node) RestoreCheckpoint() (*wire.Job, error) {
	if n.dataDir == "" {
		return nil, nil
	}
	ck, ckErr := loadMemberCheckpoint(n.dataDir, n.tr.Self(), n.driver)

	// The WAL tail may hold a job newer than the checkpoint: a crash
	// between the ack (WAL record durable) and the write-behind
	// member.ckpt leaves the accepted job only in the log. Prefer the
	// newest generation; fall back to the other candidate if the newest
	// no longer builds.
	var candidates []*wire.Job
	if n.walLog != nil {
		if wj := lastWALJob(n.walLog); wj != nil {
			candidates = append(candidates, wj)
		}
	}
	if ck != nil {
		candidates = append(candidates, ck)
	}
	if len(candidates) == 2 && candidates[1].Gen > candidates[0].Gen {
		candidates[0], candidates[1] = candidates[1], candidates[0]
	}
	if len(candidates) == 0 {
		return nil, ckErr
	}
	var lastErr error
	for _, job := range candidates {
		budget := datalog.Budget{MaxTermDepth: int(job.MaxDepth), MaxFacts: int(job.MaxFacts)}
		if _, _, _, err := PrepareDatalog(job.NetText, job.Alarms, Engine(job.Engine), budget); err != nil {
			lastErr = fmt.Errorf("diagnosis: checkpointed job no longer builds: %w", err)
			continue
		}
		n.installJobRouting(*job)
		n.m.Rejoin(job.Gen)
		return job, nil
	}
	return nil, lastErr
}

// installJobRouting applies a job's peer assignment and node address book.
func (n *Node) installJobRouting(job wire.Job) {
	assign := make(map[dist.PeerID]string, len(job.Peers))
	for _, a := range job.Peers {
		assign[dist.PeerID(a.Key)] = a.Val
	}
	n.m.SetAssign(assign)
	for _, nd := range job.Nodes {
		if nd.Key != n.tr.Self() {
			n.tr.AddRoute(nd.Key, nd.Val)
		}
	}
}

// Close stops Serve and closes the transport and job log. Idempotent.
func (n *Node) Close() error {
	if n.walLog != nil {
		n.walLog.Close() //nolint:errcheck // the transport close is the one that matters
	}
	return n.m.Close()
}

// Serve loops over the driver's jobs: rebuild the program from the
// shipped description, host the assigned peers, evaluate rounds until the
// round loop is preempted by the next job or the node is closed.
func (n *Node) Serve() error {
	defer n.m.Close()
	for job := range n.m.Jobs() {
		if closed := n.serveJob(job); closed {
			return nil
		}
	}
	return nil
}

// ServeNode is the one-call form of NewNode + Serve, for processes whose
// lifetime is the service's (cmd/peerd).
func ServeNode(tr transport.Transport, driver string) error {
	n, err := NewNode(tr, driver)
	if err != nil {
		return err
	}
	return n.Serve()
}

// serveJob hosts one job's peers until the member closes (true) or a new
// job preempts this one (false).
func (n *Node) serveJob(job wire.Job) bool {
	m, tr := n.m, n.tr
	budget := datalog.Budget{MaxTermDepth: int(job.MaxDepth), MaxFacts: int(job.MaxFacts)}
	prog, _, budget, err := PrepareDatalog(job.NetText, job.Alarms, Engine(job.Engine), budget)
	if err != nil {
		m.SendJobOK(job.Gen, err.Error()) //nolint:errcheck
		return false
	}
	hosted := make([]dist.PeerID, 0, len(job.Hosted))
	for _, p := range job.Hosted {
		hosted = append(hosted, dist.PeerID(p))
	}
	eng, err := ddatalog.NewEngineHosted(prog, budget, hosted)
	if err != nil {
		m.SendJobOK(job.Gen, err.Error()) //nolint:errcheck
		return false
	}
	// The driver's trace context: when the job ships with Trace set, this
	// node records its spans into a per-job buffer and returns them in a
	// Telemetry frame at every round boundary. The node's own tracer (the
	// admin endpoint's) keeps observing either way.
	var jobTW *obs.ChromeTraceWriter
	if job.Trace {
		jobTW = obs.NewChromeTraceWriter(0)
		eng.SetTracer(obs.Multi(n.tracer, jobTW))
	} else if n.tracer != nil {
		eng.SetTracer(n.tracer)
	}
	n.installJobRouting(job)
	switch {
	case n.walLog != nil:
		// Log (and fsync) the job before acknowledging: once the driver
		// sees the ack, this node has promised it can rejoin after a
		// crash. The sequential append is cheap; the full member.ckpt
		// rewrite moves behind the ack.
		if _, err := n.walLog.Append(wire.AppendFrame(nil, 0, job)); err != nil {
			m.SendJobOK(job.Gen, fmt.Sprintf("wal append failed: %v", err)) //nolint:errcheck
			return false
		}
	case n.dataDir != "":
		// No log (it failed to open): fall back to the synchronous
		// checkpoint-before-ack path.
		if err := saveMemberCheckpoint(n.dataDir, tr.Self(), n.driver, job); err != nil {
			m.SendJobOK(job.Gen, fmt.Sprintf("checkpoint write failed: %v", err)) //nolint:errcheck
			return false
		}
	}
	if err := m.SendJobOK(job.Gen, ""); err != nil {
		return true
	}
	if n.walLog != nil && n.dataDir != "" {
		// Write-behind checkpoint: once it lands, the log prefix it covers
		// is redundant and can be compacted away.
		if err := saveMemberCheckpoint(n.dataDir, tr.Self(), n.driver, job); err == nil {
			n.walLog.Truncate(n.walLog.LastSeq()) //nolint:errcheck // compaction is advisory
		}
	}
	timeout := time.Duration(job.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = time.Minute
	}
	for {
		r := m.NextRound()
		_, err := eng.RunMember(r, timeout)
		switch {
		case errors.Is(err, dist.ErrClusterClosed):
			return true
		case errors.Is(err, dist.ErrRoundPreempted):
			return false
		}
		derived, replicated := eng.Totals()
		if jobTW != nil {
			shipTelemetry(r, jobTW, job.TraceID, map[string]uint64{
				"derived":    uint64(derived),
				"replicated": uint64(replicated),
			})
		}
		r.Finish(map[string]uint64{ //nolint:errcheck // a closing transport ends the loop on the next round
			"derived":    uint64(derived),
			"replicated": uint64(replicated),
		})
	}
}
