// Package diagnosis implements the paper's diagnosis problem (Section 2)
// three ways:
//
//   - a direct search diagnoser over the net (this file), the ground-truth
//     oracle for the test suite;
//   - the Section 4 dDatalog encoding: the unfolding program Prog(N,M)
//     (prog.go) and the supervisor program P_A(N,M,A) (supervisor.go),
//     evaluated naively or with dQSQ;
//   - the Section 4.4 extensions: hidden transitions, alarm patterns and
//     depth bounds (direct search here; Datalog variants in supervisor.go).
//
// A diagnosis is reported as the sorted canonical event names of a
// configuration of Unfold(N,M) whose alarms biject to the observed
// sequence respecting per-peer order.
package diagnosis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alarm"
	"repro/internal/petri"
	"repro/internal/unfold"
)

// DirectOptions bounds the direct search.
type DirectOptions struct {
	// MaxSilent bounds the total number of silent (hidden) transition
	// firings per explored run; 0 forbids silent firings unless the net
	// has silent transitions, in which case a default of 2*len(A)+2 is
	// used (Section 4.4's termination gadget).
	MaxSilent int
	// MaxAlarms bounds observed alarms for pattern diagnosis, where the
	// language may be infinite. 0 means the pattern run is bounded by the
	// sequence length (sequence diagnosis) or 2*states+4 (patterns).
	MaxAlarms int
}

// Diagnoses is a set of configurations, each a sorted slice of canonical
// event names.
type Diagnoses [][]string

// Keys renders the set canonically for comparisons.
func (d Diagnoses) Keys() []string {
	out := make([]string, 0, len(d))
	for _, cfg := range d {
		out = append(out, strings.Join(cfg, ";"))
	}
	sort.Strings(out)
	return out
}

// Equal compares two diagnosis sets regardless of order.
func (d Diagnoses) Equal(other Diagnoses) bool {
	a, b := d.Keys(), other.Keys()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// token tracks the condition currently sitting on a place, identified by
// its canonical unfolding name.
type token struct {
	place petri.NodeID
	name  string
}

// searcher explores interleavings, maintaining token identity so that the
// fired events are exactly unfolding events.
type searcher struct {
	pn      *petri.PetriNet
	opt     DirectOptions
	seen    map[string]bool // state dedup
	configs map[string][]string
}

// Direct computes the diagnosis set of seq in pn by explicit search: fire
// transitions whose alarm matches the next unconsumed alarm of their peer;
// silent transitions fire freely within the MaxSilent budget.
func Direct(pn *petri.PetriNet, seq alarm.Seq, opt DirectOptions) Diagnoses {
	per := seq.PerPeer()
	hasSilent := false
	for _, tid := range pn.Net.Transitions() {
		if pn.Net.Transition(tid).Alarm == petri.Silent {
			hasSilent = true
		}
	}
	if opt.MaxSilent == 0 && hasSilent {
		opt.MaxSilent = 2*len(seq) + 2
	}

	s := &searcher{pn: pn, opt: opt, seen: map[string]bool{}, configs: map[string][]string{}}
	tokens := map[petri.NodeID]token{}
	for pl := range pn.M0 {
		tokens[pl] = token{place: pl, name: fmt.Sprintf("g(%s,%s)", unfold.Root, pl)}
	}
	idx := map[petri.Peer]int{}
	s.search(tokens, per, idx, nil, 0)

	out := make(Diagnoses, 0, len(s.configs))
	keys := make([]string, 0, len(s.configs))
	for k := range s.configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, s.configs[k])
	}
	return out
}

// firedKey canonicalizes a fired event set. The fired set fully determines
// the search state: the surviving tokens, the per-peer alarm indexes and
// the silent count are all functions of it, while the converse is false
// for transitions with empty postsets. Deduplicating on it collapses the
// interleavings of one configuration into a single exploration.
func firedKey(fired []string) string {
	cp := append([]string(nil), fired...)
	sort.Strings(cp)
	return strings.Join(cp, ";")
}

func (s *searcher) search(tokens map[petri.NodeID]token, per map[petri.Peer][]petri.Alarm,
	idx map[petri.Peer]int, fired []string, silent int) {

	key := firedKey(fired)
	if s.seen[key] {
		return
	}
	s.seen[key] = true

	done := true
	for p, sub := range per {
		if idx[p] < len(sub) {
			done = false
		}
	}
	if done {
		cfg := append([]string(nil), fired...)
		sort.Strings(cfg)
		s.configs[strings.Join(cfg, ";")] = cfg
		// Do not return: hidden-transition runs may continue only through
		// silent firings, which never add alarms; configurations recorded
		// here are the minimal explanations (no trailing silent events).
		return
	}

	for _, tid := range s.pn.Net.Transitions() {
		t := s.pn.Net.Transition(tid)
		// Enabled?
		ok := true
		for _, pl := range t.Pre {
			if _, has := tokens[pl]; !has {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		nextSilent := silent
		if t.Alarm == petri.Silent {
			if silent >= s.opt.MaxSilent {
				continue
			}
			nextSilent++
		} else {
			sub := per[t.Peer]
			i := idx[t.Peer]
			if i >= len(sub) || sub[i] != t.Alarm {
				continue
			}
		}
		s.fire(tokens, per, idx, fired, nextSilent, t)
	}
}

// fire executes t, building the canonical event name from the consumed
// tokens, and recurses.
func (s *searcher) fire(tokens map[petri.NodeID]token, per map[petri.Peer][]petri.Alarm,
	idx map[petri.Peer]int, fired []string, silent int, t *petri.Transition) {

	parts := []string{string(t.ID)}
	for _, pl := range t.Pre {
		parts = append(parts, tokens[pl].name)
	}
	event := "f(" + strings.Join(parts, ",") + ")"

	next := make(map[petri.NodeID]token, len(tokens))
	for pl, tok := range tokens {
		next[pl] = tok
	}
	for _, pl := range t.Pre {
		delete(next, pl)
	}
	unsafe := false
	for _, pl := range t.Post {
		if _, clash := next[pl]; clash {
			unsafe = true
			break
		}
		next[pl] = token{place: pl, name: fmt.Sprintf("g(%s,%s)", event, pl)}
	}
	if unsafe {
		return
	}

	nidx := make(map[petri.Peer]int, len(idx))
	for p, i := range idx {
		nidx[p] = i
	}
	if t.Alarm != petri.Silent {
		nidx[t.Peer]++
	}
	s.search(next, per, nidx, append(fired, event), silent)
}

// DirectPattern computes pattern diagnoses (Section 4.4): configurations
// some linearization of whose observable alarms is accepted by the
// pattern automaton. The number of observed alarms is bounded by
// opt.MaxAlarms since star patterns describe infinite languages.
func DirectPattern(pn *petri.PetriNet, nfa *alarm.NFA, opt DirectOptions) Diagnoses {
	if opt.MaxAlarms == 0 {
		opt.MaxAlarms = 2*nfa.States + 4
	}
	s := &patSearcher{pn: pn, nfa: nfa, opt: opt, seen: map[string]bool{}, configs: map[string][]string{}}
	tokens := map[petri.NodeID]token{}
	for pl := range pn.M0 {
		tokens[pl] = token{place: pl, name: fmt.Sprintf("g(%s,%s)", unfold.Root, pl)}
	}
	s.search(tokens, nfa.Start(), nil, 0, 0)

	out := make(Diagnoses, 0, len(s.configs))
	keys := make([]string, 0, len(s.configs))
	for k := range s.configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, s.configs[k])
	}
	return out
}

type patSearcher struct {
	pn      *petri.PetriNet
	nfa     *alarm.NFA
	opt     DirectOptions
	seen    map[string]bool
	configs map[string][]string
}

func (s *patSearcher) search(tokens map[petri.NodeID]token, states alarm.StateSet,
	fired []string, observed, silent int) {

	// Pattern state sets depend on the observation order, so the key is
	// the fired set plus the NFA state set.
	var st []string
	for q := range states {
		st = append(st, fmt.Sprintf("%d", q))
	}
	sort.Strings(st)
	key := firedKey(fired) + "#" + strings.Join(st, ",")
	if s.seen[key] {
		return
	}
	s.seen[key] = true

	if s.nfa.Accepting(states) {
		cfg := append([]string(nil), fired...)
		sort.Strings(cfg)
		s.configs[strings.Join(cfg, ";")] = cfg
		// Continue: longer matches may also be accepted (e.g. α.β*.α).
	}
	if observed >= s.opt.MaxAlarms {
		return
	}

	for _, tid := range s.pn.Net.Transitions() {
		t := s.pn.Net.Transition(tid)
		ok := true
		for _, pl := range t.Pre {
			if _, has := tokens[pl]; !has {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		nextStates := states
		nextObserved := observed
		nextSilent := silent
		if t.Alarm == petri.Silent {
			if silent >= s.opt.MaxSilent {
				continue
			}
			nextSilent++
		} else {
			nextStates = s.nfa.Step(states, alarm.Obs{Alarm: t.Alarm, Peer: t.Peer})
			if len(nextStates) == 0 {
				continue
			}
			nextObserved++
		}

		eventParts := []string{string(t.ID)}
		for _, pl := range t.Pre {
			eventParts = append(eventParts, tokens[pl].name)
		}
		event := "f(" + strings.Join(eventParts, ",") + ")"
		next := make(map[petri.NodeID]token, len(tokens))
		for pl, tok := range tokens {
			next[pl] = tok
		}
		for _, pl := range t.Pre {
			delete(next, pl)
		}
		unsafe := false
		for _, pl := range t.Post {
			if _, clash := next[pl]; clash {
				unsafe = true
				break
			}
			next[pl] = token{place: pl, name: fmt.Sprintf("g(%s,%s)", event, pl)}
		}
		if unsafe {
			continue
		}
		s.search(next, nextStates, append(fired, event), nextObserved, nextSilent)
	}
}
