package diagnosis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/alarm"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/transport"
)

// TestDistributedTelemetry is the cluster-telemetry acceptance test over
// the in-process mesh: a traced distributed run must harvest per-member
// traces and counter samples, and the merged cluster timeline must span
// all three processes with the driver's flow-begins binding to member
// flow-ends.
func TestDistributedTelemetry(t *testing.T) {
	cl := startMesh(t)
	tw := obs.NewChromeTraceWriter(0)
	rep, err := RunDistributed(petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1"),
		EngineNaive, Options{Tracer: tw}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) == 0 {
		t.Fatal("no diagnoses")
	}

	procs := cl.ProcessTraces()
	if len(procs) != 2 || procs[0].Name != "n1" || procs[1].Name != "n2" {
		t.Fatalf("ProcessTraces nodes = %v, want [n1 n2]", procs)
	}
	for _, p := range procs {
		if len(p.Events) == 0 {
			t.Errorf("member %s shipped no trace events", p.Name)
		}
		if p.Offset != 0 {
			t.Errorf("member %s offset = %d, want 0 on the mesh", p.Name, p.Offset)
		}
	}

	counters := cl.MemberCounters()
	for _, node := range []string{"n1", "n2"} {
		c := counters[node]
		if c == nil {
			t.Fatalf("no counters for %s", node)
		}
		for _, key := range []string{"derived", "replicated", "go_goroutines", "go_heap_bytes", "go_gc_pause_ns",
			`dist_round_latency_us{phase="status-reply"}`} {
			if _, ok := c[key]; !ok {
				t.Errorf("member %s counters missing %s: %v", node, key, c)
			}
		}
		if c["go_goroutines"] == 0 {
			t.Errorf("member %s go_goroutines = 0", node)
		}
	}

	// The merged file: driver + both members, three pids, and at least one
	// flow arrow whose halves live in different processes.
	var buf bytes.Buffer
	all := append([]obs.ProcessTrace{tw.Export("driver")}, procs...)
	if err := obs.WriteClusterJSON(&buf, all); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	sends := map[float64]float64{} // flow id -> pid
	bound := false
	for _, raw := range file["traceEvents"].([]any) {
		e := raw.(map[string]any)
		pids[e["pid"].(float64)] = true
		switch e["ph"] {
		case "s":
			sends[e["id"].(float64)] = e["pid"].(float64)
		case "f":
			if spid, ok := sends[e["id"].(float64)]; ok && spid != e["pid"].(float64) {
				bound = true
			}
		}
	}
	if len(pids) != 3 {
		t.Fatalf("merged trace spans %d pids, want 3", len(pids))
	}
	if !bound {
		t.Fatal("no cross-process flow arrow in the merged trace")
	}
}

// TestDistributedTelemetryOff: without a driver tracer the job ships with
// Trace unset and members stay silent — no telemetry accumulates.
func TestDistributedTelemetryOff(t *testing.T) {
	cl := startMesh(t)
	if _, err := RunDistributed(petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1"),
		EngineNaive, Options{}, cl); err != nil {
		t.Fatal(err)
	}
	if procs := cl.ProcessTraces(); len(procs) != 0 {
		t.Fatalf("untraced run accumulated %d process traces", len(procs))
	}
	// Members ship nothing without a trace context, so no engine counters
	// or runtime gauges accumulate — but the driver-observed round
	// latencies do: the driver measures its own poll round trips.
	for node, c := range cl.MemberCounters() {
		for key := range c {
			if !strings.HasPrefix(key, "dist_round_latency_us") && !strings.HasPrefix(key, "dist_straggler_total") {
				t.Errorf("untraced run accumulated member-shipped counter %s on %s", key, node)
			}
		}
		if _, ok := c[`dist_round_latency_us{phase="status-reply"}`]; !ok {
			t.Errorf("untraced run missing driver-observed latency for %s: %v", node, c)
		}
	}
}

// TestNodeTracer: a node-level tracer (the peerd admin endpoint's) sees
// the member's spans even when the driver did not request tracing.
func TestNodeTracer(t *testing.T) {
	mesh := transport.NewMesh()
	cl := &Cluster{Transport: mesh.Node("driver"), Nodes: []string{"n1"}}
	t.Cleanup(func() { cl.Close() })

	nodeTW := obs.NewChromeTraceWriter(0)
	n, err := NewNode(mesh.Node("n1"), "driver")
	if err != nil {
		t.Fatal(err)
	}
	n.SetTracer(nodeTW)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n.Serve() //nolint:errcheck
	}()
	t.Cleanup(func() {
		n.Close()
		<-done
	})

	if _, err := RunDistributed(petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1"),
		EngineNaive, Options{}, cl); err != nil {
		t.Fatal(err)
	}
	if nodeTW.Len() == 0 {
		t.Fatal("node tracer saw no events from an untraced job")
	}
}
