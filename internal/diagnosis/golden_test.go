package diagnosis

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alarm"
	"repro/internal/petri"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting with -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("%s drifted from golden file; run with -update and review the diff.\n--- got ---\n%s", name, got)
	}
}

// TestGoldenUnfoldingProgram pins the full generated Prog(N,M) for the
// padded running example: the Section 4.1 rules are the heart of the
// reproduction, and unreviewed drift in their shape would silently change
// what every downstream theorem test exercises.
func TestGoldenUnfoldingProgram(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildUnfoldingProgram(padded)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "unfolding_program.golden", prog.Localize().String())
}

// TestGoldenDiagnosisProgram pins the supervisor rules of Section 4.2 for
// the example and the paper's A1 sequence.
func TestGoldenDiagnosisProgram(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := BuildDiagnosisProgram(padded, alarm.S("b", "p1", "a", "p2", "c", "p1"))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "diagnosis_program.golden", prog.Localize().String())
}
