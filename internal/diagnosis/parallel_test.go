package diagnosis

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/gen"
	"repro/internal/petri"
)

// runOnlineAt streams seq one alarm at a time through a fresh online
// diagnoser at the given evaluation parallelism and returns the formatted
// diagnoses of every append plus the engine's materialization totals.
func runOnlineAt(t *testing.T, pn *petri.PetriNet, seq alarm.Seq, workers int) (bodies string, derived, replicated int) {
	t.Helper()
	d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	d.SetParallelism(workers)
	for i := range seq {
		rep, err := d.Append(seq[i:i+1], time.Minute)
		if err != nil {
			t.Fatalf("append %d (workers=%d): %v", i, workers, err)
		}
		bodies += fmt.Sprintf("%v\n", rep.Diagnoses)
	}
	derived, replicated = d.Session().Engine().Totals()
	return bodies, derived, replicated
}

// TestParallelMatchesSequential is the worker-pool correctness bar at the
// diagnosis level: across every example network family, streaming the same
// alarm sequence through a sequential (1-worker) and a parallel (4-worker)
// session must yield byte-identical diagnosis bodies for every prefix AND
// identical derived/replicated totals — the pool may only change
// scheduling, never what the confluent evaluation computes.
func TestParallelMatchesSequential(t *testing.T) {
	pipeline := gen.Pipeline(5, 2)
	fork := gen.Fork(3, 2)
	telecom := gen.Telecom(2)
	cases := []struct {
		name string
		pn   *petri.PetriNet
		seq  alarm.Seq
	}{
		{"quickstart", petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1")},
		{"pipeline(5,2)", pipeline, gen.PipelineSeq(pipeline, rand.New(rand.NewSource(3)), 6)},
		{"fork(3,2)", fork, gen.ForkSeq(fork, rand.New(rand.NewSource(3)))},
		{"telecom(2)", telecom, gen.TelecomSeqFixed()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seqBodies, seqDer, seqRepl := runOnlineAt(t, tc.pn, tc.seq, 1)
			parBodies, parDer, parRepl := runOnlineAt(t, tc.pn, tc.seq, 4)
			if seqBodies != parBodies {
				t.Errorf("diagnosis bodies differ:\nsequential:\n%s\nparallel:\n%s", seqBodies, parBodies)
			}
			if seqDer != parDer {
				t.Errorf("derived: sequential %d, parallel %d", seqDer, parDer)
			}
			if seqRepl != parRepl {
				t.Errorf("replicated: sequential %d, parallel %d", seqRepl, parRepl)
			}
		})
	}
}
