package diagnosis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/petri"
)

func TestRunUnknownEngine(t *testing.T) {
	if _, err := Run(petri.Example(), nil, Engine(99), Options{}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestEngineStrings(t *testing.T) {
	for e, want := range map[Engine]string{
		EngineDirect:  "direct",
		EngineProduct: "product[8]",
		EngineNaive:   "naive-dDatalog",
		EngineDQSQ:    "dQSQ",
	} {
		if e.String() != want {
			t.Fatalf("%d: %q", e, e.String())
		}
	}
	if !strings.Contains(Engine(42).String(), "42") {
		t.Fatal("unknown engine string")
	}
}

func TestDatalogEnginesRejectWidePresets(t *testing.T) {
	n := petri.NewNet()
	for _, id := range []petri.NodeID{"a", "b", "c", "d"} {
		n.AddPlace(id, "p")
	}
	n.AddTransition("t", "p", "x", []petri.NodeID{"a", "b", "c"}, []petri.NodeID{"d"})
	pn, err := petri.New(n, petri.NewMarking("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pn, alarm.S("x", "p"), EngineNaive, Options{}); err == nil {
		t.Fatal("3-parent net accepted by the Datalog pipeline")
	}
	// The direct and product engines handle it fine.
	rep, err := Run(pn, alarm.S("x", "p"), EngineDirect, Options{})
	if err != nil || len(rep.Diagnoses) != 1 {
		t.Fatalf("direct on wide preset: %v / %v", err, rep)
	}
	rep, err = Run(pn, alarm.S("x", "p"), EngineProduct, Options{})
	if err != nil || len(rep.Diagnoses) != 1 {
		t.Fatalf("product on wide preset: %v / %v", err, rep)
	}
}

func TestSupervisorPeerCollision(t *testing.T) {
	n := petri.NewNet()
	n.AddPlace("a", petri.Peer(SupervisorPeer))
	n.AddPlace("b", petri.Peer(SupervisorPeer))
	n.AddTransition("t", petri.Peer(SupervisorPeer), "x", []petri.NodeID{"a"}, []petri.NodeID{"b"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pn, alarm.S("x", string(SupervisorPeer)), EngineDQSQ, Options{}); err == nil {
		t.Fatal("supervisor peer collision accepted")
	}
}

func TestUnknownAlarmPeerRejected(t *testing.T) {
	if _, err := Run(petri.Example(), alarm.S("b", "ghost"), EngineDQSQ, Options{}); err == nil {
		t.Fatal("alarm from unknown peer accepted")
	}
	// The direct engine simply finds no explanation.
	rep, err := Run(petri.Example(), alarm.S("b", "ghost"), EngineDirect, Options{})
	if err != nil || len(rep.Diagnoses) != 0 {
		t.Fatalf("direct: %v / %v", err, rep.Diagnoses)
	}
}

func TestReportMetricsPopulated(t *testing.T) {
	rep, err := Run(petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1"),
		EngineDQSQ, Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransFacts == 0 || rep.PlaceFacts == 0 || rep.Derived == 0 || rep.Messages == 0 {
		t.Fatalf("metrics missing: %+v", rep)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if rep.Truncated {
		t.Fatal("unexpected truncation")
	}
}

func TestDiagnosesKeysAndEqual(t *testing.T) {
	a := Diagnoses{{"x", "y"}, {"z"}}
	b := Diagnoses{{"z"}, {"x", "y"}}
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality broken")
	}
	if a.Equal(Diagnoses{{"x", "y"}}) {
		t.Fatal("length mismatch accepted")
	}
	if a.Equal(Diagnoses{{"x", "y"}, {"w"}}) {
		t.Fatal("content mismatch accepted")
	}
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != "x;y" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestStripPadsRendering(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildUnfoldingProgram(padded)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Store
	// f(ii, g(r,4), g(r,pad.ii)) must strip to f(ii,g(r,4)).
	r := s.Constant("r")
	ev := s.Compound("f", s.Constant("ii"),
		s.Compound("g", r, s.Constant("4")),
		s.Compound("g", r, s.Constant("pad.ii")))
	if got := StripPads(s, ev); got != "f(ii,g(r,4))" {
		t.Fatalf("StripPads = %q", got)
	}
	// Nested pads strip too.
	ev2 := s.Compound("f", s.Constant("vi"),
		s.Compound("g", ev, s.Constant("6")),
		s.Compound("g", r, s.Constant("pad.vi")))
	if got := StripPads(s, ev2); got != "f(vi,g(f(ii,g(r,4)),6))" {
		t.Fatalf("StripPads nested = %q", got)
	}
	// Constants pass through.
	if StripPads(s, r) != "r" {
		t.Fatal("constant mangled")
	}
}
