package diagnosis

import (
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/petri"
	"repro/internal/snapshot"
)

// snapshotRestore round-trips a diagnoser through the full encode →
// bytes → Open → decode path, as a real checkpoint file would.
func snapshotRestore(t *testing.T, d *OnlineDiagnoser, pn *petri.PetriNet) *OnlineDiagnoser {
	t.Helper()
	f := snapshot.New()
	if err := d.EncodeSnapshot(f); err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	o, err := snapshot.Open(f.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	restored, err := DecodeOnlineDiagnoserSnapshot(o, pn)
	if err != nil {
		t.Fatalf("DecodeOnlineDiagnoserSnapshot: %v", err)
	}
	return restored
}

// TestDiagnoserSnapshotEquivalence is the invariant the whole checkpoint
// subsystem hangs on: a diagnoser killed after k appends and restored
// from its snapshot must produce byte-identical diagnoses, derived-fact
// counts and message counts on every subsequent append, compared against
// a diagnoser that was never interrupted. Checked for every split point
// of the quickstart sequence.
func TestDiagnoserSnapshotEquivalence(t *testing.T) {
	pn := petri.Example()
	seq := seqA1
	for k := 0; k <= len(seq); k++ {
		ref, err := NewOnlineDiagnoser(pn, datalog.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		cut, err := NewOnlineDiagnoser(pn, datalog.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if _, err := ref.Append([]alarm.Obs{seq[i]}, time.Minute); err != nil {
				t.Fatal(err)
			}
			if _, err := cut.Append([]alarm.Obs{seq[i]}, time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		restored := snapshotRestore(t, cut, pn)
		if got, want := restored.Seq(), ref.Seq(); len(got) != len(want) {
			t.Fatalf("split %d: restored Seq has %d alarms, want %d", k, len(got), len(want))
		}
		if (restored.Report() == nil) != (ref.Report() == nil) {
			t.Fatalf("split %d: restored report presence differs", k)
		}
		if restored.Report() != nil && !restored.Report().Diagnoses.Equal(ref.Report().Diagnoses) {
			t.Fatalf("split %d: restored last report differs", k)
		}
		for i := k; i < len(seq); i++ {
			want, err := ref.Append([]alarm.Obs{seq[i]}, time.Minute)
			if err != nil {
				t.Fatalf("split %d ref append %d: %v", k, i, err)
			}
			got, err := restored.Append([]alarm.Obs{seq[i]}, time.Minute)
			if err != nil {
				t.Fatalf("split %d restored append %d: %v", k, i, err)
			}
			if !got.Diagnoses.Equal(want.Diagnoses) {
				t.Fatalf("split %d append %d: diagnoses %v != %v", k, i, got.Diagnoses.Keys(), want.Diagnoses.Keys())
			}
			if got.Derived != want.Derived {
				t.Fatalf("split %d append %d: derived %d != %d", k, i, got.Derived, want.Derived)
			}
			if got.Messages != want.Messages {
				t.Fatalf("split %d append %d: messages %d != %d", k, i, got.Messages, want.Messages)
			}
			if got.TransFacts != want.TransFacts || got.PlaceFacts != want.PlaceFacts {
				t.Fatalf("split %d append %d: unfolding %d/%d != %d/%d",
					k, i, got.TransFacts, got.PlaceFacts, want.TransFacts, want.PlaceFacts)
			}
		}
	}
}

// TestDiagnoserSnapshotRefusesPoisoned: a poisoned session must never be
// persisted — its warm state is desynchronized from its durable state.
func TestDiagnoserSnapshotRefusesPoisoned(t *testing.T) {
	d, err := NewOnlineDiagnoser(petri.Example(), datalog.Budget{MaxFacts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(seqA1[:1], time.Minute); err == nil {
		t.Fatal("expected budget failure")
	}
	if err := d.EncodeSnapshot(snapshot.New()); err == nil {
		t.Fatal("EncodeSnapshot accepted a poisoned session")
	}
}

// TestDiagnoserSnapshotRejectsCorruption: flipping any single byte of a
// snapshot must yield an error, never a panic or a silently restored
// partial state.
func TestDiagnoserSnapshotRejectsCorruption(t *testing.T) {
	pn := petri.Example()
	d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(seqA1[:1], time.Minute); err != nil {
		t.Fatal(err)
	}
	f := snapshot.New()
	if err := d.EncodeSnapshot(f); err != nil {
		t.Fatal(err)
	}
	data := f.Bytes()
	// Every section is CRC-protected, so any body flip fails at Open;
	// header flips fail magic/version/framing checks. Sample positions
	// across the file to keep the test fast.
	step := len(data)/97 + 1
	for i := 0; i < len(data); i += step {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		o, err := snapshot.Open(mut)
		if err != nil {
			continue
		}
		if _, err := DecodeOnlineDiagnoserSnapshot(o, pn); err == nil {
			t.Fatalf("byte flip at %d restored without error", i)
		}
	}
	// Truncations likewise.
	for i := 0; i < len(data); i += step {
		o, err := snapshot.Open(data[:i])
		if err != nil {
			continue
		}
		if _, err := DecodeOnlineDiagnoserSnapshot(o, pn); err == nil {
			t.Fatalf("truncation to %d restored without error", i)
		}
	}
}
