package diagnosis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/obs"
	"repro/internal/petri"
)

// TestOnlineDiagnoserTrace drives an instrumented online session and
// checks that the whole stack reports through one tracer: append spans
// (diagnosis), subquery counters (dqsq), derivation counters (ddatalog)
// and the unfolding-nodes gauge.
func TestOnlineDiagnoserTrace(t *testing.T) {
	pn := petri.Example()
	d, err := NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewChromeTraceWriter(0)
	d.SetTracer(w)

	var rep *Report
	for i, o := range seqA1 {
		if rep, err = d.Append([]alarm.Obs{o}, time.Minute); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}

	appendSpans := 0
	subqueries, derived, lastNodes := 0.0, 0.0, -1.0
	for _, e := range file.TraceEvents {
		switch {
		case e.Ph == "X" && strings.HasPrefix(e.Name, "append.v"):
			appendSpans++
		case e.Ph == "C" && e.Name == "dqsq_subqueries_total":
			subqueries = e.Args["value"].(float64) // running total
		case e.Ph == "C" && e.Name == "ddatalog_facts_derived_total":
			derived = e.Args["value"].(float64)
		case e.Ph == "C" && e.Name == "diagnosis_unfolding_nodes":
			lastNodes = e.Args["value"].(float64) // gauge: absolute sample
		}
	}
	if appendSpans != len(seqA1) {
		t.Fatalf("append spans = %d, want %d", appendSpans, len(seqA1))
	}
	if subqueries == 0 {
		t.Fatal("no dqsq_subqueries_total counter")
	}
	if derived != float64(rep.Derived) {
		t.Fatalf("ddatalog_facts_derived_total = %v, Report.Derived = %d", derived, rep.Derived)
	}
	if lastNodes != float64(rep.TransFacts+rep.PlaceFacts) {
		t.Fatalf("diagnosis_unfolding_nodes = %v, want %d", lastNodes, rep.TransFacts+rep.PlaceFacts)
	}
}
