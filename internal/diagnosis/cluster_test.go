package diagnosis

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/transport"
)

type clusterCase struct {
	name string
	pn   *petri.PetriNet
	seq  alarm.Seq
}

func clusterCases() []clusterCase {
	return []clusterCase{
		{"quickstart", petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1")},
		{"telecom", gen.Telecom(3), gen.TelecomSeqFixed()},
	}
}

// serveOn starts a member node serving on tr and wires its shutdown into
// the test cleanup.
func serveOn(t *testing.T, tr transport.Transport, driver string) {
	t.Helper()
	n, err := NewNode(tr, driver)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n.Serve() //nolint:errcheck
	}()
	t.Cleanup(func() {
		n.Close()
		<-done
	})
}

// startMesh builds a driver plus two member nodes over an in-process mesh.
func startMesh(t *testing.T) *Cluster {
	t.Helper()
	mesh := transport.NewMesh()
	cl := &Cluster{Transport: mesh.Node("driver"), Nodes: []string{"n1", "n2"}}
	t.Cleanup(func() { cl.Close() })
	for _, name := range cl.Nodes {
		serveOn(t, mesh.Node(name), "driver")
	}
	return cl
}

// startTCP builds the same topology over loopback sockets. Members learn
// every route from the shipped job's address book; only the driver's own
// routes are configured up front.
func startTCP(t *testing.T) (*Cluster, []*transport.TCP) {
	t.Helper()
	names := []string{"driver", "n1", "n2"}
	trs := make(map[string]*transport.TCP, len(names))
	addrs := make(map[string]string, len(names))
	for _, name := range names {
		tr, err := transport.ListenTCP(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		trs[name] = tr
		addrs[name] = tr.Addr()
	}
	cl := &Cluster{Transport: trs["driver"], Nodes: []string{"n1", "n2"}, Addrs: addrs}
	t.Cleanup(func() { cl.Close() })
	for _, name := range cl.Nodes {
		trs["driver"].AddRoute(name, addrs[name])
		serveOn(t, trs[name], "driver")
	}
	return cl, []*transport.TCP{trs["driver"], trs["n1"], trs["n2"]}
}

// TestDistributedEquivalence is the subsystem's acceptance test: for both
// example systems and both Datalog engines, a distributed run — over the
// in-process mesh and over real TCP loopback — must return exactly the
// configuration set, materialized-fact count and message count of the
// single-process evaluation. The counts are sets (per distinct tuple, per
// subscription), so they are insensitive to scheduling and rule order and
// any loss or duplication in the cluster runtime would show.
func TestDistributedEquivalence(t *testing.T) {
	for _, c := range clusterCases() {
		for _, engine := range []Engine{EngineNaive, EngineDQSQ} {
			base, err := Run(c.pn, c.seq, engine, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Diagnoses) == 0 {
				t.Fatalf("%s/%v: baseline found no diagnoses", c.name, engine)
			}
			for _, substrate := range []string{"mesh", "tcp"} {
				t.Run(fmt.Sprintf("%s/%v/%s", c.name, engine, substrate), func(t *testing.T) {
					var cl *Cluster
					if substrate == "mesh" {
						cl = startMesh(t)
					} else {
						cl, _ = startTCP(t)
					}
					rep, err := RunDistributed(c.pn, c.seq, engine, Options{}, cl)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Diagnoses.Equal(base.Diagnoses) {
						t.Errorf("diagnoses = %v, want %v", rep.Diagnoses, base.Diagnoses)
					}
					if rep.Derived != base.Derived {
						t.Errorf("derived = %d, want %d", rep.Derived, base.Derived)
					}
					if rep.Messages != base.Messages {
						t.Errorf("messages = %d, want %d", rep.Messages, base.Messages)
					}
				})
			}
		}
	}
}

// TestDistributedClusterReuse runs several jobs through one cluster: the
// job hand-over (round preemption, fresh engines, backlog replay) must
// leave each evaluation as exact as a fresh cluster's. The telecom job
// also exercises empty member rounds: its peers are not in the first
// net's assignment, so the members host nothing and the driver evaluates
// alone while the coordinator still polls them.
func TestDistributedClusterReuse(t *testing.T) {
	cl := startMesh(t)
	cases := clusterCases()
	for _, run := range []struct {
		c      clusterCase
		engine Engine
	}{
		{cases[0], EngineNaive},
		{cases[0], EngineDQSQ},
		{cases[1], EngineNaive},
		{cases[0], EngineNaive},
	} {
		base, err := Run(run.c.pn, run.c.seq, run.engine, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunDistributed(run.c.pn, run.c.seq, run.engine, Options{}, cl)
		if err != nil {
			t.Fatalf("%s/%v: %v", run.c.name, run.engine, err)
		}
		if !rep.Diagnoses.Equal(base.Diagnoses) || rep.Derived != base.Derived || rep.Messages != base.Messages {
			t.Errorf("%s/%v: got %d diagnoses/%d derived/%d messages, want %d/%d/%d",
				run.c.name, run.engine, len(rep.Diagnoses), rep.Derived, rep.Messages,
				len(base.Diagnoses), base.Derived, base.Messages)
		}
	}
}

// TestDistributedSurvivesConnDrops drops every live TCP connection —
// repeatedly, while frames are in flight — during an evaluation. The
// transport's replay must deliver every frame exactly once, so the run
// still returns the exact single-process results: a lost fact would
// change the counts (or hang quiescence), a duplicated one would
// double-count a message.
func TestDistributedSurvivesConnDrops(t *testing.T) {
	c := clusterCases()[1] // telecom: the longer evaluation
	base, err := Run(c.pn, c.seq, EngineNaive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, trs := startTCP(t)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			// Wait (event-driven, on the transport's own counters) until
			// more traffic flowed, so each drop lands mid-conversation.
			target := trs[0].Stats().FramesReceived + 10
			for trs[0].Stats().FramesReceived < target {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
			}
			for _, tr := range trs {
				tr.DropConns()
			}
		}
	}()
	rep, err := RunDistributed(c.pn, c.seq, EngineNaive, Options{}, cl)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnoses.Equal(base.Diagnoses) {
		t.Errorf("diagnoses = %v, want %v", rep.Diagnoses, base.Diagnoses)
	}
	if rep.Derived != base.Derived {
		t.Errorf("derived = %d, want %d", rep.Derived, base.Derived)
	}
	if rep.Messages != base.Messages {
		t.Errorf("messages = %d, want %d", rep.Messages, base.Messages)
	}
}
