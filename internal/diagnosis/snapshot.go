package diagnosis

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/alarm"
	"repro/internal/dqsq"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snapnames"
)

// EncodeReportSnapshot writes one diagnosis report (or its absence).
func EncodeReportSnapshot(w *snapshot.Writer, rep *Report) {
	w.Bool(rep != nil)
	if rep == nil {
		return
	}
	w.Uvarint(uint64(rep.Engine))
	w.Uvarint(uint64(len(rep.Diagnoses)))
	for _, d := range rep.Diagnoses {
		w.Uvarint(uint64(len(d)))
		for _, t := range d {
			w.String(t)
		}
	}
	w.Uvarint(uint64(rep.TransFacts))
	w.Uvarint(uint64(rep.PlaceFacts))
	w.Uvarint(uint64(rep.Derived))
	w.Uvarint(uint64(rep.Messages))
	w.Int(int64(rep.Elapsed))
	w.Bool(rep.Truncated)
}

// DecodeReportSnapshot reads a report written by EncodeReportSnapshot.
func DecodeReportSnapshot(r *snapshot.Reader) *Report {
	if !r.Bool() {
		return nil
	}
	rep := &Report{}
	eng := r.Uvarint()
	if r.Err() == nil && eng > uint64(EngineDQSQ) {
		r.Failf("unknown engine %d", eng)
		return nil
	}
	rep.Engine = Engine(eng)
	n := r.Count(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		m := r.Count(1)
		diag := make([]string, 0, m)
		for j := 0; j < m && r.Err() == nil; j++ {
			diag = append(diag, r.String())
		}
		rep.Diagnoses = append(rep.Diagnoses, diag)
	}
	rep.TransFacts = int(r.Uvarint())
	rep.PlaceFacts = int(r.Uvarint())
	rep.Derived = int(r.Uvarint())
	rep.Messages = int(r.Uvarint())
	rep.Elapsed = time.Duration(r.Int())
	rep.Truncated = r.Bool()
	if r.Err() != nil {
		return nil
	}
	return rep
}

// EncodeSeqSnapshot writes an alarm sequence.
func EncodeSeqSnapshot(w *snapshot.Writer, seq alarm.Seq) {
	w.Uvarint(uint64(len(seq)))
	for _, o := range seq {
		w.String(string(o.Alarm))
		w.String(string(o.Peer))
	}
}

// DecodeSeqSnapshot reads an alarm sequence.
func DecodeSeqSnapshot(r *snapshot.Reader) alarm.Seq {
	n := r.Count(2)
	var seq alarm.Seq
	for i := 0; i < n && r.Err() == nil; i++ {
		seq = append(seq, alarm.Obs{Alarm: petri.Alarm(r.String()), Peer: petri.Peer(r.String())})
	}
	return seq
}

// EncodeSnapshot writes the diagnoser into f: the warm dQSQ session (term
// store, program, rewriters, engine) in its own sections, plus a
// diagnoser section with the observed sequence, per-peer alarm counts,
// query version and last report. The Petri net itself is NOT serialized —
// the caller persists the net text alongside and passes the parsed net to
// DecodeOnlineDiagnoserSnapshot; net parsing and padding are
// deterministic, so the rebuilt structures match the original exactly.
//
// A poisoned diagnoser refuses to snapshot: its warm state may be
// desynchronized from its durable state, which is the very thing
// checkpoints must never persist.
func (d *OnlineDiagnoser) EncodeSnapshot(f *snapshot.File) error {
	if d.broken != nil {
		return fmt.Errorf("diagnosis: cannot snapshot poisoned session: %w", d.broken)
	}
	if err := d.sess.EncodeSnapshot(f); err != nil {
		return err
	}
	w := f.Section(snapnames.Diagnoser)
	peers := make([]string, 0, len(d.counts))
	for p := range d.counts {
		peers = append(peers, string(p))
	}
	sort.Strings(peers)
	w.Uvarint(uint64(len(peers)))
	for _, p := range peers {
		w.String(p)
		w.Uvarint(uint64(d.counts[petri.Peer(p)]))
	}
	EncodeSeqSnapshot(w, d.seq)
	w.Uvarint(uint64(d.version))
	EncodeReportSnapshot(w, d.last)
	return nil
}

// DecodeOnlineDiagnoserSnapshot restores a diagnoser from the sections
// EncodeSnapshot wrote, over the given (re-parsed) Petri net. The restored
// diagnoser continues exactly where the snapshot was taken: the next
// Append installs query version n+1 over the warm unfolding prefix, at
// the cost of decoding the snapshot — not of re-running the n appends
// that produced it.
func DecodeOnlineDiagnoserSnapshot(o *snapshot.OpenFile, pn *petri.PetriNet) (*OnlineDiagnoser, error) {
	padded, err := petri.Pad2(pn)
	if err != nil {
		return nil, err
	}
	sess, err := dqsq.DecodeOnlineSessionSnapshot(o)
	if err != nil {
		return nil, err
	}
	r, err := o.Section(snapnames.Diagnoser)
	if err != nil {
		return nil, err
	}
	d := &OnlineDiagnoser{
		pn:     pn,
		padded: padded,
		sess:   sess,
		prog:   sess.Program(),
		peers:  indexPeers(padded),
		counts: make(map[petri.Peer]int),
		tracer: obs.Nop,
	}
	n := r.Count(2)
	for i := 0; i < n && r.Err() == nil; i++ {
		p := petri.Peer(r.String())
		c := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if !hasPeer(padded, p) {
			r.Failf("alarm count for peer %q not in net", p)
			break
		}
		d.counts[p] = int(c)
	}
	d.seq = DecodeSeqSnapshot(r)
	d.version = int(r.Uvarint())
	d.last = DecodeReportSnapshot(r)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	for _, ob := range d.seq {
		if !hasPeer(padded, ob.Peer) {
			return nil, fmt.Errorf("%w: alarm from peer %q not in net", snapshot.ErrCorrupt, ob.Peer)
		}
	}
	return d, nil
}
