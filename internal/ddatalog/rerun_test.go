package ddatalog

import (
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/term"
)

// reachProgram builds a two-peer reachability program:
//
//	edge@a(x,y) facts, path@a(X,Y) :- edge@a(X,Y)
//	path@a(X,Z) :- edge@a(X,Y), path@a(Y,Z)
//	mirror@b(X,Y) :- path@a(X,Y)   (forces cross-peer subscription)
func reachProgram(s *term.Store, edges [][2]string) (*Program, PAtom) {
	p := NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(PRule{Head: At("path", "a", x, y), Body: []PAtom{At("edge", "a", x, y)}})
	p.AddRule(PRule{Head: At("path", "a", x, z), Body: []PAtom{At("edge", "a", x, y), At("path", "a", y, z)}})
	p.AddRule(PRule{Head: At("mirror", "b", x, y), Body: []PAtom{At("path", "a", x, y)}})
	for _, e := range edges {
		p.AddFact(At("edge", "a", s.Constant(e[0]), s.Constant(e[1])))
	}
	return p, At("mirror", "b", s.Variable("QX"), s.Variable("QY"))
}

// TestRunDeltaIncrementalFacts: appending one edge at a time through
// RunDelta yields the same final answer set as a one-shot run, and the
// later rounds only derive the new frontier (warm state is reused).
func TestRunDeltaIncrementalFacts(t *testing.T) {
	edges := [][2]string{{"1", "2"}, {"2", "3"}, {"3", "4"}}

	// One-shot reference.
	s1 := term.NewStore()
	prog1, q1 := reachProgram(s1, edges)
	ref, _, err := Run(prog1, q1, datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Incremental: start with the first edge, append the rest.
	s2 := term.NewStore()
	prog2, q2 := reachProgram(s2, edges[:1])
	eng, err := NewEngine(prog2, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("round 0: %d answers, want 1", len(res.Answers))
	}
	for _, e := range edges[1:] {
		res, err = eng.RunDelta(q2, []PAtom{At("edge", "a", s2.Constant(e[0]), s2.Constant(e[1]))}, nil, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(res.Answers) != len(ref.Answers) {
		t.Fatalf("incremental answers %d != one-shot %d", len(res.Answers), len(ref.Answers))
	}
	// Derived is cumulative; warm reuse means the total stays close to the
	// one-shot count (the same path facts are derived exactly once).
	if res.Stats.Derived > 2*ref.Stats.Derived {
		t.Fatalf("incremental derived %d > 2x one-shot %d", res.Stats.Derived, ref.Stats.Derived)
	}
}

// TestRunDeltaInstallRule: a rule arriving between rounds extends the
// program — a fresh query relation over the warm materialization.
func TestRunDeltaInstallRule(t *testing.T) {
	s := term.NewStore()
	prog, q := reachProgram(s, [][2]string{{"1", "2"}, {"2", "3"}})
	eng, err := NewEngine(prog, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(q, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// New rule: from1@b(X) :- mirror@b("1", X) — hosted at b, over replicas.
	x := s.Variable("NX")
	r := PRule{Head: At("from1", "b", x), Body: []PAtom{At("mirror", "b", s.Constant("1"), x)}}
	res, err := eng.RunDelta(At("from1", "b", s.Variable("QZ")), nil, []PRule{r}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 { // 1->2, 1->3
		t.Fatalf("from1 answers = %d, want 2", len(res.Answers))
	}
}

// TestRunRepeatedSameQuery: re-running the same query with no delta is a
// cheap no-op that still returns the full (accumulated) answer set.
func TestRunRepeatedSameQuery(t *testing.T) {
	s := term.NewStore()
	prog, q := reachProgram(s, [][2]string{{"1", "2"}, {"2", "3"}})
	eng, err := NewEngine(prog, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Run(q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Answers) != len(second.Answers) {
		t.Fatalf("answers changed across idle reruns: %d then %d", len(first.Answers), len(second.Answers))
	}
	if second.Stats.Derived != first.Stats.Derived {
		t.Fatalf("idle rerun derived new facts: %d -> %d", first.Stats.Derived, second.Stats.Derived)
	}
	if second.Stats.Net.MessagesSent > 3 {
		t.Fatalf("idle rerun sent %d messages", second.Stats.Net.MessagesSent)
	}
}
