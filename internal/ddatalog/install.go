package ddatalog

import (
	"sync"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
	"repro/internal/wire"
)

// This file adds dynamic rule installation to the engine: rules may arrive
// while the network is running, either from an activation hook (a peer
// extending its own program lazily) or as wire.Install messages from
// another peer. It is the substrate for online dQSQ (the paper's Remark 2:
// "the dQSQ computation, and the generation of results, may start even
// before the rewriting is complete").

// ActivationHook is consulted the first time a relation is activated at a
// peer. It returns rules to add to the running program; rules hosted at
// the activating peer are installed immediately, rules hosted elsewhere
// are shipped as wire.Install messages. The returned rules must be built
// over the engine's program store. Hooks run on peer goroutines and must
// be safe for concurrent use.
type ActivationHook func(peer dist.PeerID, relName rel.Name) []PRule

// SetActivationHook installs the hook. Must be called before Run.
func (e *Engine) SetActivationHook(h ActivationHook) {
	e.hook = h
}

// hookStore serializes access to the shared program store during hook
// execution: hooks (the online rewriters) intern new terms into the
// program store, which is not safe for concurrent mutation.
var hookMu sync.Mutex

// runHook invokes the engine hook once per (peer, relation), routing the
// returned rules: local ones are installed now, remote ones shipped.
func (ps *peerState) runHook(ctx *dist.Context, relName rel.Name) {
	if ps.eng.hook == nil {
		return
	}
	key := Qualify(relName, ps.id)
	if ps.hooked[key] {
		return
	}
	ps.hooked[key] = true

	hookMu.Lock()
	rules := ps.eng.hook(ps.id, relName)
	var local []PRule
	var remote []wire.Install
	src := ps.eng.prog.Store
	for _, r := range rules {
		if r.Head.Peer == ps.id {
			local = append(local, reintern(src, ps.store, r))
		} else {
			remote = append(remote, wire.Install{Rule: externRule(src, r)})
		}
	}
	hookMu.Unlock()

	for _, r := range local {
		ps.installRule(ctx, r)
	}
	for _, m := range remote {
		ctx.Send(dist.PeerID(m.Rule.Head.Peer), m)
	}
}

// externRule encodes a rule for the wire.
func externRule(s *term.Store, r PRule) wire.Rule {
	conv := func(a PAtom) wire.Atom {
		return wire.Atom{Rel: a.Rel, Peer: string(a.Peer), Args: s.ExternalizeTuple(a.Args)}
	}
	out := wire.Rule{Head: conv(r.Head)}
	for _, a := range r.Body {
		out.Body = append(out.Body, conv(a))
	}
	xs := make([]term.ID, len(r.Neqs))
	ys := make([]term.ID, len(r.Neqs))
	for i, n := range r.Neqs {
		xs[i], ys[i] = n.X, n.Y
	}
	out.NeqX = s.ExternalizeTuple(xs)
	out.NeqY = s.ExternalizeTuple(ys)
	return out
}

// internRule decodes a wire rule into the peer's private store.
func (ps *peerState) internRule(w wire.Rule) PRule {
	conv := func(a wire.Atom) PAtom {
		return PAtom{Rel: a.Rel, Peer: dist.PeerID(a.Peer), Args: ps.store.InternalizeTuple(a.Args)}
	}
	out := PRule{Head: conv(w.Head)}
	for _, a := range w.Body {
		out.Body = append(out.Body, conv(a))
	}
	xs := ps.store.InternalizeTuple(w.NeqX)
	ys := ps.store.InternalizeTuple(w.NeqY)
	for i := range xs {
		out.Neqs = append(out.Neqs, datalog.Neq{X: xs[i], Y: ys[i]})
	}
	return out
}

// installRule registers a rule that arrived at runtime. If the head's
// relation is already active, the rule's body relations are activated and
// the rule evaluated over current data; otherwise activation will pick it
// up when the relation is requested.
func (ps *peerState) installRule(ctx *dist.Context, r PRule) {
	ps.installed++
	if ps.eng.traceOn {
		ps.eng.tracer.Instant(string(ps.id), "install "+string(r.Head.Qualified()))
	}
	ri := len(ps.rules)
	ps.rules = append(ps.rules, r)
	cr := compileRule(r)
	ps.noteArity(cr.headQ, len(r.Head.Args))
	for ai, a := range r.Body {
		q := cr.body[ai].q
		ps.noteArity(q, len(a.Args))
		ps.bodyIdx[q] = append(ps.bodyIdx[q], ruleAt{rule: ri, atom: ai})
	}
	ps.crules = append(ps.crules, cr)
	if ps.active[cr.headQ] {
		for _, a := range r.Body {
			ps.activateBody(ctx, a)
		}
		ps.evalRule(ctx, ri, -1, nil)
	}
}
