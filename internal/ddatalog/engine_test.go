package ddatalog

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/datalog"
	"repro/internal/term"
)

// figure3 builds the paper's Figure 3 program: peers r (R, A), s (S, B),
// t (T, C) with
//
//	rule 1 @r: R@r(x,y) :- A@r(x,y)
//	rule 2 @r: R@r(x,y) :- S@s(x,z), T@t(z,y)
//	rule 3 @s: S@s(x,y) :- R@r(x,y), B@s(y,z)
//	rule 4 @t: T@t(x,y) :- C@t(x,y)
func figure3(a, b, c [][2]string) *Program {
	s := term.NewStore()
	p := NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(PRule{Head: At("R", "r", x, y), Body: []PAtom{At("A", "r", x, y)}})
	p.AddRule(PRule{Head: At("R", "r", x, y), Body: []PAtom{At("S", "s", x, z), At("T", "t", z, y)}})
	p.AddRule(PRule{Head: At("S", "s", x, y), Body: []PAtom{At("R", "r", x, y), At("B", "s", y, z)}})
	p.AddRule(PRule{Head: At("T", "t", x, y), Body: []PAtom{At("C", "t", x, y)}})
	add := func(name PAtom, rows [][2]string) {
		for _, r := range rows {
			p.AddFact(At(name.Rel, name.Peer, s.Constant(r[0]), s.Constant(r[1])))
		}
	}
	add(At("A", "r"), a)
	add(At("B", "s"), b)
	add(At("C", "t"), c)
	return p
}

func sortedRows(s *term.Store, rows [][]term.ID) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = s.String(t)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func TestFigure3DistributedMatchesLocal(t *testing.T) {
	a := [][2]string{{"1", "2"}, {"2", "3"}}
	b := [][2]string{{"2", "ok"}, {"3", "ok"}}
	c := [][2]string{{"2", "4"}, {"3", "5"}}
	p := figure3(a, b, c)
	s := p.Store
	q := At("R", "r", s.Constant("1"), s.Variable("Y"))

	res, _, err := Run(p, q, datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	local := figure3(a, b, c).Localize()
	db, _ := local.SemiNaive(datalog.Budget{})
	ls := local.Store
	want := sortedRows(ls, datalog.Answers(db, ls, datalog.Atom{Rel: "R@r", Args: []term.ID{ls.Constant("1"), ls.Variable("Y")}}))
	got := sortedRows(res.Store, res.Answers)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("distributed %v != local %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("expected answers")
	}
}

func TestFigure3CrossPeerRecursionReachesFixpoint(t *testing.T) {
	// R and S feed each other across peers r and s; the run must quiesce
	// with the full mutual closure.
	a := [][2]string{{"1", "2"}}
	b := [][2]string{{"2", "w"}, {"4", "w"}}
	c := [][2]string{{"2", "4"}, {"4", "6"}}
	p := figure3(a, b, c)
	s := p.Store
	q := At("R", "r", s.Constant("1"), s.Variable("Y"))
	res, eng, err := Run(p, q, datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// R(1,2) from A; S(1,2) via B(2,w); T(2,4) from C; R(1,4) via rule 2;
	// S(1,4) via B(4,w); T(4,6); R(1,6). No B(6,_): fixpoint.
	got := sortedRows(res.Store, res.Answers)
	if strings.Join(got, ";") != "2;4;6" {
		t.Fatalf("answers %v, want [2 4 6]", got)
	}
	// The fixpoint materialized R at peer r.
	rRel := eng.PeerDB("r").Lookup("R@r")
	if rRel == nil || rRel.Len() != 3 {
		t.Fatalf("R@r has %v tuples", rRel)
	}
}

func TestGlobalTranslationAgrees(t *testing.T) {
	a := [][2]string{{"1", "2"}}
	b := [][2]string{{"2", "w"}}
	c := [][2]string{{"2", "4"}}
	p := figure3(a, b, c)

	// Semantics of the distributed program = minimal model of the global
	// translation (Section 3, "Models and Semantics").
	g := p.Global()
	gdb, _ := g.SemiNaive(datalog.Budget{})
	gs := g.Store
	wantR := sortedRows(gs, datalog.Answers(gdb, gs, datalog.Atom{Rel: "R-g",
		Args: []term.ID{gs.Variable("X"), gs.Variable("Y"), gs.Constant("r")}}))

	l := p.Localize()
	ldb, _ := l.SemiNaive(datalog.Budget{})
	ls := l.Store
	gotR := sortedRows(ls, datalog.Answers(ldb, ls, datalog.Atom{Rel: "R@r",
		Args: []term.ID{ls.Variable("X"), ls.Variable("Y")}}))

	if strings.Join(wantR, ";") != strings.Join(gotR, ";") {
		t.Fatalf("global %v != localized %v", wantR, gotR)
	}
}

func TestActivationIsSelective(t *testing.T) {
	// A relation U@t that nothing reachable from the query uses must stay
	// cold: no replica of it anywhere, no activation message for it.
	a := [][2]string{{"1", "2"}}
	p := figure3(a, nil, nil)
	s := p.Store
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(PRule{Head: At("U", "t", x, y), Body: []PAtom{At("C", "t", x, y)}})
	p.AddFact(At("C", "t", s.Constant("seed"), s.Constant("seed2")))

	q := At("R", "r", s.Constant("1"), s.Variable("Y"))
	_, eng, err := Run(p, q, datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if u := eng.PeerDB("t").Lookup("U@t"); u != nil && u.Len() > 0 {
		t.Fatalf("U@t materialized %d tuples despite never being activated", u.Len())
	}
}

func TestBudgetAborts(t *testing.T) {
	// inf@p(f(X)) :- inf@p(X): diverges; the fact budget must abort.
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(PRule{Head: At("inf", "p", s.Compound("f", x)), Body: []PAtom{At("inf", "p", x)}})
	p.AddFact(At("inf", "p", s.Constant("z")))

	_, _, err := Run(p, At("inf", "p", s.Variable("X")), datalog.Budget{MaxFacts: 50}, 10*time.Second)
	if !errors.Is(err, datalog.ErrBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestDepthGadgetTerminates(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(PRule{Head: At("inf", "p", s.Compound("f", x)), Body: []PAtom{At("inf", "p", x)}})
	p.AddFact(At("inf", "p", s.Constant("z")))

	res, _, err := Run(p, At("inf", "p", s.Variable("X")), datalog.Budget{MaxTermDepth: 4}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 5 { // z, f(z), ..., f^4(z)
		t.Fatalf("got %d answers, want 5", len(res.Answers))
	}
}

func TestQualifiedNames(t *testing.T) {
	if Qualify("R", "p1") != "R@p1" {
		t.Fatal("Qualify wrong")
	}
	r, p, ok := SplitQualified("R@p1")
	if !ok || r != "R" || p != "p1" {
		t.Fatalf("SplitQualified = %v %v %v", r, p, ok)
	}
	if _, _, ok := SplitQualified("plain"); ok {
		t.Fatal("SplitQualified accepted unqualified name")
	}
}

func TestPeersEnumeration(t *testing.T) {
	p := figure3([][2]string{{"1", "2"}}, nil, nil)
	peers := p.Peers()
	if len(peers) != 3 {
		t.Fatalf("peers = %v", peers)
	}
}

func TestValidateRejectsUnsafeRule(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(PRule{Head: At("R", "p", x, y), Body: []PAtom{At("A", "p", x)}})
	if _, err := NewEngine(p, datalog.Budget{}); err == nil {
		t.Fatal("unsafe rule accepted")
	}
}

func TestQueryUnknownPeer(t *testing.T) {
	p := figure3(nil, nil, nil)
	e, err := NewEngine(p, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(At("R", "nowhere"), time.Second); err == nil {
		t.Fatal("query at unknown peer accepted")
	}
}

// Property: the distributed evaluation computes the same R@r answer set as
// the centralized localized program, over random Figure 3 instances.
// This is the naive-evaluation half of the Section 3.2 claim ("the result
// is exactly as in the centralized case").
func TestQuickDistributedEqualsLocal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"1", "2", "3", "4", "5"}
		pick := func() string { return names[rng.Intn(len(names))] }
		var a, b, c [][2]string
		for i := 0; i < 4+rng.Intn(5); i++ {
			a = append(a, [2]string{pick(), pick()})
			b = append(b, [2]string{pick(), "w"})
			c = append(c, [2]string{pick(), pick()})
		}
		src := pick()

		p := figure3(a, b, c)
		s := p.Store
		res, _, err := Run(p, At("R", "r", s.Constant(src), s.Variable("Y")), datalog.Budget{}, 10*time.Second)
		if err != nil {
			return false
		}

		local := figure3(a, b, c).Localize()
		db, _ := local.SemiNaive(datalog.Budget{})
		ls := local.Store
		want := sortedRows(ls, datalog.Answers(db, ls,
			datalog.Atom{Rel: "R@r", Args: []term.ID{ls.Constant(src), ls.Variable("Y")}}))
		got := sortedRows(res.Store, res.Answers)
		return strings.Join(got, ";") == strings.Join(want, ";")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistributedFigure3(b *testing.B) {
	var av, bv, cv [][2]string
	for i := 0; i < 20; i++ {
		av = append(av, [2]string{n2(i), n2(i + 1)})
		bv = append(bv, [2]string{n2(i + 1), "w"})
		cv = append(cv, [2]string{n2(i + 1), n2(i + 2)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := figure3(av, bv, cv)
		s := p.Store
		if _, _, err := Run(p, At("R", "r", s.Constant(n2(0)), s.Variable("Y")), datalog.Budget{}, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func n2(i int) string { return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
