package ddatalog

import (
	"errors"
	"sort"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/snapshot"
	"repro/internal/term"
)

// This file serializes engine state for the checkpoint/restore subsystem
// (internal/snapshot). The encoding preserves everything the evaluation's
// determinism depends on: per-peer term stores are replayed cell-by-cell
// so interned IDs survive verbatim, relations keep their insertion order,
// rules keep their installation order (bodyIdx is rebuilt by replaying
// them, exactly as construction and installRule built it), and the
// subscriber lists keep their registration order so fact fan-out after a
// restore sends the same messages in the same order as an uninterrupted
// run. Transient state (variable bindings, the per-run trace mirrors) is
// deliberately dropped and rebuilt fresh.

// ErrNotQuiescent is returned when a snapshot is requested from an engine
// whose budget has tripped — such state is not worth restoring.
var ErrNotQuiescent = errors.New("ddatalog: cannot snapshot an aborted engine")

// EncodePAtomSnapshot writes a located atom whose args are interned in
// the store the surrounding snapshot serializes.
func EncodePAtomSnapshot(w *snapshot.Writer, a PAtom) {
	w.String(string(a.Rel))
	w.String(string(a.Peer))
	w.Uvarint(uint64(len(a.Args)))
	for _, t := range a.Args {
		w.Uvarint(uint64(t))
	}
}

// DecodePAtomSnapshot reads an atom, validating every term ID against
// storeLen.
func DecodePAtomSnapshot(r *snapshot.Reader, storeLen int) PAtom {
	a := PAtom{Rel: rel.Name(r.String()), Peer: dist.PeerID(r.String())}
	n := r.Count(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := r.Uvarint()
		if id >= uint64(storeLen) {
			r.Failf("atom arg %d outside store of %d terms", id, storeLen)
			return a
		}
		a.Args = append(a.Args, term.ID(id))
	}
	return a
}

// EncodePRuleSnapshot writes a located rule.
func EncodePRuleSnapshot(w *snapshot.Writer, ru PRule) {
	EncodePAtomSnapshot(w, ru.Head)
	w.Uvarint(uint64(len(ru.Body)))
	for _, a := range ru.Body {
		EncodePAtomSnapshot(w, a)
	}
	w.Uvarint(uint64(len(ru.Neqs)))
	for _, n := range ru.Neqs {
		w.Uvarint(uint64(n.X))
		w.Uvarint(uint64(n.Y))
	}
}

// DecodePRuleSnapshot reads a rule, validating IDs against storeLen.
func DecodePRuleSnapshot(r *snapshot.Reader, storeLen int) PRule {
	ru := PRule{Head: DecodePAtomSnapshot(r, storeLen)}
	n := r.Count(3)
	for i := 0; i < n && r.Err() == nil; i++ {
		ru.Body = append(ru.Body, DecodePAtomSnapshot(r, storeLen))
	}
	n = r.Count(2)
	for i := 0; i < n && r.Err() == nil; i++ {
		x, y := r.Uvarint(), r.Uvarint()
		if x >= uint64(storeLen) || y >= uint64(storeLen) {
			r.Failf("neq term outside store of %d terms", storeLen)
			return ru
		}
		ru.Neqs = append(ru.Neqs, datalog.Neq{X: term.ID(x), Y: term.ID(y)})
	}
	return ru
}

// EncodeSnapshot writes the program's rules, facts and declared peers.
// The term store they refer into is serialized separately by the caller —
// programs share stores with sessions.
func (p *Program) EncodeSnapshot(w *snapshot.Writer) {
	w.Uvarint(uint64(len(p.Rules)))
	for _, ru := range p.Rules {
		EncodePRuleSnapshot(w, ru)
	}
	w.Uvarint(uint64(len(p.Facts)))
	for _, f := range p.Facts {
		EncodePAtomSnapshot(w, f)
	}
	w.Uvarint(uint64(len(p.declared)))
	for _, id := range p.declared {
		w.String(string(id))
	}
}

// DecodeProgramSnapshot rebuilds a program over store.
func DecodeProgramSnapshot(r *snapshot.Reader, store *term.Store) (*Program, error) {
	p := NewProgram(store)
	n := r.Count(4)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Rules = append(p.Rules, DecodePRuleSnapshot(r, store.Len()))
	}
	n = r.Count(3)
	for i := 0; i < n && r.Err() == nil; i++ {
		f := DecodePAtomSnapshot(r, store.Len())
		for _, t := range f.Args {
			if r.Err() == nil && !store.IsGround(t) {
				r.Failf("non-ground fact %s", string(f.Rel))
			}
		}
		p.Facts = append(p.Facts, f)
	}
	n = r.Count(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.declared = append(p.declared, dist.PeerID(r.String()))
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return p, nil
}

func sortedNames(m map[rel.Name]bool) []rel.Name {
	out := make([]rel.Name, 0, len(m))
	for n, v := range m {
		if v {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeSnapshot writes the engine's warm state into w: budget, counters,
// the collector, and every hosted peer's store, relations, rules and
// protocol maps. Queued-but-unprocessed deltas (pending) are included so
// a checkpoint between handler turns loses nothing. It refuses to encode
// an engine whose budget has tripped.
func (e *Engine) EncodeSnapshot(w *snapshot.Writer) error {
	if e.aborted.Load() {
		return ErrNotQuiescent
	}
	w.Uvarint(uint64(e.budget.MaxFacts))
	w.Uvarint(uint64(e.budget.MaxIters))
	w.Uvarint(uint64(e.budget.MaxTermDepth))
	w.Int(e.derived.Load())
	w.Uvarint(uint64(e.lastDerived))
	w.Uvarint(uint64(e.lastReplicated))
	w.Uvarint(uint64(e.lastInstalled))

	// All program peers, hosted here or not, in program order (the order
	// only matters for reconstruction determinism, so sort it).
	progPeers := make([]string, 0, len(e.progPeers))
	for id := range e.progPeers {
		progPeers = append(progPeers, string(id))
	}
	sort.Strings(progPeers)
	w.Uvarint(uint64(len(progPeers)))
	for _, id := range progPeers {
		w.String(id)
	}

	e.colStore.EncodeSnapshot(w)
	e.colDB.EncodeSnapshot(w)

	w.Uvarint(uint64(len(e.order)))
	for _, id := range e.order {
		ps := e.peers[id]
		w.String(string(id))
		ps.store.EncodeSnapshot(w)
		ps.db.EncodeSnapshot(w)
		w.Uvarint(uint64(len(ps.rules)))
		for _, ru := range ps.rules {
			EncodePRuleSnapshot(w, ru)
		}
		for _, set := range []map[rel.Name]bool{ps.active, ps.requested, ps.hooked} {
			names := sortedNames(set)
			w.Uvarint(uint64(len(names)))
			for _, n := range names {
				w.String(string(n))
			}
		}
		subNames := make([]rel.Name, 0, len(ps.subs))
		for n := range ps.subs {
			subNames = append(subNames, n)
		}
		sort.Slice(subNames, func(i, j int) bool { return subNames[i] < subNames[j] })
		w.Uvarint(uint64(len(subNames)))
		for _, n := range subNames {
			w.String(string(n))
			w.Uvarint(uint64(len(ps.subs[n])))
			for _, s := range ps.subs[n] { // registration order matters
				w.String(string(s))
			}
		}
		arNames := make([]rel.Name, 0, len(ps.arity))
		for n := range ps.arity {
			arNames = append(arNames, n)
		}
		sort.Slice(arNames, func(i, j int) bool { return arNames[i] < arNames[j] })
		w.Uvarint(uint64(len(arNames)))
		for _, n := range arNames {
			w.String(string(n))
			w.Uvarint(uint64(ps.arity[n]))
		}
		w.Uvarint(uint64(len(ps.pending)))
		for _, pf := range ps.pending {
			w.String(string(pf.q))
			w.Uvarint(uint64(len(pf.args)))
			for _, t := range pf.args {
				w.Uvarint(uint64(t))
			}
		}
		w.Uvarint(uint64(ps.derived))
		w.Uvarint(uint64(ps.replicated))
		w.Uvarint(uint64(ps.installed))
	}
	return nil
}

// DecodeEngineSnapshot rebuilds an engine from r. The restored engine has
// no tracer, hook or net factory installed — callers re-attach those, as
// they did after NewEngine. The program reference it evaluates against is
// a shell over store (only the store and the peer set survive; the
// original rule list lives on in the per-peer re-interned copies).
func DecodeEngineSnapshot(r *snapshot.Reader, store *term.Store) (*Engine, error) {
	e := &Engine{
		peers:     make(map[dist.PeerID]*peerState),
		progPeers: make(map[dist.PeerID]bool),
		tracer:    obs.Nop,
		lastByRel: make(map[rel.Name]int),
	}
	e.budget.MaxFacts = int(r.Uvarint())
	e.budget.MaxIters = int(r.Uvarint())
	e.budget.MaxTermDepth = int(r.Uvarint())
	e.derived.Store(r.Int())
	e.lastDerived = int(r.Uvarint())
	e.lastReplicated = int(r.Uvarint())
	e.lastInstalled = int(r.Uvarint())

	prog := NewProgram(store)
	n := r.Count(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := dist.PeerID(r.String())
		if e.progPeers[id] {
			r.Failf("duplicate program peer %q", id)
			break
		}
		e.progPeers[id] = true
		prog.AddPeer(id)
	}
	e.prog = prog

	var err error
	if e.colStore, err = term.DecodeStoreSnapshot(r); err != nil {
		return nil, err
	}
	if e.colDB, err = rel.DecodeDBSnapshot(r, e.colStore); err != nil {
		return nil, err
	}

	nPeers := r.Count(2)
	for i := 0; i < nPeers && r.Err() == nil; i++ {
		id := dist.PeerID(r.String())
		if r.Err() != nil {
			break
		}
		if _, dup := e.peers[id]; dup {
			r.Failf("duplicate hosted peer %q", id)
			break
		}
		ps := &peerState{
			eng:       e,
			id:        id,
			active:    make(map[rel.Name]bool),
			requested: make(map[rel.Name]bool),
			subs:      make(map[rel.Name][]dist.PeerID),
			bodyIdx:   make(map[rel.Name][]ruleAt),
			arity:     make(map[rel.Name]int),
			hooked:    make(map[rel.Name]bool),
			derivedBy: make(map[rel.Name]int),
		}
		if ps.store, err = term.DecodeStoreSnapshot(r); err != nil {
			return nil, err
		}
		if ps.db, err = rel.DecodeDBSnapshot(r, ps.store); err != nil {
			return nil, err
		}
		ps.bnd = term.NewBindings(ps.store)
		nRules := r.Count(3)
		for j := 0; j < nRules && r.Err() == nil; j++ {
			ps.rules = append(ps.rules, DecodePRuleSnapshot(r, ps.store.Len()))
		}
		for _, set := range []map[rel.Name]bool{ps.active, ps.requested, ps.hooked} {
			m := r.Count(1)
			for j := 0; j < m && r.Err() == nil; j++ {
				set[rel.Name(r.String())] = true
			}
		}
		nSubs := r.Count(2)
		for j := 0; j < nSubs && r.Err() == nil; j++ {
			name := rel.Name(r.String())
			m := r.Count(1)
			for k := 0; k < m && r.Err() == nil; k++ {
				ps.subs[name] = append(ps.subs[name], dist.PeerID(r.String()))
			}
		}
		nAr := r.Count(2)
		for j := 0; j < nAr && r.Err() == nil; j++ {
			name := rel.Name(r.String())
			ar := r.Uvarint()
			if r.Err() == nil && ar >= 64 {
				r.Failf("arity %d for %s", ar, name)
				break
			}
			ps.arity[name] = int(ar)
		}
		nPend := r.Count(2)
		for j := 0; j < nPend && r.Err() == nil; j++ {
			pf := pendingFact{q: rel.Name(r.String())}
			m := r.Count(1)
			for k := 0; k < m && r.Err() == nil; k++ {
				id := r.Uvarint()
				if id >= uint64(ps.store.Len()) {
					r.Failf("pending fact term outside store")
					break
				}
				pf.args = append(pf.args, term.ID(id))
			}
			ps.pending = append(ps.pending, pf)
		}
		ps.derived = int(r.Uvarint())
		ps.replicated = int(r.Uvarint())
		ps.installed = int(r.Uvarint())
		if r.Err() != nil {
			break
		}

		// Rebuild the derived indices by replaying the rules in order —
		// the same appends construction and installRule performed — and
		// cross-check arities without going through noteArity (which
		// panics on inconsistency; corrupt input must error instead).
		for ri, ru := range ps.rules {
			cr := compileRule(ru)
			if bad := ps.checkArity(r, cr.headQ, len(ru.Head.Args)); bad {
				break
			}
			for ai, a := range ru.Body {
				q := cr.body[ai].q
				if bad := ps.checkArity(r, q, len(a.Args)); bad {
					break
				}
				ps.bodyIdx[q] = append(ps.bodyIdx[q], ruleAt{rule: ri, atom: ai})
			}
			ps.crules = append(ps.crules, cr)
		}
		for _, name := range ps.db.Names() {
			if want, ok := ps.arity[name]; ok && ps.db.Lookup(name).Arity() != want {
				r.Failf("relation %s stored with arity %d, declared %d", name, ps.db.Lookup(name).Arity(), want)
			}
		}
		for _, pf := range ps.pending {
			if want, ok := ps.arity[pf.q]; ok && len(pf.args) != want {
				r.Failf("pending fact arity mismatch for %s", pf.q)
			}
		}
		if r.Err() != nil {
			break
		}
		e.peers[id] = ps
		e.order = append(e.order, id)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return e, nil
}

// checkArity validates one atom's arity against the restored arity map,
// reporting corruption through the reader instead of panicking.
func (ps *peerState) checkArity(r *snapshot.Reader, q rel.Name, n int) bool {
	if want, ok := ps.arity[q]; !ok || want != n {
		r.Failf("rule uses %s with arity %d, snapshot declares %v", q, n, ps.arity[q])
		return true
	}
	return false
}
