package ddatalog

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/term"
)

func TestPAtomAndRuleString(t *testing.T) {
	s := term.NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	r := PRule{
		Head: At("R", "r", x, y),
		Body: []PAtom{At("S", "s", x, s.Compound("f", y))},
		Neqs: []datalog.Neq{{X: x, Y: y}},
	}
	want := "R@r(X,Y) :- S@s(X,f(Y)), X != Y."
	if got := r.String(s); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	fact := PRule{Head: At("A", "p", s.Constant("c"))}
	if got := fact.String(s); got != "A@p(c)." {
		t.Fatalf("fact String = %q", got)
	}
}

func TestLocalizeKeepsQualifiedNames(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(PRule{Head: At("R", "r", x), Body: []PAtom{At("A", "q", x)}})
	p.AddFact(At("A", "q", s.Constant("c")))
	local := p.Localize()
	if err := local.Validate(); err != nil {
		t.Fatal(err)
	}
	if local.Rules[0].Head.Rel != "R@r" || local.Rules[0].Body[0].Rel != "A@q" {
		t.Fatalf("localized rule: %s", local.Rules[0].String(s))
	}
	if local.Facts[0].Rel != "A@q" {
		t.Fatalf("localized fact: %v", local.Facts[0].Rel)
	}
}

func TestGlobalAddsPeerColumn(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(PRule{Head: At("R", "r", x), Body: []PAtom{At("A", "q", x)}})
	p.AddFact(At("A", "q", s.Constant("c")))
	g := p.Global()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	head := g.Rules[0].Head
	if head.Rel != "R-g" || len(head.Args) != 2 || s.String(head.Args[1]) != "r" {
		t.Fatalf("global head: %s", head.String(s))
	}
	if len(g.Facts[0].Args) != 2 || s.String(g.Facts[0].Args[1]) != "q" {
		t.Fatalf("global fact: %s", g.Facts[0].String(s))
	}
	// Minimal model: R-g(c, r) derivable.
	db, _ := g.SemiNaive(datalog.Budget{})
	if !strings.Contains(db.Dump(), "R-g(c,r)") {
		t.Fatalf("global model missing R-g(c,r):\n%s", db.Dump())
	}
}

func TestAddFactRejectsNonGround(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-ground fact")
		}
	}()
	p.AddFact(At("A", "p", s.Variable("X")))
}

func TestEngineRunTwiceIsIndependent(t *testing.T) {
	// Two engines over the same program must not share state.
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(PRule{Head: At("R", "p", x), Body: []PAtom{At("A", "p", x)}})
	p.AddFact(At("A", "p", s.Constant("c")))
	q := At("R", "p", s.Variable("Y"))

	r1, _, err := Run(p, q, datalog.Budget{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(p, q, datalog.Budget{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Answers) != 1 || len(r2.Answers) != 1 {
		t.Fatalf("answers: %d, %d", len(r1.Answers), len(r2.Answers))
	}
	if r1.Stats.Derived != r2.Stats.Derived {
		t.Fatalf("runs not independent: %d vs %d", r1.Stats.Derived, r2.Stats.Derived)
	}
}
