// Package ddatalog implements dDatalog (Section 3): Datalog whose atoms
// R@p(t1,...,tn) are located at peers, with rules hosted at the peer of
// their head, plus the naive distributed evaluation of Section 3.2 — peers
// activate each other's relations, stream tuples asynchronously, and the
// run ends when the network quiesces.
//
// The optimized distributed evaluation (dQSQ) lives in package dqsq and
// reuses this package's program representation and engine.
package ddatalog

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
)

// PAtom is a located atom R@p(args).
type PAtom struct {
	Rel  rel.Name
	Peer dist.PeerID
	Args []term.ID
}

// At is a terse located-atom constructor.
func At(r rel.Name, p dist.PeerID, args ...term.ID) PAtom {
	return PAtom{Rel: r, Peer: p, Args: args}
}

// Qualified returns the globally unique relation name "R@p".
func (a PAtom) Qualified() rel.Name {
	return Qualify(a.Rel, a.Peer)
}

// Qualify composes a located relation name.
func Qualify(r rel.Name, p dist.PeerID) rel.Name {
	return r + "@" + rel.Name(p)
}

// SplitQualified splits "R@p" back into relation and peer. The second
// return is false if the name is unqualified.
func SplitQualified(q rel.Name) (rel.Name, dist.PeerID, bool) {
	i := strings.LastIndex(string(q), "@")
	if i < 0 {
		return q, "", false
	}
	return q[:i], dist.PeerID(q[i+1:]), true
}

// String renders the atom as R@p(args).
func (a PAtom) String(s *term.Store) string {
	var b strings.Builder
	b.WriteString(string(a.Rel))
	b.WriteByte('@')
	b.WriteString(string(a.Peer))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String(t))
	}
	b.WriteByte(')')
	return b.String()
}

// PRule is a located rule; it is hosted at Head.Peer ("the rules at site p
// are the rules where p is the site of the head").
type PRule struct {
	Head PAtom
	Body []PAtom
	Neqs []datalog.Neq
}

// String renders the rule.
func (r PRule) String(s *term.Store) string {
	var b strings.Builder
	b.WriteString(r.Head.String(s))
	if len(r.Body) > 0 || len(r.Neqs) > 0 {
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String(s))
		}
		for i, n := range r.Neqs {
			if i > 0 || len(r.Body) > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String(n.X) + " != " + s.String(n.Y))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Program is a distributed Datalog program over a shared construction-time
// term store. At evaluation time each peer re-interns what it needs into a
// private store; nothing is shared across peer goroutines.
type Program struct {
	Store *term.Store
	Rules []PRule
	Facts []PAtom
	// declared lists peers that must exist even when no rule or fact
	// mentions them yet — used by programs whose rules arrive at runtime
	// (online dQSQ).
	declared []dist.PeerID
}

// AddPeer declares a peer explicitly.
func (p *Program) AddPeer(id dist.PeerID) {
	p.declared = append(p.declared, id)
}

// NewProgram returns an empty program over store.
func NewProgram(store *term.Store) *Program {
	return &Program{Store: store}
}

// AddRule appends a rule.
func (p *Program) AddRule(r PRule) { p.Rules = append(p.Rules, r) }

// AddFact appends a ground located fact.
func (p *Program) AddFact(a PAtom) {
	for _, t := range a.Args {
		if !p.Store.IsGround(t) {
			panic(fmt.Sprintf("ddatalog: non-ground fact %s", a.String(p.Store)))
		}
	}
	p.Facts = append(p.Facts, a)
}

// Peers returns every peer mentioned in the program, in first-mention order.
func (p *Program) Peers() []dist.PeerID {
	seen := map[dist.PeerID]bool{}
	var out []dist.PeerID
	add := func(id dist.PeerID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range p.declared {
		add(id)
	}
	for _, f := range p.Facts {
		add(f.Peer)
	}
	for _, r := range p.Rules {
		add(r.Head.Peer)
		for _, a := range r.Body {
			add(a.Peer)
		}
	}
	return out
}

// IDB returns the set of qualified relation names defined by rule heads.
func (p *Program) IDB() map[rel.Name]bool {
	out := make(map[rel.Name]bool)
	for _, r := range p.Rules {
		out[r.Head.Qualified()] = true
	}
	return out
}

// Localize produces the centralized version of the program: peer names are
// erased from atoms and every relation keeps its qualified name, which
// makes relation names of distinct peers distinct — the w.l.o.g. assumption
// of Theorem 1. The returned program shares the term store.
func (p *Program) Localize() *datalog.Program {
	out := datalog.NewProgram(p.Store)
	for _, f := range p.Facts {
		out.AddFact(datalog.Atom{Rel: f.Qualified(), Args: f.Args})
	}
	for _, r := range p.Rules {
		lr := datalog.Rule{
			Head: datalog.Atom{Rel: r.Head.Qualified(), Args: r.Head.Args},
			Neqs: append([]datalog.Neq(nil), r.Neqs...),
		}
		for _, a := range r.Body {
			lr.Body = append(lr.Body, datalog.Atom{Rel: a.Qualified(), Args: a.Args})
		}
		out.AddRule(lr)
	}
	return out
}

// Global produces the canonical global translation of Section 3 ("Models
// and Semantics"): each n-ary R@p atom becomes an (n+1)-ary Rg atom with
// the peer name as the extra, final column. Its minimal model defines the
// semantics of the distributed program.
func (p *Program) Global() *datalog.Program {
	out := datalog.NewProgram(p.Store)
	tr := func(a PAtom) datalog.Atom {
		args := make([]term.ID, 0, len(a.Args)+1)
		args = append(args, a.Args...)
		args = append(args, p.Store.Constant(string(a.Peer)))
		return datalog.Atom{Rel: a.Rel + "-g", Args: args}
	}
	for _, f := range p.Facts {
		out.AddFact(tr(f))
	}
	for _, r := range p.Rules {
		gr := datalog.Rule{Head: tr(r.Head), Neqs: append([]datalog.Neq(nil), r.Neqs...)}
		for _, a := range r.Body {
			gr.Body = append(gr.Body, tr(a))
		}
		out.AddRule(gr)
	}
	return out
}

// Validate checks the same conditions as datalog.Program.Validate on the
// localized form.
func (p *Program) Validate() error {
	return p.Localize().Validate()
}
