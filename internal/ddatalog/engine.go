package ddatalog

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/term"
	"repro/internal/wire"
)

// The messages exchanged by the naive distributed evaluation (Section
// 3.2) are the wire package's payload types — wire.Activate (a peer
// activates a remote relation and thereby subscribes to its tuple
// stream), wire.Facts (the owner streams every current and future tuple
// back), wire.Inject (an incremental base-fact append), and wire.Install
// (runtime rule installation) — so the same evaluation runs unchanged
// whether its peers share a process or are spread across peerd nodes.

// Stats summarizes a distributed run.
type Stats struct {
	Net        dist.Stats
	Derived    int // tuples materialized at their owner peer
	Replicated int // remote tuples copied into subscriber replicas
	Truncated  bool
	Reason     string
}

// Engine evaluates a distributed program naively. Create with NewEngine,
// evaluate with Run, then inspect per-peer databases with PeerDB.
//
// An engine is re-entrant: Run (and RunDelta, which also injects new
// facts and rules) may be called repeatedly, each call evaluating on a
// fresh network while keeping every peer's materialized state warm. This
// is the substrate for incremental diagnosis sessions: round k+1 only
// derives what round k did not already materialize. Calls must not
// overlap; after a run fails (budget, timeout), the warm state is safe to
// read but further runs are best-effort.
type Engine struct {
	prog      *Program
	budget    datalog.Budget
	peers     map[dist.PeerID]*peerState
	order     []dist.PeerID
	progPeers map[dist.PeerID]bool // all program peers, hosted here or not
	// netFactory builds the per-round network; nil means dist.NewNetwork
	// (single process). A cluster driver installs its round constructor.
	netFactory func() dist.Net
	workers    int          // worker-pool width for default networks; 0 = GOMAXPROCS
	derived    atomic.Int64 // global fact counter for the budget
	aborted    atomic.Bool  // set when the budget trips; stops in-handler work
	hook       ActivationHook
	stats      Stats
	tracer     obs.Tracer // never nil; obs.Nop by default
	traceOn    bool       // tracer.Enabled() snapshot, set per run
	// Cumulative figures after the previous run, so each RunDelta can
	// emit the run's own delta as counter events.
	lastDerived    int
	lastReplicated int
	lastInstalled  int
	lastByRel      map[rel.Name]int
	// The collector persists across runs so that answers accumulated in
	// earlier rounds remain extractable in later ones.
	colStore *term.Store
	colDB    *rel.DB
}

// peerState is the private state of one peer; only its own goroutine
// touches it after Run starts.
type peerState struct {
	eng        *Engine
	id         dist.PeerID
	store      *term.Store
	db         *rel.DB
	bnd        *term.Bindings
	rules      []PRule           // hosted rules, re-interned into store
	crules     []crule           // compiled forms, parallel to rules
	active     map[rel.Name]bool // qualified local relations activated
	requested  map[rel.Name]bool // qualified remote relations already activated
	subs       map[rel.Name][]dist.PeerID
	bodyIdx    map[rel.Name][]ruleAt // qualified relation -> occurrences in hosted rule bodies
	arity      map[rel.Name]int      // qualified relation -> arity
	hooked     map[rel.Name]bool     // relations whose activation hook already ran
	pending    []pendingFact         // derived facts awaiting their delta joins
	derived    int
	replicated int
	installed  int              // rules installed at runtime (hook or wire.Install)
	derivedBy  map[rel.Name]int // facts per head relation; tracked only while tracing
	// Join scratch, reused across every evaluation at this peer: one
	// key/resolved pair per body depth (joinFrom at depth j owns entry j;
	// deeper recursion uses higher entries) and one head-argument buffer
	// (emit is not re-entrant — derivations queue in pending instead of
	// recursing). Keeping these on the peer makes a delta join allocate
	// nothing per probed tuple.
	keybuf  [][]term.ID
	resbuf  [][]term.ID
	headbuf []term.ID
}

// crule caches the derived, hot parts of a rule so the join inner loop
// never rebuilds a qualified name ("rel@peer" concatenation) or re-hashes a
// relation name: the qualified head and body names are computed once at
// install time, and the relation pointers are filled lazily on first use
// (DB.Rel never replaces a relation, so a cached pointer stays valid).
type crule struct {
	headQ   rel.Name
	headRel *rel.Relation
	body    []catom
}

type catom struct {
	q rel.Name
	r *rel.Relation
}

// compileRule precomputes a rule's qualified relation names.
func compileRule(r PRule) crule {
	cr := crule{headQ: r.Head.Qualified(), body: make([]catom, len(r.Body))}
	for i, a := range r.Body {
		cr.body[i] = catom{q: a.Qualified()}
	}
	return cr
}

// scratch returns entry j of a per-depth buffer list, sized to n IDs.
func scratch(bufs *[][]term.ID, j, n int) []term.ID {
	for len(*bufs) <= j {
		*bufs = append(*bufs, nil)
	}
	b := (*bufs)[j]
	if cap(b) < n {
		b = make([]term.ID, n)
		(*bufs)[j] = b
	}
	return b[:n]
}

// pendingFact is a newly materialized fact whose delta joins have not run
// yet. Derivations are queued rather than evaluated recursively so that a
// rule never re-enters the join machinery (and its variable bindings)
// while a previous instantiation is still on the stack.
type pendingFact struct {
	q    rel.Name
	args []term.ID
}

type ruleAt struct {
	rule int // index into peerState.rules
	atom int // body position
}

// NewEngine prepares a naive distributed evaluation of prog under budget,
// hosting every peer of the program.
func NewEngine(prog *Program, budget datalog.Budget) (*Engine, error) {
	return NewEngineHosted(prog, budget, nil)
}

// NewEngineHosted prepares an evaluation that hosts only the given subset
// of the program's peers — one member node of a multi-process cluster.
// Every node of the cluster builds the engine from the identical program
// (the program construction is deterministic, so shipping the system
// description and rebuilding locally yields the same rules everywhere)
// and hosts a disjoint subset; messages between peers on different nodes
// travel through the cluster's routed network. nil hosted means all
// peers. In a cluster the fact budget is enforced per node: each node
// aborts when its own share of materialized facts exceeds MaxFacts, and
// the abort propagates cluster-wide through the coordinator.
func NewEngineHosted(prog *Program, budget datalog.Budget, hosted []dist.PeerID) (*Engine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if budget.MaxFacts == 0 {
		budget.MaxFacts = datalog.DefaultBudget.MaxFacts
	}
	e := &Engine{
		prog:      prog,
		budget:    budget,
		peers:     make(map[dist.PeerID]*peerState),
		progPeers: make(map[dist.PeerID]bool),
		tracer:    obs.Nop,
		lastByRel: make(map[rel.Name]int),
	}
	e.colStore = term.NewStore()
	e.colDB = rel.NewDB(e.colStore)
	hostHere := func(id dist.PeerID) bool { return true }
	if hosted != nil {
		set := make(map[dist.PeerID]bool, len(hosted))
		for _, id := range hosted {
			set[id] = true
		}
		hostHere = func(id dist.PeerID) bool { return set[id] }
	}
	for _, id := range prog.Peers() {
		e.progPeers[id] = true
		if !hostHere(id) {
			continue
		}
		ps := &peerState{
			eng:       e,
			id:        id,
			store:     term.NewStore(),
			active:    make(map[rel.Name]bool),
			requested: make(map[rel.Name]bool),
			subs:      make(map[rel.Name][]dist.PeerID),
			bodyIdx:   make(map[rel.Name][]ruleAt),
			arity:     make(map[rel.Name]int),
			hooked:    make(map[rel.Name]bool),
			derivedBy: make(map[rel.Name]int),
		}
		ps.db = rel.NewDB(ps.store)
		ps.bnd = term.NewBindings(ps.store)
		e.peers[id] = ps
		e.order = append(e.order, id)
	}

	// Ship rules and facts to their hosts, re-interning terms into each
	// peer's private store (the wire conversion the real system would do).
	// Rules and facts of peers hosted elsewhere are simply skipped: their
	// node does the same and keeps its own share.
	src := prog.Store
	for _, r := range prog.Rules {
		ps := e.peers[r.Head.Peer]
		if ps == nil {
			continue
		}
		ps.rules = append(ps.rules, reintern(src, ps.store, r))
	}
	for i := range e.order {
		ps := e.peers[e.order[i]]
		for ri, r := range ps.rules {
			cr := compileRule(r)
			ps.noteArity(cr.headQ, len(r.Head.Args))
			for ai, a := range r.Body {
				q := cr.body[ai].q
				ps.noteArity(q, len(a.Args))
				ps.bodyIdx[q] = append(ps.bodyIdx[q], ruleAt{rule: ri, atom: ai})
			}
			ps.crules = append(ps.crules, cr)
		}
	}
	for _, f := range prog.Facts {
		ps := e.peers[f.Peer]
		if ps == nil {
			continue
		}
		args := ps.store.InternalizeTuple(src.ExternalizeTuple(f.Args))
		q := f.Qualified()
		ps.noteArity(q, len(args))
		ps.rel(q, len(args)).Insert(args)
	}
	return e, nil
}

func reintern(src, dst *term.Store, r PRule) PRule {
	conv := func(a PAtom) PAtom {
		return PAtom{Rel: a.Rel, Peer: a.Peer, Args: dst.InternalizeTuple(src.ExternalizeTuple(a.Args))}
	}
	out := PRule{Head: conv(r.Head)}
	for _, a := range r.Body {
		out.Body = append(out.Body, conv(a))
	}
	for _, n := range r.Neqs {
		out.Neqs = append(out.Neqs, datalog.Neq{
			X: dst.Internalize(src.Externalize(n.X)),
			Y: dst.Internalize(src.Externalize(n.Y)),
		})
	}
	return out
}

func (ps *peerState) noteArity(q rel.Name, n int) {
	if prev, ok := ps.arity[q]; ok && prev != n {
		panic(fmt.Sprintf("ddatalog: relation %s used with arities %d and %d", q, prev, n))
	}
	ps.arity[q] = n
}

func (ps *peerState) rel(q rel.Name, arity int) *rel.Relation {
	return ps.db.Rel(q, arity)
}

// handle processes one network message for the peer.
func (ps *peerState) handle(ctx *dist.Context, m dist.Message) {
	switch msg := m.Payload.(type) {
	case wire.Activate:
		ps.activateLocal(ctx, msg.Rel, m.From)
	case wire.Install:
		ps.installRule(ctx, ps.internRule(msg.Rule))
	case wire.Facts:
		tuple := ps.store.InternalizeTuple(msg.Tuple)
		ps.noteArity(msg.Qual, msg.Arity)
		relation := ps.rel(msg.Qual, msg.Arity)
		if pos, added := relation.InsertPos(tuple); added {
			ps.replicated++
			ps.pending = append(ps.pending, pendingFact{q: msg.Qual, args: relation.At(pos)})
		}
	case wire.Inject:
		// A base fact arriving at its owner mid-session (an incremental
		// append): derive it like a rule head so it reaches subscribers and
		// triggers delta joins.
		tuple := ps.store.InternalizeTuple(msg.Tuple)
		q := Qualify(msg.Rel, ps.id)
		ps.noteArity(q, len(tuple))
		ps.deriveFact(ctx, q, tuple)
	default:
		panic(fmt.Sprintf("ddatalog: unknown message %T", m.Payload))
	}
	ps.drain(ctx)
}

// drain runs the delta joins of every pending fact until none remain.
// On a divergent program this loop is where facts pile up, so it is also
// where a budget abort must take effect: network aborts stop message
// delivery but cannot interrupt a handler.
func (ps *peerState) drain(ctx *dist.Context) {
	if ps.eng.traceOn && len(ps.pending) > 0 {
		ps.eng.tracer.Gauge(string(ps.id), "ddatalog_pending_delta", int64(len(ps.pending)))
	}
	for len(ps.pending) > 0 && !ps.eng.aborted.Load() && !ctx.Stopped() {
		f := ps.pending[0]
		ps.pending = ps.pending[1:]
		ps.deltaJoin(ctx, f.q, f.args)
	}
}

// activateLocal activates relation r (owned by this peer) and subscribes
// subscriber (unless it is the pseudo-peer marker ""). Activation recurses
// into the body relations of every defining rule — remote ones via
// wire.Activate, local ones directly.
func (ps *peerState) activateLocal(ctx *dist.Context, r rel.Name, subscriber dist.PeerID) {
	q := Qualify(r, ps.id)
	if subscriber != "" && subscriber != ps.id {
		already := false
		for _, s := range ps.subs[q] {
			if s == subscriber {
				already = true
				break
			}
		}
		if !already {
			ps.subs[q] = append(ps.subs[q], subscriber)
			// Stream everything known so far.
			if relation := ps.db.Lookup(q); relation != nil {
				relation.Scan(0, nil, 0, relation.Len(), func(_ int, tuple []term.ID) bool {
					ctx.Send(subscriber, wire.Facts{Qual: q, Arity: relation.Arity(), Tuple: ps.store.ExternalizeTuple(tuple)})
					return true
				})
			}
		}
	}
	if ps.active[q] {
		return
	}
	ps.active[q] = true
	ps.runHook(ctx, r)
	if ar, ok := ps.arity[q]; ok {
		ps.rel(q, ar) // ensure the relation exists even if empty
	}
	for ri := range ps.rules {
		if ps.rules[ri].Head.Rel != r {
			continue
		}
		for _, a := range ps.rules[ri].Body {
			ps.activateBody(ctx, a)
		}
		// Initial full evaluation of the newly activated rule.
		ps.evalRule(ctx, ri, -1, nil)
	}
}

func (ps *peerState) activateBody(ctx *dist.Context, a PAtom) {
	if a.Peer == ps.id {
		ps.activateLocal(ctx, a.Rel, "")
		return
	}
	q := a.Qualified()
	if !ps.requested[q] {
		ps.requested[q] = true
		ctx.Send(a.Peer, wire.Activate{Rel: a.Rel})
	}
}

// deltaJoin re-evaluates every hosted rule that uses q in its body, pinning
// the occurrence to the new tuple.
func (ps *peerState) deltaJoin(ctx *dist.Context, q rel.Name, tuple []term.ID) {
	for _, occ := range ps.bodyIdx[q] {
		if !ps.active[ps.crules[occ.rule].headQ] {
			continue
		}
		ps.evalRule(ctx, occ.rule, occ.atom, tuple)
	}
}

// evalRule joins the body of rule ri left to right. If pin >= 0, body atom
// `pin` is matched only against pinned (the delta tuple); other atoms scan
// their full local replicas.
func (ps *peerState) evalRule(ctx *dist.Context, ri, pin int, pinned []term.ID) {
	ps.joinFrom(ctx, ri, 0, pin, pinned)
}

func (ps *peerState) joinFrom(ctx *dist.Context, ri, j, pin int, pinned []term.ID) {
	r := &ps.rules[ri]
	if j == len(r.Body) {
		ps.emit(ctx, ri)
		return
	}
	a := &r.Body[j]
	if j == pin {
		mark := ps.bnd.Mark()
		ok := true
		for i, pat := range a.Args {
			if !ps.bnd.Match(ps.bnd.Resolve(pat), pinned[i]) {
				ok = false
				break
			}
		}
		if ok {
			ps.joinFrom(ctx, ri, j+1, pin, pinned)
		}
		ps.bnd.Undo(mark)
		return
	}
	ca := &ps.crules[ri].body[j]
	relation := ca.r
	if relation == nil {
		if relation = ps.db.Lookup(ca.q); relation == nil {
			return
		}
		ca.r = relation
	}
	var mask uint64
	key := scratch(&ps.keybuf, j, len(a.Args))
	resolved := scratch(&ps.resbuf, j, len(a.Args))
	for i, t := range a.Args {
		rt := ps.bnd.Resolve(t)
		resolved[i] = rt
		if ps.store.IsGround(rt) {
			mask |= 1 << uint(i)
			key[i] = rt
		}
	}
	relation.Scan(mask, key, 0, relation.Len(), func(_ int, tuple []term.ID) bool {
		mark := ps.bnd.Mark()
		ok := true
		for i, pat := range resolved {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if !ps.bnd.Match(pat, tuple[i]) {
				ok = false
				break
			}
		}
		if ok {
			ps.joinFrom(ctx, ri, j+1, pin, pinned)
		}
		ps.bnd.Undo(mark)
		return true
	})
}

// emit materializes the head of a satisfied rule body and propagates it.
// The head arguments are resolved into the peer's reusable buffer;
// deriveFact copies them into the relation's arena before anything retains
// them.
func (ps *peerState) emit(ctx *dist.Context, ri int) {
	r := &ps.rules[ri]
	for _, n := range r.Neqs {
		if ps.bnd.Resolve(n.X) == ps.bnd.Resolve(n.Y) {
			return
		}
	}
	n := len(r.Head.Args)
	if cap(ps.headbuf) < n {
		ps.headbuf = make([]term.ID, n)
	}
	args := ps.headbuf[:n]
	for i, t := range r.Head.Args {
		rt := ps.bnd.Resolve(t)
		if !ps.store.IsGround(rt) {
			panic(fmt.Sprintf("ddatalog: derived non-ground fact from %s", r.String(ps.store)))
		}
		if ps.eng.budget.MaxTermDepth > 0 && ps.store.Depth(rt) > ps.eng.budget.MaxTermDepth {
			return // depth gadget (Section 4.4): silently dropped
		}
		args[i] = rt
	}
	cr := &ps.crules[ri]
	relation := cr.headRel
	if relation == nil {
		relation = ps.rel(cr.headQ, n)
		cr.headRel = relation
	}
	ps.deriveInto(ctx, relation, cr.headQ, args)
}

// deriveFact inserts a locally owned fact, forwards it to subscribers and
// triggers local delta joins. Also used for the initial query seeding.
func (ps *peerState) deriveFact(ctx *dist.Context, q rel.Name, args []term.ID) {
	ps.deriveInto(ctx, ps.rel(q, len(args)), q, args)
}

// deriveInto is deriveFact with the target relation already resolved. The
// args slice may be a reusable buffer: every retained reference (pending
// queue, subscriber streams) uses the relation's own arena view instead.
func (ps *peerState) deriveInto(ctx *dist.Context, relation *rel.Relation, q rel.Name, args []term.ID) {
	pos, added := relation.InsertPos(args)
	if !added {
		return
	}
	stored := relation.At(pos)
	ps.derived++
	if ps.eng.traceOn {
		ps.derivedBy[q]++
	}
	if int(ps.eng.derived.Add(1)) > ps.eng.budget.MaxFacts {
		ps.eng.aborted.Store(true)
		ctx.Abort(fmt.Errorf("%w: more than %d facts", datalog.ErrBudget, ps.eng.budget.MaxFacts))
		return
	}
	for _, sub := range ps.subs[q] {
		ctx.Send(sub, wire.Facts{Qual: q, Arity: len(stored), Tuple: ps.store.ExternalizeTuple(stored)})
	}
	ps.pending = append(ps.pending, pendingFact{q: q, args: stored})
}

// collectorID is the synthetic peer that receives the query's answers.
const collectorID dist.PeerID = "§collector"

// Result of a distributed run.
type Result struct {
	// Answers are the query-variable bindings, deduplicated, in
	// first-occurrence order of the query's variables, interned in Store.
	Answers [][]term.ID
	// Store interns the answers (the collector's private store).
	Store *term.Store
	Stats Stats
}

// SetTracer installs the engine's tracer (obs.Nop when t is nil). It is
// threaded into each run's network, so every RunDelta gets per-peer spans
// and message-hop flow events for free; the engine adds its own counters
// (facts derived, facts replicated, rules installed, per-head-relation
// detail) at the end of each run. Must not be called during a run.
func (e *Engine) SetTracer(t obs.Tracer) {
	e.tracer = obs.Or(t)
}

// SetNetFactory installs the constructor for each run's network. A
// cluster driver uses this to evaluate over routed member nodes instead
// of the default in-process dist.NewNetwork. Must not be called during a
// run.
func (e *Engine) SetNetFactory(f func() dist.Net) {
	e.netFactory = f
}

// SetParallelism fixes the worker-pool width of the default in-process
// networks built by each run: n peer handlers may execute concurrently
// (per-peer delivery order is still per-sender FIFO, and the evaluation is
// confluent, so results match the sequential engine exactly). n <= 0
// restores the default, a pool sized by GOMAXPROCS; n == 1 forces fully
// sequential evaluation. Ignored when a custom net factory is installed.
// Must not be called during a run.
func (e *Engine) SetParallelism(n int) {
	e.workers = n
}

// RunMember participates in one evaluation round as a cluster member: it
// registers the hosted peers on the member-side network and blocks until
// the driver stops the round (or the timeout trips). The driver seeds the
// round; members only react. Returns the node's local network stats.
func (e *Engine) RunMember(net dist.Net, timeout time.Duration) (dist.Stats, error) {
	e.traceOn = e.tracer.Enabled()
	net.SetTracer(e.tracer)
	for _, id := range e.order {
		ps := e.peers[id]
		net.AddPeer(id, ps.handle)
	}
	stats, err := net.Run(nil, timeout)
	if e.traceOn {
		// Emit this round's materialization as deltas, mirroring the
		// driver's finishRun, so a member's /metrics carries the same
		// cumulative engine series as the driver's.
		derived, replicated := e.Totals()
		if d := derived - e.lastDerived; d > 0 {
			e.tracer.Counter("ddatalog", "ddatalog_facts_derived_total", int64(d))
		}
		if d := replicated - e.lastReplicated; d > 0 {
			e.tracer.Counter("ddatalog", "ddatalog_facts_replicated_total", int64(d))
		}
		e.lastDerived, e.lastReplicated = derived, replicated
	}
	return stats, err
}

// Totals reports the cumulative materialization counters of the hosted
// peers — a member node's contribution to the cluster-wide Derived and
// Replicated stats. Must not be called during a run.
func (e *Engine) Totals() (derived, replicated int) {
	for _, id := range e.order {
		ps := e.peers[id]
		derived += ps.derived
		replicated += ps.replicated
	}
	return derived, replicated
}

// finishRun emits the run's engine counters (as per-run deltas, so a
// metrics sink accumulates them into cumulative totals) and rolls the
// cumulative snapshots forward.
func (e *Engine) finishRun(res *Result) {
	installed := 0
	for _, id := range e.order {
		installed += e.peers[id].installed
	}
	if e.traceOn {
		e.tracer.Counter("ddatalog", "ddatalog_facts_derived_total", int64(res.Stats.Derived-e.lastDerived))
		e.tracer.Counter("ddatalog", "ddatalog_facts_replicated_total", int64(res.Stats.Replicated-e.lastReplicated))
		if d := installed - e.lastInstalled; d > 0 {
			e.tracer.Counter("ddatalog", "ddatalog_rules_installed_total", int64(d))
		}
		// Per-head-relation derivation counts: display-only names (the
		// space keeps them out of /metrics — unbounded cardinality).
		byRel := make(map[rel.Name]int, len(e.lastByRel))
		for _, id := range e.order {
			for r, c := range e.peers[id].derivedBy {
				byRel[r] += c
			}
		}
		for r, c := range byRel {
			if d := c - e.lastByRel[r]; d > 0 {
				e.tracer.Counter("ddatalog", "derived "+string(r), int64(d))
			}
		}
		e.lastByRel = byRel
	}
	e.lastDerived = res.Stats.Derived
	e.lastReplicated = res.Stats.Replicated
	e.lastInstalled = installed
}

// Run evaluates the program for the located query atom q: the collector
// activates q's relation at q's peer, the network runs to quiescence, and
// the tuples matching the query pattern are extracted. A zero timeout
// means one minute.
func (e *Engine) Run(q PAtom, timeout time.Duration) (*Result, error) {
	return e.RunDelta(q, nil, nil, timeout)
}

// RunDelta re-enters evaluation: it injects new base facts (delivered to
// their owner peers, forwarded to subscribers, delta-joined) and new rules
// (installed at their host peers), then evaluates q on a fresh network
// over the warm per-peer state of earlier runs. Facts and rules must be
// built over the engine's program store. Stats are cumulative across
// runs: Derived and Replicated count everything materialized since
// NewEngine, which is what incremental sessions report.
func (e *Engine) RunDelta(q PAtom, facts []PAtom, rules []PRule, timeout time.Duration) (*Result, error) {
	if !e.progPeers[q.Peer] {
		return nil, fmt.Errorf("ddatalog: query peer %q not in program", q.Peer)
	}
	e.traceOn = e.tracer.Enabled()
	if e.traceOn {
		sp := e.tracer.Begin("ddatalog", fmt.Sprintf("run %s", q.Qualified()))
		defer sp.End()
	}
	src := e.prog.Store
	initial := make([]dist.Message, 0, len(facts)+len(rules)+1)
	for _, r := range rules {
		if !e.progPeers[r.Head.Peer] {
			return nil, fmt.Errorf("ddatalog: rule host %q not in program", r.Head.Peer)
		}
		initial = append(initial, dist.Message{
			From: collectorID, To: r.Head.Peer, Payload: wire.Install{Rule: externRule(src, r)},
		})
	}
	for _, f := range facts {
		if !e.progPeers[f.Peer] {
			return nil, fmt.Errorf("ddatalog: fact owner %q not in program", f.Peer)
		}
		initial = append(initial, dist.Message{
			From: collectorID, To: f.Peer, Payload: wire.Inject{Rel: f.Rel, Tuple: src.ExternalizeTuple(f.Args)},
		})
	}
	initial = append(initial, dist.Message{From: collectorID, To: q.Peer, Payload: wire.Activate{Rel: q.Rel}})

	net := dist.Net(nil)
	if e.netFactory != nil {
		net = e.netFactory()
	} else {
		nw := dist.NewNetwork()
		nw.SetWorkers(e.workers)
		net = nw
	}
	net.SetTracer(e.tracer)
	for _, id := range e.order {
		ps := e.peers[id]
		net.AddPeer(id, ps.handle)
	}
	qual := q.Qualified()
	net.AddPeer(collectorID, func(ctx *dist.Context, m dist.Message) {
		msg, ok := m.Payload.(wire.Facts)
		if !ok {
			return
		}
		e.colDB.Rel(msg.Qual, msg.Arity).Insert(e.colStore.InternalizeTuple(msg.Tuple))
	})

	netStats, err := net.Run(initial, timeout)

	res := &Result{Store: e.colStore}
	res.Stats.Net = netStats
	for _, id := range e.order {
		ps := e.peers[id]
		res.Stats.Derived += ps.derived
		res.Stats.Replicated += ps.replicated
	}
	// In a cluster, the member nodes' shares of the materialization
	// arrive with their end-of-round reports.
	if ce, ok := net.(interface{ ClusterExtras() map[string]uint64 }); ok {
		extras := ce.ClusterExtras()
		res.Stats.Derived += int(extras["derived"])
		res.Stats.Replicated += int(extras["replicated"])
	}
	e.finishRun(res)
	if err != nil {
		res.Stats.Truncated = true
		res.Stats.Reason = err.Error()
		return res, err
	}

	// Extract answers by matching the query pattern against the collected
	// relation (re-interning the pattern into the collector's store).
	pattern := e.colStore.InternalizeTuple(src.ExternalizeTuple(q.Args))
	res.Answers = datalog.Answers(e.colDB, e.colStore, datalog.Atom{Rel: qual, Args: pattern})
	return res, nil
}

// PeerDB exposes a peer's database after Run has returned — used by tests
// and by the materialization metrics. It must not be called concurrently
// with Run.
func (e *Engine) PeerDB(id dist.PeerID) *rel.DB {
	ps := e.peers[id]
	if ps == nil {
		return nil
	}
	return ps.db
}

// Peers returns the program's peer IDs in first-mention order.
func (e *Engine) Peers() []dist.PeerID {
	out := make([]dist.PeerID, len(e.order))
	copy(out, e.order)
	return out
}

// PeerStore exposes a peer's term store after Run has returned.
func (e *Engine) PeerStore(id dist.PeerID) *term.Store {
	ps := e.peers[id]
	if ps == nil {
		return nil
	}
	return ps.store
}

// Run is the one-call convenience wrapper: build an engine and evaluate q.
func Run(prog *Program, q PAtom, budget datalog.Budget, timeout time.Duration) (*Result, *Engine, error) {
	e, err := NewEngine(prog, budget)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.Run(q, timeout)
	return res, e, err
}
