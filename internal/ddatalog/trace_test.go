package ddatalog

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/obs"
)

// traceCounters decodes the writer and returns the final (accumulated)
// value of every counter series plus the names of all complete spans.
func traceCounters(t *testing.T, w *obs.ChromeTraceWriter) (map[string]float64, []string) {
	t.Helper()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	counters := map[string]float64{}
	var spans []string
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "C":
			// Samples are running totals; the last one is the cumulative value.
			counters[e.Name] = e.Args["value"].(float64)
		case "X":
			spans = append(spans, e.Name)
		}
	}
	return counters, spans
}

// TestEngineTraceCounters runs Figure 3 under a trace writer and checks
// the engine-level counters agree with the run's own Stats.
func TestEngineTraceCounters(t *testing.T) {
	p := figure3(
		[][2]string{{"1", "2"}, {"2", "3"}},
		[][2]string{{"2", "ok"}, {"3", "ok"}},
		[][2]string{{"2", "4"}, {"3", "5"}},
	)
	s := p.Store
	q := At("R", "r", s.Constant("1"), s.Variable("Y"))

	w := obs.NewChromeTraceWriter(0)
	e, err := NewEngine(p, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetTracer(w)
	res, err := e.Run(q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	counters, spans := traceCounters(t, w)
	if got := counters["ddatalog_facts_derived_total"]; got != float64(res.Stats.Derived) {
		t.Fatalf("ddatalog_facts_derived_total = %v, Stats.Derived = %d", got, res.Stats.Derived)
	}
	if got := counters["ddatalog_facts_replicated_total"]; got != float64(res.Stats.Replicated) {
		t.Fatalf("ddatalog_facts_replicated_total = %v, Stats.Replicated = %d", got, res.Stats.Replicated)
	}
	found := false
	for _, name := range spans {
		if name == "run R@r" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no run span in %v", spans)
	}

	// A second run over the warm state derives nothing new; the emitted
	// delta keeps the accumulated counter equal to cumulative Stats.
	res2, err := e.RunDelta(q, nil, nil, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	counters, _ = traceCounters(t, w)
	if got := counters["ddatalog_facts_derived_total"]; got != float64(res2.Stats.Derived) {
		t.Fatalf("after rerun: counter = %v, cumulative Derived = %d", got, res2.Stats.Derived)
	}
}
