// Package magic implements the (generalized, supplementary-free) magic-sets
// rewriting — the sibling of QSQ the paper cites as reference [7]
// ("Magic sets and other strange ways to execute logic programs").
//
// It serves as an ablation baseline: Section 1 argues QSQ and magic sets
// are "two main, closely related, optimization techniques ... that both aim
// at minimizing the quantity of data that is materialized". The benchmark
// suite compares the two rewritings' materialization on the same programs.
package magic

import (
	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/rel"
	"repro/internal/term"
)

// Rewriting is the result of the magic-sets transformation.
type Rewriting struct {
	Program *datalog.Program
	Query   datalog.Atom
	Keys    []adorn.Key
}

// magicName returns the name of the magic predicate for R#ad.
func magicName(r rel.Name, a adorn.Adornment) rel.Name {
	return "magic-" + adorn.Name(r, a)
}

// Rewrite rewrites program p for the single-atom query q with magic sets.
func Rewrite(p *datalog.Program, q datalog.Atom) (*Rewriting, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.Store
	idb := p.IDB()

	out := datalog.NewProgram(s)
	out.Facts = append(out.Facts, p.Facts...)

	ad := adorn.Compute(s, adorn.VarSet{}, q.Args)
	if !idb[q.Rel] {
		return &Rewriting{Program: out, Query: q}, nil
	}
	out.AddFact(datalog.Atom{Rel: magicName(q.Rel, ad), Args: adorn.BoundArgs(ad, q.Args)})

	done := map[adorn.Key]bool{}
	var queue, keys []adorn.Key
	request := func(k adorn.Key) {
		if !done[k] {
			done[k] = true
			queue = append(queue, k)
			keys = append(keys, k)
		}
	}
	request(adorn.Key{Rel: q.Rel, Ad: ad})

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, r := range p.Rules {
			if r.Head.Rel != k.Rel {
				continue
			}
			rewriteRule(s, out, idb, r, k.Ad, request)
		}
		// Bridge base facts of intensional relations into the adorned
		// answer relation (see the matching fix in package qsq).
		for _, f := range p.Facts {
			if f.Rel == k.Rel {
				out.AddRule(datalog.Rule{
					Head: datalog.Atom{Rel: adorn.Name(k.Rel, k.Ad), Args: f.Args},
					Body: []datalog.Atom{{Rel: magicName(k.Rel, k.Ad), Args: adorn.BoundArgs(k.Ad, f.Args)}},
				})
			}
		}
	}

	return &Rewriting{
		Program: out,
		Query:   datalog.Atom{Rel: adorn.Name(q.Rel, ad), Args: q.Args},
		Keys:    keys,
	}, nil
}

// rewriteRule emits the modified rule and one magic rule per intensional
// body atom:
//
//	R#ad(t...)           :- magic-R#ad(bound t...), A1', ..., An'
//	magic-S#adj(bound)   :- magic-R#ad(bound t...), A1', ..., A(j-1)'
func rewriteRule(s *term.Store, out *datalog.Program, idb map[rel.Name]bool,
	r datalog.Rule, ad adorn.Adornment, request func(adorn.Key)) {

	guard := datalog.Atom{Rel: magicName(r.Head.Rel, ad), Args: adorn.BoundArgs(ad, r.Head.Args)}
	bound := adorn.VarSet{}
	for i, t := range r.Head.Args {
		if ad.Bound(i) {
			bound.AddTerm(s, t)
		}
	}

	prefix := []datalog.Atom{guard}
	for _, a := range r.Body {
		join := a
		if idb[a.Rel] {
			adj := adorn.Compute(s, bound, a.Args)
			out.AddRule(datalog.Rule{
				Head: datalog.Atom{Rel: magicName(a.Rel, adj), Args: adorn.BoundArgs(adj, a.Args)},
				Body: append([]datalog.Atom(nil), prefix...),
			})
			request(adorn.Key{Rel: a.Rel, Ad: adj})
			join = datalog.Atom{Rel: adorn.Name(a.Rel, adj), Args: a.Args}
		}
		for _, t := range a.Args {
			bound.AddTerm(s, t)
		}
		prefix = append(prefix, join)
	}
	out.AddRule(datalog.Rule{
		Head: datalog.Atom{Rel: adorn.Name(r.Head.Rel, ad), Args: r.Head.Args},
		Body: prefix,
		Neqs: append([]datalog.Neq(nil), r.Neqs...),
	})
}

// Eval evaluates the rewritten program semi-naively.
func (rw *Rewriting) Eval(b datalog.Budget) (*rel.DB, datalog.Stats) {
	return rw.Program.SemiNaive(b)
}

// Answers extracts the query answers from a database produced by Eval.
func (rw *Rewriting) Answers(db *rel.DB) [][]term.ID {
	return datalog.Answers(db, rw.Program.Store, rw.Query)
}

// Run rewrites, evaluates and extracts answers in one call.
func Run(p *datalog.Program, q datalog.Atom, b datalog.Budget) ([][]term.ID, *rel.DB, datalog.Stats, error) {
	rw, err := Rewrite(p, q)
	if err != nil {
		return nil, nil, datalog.Stats{}, err
	}
	db, st := rw.Eval(b)
	return rw.Answers(db), db, st, nil
}
