package magic

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/qsq"
	"repro/internal/term"
)

func buildTC(s *term.Store, edges [][2]string) *datalog.Program {
	p := datalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, y), Body: []datalog.Atom{datalog.A("e", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, z), Body: []datalog.Atom{
		datalog.A("e", x, y), datalog.A("tc", y, z),
	}})
	for _, e := range edges {
		p.AddFact(datalog.A("e", s.Constant(e[0]), s.Constant(e[1])))
	}
	return p
}

func asStrings(s *term.Store, rows [][]term.ID) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = s.String(t)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func TestMagicEqualsNaiveOnTC(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}}
	s := term.NewStore()
	p := buildTC(s, edges)
	q := datalog.A("tc", s.Constant("a"), s.Variable("Y"))
	got, _, st, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatal("truncated")
	}
	if g := asStrings(s, got); strings.Join(g, ";") != "b;c;d" {
		t.Fatalf("answers %v, want [b c d]", g)
	}
}

func TestMagicPrunesUnreachable(t *testing.T) {
	// Long chain plus a disconnected clique; magic must not touch the clique.
	var edges [][2]string
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]string{n(i), n(i + 1)})
	}
	for i := 20; i < 30; i++ {
		for j := 20; j < 30; j++ {
			if i != j {
				edges = append(edges, [2]string{n(i), n(j)})
			}
		}
	}
	s := term.NewStore()
	p := buildTC(s, edges)
	_, stFull := buildTC(term.NewStore(), edges).SemiNaive(datalog.Budget{})

	q := datalog.A("tc", s.Constant(n(0)), s.Variable("Y"))
	_, _, st, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Derived >= stFull.Derived {
		t.Fatalf("magic derived %d >= naive %d", st.Derived, stFull.Derived)
	}
}

func n(i int) string { return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestMagicSeedAndKeys(t *testing.T) {
	s := term.NewStore()
	p := buildTC(s, nil)
	q := datalog.A("tc", s.Constant("a"), s.Variable("Y"))
	rw, err := Rewrite(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Program.Facts) != 1 || rw.Program.Facts[0].Rel != "magic-tc#bf" {
		t.Fatalf("seed = %v", rw.Program.Facts)
	}
	if len(rw.Keys) != 1 || rw.Keys[0].Rel != "tc" || rw.Keys[0].Ad != "bf" {
		t.Fatalf("keys = %v", rw.Keys)
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatalf("invalid rewriting: %v", err)
	}
}

func TestMagicEDBQuery(t *testing.T) {
	s := term.NewStore()
	p := buildTC(s, [][2]string{{"a", "b"}})
	got, _, _, err := Run(p, datalog.A("e", s.Constant("a"), s.Variable("Y")), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || s.String(got[0][0]) != "b" {
		t.Fatalf("answers %v", got)
	}
}

// Property: magic sets and QSQ compute identical answer sets on random TC
// instances (they are the "closely related" pair from Section 1).
func TestQuickMagicEqualsQSQ(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 3 + rng.Intn(6)
		var edges [][2]string
		for i := 0; i < nNodes; i++ {
			for j := 0; j < nNodes; j++ {
				if i != j && rng.Intn(3) == 0 {
					edges = append(edges, [2]string{n(i), n(j)})
				}
			}
		}
		src := n(rng.Intn(nNodes))

		s1 := term.NewStore()
		p1 := buildTC(s1, edges)
		gotM, _, st1, err1 := Run(p1, datalog.A("tc", s1.Constant(src), s1.Variable("Y")), datalog.Budget{})

		s2 := term.NewStore()
		p2 := buildTC(s2, edges)
		gotQ, _, st2, err2 := qsq.Run(p2, datalog.A("tc", s2.Constant(src), s2.Variable("Y")), datalog.Budget{})

		if err1 != nil || err2 != nil || st1.Truncated || st2.Truncated {
			return false
		}
		return strings.Join(asStrings(s1, gotM), ";") == strings.Join(asStrings(s2, gotQ), ";")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMagicTCChain(b *testing.B) {
	var edges [][2]string
	for i := 0; i < 60; i++ {
		edges = append(edges, [2]string{n(i), n(i + 1)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := term.NewStore()
		p := buildTC(s, edges)
		if _, _, st, err := Run(p, datalog.A("tc", s.Constant(n(0)), s.Variable("Y")), datalog.Budget{}); err != nil || st.Truncated {
			b.Fatal("failed")
		}
	}
}
