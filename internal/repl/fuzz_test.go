package repl

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame checks the frame parser is total: any body either
// decodes cleanly or errors, never panics, and every well-formed frame
// round-trips through the framing layer.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(encodeHello(17, 0xdeadbeef, 3))
	f.Add(encodeWelcome(4, true, 18))
	f.Add(encodeSnap(4, "sess-1", false, []byte("chunk-bytes")))
	f.Add(encodeSnap(4, "sess-1", true, nil))
	f.Add(encodeSnapDone(4, 19, 2))
	f.Add(encodeRecord(4, 20, []byte("payload")))
	f.Add(encodeHeartbeat(4, 21, 1700000000000000))
	f.Add(encodeAck(21))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{kindRecord})

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrame(body)
		if err != nil {
			return
		}
		if fr.kind < kindHello || fr.kind > kindAck {
			t.Fatalf("decoded unknown kind %d without error", fr.kind)
		}
		// A decodable body must survive the framing layer byte-for-byte.
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, body); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		got, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("frame round-trip mutated body")
		}
	})
}

// FuzzReadFrame checks the frame reader rejects arbitrary byte streams
// without panicking and never over-allocates past MaxFrame.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	writeFrame(&buf, encodeAck(7)) //nolint:errcheck
	f.Add(buf.Bytes())
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // huge uvarint length
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		for {
			body, err := readFrame(br)
			if err != nil {
				return
			}
			if _, err := decodeFrame(body); err != nil {
				return
			}
		}
	})
}
