package repl

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// PrimaryOptions tunes the shipping side.
type PrimaryOptions struct {
	// Epoch is the fencing epoch stamped on every outbound frame.
	// 0 means 1.
	Epoch uint64
	// Heartbeat is the keepalive interval (default 500ms). Read
	// deadlines on both ends derive from it.
	Heartbeat time.Duration
	// Metrics receives repl_followers, repl_lag_seqs,
	// repl_bytes_shipped_total, repl_records_shipped_total,
	// repl_snapshot_ships_total, repl_stale_primary_total and
	// repl_epoch. nil discards them.
	Metrics Metrics
	// Logger receives per-follower session logs; nil discards them.
	Logger *slog.Logger
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.Epoch == 0 {
		o.Epoch = 1
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = discardLogger()
	}
	return o
}

// Primary streams a server's WAL (and snapshot dumps) to any number of
// followers. One Primary serves many concurrent follower connections;
// each gets its own tail-follow over the shared log.
type Primary struct {
	log   *wal.Log
	src   Source
	opt   PrimaryOptions
	epoch atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]*connState
	closed bool
	wg     sync.WaitGroup
	stop   chan struct{}
}

// connState is the per-follower bookkeeping the ack reader maintains.
type connState struct {
	mu    sync.Mutex // serializes frame writes (stream vs heartbeat)
	acked uint64
}

// NewPrimary builds a shipping primary over the server's log and
// snapshot source. Call Serve with a listener to start accepting.
func NewPrimary(log *wal.Log, src Source, opt PrimaryOptions) *Primary {
	opt = opt.withDefaults()
	p := &Primary{
		log:   log,
		src:   src,
		opt:   opt,
		conns: make(map[net.Conn]*connState),
		stop:  make(chan struct{}),
	}
	p.epoch.Store(opt.Epoch)
	p.setGauge("repl_epoch", int64(opt.Epoch))
	return p
}

// Epoch reports the current fencing epoch.
func (p *Primary) Epoch() uint64 { return p.epoch.Load() }

// SetEpoch bumps the fencing epoch stamped on outbound frames (a
// promoted node that keeps serving its own followers).
func (p *Primary) SetEpoch(e uint64) {
	p.epoch.Store(e)
	p.setGauge("repl_epoch", int64(e))
}

// Serve accepts follower connections on ln until Close. It blocks.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-p.stop:
				return nil
			default:
				return err
			}
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return nil
		}
		st := &connState{}
		p.conns[conn] = st
		p.setGauge("repl_followers", int64(len(p.conns)))
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.serveFollower(conn, st)
			p.dropConn(conn)
		}()
	}
}

// Close stops accepting, drops every follower and waits for the
// per-connection goroutines.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.stop)
	if p.ln != nil {
		p.ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Lag reports the worst follower lag in sequences and the follower
// count (0, 0 with no followers).
func (p *Primary) Lag() (seqs uint64, followers int) {
	last := p.log.LastSeq()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.conns {
		st.mu.Lock()
		acked := st.acked
		st.mu.Unlock()
		if last > acked && last-acked > seqs {
			seqs = last - acked
		}
	}
	return seqs, len(p.conns)
}

func (p *Primary) dropConn(conn net.Conn) {
	conn.Close()
	p.mu.Lock()
	delete(p.conns, conn)
	p.setGauge("repl_followers", int64(len(p.conns)))
	p.mu.Unlock()
}

// serveFollower runs one follower session: handshake, optional
// snapshot ship, then the record stream with heartbeats, while a
// reader goroutine consumes acks.
func (p *Primary) serveFollower(conn net.Conn, st *connState) {
	log := p.opt.Logger.With("follower", conn.RemoteAddr().String())
	hb := p.opt.Heartbeat
	br := bufio.NewReader(conn)

	conn.SetReadDeadline(time.Now().Add(6 * hb)) //nolint:errcheck
	body, err := readFrame(br)
	if err != nil {
		log.Warn("repl: handshake read failed", "err", err)
		return
	}
	hello, err := decodeFrame(body)
	if err != nil || hello.kind != kindHello {
		log.Warn("repl: bad handshake frame", "err", err)
		return
	}
	if hello.version != ProtoVersion {
		log.Warn("repl: protocol version mismatch", "follower", hello.version, "local", ProtoVersion)
		return
	}
	if hello.epoch > p.epoch.Load() {
		// The follower has seen a higher epoch than ours: we are a fenced
		// ex-primary. Refuse the session rather than feed it stale state.
		p.metricAdd("repl_stale_primary_total", 1)
		log.Warn("repl: superseded by a higher epoch; refusing follower", "seen", hello.epoch, "local", p.epoch.Load())
		return
	}

	// Resume only when the follower's last record provably matches ours;
	// anything else — fresh follower, compacted history, divergent tail
	// from a fenced primary — gets a full snapshot dump.
	start := hello.lastSeq + 1
	resume := hello.lastSeq > 0 && p.verifyTail(hello.lastSeq, hello.lastCRC)
	if err := p.send(conn, st, encodeWelcome(p.epoch.Load(), !resume, start)); err != nil {
		log.Warn("repl: welcome write failed", "err", err)
		return
	}
	if !resume {
		next, err := p.ship(conn, st)
		if err != nil {
			log.Warn("repl: snapshot ship failed", "err", err)
			return
		}
		start = next
		log.Info("repl: follower resynced via snapshot ship", "resume", next)
	} else {
		log.Info("repl: follower resumed", "from", start)
	}

	// Ack reader: its exit (deadline, close, error) tears the session down.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			conn.SetReadDeadline(time.Now().Add(6 * hb)) //nolint:errcheck
			body, err := readFrame(br)
			if err != nil {
				return
			}
			f, err := decodeFrame(body)
			if err != nil || f.kind != kindAck {
				return
			}
			st.mu.Lock()
			if f.acked > st.acked {
				st.acked = f.acked
			}
			st.mu.Unlock()
			p.publishLag()
		}
	}()

	// Heartbeats ride a ticker; records ride the tail-follow loop below.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if err := p.send(conn, st, encodeHeartbeat(p.epoch.Load(), p.log.LastSeq(), nowMicros())); err != nil {
					conn.Close() // unblocks the stream loop's WaitSeq via read side
					return
				}
				p.publishLag()
			}
		}
	}()
	defer func() {
		close(hbStop)
		hbWG.Wait()
	}()

	// sessStop ends the tail-follow when either the primary stops or the
	// follower goes away (its ack reader exits) — otherwise an idle log
	// would park WaitSeq forever on behalf of a dead connection.
	sessStop := make(chan struct{})
	go func() {
		select {
		case <-readerDone:
		case <-p.stop:
		}
		close(sessStop)
	}()

	// Stream loop: follow the log tail, shipping each new record. A
	// compaction gap mid-stream (slow follower) falls back to a fresh
	// snapshot ship on the same connection.
	next := start
	for {
		last, err := p.log.WaitSeq(next, sessStop)
		if err != nil {
			return // log closed, primary stopping, or follower gone
		}
		err = p.log.ReadRange(next, last, func(seq uint64, payload []byte) error {
			if err := p.send(conn, st, encodeRecord(p.epoch.Load(), seq, payload)); err != nil {
				return err
			}
			p.metricAdd("repl_records_shipped_total", 1)
			return nil
		})
		switch {
		case errors.Is(err, wal.ErrCompacted):
			n, serr := p.ship(conn, st)
			if serr != nil {
				log.Warn("repl: mid-stream resync failed", "err", serr)
				return
			}
			log.Info("repl: follower lagged past compaction; resynced", "resume", n)
			next = n
		case err != nil:
			log.Info("repl: stream ended", "err", err)
			return
		default:
			next = last + 1
		}
	}
}

// verifyTail checks that our record at seq carries the CRC the
// follower reported — the resume-safety test that catches divergent
// histories (e.g. a follower that applied records a crashed primary
// lost before fsync).
func (p *Primary) verifyTail(seq uint64, want uint32) bool {
	match := false
	err := p.log.ReadRange(seq, seq, func(_ uint64, payload []byte) error {
		match = crc32.ChecksumIEEE(payload) == want
		return nil
	})
	return err == nil && match
}

// ship sends a full snapshot dump and returns the sequence to stream
// from. The dump is taken fresh, so dump + records-from-resume equals
// the primary's own recovery state.
func (p *Primary) ship(conn net.Conn, st *connState) (uint64, error) {
	snaps, resume, err := p.src.Dump()
	if err != nil {
		return 0, err
	}
	epoch := p.epoch.Load()
	for _, s := range snaps {
		data := s.Data
		for off := 0; ; off += snapChunk {
			end := off + snapChunk
			done := end >= len(data)
			if done {
				end = len(data)
			}
			if err := p.send(conn, st, encodeSnap(epoch, s.ID, done, data[off:end])); err != nil {
				return 0, err
			}
			if done {
				break
			}
		}
	}
	if err := p.send(conn, st, encodeSnapDone(epoch, resume, uint64(len(snaps)))); err != nil {
		return 0, err
	}
	p.metricAdd("repl_snapshot_ships_total", 1)
	return resume, nil
}

// send writes one frame under the connection's write lock, counting
// bytes shipped.
func (p *Primary) send(conn net.Conn, st *connState, body []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(6 * p.opt.Heartbeat)) //nolint:errcheck
	n, err := writeFrame(conn, body)
	if n > 0 {
		p.metricAdd("repl_bytes_shipped_total", int64(n))
	}
	return err
}

// publishLag refreshes the worst-follower lag gauge.
func (p *Primary) publishLag() {
	lag, _ := p.Lag()
	p.setGauge("repl_lag_seqs", int64(lag))
}

func (p *Primary) metricAdd(name string, delta int64) {
	if p.opt.Metrics != nil {
		p.opt.Metrics.Add(name, delta)
	}
}

func (p *Primary) setGauge(name string, v int64) {
	if p.opt.Metrics != nil {
		p.opt.Metrics.SetGauge(name, v)
	}
}

// discardLogger is the nil-Logger default, matching serve's idiom.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
