// Package repl ships a diagnosed server's durable state — WAL records
// and, when the log alone cannot reconstruct it, whole .dsnp session
// snapshots — from a primary to read-only followers over TCP, so a
// replica can take over serving live sessions the moment the primary
// dies. The paper's supervisor observes an asynchronous distributed
// system; this package makes the supervisor itself survive being part
// of one.
//
// Protocol. Both directions speak length-prefixed, CRC-checked frames:
//
//	uvarint len | body | crc32(body) LE
//
// with bodies encoded by the snapshot section primitives (the same
// codec WAL record payloads use). A session opens with the follower's
// Hello carrying its last applied WAL sequence plus the CRC of that
// record; the primary verifies the CRC against its own log and either
// resumes the stream at lastSeq+1 or — for fresh followers, after
// compaction gaps, or on CRC mismatch (a divergent history) — ships a
// full snapshot dump first and streams from the dump's resume point.
// Records then flow as they land in the primary's log (a tail-follow
// over wal.WaitSeq/ReadRange), interleaved with heartbeats; the
// follower acks applied sequences so the primary can report lag.
//
// Fencing. Every primary→follower frame carries a monotonic epoch.
// A follower tracks the highest epoch it has ever seen (persisted via
// Options.PersistEpoch) and drops the connection on any frame with a
// lower one — so after a follower is promoted (epoch+1), a partitioned
// ex-primary that comes back can never feed it stale state. The
// follower's Hello also reports that epoch, letting a superseded
// primary discover its own demotion and refuse the session.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/snapshot"
)

// ProtoVersion is the stream protocol version. There are no
// compatibility shims: both ends must match (the wire/snapshot policy).
const ProtoVersion = 1

// MaxFrame bounds one frame body (64 MiB), so a corrupt length prefix
// cannot force a giant allocation. Session snapshots larger than a
// frame are chunked.
const MaxFrame = 1 << 26

// snapChunk is the chunk size for shipping snapshot bodies (256 KiB):
// large enough to amortize framing, small enough to interleave
// heartbeats on slow links.
const snapChunk = 1 << 18

// Frame kinds. Hello and Ack travel follower→primary; the rest
// primary→follower.
const (
	kindHello     = 1 // proto version, lastSeq, lastCRC, epochSeen
	kindWelcome   = 2 // proto version, epoch, resync?, startSeq
	kindSnap      = 3 // epoch, session id, done?, chunk
	kindSnapDone  = 4 // epoch, resumeSeq, session count
	kindRecord    = 5 // epoch, seq, payload
	kindHeartbeat = 6 // epoch, lastSeq, wallMicros
	kindAck       = 7 // last applied seq
)

// ErrFenced reports a frame carrying an epoch below the highest this
// node has seen: a partitioned ex-primary trying to feed stale state.
var ErrFenced = errors.New("repl: frame from fenced primary (stale epoch)")

// ErrBadFrame reports a structurally invalid frame.
var ErrBadFrame = errors.New("repl: bad frame")

// Metrics is the registry surface both ends feed (a subset of what
// internal/serve's *Metrics provides). nil disables reporting.
type Metrics interface {
	Add(name string, delta int64)
	SetGauge(name string, value int64)
}

// Snapshot is one session's encoded .dsnp container, shipped whole
// during a resync.
type Snapshot struct {
	ID   string
	Data []byte
}

// Source is the primary's view of the server state it replicates: a
// dump is every live session freshly encoded, plus the WAL sequence
// the follower must stream from so that dump+suffix equals the
// primary's own recovery state.
type Source interface {
	Dump() (snaps []Snapshot, resume uint64, err error)
}

// Applier is the follower's side: the same replay path the server uses
// at boot, plus the bookkeeping repl needs for resume.
type Applier interface {
	// LastApplied reports the last locally mirrored WAL sequence and the
	// CRC-32 of that record's payload (0, 0 when nothing is applied).
	LastApplied() (seq uint64, crc uint32)
	// Resync replaces all local state with the shipped dump and
	// repositions the local WAL mirror at resume.
	Resync(snaps []Snapshot, resume uint64) error
	// Apply mirrors one record into the local WAL and applies it through
	// the boot replay path. seq must be exactly LastApplied()+1.
	Apply(seq uint64, payload []byte) error
}

// --- frame codec ---------------------------------------------------------

// writeFrame frames body onto w and returns the bytes written.
func writeFrame(w io.Writer, body []byte) (int, error) {
	buf := make([]byte, 0, len(body)+16)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return w.Write(buf)
}

// readFrame reads one frame body off br, verifying length bound and CRC.
func readFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame exceeds MaxFrame", ErrBadFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return body, nil
}

// frame is the decoded union of every message kind.
type frame struct {
	kind byte

	version  uint64 // hello, welcome
	lastSeq  uint64 // hello, heartbeat
	lastCRC  uint32 // hello
	epoch    uint64 // every primary→follower frame; hello carries epochSeen
	resync   bool   // welcome
	startSeq uint64 // welcome
	id       string // snap
	done     bool   // snap
	chunk    []byte // snap
	resume   uint64 // snapDone
	sessions uint64 // snapDone
	seq      uint64 // record
	payload  []byte // record
	wall     int64  // heartbeat
	acked    uint64 // ack
}

// decodeFrame parses one frame body. It is total: any input either
// decodes or returns an error, never panics (FuzzDecodeFrame enforces
// this).
func decodeFrame(body []byte) (*frame, error) {
	r := newReader(body)
	f := &frame{kind: r.Byte()}
	switch f.kind {
	case kindHello:
		f.version = r.Uvarint()
		f.lastSeq = r.Uvarint()
		f.lastCRC = uint32(r.Uvarint())
		f.epoch = r.Uvarint()
	case kindWelcome:
		f.version = r.Uvarint()
		f.epoch = r.Uvarint()
		f.resync = r.Bool()
		f.startSeq = r.Uvarint()
	case kindSnap:
		f.epoch = r.Uvarint()
		f.id = r.String()
		f.done = r.Bool()
		f.chunk = r.Bytes()
	case kindSnapDone:
		f.epoch = r.Uvarint()
		f.resume = r.Uvarint()
		f.sessions = r.Uvarint()
	case kindRecord:
		f.epoch = r.Uvarint()
		f.seq = r.Uvarint()
		f.payload = r.Bytes()
	case kindHeartbeat:
		f.epoch = r.Uvarint()
		f.lastSeq = r.Uvarint()
		f.wall = r.Int()
	case kindAck:
		f.acked = r.Uvarint()
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, f.kind)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return f, nil
}

func encodeHello(lastSeq uint64, lastCRC uint32, epochSeen uint64) []byte {
	w := newWriter()
	w.Byte(kindHello)
	w.Uvarint(ProtoVersion)
	w.Uvarint(lastSeq)
	w.Uvarint(uint64(lastCRC))
	w.Uvarint(epochSeen)
	return w.Body()
}

func encodeWelcome(epoch uint64, resync bool, startSeq uint64) []byte {
	w := newWriter()
	w.Byte(kindWelcome)
	w.Uvarint(ProtoVersion)
	w.Uvarint(epoch)
	w.Bool(resync)
	w.Uvarint(startSeq)
	return w.Body()
}

func encodeSnap(epoch uint64, id string, done bool, chunk []byte) []byte {
	w := newWriter()
	w.Byte(kindSnap)
	w.Uvarint(epoch)
	w.String(id)
	w.Bool(done)
	w.Bytes(chunk)
	return w.Body()
}

func encodeSnapDone(epoch, resume, sessions uint64) []byte {
	w := newWriter()
	w.Byte(kindSnapDone)
	w.Uvarint(epoch)
	w.Uvarint(resume)
	w.Uvarint(sessions)
	return w.Body()
}

func encodeRecord(epoch, seq uint64, payload []byte) []byte {
	w := newWriter()
	w.Byte(kindRecord)
	w.Uvarint(epoch)
	w.Uvarint(seq)
	w.Bytes(payload)
	return w.Body()
}

func encodeHeartbeat(epoch, lastSeq uint64, wallMicros int64) []byte {
	w := newWriter()
	w.Byte(kindHeartbeat)
	w.Uvarint(epoch)
	w.Uvarint(lastSeq)
	w.Int(wallMicros)
	return w.Body()
}

func encodeAck(acked uint64) []byte {
	w := newWriter()
	w.Byte(kindAck)
	w.Uvarint(acked)
	return w.Body()
}

// --- epoch persistence ---------------------------------------------------

// EpochFile names the fencing-epoch file inside a data directory.
const EpochFile = "repl.epoch"

// LoadEpoch reads the persisted fencing epoch, defaulting to 1 when the
// file does not exist yet (a never-promoted node).
func LoadEpoch(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 1, nil
	}
	if err != nil {
		return 0, err
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: corrupt epoch file %s: %w", path, err)
	}
	return e, nil
}

// SaveEpoch durably records the fencing epoch: temp file, fsync,
// rename, directory sync — an epoch bump must survive the very crash
// it is guarding against.
func SaveEpoch(path string, epoch uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".epoch-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%d\n", epoch); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best effort, like wal.syncDir
		d.Close()
	}
	return nil
}

// --- shared small helpers ------------------------------------------------

// newWriter / newReader alias the snapshot section primitives, which
// double as the standalone payload codec for frame bodies (exactly how
// WAL record payloads are encoded).
func newWriter() *snapshot.Writer         { return &snapshot.Writer{} }
func newReader(b []byte) *snapshot.Reader { return snapshot.NewReader(b) }

func nowMicros() int64 { return time.Now().UnixMicro() }
