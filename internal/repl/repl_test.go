package repl

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// fakeMetrics counts Add/SetGauge calls.
type fakeMetrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
}

func newFakeMetrics() *fakeMetrics {
	return &fakeMetrics{counters: map[string]int64{}, gauges: map[string]int64{}}
}
func (m *fakeMetrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}
func (m *fakeMetrics) SetGauge(name string, v int64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}
func (m *fakeMetrics) counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// fakeSource dumps a fixed session set with the primary log's natural
// resume point.
type fakeSource struct {
	log *wal.Log
	mu  sync.Mutex
	// state holds the "sessions" a dump would ship.
	state map[string][]byte
}

func (s *fakeSource) set(id string, data []byte) {
	s.mu.Lock()
	s.state[id] = data
	s.mu.Unlock()
}

func (s *fakeSource) Dump() ([]Snapshot, uint64, error) {
	s.mu.Lock()
	snaps := make([]Snapshot, 0, len(s.state))
	for id, data := range s.state {
		snaps = append(snaps, Snapshot{ID: id, Data: append([]byte(nil), data...)})
	}
	s.mu.Unlock()
	resume := s.log.FirstSeq()
	if resume == 0 {
		resume = s.log.LastSeq() + 1
	}
	return snaps, resume, nil
}

// fakeApplier mirrors records into its own log, like the server does.
type fakeApplier struct {
	log *wal.Log
	mu  sync.Mutex
	// applied maps seq -> payload for every Apply.
	applied map[uint64]string
	snaps   map[string][]byte
	resyncs int
}

func newFakeApplier(t *testing.T) *fakeApplier {
	t.Helper()
	l, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &fakeApplier{log: l, applied: map[uint64]string{}, snaps: map[string][]byte{}}
}

func (a *fakeApplier) LastApplied() (uint64, uint32) {
	last := a.log.LastSeq()
	if last == 0 {
		return 0, 0
	}
	var crc uint32
	err := a.log.ReadRange(last, last, func(_ uint64, p []byte) error {
		crc = crc32.ChecksumIEEE(p)
		return nil
	})
	if err != nil {
		return last, 0 // e.g. right after a SkipTo: no record to verify
	}
	return last, crc
}

func (a *fakeApplier) Resync(snaps []Snapshot, resume uint64) error {
	if err := a.log.SkipTo(resume); err != nil {
		return err
	}
	a.mu.Lock()
	a.snaps = map[string][]byte{}
	for _, s := range snaps {
		a.snaps[s.ID] = s.Data
	}
	a.applied = map[uint64]string{}
	a.resyncs++
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) Apply(seq uint64, payload []byte) error {
	got, err := a.log.Append(payload)
	if err != nil {
		return err
	}
	if got != seq {
		return fmt.Errorf("mirror assigned %d, stream says %d", got, seq)
	}
	a.mu.Lock()
	a.applied[seq] = string(payload)
	a.mu.Unlock()
	return nil
}

func (a *fakeApplier) appliedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.applied)
}

func (a *fakeApplier) get(seq uint64) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.applied[seq]
	return s, ok
}

func (a *fakeApplier) resyncCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resyncs
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startPrimary listens on loopback and serves.
func startPrimary(t *testing.T, p *Primary) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln) //nolint:errcheck
	t.Cleanup(p.Close)
	return ln.Addr().String()
}

// TestShipResumeResync walks the whole life of a follower: initial
// snapshot ship, live streaming, clean resume after a disconnect, and
// a forced full resync once compaction has eaten the suffix it missed.
func TestShipResumeResync(t *testing.T) {
	plog, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	src := &fakeSource{log: plog, state: map[string][]byte{}}
	src.set("s1", []byte("session-one-bytes"))
	pm := newFakeMetrics()
	p := NewPrimary(plog, src, PrimaryOptions{Heartbeat: 50 * time.Millisecond, Metrics: pm})
	addr := startPrimary(t, p)

	app := newFakeApplier(t)
	fm := newFakeMetrics()
	f := NewFollower(addr, app, FollowerOptions{Heartbeat: 50 * time.Millisecond, Metrics: fm})
	f.Start()

	// Fresh follower: first contact must snapshot-ship.
	waitFor(t, "initial resync", func() bool { return app.resyncCount() == 1 })
	app.mu.Lock()
	shipped := string(app.snaps["s1"])
	app.mu.Unlock()
	if shipped != "session-one-bytes" {
		t.Fatalf("shipped snapshot = %q", shipped)
	}

	// Live streaming.
	for i := 1; i <= 5; i++ {
		if _, err := plog.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "5 records applied", func() bool { return app.appliedCount() == 5 })
	if got, _ := app.get(3); got != "rec-3" {
		t.Fatalf("applied[3] = %q", got)
	}

	// Disconnect, append while away, reconnect: sequence resume, no
	// second resync.
	f.Stop()
	for i := 6; i <= 8; i++ {
		if _, err := plog.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f2 := NewFollower(addr, app, FollowerOptions{Heartbeat: 50 * time.Millisecond, Metrics: fm})
	f2.Start()
	waitFor(t, "resume catches up", func() bool { return app.appliedCount() == 8 })
	if app.resyncCount() != 1 {
		t.Fatalf("resyncs = %d after clean resume, want 1", app.resyncCount())
	}
	if got, _ := app.get(7); got != "rec-7" {
		t.Fatalf("applied[7] = %q", got)
	}

	// Lag past compaction: stop, let the primary truncate everything the
	// follower would need, reconnect — must resync.
	f2.Stop()
	for i := 9; i <= 40; i++ {
		if _, err := plog.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := plog.Truncate(plog.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if first := plog.FirstSeq(); first <= 9 {
		t.Fatalf("compaction left FirstSeq=%d; the gap scenario needs > 9", first)
	}
	src.set("s1", []byte("session-one-after-compaction"))
	f3 := NewFollower(addr, app, FollowerOptions{Heartbeat: 50 * time.Millisecond, Metrics: fm})
	defer f3.Stop()
	f3.Start()
	waitFor(t, "gap resync", func() bool { return app.resyncCount() == 2 })
	// The stream continues from the dump's resume point to the tail.
	waitFor(t, "post-resync catch-up", func() bool {
		seq, _ := app.LastApplied()
		return seq == plog.LastSeq()
	})
	app.mu.Lock()
	shipped = string(app.snaps["s1"])
	app.mu.Unlock()
	if shipped != "session-one-after-compaction" {
		t.Fatalf("second ship = %q", shipped)
	}
	if pm.counter("repl_snapshot_ships_total") < 2 {
		t.Fatalf("repl_snapshot_ships_total = %d, want >= 2", pm.counter("repl_snapshot_ships_total"))
	}
	if pm.counter("repl_bytes_shipped_total") == 0 {
		t.Fatal("repl_bytes_shipped_total never counted")
	}
	if fm.counter("repl_records_applied_total") == 0 {
		t.Fatal("repl_records_applied_total never counted")
	}
}

// TestFencedPrimaryFramesRejected is the epoch-fencing unit test: a
// follower that has seen epoch 5 must reject every frame a stale
// epoch-1 primary sends, drop the connection, and count the rejection.
func TestFencedPrimaryFramesRejected(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()

	app := newFakeApplier(t)
	fm := newFakeMetrics()
	f := NewFollower("unused", app, FollowerOptions{Epoch: 5, Heartbeat: time.Second, Metrics: fm})

	// Fake stale primary: answer the hello with an epoch-1 welcome, then
	// try to feed an epoch-1 record.
	go func() {
		br := bufio.NewReader(server)
		if _, err := readFrame(br); err != nil {
			return
		}
		writeFrame(server, encodeWelcome(1, false, 1))        //nolint:errcheck
		writeFrame(server, encodeRecord(1, 1, []byte("bad"))) //nolint:errcheck
	}()

	err := f.session(client)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("session err = %v, want ErrFenced", err)
	}
	if app.appliedCount() != 0 {
		t.Fatal("a fenced primary's record was applied")
	}
	if fm.counter("repl_epoch_rejected_total") != 1 {
		t.Fatalf("repl_epoch_rejected_total = %d, want 1", fm.counter("repl_epoch_rejected_total"))
	}
}

// TestFencedMidStream checks the per-frame epoch guard: a session that
// started healthy rejects the moment a frame regresses (the partition
// scenario: promote happened elsewhere, this primary doesn't know).
func TestFencedMidStream(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()

	app := newFakeApplier(t)
	fm := newFakeMetrics()
	f := NewFollower("unused", app, FollowerOptions{Epoch: 1, Heartbeat: time.Second, Metrics: fm})

	go func() {
		br := bufio.NewReader(server)
		if _, err := readFrame(br); err != nil {
			return
		}
		// Welcome at epoch 2 (the follower advances), then a record from
		// epoch 1 — a fenced ex-primary's frame.
		writeFrame(server, encodeWelcome(2, false, 1))          //nolint:errcheck
		writeFrame(server, encodeRecord(1, 1, []byte("stale"))) //nolint:errcheck
	}()

	err := f.session(client)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("session err = %v, want ErrFenced", err)
	}
	if app.appliedCount() != 0 {
		t.Fatal("stale record applied")
	}
	if f.Epoch() != 2 {
		t.Fatalf("follower epoch = %d, want 2 (advanced by the welcome)", f.Epoch())
	}
}

// TestStalePrimaryRefusesSuperiorFollower checks the primary-side
// guard: a hello reporting a higher epoch than ours means we are the
// fenced ex-primary; the session must be refused.
func TestStalePrimaryRefusesSuperiorFollower(t *testing.T) {
	plog, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	pm := newFakeMetrics()
	p := NewPrimary(plog, &fakeSource{log: plog, state: map[string][]byte{}},
		PrimaryOptions{Epoch: 3, Heartbeat: 50 * time.Millisecond, Metrics: pm})
	addr := startPrimary(t, p)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := writeFrame(conn, encodeHello(0, 0, 9)); err != nil {
		t.Fatal(err)
	}
	// The primary must hang up without a welcome.
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if body, err := readFrame(br); err == nil {
		fr, _ := decodeFrame(body)
		t.Fatalf("fenced primary answered with kind %d", fr.kind)
	}
	waitFor(t, "stale-primary metric", func() bool { return pm.counter("repl_stale_primary_total") == 1 })
}

// TestEpochPersistence checks the epoch round-trip and that a follower
// persists a newly seen epoch before accepting frames under it.
func TestEpochPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), EpochFile)
	if e, err := LoadEpoch(path); err != nil || e != 1 {
		t.Fatalf("LoadEpoch(absent) = %d, %v; want 1, nil", e, err)
	}
	if err := SaveEpoch(path, 7); err != nil {
		t.Fatal(err)
	}
	if e, err := LoadEpoch(path); err != nil || e != 7 {
		t.Fatalf("LoadEpoch = %d, %v; want 7, nil", e, err)
	}

	// A follower meeting a higher epoch persists it before applying.
	plog, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	p := NewPrimary(plog, &fakeSource{log: plog, state: map[string][]byte{}},
		PrimaryOptions{Epoch: 9, Heartbeat: 50 * time.Millisecond})
	addr := startPrimary(t, p)
	app := newFakeApplier(t)
	persisted := make(chan uint64, 4)
	f := NewFollower(addr, app, FollowerOptions{
		Epoch:        7,
		Heartbeat:    50 * time.Millisecond,
		PersistEpoch: func(e uint64) error { persisted <- e; return nil },
	})
	f.Start()
	defer f.Stop()
	select {
	case e := <-persisted:
		if e != 9 {
			t.Fatalf("persisted epoch %d, want 9", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("epoch never persisted")
	}
	waitFor(t, "epoch adopted", func() bool { return f.Epoch() == 9 })
}

// TestFollowerHealth exercises the lag bound: healthy while frames
// flow, unhealthy once the primary goes silent.
func TestFollowerHealth(t *testing.T) {
	plog, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	p := NewPrimary(plog, &fakeSource{log: plog, state: map[string][]byte{}},
		PrimaryOptions{Heartbeat: 20 * time.Millisecond})
	addr := startPrimary(t, p)
	app := newFakeApplier(t)
	f := NewFollower(addr, app, FollowerOptions{Heartbeat: 20 * time.Millisecond, LagBound: 250 * time.Millisecond})
	f.Start()
	defer f.Stop()
	waitFor(t, "first contact", func() bool { return f.Status().Connected })
	if err := f.Healthy(); err != nil {
		t.Fatalf("healthy follower reports %v", err)
	}
	p.Close() // primary dies; heartbeats stop
	waitFor(t, "lag bound breach", func() bool { return f.Healthy() != nil })
}
