package repl

import (
	"bufio"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// ackEvery is how many applied records ride between acks; heartbeats
// always trigger one, so an idle stream still reports progress.
const ackEvery = 32

// FollowerOptions tunes the applying side.
type FollowerOptions struct {
	// Epoch is the highest fencing epoch this node has seen (loaded from
	// the epoch file at boot). 0 means 1.
	Epoch uint64
	// PersistEpoch durably records a newly seen (higher) epoch before it
	// takes effect; nil skips persistence (tests).
	PersistEpoch func(uint64) error
	// Heartbeat must match the primary's interval (default 500ms); read
	// deadlines derive from it.
	Heartbeat time.Duration
	// LagBound is how stale the stream may go before Healthy reports an
	// error (default 15s).
	LagBound time.Duration
	// Metrics receives repl_lag_seqs, repl_records_applied_total,
	// repl_resyncs_total, repl_reconnects_total,
	// repl_epoch_rejected_total and repl_epoch. nil discards them.
	Metrics Metrics
	// Logger receives session logs; nil discards them.
	Logger *slog.Logger
	// Dialer overrides net.Dial for tests; nil dials TCP.
	Dialer func(addr string) (net.Conn, error)
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Epoch == 0 {
		o.Epoch = 1
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.LagBound <= 0 {
		o.LagBound = 15 * time.Second
	}
	if o.Logger == nil {
		o.Logger = discardLogger()
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 3*time.Second)
		}
	}
	return o
}

// Status is a point-in-time view of the follower, for health checks
// and admin surfaces.
type Status struct {
	Connected    bool
	Epoch        uint64
	Applied      uint64        // last locally applied sequence
	PrimaryLast  uint64        // primary's LastSeq per its latest frame
	SinceContact time.Duration // time since any frame arrived
}

// Follower dials a primary, applies its stream through the server's
// boot replay path, and keeps reconnecting (with sequence resume)
// until Stop. One Follower serves one upstream address.
type Follower struct {
	addr string
	app  Applier
	opt  FollowerOptions

	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	conn        net.Conn
	epoch       uint64
	primaryLast uint64
	lastContact time.Time
	connected   bool
	sessions    int // completed connect count, for reconnect accounting
	started     time.Time
}

// NewFollower builds a follower of the primary at addr. Call Start.
func NewFollower(addr string, app Applier, opt FollowerOptions) *Follower {
	opt = opt.withDefaults()
	f := &Follower{
		addr:  addr,
		app:   app,
		opt:   opt,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		epoch: opt.Epoch,
	}
	f.setGauge("repl_epoch", int64(f.epoch))
	return f
}

// Start launches the dial-apply-reconnect loop.
func (f *Follower) Start() {
	f.mu.Lock()
	f.started = time.Now()
	f.mu.Unlock()
	go f.run()
}

// Stop drains the stream: the connection closes, the loop exits, and
// no further records are applied. It is the first step of a promote.
func (f *Follower) Stop() {
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		<-f.done
		return
	default:
	}
	close(f.stop)
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
}

// Epoch reports the highest fencing epoch seen.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Status reports the follower's current view of the stream.
func (f *Follower) Status() Status {
	applied, _ := f.app.LastApplied()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Status{
		Connected:   f.connected,
		Epoch:       f.epoch,
		Applied:     applied,
		PrimaryLast: f.primaryLast,
	}
	contact := f.lastContact
	if contact.IsZero() {
		contact = f.started
	}
	if !contact.IsZero() {
		s.SinceContact = time.Since(contact)
	}
	return s
}

// Healthy returns nil while the stream is fresh and an error once no
// frame has arrived within the lag bound — the signal an operator (or
// orchestrator) uses to decide a promote.
func (f *Follower) Healthy() error {
	st := f.Status()
	if st.SinceContact > f.opt.LagBound {
		return fmt.Errorf("repl: no frame from primary for %s (bound %s)", st.SinceContact.Round(time.Millisecond), f.opt.LagBound)
	}
	return nil
}

// run is the reconnect loop.
func (f *Follower) run() {
	defer close(f.done)
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		conn, err := f.opt.Dialer(f.addr)
		if err != nil {
			f.opt.Logger.Warn("repl: dial failed", "addr", f.addr, "err", err)
			if !f.sleep(backoff) {
				return
			}
			backoff = nextBackoff(backoff)
			continue
		}
		f.mu.Lock()
		stopped := false
		select {
		case <-f.stop:
			stopped = true
		default:
			f.conn = conn
			f.connected = true
			f.sessions++
			if f.sessions > 1 {
				f.metricAdd("repl_reconnects_total", 1)
			}
		}
		f.mu.Unlock()
		if stopped {
			conn.Close()
			return
		}
		start := time.Now()
		err = f.session(conn)
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.connected = false
		f.mu.Unlock()
		select {
		case <-f.stop:
			return
		default:
		}
		f.opt.Logger.Warn("repl: session ended; reconnecting", "err", err)
		if time.Since(start) > 10*time.Second {
			backoff = 100 * time.Millisecond // the link was healthy; retry fast
		}
		if !f.sleep(backoff) {
			return
		}
		backoff = nextBackoff(backoff)
	}
}

// session speaks one connection: hello, welcome, then frames until the
// stream breaks, the epoch check fails, or Stop closes the conn.
func (f *Follower) session(conn net.Conn) error {
	hb := f.opt.Heartbeat
	br := bufio.NewReader(conn)
	lastSeq, lastCRC := f.app.LastApplied()
	conn.SetWriteDeadline(time.Now().Add(6 * hb)) //nolint:errcheck
	if _, err := writeFrame(conn, encodeHello(lastSeq, lastCRC, f.Epoch())); err != nil {
		return err
	}

	var (
		snapBufs  map[string][]byte
		snapOrder []string
		unacked   int
	)
	sawWelcome := false
	for {
		conn.SetReadDeadline(time.Now().Add(6 * hb)) //nolint:errcheck
		body, err := readFrame(br)
		if err != nil {
			return err
		}
		fr, err := decodeFrame(body)
		if err != nil {
			return err
		}
		if fr.kind == kindAck || fr.kind == kindHello {
			return fmt.Errorf("%w: unexpected kind %d from primary", ErrBadFrame, fr.kind)
		}
		// Fencing: every primary frame carries the epoch. Anything below
		// the highest we have ever seen is a partitioned ex-primary.
		if err := f.noteEpoch(fr.epoch); err != nil {
			return err
		}
		f.touch()

		switch fr.kind {
		case kindWelcome:
			if fr.version != ProtoVersion {
				return fmt.Errorf("repl: protocol version mismatch (primary %d, local %d)", fr.version, ProtoVersion)
			}
			sawWelcome = true
			if !fr.resync && fr.startSeq != lastSeq+1 {
				return fmt.Errorf("repl: primary resumes at %d, expected %d", fr.startSeq, lastSeq+1)
			}
			if fr.resync {
				snapBufs = make(map[string][]byte)
			}
		case kindSnap:
			if !sawWelcome {
				return fmt.Errorf("%w: snap before welcome", ErrBadFrame)
			}
			if snapBufs == nil {
				snapBufs = make(map[string][]byte) // mid-stream resync
			}
			buf, seen := snapBufs[fr.id]
			if !seen {
				snapOrder = append(snapOrder, fr.id)
			}
			if len(buf)+len(fr.chunk) > snapshot.MaxSnapshot {
				return fmt.Errorf("repl: shipped snapshot %q exceeds %d bytes", fr.id, snapshot.MaxSnapshot)
			}
			snapBufs[fr.id] = append(buf, fr.chunk...)
		case kindSnapDone:
			if snapBufs == nil {
				return fmt.Errorf("%w: snap-done without snaps", ErrBadFrame)
			}
			if uint64(len(snapBufs)) != fr.sessions {
				return fmt.Errorf("repl: dump shipped %d sessions, announced %d", len(snapBufs), fr.sessions)
			}
			snaps := make([]Snapshot, 0, len(snapOrder))
			for _, id := range snapOrder {
				snaps = append(snaps, Snapshot{ID: id, Data: snapBufs[id]})
			}
			if err := f.app.Resync(snaps, fr.resume); err != nil {
				return fmt.Errorf("repl: resync failed: %w", err)
			}
			f.metricAdd("repl_resyncs_total", 1)
			f.opt.Logger.Info("repl: resynced from snapshot ship", "sessions", len(snaps), "resume", fr.resume)
			snapBufs, snapOrder = nil, nil
			lastSeq, _ = f.app.LastApplied()
			f.publishLag()
			if err := f.ack(conn); err != nil {
				return err
			}
		case kindRecord:
			if !sawWelcome {
				return fmt.Errorf("%w: record before welcome", ErrBadFrame)
			}
			if fr.seq != lastSeq+1 {
				return fmt.Errorf("repl: record seq %d, expected %d", fr.seq, lastSeq+1)
			}
			if err := f.app.Apply(fr.seq, fr.payload); err != nil {
				return fmt.Errorf("repl: apply seq %d: %w", fr.seq, err)
			}
			lastSeq = fr.seq
			f.metricAdd("repl_records_applied_total", 1)
			f.notePrimaryLast(fr.seq)
			f.publishLag()
			if unacked++; unacked >= ackEvery {
				if err := f.ack(conn); err != nil {
					return err
				}
				unacked = 0
			}
		case kindHeartbeat:
			f.notePrimaryLast(fr.lastSeq)
			f.publishLag()
			if err := f.ack(conn); err != nil {
				return err
			}
			unacked = 0
		}
	}
}

// noteEpoch enforces the fencing invariant and persists a newly seen
// higher epoch before accepting anything stamped with it.
func (f *Follower) noteEpoch(epoch uint64) error {
	f.mu.Lock()
	cur := f.epoch
	f.mu.Unlock()
	if epoch < cur {
		f.metricAdd("repl_epoch_rejected_total", 1)
		return fmt.Errorf("%w: frame epoch %d < seen %d", ErrFenced, epoch, cur)
	}
	if epoch > cur {
		if f.opt.PersistEpoch != nil {
			if err := f.opt.PersistEpoch(epoch); err != nil {
				return fmt.Errorf("repl: persisting epoch %d: %w", epoch, err)
			}
		}
		f.mu.Lock()
		if epoch > f.epoch {
			f.epoch = epoch
		}
		f.mu.Unlock()
		f.setGauge("repl_epoch", int64(epoch))
		f.opt.Logger.Info("repl: epoch advanced", "epoch", epoch)
	}
	return nil
}

func (f *Follower) ack(conn net.Conn) error {
	applied, _ := f.app.LastApplied()
	conn.SetWriteDeadline(time.Now().Add(6 * f.opt.Heartbeat)) //nolint:errcheck
	_, err := writeFrame(conn, encodeAck(applied))
	return err
}

func (f *Follower) touch() {
	f.mu.Lock()
	f.lastContact = time.Now()
	f.mu.Unlock()
}

func (f *Follower) notePrimaryLast(seq uint64) {
	f.mu.Lock()
	if seq > f.primaryLast {
		f.primaryLast = seq
	}
	f.mu.Unlock()
}

// publishLag refreshes the sequence-lag gauge (primaryLast - applied).
func (f *Follower) publishLag() {
	st := f.Status()
	lag := int64(0)
	if st.PrimaryLast > st.Applied {
		lag = int64(st.PrimaryLast - st.Applied)
	}
	f.setGauge("repl_lag_seqs", lag)
}

// sleep waits d or until Stop; false means stopping.
func (f *Follower) sleep(d time.Duration) bool {
	select {
	case <-f.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// nextBackoff doubles with jitter, capped at 3s.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

func (f *Follower) metricAdd(name string, delta int64) {
	if f.opt.Metrics != nil {
		f.opt.Metrics.Add(name, delta)
	}
}

func (f *Follower) setGauge(name string, v int64) {
	if f.opt.Metrics != nil {
		f.opt.Metrics.SetGauge(name, v)
	}
}
