package term

// Bindings is a substitution from variables to terms with an undo trail, so
// join loops can bind, descend and backtrack without reallocating. A
// variable is bound at most once; bindings never form chains because Bind
// resolves its value argument first.
//
// Bindings live in a dense slice indexed by variable ID rather than a map:
// the join hot path does a lookup, a bind and an undo per probed tuple, and
// flat-array access keeps all three allocation-free.
type Bindings struct {
	s     *Store
	vals  []ID // vals[v] = bound term of variable v, or None if unbound
	trail []ID
	rbuf  []ID // scratch stack for Resolve's rebuilt argument lists
}

// NewBindings returns an empty substitution over the given store.
func NewBindings(s *Store) *Bindings {
	return &Bindings{s: s}
}

// Len reports the number of bound variables.
func (b *Bindings) Len() int { return len(b.trail) }

// Mark returns an opaque position in the trail; passing it to Undo removes
// every binding made since.
func (b *Bindings) Mark() int { return len(b.trail) }

// Undo removes all bindings recorded after mark.
func (b *Bindings) Undo(mark int) {
	for len(b.trail) > mark {
		v := b.trail[len(b.trail)-1]
		b.trail = b.trail[:len(b.trail)-1]
		b.vals[v] = None
	}
}

// Reset removes every binding.
func (b *Bindings) Reset() {
	b.Undo(0)
}

// Lookup returns the binding of variable v, or None if unbound.
func (b *Bindings) Lookup(v ID) ID { return b.lookup(v) }

func (b *Bindings) lookup(v ID) ID {
	if int(v) < len(b.vals) {
		return b.vals[v]
	}
	return None
}

// set records v := t on the trail, growing vals on demand. Growth targets
// the store size so a warm Bindings stops growing once every variable in
// play has an ID below len(vals).
func (b *Bindings) set(v, t ID) {
	if int(v) >= len(b.vals) {
		n := b.s.Len()
		if n <= int(v) {
			n = int(v) + 1
		}
		for len(b.vals) < n {
			b.vals = append(b.vals, None)
		}
	}
	b.vals[v] = t
	b.trail = append(b.trail, v)
}

// Bind records v := t (t is resolved through the current bindings first).
// It panics if v is not a variable or is already bound; callers check with
// Lookup or use Match/Unify.
func (b *Bindings) Bind(v, t ID) {
	if b.s.Kind(v) != Var {
		panic("term: Bind on non-variable " + b.s.String(v))
	}
	if b.lookup(v) != None {
		panic("term: Bind on already-bound variable " + b.s.String(v))
	}
	b.set(v, b.Resolve(t))
}

// Resolve applies the substitution to t, rebuilding compound terms as
// needed. Unbound variables stay put.
func (b *Bindings) Resolve(t ID) ID {
	s := b.s
	c := &s.cells[t]
	switch c.kind {
	case Const:
		return t
	case Var:
		if u := b.lookup(t); u != None {
			return u
		}
		return t
	default:
		if c.ground {
			return t
		}
		// Interning below may grow s.cells; copy the fields we need first.
		name, args := c.name, c.args
		mark := len(b.rbuf)
		changed := false
		for _, a := range args {
			ra := b.Resolve(a)
			changed = changed || ra != a
			b.rbuf = append(b.rbuf, ra)
		}
		if !changed {
			b.rbuf = b.rbuf[:mark]
			return t
		}
		id := s.Intern(name, b.rbuf[mark:])
		b.rbuf = b.rbuf[:mark]
		return id
	}
}

// Match attempts one-way matching of pattern against a ground term: only
// variables of the pattern may be bound. On failure the bindings are
// restored to their state at entry. The ground argument must be ground.
func (b *Bindings) Match(pattern, ground ID) bool {
	mark := b.Mark()
	if b.match(pattern, ground) {
		return true
	}
	b.Undo(mark)
	return false
}

func (b *Bindings) match(pattern, ground ID) bool {
	s := b.s
	pc := &s.cells[pattern]
	switch pc.kind {
	case Const:
		return pattern == ground
	case Var:
		if t := b.lookup(pattern); t != None {
			return t == ground
		}
		b.set(pattern, ground)
		return true
	default:
		if pc.ground {
			return pattern == ground
		}
		gc := &s.cells[ground]
		if gc.kind != Comp || gc.name != pc.name || len(gc.args) != len(pc.args) {
			return false
		}
		for i := range pc.args {
			if !b.match(pc.args[i], gc.args[i]) {
				return false
			}
		}
		return true
	}
}

// Unify attempts full unification of a and b under the current bindings,
// with occurs-check. On failure the bindings are restored.
func (b *Bindings) Unify(x, y ID) bool {
	mark := b.Mark()
	if b.unify(x, y) {
		return true
	}
	b.Undo(mark)
	return false
}

func (b *Bindings) unify(x, y ID) bool {
	x, y = b.walk(x), b.walk(y)
	if x == y {
		return true
	}
	s := b.s
	xc, yc := &s.cells[x], &s.cells[y]
	switch {
	case xc.kind == Var:
		t := b.Resolve(y)
		if b.occurs(x, t) {
			return false
		}
		b.set(x, t)
		return true
	case yc.kind == Var:
		return b.unify(y, x)
	case xc.kind == Comp && yc.kind == Comp:
		if xc.name != yc.name || len(xc.args) != len(yc.args) {
			return false
		}
		for i := range xc.args {
			if !b.unify(xc.args[i], yc.args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// walk follows a variable to its binding, if any.
func (b *Bindings) walk(t ID) ID {
	for b.s.Kind(t) == Var {
		u := b.lookup(t)
		if u == None {
			return t
		}
		t = u
	}
	return t
}

// occurs reports whether variable v occurs in t (after resolution).
func (b *Bindings) occurs(v, t ID) bool {
	c := &b.s.cells[t]
	switch c.kind {
	case Var:
		return t == v
	case Comp:
		if c.ground {
			return false
		}
		for _, a := range c.args {
			if b.occurs(v, a) {
				return true
			}
		}
	}
	return false
}
