package term

import "repro/internal/snapshot"

// EncodeSnapshot writes the store's full contents — every interned cell in
// ID order, plus the fresh-variable counter — into w. Because IDs are
// dense and assigned in insertion order, replaying the cells into an empty
// store on decode reproduces exactly the same ID for every term, so IDs
// persisted elsewhere in the snapshot (tuples, rule atoms) remain valid
// without a remap table.
func (s *Store) EncodeSnapshot(w *snapshot.Writer) {
	w.Uvarint(uint64(len(s.cells)))
	for _, c := range s.cells {
		w.Byte(byte(c.kind))
		w.String(c.name)
		if c.kind == Comp {
			w.Uvarint(uint64(len(c.args)))
			for _, a := range c.args {
				w.Uvarint(uint64(a))
			}
		}
	}
	w.Uvarint(uint64(s.fresh))
}

// DecodeStoreSnapshot rebuilds a store from r by re-interning every cell
// in ID order. It validates what the interning functions would otherwise
// panic on — argument references must point backward, compounds must have
// at least one argument — and additionally checks that re-interning cell i
// yields ID i: a duplicate cell in corrupt input would silently shift all
// later IDs, so it is rejected here rather than surfacing as garbled terms
// downstream.
func DecodeStoreSnapshot(r *snapshot.Reader) (*Store, error) {
	n := r.Count(2) // kind byte + name length byte minimum
	s := NewStore()
	var args []ID
	for i := 0; i < n; i++ {
		kind := Kind(r.Byte())
		name := r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		var id ID
		switch kind {
		case Const:
			id = s.Constant(name)
		case Var:
			id = s.Variable(name)
		case Comp:
			nArgs := r.Count(1)
			if r.Err() != nil {
				return nil, r.Err()
			}
			if nArgs == 0 {
				r.Failf("zero-ary compound %q", name)
				return nil, r.Err()
			}
			args = args[:0]
			for j := 0; j < nArgs; j++ {
				a := r.Uvarint()
				if r.Err() != nil {
					return nil, r.Err()
				}
				if a >= uint64(i) {
					r.Failf("forward term reference %d in cell %d", a, i)
					return nil, r.Err()
				}
				args = append(args, ID(a))
			}
			id = s.Compound(name, args...)
		default:
			r.Failf("unknown term kind %d", kind)
			return nil, r.Err()
		}
		if id != ID(i) {
			r.Failf("duplicate cell %d re-interned as %d", i, id)
			return nil, r.Err()
		}
	}
	fresh := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.fresh = int(fresh)
	return s, nil
}
