package term

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashConsingConstants(t *testing.T) {
	s := NewStore()
	a := s.Constant("a")
	b := s.Constant("b")
	a2 := s.Constant("a")
	if a != a2 {
		t.Fatalf("constant a interned twice: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatalf("distinct constants share ID %d", a)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Kind(a) != Const || s.Name(a) != "a" {
		t.Fatalf("bad cell for a: kind=%v name=%q", s.Kind(a), s.Name(a))
	}
	if !s.IsGround(a) {
		t.Fatal("constant not ground")
	}
}

func TestHashConsingVariablesAndCompounds(t *testing.T) {
	s := NewStore()
	x := s.Variable("X")
	y := s.Variable("Y")
	if x == y {
		t.Fatal("distinct variables share ID")
	}
	if s.IsGround(x) {
		t.Fatal("variable reported ground")
	}
	c := s.Constant("c")
	f1 := s.Compound("f", x, c)
	f2 := s.Compound("f", x, c)
	if f1 != f2 {
		t.Fatalf("compound interned twice: %d vs %d", f1, f2)
	}
	f3 := s.Compound("f", c, x)
	if f1 == f3 {
		t.Fatal("argument order ignored in hash-consing")
	}
	g := s.Compound("g", x, c)
	if g == f1 {
		t.Fatal("functor ignored in hash-consing")
	}
	if s.IsGround(f1) {
		t.Fatal("f(X,c) reported ground")
	}
	gr := s.Compound("f", c, c)
	if !s.IsGround(gr) {
		t.Fatal("f(c,c) reported non-ground")
	}
}

func TestDepth(t *testing.T) {
	s := NewStore()
	c := s.Constant("c")
	if s.Depth(c) != 0 {
		t.Fatalf("Depth(c)=%d", s.Depth(c))
	}
	f := s.Compound("f", c)
	ff := s.Compound("f", f)
	fff := s.Compound("f", ff, c)
	if s.Depth(f) != 1 || s.Depth(ff) != 2 || s.Depth(fff) != 3 {
		t.Fatalf("depths: %d %d %d", s.Depth(f), s.Depth(ff), s.Depth(fff))
	}
}

func TestStringRendering(t *testing.T) {
	s := NewStore()
	x := s.Variable("X")
	c := s.Constant("c7")
	f := s.Compound("f", c, s.Compound("g", x, c))
	if got, want := s.String(f), "f(c7,g(X,c7))"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestVarsCollection(t *testing.T) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	c := s.Constant("c")
	tm := s.Compound("f", x, s.Compound("g", y, x), c)
	vars := s.Vars(nil, tm)
	if len(vars) != 2 || vars[0] != x || vars[1] != y {
		t.Fatalf("Vars = %v, want [X Y] ids", vars)
	}
}

func TestFreshVar(t *testing.T) {
	s := NewStore()
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		v := s.FreshVar("v")
		if seen[v] {
			t.Fatalf("FreshVar repeated %v", s.String(v))
		}
		seen[v] = true
	}
}

func TestMatchGround(t *testing.T) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	a, bc := s.Constant("a"), s.Constant("b")
	pat := s.Compound("f", x, s.Compound("g", x, y))
	g1 := s.Compound("f", a, s.Compound("g", a, bc))
	g2 := s.Compound("f", a, s.Compound("g", bc, bc))

	b := NewBindings(s)
	if !b.Match(pat, g1) {
		t.Fatal("expected match")
	}
	if b.Lookup(x) != a || b.Lookup(y) != bc {
		t.Fatalf("bindings X=%v Y=%v", b.Lookup(x), b.Lookup(y))
	}
	b.Reset()
	if b.Match(pat, g2) {
		t.Fatal("matched with inconsistent X")
	}
	if b.Len() != 0 {
		t.Fatal("failed match left bindings behind")
	}
}

func TestMatchRespectsExistingBindings(t *testing.T) {
	s := NewStore()
	x := s.Variable("X")
	a, c := s.Constant("a"), s.Constant("c")
	b := NewBindings(s)
	b.Bind(x, a)
	if b.Match(x, c) {
		t.Fatal("match ignored existing binding")
	}
	if !b.Match(x, a) {
		t.Fatal("match failed against own binding")
	}
}

func TestMarkUndo(t *testing.T) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	a := s.Constant("a")
	b := NewBindings(s)
	b.Bind(x, a)
	m := b.Mark()
	b.Bind(y, a)
	if b.Lookup(y) != a {
		t.Fatal("bind lost")
	}
	b.Undo(m)
	if b.Lookup(y) != None {
		t.Fatal("undo did not remove Y")
	}
	if b.Lookup(x) != a {
		t.Fatal("undo removed too much")
	}
}

func TestUnifyBasics(t *testing.T) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	a := s.Constant("a")
	fxa := s.Compound("f", x, a)
	fay := s.Compound("f", a, y)
	b := NewBindings(s)
	if !b.Unify(fxa, fay) {
		t.Fatal("f(X,a) should unify with f(a,Y)")
	}
	if b.Resolve(x) != a || b.Resolve(y) != a {
		t.Fatalf("X=%s Y=%s", s.String(b.Resolve(x)), s.String(b.Resolve(y)))
	}
}

func TestUnifyOccursCheck(t *testing.T) {
	s := NewStore()
	x := s.Variable("X")
	fx := s.Compound("f", x)
	b := NewBindings(s)
	if b.Unify(x, fx) {
		t.Fatal("occurs-check failed: X unified with f(X)")
	}
	if b.Len() != 0 {
		t.Fatal("failed unify left bindings")
	}
}

func TestUnifyVarVar(t *testing.T) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	a := s.Constant("a")
	b := NewBindings(s)
	if !b.Unify(x, y) {
		t.Fatal("var-var unify failed")
	}
	if !b.Unify(x, a) {
		t.Fatal("binding through chain failed")
	}
	if b.Resolve(y) != a {
		t.Fatalf("Y resolved to %s, want a", s.String(b.Resolve(y)))
	}
}

func TestResolveRebuildsCompounds(t *testing.T) {
	s := NewStore()
	x := s.Variable("X")
	a := s.Constant("a")
	f := s.Compound("f", x, x)
	b := NewBindings(s)
	b.Bind(x, a)
	r := b.Resolve(f)
	if s.String(r) != "f(a,a)" {
		t.Fatalf("Resolve = %s", s.String(r))
	}
	if !s.IsGround(r) {
		t.Fatal("resolved term not ground")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	s := NewStore()
	a, b := s.Constant("a"), s.Constant("b")
	x := s.Variable("X")
	fa := s.Compound("f", a)
	fb := s.Compound("f", b)
	ids := []ID{fb, x, b, fa, a}
	s.SortIDs(ids)
	want := []ID{a, b, x, fa, fb}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", ids, want)
		}
	}
	for _, i := range ids {
		if s.Compare(i, i) != 0 {
			t.Fatal("Compare(t,t) != 0")
		}
	}
}

func TestExternInternRoundTrip(t *testing.T) {
	s1 := NewStore()
	x := s1.Variable("X")
	c := s1.Constant("c")
	tm := s1.Compound("f", c, s1.Compound("g", x, c))

	e := s1.Externalize(tm)
	s2 := NewStore()
	// Pre-populate s2 with junk so IDs differ between stores.
	s2.Constant("zzz")
	got := s2.Internalize(e)
	if s2.String(got) != s1.String(tm) {
		t.Fatalf("round-trip %q != %q", s2.String(got), s1.String(tm))
	}
	// Re-interning into the origin store must be a no-op ID-wise.
	if back := s1.Internalize(e); back != tm {
		t.Fatalf("re-intern changed ID: %d vs %d", back, tm)
	}
}

func TestExternTupleRoundTrip(t *testing.T) {
	s1, s2 := NewStore(), NewStore()
	tuple := []ID{s1.Constant("a"), s1.Compound("f", s1.Constant("b"))}
	wire := s1.ExternalizeTuple(tuple)
	back := s2.InternalizeTuple(wire)
	if len(back) != 2 || s2.String(back[0]) != "a" || s2.String(back[1]) != "f(b)" {
		t.Fatalf("tuple round-trip failed: %v", back)
	}
}

// randomTerm builds a random term over a small vocabulary.
func randomTerm(s *Store, r *rand.Rand, depth int) ID {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return s.Constant(string(rune('a' + r.Intn(4))))
		}
		return s.Variable(string(rune('X' + r.Intn(3))))
	}
	n := 1 + r.Intn(3)
	args := make([]ID, n)
	for i := range args {
		args[i] = randomTerm(s, r, depth-1)
	}
	return s.Compound(string(rune('f'+r.Intn(2))), args...)
}

// Property: hash-consing means structural equality iff ID equality, which we
// proxy through the rendered string (rendering is injective for our grammar).
func TestQuickHashConsIffStringEqual(t *testing.T) {
	s := NewStore()
	f := func(seed1, seed2 int64) bool {
		t1 := randomTerm(s, rand.New(rand.NewSource(seed1)), 3)
		t2 := randomTerm(s, rand.New(rand.NewSource(seed2)), 3)
		return (t1 == t2) == (s.String(t1) == s.String(t2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a successful unification produces a common instance.
func TestQuickUnifyProducesCommonInstance(t *testing.T) {
	s := NewStore()
	f := func(seed1, seed2 int64) bool {
		r1, r2 := rand.New(rand.NewSource(seed1)), rand.New(rand.NewSource(seed2))
		t1, t2 := randomTerm(s, r1, 3), randomTerm(s, r2, 3)
		b := NewBindings(s)
		if !b.Unify(t1, t2) {
			return true
		}
		return b.Resolve(t1) == b.Resolve(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: matching a pattern against the result of grounding it succeeds.
func TestQuickMatchOwnInstance(t *testing.T) {
	s := NewStore()
	a := s.Constant("a0")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randomTerm(s, r, 3)
		b := NewBindings(s)
		for _, v := range s.Vars(nil, pat) {
			b.Bind(v, a)
		}
		ground := b.Resolve(pat)
		if !s.IsGround(ground) {
			return false
		}
		b2 := NewBindings(s)
		return b2.Match(pat, ground)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: extern/intern across stores preserves rendering.
func TestQuickWireRoundTrip(t *testing.T) {
	src := NewStore()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm := randomTerm(src, r, 4)
		dst := NewStore()
		return dst.String(dst.Internalize(src.Externalize(tm))) == src.String(tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInternCompound(b *testing.B) {
	s := NewStore()
	c := s.Constant("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Compound("f", c, c)
	}
}

func BenchmarkMatch(b *testing.B) {
	s := NewStore()
	x, y := s.Variable("X"), s.Variable("Y")
	a, c := s.Constant("a"), s.Constant("c")
	pat := s.Compound("f", x, s.Compound("g", x, y))
	g := s.Compound("f", a, s.Compound("g", a, c))
	bd := NewBindings(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bd.Mark()
		if !bd.Match(pat, g) {
			b.Fatal("match failed")
		}
		bd.Undo(m)
	}
}
