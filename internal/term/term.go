// Package term implements the term algebra underlying dDatalog: constants,
// variables and compound terms built from function symbols (the paper's
// Skolem functions f, g, h that name unfolding nodes).
//
// Terms are hash-consed: each structurally distinct term is stored exactly
// once in a Store and is identified by a dense ID. Tuples, atoms and
// substitutions all manipulate IDs, so equality is integer comparison and
// joins hash machine words rather than strings.
package term

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a term within its Store. IDs are dense, starting at 0, in
// insertion order. The zero Store has no terms, so any ID must come from
// the Store it is used with.
type ID int32

// None is the invalid ID. It is returned by lookups that find nothing and
// is never a valid index into a Store.
const None ID = -1

// Kind discriminates the three term shapes.
type Kind uint8

// The three kinds of terms.
const (
	Const Kind = iota // an uninterpreted constant, e.g. p1, "1", c7
	Var               // a variable, e.g. X, Y
	Comp              // a compound term f(t1, ..., tn) with n >= 1
)

func (k Kind) String() string {
	switch k {
	case Const:
		return "const"
	case Var:
		return "var"
	case Comp:
		return "comp"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// cell is the interned representation of one term.
type cell struct {
	kind   Kind
	name   string // constant symbol, variable name, or functor
	args   []ID   // nil unless kind == Comp
	ground bool   // no variable occurs anywhere inside
	depth  int32  // 0 for constants and variables, 1+max(args) for compounds
}

// Store hash-conses terms. It is not safe for concurrent mutation; the
// distributed runtime gives each peer its own Store and exchanges terms in
// a portable wire form (see Extern/Intern).
type Store struct {
	cells   []cell
	consts  map[string]ID
	vars    map[string]ID
	compTab idTable // hash-cons table for compound terms
	fresh   int     // counter for FreshVar
}

// NewStore returns an empty term store.
func NewStore() *Store {
	return &Store{
		consts: make(map[string]ID),
		vars:   make(map[string]ID),
	}
}

// Len reports the number of distinct terms interned so far.
func (s *Store) Len() int { return len(s.cells) }

// Constant interns the constant with the given symbol.
func (s *Store) Constant(symbol string) ID {
	if id, ok := s.consts[symbol]; ok {
		return id
	}
	id := ID(len(s.cells))
	s.cells = append(s.cells, cell{kind: Const, name: symbol, ground: true})
	s.consts[symbol] = id
	return id
}

// Variable interns the variable with the given name.
func (s *Store) Variable(name string) ID {
	if id, ok := s.vars[name]; ok {
		return id
	}
	id := ID(len(s.cells))
	s.cells = append(s.cells, cell{kind: Var, name: name})
	s.vars[name] = id
	return id
}

// FreshVar interns a variable guaranteed not to clash with any variable
// interned so far. The prefix is cosmetic.
func (s *Store) FreshVar(prefix string) ID {
	for {
		s.fresh++
		name := fmt.Sprintf("%s_%d", prefix, s.fresh)
		if _, ok := s.vars[name]; !ok {
			return s.Variable(name)
		}
	}
}

// idTable is an open-addressing (linear probing, power-of-two sized) hash
// set of interned compound IDs keyed by (functor, args). Hashing runs over
// the argument IDs directly, so interning a compound on the join hot path
// never materializes a string key.
type idTable struct {
	slots []ID // interned IDs; None marks an empty slot
	n     int
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString is FNV-1a over the bytes of s.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashIDs folds args into seed with FNV-1a and finalizes with a 64-bit
// avalanche so nearby IDs spread across the table.
func hashIDs(seed uint64, args []ID) uint64 {
	h := seed
	for _, a := range args {
		h ^= uint64(uint32(a))
		h *= fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func eqIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compound interns the term functor(args...). It panics if args is empty:
// zero-ary function symbols are constants.
func (s *Store) Compound(functor string, args ...ID) ID {
	return s.Intern(functor, args)
}

// Intern interns functor(args...) without taking ownership of args: the
// slice is copied only when the term is new. It is the allocation-free form
// of Compound used on hot paths.
func (s *Store) Intern(functor string, args []ID) ID {
	if len(args) == 0 {
		panic("term: Compound with no arguments; use Constant")
	}
	if len(s.compTab.slots) == 0 {
		s.compTab.slots = make([]ID, 16)
		for i := range s.compTab.slots {
			s.compTab.slots[i] = None
		}
	}
	h := hashIDs(hashString(functor), args)
	mask := uint64(len(s.compTab.slots) - 1)
	i := h & mask
	for {
		id := s.compTab.slots[i]
		if id == None {
			break
		}
		c := &s.cells[id]
		if c.name == functor && eqIDs(c.args, args) {
			return id
		}
		i = (i + 1) & mask
	}
	ground := true
	depth := int32(0)
	for _, a := range args {
		c := &s.cells[a]
		ground = ground && c.ground
		if c.depth+1 > depth {
			depth = c.depth + 1
		}
	}
	cp := make([]ID, len(args))
	copy(cp, args)
	id := ID(len(s.cells))
	s.cells = append(s.cells, cell{kind: Comp, name: functor, args: cp, ground: ground, depth: depth})
	s.compTab.slots[i] = id
	s.compTab.n++
	if s.compTab.n*4 >= len(s.compTab.slots)*3 {
		s.growCompTab()
	}
	return id
}

// growCompTab doubles the hash-cons table and reinserts every compound.
func (s *Store) growCompTab() {
	old := s.compTab.slots
	slots := make([]ID, 2*len(old))
	for i := range slots {
		slots[i] = None
	}
	mask := uint64(len(slots) - 1)
	for _, id := range old {
		if id == None {
			continue
		}
		c := &s.cells[id]
		j := hashIDs(hashString(c.name), c.args) & mask
		for slots[j] != None {
			j = (j + 1) & mask
		}
		slots[j] = id
	}
	s.compTab.slots = slots
}

// Kind reports the kind of t.
func (s *Store) Kind(t ID) Kind { return s.cells[t].kind }

// Name returns the constant symbol, variable name or functor of t.
func (s *Store) Name(t ID) string { return s.cells[t].name }

// Args returns the argument list of a compound term, or nil for constants
// and variables. The returned slice must not be modified.
func (s *Store) Args(t ID) []ID { return s.cells[t].args }

// IsGround reports whether no variable occurs in t.
func (s *Store) IsGround(t ID) bool { return s.cells[t].ground }

// Depth returns the nesting depth of t: 0 for constants and variables,
// 1 + max over arguments for compounds. Used to bound Skolem growth.
func (s *Store) Depth(t ID) int { return int(s.cells[t].depth) }

// LookupConstant returns the ID of an already-interned constant, or None.
func (s *Store) LookupConstant(symbol string) ID {
	if id, ok := s.consts[symbol]; ok {
		return id
	}
	return None
}

// Vars appends to dst the set of distinct variables occurring in t, in
// first-occurrence order, and returns the extended slice.
func (s *Store) Vars(dst []ID, t ID) []ID {
	switch c := &s.cells[t]; c.kind {
	case Var:
		for _, v := range dst {
			if v == t {
				return dst
			}
		}
		return append(dst, t)
	case Comp:
		if c.ground {
			return dst
		}
		for _, a := range c.args {
			dst = s.Vars(dst, a)
		}
	}
	return dst
}

// String renders t in standard Datalog syntax. Variables print as their
// name; constants likewise; compounds as functor(arg, ...).
func (s *Store) String(t ID) string {
	var b strings.Builder
	s.writeTerm(&b, t)
	return b.String()
}

func (s *Store) writeTerm(b *strings.Builder, t ID) {
	c := &s.cells[t]
	b.WriteString(c.name)
	if c.kind == Comp {
		b.WriteByte('(')
		for i, a := range c.args {
			if i > 0 {
				b.WriteByte(',')
			}
			s.writeTerm(b, a)
		}
		b.WriteByte(')')
	}
}

// Compare orders two terms structurally: constants < variables < compounds,
// then by name, then lexicographically by arguments. It induces a total
// order suitable for canonical printing of relations.
func (s *Store) Compare(a, b ID) int {
	if a == b {
		return 0
	}
	ca, cb := &s.cells[a], &s.cells[b]
	if ca.kind != cb.kind {
		return int(ca.kind) - int(cb.kind)
	}
	if ca.name != cb.name {
		if ca.name < cb.name {
			return -1
		}
		return 1
	}
	if len(ca.args) != len(cb.args) {
		return len(ca.args) - len(cb.args)
	}
	for i := range ca.args {
		if c := s.Compare(ca.args[i], cb.args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// SortIDs sorts ids in the canonical structural order of the store.
func (s *Store) SortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return s.Compare(ids[i], ids[j]) < 0 })
}
