package term

import (
	"fmt"
	"strings"
)

// Extern is the store-independent form of a tuple of terms, used to ship
// facts between peers (each peer owns a private Store). It preserves the
// sharing of the hash-consed representation: nodes are listed once, in an
// order where arguments precede their users, so encoding and decoding are
// linear in the DAG size even for terms whose tree expansion is
// exponential (deep Skolem terms of the unfolding programs).
type Extern struct {
	Nodes []ExternNode
	Roots []int32 // indexes into Nodes, one per tuple column
}

// ExternNode is one shared term node.
type ExternNode struct {
	Kind Kind
	Name string
	Args []int32 // indexes of earlier nodes; nil unless Kind == Comp
}

// externBuilder deduplicates nodes during encoding.
type externBuilder struct {
	s     *Store
	e     *Extern
	index map[ID]int32
}

func (b *externBuilder) visit(t ID) int32 {
	if i, ok := b.index[t]; ok {
		return i
	}
	c := &b.s.cells[t]
	var args []int32
	if c.kind == Comp {
		args = make([]int32, len(c.args))
		for i, a := range c.args {
			args[i] = b.visit(a)
		}
	}
	i := int32(len(b.e.Nodes))
	b.e.Nodes = append(b.e.Nodes, ExternNode{Kind: c.kind, Name: c.name, Args: args})
	b.index[t] = i
	return i
}

// ExternalizeTuple encodes a tuple of terms.
func (s *Store) ExternalizeTuple(tuple []ID) Extern {
	b := &externBuilder{s: s, e: &Extern{}, index: make(map[ID]int32)}
	for _, t := range tuple {
		b.e.Roots = append(b.e.Roots, b.visit(t))
	}
	return *b.e
}

// Externalize encodes a single term.
func (s *Store) Externalize(t ID) Extern {
	return s.ExternalizeTuple([]ID{t})
}

// InternalizeTuple interns the encoded tuple into s and returns the local
// IDs of its columns.
func (s *Store) InternalizeTuple(e Extern) []ID {
	ids := make([]ID, len(e.Nodes))
	for i, n := range e.Nodes {
		switch n.Kind {
		case Const:
			ids[i] = s.Constant(n.Name)
		case Var:
			ids[i] = s.Variable(n.Name)
		case Comp:
			args := make([]ID, len(n.Args))
			for j, a := range n.Args {
				if a >= int32(i) {
					panic(fmt.Sprintf("term: extern node %d references later node %d", i, a))
				}
				args[j] = ids[a]
			}
			ids[i] = s.Compound(n.Name, args...)
		default:
			panic(fmt.Sprintf("term: bad extern kind %v", n.Kind))
		}
	}
	out := make([]ID, len(e.Roots))
	for i, r := range e.Roots {
		out[i] = ids[r]
	}
	return out
}

// Internalize interns a single encoded term.
func (s *Store) Internalize(e Extern) ID {
	ids := s.InternalizeTuple(e)
	if len(ids) != 1 {
		panic(fmt.Sprintf("term: Internalize on %d-root extern", len(ids)))
	}
	return ids[0]
}

// String renders the first root in Datalog syntax (tree-expanded; intended
// for small terms and debugging).
func (e Extern) String() string {
	if len(e.Roots) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	e.write(&b, e.Roots[0])
	return b.String()
}

func (e Extern) write(b *strings.Builder, i int32) {
	n := e.Nodes[i]
	b.WriteString(n.Name)
	if n.Kind == Comp {
		b.WriteByte('(')
		for j, a := range n.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			e.write(b, a)
		}
		b.WriteByte(')')
	}
}
