package pool

import (
	"hash/fnv"
	"sort"
	"strings"
)

// WorkerLoad is the scheduler's view of one placeable worker: the load
// sample piggybacked on its last reply or probe.
type WorkerLoad struct {
	Name       string
	Active     int    // live sessions on the worker
	Queued     int    // jobs waiting in its queue
	EWMAMicros uint64 // EWMA append latency
}

// Policy picks a worker for a session. Implementations must be pure
// functions of their arguments (plus immutable configuration): the pool
// calls them under its lock.
type Policy interface {
	// Pick chooses one of the candidates for the session. Candidates are
	// the ready workers not yet tried for this placement; the slice is
	// never empty.
	Pick(session string, candidates []WorkerLoad) string
}

// LeastLoaded places each session on the worker with the fewest
// sessions plus queued jobs, breaking ties by name so placement is
// deterministic under equal load. It is the default policy: simple,
// and self-correcting as load reports flow back on every reply.
type LeastLoaded struct{}

// Pick implements Policy.
func (LeastLoaded) Pick(session string, candidates []WorkerLoad) string {
	best := candidates[0]
	for _, c := range candidates[1:] {
		bl, cl := best.Active+best.Queued, c.Active+c.Queued
		if cl < bl || (cl == bl && c.Name < best.Name) {
			best = c
		}
	}
	return best.Name
}

// ConsistentHash places each session by its position on a hash ring of
// worker virtual nodes, so a session's placement is stable across
// probes and re-placements (its warm dQSQ state stays put) and adding
// or removing one worker only moves the sessions that hashed to it.
type ConsistentHash struct {
	// Replicas is the virtual nodes per worker; 0 means 64.
	Replicas int
}

// Pick implements Policy: the first candidate clockwise from the
// session's hash. The ring is rebuilt per call from the candidate set —
// candidate sets are small (a pool is a handful of workers) and change
// as workers drain or die, so caching would buy complexity, not time.
func (c ConsistentHash) Pick(session string, candidates []WorkerLoad) string {
	replicas := c.Replicas
	if replicas == 0 {
		replicas = 64
	}
	type vnode struct {
		hash uint64
		name string
	}
	ring := make([]vnode, 0, len(candidates)*replicas)
	var b strings.Builder
	for _, cand := range candidates {
		for i := 0; i < replicas; i++ {
			b.Reset()
			b.WriteString(cand.Name)
			b.WriteByte('#')
			b.WriteByte(byte('0' + i%10))
			b.WriteByte(byte('0' + (i/10)%10))
			ring = append(ring, vnode{hash: hash64(b.String()), name: cand.Name})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].name < ring[j].name
	})
	h := hash64(session)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0
	}
	return ring[i].name
}

// hash64 is FNV-1a with a murmur-style finalizer. Plain FNV leaves
// near-identical strings (sequential session IDs, vnode keys) with
// near-identical hashes — fatal for a hash ring, where closeness in
// hash space is closeness on the ring. The avalanche pass spreads them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
