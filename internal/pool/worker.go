package pool

import (
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Backend is the worker-side session service the pool schedules onto.
// internal/serve implements it over its session Store; the pool itself
// stays ignorant of nets, engines and reports — every method trades in
// the JSON response bodies the HTTP layer would have written, so a
// pooled session's responses are byte-identical to a local one's.
type Backend interface {
	// Create admits a session under the frontend-assigned ID and returns
	// the create-response body.
	Create(id, netText, engine string, maxFacts int) ([]byte, error)
	// Append feeds alarm text to the session and returns the
	// append-response body.
	Append(id, alarms string, timeout time.Duration) ([]byte, error)
	// Get returns the session-state response body.
	Get(id string) ([]byte, error)
	// Delete removes the session.
	Delete(id string) error
	// Ship serializes the session's checkpoint (opaque to the pool).
	Ship(id string) ([]byte, error)
	// Load installs a shipped checkpoint, replacing any session already
	// live under the ID.
	Load(id string, checkpoint []byte) error
	// Classify maps a method error onto a wire reply code and an optional
	// Retry-After hint in milliseconds.
	Classify(err error) (code uint32, retryAfterMS uint32)
	// Active counts live sessions (the load sample on every reply).
	Active() int
}

// WorkerConfig tunes a pool worker.
type WorkerConfig struct {
	// Transport receives SessionJob frames and sends SessionReply frames.
	// The worker owns Start; the caller owns Close.
	Transport transport.Transport
	// Backend executes the session operations.
	Backend Backend
	// AdminAddr is this worker's HTTP admin address, advertised on every
	// reply so frontends can health-probe /healthz. Empty disables.
	AdminAddr string
	// Executors is the number of job-executor goroutines; jobs are sharded
	// to them by session ID, so per-session operations are serialized (the
	// idempotent-append dedup depends on that). 0 means 2.
	Executors int
	// QueueDepth bounds each executor's queue; a job arriving past it is
	// refused immediately with SessSaturated. 0 means 64.
	QueueDepth int
	// Metrics receives worker-side counters; nil discards.
	Metrics obs.Registry
	// Logger receives send-failure logs; nil discards.
	Logger *slog.Logger
}

// appliedState is the idempotency record for one session: how many
// appends have been applied, and the last reply sent — a retried or
// hedged duplicate of the latest operation returns the memoized reply
// instead of re-evaluating.
type appliedState struct {
	index     uint64 // appends applied (SessAppend.Index of the last success)
	lastCode  uint32
	lastErr   string
	lastRetry uint32
	lastBlob  []byte
}

// Worker turns a peerd process into a pool member: it accepts
// SessionJob frames, executes them against the Backend (serialized per
// session), and replies with the result plus a load sample. Draining
// refuses new placements (creates and loads) while continuing to serve,
// ship and delete the sessions it holds.
type Worker struct {
	tr        transport.Transport
	backend   Backend
	adminAddr string
	metrics   obs.Registry
	log       *slog.Logger

	queues   []chan wire.SessionJob
	queued   atomic.Int64
	draining atomic.Bool
	ewma     atomic.Uint64 // EWMA append latency, µs

	mu      sync.Mutex
	applied map[string]*appliedState

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewWorker builds a worker; Start begins serving.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = nopRegistry{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	w := &Worker{
		tr:        cfg.Transport,
		backend:   cfg.Backend,
		adminAddr: cfg.AdminAddr,
		metrics:   cfg.Metrics,
		log:       cfg.Logger,
		queues:    make([]chan wire.SessionJob, cfg.Executors),
		applied:   make(map[string]*appliedState),
		stop:      make(chan struct{}),
	}
	for i := range w.queues {
		w.queues[i] = make(chan wire.SessionJob, cfg.QueueDepth)
	}
	return w
}

// Start installs the transport handler and spawns the executors.
func (w *Worker) Start() error {
	if err := w.tr.Start(w.handle); err != nil {
		return err
	}
	for _, q := range w.queues {
		w.wg.Add(1)
		go w.run(q)
	}
	return nil
}

// Close stops the executors. The transport is the caller's to close.
func (w *Worker) Close() {
	close(w.stop)
	w.wg.Wait()
}

// SetDraining flips the drain bit: once set, creates and loads are
// refused with SessDraining so the frontend migrates instead of placing.
func (w *Worker) SetDraining(v bool) { w.draining.Store(v) }

// Draining reports the drain bit (peerd's /healthz surfaces it).
func (w *Worker) Draining() bool { return w.draining.Load() }

// Active counts live sessions on the backend.
func (w *Worker) Active() int { return w.backend.Active() }

// handle is the transport receive path: route the reply, shard to the
// session's executor, shed immediately when that queue is full.
func (w *Worker) handle(from string, f wire.Frame) {
	job, ok := f.(wire.SessionJob)
	if !ok {
		return
	}
	if job.Frontend != "" && job.FrontendAddr != "" {
		w.tr.AddRoute(job.Frontend, job.FrontendAddr)
	}
	if job.Op == wire.SessPing {
		// Answered inline, never queued: a ping is a liveness probe, and a
		// worker grinding through a long evaluation is alive. Queuing it
		// behind session work would read as death to a tight probe deadline.
		// A draining worker answers SessDraining (it still serves what it
		// holds) so frontends migrate even when the admin endpoint is off.
		if w.draining.Load() {
			w.send(job, wire.SessionReply{Code: wire.SessDraining, Err: "pool: worker draining"})
		} else {
			w.send(job, wire.SessionReply{})
		}
		return
	}
	q := w.queues[int(hash64(job.Session)%uint64(len(w.queues)))]
	select {
	case q <- job:
		w.queued.Add(1)
	default:
		w.metrics.Add("pool_worker_shed_total", 1)
		w.send(job, wire.SessionReply{Code: wire.SessSaturated,
			Err: "pool: worker queue full", RetryAfterMS: 1000})
	}
}

func (w *Worker) run(q chan wire.SessionJob) {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case job := <-q:
			w.queued.Add(-1)
			w.exec(job)
		}
	}
}

func (w *Worker) exec(job wire.SessionJob) {
	switch job.Op {
	case wire.SessCreate:
		w.execCreate(job)
	case wire.SessAppend:
		w.execAppend(job)
	case wire.SessGet:
		body, err := w.backend.Get(job.Session)
		w.send(job, w.replyFor(body, err))
	case wire.SessDelete:
		err := w.backend.Delete(job.Session)
		w.mu.Lock()
		delete(w.applied, job.Session)
		w.mu.Unlock()
		w.send(job, w.replyFor(nil, err))
	case wire.SessShip:
		w.execShip(job)
	case wire.SessLoad:
		w.execLoad(job)
	default:
		w.send(job, wire.SessionReply{Code: wire.SessBad, Err: "pool: unknown op"})
	}
}

func (w *Worker) execCreate(job wire.SessionJob) {
	w.mu.Lock()
	st, exists := w.applied[job.Session]
	w.mu.Unlock()
	if exists {
		// A retried create: the first attempt landed. Resend its reply.
		w.send(job, wire.SessionReply{Code: st.lastCode, Err: st.lastErr,
			RetryAfterMS: st.lastRetry, Blob: st.lastBlob})
		return
	}
	if w.draining.Load() {
		w.send(job, wire.SessionReply{Code: wire.SessDraining,
			Err: "pool: worker draining", RetryAfterMS: 1000})
		return
	}
	body, err := w.backend.Create(job.Session, job.NetText, engineName(job.Engine), int(job.MaxFacts))
	rep := w.replyFor(body, err)
	if err == nil {
		w.mu.Lock()
		w.applied[job.Session] = &appliedState{lastBlob: body}
		w.mu.Unlock()
	}
	w.send(job, rep)
}

func (w *Worker) execAppend(job wire.SessionJob) {
	w.mu.Lock()
	st := w.applied[job.Session]
	w.mu.Unlock()
	switch {
	case st == nil:
		w.send(job, wire.SessionReply{Code: wire.SessNotFound, Err: "pool: no such session on worker"})
		return
	case job.Index <= st.index:
		// Duplicate of an already-applied append (retry or hedge): the
		// memoized reply, never a second evaluation.
		w.metrics.Add("pool_worker_dedup_total", 1)
		w.send(job, wire.SessionReply{Code: st.lastCode, Err: st.lastErr,
			RetryAfterMS: st.lastRetry, Blob: st.lastBlob})
		return
	case job.Index != st.index+1:
		w.send(job, wire.SessionReply{Code: wire.SessOutOfSync, Err: "pool: append index gap"})
		return
	}
	start := time.Now()
	body, err := w.backend.Append(job.Session, job.Alarms, timeoutOf(job))
	rep := w.replyFor(body, err)
	if err == nil {
		w.noteAppend(time.Since(start))
		w.mu.Lock()
		st.index = job.Index
		st.lastCode, st.lastErr, st.lastRetry, st.lastBlob = rep.Code, rep.Err, rep.RetryAfterMS, rep.Blob
		w.mu.Unlock()
	}
	w.send(job, rep)
}

func (w *Worker) execShip(job wire.SessionJob) {
	w.mu.Lock()
	st := w.applied[job.Session]
	w.mu.Unlock()
	if st == nil {
		w.send(job, wire.SessionReply{Code: wire.SessNotFound, Err: "pool: no such session on worker"})
		return
	}
	checkpoint, err := w.backend.Ship(job.Session)
	if err != nil {
		w.send(job, w.replyFor(nil, err))
		return
	}
	w.send(job, wire.SessionReply{Blob: encodeShip(st.index, checkpoint)})
}

func (w *Worker) execLoad(job wire.SessionJob) {
	if w.draining.Load() {
		w.send(job, wire.SessionReply{Code: wire.SessDraining,
			Err: "pool: worker draining", RetryAfterMS: 1000})
		return
	}
	idx, checkpoint, err := decodeShip(job.Blob)
	if err != nil {
		w.send(job, wire.SessionReply{Code: wire.SessBad, Err: err.Error()})
		return
	}
	if err := w.backend.Load(job.Session, checkpoint); err != nil {
		w.send(job, w.replyFor(nil, err))
		return
	}
	w.mu.Lock()
	w.applied[job.Session] = &appliedState{index: idx}
	w.mu.Unlock()
	w.send(job, wire.SessionReply{})
}

// replyFor maps a backend result onto a reply via Backend.Classify.
func (w *Worker) replyFor(body []byte, err error) wire.SessionReply {
	if err == nil {
		return wire.SessionReply{Blob: body}
	}
	code, retry := w.backend.Classify(err)
	return wire.SessionReply{Code: code, Err: err.Error(), RetryAfterMS: retry}
}

// send stamps the reply with the echo fields and the load sample, then
// ships it back to the requesting frontend.
func (w *Worker) send(job wire.SessionJob, rep wire.SessionReply) {
	rep.Req, rep.Op, rep.Session = job.Req, job.Op, job.Session
	rep.Active = uint32(w.backend.Active())
	if q := w.queued.Load(); q > 0 {
		rep.Queued = uint32(q)
	}
	rep.EWMAMicros = w.ewma.Load()
	rep.AdminAddr = w.adminAddr
	if job.Frontend == "" {
		return
	}
	if err := w.tr.Send(job.Frontend, rep); err != nil {
		w.log.Warn("pool worker: reply not sent", "frontend", job.Frontend, "err", err)
	}
}

// noteAppend folds one append latency into the EWMA load signal
// (α = 1/4: responsive to shifts, stable under jitter).
func (w *Worker) noteAppend(d time.Duration) {
	sample := uint64(d.Microseconds())
	for {
		old := w.ewma.Load()
		next := sample
		if old != 0 {
			next = old - old/4 + sample/4
		}
		if w.ewma.CompareAndSwap(old, next) {
			return
		}
	}
}

func timeoutOf(job wire.SessionJob) time.Duration {
	if job.TimeoutMS == 0 {
		return 30 * time.Second
	}
	return time.Duration(job.TimeoutMS) * time.Millisecond
}

// engineName maps the wire engine ordinal back to its HTTP-API name.
// Zero means "server default" and stays the empty string.
func engineName(e uint32) string {
	switch e {
	case 1:
		return "direct"
	case 2:
		return "product"
	case 3:
		return "naive"
	case 4:
		return "dqsq"
	default:
		return ""
	}
}

// engineOrdinal is engineName's inverse (the frontend encodes requests).
func engineOrdinal(name string) uint32 {
	switch name {
	case "direct":
		return 1
	case "product":
		return 2
	case "naive":
		return 3
	case "dqsq":
		return 4
	default:
		return 0
	}
}

// nopRegistry discards metrics.
type nopRegistry struct{}

func (nopRegistry) Add(string, int64)             {}
func (nopRegistry) SetGauge(string, int64)        {}
func (nopRegistry) Observe(string, time.Duration) {}
