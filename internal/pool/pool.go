// Package pool schedules diagnosed sessions onto a fleet of peerd
// workers. The paper's dQSQ argument is that diagnosis decomposes
// across autonomous peers; this package applies the same move to the
// serving layer — the frontend stops being the single compute
// bottleneck and becomes a scheduler over workers, each holding the
// warm incremental state of the sessions placed on it.
//
// The frontend keeps a registry of workers (health-probed via SessPing
// frames and the peerd /healthz admin endpoint, load-sampled from every
// reply), a pluggable placement policy (least-loaded by default,
// consistent-hash affinity optionally), and a per-session journal: the
// create parameters, the last shipped checkpoint, and the acknowledged
// appends past it. The journal is what makes worker failure survivable
// — a session is re-materialized on a healthy worker from checkpoint
// plus tail replay, losing nothing that was acknowledged — and what
// makes drain cheap: ship the checkpoint, load it elsewhere, truncate
// the tail.
//
// Appends are idempotent on the wire (1-based indexes, worker-side
// dedup), so dispatch can retry with backoff and hedge stragglers
// without double-evaluating.
package pool

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Worker lifecycle states.
const (
	StateReady    = "ready"
	StateDraining = "draining"
	StateDead     = "dead"
)

// Config tunes a frontend pool.
type Config struct {
	// Transport carries SessionJob/SessionReply frames. The pool owns
	// Start; Close closes it.
	Transport transport.Transport
	// Addr is this frontend's advertised transport address (workers dial
	// back through it). Empty takes the transport's bound address when it
	// has one (TCP); in-process meshes need none.
	Addr string
	// Workers are the worker transport addresses; each doubles as the
	// worker's node name.
	Workers []string
	// Policy places sessions; nil means LeastLoaded.
	Policy Policy
	// Metrics receives the pool_* series; nil discards.
	Metrics obs.Registry
	// RPCMargin pads each request deadline past the evaluation timeout it
	// carries (network + queueing headroom). 0 means 2s.
	RPCMargin time.Duration
	// Retries bounds re-sends of one request after its first attempt.
	// 0 means 2; negative disables.
	Retries int
	// RetryBackoff is the first retry's delay, doubled per retry.
	// 0 means 50ms.
	RetryBackoff time.Duration
	// HedgeAfter re-sends a still-unanswered append after this delay
	// (same index — the worker dedups). 0 derives it from the worker's
	// EWMA append latency; negative disables hedging.
	HedgeAfter time.Duration
	// ProbeEvery is the health-probe period. 0 means 1s.
	ProbeEvery time.Duration
	// FailAfter is the consecutive probe failures that declare a worker
	// dead (triggering re-materialization of its sessions). 0 means 3.
	FailAfter int
	// ShipEvery refreshes a session's journal checkpoint after this many
	// appends since the last one, bounding tail-replay cost. 0 means 16;
	// negative disables (the tail carries everything).
	ShipEvery int
	// Logger receives lifecycle logs; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = LeastLoaded{}
	}
	if c.Metrics == nil {
		c.Metrics = nopRegistry{}
	}
	if c.RPCMargin == 0 {
		c.RPCMargin = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.FailAfter == 0 {
		c.FailAfter = 3
	}
	if c.ShipEvery == 0 {
		c.ShipEvery = 16
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Addr == "" {
		if a, ok := c.Transport.(interface{ Addr() string }); ok {
			c.Addr = a.Addr()
		}
	}
	return c
}

// Result is the outcome of one pooled operation, ready for the HTTP
// layer: a wire code (SessOK plus the worker-rendered response body, or
// an error code with detail and an optional Retry-After hint).
type Result struct {
	Code         uint32
	Err          string
	RetryAfterMS uint32
	Body         []byte
}

// workerState is the registry entry for one worker.
type workerState struct {
	name      string
	state     string
	fails     int // consecutive probe failures
	load      WorkerLoad
	adminAddr string
	migrating bool // a drain/recovery pass is already running
}

// session is the frontend journal for one pooled session: everything
// needed to re-materialize it on another worker. Its mutex serializes
// appends, migration and recovery for the session; the append index
// order is the session's history, so there is exactly one writer.
type session struct {
	id string

	mu        sync.Mutex
	worker    string
	netText   string
	engine    string
	maxFacts  int
	nextIndex uint64 // index the next append will carry (acked appends + 1)
	snapBlob  []byte // last shipped checkpoint (ship-blob encoding); nil before the first ship
	snapIndex uint64 // appends covered by snapBlob
	tail      []string
}

// Pool is the frontend scheduler. All methods are safe for concurrent
// use; operations on one session serialize on its journal.
type Pool struct {
	cfg    Config
	tr     transport.Transport
	self   string
	addr   string
	policy Policy
	m      obs.Registry
	log    *slog.Logger

	mu       sync.Mutex
	workers  map[string]*workerState
	sessions map[string]*session
	reqs     map[uint64]chan wire.SessionReply
	nextReq  uint64
	nextID   uint64

	probeClient *http.Client
	stop        chan struct{}
	done        chan struct{}
}

// New builds the pool, starts its transport handler and health-probe
// loop. At least one worker is required.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("pool: no workers configured")
	}
	p := &Pool{
		cfg:      cfg,
		tr:       cfg.Transport,
		self:     cfg.Transport.Self(),
		addr:     cfg.Addr,
		policy:   cfg.Policy,
		m:        cfg.Metrics,
		log:      cfg.Logger,
		workers:  make(map[string]*workerState),
		sessions: make(map[string]*session),
		reqs:     make(map[uint64]chan wire.SessionReply),
		probeClient: &http.Client{
			Timeout: 500 * time.Millisecond,
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, addr := range cfg.Workers {
		// The address IS the worker's node name: peerd binds its pool
		// transport under the advertised address, so handshakes line up.
		p.workers[addr] = &workerState{name: addr, state: StateReady}
		p.tr.AddRoute(addr, addr)
	}
	if err := p.tr.Start(p.handle); err != nil {
		return nil, err
	}
	go p.probeLoop()
	return p, nil
}

// Close stops the probe loop and the transport.
func (p *Pool) Close() {
	close(p.stop)
	<-p.done
	p.tr.Close() //nolint:errcheck // shutdown path
}

// ---- dispatch ----

// handle is the transport receive path: route replies by request ID and
// refresh the sender's load sample.
func (p *Pool) handle(from string, f wire.Frame) {
	rep, ok := f.(wire.SessionReply)
	if !ok {
		return
	}
	p.mu.Lock()
	if w := p.workers[from]; w != nil {
		w.load = WorkerLoad{Name: from, Active: int(rep.Active), Queued: int(rep.Queued), EWMAMicros: rep.EWMAMicros}
		if rep.AdminAddr != "" {
			w.adminAddr = rep.AdminAddr
		}
	}
	ch := p.reqs[rep.Req]
	p.mu.Unlock()
	if ch != nil {
		select {
		case ch <- rep:
		default: // a hedged duplicate already answered
		}
	}
}

// call dispatches one job with per-request deadline, bounded retry with
// backoff, and (for appends) hedged re-dispatch of stragglers. The
// error return means the worker never answered; a reply with an error
// Code is returned as-is.
func (p *Pool) call(worker string, job wire.SessionJob, evalTimeout time.Duration) (wire.SessionReply, error) {
	deadline := evalTimeout + p.cfg.RPCMargin
	job.TimeoutMS = uint32(evalTimeout / time.Millisecond)
	job.Frontend, job.FrontendAddr = p.self, p.addr

	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			p.m.Add("pool_retries_total", 1)
			time.Sleep(p.cfg.RetryBackoff << (attempt - 1))
		}
		if p.workerDead(worker) {
			// The probe loop already declared it: fail fast so the caller
			// re-materializes instead of burning the full deadline.
			return wire.SessionReply{}, fmt.Errorf("pool: worker %s is dead", worker)
		}
		rep, err := p.dispatch(worker, job, deadline)
		if err != nil {
			lastErr = err
			continue
		}
		if rep.Code == wire.SessRetry {
			lastErr = fmt.Errorf("pool: worker %s: %s", worker, rep.Err)
			continue
		}
		p.noteAlive(worker)
		return rep, nil
	}
	p.noteFailure(worker)
	return wire.SessionReply{}, lastErr
}

// dispatch sends the job once (plus at most one hedge) and waits for
// the first reply or the deadline.
func (p *Pool) dispatch(worker string, job wire.SessionJob, deadline time.Duration) (wire.SessionReply, error) {
	ch := make(chan wire.SessionReply, 2)
	p.mu.Lock()
	p.nextReq++
	job.Req = p.nextReq
	p.reqs[job.Req] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.reqs, job.Req)
		p.mu.Unlock()
	}()

	start := time.Now()
	if err := p.tr.Send(worker, job); err != nil {
		return wire.SessionReply{}, fmt.Errorf("pool: send to %s: %w", worker, err)
	}

	timer := time.NewTimer(deadline)
	defer timer.Stop()
	// A reply can stop coming for good reasons (long evaluation) or
	// because the worker died: poll its probe-maintained state so a death
	// verdict cuts the wait short of the full deadline.
	vitals := time.NewTicker(250 * time.Millisecond)
	defer vitals.Stop()
	var hedge <-chan time.Time
	if job.Op == wire.SessAppend && p.cfg.HedgeAfter >= 0 {
		ht := time.NewTimer(p.hedgeDelay(worker, deadline))
		defer ht.Stop()
		hedge = ht.C
	}
	for {
		select {
		case rep := <-ch:
			p.m.Observe("pool_dispatch_seconds", time.Since(start))
			return rep, nil
		case <-vitals.C:
			if p.workerDead(worker) {
				p.m.Observe("pool_dispatch_seconds", time.Since(start))
				return wire.SessionReply{}, fmt.Errorf("pool: worker %s declared dead mid-request", worker)
			}
		case <-hedge:
			// Straggler: re-send the same job (same Req, same Index — the
			// worker dedups), so a lost frame or a stalled queue slot does
			// not cost the whole deadline.
			hedge = nil
			p.m.Add("pool_hedged_total", 1)
			p.tr.Send(worker, job) //nolint:errcheck // the deadline judges
		case <-timer.C:
			p.m.Observe("pool_dispatch_seconds", time.Since(start))
			return wire.SessionReply{}, fmt.Errorf("pool: worker %s: no reply within %v", worker, deadline)
		}
	}
}

// hedgeDelay is when to re-send an unanswered append: the configured
// delay, or 4x the worker's EWMA append latency clamped to [25ms,
// deadline/2] — late enough to stay rare, early enough to matter.
func (p *Pool) hedgeDelay(worker string, deadline time.Duration) time.Duration {
	if p.cfg.HedgeAfter > 0 {
		return p.cfg.HedgeAfter
	}
	p.mu.Lock()
	ewma := time.Duration(0)
	if w := p.workers[worker]; w != nil {
		ewma = time.Duration(w.load.EWMAMicros) * time.Microsecond
	}
	p.mu.Unlock()
	d := 4 * ewma
	if d < 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	if d > deadline/2 {
		d = deadline / 2
	}
	return d
}

// ---- placement ----

// place picks a ready worker for the session, excluding tried ones.
func (p *Pool) place(sessionID string, tried map[string]bool) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	candidates := make([]WorkerLoad, 0, len(p.workers))
	for name, w := range p.workers {
		if w.state != StateReady || tried[name] {
			continue
		}
		candidates = append(candidates, w.load.withName(name))
	}
	if len(candidates) == 0 {
		return "", false
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })
	return p.policy.Pick(sessionID, candidates), true
}

func (l WorkerLoad) withName(name string) WorkerLoad {
	l.Name = name
	return l
}

func (p *Pool) newID() string {
	p.mu.Lock()
	p.nextID++
	n := p.nextID
	p.mu.Unlock()
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("s%06d", n)
	}
	return fmt.Sprintf("s%06d-%s", n, hex.EncodeToString(b[:]))
}

// ---- session operations ----

func notFoundResult() Result {
	return Result{Code: wire.SessNotFound, Err: "no such session"}
}

func saturatedResult(msg string) Result {
	if msg == "" {
		msg = "pool: all workers saturated or unavailable"
	}
	return Result{Code: wire.SessSaturated, Err: msg, RetryAfterMS: 1000}
}

func fromReply(rep wire.SessionReply) Result {
	return Result{Code: rep.Code, Err: rep.Err, RetryAfterMS: rep.RetryAfterMS, Body: rep.Blob}
}

// Create places a new session on a worker and journals it.
func (p *Pool) Create(netText, engine string, maxFacts int, evalTimeout time.Duration) Result {
	id := p.newID()
	job := wire.SessionJob{Op: wire.SessCreate, Session: id, NetText: netText,
		Engine: engineOrdinal(engine), MaxFacts: uint32(maxFacts)}
	tried := make(map[string]bool)
	for {
		worker, ok := p.place(id, tried)
		if !ok {
			return saturatedResult("")
		}
		rep, err := p.call(worker, job, evalTimeout)
		if err != nil {
			tried[worker] = true
			continue
		}
		switch rep.Code {
		case wire.SessOK:
			s := &session{id: id, worker: worker, netText: netText,
				engine: engine, maxFacts: maxFacts, nextIndex: 1}
			p.mu.Lock()
			p.sessions[id] = s
			p.mu.Unlock()
			return fromReply(rep)
		case wire.SessSaturated, wire.SessDraining:
			tried[worker] = true
		default:
			return fromReply(rep)
		}
	}
}

func (p *Pool) session(id string) *session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions[id]
}

// Append ships one append to the session's worker. The journal records
// it only after the worker acknowledged — the HTTP 200 implies the
// append survives any later worker failure. A worker that stopped
// answering (or lost the session) triggers re-materialization on a
// healthy worker, then one more attempt.
func (p *Pool) Append(id, alarms string, evalTimeout time.Duration) Result {
	s := p.session(id)
	if s == nil {
		return notFoundResult()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job := wire.SessionJob{Op: wire.SessAppend, Session: id, Index: s.nextIndex, Alarms: alarms}
	for attempt := 0; attempt < 2; attempt++ {
		worker := s.worker
		rep, err := p.call(worker, job, evalTimeout)
		if err != nil || rep.Code == wire.SessNotFound || rep.Code == wire.SessOutOfSync {
			// The worker is gone, restarted empty, or diverged: bring the
			// session up elsewhere from checkpoint + tail and try again.
			if rerr := p.rematerializeLocked(s, worker); rerr != nil {
				return saturatedResult(rerr.Error())
			}
			continue
		}
		if rep.Code != wire.SessOK {
			return fromReply(rep)
		}
		s.tail = append(s.tail, alarms)
		s.nextIndex++
		if p.cfg.ShipEvery > 0 && len(s.tail) >= p.cfg.ShipEvery {
			go p.refreshCheckpoint(id)
		}
		return fromReply(rep)
	}
	return saturatedResult("")
}

// Get reads the session state from its worker (the worker is
// authoritative: exhaustion, seq and report live there).
func (p *Pool) Get(id string, evalTimeout time.Duration) Result {
	s := p.session(id)
	if s == nil {
		return notFoundResult()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job := wire.SessionJob{Op: wire.SessGet, Session: id}
	for attempt := 0; attempt < 2; attempt++ {
		rep, err := p.call(s.worker, job, evalTimeout)
		if err != nil || rep.Code == wire.SessNotFound {
			if rerr := p.rematerializeLocked(s, s.worker); rerr != nil {
				return saturatedResult(rerr.Error())
			}
			continue
		}
		return fromReply(rep)
	}
	return saturatedResult("")
}

// Delete removes the session from its worker (best effort — the journal
// entry goes regardless, so the pool never resurrects it).
func (p *Pool) Delete(id string, evalTimeout time.Duration) Result {
	s := p.session(id)
	if s == nil {
		return notFoundResult()
	}
	s.mu.Lock()
	worker := s.worker
	s.mu.Unlock()
	p.mu.Lock()
	delete(p.sessions, id)
	p.mu.Unlock()
	rep, err := p.call(worker, wire.SessionJob{Op: wire.SessDelete, Session: id}, evalTimeout)
	if err != nil {
		// The worker will rediscover the deletion when it dies or the
		// session TTLs out; acknowledge the delete anyway.
		return Result{Code: wire.SessOK}
	}
	if rep.Code == wire.SessNotFound {
		return Result{Code: wire.SessOK}
	}
	return fromReply(rep)
}

// refreshCheckpoint ships the session's current checkpoint into the
// journal and truncates the tail it covers.
func (p *Pool) refreshCheckpoint(id string) {
	s := p.session(id)
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := p.call(s.worker, wire.SessionJob{Op: wire.SessShip, Session: id}, 10*time.Second)
	if err != nil || rep.Code != wire.SessOK {
		return // the tail keeps covering; the next append tries again
	}
	idx, _, derr := decodeShip(rep.Blob)
	if derr != nil || idx < s.snapIndex || idx >= s.snapIndex+uint64(len(s.tail))+1 {
		return
	}
	s.tail = append([]string(nil), s.tail[idx-s.snapIndex:]...)
	s.snapBlob = rep.Blob
	s.snapIndex = idx
	p.m.Add("pool_checkpoints_total", 1)
}

// rematerializeLocked brings s (journal-locked by the caller) up on a
// healthy worker: install the last checkpoint (or re-create from the
// net), then replay the acknowledged tail with its original indexes.
// This is the snapshot+WAL story of the serving layer, with the journal
// as the log.
func (p *Pool) rematerializeLocked(s *session, exclude string) error {
	tried := map[string]bool{exclude: true, s.worker: true}
	for {
		worker, ok := p.place(s.id, tried)
		if !ok {
			return fmt.Errorf("pool: no healthy worker to re-materialize session %s", s.id)
		}
		if p.installLocked(s, worker) {
			p.log.Info("pool: session re-materialized", "session", s.id, "from", s.worker, "to", worker, "replayed", len(s.tail))
			s.worker = worker
			p.m.Add("pool_migrations_total", 1)
			return nil
		}
		tried[worker] = true
	}
}

// installLocked installs s on the worker: checkpoint load or re-create,
// plus tail replay. Reports success.
func (p *Pool) installLocked(s *session, worker string) bool {
	if s.snapBlob != nil {
		rep, err := p.call(worker, wire.SessionJob{Op: wire.SessLoad, Session: s.id, Blob: s.snapBlob}, 10*time.Second)
		if err != nil || rep.Code != wire.SessOK {
			return false
		}
	} else {
		rep, err := p.call(worker, wire.SessionJob{Op: wire.SessCreate, Session: s.id,
			NetText: s.netText, Engine: engineOrdinal(s.engine), MaxFacts: uint32(s.maxFacts)}, 10*time.Second)
		if err != nil || rep.Code != wire.SessOK {
			return false
		}
	}
	for i, alarms := range s.tail {
		idx := s.snapIndex + 1 + uint64(i)
		rep, err := p.call(worker, wire.SessionJob{Op: wire.SessAppend, Session: s.id,
			Index: idx, Alarms: alarms}, 30*time.Second)
		// An exhausted reply reproduces the poisoned state faithfully;
		// anything else unanswered or diverging disqualifies the worker.
		if err != nil || (rep.Code != wire.SessOK && rep.Code != wire.SessExhausted) {
			return false
		}
	}
	return true
}

// ---- worker lifecycle ----

func (p *Pool) workerDead(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.workers[name]
	return w != nil && w.state == StateDead
}

func (p *Pool) noteAlive(worker string) {
	p.mu.Lock()
	if w := p.workers[worker]; w != nil {
		w.fails = 0
		if w.state == StateDead {
			// A restarted worker comes back empty; sessions were already
			// re-homed. It is placeable again.
			w.state = StateReady
			p.log.Info("pool: worker back", "worker", worker)
		}
	}
	p.mu.Unlock()
}

func (p *Pool) noteFailure(worker string) {
	p.mu.Lock()
	w := p.workers[worker]
	var evict bool
	if w != nil && w.state != StateDead {
		w.fails++
		if w.fails >= p.cfg.FailAfter && !w.migrating {
			w.state = StateDead
			w.migrating = true
			evict = true
		}
	}
	p.mu.Unlock()
	if evict {
		p.log.Warn("pool: worker dead, re-homing its sessions", "worker", worker)
		go p.recoverSessions(worker)
	}
}

// probeLoop drives periodic SessPing probes and /healthz checks, and
// refreshes the pool gauges.
func (p *Pool) probeLoop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeOnce()
		}
	}
}

func (p *Pool) probeOnce() {
	p.mu.Lock()
	names := make([]string, 0, len(p.workers))
	admins := make(map[string]string, len(p.workers))
	for name, w := range p.workers {
		names = append(names, name)
		admins[name] = w.adminAddr
	}
	p.mu.Unlock()

	for _, name := range names {
		// The ping doubles as liveness check and load sample; call's
		// retry/failure accounting does the state bookkeeping.
		probeTimeout := p.cfg.ProbeEvery
		if probeTimeout > time.Second {
			probeTimeout = time.Second
		}
		rep, err := p.dispatch(name, wire.SessionJob{Op: wire.SessPing, Frontend: p.self, FrontendAddr: p.addr}, probeTimeout)
		switch {
		case err != nil:
			p.noteFailure(name)
		case rep.Code == wire.SessDraining:
			p.markDraining(name)
		default:
			p.noteAlive(name)
		}
		if admin := admins[name]; admin != "" {
			p.probeAdmin(name, admin)
		}
	}
	p.updateGauges()
}

// probeAdmin checks the worker's /healthz: a 503 whose body says
// "draining" means "stop placing, migrate" — emphatically NOT a
// failure, so it never feeds the eviction counter.
func (p *Pool) probeAdmin(name, admin string) {
	resp, err := p.probeClient.Get("http://" + admin + "/healthz")
	if err != nil {
		return // transport pings own liveness; the admin side is advisory
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close() //nolint:errcheck // read fully above
	if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
		p.markDraining(name)
	}
}

func (p *Pool) markDraining(name string) {
	p.mu.Lock()
	w := p.workers[name]
	var migrate bool
	if w != nil && w.state == StateReady {
		w.state = StateDraining
		w.fails = 0 // draining is cooperative, not a failure
		if !w.migrating {
			w.migrating = true
			migrate = true
		}
	}
	p.mu.Unlock()
	if migrate {
		p.log.Info("pool: worker draining, migrating its sessions", "worker", name)
		go p.migrateSessions(name)
	}
}

// sessionsOn lists the sessions whose journal names the worker.
func (p *Pool) sessionsOn(worker string) []*session {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*session
	for _, s := range p.sessions {
		out = append(out, s)
	}
	// Filtering happens under each session's own lock: the placement may
	// move between this snapshot and the migration pass.
	_ = worker
	return out
}

// migrateSessions moves every session off a draining worker by
// checkpoint: ship from the drainer (it still serves), load on a ready
// worker, truncate the journal tail the checkpoint covers.
func (p *Pool) migrateSessions(worker string) {
	defer p.clearMigrating(worker)
	for _, s := range p.sessionsOn(worker) {
		s.mu.Lock()
		if s.worker != worker {
			s.mu.Unlock()
			continue
		}
		p.migrateLocked(s, worker)
		s.mu.Unlock()
	}
}

func (p *Pool) migrateLocked(s *session, from string) {
	rep, err := p.call(from, wire.SessionJob{Op: wire.SessShip, Session: s.id}, 10*time.Second)
	if err == nil && rep.Code == wire.SessOK {
		if idx, _, derr := decodeShip(rep.Blob); derr == nil && idx == s.nextIndex-1 {
			tried := map[string]bool{from: true}
			for {
				to, ok := p.place(s.id, tried)
				if !ok {
					break
				}
				lrep, lerr := p.call(to, wire.SessionJob{Op: wire.SessLoad, Session: s.id, Blob: rep.Blob}, 10*time.Second)
				if lerr != nil || lrep.Code != wire.SessOK {
					tried[to] = true
					continue
				}
				s.snapBlob, s.snapIndex, s.tail = rep.Blob, idx, nil
				old := s.worker
				s.worker = to
				p.m.Add("pool_migrations_total", 1)
				p.log.Info("pool: session migrated", "session", s.id, "from", old, "to", to)
				// Best effort: free the drainer's copy so its drain finishes.
				p.call(old, wire.SessionJob{Op: wire.SessDelete, Session: s.id}, 5*time.Second) //nolint:errcheck
				return
			}
		}
	}
	// The drainer died mid-drain (or shipped garbage): the journal path
	// still works.
	if rerr := p.rematerializeLocked(s, from); rerr != nil {
		p.log.Warn("pool: migration failed", "session", s.id, "err", rerr)
	}
}

// recoverSessions re-materializes every session homed on a dead worker.
func (p *Pool) recoverSessions(worker string) {
	defer p.clearMigrating(worker)
	for _, s := range p.sessionsOn(worker) {
		s.mu.Lock()
		if s.worker == worker {
			if err := p.rematerializeLocked(s, worker); err != nil {
				p.log.Warn("pool: session lost until a worker recovers", "session", s.id, "err", err)
			}
		}
		s.mu.Unlock()
	}
}

func (p *Pool) clearMigrating(worker string) {
	p.mu.Lock()
	if w := p.workers[worker]; w != nil {
		w.migrating = false
	}
	p.mu.Unlock()
}

// updateGauges refreshes the pool_* gauge series.
func (p *Pool) updateGauges() {
	p.mu.Lock()
	states := map[string]int64{StateReady: 0, StateDraining: 0, StateDead: 0}
	for _, w := range p.workers {
		states[w.state]++
	}
	perWorker := make(map[string]int64, len(p.workers))
	for name := range p.workers {
		perWorker[name] = 0
	}
	for _, s := range p.sessions {
		// s.worker is read without its lock: a stale value skews a gauge
		// for one probe period, nothing more.
		perWorker[s.worker]++
	}
	p.mu.Unlock()
	for state, n := range states {
		p.m.SetGauge(fmt.Sprintf("pool_workers{state=%q}", state), n)
	}
	for name, n := range perWorker {
		p.m.SetGauge(fmt.Sprintf("pool_sessions{worker=%q}", name), n)
	}
}

// WorkerStates reports each worker's lifecycle state (ops surfaces and
// tests).
func (p *Pool) WorkerStates() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.workers))
	for name, w := range p.workers {
		out[name] = w.state
	}
	return out
}

// SessionWorker reports which worker currently homes the session.
func (p *Pool) SessionWorker(id string) (string, bool) {
	s := p.session(id)
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.worker, true
}
