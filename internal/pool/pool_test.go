package pool

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// ---- scheduler properties ----

// TestLeastLoadedBalanceBound: placing sessions one at a time, feeding
// each placement back into the load picture, least-loaded keeps the
// spread between the fullest and emptiest worker at most one.
func TestLeastLoadedBalanceBound(t *testing.T) {
	workers := []WorkerLoad{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}}
	var p LeastLoaded
	for i := 0; i < 300; i++ {
		pick := p.Pick(fmt.Sprintf("s%d", i), workers)
		found := false
		for j := range workers {
			if workers[j].Name == pick {
				workers[j].Active++
				found = true
			}
		}
		if !found {
			t.Fatalf("picked %q, not a candidate", pick)
		}
		min, max := workers[0].Active, workers[0].Active
		for _, w := range workers[1:] {
			if w.Active < min {
				min = w.Active
			}
			if w.Active > max {
				max = w.Active
			}
		}
		if max-min > 1 {
			t.Fatalf("after %d placements: spread %d (loads %+v)", i+1, max-min, workers)
		}
	}
}

// TestLeastLoadedCountsQueue: a worker with a deep queue loses to an
// idle one even when it holds fewer sessions.
func TestLeastLoadedCountsQueue(t *testing.T) {
	got := LeastLoaded{}.Pick("s", []WorkerLoad{
		{Name: "a", Active: 1, Queued: 10},
		{Name: "b", Active: 3, Queued: 0},
	})
	if got != "b" {
		t.Fatalf("picked %q, want the shallow-queue worker", got)
	}
}

// TestConsistentHashAffinity: the ring is a pure function of session and
// candidate set, and removing one worker only moves the sessions that
// hashed to it — everyone else's placement is stable.
func TestConsistentHashAffinity(t *testing.T) {
	full := []WorkerLoad{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}, {Name: "w4"}, {Name: "w5"}}
	var without []WorkerLoad
	for _, w := range full {
		if w.Name != "w3" {
			without = append(without, w)
		}
	}
	var p ConsistentHash
	moved, onRemoved := 0, 0
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("session-%d", i)
		first := p.Pick(id, full)
		if again := p.Pick(id, full); again != first {
			t.Fatalf("%s: unstable pick %q then %q on identical candidates", id, first, again)
		}
		second := p.Pick(id, without)
		if first == "w3" {
			onRemoved++
			if second == "w3" {
				t.Fatalf("%s: picked the removed worker", id)
			}
			continue
		}
		if second != first {
			moved++
		}
	}
	if onRemoved == 0 {
		t.Fatal("no session ever hashed to w3; ring is degenerate")
	}
	if moved != 0 {
		t.Fatalf("%d sessions moved that were not on the removed worker", moved)
	}
}

// TestConsistentHashSpread: with the default 64 virtual nodes no worker
// captures a grossly lopsided share. FNV and the vnode keys are fixed,
// so this is deterministic, not flaky.
func TestConsistentHashSpread(t *testing.T) {
	candidates := []WorkerLoad{{Name: "w1"}, {Name: "w2"}, {Name: "w3"}, {Name: "w4"}, {Name: "w5"}}
	counts := make(map[string]int)
	var p ConsistentHash
	const n = 1000
	for i := 0; i < n; i++ {
		counts[p.Pick(fmt.Sprintf("session-%d", i), candidates)]++
	}
	for _, c := range candidates {
		got := counts[c.Name]
		if got == 0 {
			t.Fatalf("worker %s never picked: %v", c.Name, counts)
		}
		if got > n/2 {
			t.Fatalf("worker %s captured %d of %d sessions: %v", c.Name, got, n, counts)
		}
	}
}

// ---- ship-blob codec ----

func TestShipCodecRoundTrip(t *testing.T) {
	for _, idx := range []uint64{0, 1, 16, 1 << 40} {
		blob := encodeShip(idx, []byte("checkpoint-bytes"))
		gotIdx, gotCp, err := decodeShip(blob)
		if err != nil {
			t.Fatalf("idx %d: %v", idx, err)
		}
		if gotIdx != idx || string(gotCp) != "checkpoint-bytes" {
			t.Fatalf("idx %d: round-tripped to (%d, %q)", idx, gotIdx, gotCp)
		}
	}
	if _, _, err := decodeShip(nil); err == nil {
		t.Fatal("decodeShip(nil) accepted")
	}
}

// ---- worker idempotency over a mesh ----

// fakeBackend counts evaluations so the dedup tests can prove a retried
// or hedged duplicate never re-evaluates.
type fakeBackend struct {
	mu      sync.Mutex
	creates int
	appends map[string]int
	live    map[string]bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{appends: make(map[string]int), live: make(map[string]bool)}
}

func (b *fakeBackend) Create(id, netText, engine string, maxFacts int) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.creates++
	b.live[id] = true
	return []byte(fmt.Sprintf("created:%s", id)), nil
}

func (b *fakeBackend) Append(id, alarms string, timeout time.Duration) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.appends[id]++
	return []byte(fmt.Sprintf("append:%d", b.appends[id])), nil
}

func (b *fakeBackend) Get(id string) ([]byte, error)           { return []byte("state"), nil }
func (b *fakeBackend) Delete(id string) error                  { return nil }
func (b *fakeBackend) Ship(id string) ([]byte, error)          { return []byte("cp"), nil }
func (b *fakeBackend) Load(id string, checkpoint []byte) error { return nil }
func (b *fakeBackend) Classify(error) (uint32, uint32)         { return wire.SessRetry, 0 }
func (b *fakeBackend) Active() int                             { b.mu.Lock(); defer b.mu.Unlock(); return len(b.live) }
func (b *fakeBackend) appendEvals(id string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.appends[id]
}

// TestWorkerAppendDedup drives a worker directly with SessionJob frames
// and checks the idempotency contract retry and hedging depend on:
// duplicate indexes return the memoized reply without re-evaluating,
// gaps are refused with SessOutOfSync.
func TestWorkerAppendDedup(t *testing.T) {
	mesh := transport.NewMesh()
	backend := newFakeBackend()
	w := NewWorker(WorkerConfig{Transport: mesh.Node("w1"), Backend: backend})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	t.Cleanup(func() { mesh.Node("w1").Close() }) //nolint:errcheck

	replies := make(chan wire.SessionReply, 16)
	fe := mesh.Node("fe")
	if err := fe.Start(func(from string, f wire.Frame) {
		if rep, ok := f.(wire.SessionReply); ok {
			replies <- rep
		}
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fe.Close() }) //nolint:errcheck

	var req uint64
	roundTrip := func(job wire.SessionJob) wire.SessionReply {
		t.Helper()
		req++
		job.Req, job.Frontend, job.FrontendAddr = req, "fe", "fe"
		if err := fe.Send("w1", job); err != nil {
			t.Fatal(err)
		}
		select {
		case rep := <-replies:
			if rep.Req != req {
				t.Fatalf("reply for req %d, want %d", rep.Req, req)
			}
			return rep
		case <-time.After(5 * time.Second):
			t.Fatalf("no reply to op %d", job.Op)
			return wire.SessionReply{}
		}
	}

	if rep := roundTrip(wire.SessionJob{Op: wire.SessCreate, Session: "s1"}); rep.Code != wire.SessOK {
		t.Fatalf("create: code %d err %q", rep.Code, rep.Err)
	}
	// A retried create resends the first reply instead of re-admitting.
	rep := roundTrip(wire.SessionJob{Op: wire.SessCreate, Session: "s1"})
	if rep.Code != wire.SessOK || string(rep.Blob) != "created:s1" {
		t.Fatalf("retried create: code %d blob %q", rep.Code, rep.Blob)
	}
	if backend.creates != 1 {
		t.Fatalf("backend created %d times, want 1", backend.creates)
	}

	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s1", Index: 1}); string(rep.Blob) != "append:1" {
		t.Fatalf("append 1: %q", rep.Blob)
	}
	// Duplicate of index 1 (a hedge or retry): memoized, not re-evaluated.
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s1", Index: 1}); string(rep.Blob) != "append:1" {
		t.Fatalf("duplicate append: %q", rep.Blob)
	}
	if n := backend.appendEvals("s1"); n != 1 {
		t.Fatalf("backend evaluated %d appends, want 1", n)
	}
	// An index gap means the frontend and worker diverged.
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s1", Index: 3}); rep.Code != wire.SessOutOfSync {
		t.Fatalf("gap append: code %d, want SessOutOfSync", rep.Code)
	}
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s1", Index: 2}); string(rep.Blob) != "append:2" {
		t.Fatalf("append 2: %q", rep.Blob)
	}
	// Appends to a session the worker never admitted are NotFound — the
	// frontend's cue to re-materialize.
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "ghost", Index: 1}); rep.Code != wire.SessNotFound {
		t.Fatalf("ghost append: code %d, want SessNotFound", rep.Code)
	}
	// A load installs the shipped applied-index so dedup resumes there.
	if rep := roundTrip(wire.SessionJob{Op: wire.SessLoad, Session: "s2", Blob: encodeShip(7, []byte("cp"))}); rep.Code != wire.SessOK {
		t.Fatalf("load: code %d err %q", rep.Code, rep.Err)
	}
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s2", Index: 9}); rep.Code != wire.SessOutOfSync {
		t.Fatalf("post-load gap: code %d, want SessOutOfSync", rep.Code)
	}
	if rep := roundTrip(wire.SessionJob{Op: wire.SessAppend, Session: "s2", Index: 8}); rep.Code != wire.SessOK {
		t.Fatalf("post-load append: code %d", rep.Code)
	}
}
