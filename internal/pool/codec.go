package pool

import (
	"encoding/binary"
	"errors"
)

// Ship blobs. A SessShip reply (and the SessLoad job re-installing it)
// carries the worker's applied-append index ahead of the opaque
// checkpoint bytes: the index is what lets the receiving worker resume
// the idempotent-append dedup exactly where the checkpoint left off,
// and what lets the frontend replay only the journal tail past it.

var errShipBlob = errors.New("pool: malformed ship blob")

// encodeShip prefixes checkpoint bytes with the applied-append index.
func encodeShip(appliedIndex uint64, checkpoint []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, len(checkpoint)+binary.MaxVarintLen64), appliedIndex)
	return append(out, checkpoint...)
}

// decodeShip splits a ship blob back into index and checkpoint bytes.
func decodeShip(blob []byte) (appliedIndex uint64, checkpoint []byte, err error) {
	idx, n := binary.Uvarint(blob)
	if n <= 0 {
		return 0, nil, errShipBlob
	}
	return idx, blob[n:], nil
}
