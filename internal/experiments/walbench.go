package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// WALOverheadRow quantifies what write-ahead logging costs and buys on a
// warm dQSQ session over the running example: the per-append cost of
// logging every append under each fsync policy against a no-WAL
// baseline, and the cost of coming back — restoring a mid-sequence
// snapshot and replaying the logged tail versus recomputing the whole
// sequence from scratch. verify.sh guards the equivalence bit and the
// interval-policy overhead (it must stay within 2x of the baseline).
type WALOverheadRow struct {
	Appends             int
	PlainNsPerAppend    int64   // eval only, no WAL
	AlwaysNsPerAppend   int64   // eval + logged record + fsync per append
	IntervalNsPerAppend int64   // eval + logged record, fsync on a timer
	NeverNsPerAppend    int64   // eval + logged record, OS flushes
	AlwaysOverheadPct   float64 // (always-plain)/plain, in percent
	IntervalOverheadPct float64 // (interval-plain)/plain, in percent
	ReplayNs            int64   // snapshot at n/2 restored + logged tail replayed
	RecomputeNs         int64   // all appends on a fresh handle
	Equal               bool    // replayed report == uninterrupted report
}

// walOverheadRecord frames one append for the experiment's log: the
// session's alarm count before the append, then the alarms text — the
// same shape the diagnose CLI logs, so replay can line records up
// against a snapshot taken anywhere in the sequence.
func walOverheadRecord(before int, obs alarm.Seq) []byte {
	w := &snapshot.Writer{}
	w.Uvarint(uint64(before))
	w.String(parser.FormatAlarms(obs))
	return w.Body()
}

// WALOverhead runs the WAL-overhead experiment on a p2-loop sequence of
// length n (the S1 workload family).
func WALOverhead(n int) (*WALOverheadRow, error) {
	if n <= 0 {
		n = 8
	}
	seq := p2LoopSeq(n)
	dir, err := os.MkdirTemp("", "wal-overhead-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "mid.dsnp")

	// runAll evaluates the whole sequence on a fresh warm handle. With a
	// walDir every append is logged first; with snapAt > 0 a snapshot is
	// saved after that many appends (setup for the replay measurement —
	// such runs are not used for timing).
	runAll := func(walDir string, policy wal.Policy, snapAt int) (*core.Report, time.Duration, error) {
		inc, err := core.Example().NewIncremental(core.DQSQ, core.Options{Timeout: 2 * time.Minute})
		if err != nil {
			return nil, 0, err
		}
		var l *wal.Log
		if walDir != "" {
			if l, err = wal.Open(walDir, wal.Options{Fsync: policy, SyncEvery: 5 * time.Millisecond}); err != nil {
				return nil, 0, err
			}
			defer l.Close() //nolint:errcheck // experiment scratch state
		}
		var rep *core.Report
		start := time.Now()
		for i, o := range seq {
			if l != nil {
				if _, err := l.Append(walOverheadRecord(i, alarm.Seq{o})); err != nil {
					return nil, 0, err
				}
			}
			if rep, err = inc.Append(alarm.Seq{o}, 0); err != nil {
				return nil, 0, err
			}
			if snapAt > 0 && i+1 == snapAt {
				if _, err := core.SaveIncremental(snapPath, inc); err != nil {
					return nil, 0, err
				}
			}
		}
		return rep, time.Since(start), nil
	}

	// Warm-up, then the timed configurations.
	if _, _, err := runAll("", 0, 0); err != nil {
		return nil, err
	}
	row := &WALOverheadRow{Appends: n}
	plainRep, plainD, err := runAll("", 0, 0)
	if err != nil {
		return nil, err
	}
	row.PlainNsPerAppend = plainD.Nanoseconds() / int64(n)
	row.RecomputeNs = plainD.Nanoseconds()
	_, alwaysD, err := runAll(filepath.Join(dir, "always"), wal.SyncAlways, 0)
	if err != nil {
		return nil, err
	}
	row.AlwaysNsPerAppend = alwaysD.Nanoseconds() / int64(n)
	_, intervalD, err := runAll(filepath.Join(dir, "interval"), wal.SyncInterval, 0)
	if err != nil {
		return nil, err
	}
	row.IntervalNsPerAppend = intervalD.Nanoseconds() / int64(n)
	_, neverD, err := runAll(filepath.Join(dir, "never"), wal.SyncNever, 0)
	if err != nil {
		return nil, err
	}
	row.NeverNsPerAppend = neverD.Nanoseconds() / int64(n)
	if row.PlainNsPerAppend > 0 {
		row.AlwaysOverheadPct = 100 * float64(row.AlwaysNsPerAppend-row.PlainNsPerAppend) / float64(row.PlainNsPerAppend)
		row.IntervalOverheadPct = 100 * float64(row.IntervalNsPerAppend-row.PlainNsPerAppend) / float64(row.PlainNsPerAppend)
	}

	// Coming back: untimed setup run logging everything with a snapshot at
	// n/2, then the timed recovery — load the snapshot, replay the log's
	// uncovered tail on top of it.
	replayDir := filepath.Join(dir, "replay")
	if _, _, err := runAll(replayDir, wal.SyncNever, n/2); err != nil {
		return nil, err
	}
	start := time.Now()
	restored, err := core.LoadIncremental(snapPath)
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(replayDir, wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	err = l.Replay(1, func(_ uint64, payload []byte) error {
		r := snapshot.NewReader(payload)
		before := int(r.Uvarint())
		text := r.String()
		if r.Finish() != nil || before != len(restored.Seq()) {
			return nil // covered by the snapshot
		}
		obs, err := core.ParseAlarms(text)
		if err != nil {
			return err
		}
		_, err = restored.Append(obs, 0)
		return err
	})
	l.Close() //nolint:errcheck // read-only use
	if err != nil {
		return nil, err
	}
	row.ReplayNs = time.Since(start).Nanoseconds()

	got := restored.Report()
	if got == nil {
		return nil, fmt.Errorf("replayed session has no report")
	}
	row.Equal = got.Diagnoses.Equal(plainRep.Diagnoses) &&
		got.Derived == plainRep.Derived && got.Messages == plainRep.Messages
	return row, nil
}
