package experiments

import "testing"

func TestSnapshotOverheadShape(t *testing.T) {
	row, err := SnapshotOverhead(3)
	if err != nil {
		t.Fatal(err)
	}
	if row.Appends != 3 {
		t.Fatalf("appends = %d", row.Appends)
	}
	if row.PlainNsPerAppend <= 0 || row.CkptNsPerAppend <= 0 || row.RestoreNs <= 0 || row.ReplayNs <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.SnapshotBytes <= 0 {
		t.Fatalf("snapshot bytes = %d", row.SnapshotBytes)
	}
	if !row.Equal {
		t.Fatal("restored session diverges from the uninterrupted run")
	}
}
