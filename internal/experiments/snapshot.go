package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/alarm"
	"repro/internal/core"
)

// SnapshotOverheadRow quantifies what the checkpoint subsystem costs and
// buys on a warm dQSQ session over the running example: the per-append
// cost of checkpointing after every append versus not checkpointing at
// all, and the cost of coming back — restoring the final snapshot versus
// replaying the whole sequence from scratch. Restore is O(snapshot
// size); replay is O(re-running every append). verify.sh guards both the
// equivalence bit and the restore-vs-replay ratio.
type SnapshotOverheadRow struct {
	Appends          int
	PlainNsPerAppend int64
	CkptNsPerAppend  int64
	OverheadPct      float64 // (ckpt-plain)/plain, in percent; includes the fsync
	SnapshotBytes    int     // size of the final snapshot
	RestoreNs        int64   // LoadIncremental of the final snapshot
	ReplayNs         int64   // re-running all appends on a fresh handle
	Equal            bool    // restored report == uninterrupted report (diagnoses + counters)
}

// SnapshotOverhead runs the checkpoint-overhead experiment on a p2-loop
// sequence of length n (the S1 workload family).
func SnapshotOverhead(n int) (*SnapshotOverheadRow, error) {
	if n <= 0 {
		n = 8
	}
	seq := p2LoopSeq(n)
	dir, err := os.MkdirTemp("", "snapshot-overhead-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ck.dsnp")

	runAll := func(save bool) (*core.Incremental, *core.Report, time.Duration, int, error) {
		inc, err := core.Example().NewIncremental(core.DQSQ, core.Options{Timeout: 2 * time.Minute})
		if err != nil {
			return nil, nil, 0, 0, err
		}
		var rep *core.Report
		var size int
		start := time.Now()
		for _, o := range seq {
			if rep, err = inc.Append(alarm.Seq{o}, 0); err != nil {
				return nil, nil, 0, 0, err
			}
			if save {
				if size, err = core.SaveIncremental(path, inc); err != nil {
					return nil, nil, 0, 0, err
				}
			}
		}
		return inc, rep, time.Since(start), size, nil
	}

	// Warm-up, then the two timed configurations.
	if _, _, _, _, err := runAll(false); err != nil {
		return nil, err
	}
	row := &SnapshotOverheadRow{Appends: n}
	_, plainRep, plainD, _, err := runAll(false)
	if err != nil {
		return nil, err
	}
	row.PlainNsPerAppend = plainD.Nanoseconds() / int64(n)
	_, _, ckptD, size, err := runAll(true)
	if err != nil {
		return nil, err
	}
	row.CkptNsPerAppend = ckptD.Nanoseconds() / int64(n)
	row.SnapshotBytes = size
	if row.PlainNsPerAppend > 0 {
		row.OverheadPct = 100 * float64(row.CkptNsPerAppend-row.PlainNsPerAppend) / float64(row.PlainNsPerAppend)
	}

	// Coming back: restore the final snapshot vs replay every append.
	start := time.Now()
	restored, err := core.LoadIncremental(path)
	if err != nil {
		return nil, err
	}
	row.RestoreNs = time.Since(start).Nanoseconds()
	_, _, replayD, _, err := runAll(false)
	if err != nil {
		return nil, err
	}
	row.ReplayNs = replayD.Nanoseconds()

	got := restored.Report()
	if got == nil {
		return nil, fmt.Errorf("restored session has no report")
	}
	row.Equal = got.Diagnoses.Equal(plainRep.Diagnoses) &&
		got.Derived == plainRep.Derived && got.Messages == plainRep.Messages
	return row, nil
}
