package experiments

import "testing"

func TestReplOverheadShape(t *testing.T) {
	row, err := ReplOverhead(16)
	if err != nil {
		t.Fatal(err)
	}
	if row.Appends != 16 || row.Writers != 8 {
		t.Fatalf("sizes = %d appends / %d writers", row.Appends, row.Writers)
	}
	if row.P50NsNoFollower <= 0 || row.P50NsOneFollower <= 0 || row.P50NsTwoFollowers <= 0 {
		t.Fatalf("non-positive p50 timings: %+v", row)
	}
	if row.OneFollowerRatio <= 0 {
		t.Fatalf("follower ratio = %v", row.OneFollowerRatio)
	}
	if !row.FollowersCaughtUp {
		t.Fatal("a follower failed to replicate every appended record")
	}
	if row.GroupNsPerOp <= 0 || row.SoloNsPerOp <= 0 || row.GroupCommitGain <= 0 {
		t.Fatalf("non-positive group-commit timings: %+v", row)
	}
}
