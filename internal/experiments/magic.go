package experiments

import (
	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/term"
)

// magicRun evaluates a query with the magic-sets rewriting; split out so
// the ablation reads symmetrically with qsq.Run.
func magicRun(p *datalog.Program, q datalog.Atom) ([][]term.ID, *struct{}, datalog.Stats, error) {
	rows, _, st, err := magic.Run(p, q, datalog.Budget{})
	return rows, nil, st, err
}
