package experiments

import "testing"

func TestClusterTraceOverheadShape(t *testing.T) {
	row, err := ClusterTraceOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Iters != 1 {
		t.Fatalf("iters = %d", row.Iters)
	}
	if row.OffNsPerOp <= 0 || row.OnNsPerOp <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.TelemetryNodes != 2 {
		t.Fatalf("telemetry nodes = %d, want 2", row.TelemetryNodes)
	}
	if row.MemberEvents == 0 {
		t.Fatal("telemetry-on runs shipped no member events")
	}
}
