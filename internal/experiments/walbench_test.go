package experiments

import "testing"

func TestWALOverheadShape(t *testing.T) {
	row, err := WALOverhead(4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Appends != 4 {
		t.Fatalf("appends = %d", row.Appends)
	}
	if row.PlainNsPerAppend <= 0 || row.AlwaysNsPerAppend <= 0 ||
		row.IntervalNsPerAppend <= 0 || row.NeverNsPerAppend <= 0 {
		t.Fatalf("non-positive per-append timings: %+v", row)
	}
	if row.ReplayNs <= 0 || row.RecomputeNs <= 0 {
		t.Fatalf("non-positive recovery timings: %+v", row)
	}
	if !row.Equal {
		t.Fatal("snapshot+WAL-replayed session diverges from the uninterrupted run")
	}
}
