package experiments

import "testing"

func TestPoolOverheadShape(t *testing.T) {
	row, err := PoolOverhead(8)
	if err != nil {
		t.Fatal(err)
	}
	if row.Appends == 0 || row.Sessions != 8 {
		t.Fatalf("sizes = %d appends / %d sessions", row.Appends, row.Sessions)
	}
	if row.LocalNsPerAppend <= 0 || row.PooledNsPerAppend <= 0 {
		t.Fatalf("non-positive append timings: %+v", row)
	}
	if row.OverheadRatio <= 0 {
		t.Fatalf("overhead ratio = %v", row.OverheadRatio)
	}
	if !row.BodiesEqual {
		t.Fatal("pooled append bodies diverged from the local serving path")
	}
	if row.OneWorkerMs < 0 || row.ThreeWorkerMs < 0 || row.WorkerGain <= 0 {
		t.Fatalf("bad batch timings: %+v", row)
	}
}
