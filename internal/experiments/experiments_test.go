package experiments

import (
	"testing"
)

func TestMaterializationSweepShape(t *testing.T) {
	rows, err := MaterializationSweep(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Theorem 4: dQSQ materializes exactly the [8] prefix.
		if !r.ExactPrefixEq {
			t.Fatalf("len=%d: dQSQ events %d != product events %d", r.SeqLen, r.DQSQEvents, r.ProductEvents)
		}
		// The depth-bounded naive run materializes at least as much.
		if r.NaiveEvents < r.DQSQEvents {
			t.Fatalf("len=%d: naive events %d < dQSQ events %d", r.SeqLen, r.NaiveEvents, r.DQSQEvents)
		}
		if r.NaiveDerived <= r.DQSQDerived {
			t.Fatalf("len=%d: naive derived %d <= dQSQ derived %d — the paper's shape is inverted",
				r.SeqLen, r.NaiveDerived, r.DQSQDerived)
		}
	}
	// The prefix grows with the sequence.
	if rows[3].ProductEvents <= rows[0].ProductEvents {
		t.Fatalf("prefix did not grow: %d vs %d", rows[3].ProductEvents, rows[0].ProductEvents)
	}
}

func TestPipelineSweepShape(t *testing.T) {
	rows, err := PipelineSweep([]int{2, 3}, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Diagnoses != 1 {
			t.Fatalf("peers=%d: %d diagnoses, want 1", r.Peers, r.Diagnoses)
		}
		if r.NaiveDerived <= r.DQSQDerived {
			t.Fatalf("peers=%d: naive derived %d <= dQSQ %d", r.Peers, r.NaiveDerived, r.DQSQDerived)
		}
	}
}

func TestTheorem1SweepEquality(t *testing.T) {
	rows, err := Theorem1Sweep([]int{3, 6, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Equal {
			t.Fatalf("chain=%d: dQSQ derived %d != QSQ derived %d", r.ChainLen, r.DQSQDerived, r.QSQDerived)
		}
		if r.Answers == 0 {
			t.Fatalf("chain=%d: no answers", r.ChainLen)
		}
	}
}

func TestConcurrencySweepShape(t *testing.T) {
	rows, err := ConcurrencySweep([]int{2, 3}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Diagnoses != 1 {
			t.Fatalf("branches=%d: %d diagnoses, want 1 (pure concurrency)", r.Branches, r.Diagnoses)
		}
		// Prefix = exactly the executed events (dQSQ runs only on the
		// instances small enough for the order-sensitive config ids).
		if r.ProductEvents != r.SeqLen {
			t.Fatalf("branches=%d: product prefix %d, want %d", r.Branches, r.ProductEvents, r.SeqLen)
		}
		if r.DQSQEvents != 0 && r.DQSQEvents != r.SeqLen {
			t.Fatalf("branches=%d: dQSQ prefix %d, want %d", r.Branches, r.DQSQEvents, r.SeqLen)
		}
	}
}

func TestMagicAblation(t *testing.T) {
	rows, err := MagicAblation([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.SameAnswers {
			t.Fatalf("chain=%d: answer counts differ", r.ChainLen)
		}
		if r.QSQDerived == 0 || r.MagicDerived == 0 {
			t.Fatalf("chain=%d: empty derivations", r.ChainLen)
		}
	}
}
