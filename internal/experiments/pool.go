package experiments

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/pool"
	"repro/internal/serve"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PoolOverheadRow quantifies what the session pool costs one append and
// what a wider worker fleet buys a batch of sessions. The latency side
// drives the same alarm sequence into two sessions over a pipeline net:
// one directly against the worker-side backend (the local serving path),
// one through a frontend pool over an in-process mesh — so the measured
// gap is exactly the pool machinery: wire codec round trip, dispatch,
// executor queue, journal bookkeeping. Bodies must stay byte-identical
// (elapsed_ms scrubbed), the pool's correctness bar. The throughput side
// runs the same multi-session batch against one worker and three;
// the gain tracks the cores actually available — on a single-CPU box the
// fleet buys concurrency, not wall-clock, and WorkerGain can even dip
// below 1. To tell "the fleet did more work" apart from "same work,
// worse scheduling", each batch phase also records the process CPU time
// it burned (workers are in-process, so RUSAGE_SELF covers them): equal
// CPU with unequal wall is a scheduling artifact; inflated CPU on the
// wider fleet is genuine extra work. Hedged re-dispatch — which used to
// duplicate straggling appends on the wider fleet and was the main such
// inflator — is disabled for the batch phases.
type PoolOverheadRow struct {
	Appends           int
	LocalNsPerAppend  int64   // median direct-backend append
	PooledNsPerAppend int64   // median append through the pool
	OverheadRatio     float64 // pooled / local (medians)
	BodiesEqual       bool    // pooled bodies byte-identical to local

	Sessions         int
	OneWorkerMs      int64 // batch wall-clock, 1 worker
	ThreeWorkerMs    int64 // batch wall-clock, 3 workers
	OneWorkerCPUMs   int64 // process CPU time (user+sys) burned by the 1-worker batch
	ThreeWorkerCPUMs int64 // process CPU time (user+sys) burned by the 3-worker batch
	WorkerGain       float64
}

// scrubElapsedMS blanks the one legitimately-nondeterministic field in
// an append body before comparing pooled and local bytes.
var scrubElapsedMS = regexp.MustCompile(`"elapsed_ms": [0-9eE.+-]+`)

// poolEvalBudget is the per-append evaluation budget. Pipeline unfolding
// cost is bursty (an unlucky alarm order can make one append take
// seconds), so the budget is deliberately generous: an outlier append
// inflates one latency sample instead of erroring the whole run.
const poolEvalBudget = 120 * time.Second

// poolWorker is one mesh-backed worker over a fresh store.
func poolWorker(mesh *transport.Mesh, name string) (*pool.Worker, error) {
	w := pool.NewWorker(pool.WorkerConfig{
		Transport: mesh.Node(name),
		Backend:   serve.NewPoolBackend(serve.NewStore(serve.StoreConfig{}, nil), nil),
	})
	return w, w.Start()
}

// PoolOverhead runs the pool-overhead experiment: n single-alarm appends
// (default 16 — incremental evaluation cost grows superlinearly in the
// prefix, so longer streams take minutes, not more signal) on a 6-peer
// pipeline net, local vs pooled, then an 8-session batch on one worker
// vs three.
func PoolOverhead(n int) (*PoolOverheadRow, error) {
	if n <= 0 {
		n = 16
	}
	pn := gen.Pipeline(6, 2)
	netText := parser.FormatNet(pn)
	seq := gen.PipelineSeq(pn, rand.New(rand.NewSource(7)), n)
	alarms := make([]string, len(seq))
	for i := range seq {
		alarms[i] = parser.FormatAlarms(seq[i : i+1])
	}
	row := &PoolOverheadRow{Appends: len(alarms), BodiesEqual: true, Sessions: 8}

	// Local side: the exact worker-side code path, minus the pool.
	backend := serve.NewPoolBackend(serve.NewStore(serve.StoreConfig{}, nil), nil)
	if _, err := backend.Create("local", netText, "dqsq", 0); err != nil {
		return nil, err
	}
	localLats := make([]time.Duration, len(alarms))
	localBodies := make([]string, len(alarms))
	for i, a := range alarms {
		start := time.Now()
		body, err := backend.Append("local", a, poolEvalBudget)
		localLats[i] = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("local append %d: %w", i, err)
		}
		localBodies[i] = scrubElapsedMS.ReplaceAllString(string(body), "X")
	}

	// Pooled side: one frontend, one worker, a real placement and journal
	// around every append.
	mesh := transport.NewMesh()
	w, err := poolWorker(mesh, "w1")
	if err != nil {
		return nil, err
	}
	defer w.Close()
	p, err := pool.New(pool.Config{
		Transport:  mesh.Node("fe"),
		Workers:    []string{"w1"},
		ProbeEvery: 250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	res := p.Create(netText, "dqsq", 0, poolEvalBudget)
	if res.Code != wire.SessOK {
		return nil, fmt.Errorf("pooled create: code %d: %s", res.Code, res.Err)
	}
	id := ""
	if m := regexp.MustCompile(`"id": "([^"]*)"`).FindStringSubmatch(string(res.Body)); m != nil {
		id = m[1]
	}
	pooledLats := make([]time.Duration, len(alarms))
	for i, a := range alarms {
		start := time.Now()
		res := p.Append(id, a, poolEvalBudget)
		pooledLats[i] = time.Since(start)
		if res.Code != wire.SessOK {
			return nil, fmt.Errorf("pooled append %d: code %d: %s", i, res.Code, res.Err)
		}
		if scrubElapsedMS.ReplaceAllString(string(res.Body), "X") != localBodies[i] {
			row.BodiesEqual = false
		}
	}

	row.LocalNsPerAppend = medianNs(localLats)
	row.PooledNsPerAppend = medianNs(pooledLats)
	if row.LocalNsPerAppend > 0 {
		row.OverheadRatio = float64(row.PooledNsPerAppend) / float64(row.LocalNsPerAppend)
	}

	// Throughput: the same session batch, one worker vs three. Each
	// session streams a shorter prefix so the batch stays a few seconds.
	batchAlarms := alarms
	if len(batchAlarms) > 8 {
		batchAlarms = batchAlarms[:8]
	}
	runBatch := func(workers []string) (time.Duration, error) {
		mesh := transport.NewMesh()
		for _, name := range workers {
			w, err := poolWorker(mesh, name)
			if err != nil {
				return 0, err
			}
			defer w.Close()
		}
		p, err := pool.New(pool.Config{
			Transport:  mesh.Node("fe"),
			Workers:    workers,
			ProbeEvery: 250 * time.Millisecond,
			// No hedging: in-process transport never drops frames, and a
			// duplicated straggler append is pure extra work that would
			// skew the fleet-width CPU comparison.
			HedgeAfter: -1,
		})
		if err != nil {
			return 0, err
		}
		defer p.Close()
		ids := make([]string, row.Sessions)
		for i := range ids {
			res := p.Create(netText, "dqsq", 0, poolEvalBudget)
			if res.Code != wire.SessOK {
				return 0, fmt.Errorf("batch create: code %d: %s", res.Code, res.Err)
			}
			if m := regexp.MustCompile(`"id": "([^"]*)"`).FindStringSubmatch(string(res.Body)); m != nil {
				ids[i] = m[1]
			}
		}
		var wg sync.WaitGroup
		errc := make(chan error, len(ids))
		start := time.Now()
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for _, a := range batchAlarms {
					if res := p.Append(id, a, poolEvalBudget); res.Code != wire.SessOK {
						errc <- fmt.Errorf("batch append to %s: code %d: %s", id, res.Code, res.Err)
						return
					}
				}
			}(id)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return elapsed, nil
	}
	cpu0 := processCPUMs()
	one, err := runBatch([]string{"w1"})
	if err != nil {
		return nil, err
	}
	cpu1 := processCPUMs()
	three, err := runBatch([]string{"w1", "w2", "w3"})
	if err != nil {
		return nil, err
	}
	cpu2 := processCPUMs()
	row.OneWorkerMs = one.Milliseconds()
	row.ThreeWorkerMs = three.Milliseconds()
	row.OneWorkerCPUMs = cpu1 - cpu0
	row.ThreeWorkerCPUMs = cpu2 - cpu1
	if three > 0 {
		row.WorkerGain = float64(one) / float64(three)
	}
	return row, nil
}

// processCPUMs reads the process's cumulative CPU time (user + system)
// in milliseconds; differencing it around a phase attributes that phase's
// compute, including in-process pool workers and their goroutines.
func processCPUMs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	user := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	sys := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return (user + sys).Milliseconds()
}

func medianNs(lats []time.Duration) int64 {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2].Nanoseconds()
}
