package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/diagnosis"
	"repro/internal/gen"
	"repro/internal/petri"
)

// engineHotpathBaselineNs is the pre-overhaul per-append cost of the online
// diagnosis hot path: the LocalNsPerAppend figure recorded in
// BENCH_pool_overhead.json before the arena-storage/integer-index engine
// rewrite (median direct-backend append, pipeline(6,2), 16 single-alarm
// appends, one core). The engine-hotpath guard in scripts/verify.sh
// asserts the same workload now runs at least twice as fast per append.
const engineHotpathBaselineNs = 34102830

// EngineHotpathRow measures one workload of the engine hot-path
// experiment: the same alarm sequence is streamed through two fresh online
// diagnosers — one evaluating sequentially (worker pool of 1, the
// reference semantics), one on a 4-wide worker pool — and the formatted
// diagnoses of every append, plus the engine's derived/replicated totals,
// must be identical between the two (the distributed evaluation is
// confluent; the worker pool must not change results, only scheduling).
type EngineHotpathRow struct {
	Workload       string
	Appends        int
	SeqNsPerAppend int64   // median per-append, sequential (1 worker)
	ParNsPerAppend int64   // median per-append, 4-worker pool
	SeqNsTotal     int64   // whole sequential stream, wall-clock
	BaselineNs     int64   // pre-overhaul per-append record (0 = no baseline for this workload)
	Speedup        float64 // BaselineNs / SeqNsPerAppend, when a baseline exists
	DiagnosesEqual bool    // per-append diagnosis bodies byte-identical, seq vs parallel
	SeqDerived     int
	ParDerived     int
	SeqReplicated  int
	ParReplicated  int
}

// hotpathSession streams seq one alarm at a time through a fresh online
// diagnoser with the given evaluation parallelism and returns the median
// and total per-append latency, the concatenated formatted diagnoses of
// every append, and the engine's materialization totals.
func hotpathSession(pn *petri.PetriNet, seq alarm.Seq, workers int) (medianNsOut, totalNs int64, bodies string, derived, replicated int, err error) {
	d, err := diagnosis.NewOnlineDiagnoser(pn, datalog.Budget{})
	if err != nil {
		return 0, 0, "", 0, 0, err
	}
	d.SetParallelism(workers)
	lats := make([]time.Duration, 0, len(seq))
	var b strings.Builder
	for i := range seq {
		start := time.Now()
		rep, err := d.Append(seq[i:i+1], poolEvalBudget)
		lats = append(lats, time.Since(start))
		if err != nil {
			return 0, 0, "", 0, 0, fmt.Errorf("append %d (workers=%d): %w", i, workers, err)
		}
		fmt.Fprintf(&b, "%v\n", rep.Diagnoses)
	}
	for _, l := range lats {
		totalNs += l.Nanoseconds()
	}
	derived, replicated = d.Session().Engine().Totals()
	return medianNs(lats), totalNs, b.String(), derived, replicated, nil
}

// EngineHotpath runs the engine hot-path experiment on two workloads: the
// quickstart running example (the paper's Section 2 sequence) and the
// pipeline(6,2) stream behind the recorded pre-overhaul baseline. n
// overrides the pipeline append count (default 16, matching the baseline
// measurement).
func EngineHotpath(n int) ([]EngineHotpathRow, error) {
	if n <= 0 {
		n = 16
	}
	pipeline := gen.Pipeline(6, 2)
	workloads := []struct {
		name     string
		pn       *petri.PetriNet
		seq      alarm.Seq
		baseline int64
	}{
		{"quickstart", petri.Example(), alarm.S("b", "p1", "a", "p2", "c", "p1"), 0},
		{"pipeline(6,2)", pipeline, gen.PipelineSeq(pipeline, rand.New(rand.NewSource(7)), n), engineHotpathBaselineNs},
	}
	rows := make([]EngineHotpathRow, 0, len(workloads))
	for _, w := range workloads {
		seqMed, seqTotal, seqBodies, seqDer, seqRepl, err := hotpathSession(w.pn, w.seq, 1)
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", w.name, err)
		}
		parMed, _, parBodies, parDer, parRepl, err := hotpathSession(w.pn, w.seq, 4)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", w.name, err)
		}
		row := EngineHotpathRow{
			Workload:       w.name,
			Appends:        len(w.seq),
			SeqNsPerAppend: seqMed,
			SeqNsTotal:     seqTotal,
			ParNsPerAppend: parMed,
			BaselineNs:     w.baseline,
			DiagnosesEqual: seqBodies == parBodies && seqDer == parDer && seqRepl == parRepl,
			SeqDerived:     seqDer,
			ParDerived:     parDer,
			SeqReplicated:  seqRepl,
			ParReplicated:  parRepl,
		}
		if w.baseline > 0 && seqMed > 0 {
			row.Speedup = float64(w.baseline) / float64(seqMed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
