package experiments

import "testing"

func TestTransportOverheadShape(t *testing.T) {
	row, err := TransportOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Iters != 1 {
		t.Fatalf("iters = %d", row.Iters)
	}
	if row.InProcNsPerOp <= 0 || row.TCPNsPerOp <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.Messages == 0 {
		t.Fatal("distributed run reported no peer messages")
	}
	if row.TCPBytesPerOp == 0 {
		t.Fatal("TCP run moved no bytes")
	}
}
