package experiments

import (
	"time"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
	"repro/internal/petri"
	"repro/internal/transport"
)

// TransportOverheadRow quantifies what real sockets cost the distributed
// evaluation: the quickstart diagnosis (running example, sequence A1 of
// Section 2, dQSQ engine) over the in-process mesh against the same
// cluster topology over TCP loopback. Both runs use the full cluster
// protocol — jobs, rounds, two-wave quiescence — so the delta is the
// wire codec plus the kernel socket path, nothing else.
type TransportOverheadRow struct {
	Iters         int
	Messages      int // peer messages per evaluation (identical on both substrates)
	InProcNsPerOp int64
	TCPNsPerOp    int64
	OverheadPct   float64 // (tcp-inproc)/inproc, in percent; noisy but indicative
	TCPBytesPerOp uint64  // driver-side bytes sent+received per TCP evaluation
}

// TransportOverhead times iters quickstart diagnoses over each substrate.
// Each substrate gets one long-lived cluster (as a deployment would) and
// a warm-up evaluation before timing.
func TransportOverhead(iters int) (*TransportOverheadRow, error) {
	if iters <= 0 {
		iters = 5
	}
	pn := petri.Example()
	seq := alarm.S("b", "p1", "a", "p2", "c", "p1")
	opt := diagnosis.Options{Timeout: 2 * time.Minute}

	row := &TransportOverheadRow{Iters: iters}

	run := func(cl *diagnosis.Cluster) error {
		rep, err := diagnosis.RunDistributed(pn, seq, diagnosis.EngineDQSQ, opt, cl)
		if err != nil {
			return err
		}
		if len(rep.Diagnoses) == 0 {
			return errNoDiagnosis
		}
		row.Messages = rep.Messages
		return nil
	}

	// In-process mesh: two member nodes served from goroutines.
	mesh := transport.NewMesh()
	meshCl := &diagnosis.Cluster{Transport: mesh.Node("driver"), Nodes: []string{"n1", "n2"}}
	defer meshCl.Close()
	for _, name := range meshCl.Nodes {
		node, err := diagnosis.NewNode(mesh.Node(name), "driver")
		if err != nil {
			return nil, err
		}
		defer node.Close()
		go node.Serve() //nolint:errcheck
	}
	if err := run(meshCl); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := run(meshCl); err != nil {
			return nil, err
		}
	}
	row.InProcNsPerOp = time.Since(start).Nanoseconds() / int64(iters)

	// TCP loopback: same topology over real sockets on ephemeral ports.
	names := []string{"driver", "n1", "n2"}
	trs := make(map[string]*transport.TCP, len(names))
	addrs := make(map[string]string, len(names))
	for _, name := range names {
		tr, err := transport.ListenTCP(name, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		trs[name] = tr
		addrs[name] = tr.Addr()
	}
	tcpCl := &diagnosis.Cluster{Transport: trs["driver"], Nodes: []string{"n1", "n2"}, Addrs: addrs}
	defer tcpCl.Close()
	for _, name := range tcpCl.Nodes {
		trs["driver"].AddRoute(name, addrs[name])
		node, err := diagnosis.NewNode(trs[name], "driver")
		if err != nil {
			return nil, err
		}
		defer node.Close()
		go node.Serve() //nolint:errcheck
	}
	if err := run(tcpCl); err != nil {
		return nil, err
	}
	before := trs["driver"].Stats()
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := run(tcpCl); err != nil {
			return nil, err
		}
	}
	row.TCPNsPerOp = time.Since(start).Nanoseconds() / int64(iters)
	after := trs["driver"].Stats()
	row.TCPBytesPerOp = (after.BytesSent - before.BytesSent +
		after.BytesReceived - before.BytesReceived) / uint64(iters)
	if row.InProcNsPerOp > 0 {
		row.OverheadPct = 100 * float64(row.TCPNsPerOp-row.InProcNsPerOp) / float64(row.InProcNsPerOp)
	}
	return row, nil
}
