package experiments

import (
	"math"
	"time"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/transport"
)

// ClusterTraceOverheadRow quantifies what cluster-wide telemetry costs a
// distributed evaluation: the quickstart diagnosis (running example,
// sequence A1 of Section 2, dQSQ engine) over the in-process mesh with
// telemetry off against the same cluster with full tracing on — members
// recording spans, draining them into Telemetry frames every round, the
// driver folding them into the merged timeline. The delta is the whole
// observability tax: event recording on three processes plus the extra
// frames on the wire.
type ClusterTraceOverheadRow struct {
	Iters          int
	OffNsPerOp     int64
	OnNsPerOp      int64
	OverheadPct    float64 // (on-off)/off, in percent; noisy but indicative
	MemberEvents   int     // trace events the members shipped across the timed runs
	TelemetryNodes int     // member nodes that reported telemetry
}

// ClusterTraceOverhead times iters distributed quickstart diagnoses with
// telemetry off and on. Both configurations run over one long-lived
// in-process mesh cluster, each timed as the best of three batches — the
// verify.sh guard compares the two, so the timing must shed scheduler
// noise, not average it in.
func ClusterTraceOverhead(iters int) (*ClusterTraceOverheadRow, error) {
	if iters <= 0 {
		iters = 5
	}
	pn := petri.Example()
	seq := alarm.S("b", "p1", "a", "p2", "c", "p1")

	mesh := transport.NewMesh()
	cl := &diagnosis.Cluster{Transport: mesh.Node("driver"), Nodes: []string{"n1", "n2"}}
	defer cl.Close()
	for _, name := range cl.Nodes {
		node, err := diagnosis.NewNode(mesh.Node(name), "driver")
		if err != nil {
			return nil, err
		}
		defer node.Close()
		go node.Serve() //nolint:errcheck
	}

	run := func(tracer obs.Tracer) error {
		opt := diagnosis.Options{Timeout: 2 * time.Minute, Tracer: tracer}
		rep, err := diagnosis.RunDistributed(pn, seq, diagnosis.EngineDQSQ, opt, cl)
		if err != nil {
			return err
		}
		if len(rep.Diagnoses) == 0 {
			return errNoDiagnosis
		}
		return nil
	}
	// Best-of-three batches: the guard wants the configurations' floors,
	// not their scheduler-noise averages.
	timeBatches := func(tracer func() obs.Tracer) (int64, error) {
		best := int64(math.MaxInt64)
		for b := 0; b < 3; b++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := run(tracer()); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start).Nanoseconds(); d < best {
				best = d
			}
		}
		return best / int64(iters), nil
	}

	// One warm-up of each configuration before timing.
	if err := run(nil); err != nil {
		return nil, err
	}
	if err := run(obs.NewChromeTraceWriter(-1)); err != nil {
		return nil, err
	}

	row := &ClusterTraceOverheadRow{Iters: iters}
	var err error
	if row.OffNsPerOp, err = timeBatches(func() obs.Tracer { return nil }); err != nil {
		return nil, err
	}
	if row.OnNsPerOp, err = timeBatches(func() obs.Tracer { return obs.NewChromeTraceWriter(-1) }); err != nil {
		return nil, err
	}
	if row.OffNsPerOp > 0 {
		row.OverheadPct = 100 * float64(row.OnNsPerOp-row.OffNsPerOp) / float64(row.OffNsPerOp)
	}
	for _, pt := range cl.ProcessTraces() {
		row.TelemetryNodes++
		row.MemberEvents += len(pt.Events)
	}
	return row, nil
}
