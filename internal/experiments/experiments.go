// Package experiments implements the reproduction's experiment suite: one
// function per experiment row of EXPERIMENTS.md. The paper (PODS 2005) has
// no measured tables — its evaluation artifacts are Figures 1-5 and
// Theorems 1-4 + Proposition 1 — so each experiment either validates a
// theorem empirically or quantifies the materialization behaviour the
// paper argues about (dQSQ ≈ dedicated algorithm of [8] ≪ naive).
//
// cmd/benchreport prints these rows; bench_test.go at the repository root
// wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/diagnosis"
	"repro/internal/dqsq"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/product"
	"repro/internal/qsq"
	"repro/internal/term"
)

// MaterializationRow compares, for one alarm sequence, the unfolding
// prefix materialized by each engine (Theorem 4 / experiment S1).
type MaterializationRow struct {
	SeqLen         int
	Diagnoses      int
	ProductEvents  int // prefix events of the dedicated algorithm [8]
	DQSQEvents     int // distinct trans nodes materialized by dQSQ
	NaiveEvents    int // trans facts of the depth-bounded naive run
	DQSQDerived    int
	NaiveDerived   int
	DQSQMessages   int
	NaiveMessages  int
	ExactPrefixEq  bool // dQSQ node set == product node set
	ProductElapsed time.Duration
	DQSQElapsed    time.Duration
	NaiveElapsed   time.Duration
}

// p2LoopSeq builds length-n alternating a/b sequences at p2 of the running
// example — they walk the v/vi cycle, so deeper sequences need deeper
// unfolding prefixes.
func p2LoopSeq(n int) alarm.Seq {
	var out alarm.Seq
	for i := 0; i < n; i++ {
		a := petri.Alarm("a")
		if i%2 == 1 {
			a = "b"
		}
		out = append(out, alarm.Obs{Alarm: a, Peer: "p2"})
	}
	return out
}

// MaterializationSweep runs experiment S1: materialized prefix size versus
// alarm sequence length on the running example.
func MaterializationSweep(maxLen int) ([]MaterializationRow, error) {
	pn := petri.Example()
	var rows []MaterializationRow
	for n := 1; n <= maxLen; n++ {
		row, err := Materialization(pn, p2LoopSeq(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Materialization measures one instance (Theorem 4's comparison).
func Materialization(pn *petri.PetriNet, seq alarm.Seq) (*MaterializationRow, error) {
	row := &MaterializationRow{SeqLen: len(seq)}

	start := time.Now()
	prodRes, err := product.Run(pn, seq, product.Options{})
	if err != nil {
		return nil, err
	}
	row.ProductElapsed = time.Since(start)
	row.ProductEvents = len(prodRes.PrefixEvents)
	row.Diagnoses = len(prodRes.Diagnoses)

	dq, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, diagnosis.Options{Timeout: 2 * time.Minute})
	if err != nil {
		return nil, err
	}
	row.DQSQEvents = dq.TransFacts
	row.DQSQDerived = dq.Derived
	row.DQSQMessages = dq.Messages
	row.DQSQElapsed = dq.Elapsed

	nv, err := diagnosis.Run(pn, seq, diagnosis.EngineNaive, diagnosis.Options{Timeout: 2 * time.Minute})
	if err != nil {
		return nil, err
	}
	row.NaiveEvents = nv.TransFacts
	row.NaiveDerived = nv.Derived
	row.NaiveMessages = nv.Messages
	row.NaiveElapsed = nv.Elapsed

	row.ExactPrefixEq = row.DQSQEvents == row.ProductEvents
	return row, nil
}

// PipelineRow is one point of experiment S2: scaling with peer count.
type PipelineRow struct {
	Peers        int
	Branching    int
	SeqLen       int
	Diagnoses    int
	DQSQDerived  int
	DQSQMessages int
	NaiveDerived int
	NaiveMsgs    int
	DQSQElapsed  time.Duration
	NaiveElapsed time.Duration
}

// PipelineSweep runs experiment S2 on gen.Pipeline nets.
func PipelineSweep(peerCounts []int, branching, steps int, seed int64) ([]PipelineRow, error) {
	var rows []PipelineRow
	for _, k := range peerCounts {
		pn := gen.Pipeline(k, branching)
		seq := gen.PipelineSeq(pn, rand.New(rand.NewSource(seed)), steps)
		row := PipelineRow{Peers: k, Branching: branching, SeqLen: len(seq)}

		dq, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, diagnosis.Options{Timeout: 2 * time.Minute})
		if err != nil {
			return nil, fmt.Errorf("dqsq peers=%d: %w", k, err)
		}
		row.Diagnoses = len(dq.Diagnoses)
		row.DQSQDerived = dq.Derived
		row.DQSQMessages = dq.Messages
		row.DQSQElapsed = dq.Elapsed

		nv, err := diagnosis.Run(pn, seq, diagnosis.EngineNaive, diagnosis.Options{Timeout: 2 * time.Minute})
		if err != nil {
			return nil, fmt.Errorf("naive peers=%d: %w", k, err)
		}
		row.NaiveDerived = nv.Derived
		row.NaiveMsgs = nv.Messages
		row.NaiveElapsed = nv.Elapsed
		rows = append(rows, row)
	}
	return rows, nil
}

// QSQRow is one point of the Theorem 1 / Figure 3-5 experiment: the
// centralized and distributed rewritings materialize identical fact sets.
type QSQRow struct {
	ChainLen     int
	QSQDerived   int
	DQSQDerived  int
	NaiveDerived int // full semi-naive evaluation of the localized program
	Answers      int
	Equal        bool
}

// figure3Instance builds the Figure 3 program over chain data of length n.
func figure3Instance(n int) *ddatalog.Program {
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("A", "r", x, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("S", "s", x, z), ddatalog.At("T", "t", z, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("S", "s", x, y), Body: []ddatalog.PAtom{ddatalog.At("R", "r", x, y), ddatalog.At("B", "s", y, z)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("T", "t", x, y), Body: []ddatalog.PAtom{ddatalog.At("C", "t", x, y)}})
	num := func(i int) term.ID { return s.Constant(fmt.Sprintf("n%02d", i)) }
	w := s.Constant("w")
	for i := 0; i < n; i++ {
		p.AddFact(ddatalog.At("A", "r", num(i), num(i+1)))
		p.AddFact(ddatalog.At("B", "s", num(i+1), w))
		p.AddFact(ddatalog.At("C", "t", num(i+1), num(i+2)))
	}
	return p
}

// Theorem1Sweep measures QSQ-vs-dQSQ materialization equality on growing
// Figure 3 instances.
func Theorem1Sweep(chainLens []int) ([]QSQRow, error) {
	var rows []QSQRow
	for _, n := range chainLens {
		p := figure3Instance(n)
		s := p.Store
		q := ddatalog.At("R", "r", s.Constant("n00"), s.Variable("Y"))

		res, err := dqsq.Run(p, q, datalog.Budget{}, 2*time.Minute)
		if err != nil {
			return nil, err
		}

		pl := figure3Instance(n)
		local := pl.Localize()
		ls := local.Store
		qAns, _, qStats, err := qsq.Run(local, datalog.Atom{Rel: "R@r",
			Args: []term.ID{ls.Constant("n00"), ls.Variable("Y")}}, datalog.Budget{})
		if err != nil {
			return nil, err
		}
		_, nvStats := figure3Instance(n).Localize().SemiNaive(datalog.Budget{})

		rows = append(rows, QSQRow{
			ChainLen:     n,
			QSQDerived:   qStats.Derived,
			DQSQDerived:  res.Stats.Derived,
			NaiveDerived: nvStats.Derived,
			Answers:      len(qAns),
			Equal:        qStats.Derived == res.Stats.Derived,
		})
	}
	return rows, nil
}

// ConcurrencyRow is the Fork workload (interleaving explosion): the direct
// diagnoser's explored state count against the compact engines.
type ConcurrencyRow struct {
	Branches      int
	Depth         int
	SeqLen        int
	Diagnoses     int
	ProductEvents int
	DQSQEvents    int
	DirectElapsed time.Duration
	DQSQElapsed   time.Duration
}

// ConcurrencySweep runs the Fork family.
func ConcurrencySweep(branchCounts []int, depth int, seed int64) ([]ConcurrencyRow, error) {
	var rows []ConcurrencyRow
	for _, b := range branchCounts {
		pn := gen.Fork(b, depth)
		seq := gen.ForkSeq(pn, rand.New(rand.NewSource(seed)))
		row := ConcurrencyRow{Branches: b, Depth: depth, SeqLen: len(seq)}

		start := time.Now()
		direct := diagnosis.Direct(pn, seq, diagnosis.DirectOptions{})
		row.DirectElapsed = time.Since(start)
		row.Diagnoses = len(direct)

		prodRes, err := product.Run(pn, seq, product.Options{})
		if err != nil {
			return nil, err
		}
		row.ProductEvents = len(prodRes.PrefixEvents)

		// The supervisor program's configuration ids are order-sensitive
		// (one h-chain per interleaving — the storage inefficiency the
		// paper itself notes in Remark 5), so the Datalog engines blow up
		// factorially on pure concurrency. Run dQSQ only on the instances
		// where that chain count stays reasonable and report 0 otherwise.
		if b*depth <= 6 {
			dq, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, diagnosis.Options{Timeout: 2 * time.Minute})
			if err != nil {
				return nil, err
			}
			row.DQSQEvents = dq.TransFacts
			row.DQSQElapsed = dq.Elapsed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationRow compares QSQ against magic sets (the paper cites them as the
// two sibling optimizations) on the Figure 3 family.
type AblationRow struct {
	ChainLen     int
	QSQDerived   int
	MagicDerived int
	SameAnswers  bool
}

// MagicAblation runs the QSQ-vs-magic ablation.
func MagicAblation(chainLens []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, n := range chainLens {
		p1 := figure3Instance(n).Localize()
		s1 := p1.Store
		q1 := datalog.Atom{Rel: "R@r", Args: []term.ID{s1.Constant("n00"), s1.Variable("Y")}}
		a1, _, st1, err := qsq.Run(p1, q1, datalog.Budget{})
		if err != nil {
			return nil, err
		}
		p2 := figure3Instance(n).Localize()
		s2 := p2.Store
		q2 := datalog.Atom{Rel: "R@r", Args: []term.ID{s2.Constant("n00"), s2.Variable("Y")}}
		a2, _, st2, err := magicRun(p2, q2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			ChainLen:     n,
			QSQDerived:   st1.Derived,
			MagicDerived: st2.Derived,
			SameAnswers:  len(a1) == len(a2),
		})
	}
	return rows, nil
}
