package experiments

import "testing"

func TestTraceOverheadShape(t *testing.T) {
	row, err := TraceOverhead(1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Iters != 1 {
		t.Fatalf("iters = %d", row.Iters)
	}
	if row.NopNsPerOp <= 0 || row.TracedNsPerOp <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	if row.TraceEvents == 0 {
		t.Fatal("traced run recorded no events")
	}
}
