package experiments

import (
	"errors"
	"time"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
	"repro/internal/obs"
	"repro/internal/petri"
)

var errNoDiagnosis = errors.New("quickstart diagnosis returned no explanation")

// TraceOverheadRow quantifies what the observability layer costs on the
// quickstart diagnosis (running example, sequence A1 of Section 2): the
// default no-op tracer path against a full ChromeTraceWriter capture.
// The no-op path is the one every untraced run pays, so it must stay
// indistinguishable from not having the layer at all — verify.sh guards
// that with a benchmark ratio, and the zero-alloc tests in internal/obs
// pin the per-call cost.
type TraceOverheadRow struct {
	Iters         int
	NopNsPerOp    int64
	TracedNsPerOp int64
	OverheadPct   float64 // (traced-nop)/nop, in percent; noisy but indicative
	TraceEvents   int     // events one traced run records
}

// TraceOverhead times iters quickstart diagnoses with the tracer off and
// on. Each traced iteration gets a fresh unbounded writer, matching what
// cmd/diagnose -trace does.
func TraceOverhead(iters int) (*TraceOverheadRow, error) {
	if iters <= 0 {
		iters = 5
	}
	pn := petri.Example()
	seq := alarm.S("b", "p1", "a", "p2", "c", "p1")
	opt := diagnosis.Options{Timeout: 2 * time.Minute}

	run := func(o diagnosis.Options) error {
		rep, err := diagnosis.Run(pn, seq, diagnosis.EngineDQSQ, o)
		if err != nil {
			return err
		}
		if len(rep.Diagnoses) == 0 {
			return errNoDiagnosis
		}
		return nil
	}

	// One warm-up of each configuration before timing.
	if err := run(opt); err != nil {
		return nil, err
	}
	traced := opt
	traced.Tracer = obs.NewChromeTraceWriter(-1)
	if err := run(traced); err != nil {
		return nil, err
	}

	row := &TraceOverheadRow{Iters: iters}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := run(opt); err != nil {
			return nil, err
		}
	}
	row.NopNsPerOp = time.Since(start).Nanoseconds() / int64(iters)

	start = time.Now()
	var last *obs.ChromeTraceWriter
	for i := 0; i < iters; i++ {
		o := opt
		last = obs.NewChromeTraceWriter(-1)
		o.Tracer = last
		if err := run(o); err != nil {
			return nil, err
		}
	}
	row.TracedNsPerOp = time.Since(start).Nanoseconds() / int64(iters)
	row.TraceEvents = last.Len()
	if row.NopNsPerOp > 0 {
		row.OverheadPct = 100 * float64(row.TracedNsPerOp-row.NopNsPerOp) / float64(row.NopNsPerOp)
	}
	return row, nil
}
