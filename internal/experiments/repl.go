package experiments

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
)

// ReplOverheadRow quantifies what live replication costs the primary and
// what group commit buys it. The append side is the diagnosed serving
// path in miniature: a WAL under -fsync always, appends timed one by one
// while zero, one, or two followers tail the log over TCP loopback.
// Shipping is asynchronous (a per-follower goroutine wakes on the
// appended sequence), so follower count should barely move the p50 —
// verify.sh guards the one-follower ratio at 1.25x. Each configuration
// is best-of-three batches, so the ratio compares floors, not scheduler
// noise on a loaded machine. The group-commit side reruns the wal bench
// shape: 8 concurrent writers under SyncAlways, batched fsyncs vs one
// fsync per append.
type ReplOverheadRow struct {
	Appends           int
	P50NsNoFollower   int64
	P50NsOneFollower  int64
	P50NsTwoFollowers int64
	OneFollowerRatio  float64 // p50(1 follower) / p50(0 followers)
	FollowersCaughtUp bool    // every follower log holds every appended record

	Writers         int
	GroupNsPerOp    int64   // 8 writers, group commit on
	SoloNsPerOp     int64   // 8 writers, one fsync per append
	GroupCommitGain float64 // solo / group throughput ratio
}

// replBenchSource ships no sessions: the log's full record range covers
// everything, so a fresh follower resyncs to an empty table and streams
// from the first retained sequence — exactly the shape of a diagnosed
// primary whose sessions all live in the uncompacted log.
type replBenchSource struct{ log *wal.Log }

func (s replBenchSource) Dump() ([]repl.Snapshot, uint64, error) {
	resume := s.log.FirstSeq()
	if resume == 0 {
		resume = s.log.LastSeq() + 1
	}
	return nil, resume, nil
}

// replBenchApplier mirrors the stream into the follower's own log — the
// same durability work serve's applier does, minus the session replay.
type replBenchApplier struct{ log *wal.Log }

func (a replBenchApplier) LastApplied() (uint64, uint32) {
	last := a.log.LastSeq()
	if last == 0 {
		return 0, 0
	}
	var crc uint32
	if err := a.log.ReadRange(last, last, func(_ uint64, payload []byte) error {
		crc = crc32.ChecksumIEEE(payload)
		return nil
	}); err != nil {
		return last, 0
	}
	return last, crc
}

func (a replBenchApplier) Resync(_ []repl.Snapshot, resume uint64) error {
	return a.log.SkipTo(resume)
}

func (a replBenchApplier) Apply(seq uint64, payload []byte) error {
	got, err := a.log.Append(payload)
	if err != nil {
		return err
	}
	if got != seq {
		return fmt.Errorf("experiments: local wal assigned seq %d, stream says %d", got, seq)
	}
	return nil
}

// ReplOverhead runs the replication-overhead experiment: n timed appends
// per follower configuration (default 128), then the 8-writer group
// commit comparison over the same total append count.
func ReplOverhead(n int) (*ReplOverheadRow, error) {
	if n <= 0 {
		n = 128
	}
	dir, err := os.MkdirTemp("", "repl-overhead-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	row := &ReplOverheadRow{Appends: n, Writers: 8, FollowersCaughtUp: true}
	payload := bytes.Repeat([]byte("d"), 256)

	// timedAppends opens a fresh SyncAlways log, attaches the requested
	// follower count, and returns the p50 append latency once every
	// follower is live (so shipping overlaps the timed appends).
	timedAppends := func(name string, followers int) (int64, error) {
		log, err := wal.Open(filepath.Join(dir, name), wal.Options{Fsync: wal.SyncAlways})
		if err != nil {
			return 0, err
		}
		defer log.Close() //nolint:errcheck // experiment scratch state
		var (
			primary *repl.Primary
			fs      []*repl.Follower
			flogs   []*wal.Log
		)
		if followers > 0 {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return 0, err
			}
			primary = repl.NewPrimary(log, replBenchSource{log}, repl.PrimaryOptions{Heartbeat: 50 * time.Millisecond})
			go primary.Serve(ln) //nolint:errcheck // closed by primary.Close
			defer primary.Close()
			for i := 0; i < followers; i++ {
				flog, err := wal.Open(filepath.Join(dir, fmt.Sprintf("%s-f%d", name, i)), wal.Options{Fsync: wal.SyncNever})
				if err != nil {
					return 0, err
				}
				defer flog.Close() //nolint:errcheck // experiment scratch state
				f := repl.NewFollower(ln.Addr().String(), replBenchApplier{flog},
					repl.FollowerOptions{Heartbeat: 50 * time.Millisecond})
				f.Start()
				defer f.Stop()
				fs = append(fs, f)
				flogs = append(flogs, flog)
			}
			for _, f := range fs {
				if err := waitReplUntil(5*time.Second, func() bool { return f.Status().Connected }); err != nil {
					return 0, fmt.Errorf("follower never connected: %w", err)
				}
			}
		}
		lats := make([]time.Duration, n)
		for i := range lats {
			start := time.Now()
			if _, err := log.Append(payload); err != nil {
				return 0, err
			}
			lats[i] = time.Since(start)
		}
		// Drain: every follower must hold the full record range before the
		// configuration tears down — replication is async but not lossy.
		want := log.LastSeq()
		for _, flog := range flogs {
			flog := flog
			if err := waitReplUntil(10*time.Second, func() bool { return flog.LastSeq() >= want }); err != nil {
				row.FollowersCaughtUp = false
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2].Nanoseconds(), nil
	}

	// bestP50 takes the floor of three batches: a transient stall (GC,
	// scheduler, a neighbouring benchmark) inflates one batch, not all
	// three, so comparing minima isolates the cost that is actually
	// attributable to the follower.
	bestP50 := func(name string, followers int) (int64, error) {
		var best int64
		for b := 0; b < 3; b++ {
			p50, err := timedAppends(fmt.Sprintf("%s-b%d", name, b), followers)
			if err != nil {
				return 0, err
			}
			if best == 0 || p50 < best {
				best = p50
			}
		}
		return best, nil
	}

	// Warm-up (page cache, lazy segment creation), then the timed runs.
	if _, err := timedAppends("warmup", 0); err != nil {
		return nil, err
	}
	if row.P50NsNoFollower, err = bestP50("f0", 0); err != nil {
		return nil, err
	}
	if row.P50NsOneFollower, err = bestP50("f1", 1); err != nil {
		return nil, err
	}
	if row.P50NsTwoFollowers, err = bestP50("f2", 2); err != nil {
		return nil, err
	}
	if row.P50NsNoFollower > 0 {
		row.OneFollowerRatio = float64(row.P50NsOneFollower) / float64(row.P50NsNoFollower)
	}

	// Group commit: 8 writers hammering one SyncAlways log, batched
	// fsyncs vs one per append. SyncDelay models a disk with a real sync
	// cost, as in wal's BenchmarkAppend8Writers — without it a tmpfs
	// fsync is too cheap for batching to matter.
	concurrent := func(name string, off bool) (int64, error) {
		log, err := wal.Open(filepath.Join(dir, name), wal.Options{
			Fsync: wal.SyncAlways, SyncDelay: 200 * time.Microsecond, NoGroupCommit: off,
		})
		if err != nil {
			return 0, err
		}
		defer log.Close() //nolint:errcheck // experiment scratch state
		per := (n + row.Writers - 1) / row.Writers
		var wg sync.WaitGroup
		errc := make(chan error, row.Writers)
		start := time.Now()
		for w := 0; w < row.Writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := log.Append(payload); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return elapsed.Nanoseconds() / int64(per*row.Writers), nil
	}
	if row.GroupNsPerOp, err = concurrent("group", false); err != nil {
		return nil, err
	}
	if row.SoloNsPerOp, err = concurrent("solo", true); err != nil {
		return nil, err
	}
	if row.GroupNsPerOp > 0 {
		row.GroupCommitGain = float64(row.SoloNsPerOp) / float64(row.GroupNsPerOp)
	}
	return row, nil
}

// waitReplUntil polls cond every millisecond until it holds or the
// deadline passes.
func waitReplUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", d)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
