package experiments

import (
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dqsq"
)

// PlacementRow is one point of the Remark 1 ablation: the same dQSQ
// rewriting with supplementary relations hosted at the data (Figure 5) vs
// at the rule's home peer.
type PlacementRow struct {
	ChainLen      int
	AtDataMsgs    int
	AtDataRepl    int
	AtHeadMsgs    int
	AtHeadRepl    int
	SameAnswers   bool
	AtDataElapsed time.Duration
	AtHeadElapsed time.Duration
}

// PlacementAblation runs the Remark 1 ablation on the Figure 3 family.
func PlacementAblation(chainLens []int) ([]PlacementRow, error) {
	var rows []PlacementRow
	for _, n := range chainLens {
		row := PlacementRow{ChainLen: n}
		var counts [2]int
		for i, place := range []dqsq.Placement{dqsq.PlaceAtData, dqsq.PlaceAtHead} {
			p := figure3Instance(n)
			s := p.Store
			q := ddatalog.At("R", "r", s.Constant("n00"), s.Variable("Y"))
			rw, err := dqsq.RewritePlaced(p, q, place)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, _, err := ddatalog.Run(rw.Program, rw.Query, datalog.Budget{}, 2*time.Minute)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			counts[i] = len(res.Answers)
			if place == dqsq.PlaceAtData {
				row.AtDataMsgs = res.Stats.Net.MessagesSent
				row.AtDataRepl = res.Stats.Replicated
				row.AtDataElapsed = elapsed
			} else {
				row.AtHeadMsgs = res.Stats.Net.MessagesSent
				row.AtHeadRepl = res.Stats.Replicated
				row.AtHeadElapsed = elapsed
			}
		}
		row.SameAnswers = counts[0] == counts[1]
		rows = append(rows, row)
	}
	return rows, nil
}
