package qsq

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/rel"
	"repro/internal/term"
)

// figure3Local builds the local version of the paper's Figure 3 program
// (peer names erased), over given base facts for A, B, C.
//
//	rule 1: R(x,y) :- A(x,y)
//	rule 2: R(x,y) :- S(x,z), T(z,y)
//	rule 3: S(x,y) :- R(x,y), B(y,z)
//	rule 4: T(x,y) :- C(x,y)
func figure3Local(a, b, c [][2]string) *datalog.Program {
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(datalog.Rule{Head: datalog.A("R", x, y), Body: []datalog.Atom{datalog.A("A", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("R", x, y), Body: []datalog.Atom{
		datalog.A("S", x, z), datalog.A("T", z, y),
	}})
	p.AddRule(datalog.Rule{Head: datalog.A("S", x, y), Body: []datalog.Atom{
		datalog.A("R", x, y), datalog.A("B", y, z),
	}})
	p.AddRule(datalog.Rule{Head: datalog.A("T", x, y), Body: []datalog.Atom{datalog.A("C", x, y)}})
	add := func(name rel.Name, rows [][2]string) {
		for _, r := range rows {
			p.AddFact(datalog.A(name, s.Constant(r[0]), s.Constant(r[1])))
		}
	}
	add("A", a)
	add("B", b)
	add("C", c)
	return p
}

func sortedAnswers(s *term.Store, rows [][]term.ID) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = s.String(t)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func TestFigure4AdornmentsMatchPaper(t *testing.T) {
	p := figure3Local(nil, nil, nil)
	s := p.Store
	q := datalog.A("R", s.Constant("1"), s.Variable("Ans"))
	rw, err := Rewrite(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4 expands exactly R^bf, S^bf, T^bf.
	want := []adorn.Key{{Rel: "R", Ad: "bf"}, {Rel: "S", Ad: "bf"}, {Rel: "T", Ad: "bf"}}
	if len(rw.Keys) != len(want) {
		t.Fatalf("keys = %v, want %v", rw.Keys, want)
	}
	for i, k := range want {
		if rw.Keys[i] != k {
			t.Fatalf("keys[%d] = %v, want %v", i, rw.Keys[i], k)
		}
	}
	if rw.Query.Rel != "R#bf" {
		t.Fatalf("query relation %s", rw.Query.Rel)
	}
}

func TestFigure4StructureMatchesPaper(t *testing.T) {
	p := figure3Local(nil, nil, nil)
	s := p.Store
	q := datalog.A("R", s.Constant("1"), s.Variable("Ans"))
	rw, err := Rewrite(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Count rules per head relation; Figure 4's table has:
	//   rule 1 (R:-A):   sup0_0, sup0_1, R#bf      -> 3 rules
	//   rule 2 (R:-S,T): sup1_0, in-S, sup1_1, in-T, sup1_2, R#bf -> 6
	//   rule 3 (S:-R,B): sup2_0, in-R, sup2_1, sup2_2, S#bf       -> 5
	//   rule 4 (T:-C):   sup3_0, sup3_1, T#bf      -> 3
	if len(rw.Program.Rules) != 17 {
		for _, r := range rw.Program.Rules {
			t.Log(r.String(s))
		}
		t.Fatalf("rewriting has %d rules, Figure 4 has 17", len(rw.Program.Rules))
	}
	heads := map[rel.Name]int{}
	for _, r := range rw.Program.Rules {
		heads[r.Head.Rel]++
	}
	for _, check := range []struct {
		name rel.Name
		n    int
	}{
		{"R#bf", 2}, {"S#bf", 1}, {"T#bf", 1},
		{"in-S#bf", 1}, {"in-T#bf", 1}, {"in-R#bf", 1},
		{"sup1_1#bf", 1}, {"sup2_2#bf", 1},
	} {
		if heads[check.name] != check.n {
			t.Fatalf("%s defined by %d rules, want %d\nheads: %v", check.name, heads[check.name], check.n, heads)
		}
	}
	// Seed: in-R#bf("1").
	if len(rw.Program.Facts) != 1 || rw.Program.Facts[0].Rel != "in-R#bf" {
		t.Fatalf("seed facts = %v", rw.Program.Facts)
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}

func TestQSQAnswersMatchNaive(t *testing.T) {
	a := [][2]string{{"1", "2"}, {"2", "3"}, {"9", "9"}}
	b := [][2]string{{"2", "ok"}, {"3", "ok"}}
	c := [][2]string{{"2", "4"}, {"3", "5"}}
	p := figure3Local(a, b, c)
	s := p.Store
	ans := s.Variable("Ans")
	q := datalog.A("R", s.Constant("1"), ans)

	fullDB, _ := figure3Local(a, b, c).SemiNaive(datalog.Budget{})
	want := sortedAnswers(s, datalog.Answers(fullDB, figure3Local(a, b, c).Store, datalog.Atom{})) // placeholder, replaced below

	// Recompute want properly against the same store.
	p2 := figure3Local(a, b, c)
	db2, _ := p2.SemiNaive(datalog.Budget{})
	want = sortedAnswers(p2.Store, datalog.Answers(db2, p2.Store, datalog.A("R", p2.Store.Constant("1"), p2.Store.Variable("Ans"))))

	got, _, st, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatalf("truncated: %s", st.Reason)
	}
	if g := sortedAnswers(s, got); strings.Join(g, ";") != strings.Join(want, ";") {
		t.Fatalf("qsq answers %v, naive answers %v", g, want)
	}
	if len(got) == 0 {
		t.Fatal("expected nonempty answers (R(1,2), R(1,4), ...)")
	}
}

func TestQSQMaterializesLess(t *testing.T) {
	// A long chain in A, but the query only reaches a short prefix through
	// the S/T recursion; QSQ must not materialize unrelated chain parts.
	var a, b, c [][2]string
	for i := 0; i < 50; i++ {
		a = append(a, [2]string{num(i), num(i + 1)})
		b = append(b, [2]string{num(i + 1), "ok"})
		c = append(c, [2]string{num(i + 1), num(i + 100)})
	}
	p := figure3Local(a, b, c)
	s := p.Store
	q := datalog.A("R", s.Constant(num(0)), s.Variable("Ans"))

	pNaive := figure3Local(a, b, c)
	_, stNaive := pNaive.SemiNaive(datalog.Budget{})
	_, _, stQSQ, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if stQSQ.Derived >= stNaive.Derived {
		t.Fatalf("QSQ derived %d >= naive derived %d", stQSQ.Derived, stNaive.Derived)
	}
}

func num(i int) string { return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestQSQOnEDBQuery(t *testing.T) {
	p := figure3Local([][2]string{{"1", "2"}}, nil, nil)
	s := p.Store
	q := datalog.A("A", s.Constant("1"), s.Variable("Y"))
	got, _, _, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || s.String(got[0][0]) != "2" {
		t.Fatalf("EDB query answers %v", got)
	}
}

func TestQSQWithNeqConstraints(t *testing.T) {
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(datalog.Rule{
		Head: datalog.A("diff", x, y),
		Body: []datalog.Atom{datalog.A("n", x), datalog.A("n", y)},
		Neqs: []datalog.Neq{{X: x, Y: y}},
	})
	for _, v := range []string{"a", "b", "c"} {
		p.AddFact(datalog.A("n", s.Constant(v)))
	}
	q := datalog.A("diff", s.Constant("a"), s.Variable("Y"))
	got, _, _, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d answers, want 2 (b,c)", len(got))
	}
	for _, r := range got {
		if s.String(r[0]) == "a" {
			t.Fatal("constraint a != a violated")
		}
	}
}

func TestQSQWithFunctionSymbolsInHead(t *testing.T) {
	// wrap(f(X)) :- base(X); query wrap(f(a)).
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x := s.Variable("X")
	p.AddRule(datalog.Rule{
		Head: datalog.A("wrap", s.Compound("f", x)),
		Body: []datalog.Atom{datalog.A("base", x)},
	})
	p.AddFact(datalog.A("base", s.Constant("a")))
	p.AddFact(datalog.A("base", s.Constant("b")))

	q := datalog.A("wrap", s.Compound("f", s.Constant("a")))
	got, _, _, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// Bound query: one (empty-variable) answer row meaning "yes".
	if len(got) != 1 {
		t.Fatalf("got %v answers, want 1 empty row", got)
	}

	// And a negative probe.
	q2 := datalog.A("wrap", s.Compound("f", s.Constant("zz")))
	got2, _, _, err := Run(p, q2, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 0 {
		t.Fatalf("got %v, want no answers", got2)
	}
}

func TestQSQTerminatesOnCyclicRules(t *testing.T) {
	// Mutual recursion with no base facts reachable: must terminate empty.
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(datalog.Rule{Head: datalog.A("p", x, y), Body: []datalog.Atom{datalog.A("q", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("q", x, y), Body: []datalog.Atom{datalog.A("p", x, y)}})
	p.AddFact(datalog.A("seed", s.Constant("a"), s.Constant("a")))

	got, _, st, err := Run(p, datalog.A("p", s.Constant("a"), s.Variable("Y")), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated || len(got) != 0 {
		t.Fatalf("st=%+v got=%v", st, got)
	}
}

// Property: on random transitive-closure instances, QSQ answers for a
// random source equal naive answers.
func TestQuickQSQEqualsNaiveOnTC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() (*datalog.Program, *term.Store) {
			s := term.NewStore()
			p := datalog.NewProgram(s)
			x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
			p.AddRule(datalog.Rule{Head: datalog.A("tc", x, y), Body: []datalog.Atom{datalog.A("e", x, y)}})
			p.AddRule(datalog.Rule{Head: datalog.A("tc", x, z), Body: []datalog.Atom{
				datalog.A("e", x, y), datalog.A("tc", y, z),
			}})
			r2 := rand.New(rand.NewSource(seed))
			n := 3 + r2.Intn(6)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && r2.Intn(3) == 0 {
						p.AddFact(datalog.A("e", s.Constant(num(i)), s.Constant(num(j))))
					}
				}
			}
			return p, s
		}
		src := num(rng.Intn(6))

		p1, s1 := build()
		db1, _ := p1.SemiNaive(datalog.Budget{})
		want := sortedAnswers(s1, datalog.Answers(db1, s1, datalog.A("tc", s1.Constant(src), s1.Variable("Y"))))

		p2, s2 := build()
		got, _, st, err := Run(p2, datalog.A("tc", s2.Constant(src), s2.Variable("Y")), datalog.Budget{})
		if err != nil || st.Truncated {
			return false
		}
		return strings.Join(sortedAnswers(s2, got), ";") == strings.Join(want, ";")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQSQFigure3(b *testing.B) {
	var av, bv, cv [][2]string
	for i := 0; i < 40; i++ {
		av = append(av, [2]string{num(i), num(i + 1)})
		bv = append(bv, [2]string{num(i + 1), "ok"})
		cv = append(cv, [2]string{num(i + 1), num(i + 2)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := figure3Local(av, bv, cv)
		s := p.Store
		q := datalog.A("R", s.Constant(num(0)), s.Variable("Ans"))
		if _, _, st, err := Run(p, q, datalog.Budget{}); err != nil || st.Truncated {
			b.Fatalf("err=%v st=%+v", err, st)
		}
	}
}
