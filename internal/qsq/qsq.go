// Package qsq implements the Query-Sub-Query optimization as a program
// rewriting (Section 3.1, Figure 4): given a Datalog program and a query,
// it produces a new program over adorned relations (R#bf), input relations
// (in-R#bf) and supplementary relations (sup<i>_<j>#ad) whose bottom-up
// evaluation materializes only the facts relevant to the query — top-down
// relevance with bottom-up termination.
//
// The rewriting is the centralized half of the paper's contribution; its
// distributed extension lives in package dqsq.
package qsq

import (
	"fmt"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/rel"
	"repro/internal/term"
)

// Rewriting is the result of rewriting a program for a query.
type Rewriting struct {
	// Program is the rewritten program: seed facts for the query's input
	// relation, supplementary rules, and the extensional facts of the
	// original program.
	Program *datalog.Program
	// Query is the adorned atom to read answers from; its argument list is
	// the original query's.
	Query datalog.Atom
	// Keys lists the relation-adornment pairs that were expanded, in
	// processing order (useful for structural tests against Figure 4).
	Keys []adorn.Key
}

// Rewrite rewrites program p for the single-atom query q. Multi-atom
// queries are expressed by first adding a rule defining a fresh query
// relation. The original program is not modified.
func Rewrite(p *datalog.Program, q datalog.Atom) (*Rewriting, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.Store
	idb := p.IDB()

	out := datalog.NewProgram(s)
	out.Facts = append(out.Facts, p.Facts...) // extensional data is shared, not copied

	rw := &rewriter{p: p, out: out, idb: idb, done: make(map[adorn.Key]bool)}

	// The query's bound positions are exactly its ground arguments: nothing
	// is bound before evaluation starts.
	ad := adorn.Compute(s, adorn.VarSet{}, q.Args)
	if !idb[q.Rel] {
		// Querying an extensional relation directly: nothing to rewrite.
		return &Rewriting{Program: out, Query: q}, nil
	}
	// Seed the input relation with the query's bound arguments.
	out.AddFact(datalog.Atom{Rel: adorn.InputName(q.Rel, ad), Args: adorn.BoundArgs(ad, q.Args)})
	rw.request(adorn.Key{Rel: q.Rel, Ad: ad})
	rw.drain()

	return &Rewriting{
		Program: out,
		Query:   datalog.Atom{Rel: adorn.Name(q.Rel, ad), Args: q.Args},
		Keys:    rw.keys,
	}, nil
}

type rewriter struct {
	p     *datalog.Program
	out   *datalog.Program
	idb   map[rel.Name]bool
	done  map[adorn.Key]bool
	queue []adorn.Key
	keys  []adorn.Key
}

func (rw *rewriter) request(k adorn.Key) {
	if rw.done[k] {
		return
	}
	rw.done[k] = true
	rw.queue = append(rw.queue, k)
	rw.keys = append(rw.keys, k)
}

func (rw *rewriter) drain() {
	for len(rw.queue) > 0 {
		k := rw.queue[0]
		rw.queue = rw.queue[1:]
		for i, r := range rw.p.Rules {
			if r.Head.Rel == k.Rel {
				rw.rewriteRule(i, r, k.Ad)
			}
		}
		// A relation may be intensional and still hold base facts (e.g.
		// the root facts of the unfolding program). Bridge each fact into
		// the adorned answer relation, guarded by the input relation.
		for _, f := range rw.p.Facts {
			if f.Rel == k.Rel {
				rw.out.AddRule(datalog.Rule{
					Head: datalog.Atom{Rel: adorn.Name(k.Rel, k.Ad), Args: f.Args},
					Body: []datalog.Atom{{Rel: adorn.InputName(k.Rel, k.Ad), Args: adorn.BoundArgs(k.Ad, f.Args)}},
				})
			}
		}
	}
}

// relevantVars returns, in deterministic first-occurrence order over
// `order`, the bound variables still needed by the remaining body atoms
// (from index next on), the unattached constraints, or the head.
func (rw *rewriter) relevantVars(s *term.Store, r datalog.Rule, next int, attached []bool, bound adorn.VarSet, order []term.ID) []term.ID {
	needed := adorn.VarSet{}
	for j := next; j < len(r.Body); j++ {
		for _, t := range r.Body[j].Args {
			needed.AddTerm(s, t)
		}
	}
	for ci, n := range r.Neqs {
		if !attached[ci] {
			needed.AddTerm(s, n.X)
			needed.AddTerm(s, n.Y)
		}
	}
	for _, t := range r.Head.Args {
		needed.AddTerm(s, t)
	}
	var out []term.ID
	for _, v := range order {
		if bound[v] && needed[v] {
			out = append(out, v)
		}
	}
	return out
}

// rewriteRule produces the supplementary-relation rules for rule index ri
// under head adornment ad, following Figure 4's layout:
//
//	sup<ri>_0#ad(...)  :- in-R#ad(bound head args)
//	sup<ri>_j#ad(...)  :- sup<ri>_{j-1}#ad(...), S#adj(args)   (S intensional)
//	in-S#adj(bound)    :- sup<ri>_{j-1}#ad(...)
//	R#ad(head args)    :- sup<ri>_n#ad(...)
func (rw *rewriter) rewriteRule(ri int, r datalog.Rule, ad adorn.Adornment) {
	s := rw.p.Store
	supName := func(j int) rel.Name {
		return rel.Name(fmt.Sprintf("sup%d_%d#%s", ri, j, ad))
	}

	// Variable order for supplementary columns: first occurrence across the
	// bound head arguments, then the body left to right.
	var order []term.ID
	for i, t := range r.Head.Args {
		if ad.Bound(i) {
			order = s.Vars(order, t)
		}
	}
	for _, a := range r.Body {
		for _, t := range a.Args {
			order = s.Vars(order, t)
		}
	}

	bound := adorn.VarSet{}
	for i, t := range r.Head.Args {
		if ad.Bound(i) {
			bound.AddTerm(s, t)
		}
	}
	attached := make([]bool, len(r.Neqs))

	// sup0 :- in-R#ad(bound head args). Matching decomposes any compound
	// patterns in the head's bound positions.
	cols := rw.relevantVars(s, r, 0, attached, bound, order)
	rw.out.AddRule(datalog.Rule{
		Head: datalog.Atom{Rel: supName(0), Args: cols},
		Body: []datalog.Atom{{Rel: adorn.InputName(r.Head.Rel, ad), Args: adorn.BoundArgs(ad, r.Head.Args)}},
	})
	prev := datalog.Atom{Rel: supName(0), Args: cols}

	for j, a := range r.Body {
		joinAtom := a
		if rw.idb[a.Rel] {
			adj := adorn.Compute(s, bound, a.Args)
			// Ship the bindings: in-S#adj(bound args) :- sup_{j}(...).
			rw.out.AddRule(datalog.Rule{
				Head: datalog.Atom{Rel: adorn.InputName(a.Rel, adj), Args: adorn.BoundArgs(adj, a.Args)},
				Body: []datalog.Atom{prev},
			})
			rw.request(adorn.Key{Rel: a.Rel, Ad: adj})
			joinAtom = datalog.Atom{Rel: adorn.Name(a.Rel, adj), Args: a.Args}
		}
		for _, t := range a.Args {
			bound.AddTerm(s, t)
		}
		// Attach every constraint whose variables just became bound.
		var neqs []datalog.Neq
		for ci, n := range r.Neqs {
			if !attached[ci] && bound.CoversTerm(s, n.X) && bound.CoversTerm(s, n.Y) {
				attached[ci] = true
				neqs = append(neqs, n)
			}
		}
		cols = rw.relevantVars(s, r, j+1, attached, bound, order)
		rw.out.AddRule(datalog.Rule{
			Head: datalog.Atom{Rel: supName(j + 1), Args: cols},
			Body: []datalog.Atom{prev, joinAtom},
			Neqs: neqs,
		})
		prev = datalog.Atom{Rel: supName(j + 1), Args: cols}
	}

	// Any constraint never attached has ground sides; attach to the answer rule.
	var tail []datalog.Neq
	for ci, n := range r.Neqs {
		if !attached[ci] {
			tail = append(tail, n)
		}
	}
	rw.out.AddRule(datalog.Rule{
		Head: datalog.Atom{Rel: adorn.Name(r.Head.Rel, ad), Args: r.Head.Args},
		Body: []datalog.Atom{prev},
		Neqs: tail,
	})
}

// Eval evaluates the rewritten program semi-naively under the budget.
func (rw *Rewriting) Eval(b datalog.Budget) (*rel.DB, datalog.Stats) {
	return rw.Program.SemiNaive(b)
}

// Answers extracts the query answers from a database produced by Eval: one
// row per match, columns in first-occurrence order of the query variables.
func (rw *Rewriting) Answers(db *rel.DB) [][]term.ID {
	return datalog.Answers(db, rw.Program.Store, rw.Query)
}

// Run rewrites, evaluates and extracts answers in one call.
func Run(p *datalog.Program, q datalog.Atom, b datalog.Budget) ([][]term.ID, *rel.DB, datalog.Stats, error) {
	rw, err := Rewrite(p, q)
	if err != nil {
		return nil, nil, datalog.Stats{}, err
	}
	db, st := rw.Eval(b)
	return rw.Answers(db), db, st, nil
}
