package qsq

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/rel"
	"repro/internal/term"
)

// sameGen builds the classic non-linear same-generation program:
//
//	sg(X, Y) :- flat(X, Y).
//	sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
//
// over a small two-level hierarchy. Non-linear recursion exercises the
// sideways information passing harder than transitive closure.
func sameGen() (*datalog.Program, *term.Store) {
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y, u, v := s.Variable("X"), s.Variable("Y"), s.Variable("U"), s.Variable("V")
	p.AddRule(datalog.Rule{Head: datalog.A("sg", x, y), Body: []datalog.Atom{datalog.A("flat", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("sg", x, y), Body: []datalog.Atom{
		datalog.A("up", x, u), datalog.A("sg", u, v), datalog.A("down", v, y),
	}})
	add := func(relName rel.Name, pairs ...string) {
		for i := 0; i < len(pairs); i += 2 {
			p.AddFact(datalog.A(relName, s.Constant(pairs[i]), s.Constant(pairs[i+1])))
		}
	}
	// Two families: leaves a1,a2 under parent pa; b1,b2 under pb; the
	// parents are "flat" cousins, plus an unrelated island.
	add("up", "a1", "pa", "a2", "pa", "b1", "pb", "b2", "pb")
	add("down", "pa", "a1", "pa", "a2", "pb", "b1", "pb", "b2")
	add("flat", "pa", "pb", "pb", "pa")
	add("flat", "i1", "i2") // island, unreachable from a1
	return p, s
}

func TestSameGenerationQSQ(t *testing.T) {
	p, s := sameGen()
	q := datalog.A("sg", s.Constant("a1"), s.Variable("Y"))
	got, _, st, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatal("truncated")
	}
	// a1's generation through pa~pb: b1 and b2.
	if g := sortedAnswers(s, got); strings.Join(g, ";") != "b1;b2" {
		t.Fatalf("sg(a1, Y) = %v, want [b1 b2]", g)
	}
}

func TestSameGenerationQSQvsNaiveVsMagic(t *testing.T) {
	build := func() (*datalog.Program, *term.Store, datalog.Atom) {
		p, s := sameGen()
		return p, s, datalog.A("sg", s.Constant("a1"), s.Variable("Y"))
	}
	p1, s1, q1 := build()
	db, _ := p1.SemiNaive(datalog.Budget{})
	want := sortedAnswers(s1, datalog.Answers(db, s1, q1))

	p2, s2, q2 := build()
	gotQ, _, _, err := Run(p2, q2, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	p3, s3, q3 := build()
	gotM, _, _, err := magic.Run(p3, q3, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedAnswers(s2, gotQ), ";") != strings.Join(want, ";") {
		t.Fatalf("QSQ %v != naive %v", sortedAnswers(s2, gotQ), want)
	}
	if strings.Join(sortedAnswers(s3, gotM), ";") != strings.Join(want, ";") {
		t.Fatalf("magic %v != naive %v", sortedAnswers(s3, gotM), want)
	}
}

func TestSameGenerationPrunesIsland(t *testing.T) {
	p, s := sameGen()
	q := datalog.A("sg", s.Constant("a1"), s.Variable("Y"))
	_, db, _, err := Run(p, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	// No adorned sg fact may mention the island.
	for _, name := range db.Names() {
		if !strings.HasPrefix(string(name), "sg#") {
			continue
		}
		for _, tup := range db.Lookup(name).All() {
			for _, id := range tup {
				if strings.HasPrefix(s.String(id), "i") {
					t.Fatalf("island constant materialized in %s", name)
				}
			}
		}
	}
}
