package qsq

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/term"
)

// tcProgram builds transitive closure over the given edges.
func tcProgram(edges [][2]string) (*datalog.Program, *term.Store) {
	s := term.NewStore()
	p := datalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, y), Body: []datalog.Atom{datalog.A("e", x, y)}})
	p.AddRule(datalog.Rule{Head: datalog.A("tc", x, z), Body: []datalog.Atom{
		datalog.A("e", x, y), datalog.A("tc", y, z),
	}})
	for _, e := range edges {
		p.AddFact(datalog.A("e", s.Constant(e[0]), s.Constant(e[1])))
	}
	return p, s
}

var testEdges = [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "a"}, {"d", "x"}}

// naiveAnswers evaluates the query against full semi-naive materialization.
func naiveAnswers(t *testing.T, q func(s *term.Store) datalog.Atom) []string {
	t.Helper()
	p, s := tcProgram(testEdges)
	db, _ := p.SemiNaive(datalog.Budget{})
	return sortedAnswers(s, datalog.Answers(db, s, q(s)))
}

func qsqAnswers(t *testing.T, q func(s *term.Store) datalog.Atom) ([]string, datalog.Stats) {
	t.Helper()
	p, s := tcProgram(testEdges)
	rows, _, st, err := Run(p, q(s), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return sortedAnswers(s, rows), st
}

func TestAdornmentBF(t *testing.T) {
	q := func(s *term.Store) datalog.Atom {
		return datalog.A("tc", s.Constant("a"), s.Variable("Y"))
	}
	got, _ := qsqAnswers(t, q)
	want := naiveAnswers(t, q)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("bf: %v != %v", got, want)
	}
}

func TestAdornmentFB(t *testing.T) {
	// Second argument bound: who reaches d?
	q := func(s *term.Store) datalog.Atom {
		return datalog.A("tc", s.Variable("X"), s.Constant("d"))
	}
	got, _ := qsqAnswers(t, q)
	want := naiveAnswers(t, q)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("fb: %v != %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("expected answers for fb query")
	}
}

func TestAdornmentBB(t *testing.T) {
	// Both bound: boolean reachability.
	yes := func(s *term.Store) datalog.Atom {
		return datalog.A("tc", s.Constant("a"), s.Constant("d"))
	}
	got, _ := qsqAnswers(t, yes)
	if len(got) != 1 {
		t.Fatalf("bb positive: %v", got)
	}
	no := func(s *term.Store) datalog.Atom {
		// d reaches x reaches a: everything is connected in testEdges, so
		// use a fresh unreachable constant.
		return datalog.A("tc", s.Constant("zz"), s.Constant("a"))
	}
	got, _ = qsqAnswers(t, no)
	if len(got) != 0 {
		t.Fatalf("bb negative: %v", got)
	}
}

func TestAdornmentFF(t *testing.T) {
	// Nothing bound: QSQ degenerates to computing the full relation.
	q := func(s *term.Store) datalog.Atom {
		return datalog.A("tc", s.Variable("X"), s.Variable("Y"))
	}
	got, _ := qsqAnswers(t, q)
	want := naiveAnswers(t, q)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("ff: %v != %v", got, want)
	}
}

func TestAdornmentsCoexist(t *testing.T) {
	// A program whose rules trigger two different adornments of the same
	// relation: same(X,Y) :- tc(a,X), tc(X,Y) issues tc^bf twice with
	// different constants flowing.
	p, s := tcProgram(testEdges)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(datalog.Rule{Head: datalog.A("same", x, y), Body: []datalog.Atom{
		datalog.A("tc", s.Constant("a"), x),
		datalog.A("tc", x, y),
	}})
	rows, _, st, err := Run(p, datalog.A("same", s.Variable("X"), s.Variable("Y")), datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated || len(rows) == 0 {
		t.Fatalf("st=%+v rows=%d", st, len(rows))
	}

	p2, s2 := tcProgram(testEdges)
	x2, y2 := s2.Variable("X"), s2.Variable("Y")
	p2.AddRule(datalog.Rule{Head: datalog.A("same", x2, y2), Body: []datalog.Atom{
		datalog.A("tc", s2.Constant("a"), x2),
		datalog.A("tc", x2, y2),
	}})
	db, _ := p2.SemiNaive(datalog.Budget{})
	want := sortedAnswers(s2, datalog.Answers(db, s2, datalog.A("same", x2, y2)))
	if strings.Join(sortedAnswers(p.Store, rows), ";") != strings.Join(want, ";") {
		t.Fatalf("mixed adornments: %v != %v", sortedAnswers(p.Store, rows), want)
	}
}
