package datalog

import (
	"testing"

	"repro/internal/term"
)

func TestAnswersRepeatedVariable(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	p.AddFact(A("e", s.Constant("a"), s.Constant("a")))
	p.AddFact(A("e", s.Constant("a"), s.Constant("b")))
	db, _ := p.SemiNaive(Budget{})

	x := s.Variable("X")
	rows := Answers(db, s, A("e", x, x))
	if len(rows) != 1 || s.String(rows[0][0]) != "a" {
		t.Fatalf("e(X,X) answers = %v", rows)
	}
}

func TestAnswersGroundQuery(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	p.AddFact(A("e", s.Constant("a")))
	db, _ := p.SemiNaive(Budget{})

	// Ground positive query: one empty row.
	rows := Answers(db, s, A("e", s.Constant("a")))
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("ground positive = %v", rows)
	}
	// Ground negative query: no rows.
	if rows := Answers(db, s, A("e", s.Constant("zz"))); len(rows) != 0 {
		t.Fatalf("ground negative = %v", rows)
	}
}

func TestAnswersCompoundPattern(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	p.AddFact(A("holds", s.Compound("f", s.Constant("a"), s.Constant("b"))))
	p.AddFact(A("holds", s.Constant("flat")))
	db, _ := p.SemiNaive(Budget{})

	x := s.Variable("X")
	rows := Answers(db, s, A("holds", s.Compound("f", x, s.Constant("b"))))
	if len(rows) != 1 || s.String(rows[0][0]) != "a" {
		t.Fatalf("compound pattern answers = %v", rows)
	}
}

func TestIterationBudget(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddFact(A("nat", s.Constant("z")))
	p.AddRule(Rule{Head: A("nat", s.Compound("s", x)), Body: []Atom{A("nat", x)}})

	_, st := p.SemiNaive(Budget{MaxIters: 5, MaxFacts: 1 << 20})
	if !st.Truncated || st.Reason != "iteration budget" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Iterations > 5 {
		t.Fatalf("ran %d iterations", st.Iterations)
	}
}

func TestDumpDeterministic(t *testing.T) {
	build := func() string {
		s := term.NewStore()
		p := NewProgram(s)
		for _, c := range []string{"c", "a", "b"} {
			p.AddFact(A("r", s.Constant(c)))
			p.AddFact(A("q", s.Constant(c), s.Constant(c)))
		}
		db, _ := p.SemiNaive(Budget{})
		return db.Dump()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if build() != first {
			t.Fatal("Dump not deterministic")
		}
	}
}

func TestProgramStringRendering(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddFact(A("e", s.Constant("a"), s.Constant("b")))
	p.AddRule(Rule{
		Head: A("tc", x, y),
		Body: []Atom{A("e", x, y)},
		Neqs: []Neq{{X: x, Y: y}},
	})
	want := "e(a,b).\ntc(X,Y) :- e(X,Y), X != Y.\n"
	if got := p.String(); got != want {
		t.Fatalf("String:\n%q\nwant:\n%q", got, want)
	}
}

func TestSeededVsDerivedAccounting(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddFact(A("e", s.Constant("a")))
	p.AddFact(A("e", s.Constant("b")))
	p.AddRule(Rule{Head: A("r", x), Body: []Atom{A("e", x)}})
	_, st := p.SemiNaive(Budget{})
	if st.Seeded != 2 || st.Derived != 2 {
		t.Fatalf("seeded=%d derived=%d", st.Seeded, st.Derived)
	}
}
