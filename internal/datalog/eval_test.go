package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rel"
	"repro/internal/term"
)

// buildTC builds the classic transitive-closure program over the given
// edges: tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).
func buildTC(edges [][2]string) *Program {
	s := term.NewStore()
	p := NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(Rule{Head: Atom{"tc", []term.ID{x, y}}, Body: []Atom{{"edge", []term.ID{x, y}}}})
	p.AddRule(Rule{Head: Atom{"tc", []term.ID{x, z}}, Body: []Atom{
		{"edge", []term.ID{x, y}}, {"tc", []term.ID{y, z}},
	}})
	for _, e := range edges {
		p.AddFact(Atom{"edge", []term.ID{s.Constant(e[0]), s.Constant(e[1])}})
	}
	return p
}

func factSet(db *rel.DB, store *term.Store, name rel.Name) map[string]bool {
	out := make(map[string]bool)
	r := db.Lookup(name)
	if r == nil {
		return out
	}
	for _, tup := range r.All() {
		key := ""
		for _, t := range tup {
			key += store.String(t) + "|"
		}
		out[key] = true
	}
	return out
}

func TestTransitiveClosureChain(t *testing.T) {
	p := buildTC([][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}})
	db, st := p.SemiNaive(Budget{})
	if st.Truncated {
		t.Fatalf("truncated: %s", st.Reason)
	}
	tc := factSet(db, p.Store, "tc")
	want := []string{"a|b|", "a|c|", "a|d|", "b|c|", "b|d|", "c|d|"}
	if len(tc) != len(want) {
		t.Fatalf("tc has %d facts, want %d: %v", len(tc), len(want), tc)
	}
	for _, w := range want {
		if !tc[w] {
			t.Fatalf("missing %q", w)
		}
	}
}

func TestTransitiveClosureCycleTerminates(t *testing.T) {
	p := buildTC([][2]string{{"a", "b"}, {"b", "a"}})
	db, st := p.SemiNaive(Budget{})
	if st.Truncated {
		t.Fatal("cycle without function symbols must reach fixpoint")
	}
	if got := db.Lookup("tc").Len(); got != 4 {
		t.Fatalf("tc on 2-cycle has %d facts, want 4", got)
	}
}

func TestNaiveEqualsSemiNaive(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}, {"d", "e"}}
	p1 := buildTC(edges)
	p2 := buildTC(edges)
	db1, _ := p1.Naive(Budget{})
	db2, _ := p2.SemiNaive(Budget{})
	if db1.Dump() != db2.Dump() {
		t.Fatalf("naive:\n%s\nseminaive:\n%s", db1.Dump(), db2.Dump())
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	var edges [][2]string
	for i := 0; i < 30; i++ {
		edges = append(edges, [2]string{string(rune('a' + i)), string(rune('a' + i + 1))})
	}
	_, stN := buildTC(edges).Naive(Budget{})
	_, stS := buildTC(edges).SemiNaive(Budget{})
	if stS.Attempts >= stN.Attempts {
		t.Fatalf("seminaive attempts %d >= naive attempts %d", stS.Attempts, stN.Attempts)
	}
	if stS.Derived != stN.Derived {
		t.Fatalf("derived differ: %d vs %d", stS.Derived, stN.Derived)
	}
}

func TestFunctionSymbolsWithDepthBudget(t *testing.T) {
	// nat(s(X)) :- nat(X). Diverges without a bound.
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddFact(Atom{"nat", []term.ID{s.Constant("z")}})
	p.AddRule(Rule{Head: Atom{"nat", []term.ID{s.Compound("s", x)}}, Body: []Atom{{"nat", []term.ID{x}}}})

	db, st := p.SemiNaive(Budget{MaxTermDepth: 5})
	if st.Truncated {
		t.Fatalf("depth-bounded run truncated: %s", st.Reason)
	}
	// z, s(z), ..., s^5(z): 6 facts.
	if got := db.Lookup("nat").Len(); got != 6 {
		t.Fatalf("nat has %d facts, want 6", got)
	}
}

func TestFactBudgetTruncates(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddFact(Atom{"nat", []term.ID{s.Constant("z")}})
	p.AddRule(Rule{Head: Atom{"nat", []term.ID{s.Compound("s", x)}}, Body: []Atom{{"nat", []term.ID{x}}}})

	db, st := p.SemiNaive(Budget{MaxFacts: 100})
	if !st.Truncated || st.Reason != "fact budget" {
		t.Fatalf("want fact-budget truncation, got %+v", st)
	}
	if db.FactCount() > 100 {
		t.Fatalf("materialized %d facts, budget 100", db.FactCount())
	}
}

func TestNeqConstraint(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddFact(Atom{"n", []term.ID{s.Constant("a")}})
	p.AddFact(Atom{"n", []term.ID{s.Constant("b")}})
	p.AddRule(Rule{
		Head: Atom{"pair", []term.ID{x, y}},
		Body: []Atom{{"n", []term.ID{x}}, {"n", []term.ID{y}}},
		Neqs: []Neq{{x, y}},
	})
	db, _ := p.SemiNaive(Budget{})
	if got := db.Lookup("pair").Len(); got != 2 {
		t.Fatalf("pair has %d facts, want 2 (a,b and b,a)", got)
	}
	if db.Lookup("pair").Contains([]term.ID{s.Constant("a"), s.Constant("a")}) {
		t.Fatal("x != y violated")
	}
}

func TestCompoundTermsInBodyPattern(t *testing.T) {
	// parentOf(X,Y) :- holds(f(X,Y)). — body atom with a compound pattern.
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	a, b := s.Constant("a"), s.Constant("b")
	p.AddFact(Atom{"holds", []term.ID{s.Compound("f", a, b)}})
	p.AddFact(Atom{"holds", []term.ID{s.Constant("junk")}})
	p.AddRule(Rule{
		Head: Atom{"parentOf", []term.ID{x, y}},
		Body: []Atom{{"holds", []term.ID{s.Compound("f", x, y)}}},
	})
	db, _ := p.SemiNaive(Budget{})
	if got := db.Lookup("parentOf").Len(); got != 1 {
		t.Fatalf("parentOf has %d facts, want 1", got)
	}
	if !db.Lookup("parentOf").Contains([]term.ID{a, b}) {
		t.Fatal("missing parentOf(a,b)")
	}
}

func TestGroundFactRule(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	p.AddRule(Rule{Head: Atom{"r", []term.ID{s.Constant("a")}}})
	db, _ := p.SemiNaive(Budget{})
	if !db.Lookup("r").Contains([]term.ID{s.Constant("a")}) {
		t.Fatal("fact rule not seeded")
	}
}

func TestValidateRangeRestriction(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(Rule{Head: Atom{"r", []term.ID{x, y}}, Body: []Atom{{"e", []term.ID{x}}}})
	if err := p.Validate(); err == nil {
		t.Fatal("unbound head variable not rejected")
	}
}

func TestValidateNeqSafety(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(Rule{
		Head: Atom{"r", []term.ID{x}},
		Body: []Atom{{"e", []term.ID{x}}},
		Neqs: []Neq{{x, y}},
	})
	if err := p.Validate(); err == nil {
		t.Fatal("unsafe constraint variable not rejected")
	}
}

func TestValidateArityConflict(t *testing.T) {
	s := term.NewStore()
	p := NewProgram(s)
	x := s.Variable("X")
	p.AddRule(Rule{Head: Atom{"r", []term.ID{x}}, Body: []Atom{{"e", []term.ID{x}}}})
	p.AddRule(Rule{Head: Atom{"r", []term.ID{x, x}}, Body: []Atom{{"e", []term.ID{x}}}})
	if err := p.Validate(); err == nil {
		t.Fatal("arity conflict not rejected")
	}
}

func TestValidateOK(t *testing.T) {
	p := buildTC([][2]string{{"a", "b"}})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnswers(t *testing.T) {
	p := buildTC([][2]string{{"a", "b"}, {"b", "c"}})
	db, _ := p.SemiNaive(Budget{})
	s := p.Store
	y := s.Variable("Ans")
	rows := Answers(db, s, Atom{"tc", []term.ID{s.Constant("a"), y}})
	if len(rows) != 2 {
		t.Fatalf("got %d answers, want 2", len(rows))
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[s.String(r[0])] = true
	}
	if !got["b"] || !got["c"] {
		t.Fatalf("answers %v", got)
	}
	// Query on an absent relation yields nothing.
	if Answers(db, s, Atom{"nope", nil}) != nil {
		t.Fatal("answers on missing relation")
	}
}

func TestDepends(t *testing.T) {
	p := buildTC(nil)
	deps := p.Depends()
	if len(deps["tc"]) != 2 {
		t.Fatalf("tc deps = %v", deps["tc"])
	}
}

// Property: on random graphs, semi-naive computes exactly reachability.
func TestQuickTCMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		var edges [][2]string
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(4) == 0 {
					adj[i][j] = true
					edges = append(edges, [2]string{name(i), name(j)})
				}
			}
		}
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		p := buildTC(edges)
		db, st := p.SemiNaive(Budget{})
		if st.Truncated {
			return false
		}
		tc := factSet(db, p.Store, "tc")
		count := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					count++
					if !tc[name(i)+"|"+name(j)+"|"] {
						return false
					}
				}
			}
		}
		return count == len(tc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string { return string(rune('a' + i)) }

func BenchmarkSemiNaiveTCChain100(b *testing.B) {
	var edges [][2]string
	for i := 0; i < 100; i++ {
		edges = append(edges, [2]string{name(i%26) + name(i/26), name((i+1)%26) + name((i+1)/26)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buildTC(edges)
		if _, st := p.SemiNaive(Budget{}); st.Truncated {
			b.Fatal("truncated")
		}
	}
}
