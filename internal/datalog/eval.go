package datalog

import (
	"errors"
	"fmt"

	"repro/internal/rel"
	"repro/internal/term"
)

// Budget bounds an evaluation. Datalog with function symbols has infinite
// minimal models in general (Section 3: "the semantics of a Datalog program
// may be infinite and its naive evaluation may not terminate"), so every
// run declares how much it is willing to materialize. The zero Budget means
// DefaultBudget.
type Budget struct {
	// MaxFacts bounds the total number of materialized tuples across all
	// relations, extensional facts included.
	MaxFacts int
	// MaxIters bounds fixpoint iterations.
	MaxIters int
	// MaxTermDepth, when positive, drops derived facts containing a term
	// nested deeper than this — the paper's Section 4.4 "gadget" of
	// bounding the depth of the unfolding.
	MaxTermDepth int
}

// DefaultBudget is used for zero-valued budgets: generous enough for every
// experiment in this repository, small enough to fail fast on divergence.
var DefaultBudget = Budget{MaxFacts: 1 << 21, MaxIters: 1 << 16}

func (b Budget) orDefault() Budget {
	if b.MaxFacts == 0 {
		b.MaxFacts = DefaultBudget.MaxFacts
	}
	if b.MaxIters == 0 {
		b.MaxIters = DefaultBudget.MaxIters
	}
	return b
}

// Stats reports what an evaluation did.
type Stats struct {
	Iterations int  // fixpoint rounds executed
	Seeded     int  // extensional facts loaded
	Derived    int  // new tuples materialized by rules — the metric QSQ minimizes
	Attempts   int  // successful body matches (incl. duplicates and depth-dropped)
	Truncated  bool // a budget bound was hit; the result is a sound under-approximation
	Reason     string
}

// ErrBudget is wrapped by errors returned when a budget is exhausted and
// the caller asked for strict evaluation.
var ErrBudget = errors.New("datalog: budget exhausted")

// SemiNaive evaluates the program bottom-up with semi-naive iteration and
// returns the materialized database. If the budget is hit, the database is
// a sound prefix of the minimal model and Stats.Truncated is set; no error
// is returned for truncation (diagnosis workloads rely on bounded prefixes).
func (p *Program) SemiNaive(b Budget) (*rel.DB, Stats) {
	return p.run(b, true)
}

// Naive evaluates the program with naive iteration: every round rejoins
// full relations rather than deltas. Semantically identical to SemiNaive;
// kept as the cost baseline the paper's Section 3.1 starts from.
func (p *Program) Naive(b Budget) (*rel.DB, Stats) {
	return p.run(b, false)
}

type evaluator struct {
	p       *Program
	db      *rel.DB
	budget  Budget
	stats   Stats
	seeding bool
	prev    map[rel.Name]int // watermark at start of previous round
	cur     map[rel.Name]int // watermark at start of current round
}

func (p *Program) run(b Budget, seminaive bool) (*rel.DB, Stats) {
	b = b.orDefault()
	arities, err := p.Arities()
	if err != nil {
		panic(err) // callers validate first; an invalid program is a programming error here
	}
	e := &evaluator{
		p:      p,
		db:     rel.NewDB(p.Store),
		budget: b,
		prev:   make(map[rel.Name]int),
		cur:    make(map[rel.Name]int),
	}
	// Create every relation up front so lookups never nil-check.
	for name, ar := range arities {
		e.db.Rel(name, ar)
	}
	// Seed extensional facts and ground-fact rules.
	e.seeding = true
	for _, f := range p.Facts {
		e.insert(f.Rel, f.Args)
	}
	for _, r := range p.Rules {
		if r.IsFact() {
			e.insert(r.Head.Rel, r.Head.Args)
		}
	}
	e.seeding = false

	bnd := term.NewBindings(p.Store)
	for e.stats.Iterations < b.MaxIters && !e.stats.Truncated {
		e.stats.Iterations++
		grew := false
		for name := range e.cur {
			e.cur[name] = 0
		}
		for _, name := range e.db.Names() {
			e.cur[name] = e.db.Lookup(name).Len()
		}
		before := e.db.FactCount()
		for _, r := range p.Rules {
			if r.IsFact() {
				continue
			}
			if seminaive && e.stats.Iterations > 1 {
				// One pass per choice of delta atom.
				for d := range r.Body {
					dr := e.db.Lookup(r.Body[d].Rel)
					if dr == nil || e.prev[r.Body[d].Rel] >= e.cur[r.Body[d].Rel] {
						continue // empty delta
					}
					e.joinBody(r, 0, d, bnd)
					if e.stats.Truncated {
						break
					}
				}
			} else {
				e.joinBody(r, 0, -1, bnd)
			}
			if e.stats.Truncated {
				break
			}
		}
		grew = e.db.FactCount() > before
		for name, c := range e.cur {
			e.prev[name] = c
		}
		if !grew {
			return e.db, e.stats
		}
	}
	if !e.stats.Truncated && e.stats.Iterations >= b.MaxIters {
		e.stats.Truncated = true
		e.stats.Reason = "iteration budget"
	}
	return e.db, e.stats
}

// window returns the scan window [lo,hi) for body atom j when the delta
// atom is at index d (d < 0 means naive: full current window everywhere).
func (e *evaluator) window(r Rule, j, d int) (int, int) {
	name := r.Body[j].Rel
	switch {
	case d < 0 || j < d:
		return 0, e.cur[name]
	case j == d:
		return e.prev[name], e.cur[name]
	default:
		return 0, e.prev[name]
	}
}

// joinBody extends bindings over body atoms j..n-1 and emits head facts.
func (e *evaluator) joinBody(r Rule, j, d int, bnd *term.Bindings) {
	if e.stats.Truncated {
		return
	}
	if j == len(r.Body) {
		e.emit(r, bnd)
		return
	}
	atom := r.Body[j]
	relation := e.db.Lookup(atom.Rel)
	lo, hi := e.window(r, j, d)

	// Build an index key from arguments that are ground under the current
	// bindings; non-ground arguments are matched per candidate tuple.
	var mask uint64
	key := make([]term.ID, len(atom.Args))
	resolved := make([]term.ID, len(atom.Args))
	for i, a := range atom.Args {
		t := bnd.Resolve(a)
		resolved[i] = t
		if e.p.Store.IsGround(t) {
			mask |= 1 << uint(i)
			key[i] = t
		}
	}
	relation.Scan(mask, key, lo, hi, func(_ int, tuple []term.ID) bool {
		mark := bnd.Mark()
		ok := true
		for i, pat := range resolved {
			if mask&(1<<uint(i)) != 0 {
				continue // already matched via the index
			}
			if !bnd.Match(pat, tuple[i]) {
				ok = false
				break
			}
		}
		if ok {
			e.joinBody(r, j+1, d, bnd)
		}
		bnd.Undo(mark)
		return !e.stats.Truncated
	})
}

// emit checks the rule's inequality constraints and materializes the head.
func (e *evaluator) emit(r Rule, bnd *term.Bindings) {
	for _, n := range r.Neqs {
		if bnd.Resolve(n.X) == bnd.Resolve(n.Y) {
			return
		}
	}
	e.stats.Attempts++
	args := make([]term.ID, len(r.Head.Args))
	for i, a := range r.Head.Args {
		t := bnd.Resolve(a)
		if !e.p.Store.IsGround(t) {
			panic(fmt.Sprintf("datalog: derived non-ground fact from %s", r.String(e.p.Store)))
		}
		if e.budget.MaxTermDepth > 0 && e.p.Store.Depth(t) > e.budget.MaxTermDepth {
			return // depth gadget: drop, do not truncate
		}
		args[i] = t
	}
	e.insert(r.Head.Rel, args)
}

func (e *evaluator) insert(name rel.Name, args []term.ID) {
	if e.db.Lookup(name).Insert(args) {
		if e.seeding {
			e.stats.Seeded++
		} else {
			e.stats.Derived++
		}
		if e.db.FactCount() >= e.budget.MaxFacts {
			e.stats.Truncated = true
			e.stats.Reason = "fact budget"
		}
	}
}

// Answers evaluates a query pattern against a materialized database: it
// returns the bindings of the pattern's variables, in first-occurrence
// order, for every matching tuple of the pattern's relation. The returned
// tuples are deduplicated and deterministic (insertion order of db).
func Answers(db *rel.DB, store *term.Store, q Atom) [][]term.ID {
	relation := db.Lookup(q.Rel)
	if relation == nil {
		return nil
	}
	var qvars []term.ID
	for _, a := range q.Args {
		qvars = store.Vars(qvars, a)
	}
	bnd := term.NewBindings(store)
	seen := rel.New(len(qvars))
	var out [][]term.ID
	relation.Scan(0, nil, 0, relation.Len(), func(_ int, tuple []term.ID) bool {
		mark := bnd.Mark()
		ok := true
		for i, pat := range q.Args {
			if !bnd.Match(pat, tuple[i]) {
				ok = false
				break
			}
		}
		if ok {
			row := make([]term.ID, len(qvars))
			for i, v := range qvars {
				row[i] = bnd.Resolve(v)
			}
			if seen.Insert(row) {
				out = append(out, row)
			}
		}
		bnd.Undo(mark)
		return true
	})
	return out
}
