package datalog

import (
	"fmt"

	"repro/internal/term"
)

// Validate checks the well-formedness conditions of Section 3:
//
//   - range restriction: every variable of a rule head occurs in its body;
//   - constraint safety: every variable of an x != y constraint occurs in
//     the body;
//   - consistent arities across all uses of a relation;
//   - facts are ground.
//
// It returns the first violation found, or nil.
func (p *Program) Validate() error {
	if _, err := p.Arities(); err != nil {
		return err
	}
	for i, f := range p.Facts {
		for _, t := range f.Args {
			if !p.Store.IsGround(t) {
				return fmt.Errorf("datalog: fact %d (%s) is not ground", i, f.String(p.Store))
			}
		}
	}
	for i, r := range p.Rules {
		bodyVars := make(map[term.ID]bool)
		for _, a := range r.Body {
			for _, t := range a.Args {
				for _, v := range p.Store.Vars(nil, t) {
					bodyVars[v] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			for _, v := range p.Store.Vars(nil, t) {
				if !bodyVars[v] {
					return fmt.Errorf("datalog: rule %d (%s): head variable %s not bound in body",
						i, r.String(p.Store), p.Store.String(v))
				}
			}
		}
		for _, n := range r.Neqs {
			for _, side := range []term.ID{n.X, n.Y} {
				for _, v := range p.Store.Vars(nil, side) {
					if !bodyVars[v] {
						return fmt.Errorf("datalog: rule %d (%s): constraint variable %s not bound in body",
							i, r.String(p.Store), p.Store.String(v))
					}
				}
			}
		}
	}
	return nil
}

// Depends returns the dependency graph of the program's relations: edges
// from each head relation to every relation in the same rule's body. Used
// for reachability pruning and for documentation dumps.
func (p *Program) Depends() map[string][]string {
	deps := make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, r := range p.Rules {
		h := string(r.Head.Rel)
		if seen[h] == nil {
			seen[h] = make(map[string]bool)
		}
		for _, a := range r.Body {
			b := string(a.Rel)
			if !seen[h][b] {
				seen[h][b] = true
				deps[h] = append(deps[h], b)
			}
		}
	}
	return deps
}
