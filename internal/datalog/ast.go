// Package datalog implements the deductive-database substrate of the
// reproduction: Datalog with function symbols and inequality constraints
// (the paper's rule language, Section 3), validated programs, and naive and
// semi-naive bottom-up evaluation under explicit budgets.
//
// Because rules may build compound terms in their heads (the Skolem
// functions f, g, h that name unfolding nodes), the minimal model can be
// infinite; every evaluator therefore takes a Budget and reports whether it
// was hit.
package datalog

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/term"
)

// Atom is a literal R(t1, ..., tn). Args are term IDs in a Store shared by
// the whole program.
type Atom struct {
	Rel  rel.Name
	Args []term.ID
}

// A is a terse atom constructor: A("edge", x, y).
func A(r rel.Name, args ...term.ID) Atom {
	return Atom{Rel: r, Args: args}
}

// String renders the atom against its store.
func (a Atom) String(s *term.Store) string {
	var b strings.Builder
	b.WriteString(string(a.Rel))
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String(t))
	}
	b.WriteByte(')')
	return b.String()
}

// Neq is an inequality constraint x != y between two terms of a rule body.
type Neq struct {
	X, Y term.ID
}

// Rule is a Horn rule Head :- Body, Neqs. A rule with an empty body is a
// fact (its head must then be ground).
type Rule struct {
	Head Atom
	Body []Atom
	Neqs []Neq
}

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 && len(r.Neqs) == 0 }

// String renders the rule in textual Datalog.
func (r Rule) String(s *term.Store) string {
	var b strings.Builder
	b.WriteString(r.Head.String(s))
	if len(r.Body) > 0 || len(r.Neqs) > 0 {
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String(s))
		}
		for i, n := range r.Neqs {
			if i > 0 || len(r.Body) > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String(n.X))
			b.WriteString(" != ")
			b.WriteString(s.String(n.Y))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Program is a finite set of rules over a shared term store, plus the
// extensional facts. EDB relations are those that never occur in a rule
// head; IDB relations are defined by rules.
type Program struct {
	Store *term.Store
	Rules []Rule
	Facts []Atom // ground extensional facts
}

// NewProgram returns an empty program over store.
func NewProgram(store *term.Store) *Program {
	return &Program{Store: store}
}

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.Rules = append(p.Rules, r) }

// AddFact appends a ground extensional fact. It panics if the atom is not
// ground — catching encoding bugs early.
func (p *Program) AddFact(a Atom) {
	for _, t := range a.Args {
		if !p.Store.IsGround(t) {
			panic(fmt.Sprintf("datalog: non-ground fact %s", a.String(p.Store)))
		}
	}
	p.Facts = append(p.Facts, a)
}

// IDB returns the set of relation names defined by rule heads.
func (p *Program) IDB() map[rel.Name]bool {
	idb := make(map[rel.Name]bool)
	for _, r := range p.Rules {
		idb[r.Head.Rel] = true
	}
	return idb
}

// Arities returns the arity of every relation mentioned in the program,
// or an error if a relation is used with two different arities.
func (p *Program) Arities() (map[rel.Name]int, error) {
	ar := make(map[rel.Name]int)
	note := func(a Atom) error {
		if prev, ok := ar[a.Rel]; ok {
			if prev != len(a.Args) {
				return fmt.Errorf("datalog: relation %s used with arities %d and %d", a.Rel, prev, len(a.Args))
			}
			return nil
		}
		ar[a.Rel] = len(a.Args)
		return nil
	}
	for _, f := range p.Facts {
		if err := note(f); err != nil {
			return nil, err
		}
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := note(a); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}

// String renders the whole program, facts first.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Facts {
		b.WriteString(f.String(p.Store))
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String(p.Store))
		b.WriteByte('\n')
	}
	return b.String()
}
