package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/term"
)

func smallExtern() term.Extern {
	s := term.NewStore()
	c := s.Constant("c")
	return s.ExternalizeTuple([]term.ID{s.Compound("f", s.Variable("X"), c), c})
}

// seedCorpus feeds every frame kind (and a few corrupt shapes) to both
// fuzzers, so even the -fuzztime smoke run exercises all decode paths.
func seedCorpus(f *testing.F) {
	frames := []Frame{
		Hello{Version: Version, Node: "m0", LastSeq: 9},
		Ack{Seq: 17},
		Data{From: "p1", To: "p2", Payload: Activate{Rel: "conf@p2"}},
		Data{From: "p1", To: "p2", Payload: Facts{Qual: "r@p1", Arity: 2, Tuple: smallExtern()}},
		Data{From: "drv", To: "p1", Payload: Inject{Rel: "obs", Tuple: smallExtern()}},
		Data{From: "drv", To: "p1", Payload: Install{Rule: Rule{
			Head: Atom{Rel: "h", Peer: "p1", Args: smallExtern()},
			Body: []Atom{{Rel: "b", Peer: "p2", Args: smallExtern()}},
		}}},
		Job{NetText: "place p [a]\n", Alarms: "a@p\n", Engine: 1,
			Hosted: []string{"p"}, Peers: []Assign{{"p", "m0"}},
			Nodes: []Assign{{"m0", ":0"}}, Driver: "drv"},
		JobOK{Node: "m0"},
		Poll{Epoch: 3},
		Status{Epoch: 3, Sent: 5, Processed: 5, Idle: true},
		Stop{Err: "x"},
		Done{Sent: 5, Processed: []PeerCount{{"p", 5}},
			ByPair: []PairCount{{"p", "q", 2}}, BytesSent: []PairCount{{"p", "q", 64}},
			Extras: []KV{{"derived", 3}}},
		Hello{Version: Version, Node: "m1", Boot: 3, WallMicros: 1_700_000_000_000_000},
		Data{Gen: 2, Flow: 1 << 40, From: "p1", To: "p2", Payload: Activate{Rel: "r"}},
		Job{NetText: "place p [a]\n", Alarms: "a@p\n", Engine: 1,
			Trace: true, TraceID: 12345, ParentSpan: 6,
			Hosted: []string{"p"}, Peers: []Assign{{"p", "m0"}},
			Nodes: []Assign{{"m0", ":0"}}, Driver: "drv"},
		Telemetry{Gen: 2, Node: "m0", TraceID: 12345, WallMicros: 1_700_000_000_000_001,
			Dropped:  1,
			Counters: []KV{{"derived", 4}},
			Gauges:   []KV{{"go_goroutines", 8}},
			Events: []TraceEvent{
				{Track: "p", Name: "handle", Ph: 'X', Wall: 1_700_000_000_000_000, Dur: 9},
				{Track: "net", Name: "pending", Ph: 'C', Wall: 1_700_000_000_000_001, Value: -2},
				{Track: "p", Name: "msg", Ph: 'f', Wall: 1_700_000_000_000_002, ID: 1 << 40},
			}},
		SessionJob{Req: 7, Op: SessCreate, Session: "s1", NetText: "place p [a]\n",
			Engine: 3, MaxFacts: 1 << 20, TimeoutMS: 30000,
			Frontend: "fe", FrontendAddr: "127.0.0.1:9"},
		SessionJob{Req: 8, Op: SessAppend, Session: "s1", Index: 2, Alarms: "a@p",
			TimeoutMS: 30000, Frontend: "fe", FrontendAddr: "127.0.0.1:9"},
		SessionJob{Req: 9, Op: SessLoad, Session: "s1", Blob: []byte{1, 2, 3},
			Frontend: "fe", FrontendAddr: "127.0.0.1:9"},
		SessionReply{Req: 8, Op: SessAppend, Session: "s1", Active: 3, Queued: 1,
			EWMAMicros: 420, AdminAddr: "127.0.0.1:10", Blob: []byte{9}},
		SessionReply{Req: 9, Op: SessLoad, Session: "s1", Code: SessSaturated,
			Err: "table full", RetryAfterMS: 1000},
	}
	for i, fr := range frames {
		f.Add(AppendFrame(nil, uint64(i), fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0xFF})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02, tagAck, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
}

// FuzzDecodeFrame: the decoder is total — arbitrary bytes either decode
// or error, never panic, never over-allocate.
func FuzzDecodeFrame(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		seq, fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to an equivalent frame.
		enc := AppendFrame(nil, seq, fr)
		seq2, fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if seq2 != seq || !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-encode not stable:\n first %#v\nsecond %#v", fr, fr2)
		}
		// Any Facts/Inject tuple that survives decoding must internalize
		// without panicking (the decoder re-checks the DAG invariants).
		if d, ok := fr.(Data); ok {
			s := term.NewStore()
			switch p := d.Payload.(type) {
			case Facts:
				s.InternalizeTuple(p.Tuple)
			case Inject:
				s.InternalizeTuple(p.Tuple)
			case Install:
				s.InternalizeTuple(p.Rule.Head.Args)
			}
		}
	})
}

// FuzzFrameRoundTrip drives the encoder from fuzzed field values and
// checks decode(encode(f)) == f.
func FuzzFrameRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		// Interpret the fuzz input as a decoded frame; if it doesn't
		// decode there is nothing to round-trip.
		seq, fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		enc := AppendFrame(nil, seq, fr)
		seq2, fr2, err := DecodeFrame(enc)
		if err != nil || seq2 != seq || !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("round trip: err=%v\n in  %#v\n out %#v", err, fr, fr2)
		}
		// PayloadSize must match the encoder byte-for-byte.
		if d, ok := fr.(Data); ok {
			want := len(AppendPayload(nil, d.Payload))
			if got, ok := PayloadSize(d.Payload); !ok || got != want {
				t.Fatalf("PayloadSize(%T) = %d/%v, encoder wrote %d", d.Payload, got, ok, want)
			}
		}
	})
}
