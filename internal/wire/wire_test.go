package wire

import (
	"reflect"
	"testing"

	"repro/internal/rel"
	"repro/internal/term"
)

// sampleExtern builds the extern of f(g(X,c),c), X — a tuple with shared
// structure (c appears twice, encoded once).
func sampleExtern(t *testing.T) term.Extern {
	t.Helper()
	s := term.NewStore()
	c := s.Constant("c")
	x := s.Variable("X")
	f := s.Compound("f", s.Compound("g", x, c), c)
	return s.ExternalizeTuple([]term.ID{f, x})
}

func sampleFrames(t *testing.T) []Frame {
	t.Helper()
	e := sampleExtern(t)
	atom := func(name, peer string) Atom { return Atom{Rel: rel.Name(name), Peer: peer, Args: e} }
	return []Frame{
		Hello{Version: Version, Node: "m0", LastSeq: 41},
		Hello{Version: Version, Node: "m1", Boot: 7, WallMicros: 1_720_000_000_000_017},
		Ack{Seq: 1 << 40},
		Data{Gen: 4, From: "p1", To: "p2", Payload: Activate{Rel: "conf@p2"}},
		Data{Gen: 4, Flow: 0xAB00_0000_0042, From: "p1", To: "p2", Payload: Activate{Rel: "conf@p2"}},
		Data{From: "p2", To: "p1", Payload: Facts{Qual: "conf@p2", Arity: 2, Tuple: e}},
		Data{Gen: 1 << 33, From: "drv", To: "p1", Payload: Inject{Rel: "obs", Tuple: e}},
		Data{From: "drv", To: "p1", Payload: Install{Rule: Rule{
			Head: atom("h", "p1"),
			Body: []Atom{atom("b1", "p1"), atom("b2", "p2")},
			NeqX: e, NeqY: e,
		}}},
		Job{
			Gen:     3,
			NetText: "place p [a b]\n", Alarms: "a@p\n",
			Engine: 2, MaxDepth: 13, MaxFacts: 100000, TimeoutMS: 30000,
			Hosted: []string{"p1", "p2"},
			Peers:  []Assign{{"p1", "m0"}, {"p2", "m1"}},
			Nodes:  []Assign{{"m0", "127.0.0.1:1"}, {"m1", "127.0.0.1:2"}},
			Driver: "drv",
		},
		Job{
			Gen:     4,
			NetText: "place p [a b]\n", Alarms: "a@p\n",
			Engine: 1, TimeoutMS: 30000,
			Trace: true, TraceID: 0xDEAD_BEEF_CAFE, ParentSpan: 99,
			Hosted: []string{"p1"},
			Peers:  []Assign{{"p1", "m0"}},
			Nodes:  []Assign{{"m0", "127.0.0.1:1"}},
			Driver: "drv",
		},
		JobOK{Gen: 3, Node: "m0"},
		JobOK{Node: "m1", Err: "parse: boom"},
		Poll{Gen: 3, Epoch: 7},
		Status{Gen: 3, Epoch: 7, Sent: 120, Processed: 120, Idle: true},
		Status{}, // unsolicited idle kick
		Stop{Gen: 3},
		Stop{Err: "budget exhausted"},
		Done{
			Gen:       3,
			Sent:      99,
			Processed: []PeerCount{{"p1", 50}, {"p2", 49}},
			ByPair:    []PairCount{{"p1", "p2", 30}, {"p2", "p1", 20}},
			BytesSent: []PairCount{{"p1", "p2", 4096}},
			Extras:    []KV{{"derived", 512}, {"replicated", 30}},
		},
		Done{Err: "timeout"},
		Telemetry{Gen: 3, Node: "m0"},
		Telemetry{
			Gen: 3, Node: "m1", TraceID: 0xDEAD_BEEF_CAFE,
			WallMicros: 1_720_000_000_000_042, Dropped: 2,
			Counters: []KV{{"derived", 512}, {"replicated", 30}},
			Gauges:   []KV{{"go_goroutines", 12}, {"go_heap_bytes", 1 << 21}},
			Events: []TraceEvent{
				{Track: "p1", Name: "handle", Ph: 'X', Wall: 1_720_000_000_000_001, Dur: 37},
				{Track: "p1", Name: "rule installed", Ph: 'i', Wall: 1_720_000_000_000_002},
				{Track: "net", Name: "facts_pending", Ph: 'C', Wall: 1_720_000_000_000_003, Value: -4},
				{Track: "p2", Name: "msg", Ph: 's', Wall: 1_720_000_000_000_004, ID: 0xAB00_0000_0042},
				{Track: "p1", Name: "msg", Ph: 'f', Wall: 1_720_000_000_000_005, ID: 0xAB00_0000_0042},
			},
		},
		SessionJob{Req: 11, Op: SessCreate, Session: "s000001-ab",
			NetText: "place p [a b]\n", Engine: 3, MaxFacts: 1 << 20, TimeoutMS: 30000,
			Frontend: "fe-1", FrontendAddr: "127.0.0.1:7701"},
		SessionJob{Req: 12, Op: SessAppend, Session: "s000001-ab", Index: 4,
			Alarms: "a@p b@p", TimeoutMS: 5000, Frontend: "fe-1", FrontendAddr: "127.0.0.1:7701"},
		SessionJob{Req: 13, Op: SessPing, Frontend: "fe-1", FrontendAddr: "127.0.0.1:7701"},
		SessionJob{Req: 14, Op: SessLoad, Session: "s000001-ab",
			Blob: []byte{0xDE, 0xAD, 0xBE, 0xEF}, Frontend: "fe-1", FrontendAddr: "127.0.0.1:7701"},
		SessionReply{Req: 12, Op: SessAppend, Session: "s000001-ab",
			Active: 17, Queued: 3, EWMAMicros: 1234, AdminAddr: "127.0.0.1:7702",
			Blob: []byte{1, 0, 2}},
		SessionReply{Req: 14, Op: SessLoad, Session: "s000001-ab",
			Code: SessSaturated, Err: "serve: server overloaded", RetryAfterMS: 1500},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames(t) {
		enc := AppendFrame(nil, uint64(i)*3, f)
		seq, got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("frame %d (%T): decode: %v", i, f, err)
		}
		if seq != uint64(i)*3 {
			t.Fatalf("frame %d: seq %d, want %d", i, seq, uint64(i)*3)
		}
		if !reflect.DeepEqual(normalize(got), normalize(f)) {
			t.Errorf("frame %d (%T): round trip mismatch\n got %#v\nwant %#v", i, f, got, f)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares decoded frames
// (which leave absent collections nil) against literals.
func normalize(f Frame) Frame {
	rv := reflect.ValueOf(&f).Elem()
	normalizeValue(rv.Elem())
	return f
}

func normalizeValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Interface:
		if v.IsNil() {
			return
		}
		inner := reflect.New(v.Elem().Type()).Elem()
		inner.Set(v.Elem())
		normalizeValue(inner)
		if v.CanSet() {
			v.Set(inner)
		}
	case reflect.Ptr:
		if !v.IsNil() {
			normalizeValue(v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				normalizeValue(v.Field(i))
			}
		}
	case reflect.Slice:
		if v.Len() == 0 {
			if v.CanSet() {
				v.Set(reflect.Zero(v.Type()))
			}
			return
		}
		for i := 0; i < v.Len(); i++ {
			normalizeValue(v.Index(i))
		}
	}
}

// TestPayloadSizeExact pins PayloadSize to the encoder: the runtime's
// byte counters charge PayloadSize without encoding, so the two must
// agree to the byte.
func TestPayloadSizeExact(t *testing.T) {
	e := sampleExtern(t)
	payloads := []Payload{
		Activate{Rel: "conf@p2"},
		Facts{Qual: "conf@p2", Arity: 2, Tuple: e},
		Facts{Qual: "n", Arity: 0},
		Inject{Rel: "obs", Tuple: e},
		Install{Rule: Rule{
			Head: Atom{Rel: "h", Peer: "p1", Args: e},
			Body: []Atom{{Rel: "b", Peer: "p2", Args: e}},
			NeqX: e, NeqY: e,
		}},
	}
	for _, p := range payloads {
		enc := AppendPayload(nil, p)
		size, ok := PayloadSize(p)
		if !ok {
			t.Fatalf("%T: PayloadSize not ok", p)
		}
		if size != len(enc) {
			t.Errorf("%T: PayloadSize %d, encoded %d bytes", p, size, len(enc))
		}
	}
	if _, ok := PayloadSize(struct{}{}); ok {
		t.Error("PayloadSize accepted a non-wire payload")
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good := AppendFrame(nil, 5, Data{From: "a", To: "b", Payload: Activate{Rel: "r"}})
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    good[:len(good)-2],
		"trailing":     append(append([]byte{}, good...), 0),
		"bad tag":      {0, 0xFF},
		"huge string":  {0, tagStop, 0xFF, 0xFF, 0xFF, 0x7F},
		"forward ref":  AppendFrame(nil, 0, Data{From: "a", To: "b", Payload: Inject{Rel: "r", Tuple: term.Extern{Nodes: []term.ExternNode{{Kind: term.Comp, Name: "f", Args: []int32{0}}}, Roots: []int32{0}}}}),
		"bad root":     AppendFrame(nil, 0, Data{From: "a", To: "b", Payload: Inject{Rel: "r", Tuple: term.Extern{Roots: []int32{3}}}}),
		"zeroary comp": AppendFrame(nil, 0, Data{From: "a", To: "b", Payload: Inject{Rel: "r", Tuple: term.Extern{Nodes: []term.ExternNode{{Kind: term.Comp, Name: "f"}}, Roots: []int32{0}}}}),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDecodedExternInternalizes proves the decoder's validation is at
// least as strict as term.InternalizeTuple's panics: any Facts tuple that
// survives DecodeFrame must internalize cleanly.
func TestDecodedExternInternalizes(t *testing.T) {
	enc := AppendFrame(nil, 1, Data{From: "p1", To: "p2",
		Payload: Facts{Qual: "r@p1", Arity: 2, Tuple: sampleExtern(t)}})
	_, f, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	facts := f.(Data).Payload.(Facts)
	s := term.NewStore()
	ids := s.InternalizeTuple(facts.Tuple)
	if len(ids) != 2 {
		t.Fatalf("internalized %d roots, want 2", len(ids))
	}
	if got := s.String(ids[0]) + ", " + s.String(ids[1]); got != "f(g(X,c),c), X" {
		t.Fatalf("internalized tuple = %q", got)
	}
}
