// Command gencorpus regenerates the checked-in fuzz seed corpus under
// internal/wire/testdata/fuzz: one file per protocol-v4 frame shape, in
// the `go test fuzz v1` encoding, shared by both wire fuzz targets.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

func main() {
	seeds := map[string]wire.Frame{
		"hello_v4_wallclock": wire.Hello{
			Version: wire.Version, Node: "m1", Boot: 3,
			WallMicros: 1_700_000_000_000_000,
		},
		"data_flow_id": wire.Data{
			Gen: 2, Flow: 1 << 40, From: "p1", To: "p2",
			Payload: wire.Activate{Rel: "conf@p2"},
		},
		"job_trace_context": wire.Job{
			Gen: 4, NetText: "place p [a b]\n", Alarms: "a@p\n",
			Engine: 1, TimeoutMS: 30000,
			Trace: true, TraceID: 0xDEAD_BEEF_CAFE, ParentSpan: 99,
			Hosted: []string{"p"}, Peers: []wire.Assign{{Key: "p", Val: "m0"}},
			Nodes: []wire.Assign{{Key: "m0", Val: ":0"}}, Driver: "drv",
		},
		"telemetry_sample": wire.Telemetry{
			Gen: 3, Node: "m1", TraceID: 0xDEAD_BEEF_CAFE,
			WallMicros: 1_700_000_000_000_042, Dropped: 2,
			Counters: []wire.KV{{Key: "derived", Val: 512}},
			Gauges:   []wire.KV{{Key: "go_goroutines", Val: 12}},
			Events: []wire.TraceEvent{
				{Track: "p1", Name: "handle", Ph: 'X', Wall: 1_700_000_000_000_001, Dur: 37},
				{Track: "net", Name: "pending", Ph: 'C', Wall: 1_700_000_000_000_002, Value: -4},
				{Track: "p1", Name: "msg", Ph: 'f', Wall: 1_700_000_000_000_003, ID: 1 << 40},
			},
		},
	}
	for _, target := range []string{"FuzzDecodeFrame", "FuzzFrameRoundTrip"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, fr := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", wire.AppendFrame(nil, 1, fr))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}
