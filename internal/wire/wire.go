// Package wire is the binary codec of the peer transport: a stdlib-only,
// varint-based, length-prefixed frame format that carries the distributed
// evaluation's messages (relation activations, fact streams, runtime fact
// and rule installation) plus the control frames of the multi-process
// runtime (handshake, job shipping, quiescence waves, shutdown).
//
// Terms cross the wire in their hash-consed structural encoding
// (term.Extern): nodes are listed once, arguments before users, so a term
// whose tree expansion is exponential (deep Skolem terms of the unfolding
// programs) still encodes in linear space.
//
// The decoder is total: any byte slice either decodes into a valid frame
// or returns an error — it never panics and never allocates more than the
// input could justify (every length is validated against the remaining
// input before allocation). FuzzDecodeFrame enforces this.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/rel"
	"repro/internal/term"
)

// Version is the protocol version exchanged in the Hello handshake. Nodes
// refuse to talk across versions: the codec has no compatibility shims.
// Version 3 added the Gen tag carried by every post-handshake frame.
// Version 4 added cluster telemetry: wall-clock samples in Hello, trace
// context on Job, flow IDs on Data, and the Telemetry frame.
// Version 5 added the session-pool RPC frames (SessionJob, SessionReply).
const Version = 5

// MaxFrame bounds the encoded size of a single frame (64 MiB). The
// transport rejects longer length prefixes before reading the body, so a
// corrupt or hostile prefix cannot force a giant allocation.
const MaxFrame = 1 << 26

// ErrTruncated reports an input that ended mid-frame.
var ErrTruncated = errors.New("wire: truncated input")

// ErrCorrupt reports structurally invalid input.
var ErrCorrupt = errors.New("wire: corrupt input")

// frame type tags.
const (
	tagHello byte = iota + 1
	tagAck
	tagData
	tagJob
	tagJobOK
	tagPoll
	tagStatus
	tagStop
	tagDone
	tagTelemetry
	tagSessionJob
	tagSessionReply
)

// payload kind tags (inside a Data frame).
const (
	tagActivate byte = iota + 1
	tagFacts
	tagInject
	tagInstall
)

// Frame is one unit of the transport protocol.
type Frame interface{ isFrame() }

// Hello opens a connection: the dialer announces itself, the acceptor
// replies with the highest sequence number it has already received from
// the dialer so the dialer can resend exactly the lost tail. Boot
// identifies the sender's transport incarnation: a restarted process
// reuses its node name but draws a fresh Boot, telling the receiver to
// discard the previous incarnation's duplicate-filter state instead of
// dropping the newcomer's frames as replays.
// WallMicros is the sender's wall clock at encode time (microseconds since
// the Unix epoch). Each side of the handshake records the difference
// between the peer's sample and its own clock at receipt, giving the
// per-node offset estimate that aligns cluster trace timestamps.
type Hello struct {
	Version    uint32
	Node       string // sender's node ID
	Boot       uint64 // sender's transport incarnation
	WallMicros uint64 // sender's wall clock at encode time (µs since epoch)
	LastSeq    uint64 // acceptor→dialer only: last delivered seq from the dialer
}

// Ack tells the sending node that every sequenced frame up to Seq has
// been delivered, letting it trim its resend buffer.
type Ack struct {
	Seq uint64
}

// Data carries one peer-to-peer evaluation message. Flow is the sender's
// globally unique message ID: the receiving node injects the message under
// the same ID, so the flow arrow recorded at the sender ('s' trace event)
// and the handle span recorded at the receiver ('f' trace event) bind into
// one arrow when per-node traces are merged into a cluster timeline.
type Data struct {
	Gen     uint64 // job generation the message belongs to
	Flow    uint64 // sender-assigned flow ID (0 = untracked)
	From    string // sending peer
	To      string // receiving peer
	Payload Payload
}

// Job ships a diagnosis job to a member node: the system description, the
// observed alarms, the engine configuration, and the cluster layout. Gen
// is the job's generation: the driver bumps it on every ship, every
// frame of the resulting evaluation carries it, and both sides drop
// frames whose generation is not the current one. That is what keeps a
// crashed-and-restarted node's replayed tail — Data frames of a round
// that died with the old process — from polluting the retried round.
type Job struct {
	Gen        uint64   // job generation (stamped by the driver's ShipJob)
	NetText    string   // textual net description (parser.Net format)
	Alarms     string   // observed alarm sequence (parser.Alarms format)
	Engine     uint32   // diagnosis engine ordinal (naive or dqsq)
	MaxDepth   uint32   // term-depth budget; 0 = engine default
	MaxFacts   uint32   // materialized-fact budget; 0 = engine default
	TimeoutMS  uint32   // driver's evaluation timeout, for the member failsafe
	Trace      bool     // record spans on the member and ship them back per round
	TraceID    uint64   // trace context: ID of the driver's whole-run trace
	ParentSpan uint64   // trace context: driver span the member's spans nest under
	Hosted     []string // peers this member hosts
	Peers      []Assign // full peer→node assignment of the cluster
	Nodes      []Assign // node→address book for member↔member dialing
	Driver     string   // driver node ID
}

// Assign is one key→value entry of a Job map (peer→node or node→addr).
type Assign struct {
	Key, Val string
}

// JobOK acknowledges a Job (or reports why it was refused). Gen echoes
// the acknowledged job's generation so a late ack for a superseded job
// cannot pass for an ack of the current one.
type JobOK struct {
	Gen  uint64
	Node string
	Err  string
}

// Poll asks a member for a quiescence status sample; Epoch matches the
// reply to the wave that requested it.
type Poll struct {
	Gen   uint64
	Epoch uint64
}

// Status is a member's counter sample: messages its peers have sent,
// messages they have fully processed, and whether the node is locally
// idle. Epoch 0 is an unsolicited idle notification.
type Status struct {
	Gen       uint64
	Epoch     uint64
	Sent      uint64
	Processed uint64
	Idle      bool
}

// Stop ends the current round at a member; an empty Err means clean
// quiescence.
type Stop struct {
	Gen uint64
	Err string
}

// Done is a member's end-of-round report: its share of the global run
// statistics plus evaluator-defined extras (e.g. facts derived).
type Done struct {
	Gen       uint64
	Sent      uint64
	Processed []PeerCount // messages handled, per hosted peer
	ByPair    []PairCount // sends per (from, to) peer pair
	BytesSent []PairCount // encoded payload bytes per (from, to) pair
	Extras    []KV
	Err       string
}

// PeerCount is a per-peer counter.
type PeerCount struct {
	Peer  string
	Count uint64
}

// PairCount is a per-directed-pair counter.
type PairCount struct {
	From, To string
	Count    uint64
}

// KV is one evaluator-defined extra counter.
type KV struct {
	Key string
	Val uint64
}

// Telemetry is a member's per-round observability sample, sent to the
// driver just before the round's Done report: cumulative engine counters,
// runtime gauge readings, and the trace events recorded since the last
// sample. Gen scopes it to a job generation like every evaluation frame;
// TraceID echoes the job's trace context so samples of different runs
// cannot be conflated.
type Telemetry struct {
	Gen        uint64
	Node       string // reporting member
	TraceID    uint64 // trace context echoed from the Job
	WallMicros uint64 // reporter's wall clock at encode time (µs since epoch)
	Dropped    uint64 // trace events lost to the member's bounded buffer
	Counters   []KV   // cumulative engine counters (derived, replicated, ...)
	Gauges     []KV   // runtime gauge readings (goroutines, heap bytes, ...)
	Events     []TraceEvent
}

// TraceEvent is one recorded trace event in wall-clock form, the unit of
// cross-process trace shipping. Wall is the recorder's own clock; the
// driver subtracts the per-node offset estimated from the Hello handshake
// when merging events into the cluster timeline.
type TraceEvent struct {
	Track string // logical track (peer name, "net", ...)
	Name  string // event name
	Ph    byte   // Chrome trace phase: X, i, C, G, s, f
	Wall  int64  // event time, µs since the Unix epoch (recorder's clock)
	Dur   int64  // duration in µs (complete spans only)
	Value int64  // counter/gauge value (C and G only)
	ID    uint64 // flow ID (s and f only)
}

// SessionJob operations (SessionJob.Op). They are the verbs of the
// session-pool RPC: a diagnosed frontend ships session work to a peerd
// worker as one SessionJob and gets one SessionReply back.
const (
	// SessCreate admits a session under the frontend-assigned ID.
	SessCreate uint32 = iota + 1
	// SessAppend feeds alarms to a live session. Index is the 1-based
	// position of this append in the session's history; the worker applies
	// it exactly once, so a retried or hedged duplicate returns the
	// memoized result instead of re-evaluating.
	SessAppend
	// SessGet reads the session's state (seq, report, exhaustion).
	SessGet
	// SessDelete removes the session.
	SessDelete
	// SessPing is a no-op carrying back only the load sample.
	SessPing
	// SessShip asks the worker to serialize the session (checkpoint bytes
	// in the reply blob) — the migrate-by-checkpoint path of a drain.
	SessShip
	// SessLoad installs a shipped checkpoint on this worker.
	SessLoad
)

// SessionReply codes (SessionReply.Code). Zero is success.
const (
	SessOK uint32 = iota
	// SessRetry: transient worker-side failure; the same request may be
	// retried (the Index dedup makes appends idempotent).
	SessRetry
	// SessSaturated: the worker's session table or fact budget is full;
	// place elsewhere or shed load (maps to 503 + Retry-After).
	SessSaturated
	// SessDraining: the worker is draining; do not place new sessions,
	// migrate the ones it holds.
	SessDraining
	// SessNotFound: no such session on this worker.
	SessNotFound
	// SessExhausted: the session's fact budget is spent (maps to 429).
	SessExhausted
	// SessTimeout: the evaluation hit its deadline (maps to 504).
	SessTimeout
	// SessBad: permanent input error (bad net, unknown peer, ...).
	SessBad
	// SessOutOfSync: the append index does not follow the worker's applied
	// count — the frontend and worker have diverged; re-materialize.
	SessOutOfSync
)

// SessionJob ships one session operation to a pool worker. Req matches
// the reply to the request; Frontend/FrontendAddr teach the worker where
// to send it (the worker adds the route before replying, so the frontend
// needs no a-priori registration on the worker side).
type SessionJob struct {
	Req          uint64 // request ID, echoed by SessionReply
	Op           uint32 // SessCreate..SessLoad
	Session      string // session ID (frontend-assigned)
	Index        uint64 // SessAppend: 1-based append index for dedup
	NetText      string // SessCreate: textual net description
	Engine       uint32 // SessCreate: engine ordinal (core.Engine)
	MaxFacts     uint32 // SessCreate: per-session fact budget
	TimeoutMS    uint32 // evaluation deadline for this operation
	Alarms       string // SessAppend: alarm text (parser.Alarms format)
	Frontend     string // requesting frontend's node name
	FrontendAddr string // requesting frontend's transport address
	Blob         []byte // SessLoad: checkpoint bytes to install
}

// SessionReply answers one SessionJob. Every reply piggybacks the
// worker's load sample (active sessions, queue depth, EWMA append
// latency), which is what the frontend's least-loaded scheduler and
// hedging policy feed on between health probes.
type SessionReply struct {
	Req          uint64 // echoed request ID
	Op           uint32 // echoed operation
	Session      string // echoed session ID
	Code         uint32 // SessOK or a SessionReply error code
	Err          string // human-readable error detail (Code != SessOK)
	RetryAfterMS uint32 // backpressure hint (SessSaturated/SessDraining)
	Active       uint32 // load: live sessions on the worker
	Queued       uint32 // load: jobs waiting in the worker's queue
	EWMAMicros   uint64 // load: EWMA append latency, microseconds
	AdminAddr    string // worker's HTTP admin address (health probes)
	Blob         []byte // op result payload (pool codec)
}

// FrameGen returns the job generation carried by f, and whether f is a
// generation-tagged frame at all (the handshake frames are not).
func FrameGen(f Frame) (uint64, bool) {
	switch v := f.(type) {
	case Data:
		return v.Gen, true
	case Job:
		return v.Gen, true
	case JobOK:
		return v.Gen, true
	case Poll:
		return v.Gen, true
	case Status:
		return v.Gen, true
	case Stop:
		return v.Gen, true
	case Done:
		return v.Gen, true
	case Telemetry:
		return v.Gen, true
	}
	return 0, false
}

func (Hello) isFrame()        {}
func (Ack) isFrame()          {}
func (Data) isFrame()         {}
func (Job) isFrame()          {}
func (JobOK) isFrame()        {}
func (Poll) isFrame()         {}
func (Status) isFrame()       {}
func (Stop) isFrame()         {}
func (Done) isFrame()         {}
func (Telemetry) isFrame()    {}
func (SessionJob) isFrame()   {}
func (SessionReply) isFrame() {}

// Payload is the evaluator-level content of a Data frame. The four kinds
// mirror the messages of the naive distributed evaluation (Section 3.2)
// and its online extension: activation/subscription, fact streaming,
// runtime fact injection, runtime rule installation.
type Payload interface{ isPayload() }

// Activate asks the receiving peer to activate relation Rel and subscribe
// the sender to its tuples.
type Activate struct {
	Rel rel.Name
}

// Facts carries one ground tuple of a qualified relation to a subscriber.
type Facts struct {
	Qual  rel.Name // qualified name "R@owner"
	Arity int
	Tuple term.Extern
}

// Inject delivers a new base fact to its owner peer at runtime.
type Inject struct {
	Rel   rel.Name // unqualified: a relation owned by the receiver
	Tuple term.Extern
}

// Install delivers a rule to its host peer at runtime.
type Install struct {
	Rule Rule
}

// Atom is the store-independent form of a located atom.
type Atom struct {
	Rel  rel.Name
	Peer string
	Args term.Extern
}

// Rule is the store-independent form of a located rule.
type Rule struct {
	Head Atom
	Body []Atom
	NeqX term.Extern // tuple of constraint left sides
	NeqY term.Extern // tuple of constraint right sides
}

func (Activate) isPayload() {}
func (Facts) isPayload()    {}
func (Inject) isPayload()   {}
func (Install) isPayload()  {}

// --- encoding ------------------------------------------------------------

func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytes(dst, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func putBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func putExtern(dst []byte, e term.Extern) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.Nodes)))
	for _, n := range e.Nodes {
		dst = append(dst, byte(n.Kind))
		dst = putString(dst, n.Name)
		if n.Kind == term.Comp {
			dst = binary.AppendUvarint(dst, uint64(len(n.Args)))
			for _, a := range n.Args {
				dst = binary.AppendUvarint(dst, uint64(a))
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.Roots)))
	for _, r := range e.Roots {
		dst = binary.AppendUvarint(dst, uint64(r))
	}
	return dst
}

func putAtom(dst []byte, a Atom) []byte {
	dst = putString(dst, string(a.Rel))
	dst = putString(dst, a.Peer)
	return putExtern(dst, a.Args)
}

// AppendPayload encodes p after dst and returns the extended slice.
func AppendPayload(dst []byte, p Payload) []byte {
	switch v := p.(type) {
	case Activate:
		dst = append(dst, tagActivate)
		dst = putString(dst, string(v.Rel))
	case Facts:
		dst = append(dst, tagFacts)
		dst = putString(dst, string(v.Qual))
		dst = putUvarint(dst, uint64(v.Arity))
		dst = putExtern(dst, v.Tuple)
	case Inject:
		dst = append(dst, tagInject)
		dst = putString(dst, string(v.Rel))
		dst = putExtern(dst, v.Tuple)
	case Install:
		dst = append(dst, tagInstall)
		dst = putAtom(dst, v.Rule.Head)
		dst = putUvarint(dst, uint64(len(v.Rule.Body)))
		for _, a := range v.Rule.Body {
			dst = putAtom(dst, a)
		}
		dst = putExtern(dst, v.Rule.NeqX)
		dst = putExtern(dst, v.Rule.NeqY)
	default:
		panic(fmt.Sprintf("wire: unencodable payload %T", p))
	}
	return dst
}

// PayloadSize returns the exact encoded size of p in bytes, and whether p
// is a wire payload at all. It is what the runtime charges to the
// per-pair byte counters — the same for a message that stays in-process
// and one that crosses a socket.
func PayloadSize(p any) (int, bool) {
	switch v := p.(type) {
	case Activate:
		return 1 + stringSize(string(v.Rel)), true
	case Facts:
		return 1 + stringSize(string(v.Qual)) + uvarintSize(uint64(v.Arity)) + externSize(v.Tuple), true
	case Inject:
		return 1 + stringSize(string(v.Rel)) + externSize(v.Tuple), true
	case Install:
		n := 1 + atomSize(v.Rule.Head) + uvarintSize(uint64(len(v.Rule.Body)))
		for _, a := range v.Rule.Body {
			n += atomSize(a)
		}
		return n + externSize(v.Rule.NeqX) + externSize(v.Rule.NeqY), true
	default:
		return 0, false
	}
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func stringSize(s string) int { return uvarintSize(uint64(len(s))) + len(s) }

func externSize(e term.Extern) int {
	n := uvarintSize(uint64(len(e.Nodes)))
	for _, nd := range e.Nodes {
		n += 1 + stringSize(nd.Name)
		if nd.Kind == term.Comp {
			n += uvarintSize(uint64(len(nd.Args)))
			for _, a := range nd.Args {
				n += uvarintSize(uint64(a))
			}
		}
	}
	n += uvarintSize(uint64(len(e.Roots)))
	for _, r := range e.Roots {
		n += uvarintSize(uint64(r))
	}
	return n
}

func atomSize(a Atom) int {
	return stringSize(string(a.Rel)) + stringSize(a.Peer) + externSize(a.Args)
}

// AppendFrame encodes f, preceded by its sequence number, after dst.
// Sequence numbers order the frames of one directed node-to-node stream;
// unsequenced frames (Hello, Ack) use seq 0.
func AppendFrame(dst []byte, seq uint64, f Frame) []byte {
	dst = binary.AppendUvarint(dst, seq)
	switch v := f.(type) {
	case Hello:
		dst = append(dst, tagHello)
		dst = putUvarint(dst, uint64(v.Version))
		dst = putString(dst, v.Node)
		dst = putUvarint(dst, v.Boot)
		dst = putUvarint(dst, v.WallMicros)
		dst = putUvarint(dst, v.LastSeq)
	case Ack:
		dst = append(dst, tagAck)
		dst = putUvarint(dst, v.Seq)
	case Data:
		dst = append(dst, tagData)
		dst = putUvarint(dst, v.Gen)
		dst = putUvarint(dst, v.Flow)
		dst = putString(dst, v.From)
		dst = putString(dst, v.To)
		dst = AppendPayload(dst, v.Payload)
	case Job:
		dst = append(dst, tagJob)
		dst = putUvarint(dst, v.Gen)
		dst = putString(dst, v.NetText)
		dst = putString(dst, v.Alarms)
		dst = putUvarint(dst, uint64(v.Engine))
		dst = putUvarint(dst, uint64(v.MaxDepth))
		dst = putUvarint(dst, uint64(v.MaxFacts))
		dst = putUvarint(dst, uint64(v.TimeoutMS))
		dst = putBool(dst, v.Trace)
		dst = putUvarint(dst, v.TraceID)
		dst = putUvarint(dst, v.ParentSpan)
		dst = putUvarint(dst, uint64(len(v.Hosted)))
		for _, h := range v.Hosted {
			dst = putString(dst, h)
		}
		dst = putAssigns(dst, v.Peers)
		dst = putAssigns(dst, v.Nodes)
		dst = putString(dst, v.Driver)
	case JobOK:
		dst = append(dst, tagJobOK)
		dst = putUvarint(dst, v.Gen)
		dst = putString(dst, v.Node)
		dst = putString(dst, v.Err)
	case Poll:
		dst = append(dst, tagPoll)
		dst = putUvarint(dst, v.Gen)
		dst = putUvarint(dst, v.Epoch)
	case Status:
		dst = append(dst, tagStatus)
		dst = putUvarint(dst, v.Gen)
		dst = putUvarint(dst, v.Epoch)
		dst = putUvarint(dst, v.Sent)
		dst = putUvarint(dst, v.Processed)
		dst = putBool(dst, v.Idle)
	case Stop:
		dst = append(dst, tagStop)
		dst = putUvarint(dst, v.Gen)
		dst = putString(dst, v.Err)
	case Done:
		dst = append(dst, tagDone)
		dst = putUvarint(dst, v.Gen)
		dst = putUvarint(dst, v.Sent)
		dst = putUvarint(dst, uint64(len(v.Processed)))
		for _, pc := range v.Processed {
			dst = putString(dst, pc.Peer)
			dst = putUvarint(dst, pc.Count)
		}
		dst = putPairs(dst, v.ByPair)
		dst = putPairs(dst, v.BytesSent)
		dst = putUvarint(dst, uint64(len(v.Extras)))
		for _, kv := range v.Extras {
			dst = putString(dst, kv.Key)
			dst = putUvarint(dst, kv.Val)
		}
		dst = putString(dst, v.Err)
	case Telemetry:
		dst = append(dst, tagTelemetry)
		dst = putUvarint(dst, v.Gen)
		dst = putString(dst, v.Node)
		dst = putUvarint(dst, v.TraceID)
		dst = putUvarint(dst, v.WallMicros)
		dst = putUvarint(dst, v.Dropped)
		dst = putKVs(dst, v.Counters)
		dst = putKVs(dst, v.Gauges)
		dst = putUvarint(dst, uint64(len(v.Events)))
		for _, e := range v.Events {
			dst = putString(dst, e.Track)
			dst = putString(dst, e.Name)
			dst = append(dst, e.Ph)
			dst = binary.AppendVarint(dst, e.Wall)
			dst = binary.AppendVarint(dst, e.Dur)
			dst = binary.AppendVarint(dst, e.Value)
			dst = putUvarint(dst, e.ID)
		}
	case SessionJob:
		dst = append(dst, tagSessionJob)
		dst = putUvarint(dst, v.Req)
		dst = putUvarint(dst, uint64(v.Op))
		dst = putString(dst, v.Session)
		dst = putUvarint(dst, v.Index)
		dst = putString(dst, v.NetText)
		dst = putUvarint(dst, uint64(v.Engine))
		dst = putUvarint(dst, uint64(v.MaxFacts))
		dst = putUvarint(dst, uint64(v.TimeoutMS))
		dst = putString(dst, v.Alarms)
		dst = putString(dst, v.Frontend)
		dst = putString(dst, v.FrontendAddr)
		dst = putBytes(dst, v.Blob)
	case SessionReply:
		dst = append(dst, tagSessionReply)
		dst = putUvarint(dst, v.Req)
		dst = putUvarint(dst, uint64(v.Op))
		dst = putString(dst, v.Session)
		dst = putUvarint(dst, uint64(v.Code))
		dst = putString(dst, v.Err)
		dst = putUvarint(dst, uint64(v.RetryAfterMS))
		dst = putUvarint(dst, uint64(v.Active))
		dst = putUvarint(dst, uint64(v.Queued))
		dst = putUvarint(dst, v.EWMAMicros)
		dst = putString(dst, v.AdminAddr)
		dst = putBytes(dst, v.Blob)
	default:
		panic(fmt.Sprintf("wire: unencodable frame %T", f))
	}
	return dst
}

func putKVs(dst []byte, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(kvs)))
	for _, kv := range kvs {
		dst = putString(dst, kv.Key)
		dst = putUvarint(dst, kv.Val)
	}
	return dst
}

func putAssigns(dst []byte, as []Assign) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(as)))
	for _, a := range as {
		dst = putString(dst, a.Key)
		dst = putString(dst, a.Val)
	}
	return dst
}

func putPairs(dst []byte, ps []PairCount) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = putString(dst, p.From)
		dst = putString(dst, p.To)
		dst = putUvarint(dst, p.Count)
	}
	return dst
}

// --- decoding ------------------------------------------------------------

// reader is a bounds-checked cursor over one frame body.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		if r.off >= len(r.b) {
			r.err = ErrTruncated
		} else {
			r.err = ErrCorrupt
		}
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and validates it against the bytes
// still available, given that each element occupies at least min bytes —
// the guard that keeps a hostile length prefix from forcing a giant
// allocation.
func (r *reader) count(min int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(len(r.b)-r.off)/uint64(min)+1 {
		r.err = ErrCorrupt
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// blob reads a length-prefixed byte slice, validating the length against
// the remaining input before allocating (nil for an empty blob).
func (r *reader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.err = ErrTruncated
		return false
	}
	b := r.b[r.off]
	r.off++
	if b > 1 {
		r.err = ErrCorrupt
		return false
	}
	return b == 1
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) u32() uint32 {
	v := r.uvarint()
	if v > math.MaxUint32 {
		r.err = ErrCorrupt
		return 0
	}
	return uint32(v)
}

// extern decodes a term.Extern, re-validating the DAG invariants that
// term.InternalizeTuple would otherwise panic on: every compound argument
// and every root must reference an earlier (already decoded) node, and
// every kind must be one of the three real term kinds.
func (r *reader) extern() term.Extern {
	nNodes := r.count(2) // kind byte + name length byte minimum
	if r.err != nil {
		return term.Extern{}
	}
	e := term.Extern{}
	if nNodes > 0 {
		e.Nodes = make([]term.ExternNode, 0, nNodes)
	}
	for i := 0; i < nNodes; i++ {
		kind := term.Kind(r.byte())
		name := r.str()
		var args []int32
		switch kind {
		case term.Const, term.Var:
		case term.Comp:
			nArgs := r.count(1)
			if r.err != nil {
				return term.Extern{}
			}
			if nArgs == 0 {
				r.err = ErrCorrupt // zero-ary compounds are constants
				return term.Extern{}
			}
			args = make([]int32, 0, nArgs)
			for j := 0; j < nArgs; j++ {
				a := r.uvarint()
				if r.err != nil {
					return term.Extern{}
				}
				if a >= uint64(i) {
					r.err = ErrCorrupt // forward or self reference
					return term.Extern{}
				}
				args = append(args, int32(a))
			}
		default:
			r.err = ErrCorrupt
			return term.Extern{}
		}
		if r.err != nil {
			return term.Extern{}
		}
		e.Nodes = append(e.Nodes, term.ExternNode{Kind: kind, Name: name, Args: args})
	}
	nRoots := r.count(1)
	if r.err != nil {
		return term.Extern{}
	}
	if nRoots > 0 {
		e.Roots = make([]int32, 0, nRoots)
	}
	for i := 0; i < nRoots; i++ {
		v := r.uvarint()
		if r.err != nil {
			return term.Extern{}
		}
		if v >= uint64(len(e.Nodes)) {
			r.err = ErrCorrupt
			return term.Extern{}
		}
		e.Roots = append(e.Roots, int32(v))
	}
	return e
}

func (r *reader) atom() Atom {
	a := Atom{Rel: rel.Name(r.str()), Peer: r.str()}
	a.Args = r.extern()
	return a
}

func (r *reader) payload() Payload {
	switch tag := r.byte(); tag {
	case tagActivate:
		return Activate{Rel: rel.Name(r.str())}
	case tagFacts:
		f := Facts{Qual: rel.Name(r.str())}
		ar := r.uvarint()
		if ar > 63 { // rel.New rejects arity >= 64; refuse it here too
			r.err = ErrCorrupt
			return nil
		}
		f.Arity = int(ar)
		f.Tuple = r.extern()
		return f
	case tagInject:
		in := Inject{Rel: rel.Name(r.str())}
		in.Tuple = r.extern()
		return in
	case tagInstall:
		ru := Rule{Head: r.atom()}
		n := r.count(1)
		if r.err != nil {
			return nil
		}
		for i := 0; i < n; i++ {
			ru.Body = append(ru.Body, r.atom())
			if r.err != nil {
				return nil
			}
		}
		ru.NeqX = r.extern()
		ru.NeqY = r.extern()
		if len(ru.NeqX.Roots) != len(ru.NeqY.Roots) {
			r.err = ErrCorrupt
			return nil
		}
		return Install{Rule: ru}
	default:
		r.fail()
		return nil
	}
}

// DecodeFrame decodes one frame body (as framed by the transport: the
// bytes after the length prefix). It returns the stream sequence number
// and the frame, or an error; it never panics.
func DecodeFrame(b []byte) (uint64, Frame, error) {
	if len(b) > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrCorrupt, len(b))
	}
	r := &reader{b: b}
	seq := r.uvarint()
	var f Frame
	switch tag := r.byte(); tag {
	case tagHello:
		f = Hello{Version: r.u32(), Node: r.str(), Boot: r.uvarint(), WallMicros: r.uvarint(), LastSeq: r.uvarint()}
	case tagAck:
		f = Ack{Seq: r.uvarint()}
	case tagData:
		d := Data{Gen: r.uvarint(), Flow: r.uvarint(), From: r.str(), To: r.str()}
		d.Payload = r.payload()
		f = d
	case tagJob:
		j := Job{
			Gen:     r.uvarint(),
			NetText: r.str(), Alarms: r.str(),
			Engine: r.u32(), MaxDepth: r.u32(), MaxFacts: r.u32(), TimeoutMS: r.u32(),
		}
		j.Trace = r.bool()
		j.TraceID = r.uvarint()
		j.ParentSpan = r.uvarint()
		n := r.count(1)
		for i := 0; i < n && r.err == nil; i++ {
			j.Hosted = append(j.Hosted, r.str())
		}
		j.Peers = r.assigns()
		j.Nodes = r.assigns()
		j.Driver = r.str()
		f = j
	case tagJobOK:
		f = JobOK{Gen: r.uvarint(), Node: r.str(), Err: r.str()}
	case tagPoll:
		f = Poll{Gen: r.uvarint(), Epoch: r.uvarint()}
	case tagStatus:
		f = Status{Gen: r.uvarint(), Epoch: r.uvarint(), Sent: r.uvarint(), Processed: r.uvarint(), Idle: r.bool()}
	case tagStop:
		f = Stop{Gen: r.uvarint(), Err: r.str()}
	case tagDone:
		d := Done{Gen: r.uvarint(), Sent: r.uvarint()}
		n := r.count(2)
		for i := 0; i < n && r.err == nil; i++ {
			d.Processed = append(d.Processed, PeerCount{Peer: r.str(), Count: r.uvarint()})
		}
		d.ByPair = r.pairs()
		d.BytesSent = r.pairs()
		n = r.count(2)
		for i := 0; i < n && r.err == nil; i++ {
			d.Extras = append(d.Extras, KV{Key: r.str(), Val: r.uvarint()})
		}
		d.Err = r.str()
		f = d
	case tagTelemetry:
		t := Telemetry{
			Gen: r.uvarint(), Node: r.str(),
			TraceID: r.uvarint(), WallMicros: r.uvarint(), Dropped: r.uvarint(),
		}
		t.Counters = r.kvs()
		t.Gauges = r.kvs()
		n := r.count(6) // 2 string lengths + phase byte + 3 varints minimum
		for i := 0; i < n && r.err == nil; i++ {
			t.Events = append(t.Events, TraceEvent{
				Track: r.str(), Name: r.str(), Ph: r.byte(),
				Wall: r.varint(), Dur: r.varint(), Value: r.varint(), ID: r.uvarint(),
			})
		}
		f = t
	case tagSessionJob:
		j := SessionJob{Req: r.uvarint(), Op: r.u32(), Session: r.str(), Index: r.uvarint()}
		j.NetText = r.str()
		j.Engine = r.u32()
		j.MaxFacts = r.u32()
		j.TimeoutMS = r.u32()
		j.Alarms = r.str()
		j.Frontend = r.str()
		j.FrontendAddr = r.str()
		j.Blob = r.blob()
		f = j
	case tagSessionReply:
		p := SessionReply{Req: r.uvarint(), Op: r.u32(), Session: r.str(), Code: r.u32()}
		p.Err = r.str()
		p.RetryAfterMS = r.u32()
		p.Active = r.u32()
		p.Queued = r.u32()
		p.EWMAMicros = r.uvarint()
		p.AdminAddr = r.str()
		p.Blob = r.blob()
		f = p
	default:
		r.fail()
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if r.off != len(b) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.off)
	}
	return seq, f, nil
}

func (r *reader) assigns() []Assign {
	n := r.count(2)
	var out []Assign
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, Assign{Key: r.str(), Val: r.str()})
	}
	return out
}

func (r *reader) kvs() []KV {
	n := r.count(2)
	var out []KV
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, KV{Key: r.str(), Val: r.uvarint()})
	}
	return out
}

func (r *reader) pairs() []PairCount {
	n := r.count(3)
	var out []PairCount
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, PairCount{From: r.str(), To: r.str(), Count: r.uvarint()})
	}
	return out
}
