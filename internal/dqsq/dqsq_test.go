package dqsq

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/qsq"
	"repro/internal/rel"
	"repro/internal/term"
)

// figure3 builds the paper's Figure 3 distributed program.
func figure3(a, b, c [][2]string) *ddatalog.Program {
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	x, y, z := s.Variable("X"), s.Variable("Y"), s.Variable("Z")
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("A", "r", x, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("R", "r", x, y), Body: []ddatalog.PAtom{ddatalog.At("S", "s", x, z), ddatalog.At("T", "t", z, y)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("S", "s", x, y), Body: []ddatalog.PAtom{ddatalog.At("R", "r", x, y), ddatalog.At("B", "s", y, z)}})
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("T", "t", x, y), Body: []ddatalog.PAtom{ddatalog.At("C", "t", x, y)}})
	add := func(name rel.Name, peer dist.PeerID, rows [][2]string) {
		for _, r := range rows {
			p.AddFact(ddatalog.At(name, peer, s.Constant(r[0]), s.Constant(r[1])))
		}
	}
	add("A", "r", a)
	add("B", "s", b)
	add("C", "t", c)
	return p
}

func sortedRows(s *term.Store, rows [][]term.ID) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, t := range r {
			parts[i] = s.String(t)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func queryFig3(p *ddatalog.Program, src string) ddatalog.PAtom {
	s := p.Store
	return ddatalog.At("R", "r", s.Constant(src), s.Variable("Y"))
}

func TestFigure5PerPeerRewriting(t *testing.T) {
	p := figure3(nil, nil, nil)
	rw, err := Rewrite(p, queryFig3(p, "1"))
	if err != nil {
		t.Fatal(err)
	}
	// Each peer expands exactly its own adorned relation, as in Figure 5.
	if got := rw.KeysByPeer["r"]; len(got) != 1 || got[0] != (adorn.Key{Rel: "R", Ad: "bf"}) {
		t.Fatalf("peer r keys = %v", got)
	}
	if got := rw.KeysByPeer["s"]; len(got) != 1 || got[0] != (adorn.Key{Rel: "S", Ad: "bf"}) {
		t.Fatalf("peer s keys = %v", got)
	}
	if got := rw.KeysByPeer["t"]; len(got) != 1 || got[0] != (adorn.Key{Rel: "T", Ad: "bf"}) {
		t.Fatalf("peer t keys = %v", got)
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatalf("rewriting invalid: %v", err)
	}
}

func TestFigure5DelegationsCrossPeers(t *testing.T) {
	p := figure3(nil, nil, nil)
	s := p.Store
	rw, err := Rewrite(p, queryFig3(p, "1"))
	if err != nil {
		t.Fatal(err)
	}
	// The rewriting must contain cross-peer rules: a rule hosted at one
	// peer whose body consumes a supplementary relation at another peer —
	// the bold rules of Figure 5 / rule (†).
	crossings := map[string]bool{}
	for _, r := range rw.Program.Rules {
		for _, a := range r.Body {
			if a.Peer != r.Head.Peer {
				crossings[string(r.Head.Peer)+"<-"+string(a.Peer)] = true
				_ = r.String(s)
			}
		}
	}
	// Rule 2 at r delegates to s (in-S + sup chain), s delegates to t, and
	// t's last supplementary feeds the answer rule back at r. Rule 3 at s
	// consumes R#bf from r.
	for _, want := range []string{"s<-r", "t<-s", "r<-t"} {
		if !crossings[want] {
			t.Fatalf("missing delegation %s; have %v", want, crossings)
		}
	}
	// The query seed lands at peer r.
	found := false
	for _, f := range rw.Program.Facts {
		if f.Rel == "in-R#bf" && f.Peer == "r" {
			found = true
		}
	}
	if !found {
		t.Fatal("no in-R#bf seed at peer r")
	}
}

// zeta maps a dQSQ qualified adorned name "R#bf@r" to the centralized
// QSQ name for the localized program, "R@r#bf" (the Theorem 1 bijection
// on adorned relations).
func zeta(q rel.Name) (rel.Name, bool) {
	name, peer, ok := ddatalog.SplitQualified(q)
	if !ok {
		return "", false
	}
	str := string(name)
	i := strings.LastIndex(str, "#")
	if i < 0 || strings.HasPrefix(str, "sup.") || strings.HasPrefix(str, "in-") {
		return "", false
	}
	return rel.Name(str[:i] + "@" + string(peer) + str[i:]), true
}

func TestTheorem1AnswersAndAdornedRelationsMatchQSQ(t *testing.T) {
	a := [][2]string{{"1", "2"}, {"2", "3"}, {"7", "8"}}
	b := [][2]string{{"2", "w"}, {"3", "w"}}
	c := [][2]string{{"2", "4"}, {"3", "5"}, {"4", "6"}}

	// dQSQ on the distributed program.
	p := figure3(a, b, c)
	res, err := Run(p, queryFig3(p, "1"), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Centralized QSQ on the localized program (Theorem 1's P_local).
	pl := figure3(a, b, c)
	local := pl.Localize()
	ls := local.Store
	q := datalog.Atom{Rel: "R@r", Args: []term.ID{ls.Constant("1"), ls.Variable("Y")}}
	qAns, qdb, qStats, err := qsq.Run(local, q, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}

	// (a) Same answers.
	if g, w := sortedRows(res.Store, res.Answers), sortedRows(ls, qAns); strings.Join(g, ";") != strings.Join(w, ";") {
		t.Fatalf("dQSQ answers %v != QSQ answers %v", g, w)
	}
	if len(res.Answers) == 0 {
		t.Fatal("expected nonempty answers")
	}

	// (b) Same facts in every adorned relation, up to zeta.
	for _, peer := range []dist.PeerID{"r", "s", "t"} {
		db := res.Engine.PeerDB(peer)
		st := res.Engine.PeerStore(peer)
		for _, name := range db.Names() {
			mapped, ok := zeta(name)
			if !ok {
				continue
			}
			lrel := qdb.Lookup(mapped)
			if lrel == nil {
				t.Fatalf("QSQ has no relation %s (zeta of %s)", mapped, name)
			}
			drel := db.Lookup(name)
			var got, want []string
			for _, tup := range drel.All() {
				row := make([]string, len(tup))
				for i, id := range tup {
					row[i] = st.String(id)
				}
				got = append(got, strings.Join(row, ","))
			}
			for _, tup := range lrel.All() {
				row := make([]string, len(tup))
				for i, id := range tup {
					row[i] = ls.String(id)
				}
				want = append(want, strings.Join(row, ","))
			}
			sort.Strings(got)
			sort.Strings(want)
			if strings.Join(got, ";") != strings.Join(want, ";") {
				t.Fatalf("relation %s: dQSQ %v != QSQ %v", name, got, want)
			}
		}
	}

	// (c) Same amount of materialized data: dQSQ derives at owners exactly
	// what centralized QSQ derives (Figure 3 has no remote extensional
	// atoms, so no bridge relations inflate the count).
	if res.Stats.Derived != qStats.Derived {
		t.Fatalf("dQSQ derived %d, QSQ derived %d", res.Stats.Derived, qStats.Derived)
	}
}

func TestDQSQMaterializesLessThanNaiveDistributed(t *testing.T) {
	// Wide extensional data with a query touching a small slice.
	var a, b, c [][2]string
	for i := 0; i < 40; i++ {
		a = append(a, [2]string{nn(i), nn(i + 1)})
		b = append(b, [2]string{nn(i + 1), "w"})
		c = append(c, [2]string{nn(i + 1), nn(i + 2)})
	}
	p1 := figure3(a, b, c)
	res, err := Run(p1, queryFig3(p1, nn(0)), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	p2 := figure3(a, b, c)
	nres, _, err := ddatalog.Run(p2, queryFig3(p2, nn(0)), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Both compute R, S, T fully in this instance (the chain is connected),
	// but dQSQ's derivations stay proportional while naive activation of R
	// computes everything regardless of the constant "1". What must hold
	// generally: same answers.
	g1 := sortedRows(res.Store, res.Answers)
	g2 := sortedRows(nres.Store, nres.Answers)
	if strings.Join(g1, ";") != strings.Join(g2, ";") {
		t.Fatalf("answers differ: %v vs %v", g1, g2)
	}
}

func TestDQSQSelectiveOnDisconnectedData(t *testing.T) {
	// Two disconnected chains; querying the first must not materialize
	// R-facts about the second under dQSQ, while naive distributed
	// evaluation computes the whole R relation.
	a := [][2]string{{"1", "2"}, {"x1", "x2"}, {"x2", "x3"}, {"x3", "x4"}}
	p1 := figure3(a, nil, nil)
	res, err := Run(p1, queryFig3(p1, "1"), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p2 := figure3(a, nil, nil)
	nres, _, err := ddatalog.Run(p2, queryFig3(p2, "1"), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := sortedRows(res.Store, res.Answers); strings.Join(g, ";") != "2" {
		t.Fatalf("dQSQ answers %v", g)
	}
	// The naive run materializes the full R relation (4 tuples, one per A
	// fact); dQSQ materializes only the tuple relevant to the query.
	db := res.Engine.PeerDB("r")
	st := res.Engine.PeerStore("r")
	if rAd := db.Lookup("R#bf@r"); rAd == nil || rAd.Len() != 1 {
		t.Fatalf("dQSQ materialized %v R#bf tuples, want 1", rAd)
	}
	if nres.Stats.Derived != 4 {
		t.Fatalf("naive derived %d R tuples, want 4", nres.Stats.Derived)
	}
	if r := db.Lookup("R#bf@r"); r != nil {
		for _, tup := range r.All() {
			if strings.HasPrefix(st.String(tup[0]), "x") {
				t.Fatalf("dQSQ materialized irrelevant fact R#bf(%s,%s)", st.String(tup[0]), st.String(tup[1]))
			}
		}
	}
}

func TestRemoteExtensionalBridge(t *testing.T) {
	// A rule at p joins an extensional relation owned by q: the rewriting
	// must produce a bridge at q rather than requiring p to know q's schema.
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(ddatalog.PRule{Head: ddatalog.At("res", "p", x, y), Body: []ddatalog.PAtom{
		ddatalog.At("edge", "q", x, y),
	}})
	p.AddFact(ddatalog.At("edge", "q", s.Constant("a"), s.Constant("b")))
	p.AddFact(ddatalog.At("edge", "q", s.Constant("a"), s.Constant("c")))
	p.AddFact(ddatalog.At("edge", "q", s.Constant("z"), s.Constant("w")))

	res, err := Run(p, ddatalog.At("res", "p", s.Constant("a"), s.Variable("Y")), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := sortedRows(res.Store, res.Answers); strings.Join(g, ";") != "b;c" {
		t.Fatalf("answers %v, want [b c]", g)
	}
	// The bridge must have filtered: edge#bf@q holds only "a" tuples.
	db := res.Engine.PeerDB("q")
	st := res.Engine.PeerStore("q")
	bridge := db.Lookup("edge#bf@q")
	if bridge == nil {
		t.Fatal("no bridge relation edge#bf at q")
	}
	for _, tup := range bridge.All() {
		if st.String(tup[0]) != "a" {
			t.Fatalf("bridge shipped irrelevant tuple (%s,%s)", st.String(tup[0]), st.String(tup[1]))
		}
	}
}

func TestDQSQWithNeqAcrossPeers(t *testing.T) {
	s := term.NewStore()
	p := ddatalog.NewProgram(s)
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At("pair", "p", x, y),
		Body: []ddatalog.PAtom{ddatalog.At("n", "p", x), ddatalog.At("m", "q", y)},
		Neqs: []datalog.Neq{{X: x, Y: y}},
	})
	for _, v := range []string{"a", "b"} {
		p.AddFact(ddatalog.At("n", "p", s.Constant(v)))
		p.AddFact(ddatalog.At("m", "q", s.Constant(v)))
	}
	res, err := Run(p, ddatalog.At("pair", "p", s.Constant("a"), s.Variable("Y")), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := sortedRows(res.Store, res.Answers); strings.Join(g, ";") != "b" {
		t.Fatalf("answers %v, want [b]", g)
	}
}

func TestDQSQExtensionalQuery(t *testing.T) {
	p := figure3([][2]string{{"1", "2"}}, nil, nil)
	s := p.Store
	res, err := Run(p, ddatalog.At("A", "r", s.Constant("1"), s.Variable("Y")), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g := sortedRows(res.Store, res.Answers); strings.Join(g, ";") != "2" {
		t.Fatalf("answers %v", g)
	}
}

func nn(i int) string { return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// Property: Theorem 1 over random instances — dQSQ and centralized QSQ on
// the localized program agree on answers.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"1", "2", "3", "4"}
		pick := func() string { return names[rng.Intn(len(names))] }
		var a, b, c [][2]string
		for i := 0; i < 3+rng.Intn(5); i++ {
			a = append(a, [2]string{pick(), pick()})
			b = append(b, [2]string{pick(), "w"})
			c = append(c, [2]string{pick(), pick()})
		}
		src := pick()

		p := figure3(a, b, c)
		res, err := Run(p, queryFig3(p, src), datalog.Budget{}, 10*time.Second)
		if err != nil {
			return false
		}

		pl := figure3(a, b, c)
		local := pl.Localize()
		ls := local.Store
		qAns, _, _, err := qsq.Run(local, datalog.Atom{Rel: "R@r",
			Args: []term.ID{ls.Constant(src), ls.Variable("Y")}}, datalog.Budget{})
		if err != nil {
			return false
		}
		return strings.Join(sortedRows(res.Store, res.Answers), ";") ==
			strings.Join(sortedRows(ls, qAns), ";")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDQSQFigure3(b *testing.B) {
	var av, bv, cv [][2]string
	for i := 0; i < 20; i++ {
		av = append(av, [2]string{nn(i), nn(i + 1)})
		bv = append(bv, [2]string{nn(i + 1), "w"})
		cv = append(cv, [2]string{nn(i + 1), nn(i + 2)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := figure3(av, bv, cv)
		if _, err := Run(p, queryFig3(p, nn(0)), datalog.Budget{}, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
