package dqsq

import (
	"strings"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/obs"
)

// This file threads an obs.Tracer through both dQSQ paths. Subqueries —
// the adorned-relation requests that drive the rewriting — become one
// instant event each on the requested peer's track plus the
// dqsq_subqueries_total counter; supplementary-relation sizes are sampled
// after each evaluation as gauges (dqsq_sup_tuples globally, a
// display-only per-peer breakdown in the trace).

// RunWith is Run with a tracer: the rewriting gets its own span, the
// static subquery set is replayed as trace events, the engine and its
// network are instrumented, and supplementary sizes are sampled after the
// run. A nil tracer behaves exactly like Run.
func RunWith(prog *ddatalog.Program, q ddatalog.PAtom, budget datalog.Budget, timeout time.Duration, tr obs.Tracer) (*Result, error) {
	tr = obs.Or(tr)
	var sp obs.Span
	if tr.Enabled() {
		sp = tr.Begin("dqsq", "rewrite "+string(q.Rel))
	}
	rw, err := Rewrite(prog, q)
	sp.End()
	if err != nil {
		return nil, err
	}
	emitSubqueries(tr, rw.KeysByPeer)
	eng, err := ddatalog.NewEngine(rw.Program, budget)
	if err != nil {
		return nil, err
	}
	eng.SetTracer(tr)
	res, err := eng.Run(rw.Query, timeout)
	if res == nil {
		return nil, err
	}
	emitSupStats(tr, eng)
	return &Result{Answers: res.Answers, Store: res.Store, Stats: res.Stats, Engine: eng}, err
}

// SetTracer installs the session tracer (obs.Nop when t is nil): the
// engine and every per-query network inherit it, lazy rewritings emit
// subquery events, and Query samples supplementary sizes. Must be called
// before the first Query; activation hooks read it unsynchronized.
func (s *OnlineSession) SetTracer(t obs.Tracer) {
	s.tracer = obs.Or(t)
	s.eng.SetTracer(s.tracer)
}

// emitSubqueries replays a static rewriting's subquery set as events.
func emitSubqueries(tr obs.Tracer, keys map[dist.PeerID][]adorn.Key) {
	total := 0
	for peer, ks := range keys {
		total += len(ks)
		if tr.Enabled() {
			for _, k := range ks {
				tr.Instant(string(peer), "subquery "+string(k.Rel)+"#"+string(k.Ad))
			}
		}
	}
	if total > 0 {
		tr.Counter("dqsq", "dqsq_subqueries_total", int64(total))
	}
}

// emitSupStats samples the size of every supplementary relation
// materialized so far: the global dqsq_sup_tuples gauge, plus a
// display-only per-peer breakdown (space in the name keeps it out of
// /metrics). Must only run between evaluations — it reads peer databases.
func emitSupStats(tr obs.Tracer, eng *ddatalog.Engine) {
	if !tr.Enabled() {
		return
	}
	total := 0
	for _, id := range eng.Peers() {
		db := eng.PeerDB(id)
		n := 0
		for _, name := range db.Names() {
			if strings.HasPrefix(string(name), "sup.") {
				n += db.Lookup(name).Len()
			}
		}
		if n > 0 {
			tr.Gauge(string(id), "sup tuples", int64(n))
		}
		total += n
	}
	tr.Gauge("dqsq", "dqsq_sup_tuples", int64(total))
}
