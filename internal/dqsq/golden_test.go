package dqsq

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFigure5 pins the full dQSQ rewriting of the Figure 3 program —
// the repository's rendition of Figure 5. Reviewed drift only.
func TestGoldenFigure5(t *testing.T) {
	p := figure3(nil, nil, nil)
	rw, err := Rewrite(p, queryFig3(p, "1"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range rw.Program.Facts {
		b.WriteString(f.String(p.Store) + ".\n")
	}
	for _, r := range rw.Program.Rules {
		b.WriteString(r.String(p.Store) + "\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "figure5.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("Figure 5 rewriting drifted; run with -update and review.\n--- got ---\n%s", got)
	}
}
