package dqsq

import (
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
)

// TestOnlineSessionIncrementalFacts: extend the Figure 3 program's
// extensional relations between queries; the warm session converges to
// the same answers as a cold run over the final data, reusing earlier
// materialization.
func TestOnlineSessionIncrementalFacts(t *testing.T) {
	a := [][2]string{{"1", "2"}}
	b := [][2]string{{"2", "x"}}
	c := [][2]string{{"2", "3"}} // closes the S;T chain: R(1,3)
	extraA := [2]string{"1", "9"}

	// Cold reference over the final data.
	ref := figure3(append(append([][2]string{}, a...), extraA), b, c)
	refRes, err := Run(ref, queryFig3(ref, "1"), datalog.Budget{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Warm session: query, extend A, re-query.
	p := figure3(a, b, c)
	q := queryFig3(p, "1")
	sess, err := NewOnlineSession(p, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Query(q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Store
	if err := sess.Extend([]ddatalog.PAtom{
		ddatalog.At("A", "r", s.Constant(extraA[0]), s.Constant(extraA[1])),
	}, nil); err != nil {
		t.Fatal(err)
	}
	second, err := sess.Query(q, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if len(second.Answers) <= len(first.Answers) {
		t.Fatalf("extension added no answers: %d then %d", len(first.Answers), len(second.Answers))
	}
	got := sortedRows(second.Store, second.Answers)
	want := sortedRows(refRes.Store, refRes.Answers)
	if len(got) != len(want) {
		t.Fatalf("warm answers %v != cold %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("warm answers %v != cold %v", got, want)
		}
	}
	// Warm total stays within 2x of the cold run (it additionally answered
	// the intermediate query, but reused its materialization).
	if second.Stats.Derived > 2*refRes.Stats.Derived {
		t.Fatalf("warm derived %d > 2x cold %d", second.Stats.Derived, refRes.Stats.Derived)
	}
}

// TestOnlineSessionExtendRules: a rule installed mid-session defines a
// fresh relation over the warm state; querying it triggers its lazy
// rewriting (visible in the trace) and answers correctly.
func TestOnlineSessionExtendRules(t *testing.T) {
	p := figure3([][2]string{{"1", "2"}}, [][2]string{{"2", "x"}}, [][2]string{{"2", "3"}})
	s := p.Store
	sess, err := NewOnlineSession(p, datalog.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(queryFig3(p, "1"), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// final@s(Y) :- R@r("1", Y) — a versioned view at another peer.
	y := s.Variable("Fy")
	rule := ddatalog.PRule{
		Head: ddatalog.At("final.v1", "s", y),
		Body: []ddatalog.PAtom{ddatalog.At("R", "r", s.Constant("1"), y)},
	}
	if err := sess.Extend(nil, []ddatalog.PRule{rule}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(ddatalog.At("final.v1", "s", s.Variable("QY")), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 { // R(1,2) via A, R(1,3) via S;T
		t.Fatalf("final.v1 answers = %v", sortedRows(res.Store, res.Answers))
	}
	sawV1 := false
	for _, e := range sess.Trace().Snapshot() {
		if e.Key.Rel == "final.v1" {
			sawV1 = true
		}
	}
	if !sawV1 {
		t.Fatal("mid-session rule was never lazily rewritten")
	}
}
