package dqsq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/rel"
)

func TestOnlineMatchesStatic(t *testing.T) {
	a := [][2]string{{"1", "2"}, {"2", "3"}}
	b := [][2]string{{"2", "w"}, {"3", "w"}}
	c := [][2]string{{"2", "4"}, {"3", "5"}, {"4", "6"}}

	p1 := figure3(a, b, c)
	static, err := Run(p1, queryFig3(p1, "1"), datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	p2 := figure3(a, b, c)
	online, trace, err := RunOnline(p2, queryFig3(p2, "1"), datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g1 := sortedRows(static.Store, static.Answers)
	g2 := sortedRows(online.Store, online.Answers)
	if strings.Join(g1, ";") != strings.Join(g2, ";") {
		t.Fatalf("online %v != static %v", g2, g1)
	}
	if len(g2) == 0 {
		t.Fatal("no answers")
	}

	// The trace starts at the query peer with the query's adornment and
	// eventually covers all three peers (the data flows through them all).
	entries := trace.Snapshot()
	if len(entries) == 0 {
		t.Fatal("no rewriting happened")
	}
	if entries[0].Peer != "r" || entries[0].Key != (adorn.Key{Rel: "R", Ad: "bf"}) {
		t.Fatalf("first rewriting = %+v, want R#bf at r", entries[0])
	}
	peers := map[string]bool{}
	for _, e := range entries {
		peers[string(e.Peer)] = true
	}
	if !peers["r"] || !peers["s"] || !peers["t"] {
		t.Fatalf("rewriting did not reach all peers: %v", entries)
	}
}

func TestOnlineLazyUnreachedPeer(t *testing.T) {
	// If S has no facts feeding T, peer t's relation is still requested
	// structurally (the rule mentions it); but a peer never mentioned by
	// any reachable rule must not rewrite. Add a fourth peer with an
	// island rule to verify it stays cold.
	p := figure3([][2]string{{"1", "2"}}, nil, nil)
	s := p.Store
	x, y := s.Variable("X"), s.Variable("Y")
	p.AddRule(ddatalog.PRule{
		Head: ddatalog.At("island", "u", x, y),
		Body: []ddatalog.PAtom{ddatalog.At("islandBase", "u", x, y)},
	})
	p.AddFact(ddatalog.At("islandBase", "u", s.Constant("a"), s.Constant("b")))

	_, trace, err := RunOnline(p, queryFig3(p, "1"), datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range trace.Snapshot() {
		if e.Peer == "u" {
			t.Fatalf("island peer was rewritten: %+v", e)
		}
	}
}

func TestOnlineExtensionalQuery(t *testing.T) {
	p := figure3([][2]string{{"1", "2"}}, nil, nil)
	s := p.Store
	res, trace, err := RunOnline(p, ddatalog.At("A", "r", s.Constant("1"), s.Variable("Y")), datalog.Budget{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %v", res.Answers)
	}
	if len(trace.Snapshot()) != 0 {
		t.Fatal("extensional query triggered rewriting")
	}
}

func TestOnlineUnknownPeer(t *testing.T) {
	p := figure3(nil, nil, nil)
	s := p.Store
	if _, _, err := RunOnline(p, ddatalog.At("R", "ghost", s.Constant("1"), s.Variable("Y")), datalog.Budget{}, time.Second); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestSplitAdorned(t *testing.T) {
	for name, ok := range map[string]bool{
		"R#bf":           true,
		"trans#fbb":      true,
		"in-R#bf":        false,
		"sup.r.R.0_1#bf": false,
		"plain":          false,
	} {
		if _, _, got := splitAdorned(rel.Name(name)); got != ok {
			t.Fatalf("splitAdorned(%q) = %v, want %v", name, got, ok)
		}
	}
	base, ad, _ := splitAdorned("R#bf")
	if base != "R" || ad != "bf" {
		t.Fatalf("split = %v %v", base, ad)
	}
}

// Property: online and static dQSQ agree on random Figure 3 instances.
func TestQuickOnlineEqualsStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"1", "2", "3", "4"}
		pick := func() string { return names[rng.Intn(len(names))] }
		var a, b, c [][2]string
		for i := 0; i < 3+rng.Intn(4); i++ {
			a = append(a, [2]string{pick(), pick()})
			b = append(b, [2]string{pick(), "w"})
			c = append(c, [2]string{pick(), pick()})
		}
		src := pick()

		p1 := figure3(a, b, c)
		static, err := Run(p1, queryFig3(p1, src), datalog.Budget{}, 30*time.Second)
		if err != nil {
			return false
		}
		p2 := figure3(a, b, c)
		online, _, err := RunOnline(p2, queryFig3(p2, src), datalog.Budget{}, 30*time.Second)
		if err != nil {
			return false
		}
		return strings.Join(sortedRows(static.Store, static.Answers), ";") ==
			strings.Join(sortedRows(online.Store, online.Answers), ";")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
