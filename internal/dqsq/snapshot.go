package dqsq

import (
	"sort"

	"repro/internal/adorn"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snapnames"
	"repro/internal/term"
)

// Session snapshots serialize everything an online dQSQ evaluation keeps
// warm: the shared program store, the session program (base facts plus
// every rule extended in so far), the per-peer lazy rewriters (which
// adornments have been expanded, in which order), the rewriting trace,
// queued-but-uninjected facts, and the distributed engine underneath.
// The activation hook is a closure over live state and is re-installed by
// DecodeOnlineSessionSnapshot, not serialized.

// EncodeSnapshot writes the session into its own sections of f: the term
// store, the program, the rewriters, and the engine.
func (s *OnlineSession) EncodeSnapshot(f *snapshot.File) error {
	s.prog.Store.EncodeSnapshot(f.Section(snapnames.TermStore))
	s.prog.EncodeSnapshot(f.Section(snapnames.Program))

	w := f.Section(snapnames.Session)
	ids := make([]string, 0, len(s.rewriters))
	for id := range s.rewriters {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		pr := s.rewriters[dist.PeerID(id)]
		w.String(id)
		w.Uvarint(uint64(pr.place))
		w.Uvarint(uint64(len(pr.rules)))
		for _, ru := range pr.rules {
			ddatalog.EncodePRuleSnapshot(w, ru)
		}
		hr := make([]string, 0, len(pr.hasRules))
		for n := range pr.hasRules {
			hr = append(hr, string(n))
		}
		sort.Strings(hr)
		w.Uvarint(uint64(len(hr)))
		for _, n := range hr {
			w.String(n)
		}
		ea := make([]string, 0, len(pr.edbArity))
		for n := range pr.edbArity {
			ea = append(ea, string(n))
		}
		sort.Strings(ea)
		w.Uvarint(uint64(len(ea)))
		for _, n := range ea {
			w.String(n)
			w.Uvarint(uint64(pr.edbArity[rel.Name(n)]))
		}
		fn := make([]string, 0, len(pr.facts))
		for n := range pr.facts {
			fn = append(fn, string(n))
		}
		sort.Strings(fn)
		w.Uvarint(uint64(len(fn)))
		for _, n := range fn {
			tuples := pr.facts[rel.Name(n)]
			w.String(n)
			w.Uvarint(uint64(len(tuples)))
			for _, tup := range tuples {
				w.Uvarint(uint64(len(tup)))
				for _, t := range tup {
					w.Uvarint(uint64(t))
				}
			}
		}
		// keys is the expansion order; done is exactly its set form.
		w.Uvarint(uint64(len(pr.keys)))
		for _, k := range pr.keys {
			w.String(string(k.Rel))
			w.String(string(k.Ad))
		}
	}
	w.Uvarint(uint64(len(s.pending)))
	for _, f := range s.pending {
		ddatalog.EncodePAtomSnapshot(w, f)
	}
	entries := s.trace.Snapshot()
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.String(string(e.Peer))
		w.String(string(e.Key.Rel))
		w.String(string(e.Key.Ad))
	}

	return s.eng.EncodeSnapshot(f.Section(snapnames.Engine))
}

// DecodeOnlineSessionSnapshot rebuilds a session from the sections
// EncodeSnapshot wrote, re-installing the lazy-rewriting hook on the
// restored engine. The caller re-attaches a tracer if it had one.
func DecodeOnlineSessionSnapshot(o *snapshot.OpenFile) (*OnlineSession, error) {
	sr, err := o.Section(snapnames.TermStore)
	if err != nil {
		return nil, err
	}
	store, err := term.DecodeStoreSnapshot(sr)
	if err != nil {
		return nil, err
	}
	if err := sr.Finish(); err != nil {
		return nil, err
	}
	pr, err := o.Section(snapnames.Program)
	if err != nil {
		return nil, err
	}
	prog, err := ddatalog.DecodeProgramSnapshot(pr, store)
	if err != nil {
		return nil, err
	}
	if err := pr.Finish(); err != nil {
		return nil, err
	}

	r, err := o.Section(snapnames.Session)
	if err != nil {
		return nil, err
	}
	sess := &OnlineSession{prog: prog, rewriters: make(map[dist.PeerID]*peerRewriter), trace: &OnlineTrace{}, tracer: obs.Nop}
	n := r.Count(2)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := dist.PeerID(r.String())
		if _, dup := sess.rewriters[id]; dup {
			r.Failf("duplicate rewriter %q", id)
			break
		}
		rw := &peerRewriter{
			id:       id,
			store:    store,
			hasRules: make(map[rel.Name]bool),
			edbArity: make(map[rel.Name]int),
			facts:    make(map[rel.Name][][]term.ID),
			done:     make(map[adorn.Key]bool),
			out:      ddatalog.NewProgram(store),
		}
		place := r.Uvarint()
		if r.Err() == nil && place > uint64(PlaceAtHead) {
			r.Failf("unknown placement %d", place)
			break
		}
		rw.place = Placement(place)
		m := r.Count(3)
		for j := 0; j < m && r.Err() == nil; j++ {
			rw.rules = append(rw.rules, ddatalog.DecodePRuleSnapshot(r, store.Len()))
		}
		m = r.Count(1)
		for j := 0; j < m && r.Err() == nil; j++ {
			rw.hasRules[rel.Name(r.String())] = true
		}
		m = r.Count(2)
		for j := 0; j < m && r.Err() == nil; j++ {
			name := rel.Name(r.String())
			ar := r.Uvarint()
			if r.Err() == nil && ar >= 64 {
				r.Failf("edb arity %d for %s", ar, name)
				break
			}
			rw.edbArity[name] = int(ar)
		}
		m = r.Count(2)
		for j := 0; j < m && r.Err() == nil; j++ {
			name := rel.Name(r.String())
			nt := r.Count(1)
			for k := 0; k < nt && r.Err() == nil; k++ {
				na := r.Count(1)
				tup := make([]term.ID, 0, na)
				for a := 0; a < na && r.Err() == nil; a++ {
					t := r.Uvarint()
					if t >= uint64(store.Len()) {
						r.Failf("rewriter fact term outside store")
						break
					}
					tup = append(tup, term.ID(t))
				}
				rw.facts[name] = append(rw.facts[name], tup)
			}
		}
		m = r.Count(2)
		for j := 0; j < m && r.Err() == nil; j++ {
			k := adorn.Key{Rel: rel.Name(r.String()), Ad: adorn.Adornment(r.String())}
			if rw.done[k] {
				r.Failf("duplicate rewriter key %s#%s", k.Rel, k.Ad)
				break
			}
			rw.done[k] = true
			rw.keys = append(rw.keys, k)
		}
		if r.Err() != nil {
			break
		}
		sess.rewriters[id] = rw
	}
	n = r.Count(2)
	for i := 0; i < n && r.Err() == nil; i++ {
		sess.pending = append(sess.pending, ddatalog.DecodePAtomSnapshot(r, store.Len()))
	}
	n = r.Count(3)
	for i := 0; i < n && r.Err() == nil; i++ {
		sess.trace.Entries = append(sess.trace.Entries, TraceEntry{
			Peer: dist.PeerID(r.String()),
			Key:  adorn.Key{Rel: rel.Name(r.String()), Ad: adorn.Adornment(r.String())},
		})
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}

	er, err := o.Section(snapnames.Engine)
	if err != nil {
		return nil, err
	}
	eng, err := ddatalog.DecodeEngineSnapshot(er, store)
	if err != nil {
		return nil, err
	}
	if err := er.Finish(); err != nil {
		return nil, err
	}
	sess.eng = eng
	sess.installHook()
	return sess, nil
}
