// Package dqsq implements distributed Query-Sub-Query (Section 3.2,
// Figure 5) — the paper's primary contribution.
//
// Each peer rewrites its own rules exactly as centralized QSQ would,
// using only local information: its hosted rules and the adornment
// requests it receives. When the left-to-right pass over a rule body
// reaches an atom owned by another peer, the remainder of the rule is
// delegated to that peer (the paper's rule (†)): the supplementary
// relation computed so far is defined at the current peer and consumed at
// the remote peer, which continues the chain. The result is a distributed
// dDatalog program whose naive asynchronous evaluation (package ddatalog)
// materializes exactly the facts centralized QSQ would — Theorem 1.
package dqsq

import (
	"fmt"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
)

// Rewriting is the distributed rewriting of a program for a query.
type Rewriting struct {
	// Program is the rewritten distributed program: per-peer supplementary
	// rules, cross-peer delegations, the in-relation seed for the query,
	// and the original extensional facts.
	Program *ddatalog.Program
	// Query is the adorned located atom holding the answers.
	Query ddatalog.PAtom
	// KeysByPeer records which relation-adornment pairs each peer
	// expanded, in arrival order — evidence that rewriting is per-peer.
	KeysByPeer map[dist.PeerID][]adorn.Key
}

// request is an adornment request in flight between peer rewriters.
type request struct {
	peer dist.PeerID
	key  adorn.Key
}

// peerRewriter rewrites the rules of a single peer. It sees nothing but
// its own hosted rules, its own extensional relations, and the requests
// addressed to it — the locality property the paper emphasizes ("each peer
// can perform its own rewriting with only local information available").
type peerRewriter struct {
	id       dist.PeerID
	place    Placement
	store    *term.Store
	rules    []ddatalog.PRule
	hasRules map[rel.Name]bool
	edbArity map[rel.Name]int
	facts    map[rel.Name][][]term.ID // local base facts, by relation
	done     map[adorn.Key]bool
	keys     []adorn.Key
	out      *ddatalog.Program
}

// Placement selects where supplementary relations are hosted — the
// paper's Remark 1: "One could use a different distribution for the
// supplementary relations, based on some cost model."
type Placement int

const (
	// PlaceAtData hosts sup<i>_j at the peer of body atom j, so every
	// join is local to the data it scans (the Figure 5 layout; default).
	PlaceAtData Placement = iota
	// PlaceAtHead hosts every supplementary relation at the rule's own
	// peer; remote answer relations are replicated to it instead. Same
	// facts, different communication pattern — the Remark 1 ablation.
	PlaceAtHead
)

// Rewrite performs the distributed rewriting of prog for the located query
// atom q with the default (Figure 5) placement. Each peer's portion is
// computed by an isolated peerRewriter; the driver only forwards adornment
// requests between them, playing the role of the network.
func Rewrite(prog *ddatalog.Program, q ddatalog.PAtom) (*Rewriting, error) {
	return RewritePlaced(prog, q, PlaceAtData)
}

// RewritePlaced is Rewrite with an explicit supplementary-relation
// placement strategy.
func RewritePlaced(prog *ddatalog.Program, q ddatalog.PAtom, place Placement) (*Rewriting, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := prog.Store

	out := ddatalog.NewProgram(s)
	out.Facts = append(out.Facts, prog.Facts...)

	rewriters := make(map[dist.PeerID]*peerRewriter)
	for _, id := range prog.Peers() {
		rewriters[id] = &peerRewriter{
			id:       id,
			place:    place,
			store:    s,
			hasRules: make(map[rel.Name]bool),
			edbArity: make(map[rel.Name]int),
			facts:    make(map[rel.Name][][]term.ID),
			done:     make(map[adorn.Key]bool),
			out:      out,
		}
	}
	for _, r := range prog.Rules {
		pr := rewriters[r.Head.Peer]
		pr.rules = append(pr.rules, r)
		pr.hasRules[r.Head.Rel] = true
	}
	for _, f := range prog.Facts {
		pr := rewriters[f.Peer]
		pr.edbArity[f.Rel] = len(f.Args)
		pr.facts[f.Rel] = append(pr.facts[f.Rel], f.Args)
	}

	ad := adorn.Compute(s, adorn.VarSet{}, q.Args)
	qr, ok := rewriters[q.Peer]
	if !ok {
		return nil, fmt.Errorf("dqsq: query peer %q not in program", q.Peer)
	}
	if !qr.hasRules[q.Rel] {
		// Extensional query: nothing to rewrite; answer directly.
		return &Rewriting{Program: out, Query: q, KeysByPeer: map[dist.PeerID][]adorn.Key{}}, nil
	}
	out.AddFact(ddatalog.PAtom{
		Rel: adorn.InputName(q.Rel, ad), Peer: q.Peer,
		Args: adorn.BoundArgs(ad, q.Args),
	})

	// Drive the request exchange to fixpoint.
	queue := []request{{peer: q.Peer, key: adorn.Key{Rel: q.Rel, Ad: ad}}}
	for len(queue) > 0 {
		req := queue[0]
		queue = queue[1:]
		pr, ok := rewriters[req.peer]
		if !ok {
			return nil, fmt.Errorf("dqsq: request for unknown peer %q", req.peer)
		}
		queue = append(queue, pr.handle(req.key)...)
	}

	keysByPeer := make(map[dist.PeerID][]adorn.Key)
	for id, pr := range rewriters {
		if len(pr.keys) > 0 {
			keysByPeer[id] = pr.keys
		}
	}
	return &Rewriting{
		Program: out,
		Query: ddatalog.PAtom{
			Rel: adorn.Name(q.Rel, ad), Peer: q.Peer, Args: q.Args,
		},
		KeysByPeer: keysByPeer,
	}, nil
}

// handle expands one adornment request and returns the requests it
// triggers at other peers (or at this peer — the driver routes uniformly).
func (pr *peerRewriter) handle(k adorn.Key) []request {
	if pr.done[k] {
		return nil
	}
	pr.done[k] = true
	pr.keys = append(pr.keys, k)

	if !pr.hasRules[k.Rel] {
		pr.bridge(k)
		return nil
	}
	var reqs []request
	for i, r := range pr.rules {
		if r.Head.Rel == k.Rel {
			reqs = append(reqs, pr.rewriteRule(i, r, k.Ad)...)
		}
	}
	// An intensional relation may also hold base facts (e.g. the root
	// facts of the unfolding program); bridge each into the adorned
	// answer relation, guarded by the shipped bindings.
	for _, args := range pr.facts[k.Rel] {
		pr.out.AddRule(ddatalog.PRule{
			Head: ddatalog.PAtom{Rel: adorn.Name(k.Rel, k.Ad), Peer: pr.id, Args: args},
			Body: []ddatalog.PAtom{{
				Rel: adorn.InputName(k.Rel, k.Ad), Peer: pr.id,
				Args: adorn.BoundArgs(k.Ad, args),
			}},
		})
	}
	return reqs
}

// bridge handles an adornment request for a relation this peer holds only
// extensionally: the adorned answer relation is defined directly from the
// base relation, filtered by the shipped bindings.
//
//	R#ad@p(v1,...,vn) :- in-R#ad@p(bound vi...), R@p(v1,...,vn)
func (pr *peerRewriter) bridge(k adorn.Key) {
	n, ok := pr.edbArity[k.Rel]
	if !ok {
		n = len(k.Ad) // relation is completely absent; arity from the adornment
	}
	vars := make([]term.ID, n)
	for i := range vars {
		vars[i] = pr.store.FreshVar("v")
	}
	pr.out.AddRule(ddatalog.PRule{
		Head: ddatalog.PAtom{Rel: adorn.Name(k.Rel, k.Ad), Peer: pr.id, Args: vars},
		Body: []ddatalog.PAtom{
			{Rel: adorn.InputName(k.Rel, k.Ad), Peer: pr.id, Args: adorn.BoundArgs(k.Ad, vars)},
			{Rel: k.Rel, Peer: pr.id, Args: vars},
		},
	})
}

// intensional reports how the rewriter treats a body atom: its own atoms
// are intensional iff it has rules for them; remote atoms are always
// requested (the remote peer bridges if the relation turns out to be
// extensional — this peer cannot know, and must not need to).
func (pr *peerRewriter) intensional(a ddatalog.PAtom) bool {
	if a.Peer == pr.id {
		return pr.hasRules[a.Rel]
	}
	return true
}

// relevant returns the bound variables still needed from position next on
// (remaining atoms, unattached constraints, head), in `order` order.
func relevant(s *term.Store, r ddatalog.PRule, next int, attached []bool, bound adorn.VarSet, order []term.ID) []term.ID {
	needed := adorn.VarSet{}
	for j := next; j < len(r.Body); j++ {
		for _, t := range r.Body[j].Args {
			needed.AddTerm(s, t)
		}
	}
	for ci, n := range r.Neqs {
		if !attached[ci] {
			needed.AddTerm(s, n.X)
			needed.AddTerm(s, n.Y)
		}
	}
	for _, t := range r.Head.Args {
		needed.AddTerm(s, t)
	}
	var out []term.ID
	for _, v := range order {
		if bound[v] && needed[v] {
			out = append(out, v)
		}
	}
	return out
}

// rewriteRule is the distributed analogue of the centralized QSQ rule
// rewriting. Supplementary relations are hosted where they are computed:
// sup<i>_j lives at the peer of body atom j, so each step of the chain is
// a local join and crossing an atom boundary between peers is precisely
// the paper's delegation (†).
func (pr *peerRewriter) rewriteRule(ri int, r ddatalog.PRule, ad adorn.Adornment) []request {
	s := pr.store
	// The rewriting peer's identity is part of the name: supplementary
	// relations of different peers' rules may be delegated to the same
	// host and must not collide there.
	supName := func(j int) rel.Name {
		return rel.Name(fmt.Sprintf("sup.%s.%s.%d_%d#%s", pr.id, r.Head.Rel, ri, j, ad))
	}

	var order []term.ID
	for i, t := range r.Head.Args {
		if ad.Bound(i) {
			order = s.Vars(order, t)
		}
	}
	for _, a := range r.Body {
		for _, t := range a.Args {
			order = s.Vars(order, t)
		}
	}

	bound := adorn.VarSet{}
	for i, t := range r.Head.Args {
		if ad.Bound(i) {
			bound.AddTerm(s, t)
		}
	}
	attached := make([]bool, len(r.Neqs))

	cols := relevant(s, r, 0, attached, bound, order)
	pr.out.AddRule(ddatalog.PRule{
		Head: ddatalog.PAtom{Rel: supName(0), Peer: pr.id, Args: cols},
		Body: []ddatalog.PAtom{{
			Rel: adorn.InputName(r.Head.Rel, ad), Peer: pr.id,
			Args: adorn.BoundArgs(ad, r.Head.Args),
		}},
	})
	prev := ddatalog.PAtom{Rel: supName(0), Peer: pr.id, Args: cols}

	var reqs []request
	for j, a := range r.Body {
		host := a.Peer // PlaceAtData: the join happens where the data lives
		if pr.place == PlaceAtHead {
			host = pr.id // Remark 1 alternative: keep the chain at home
		}
		joinAtom := a
		if pr.intensional(a) {
			adj := adorn.Compute(s, bound, a.Args)
			// Delegation: ship the current bindings to the atom's peer.
			// Hosted at a.Peer, consuming prev possibly remotely.
			pr.out.AddRule(ddatalog.PRule{
				Head: ddatalog.PAtom{Rel: adorn.InputName(a.Rel, adj), Peer: a.Peer, Args: adorn.BoundArgs(adj, a.Args)},
				Body: []ddatalog.PAtom{prev},
			})
			reqs = append(reqs, request{peer: a.Peer, key: adorn.Key{Rel: a.Rel, Ad: adj}})
			joinAtom = ddatalog.PAtom{Rel: adorn.Name(a.Rel, adj), Peer: a.Peer, Args: a.Args}
		}
		for _, t := range a.Args {
			bound.AddTerm(s, t)
		}
		var neqs []datalog.Neq
		for ci, n := range r.Neqs {
			if !attached[ci] && bound.CoversTerm(s, n.X) && bound.CoversTerm(s, n.Y) {
				attached[ci] = true
				neqs = append(neqs, n)
			}
		}
		cols = relevant(s, r, j+1, attached, bound, order)
		pr.out.AddRule(ddatalog.PRule{
			Head: ddatalog.PAtom{Rel: supName(j + 1), Peer: host, Args: cols},
			Body: []ddatalog.PAtom{prev, joinAtom},
			Neqs: neqs,
		})
		prev = ddatalog.PAtom{Rel: supName(j + 1), Peer: host, Args: cols}
	}

	var tail []datalog.Neq
	for ci, n := range r.Neqs {
		if !attached[ci] {
			tail = append(tail, n)
		}
	}
	pr.out.AddRule(ddatalog.PRule{
		Head: ddatalog.PAtom{Rel: adorn.Name(r.Head.Rel, ad), Peer: pr.id, Args: r.Head.Args},
		Body: []ddatalog.PAtom{prev},
		Neqs: tail,
	})
	return reqs
}

// Result of a dQSQ run.
type Result struct {
	Answers [][]term.ID
	Store   *term.Store
	Stats   ddatalog.Stats
	// Engine gives access to the per-peer databases for materialization
	// measurements (Theorem 4).
	Engine *ddatalog.Engine
}

// Run rewrites prog for q and evaluates the rewriting on the asynchronous
// distributed engine. The evaluation is the paper's dQSQ: subqueries
// propagate as in-relation tuples, answers stream back asynchronously, and
// the network quiesces at the fixpoint.
func Run(prog *ddatalog.Program, q ddatalog.PAtom, budget datalog.Budget, timeout time.Duration) (*Result, error) {
	return RunWith(prog, q, budget, timeout, nil)
}
