package dqsq

import (
	"strings"
	"sync"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/rel"
	"repro/internal/term"
)

// This file implements online dQSQ — the paper's Remark 2: "The dQSQ
// computation, and the generation of results, may start even before the
// rewriting is complete. This property is especially important in the
// context of the Web where the number of sites transitively involved in a
// computation may be too large to explore exhaustively."
//
// Instead of rewriting the whole program up front, the network starts
// with the extensional facts only. The first time an adorned relation
// R#ad is activated at its peer — i.e. the first time a subquery actually
// reaches that peer — the peer rewrites its own rules for that adornment,
// installs the local portions into its running program, and ships the
// delegated portions to their hosts as rule-install messages. Evaluation
// and rewriting interleave freely; quiescence detection is unchanged.

// TraceEntry records one lazy rewriting step.
type TraceEntry struct {
	Peer dist.PeerID
	Key  adorn.Key
}

// OnlineTrace is the order in which peers performed their rewritings.
type OnlineTrace struct {
	mu      sync.Mutex
	Entries []TraceEntry
}

func (tr *OnlineTrace) add(peer dist.PeerID, key adorn.Key) {
	tr.mu.Lock()
	tr.Entries = append(tr.Entries, TraceEntry{Peer: peer, Key: key})
	tr.mu.Unlock()
}

// Snapshot returns the entries recorded so far.
func (tr *OnlineTrace) Snapshot() []TraceEntry {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEntry(nil), tr.Entries...)
}

// splitAdorned splits an adorned answer-relation name "R#bf" into the base
// relation and adornment. Supplementary and input relations return false:
// only answer-relation activations trigger rewriting.
func splitAdorned(name rel.Name) (rel.Name, adorn.Adornment, bool) {
	s := string(name)
	if strings.HasPrefix(s, "sup.") || strings.HasPrefix(s, "in-") {
		return "", "", false
	}
	i := strings.LastIndex(s, "#")
	if i < 0 {
		return "", "", false
	}
	return rel.Name(s[:i]), adorn.Adornment(s[i+1:]), true
}

// RunOnline evaluates prog for q with lazy per-peer rewriting. It returns
// the same answers as Run (Theorem 1 extends: the installed program is
// identical, only its arrival order differs) plus the rewriting trace.
func RunOnline(prog *ddatalog.Program, q ddatalog.PAtom, budget datalog.Budget, timeout time.Duration) (*Result, *OnlineTrace, error) {
	if err := prog.Validate(); err != nil {
		return nil, nil, err
	}
	s := prog.Store

	// The base program: extensional facts and the query's in-seed only.
	// All rules arrive at runtime through the activation hook.
	base := ddatalog.NewProgram(s)
	base.Facts = append(base.Facts, prog.Facts...)
	for _, id := range prog.Peers() {
		base.AddPeer(id) // rules arrive at runtime; every peer must exist
	}

	// Per-peer rewriters over the original program, exactly as in the
	// static path; the network replaces the static request driver.
	rewriters := make(map[dist.PeerID]*peerRewriter)
	for _, id := range prog.Peers() {
		rewriters[id] = &peerRewriter{
			id:       id,
			place:    PlaceAtData,
			store:    s,
			hasRules: make(map[rel.Name]bool),
			edbArity: make(map[rel.Name]int),
			facts:    make(map[rel.Name][][]term.ID),
			done:     make(map[adorn.Key]bool),
			out:      ddatalog.NewProgram(s), // per-call buffer, drained below
		}
	}
	for _, r := range prog.Rules {
		pr := rewriters[r.Head.Peer]
		pr.rules = append(pr.rules, r)
		pr.hasRules[r.Head.Rel] = true
	}
	for _, f := range prog.Facts {
		pr := rewriters[f.Peer]
		pr.edbArity[f.Rel] = len(f.Args)
		pr.facts[f.Rel] = append(pr.facts[f.Rel], f.Args)
	}

	ad := adorn.Compute(s, adorn.VarSet{}, q.Args)
	qr, ok := rewriters[q.Peer]
	if !ok {
		return nil, nil, errUnknownPeer(q.Peer)
	}
	if !qr.hasRules[q.Rel] {
		// Extensional query: evaluate directly, nothing to rewrite.
		res, _, err := ddatalog.Run(base, q, budget, timeout)
		if res == nil {
			return nil, nil, err
		}
		return &Result{Answers: res.Answers, Store: res.Store, Stats: res.Stats}, &OnlineTrace{}, err
	}
	base.AddFact(ddatalog.PAtom{
		Rel: adorn.InputName(q.Rel, ad), Peer: q.Peer,
		Args: adorn.BoundArgs(ad, q.Args),
	})

	trace := &OnlineTrace{}
	eng, err := ddatalog.NewEngine(base, budget)
	if err != nil {
		return nil, nil, err
	}
	// The hook runs under the engine's store lock (hooks of different
	// peers share the program store and their rewriters' output buffer
	// handling below).
	eng.SetActivationHook(func(peer dist.PeerID, relName rel.Name) []ddatalog.PRule {
		baseRel, adr, ok := splitAdorned(relName)
		if !ok {
			return nil
		}
		pr := rewriters[peer]
		if pr == nil {
			return nil
		}
		key := adorn.Key{Rel: baseRel, Ad: adr}
		if pr.done[key] {
			return nil
		}
		before := len(pr.out.Rules)
		pr.handle(key) // follow-up requests are ignored: activation drives them
		rules := pr.out.Rules[before:]
		if len(rules) > 0 {
			trace.add(peer, key)
		}
		return rules
	})

	queryAtom := ddatalog.PAtom{Rel: adorn.Name(q.Rel, ad), Peer: q.Peer, Args: q.Args}
	res, err := eng.Run(queryAtom, timeout)
	if res == nil {
		return nil, trace, err
	}
	return &Result{Answers: res.Answers, Store: res.Store, Stats: res.Stats, Engine: eng}, trace, err
}

func errUnknownPeer(p dist.PeerID) error {
	return &unknownPeerError{peer: p}
}

type unknownPeerError struct{ peer dist.PeerID }

func (e *unknownPeerError) Error() string {
	return "dqsq: query peer \"" + string(e.peer) + "\" not in program"
}
