package dqsq

import (
	"strings"
	"sync"
	"time"

	"repro/internal/adorn"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/term"
)

// This file implements online dQSQ — the paper's Remark 2: "The dQSQ
// computation, and the generation of results, may start even before the
// rewriting is complete. This property is especially important in the
// context of the Web where the number of sites transitively involved in a
// computation may be too large to explore exhaustively."
//
// Instead of rewriting the whole program up front, the network starts
// with the extensional facts only. The first time an adorned relation
// R#ad is activated at its peer — i.e. the first time a subquery actually
// reaches that peer — the peer rewrites its own rules for that adornment,
// installs the local portions into its running program, and ships the
// delegated portions to their hosts as rule-install messages. Evaluation
// and rewriting interleave freely; quiescence detection is unchanged.

// TraceEntry records one lazy rewriting step.
type TraceEntry struct {
	Peer dist.PeerID
	Key  adorn.Key
}

// OnlineTrace is the order in which peers performed their rewritings.
type OnlineTrace struct {
	mu      sync.Mutex
	Entries []TraceEntry
}

func (tr *OnlineTrace) add(peer dist.PeerID, key adorn.Key) {
	tr.mu.Lock()
	tr.Entries = append(tr.Entries, TraceEntry{Peer: peer, Key: key})
	tr.mu.Unlock()
}

// Snapshot returns the entries recorded so far.
func (tr *OnlineTrace) Snapshot() []TraceEntry {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEntry(nil), tr.Entries...)
}

// splitAdorned splits an adorned answer-relation name "R#bf" into the base
// relation and adornment. Supplementary and input relations return false:
// only answer-relation activations trigger rewriting.
func splitAdorned(name rel.Name) (rel.Name, adorn.Adornment, bool) {
	s := string(name)
	if strings.HasPrefix(s, "sup.") || strings.HasPrefix(s, "in-") {
		return "", "", false
	}
	i := strings.LastIndex(s, "#")
	if i < 0 {
		return "", "", false
	}
	return rel.Name(s[:i]), adorn.Adornment(s[i+1:]), true
}

// OnlineSession is a long-lived online dQSQ evaluation: the per-peer lazy
// rewriters and the distributed engine stay warm between queries, so a
// supervisor can extend the program — new extensional facts (alarms), new
// rules (a re-indexed query) — and re-query, paying only for the frontier
// the extension opens up. This is the paper's Remark 2 machinery turned
// into a service substrate: "the dQSQ computation, and the generation of
// results, may start even before the rewriting is complete" — here it
// also continues after the first answers have been served.
//
// Sessions are not safe for concurrent use; callers serialize Extend and
// Query (internal/serve wraps one mutex per session).
type OnlineSession struct {
	prog      *ddatalog.Program
	eng       *ddatalog.Engine
	trace     *OnlineTrace
	tracer    obs.Tracer // never nil; obs.Nop by default
	rewriters map[dist.PeerID]*peerRewriter
	pending   []ddatalog.PAtom // base-fact appends queued for the next Query
}

// NewOnlineSession prepares a session over prog: the engine starts with
// the extensional facts only; every rule arrives at runtime through the
// lazy-rewriting activation hook. The budget is the session's lifetime
// fact budget — once exhausted, every later Query fails.
func NewOnlineSession(prog *ddatalog.Program, budget datalog.Budget) (*OnlineSession, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := prog.Store

	base := ddatalog.NewProgram(s)
	base.Facts = append(base.Facts, prog.Facts...)
	for _, id := range prog.Peers() {
		base.AddPeer(id) // rules arrive at runtime; every peer must exist
	}

	// Per-peer rewriters over the original program, exactly as in the
	// static path; the network replaces the static request driver.
	rewriters := make(map[dist.PeerID]*peerRewriter)
	for _, id := range prog.Peers() {
		rewriters[id] = &peerRewriter{
			id:       id,
			place:    PlaceAtData,
			store:    s,
			hasRules: make(map[rel.Name]bool),
			edbArity: make(map[rel.Name]int),
			facts:    make(map[rel.Name][][]term.ID),
			done:     make(map[adorn.Key]bool),
			out:      ddatalog.NewProgram(s), // per-call buffer, drained by the hook
		}
	}
	for _, r := range prog.Rules {
		pr := rewriters[r.Head.Peer]
		pr.rules = append(pr.rules, r)
		pr.hasRules[r.Head.Rel] = true
	}
	for _, f := range prog.Facts {
		pr := rewriters[f.Peer]
		pr.edbArity[f.Rel] = len(f.Args)
		pr.facts[f.Rel] = append(pr.facts[f.Rel], f.Args)
	}

	sess := &OnlineSession{prog: prog, rewriters: rewriters, trace: &OnlineTrace{}, tracer: obs.Nop}
	eng, err := ddatalog.NewEngine(base, budget)
	if err != nil {
		return nil, err
	}
	sess.eng = eng
	sess.installHook()
	return sess, nil
}

// installHook (re)installs the lazy-rewriting activation hook on the
// session's engine. It is called once at construction and again after a
// session is restored from a snapshot — the hook is a closure over live
// session state and cannot itself be serialized.
func (sess *OnlineSession) installHook() {
	// The hook runs on peer goroutines under the engine's hook lock
	// (hooks of different peers share the program store and their
	// rewriters' output buffer handling below).
	sess.eng.SetActivationHook(func(peer dist.PeerID, relName rel.Name) []ddatalog.PRule {
		baseRel, adr, ok := splitAdorned(relName)
		if !ok {
			return nil
		}
		pr := sess.rewriters[peer]
		if pr == nil {
			return nil
		}
		key := adorn.Key{Rel: baseRel, Ad: adr}
		if pr.done[key] {
			return nil
		}
		before := len(pr.out.Rules)
		pr.handle(key) // follow-up requests are ignored: activation drives them
		rules := pr.out.Rules[before:]
		if len(rules) > 0 {
			sess.trace.add(peer, key)
			sess.tracer.Counter("dqsq", "dqsq_subqueries_total", 1)
			if sess.tracer.Enabled() {
				sess.tracer.Instant(string(peer), "subquery "+string(key.Rel)+"#"+string(key.Ad))
			}
		}
		return rules
	})
}

// Extend grows the running program: facts are extensional appends
// (delivered to their owners on the next Query), rules join their host
// peer's rewriter and are rewritten lazily when their head relation is
// first activated. A rule whose head relation has already been queried
// under some adornment is not re-rewritten for it — extend with fresh
// (e.g. versioned) head relations instead. Terms must come from the
// session program's store. Not safe concurrently with Query.
func (s *OnlineSession) Extend(facts []ddatalog.PAtom, rules []ddatalog.PRule) error {
	for _, r := range rules {
		pr, ok := s.rewriters[r.Head.Peer]
		if !ok {
			return errUnknownPeer(r.Head.Peer)
		}
		pr.rules = append(pr.rules, r)
		pr.hasRules[r.Head.Rel] = true
		s.prog.Rules = append(s.prog.Rules, r)
	}
	for _, f := range facts {
		pr, ok := s.rewriters[f.Peer]
		if !ok {
			return errUnknownPeer(f.Peer)
		}
		pr.edbArity[f.Rel] = len(f.Args)
		s.pending = append(s.pending, f)
		s.prog.Facts = append(s.prog.Facts, f)
	}
	return nil
}

// Query evaluates the located atom q over the warm session state,
// injecting any facts queued by Extend first. Repeated queries (same or
// different atoms) reuse everything already materialized; Stats are
// cumulative over the session's lifetime.
func (s *OnlineSession) Query(q ddatalog.PAtom, timeout time.Duration) (*Result, error) {
	st := s.prog.Store
	injects := s.pending
	s.pending = nil

	qr, ok := s.rewriters[q.Peer]
	if !ok {
		return nil, errUnknownPeer(q.Peer)
	}
	queryAtom := q
	if qr.hasRules[q.Rel] {
		// Intensional query: seed the in-relation and ask for the adorned
		// answers (re-seeding an already-known in-fact deduplicates away).
		ad := adorn.Compute(st, adorn.VarSet{}, q.Args)
		injects = append(injects, ddatalog.PAtom{
			Rel: adorn.InputName(q.Rel, ad), Peer: q.Peer,
			Args: adorn.BoundArgs(ad, q.Args),
		})
		queryAtom = ddatalog.PAtom{Rel: adorn.Name(q.Rel, ad), Peer: q.Peer, Args: q.Args}
	}
	res, err := s.eng.RunDelta(queryAtom, injects, nil, timeout)
	if res == nil {
		return nil, err
	}
	emitSupStats(s.tracer, s.eng)
	return &Result{Answers: res.Answers, Store: res.Store, Stats: res.Stats, Engine: s.eng}, err
}

// Trace returns the session's lazy-rewriting trace.
func (s *OnlineSession) Trace() *OnlineTrace { return s.trace }

// Engine exposes the warm engine for materialization metrics.
func (s *OnlineSession) Engine() *ddatalog.Engine { return s.eng }

// SetParallelism fixes the worker-pool width of the per-query evaluation
// networks (see ddatalog.Engine.SetParallelism): 1 forces sequential
// evaluation, <= 0 restores the GOMAXPROCS default. Results are identical
// either way — evaluation is confluent. Call between queries only.
func (s *OnlineSession) SetParallelism(n int) { s.eng.SetParallelism(n) }

// Program exposes the session program (base facts plus every extension);
// restored sessions hand it back to the supervisor that owns them.
func (s *OnlineSession) Program() *ddatalog.Program { return s.prog }

// RunOnline evaluates prog for q with lazy per-peer rewriting. It returns
// the same answers as Run (Theorem 1 extends: the installed program is
// identical, only its arrival order differs) plus the rewriting trace.
func RunOnline(prog *ddatalog.Program, q ddatalog.PAtom, budget datalog.Budget, timeout time.Duration) (*Result, *OnlineTrace, error) {
	sess, err := NewOnlineSession(prog, budget)
	if err != nil {
		return nil, nil, err
	}
	res, err := sess.Query(q, timeout)
	if res == nil {
		return nil, sess.trace, err
	}
	return res, sess.trace, err
}

func errUnknownPeer(p dist.PeerID) error {
	return &unknownPeerError{peer: p}
}

type unknownPeerError struct{ peer dist.PeerID }

func (e *unknownPeerError) Error() string {
	return "dqsq: query peer \"" + string(e.peer) + "\" not in program"
}
