package dqsq

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datalog"
	"repro/internal/ddatalog"
)

// TestRemark1PlacementSameAnswers: both placements compute the same
// answers (Remark 1 only redistributes the supplementary relations).
func TestRemark1PlacementSameAnswers(t *testing.T) {
	a := [][2]string{{"1", "2"}, {"2", "3"}}
	b := [][2]string{{"2", "w"}, {"3", "w"}}
	c := [][2]string{{"2", "4"}, {"3", "5"}, {"4", "6"}}

	run := func(place Placement) ([]string, ddatalog.Stats) {
		p := figure3(a, b, c)
		rw, err := RewritePlaced(p, queryFig3(p, "1"), place)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := ddatalog.Run(rw.Program, rw.Query, datalog.Budget{}, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return sortedRows(res.Store, res.Answers), res.Stats
	}

	ansData, stData := run(PlaceAtData)
	ansHead, stHead := run(PlaceAtHead)
	if strings.Join(ansData, ";") != strings.Join(ansHead, ";") {
		t.Fatalf("placements disagree: %v vs %v", ansData, ansHead)
	}
	if len(ansData) == 0 {
		t.Fatal("no answers")
	}
	// Different placement, different communication pattern: the message
	// counts genuinely differ (which one wins depends on the data shape —
	// exactly why Remark 1 calls for a cost model).
	if stData.Net.MessagesSent == stHead.Net.MessagesSent &&
		stData.Replicated == stHead.Replicated {
		t.Fatalf("placements produced identical traffic (%d msgs) — ablation is vacuous",
			stData.Net.MessagesSent)
	}
}

// TestRemark1PlacementHostsDiffer: under PlaceAtHead every supplementary
// relation lives at its rule's peer.
func TestRemark1PlacementHostsDiffer(t *testing.T) {
	p := figure3(nil, nil, nil)
	rw, err := RewritePlaced(p, queryFig3(p, "1"), PlaceAtHead)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rw.Program.Rules {
		name := string(r.Head.Rel)
		if !strings.HasPrefix(name, "sup.") {
			continue
		}
		// sup.<origin peer>.<head rel>... must be hosted at the origin.
		parts := strings.SplitN(name, ".", 3)
		if string(r.Head.Peer) != parts[1] {
			t.Fatalf("sup %s hosted at %s under PlaceAtHead", name, r.Head.Peer)
		}
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatal(err)
	}
}
