package unfold

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
)

// TestRandomNetsCoRelation validates the incremental co-set maintenance
// against the definitional oracle on random safe nets — the example-based
// test widened to arbitrary structure.
func TestRandomNetsCoRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for i := 0; i < 30 && checked < 8; i++ {
		pn := gen.RandomSafe(rng, gen.Params{Peers: 2, Places: 5, Transitions: 4, Alarms: 2})
		if pn == nil {
			continue
		}
		u := Build(pn, Options{MaxDepth: 4, MaxEvents: 400})
		if len(u.Events) == 0 {
			continue
		}
		checked++
		for _, a := range u.Conditions {
			for _, b := range u.Conditions {
				if a == b {
					continue
				}
				want := !slowCausalCond(a, b) && !slowCausalCond(b, a) && !slowConflictCond(u, a, b)
				if got := u.ConcurrentConditions(a, b); got != want {
					t.Fatalf("net %d: co(%s, %s) = %v, definition says %v", i, a.Name, b.Name, got, want)
				}
			}
		}
	}
	if checked < 4 {
		t.Fatalf("only %d random nets checked", checked)
	}
}

// TestRandomNetsHomomorphism validates Definition 3 on random nets: the
// map to the original net preserves labels and preset/postset bijections.
func TestRandomNetsHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 30 && checked < 8; i++ {
		pn := gen.RandomSafe(rng, gen.Params{Peers: 3, Places: 6, Transitions: 5, Alarms: 3})
		if pn == nil {
			continue
		}
		u := Build(pn, Options{MaxDepth: 4, MaxEvents: 400})
		if len(u.Events) == 0 {
			continue
		}
		checked++
		for _, e := range u.Events {
			tr := pn.Net.Transition(e.Trans)
			if tr == nil || e.Alarm != tr.Alarm || e.Peer != tr.Peer {
				t.Fatalf("event %s: labels not preserved", e.Name)
			}
			if len(e.Pre) != len(tr.Pre) || len(e.Post) != len(tr.Post) {
				t.Fatalf("event %s: arity not preserved", e.Name)
			}
			// Preset bijection: each preset place appears exactly once.
			seen := map[petri.NodeID]int{}
			for _, c := range e.Pre {
				seen[c.Place]++
			}
			for _, p := range tr.Pre {
				if seen[p] != 1 {
					t.Fatalf("event %s: preset not bijective at %s", e.Name, p)
				}
			}
		}
		// Conditions have at most one producer, and names are unique.
		names := map[string]bool{}
		for _, c := range u.Conditions {
			if names[c.Name] {
				t.Fatalf("duplicate condition name %s", c.Name)
			}
			names[c.Name] = true
		}
		for _, e := range u.Events {
			if names[e.Name] {
				t.Fatalf("event name %s collides", e.Name)
			}
			names[e.Name] = true
		}
	}
	if checked < 4 {
		t.Fatalf("only %d random nets checked", checked)
	}
}

// TestRandomExecutionsEmbedInUnfolding: every random execution of the net
// corresponds to a configuration of the (sufficiently deep) unfolding,
// with event names matching the token-tracking construction.
func TestRandomExecutionsEmbedInUnfolding(t *testing.T) {
	pn := petri.Example()
	u := Build(pn, Options{MaxDepth: 6, MaxEvents: 20000})
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		exec, _ := pn.RandomExecution(rng, 5)
		// Replay with token identity to reconstruct the event names.
		tokens := map[petri.NodeID]string{}
		for pl := range pn.M0 {
			tokens[pl] = "g(" + Root + "," + string(pl) + ")"
		}
		events := map[*Event]bool{}
		for _, f := range exec {
			tr := pn.Net.Transition(f.Trans)
			name := "f(" + string(tr.ID)
			for _, p := range tr.Pre {
				name += "," + tokens[p]
			}
			name += ")"
			e := u.EventByName(name)
			if e == nil {
				t.Fatalf("seed %d: executed event %s absent from unfolding", seed, name)
			}
			events[e] = true
			for _, p := range tr.Pre {
				delete(tokens, p)
			}
			for _, p := range tr.Post {
				tokens[p] = "g(" + name + "," + string(p) + ")"
			}
		}
		if len(events) > 0 && !u.IsConfiguration(events) {
			t.Fatalf("seed %d: executed events are not a configuration", seed)
		}
	}
}
