package unfold

import (
	"strings"
	"testing"

	"repro/internal/petri"
)

func buildExample(t *testing.T, maxDepth int) *Unfolding {
	t.Helper()
	u := Build(petri.Example(), Options{MaxDepth: maxDepth, MaxEvents: 5000})
	if len(u.Events) == 0 {
		t.Fatal("empty unfolding")
	}
	return u
}

func TestFigure2RootsAndFirstEvents(t *testing.T) {
	u := buildExample(t, 3)

	// Root conditions for the marked places 1, 4, 7.
	roots := map[string]bool{}
	for _, c := range u.Conditions {
		if c.Pre == nil {
			roots[c.Name] = true
		}
	}
	for _, want := range []string{"g(r,1)", "g(r,4)", "g(r,7)"} {
		if !roots[want] {
			t.Fatalf("missing root %s; have %v", want, roots)
		}
	}
	if len(roots) != 3 {
		t.Fatalf("roots = %v", roots)
	}

	// The initially enabled transitions i, ii, v appear as depth-1 events
	// with the canonical Skolem names.
	for _, want := range []string{
		"f(i,g(r,1),g(r,7))",
		"f(ii,g(r,4))",
		"f(v,g(r,7))",
	} {
		if u.EventByName(want) == nil {
			t.Fatalf("missing event %s", want)
		}
	}
}

func TestFigure2Relations(t *testing.T) {
	u := buildExample(t, 3)
	ei := u.EventByName("f(i,g(r,1),g(r,7))")
	eii := u.EventByName("f(ii,g(r,4))")
	ev := u.EventByName("f(v,g(r,7))")
	eiv := u.EventByName("f(iv,g(f(i,g(r,1),g(r,7)),3))")
	eiii := u.EventByName("f(iii,g(f(i,g(r,1),g(r,7)),2))")
	if eiv == nil || eiii == nil {
		t.Fatal("missing depth-2 events for iv/iii")
	}

	// i and v conflict on the shared root condition of place 7.
	if !u.Conflict(ei, ev) {
		t.Fatal("i and v must be in conflict")
	}
	// i and ii are concurrent.
	if !u.Concurrent(ei, eii) {
		t.Fatal("i and ii must be concurrent")
	}
	// i is causally below iv and iii.
	if !u.Causal(ei, eiv) || !u.Causal(ei, eiii) {
		t.Fatal("i must precede iv and iii")
	}
	// Conflict is inherited: v conflicts with iv (descendant of i).
	if !u.Conflict(ev, eiv) {
		t.Fatal("v and iv must be in conflict")
	}
	// iii and iv are concurrent (branches of i's two output places).
	if !u.Concurrent(eiii, eiv) {
		t.Fatal("iii and iv must be concurrent")
	}
}

func TestFigure2ShadedConfiguration(t *testing.T) {
	u := buildExample(t, 3)
	ei := u.EventByName("f(i,g(r,1),g(r,7))")
	eiii := u.EventByName("f(iii,g(f(i,g(r,1),g(r,7)),2))")
	eiv := u.EventByName("f(iv,g(f(i,g(r,1),g(r,7)),3))")
	ev := u.EventByName("f(v,g(r,7))")

	shaded := map[*Event]bool{ei: true, eiii: true, eiv: true}
	if !u.IsConfiguration(shaded) {
		t.Fatal("the shaded node set {i,iii,iv} must be a configuration")
	}
	// Not downward closed without i.
	if u.IsConfiguration(map[*Event]bool{eiii: true, eiv: true}) {
		t.Fatal("configuration without its causes accepted")
	}
	// Not conflict-free with v.
	if u.IsConfiguration(map[*Event]bool{ei: true, ev: true}) {
		t.Fatal("conflicting configuration accepted")
	}

	names := NamesSorted(shaded)
	if len(names) != 3 || !strings.HasPrefix(names[0], "f(i,") {
		t.Fatalf("NamesSorted = %v", names)
	}
}

func TestCyclicNetTruncates(t *testing.T) {
	// The example net loops through v/vi, so deep unfoldings keep growing.
	shallow := Build(petri.Example(), Options{MaxDepth: 2, MaxEvents: 5000})
	deep := Build(petri.Example(), Options{MaxDepth: 6, MaxEvents: 5000})
	if !shallow.Truncated || !deep.Truncated {
		t.Fatal("cyclic net unfolding must report truncation at any depth bound")
	}
	if len(deep.Events) <= len(shallow.Events) {
		t.Fatalf("deeper bound produced fewer events: %d <= %d", len(deep.Events), len(shallow.Events))
	}
}

func TestAcyclicNetComplete(t *testing.T) {
	// a -t1-> b -t2-> c: three conditions, two events, no truncation.
	n := petri.NewNet()
	n.AddPlace("a", "p")
	n.AddPlace("b", "p")
	n.AddPlace("c", "p")
	n.AddTransition("t1", "p", "x", []petri.NodeID{"a"}, []petri.NodeID{"b"})
	n.AddTransition("t2", "p", "y", []petri.NodeID{"b"}, []petri.NodeID{"c"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	u := Build(pn, Options{})
	st := u.Stats()
	if st.Truncated {
		t.Fatal("acyclic unfolding truncated")
	}
	if st.Events != 2 || st.Conditions != 3 {
		t.Fatalf("stats = %+v, want 2 events / 3 conditions", st)
	}
	if u.EventByName("f(t2,g(f(t1,g(r,a)),b))") == nil {
		t.Fatal("missing chained event name")
	}
}

func TestBranchingDuplicatesPlaces(t *testing.T) {
	// Two transitions compete for one token; the unfolding forks.
	n := petri.NewNet()
	n.AddPlace("a", "p")
	n.AddPlace("b", "p")
	n.AddPlace("c", "p")
	n.AddTransition("t1", "p", "x", []petri.NodeID{"a"}, []petri.NodeID{"b"})
	n.AddTransition("t2", "p", "y", []petri.NodeID{"a"}, []petri.NodeID{"c"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	u := Build(pn, Options{})
	if len(u.Events) != 2 {
		t.Fatalf("%d events, want 2", len(u.Events))
	}
	e1 := u.EventByName("f(t1,g(r,a))")
	e2 := u.EventByName("f(t2,g(r,a))")
	if !u.Conflict(e1, e2) {
		t.Fatal("alternatives must conflict")
	}
}

func TestHomomorphismProperties(t *testing.T) {
	// Definition 3: the map to the net preserves peer, alarm and node type,
	// and is a bijection on presets/postsets.
	u := buildExample(t, 4)
	pn := petri.Example()
	for _, e := range u.Events {
		tr := pn.Net.Transition(e.Trans)
		if tr == nil {
			t.Fatalf("event %s maps to unknown transition", e.Name)
		}
		if e.Peer != tr.Peer || e.Alarm != tr.Alarm {
			t.Fatalf("event %s: labels not preserved", e.Name)
		}
		if len(e.Pre) != len(tr.Pre) || len(e.Post) != len(tr.Post) {
			t.Fatalf("event %s: preset/postset sizes not preserved", e.Name)
		}
		seen := map[petri.NodeID]bool{}
		for _, c := range e.Pre {
			seen[c.Place] = true
		}
		for _, p := range tr.Pre {
			if !seen[p] {
				t.Fatalf("event %s: preset not bijective on %s", e.Name, p)
			}
		}
	}
	// Each condition has at most one producer (places in unfoldings have
	// at most one incoming edge).
	for _, c := range u.Conditions {
		if c.Pre != nil && c.Pre.Post[0] != c && c.Pre.Post[len(c.Pre.Post)-1] != c {
			found := false
			for _, p := range c.Pre.Post {
				if p == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("condition %s not in its producer's postset", c.Name)
			}
		}
	}
}

// slow reference implementations of the condition relations, computed from
// first principles, to validate the incremental co-set maintenance.
func slowCausalCond(a, b *Condition) bool {
	if a == b {
		return false
	}
	// BFS from a downward.
	queue := []*Condition{a}
	seen := map[*Condition]bool{a: true}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, e := range c.Post {
			for _, nc := range e.Post {
				if nc == b {
					return true
				}
				if !seen[nc] {
					seen[nc] = true
					queue = append(queue, nc)
				}
			}
		}
	}
	return false
}

func hist(c *Condition) map[*Event]bool {
	out := make(map[*Event]bool)
	if c.Pre != nil {
		causes(c.Pre, out)
	}
	return out
}

func slowConflictCond(u *Unfolding, a, b *Condition) bool {
	ha, hb := hist(a), hist(b)
	for _, c := range u.Conditions {
		var ea, eb *Event
		for _, e := range c.Post {
			if ha[e] {
				ea = e
			}
			if hb[e] {
				eb = e
			}
		}
		if ea != nil && eb != nil && ea != eb {
			return true
		}
	}
	return false
}

func TestCoRelationMatchesDefinition(t *testing.T) {
	u := buildExample(t, 3)
	for _, a := range u.Conditions {
		for _, b := range u.Conditions {
			if a == b {
				if u.ConcurrentConditions(a, b) {
					t.Fatalf("co reflexive at %s", a.Name)
				}
				continue
			}
			want := !slowCausalCond(a, b) && !slowCausalCond(b, a) && !slowConflictCond(u, a, b)
			if got := u.ConcurrentConditions(a, b); got != want {
				t.Fatalf("co(%s,%s) = %v, definition says %v", a.Name, b.Name, got, want)
			}
		}
	}
}

func TestPaddedExampleUnfolds(t *testing.T) {
	padded, err := petri.Pad2(petri.Example())
	if err != nil {
		t.Fatal(err)
	}
	u := Build(padded, Options{MaxDepth: 3, MaxEvents: 5000})
	// The padded form renames nothing: transition i keeps its 2-parent
	// Skolem name, and ii gains its pad place as second parent.
	if u.EventByName("f(i,g(r,1),g(r,7))") == nil {
		t.Fatal("missing padded i event")
	}
	if u.EventByName("f(ii,g(r,4),g(r,pad.ii))") == nil {
		names := []string{}
		for _, e := range u.Events {
			names = append(names, e.Name)
		}
		t.Fatalf("missing padded ii event; have %v", names)
	}
}

func TestMaxEventsBound(t *testing.T) {
	u := Build(petri.Example(), Options{MaxDepth: 50, MaxEvents: 10})
	if !u.Truncated {
		t.Fatal("event bound not reported")
	}
	if len(u.Events) > 10 {
		t.Fatalf("%d events exceed bound", len(u.Events))
	}
}

func BenchmarkUnfoldExampleDepth5(b *testing.B) {
	pn := petri.Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := Build(pn, Options{MaxDepth: 5, MaxEvents: 100000})
		if len(u.Events) == 0 {
			b.Fatal("empty")
		}
	}
}
