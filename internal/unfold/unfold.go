// Package unfold implements branching processes and unfoldings of safe
// Petri nets (Definitions 3-4, Figure 2), with the incremental
// concurrency-relation algorithm of the net-unfolding literature the paper
// builds on ([13], [24]).
//
// Nodes carry canonical Skolem names that coincide, by construction, with
// the terms the Section 4.1 Datalog program derives: a root condition for
// place c is g(r,c); an event firing transition c from parent conditions
// u, v is f(c,u,v) (parents in the transition's declared preset order);
// a condition for place c' produced by event x is g(x,c'). Theorem 2's
// bijection between the two representations is therefore literal name
// equality, which the test suite checks.
package unfold

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/petri"
)

// Root is the virtual parent of root conditions (the paper's node id r).
const Root = "r"

// Event is a transition instance of the unfolding.
type Event struct {
	Index int
	Trans petri.NodeID // ρ(event)
	Peer  petri.Peer
	Alarm petri.Alarm
	Name  string // canonical Skolem name f(trans, parents...)
	Pre   []*Condition
	Post  []*Condition
	// Depth is the event nesting level (root events have depth 1).
	Depth int
	// TermDepth is the nesting depth of Name seen as a term, aligning
	// unfolding bounds with the Datalog MaxTermDepth budget.
	TermDepth int
}

// Condition is a place instance of the unfolding.
type Condition struct {
	Index     int
	Place     petri.NodeID // ρ(condition)
	Peer      petri.Peer
	Name      string // canonical Skolem name g(parent, place)
	Pre       *Event // producing event; nil for roots
	Post      []*Event
	TermDepth int
}

// Options bounds construction: unfoldings of cyclic nets are infinite.
type Options struct {
	MaxDepth  int // maximum event depth; 0 = unlimited
	MaxEvents int // maximum number of events; 0 = 100000
}

// Unfolding is a branching process of a Petri net, maximal up to the
// options' bounds.
type Unfolding struct {
	Net        *petri.PetriNet
	Events     []*Event
	Conditions []*Condition
	// Truncated reports that a bound stopped construction; the result is
	// then a proper prefix of the full unfolding.
	Truncated bool

	co      []map[int]bool // condition index -> concurrent condition indexes
	byName  map[string]*Event
	condsOf map[petri.NodeID][]*Condition // place -> instances
}

// Build constructs the bounded unfolding of pn.
func Build(pn *petri.PetriNet, opt Options) *Unfolding {
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 100000
	}
	u := &Unfolding{
		Net:     pn,
		byName:  make(map[string]*Event),
		condsOf: make(map[petri.NodeID][]*Condition),
	}

	// Roots: one condition per initially marked place, pairwise concurrent.
	for _, pl := range pn.Net.Places() {
		if pn.M0[pl] {
			u.addCondition(pl, nil)
		}
	}
	for i := range u.Conditions {
		for j := range u.Conditions {
			if i != j {
				u.co[i][j] = true
			}
		}
	}

	// Saturate: repeatedly add every possible extension. A simple
	// round-based saturation is sufficient (and deterministic); each round
	// scans all transitions against current condition sets.
	for {
		added := false
		for _, tid := range pn.Net.Transitions() {
			t := pn.Net.Transition(tid)
			if u.extend(t, opt) {
				added = true
			}
			if len(u.Events) >= opt.MaxEvents {
				u.Truncated = true
				return u
			}
		}
		if !added {
			return u
		}
	}
}

func (u *Unfolding) addCondition(place petri.NodeID, pre *Event) *Condition {
	name := fmt.Sprintf("g(%s,%s)", Root, place)
	depth := 1
	if pre != nil {
		name = fmt.Sprintf("g(%s,%s)", pre.Name, place)
		depth = pre.TermDepth + 1
	}
	c := &Condition{
		Index:     len(u.Conditions),
		Place:     place,
		Peer:      u.Net.Net.Place(place).Peer,
		Name:      name,
		Pre:       pre,
		TermDepth: depth,
	}
	u.Conditions = append(u.Conditions, c)
	u.co = append(u.co, make(map[int]bool))
	u.condsOf[place] = append(u.condsOf[place], c)
	return c
}

// extend adds every currently possible instance of transition t; reports
// whether anything was added.
func (u *Unfolding) extend(t *petri.Transition, opt Options) bool {
	preset := make([]*Condition, len(t.Pre))
	added := false
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(t.Pre) {
			if u.addEvent(t, preset, opt) {
				added = true
			}
			return len(u.Events) < opt.MaxEvents
		}
		for _, c := range u.condsOf[t.Pre[i]] {
			ok := true
			for j := 0; j < i; j++ {
				if !u.co[preset[j].Index][c.Index] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			preset[i] = c
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return added
}

// addEvent materializes the event t fired from preset, unless it already
// exists or exceeds the depth bound. Reports whether it was added.
func (u *Unfolding) addEvent(t *petri.Transition, preset []*Condition, opt Options) bool {
	parts := make([]string, 0, len(preset)+1)
	parts = append(parts, string(t.ID))
	depth, termDepth := 0, 0
	for _, c := range preset {
		parts = append(parts, c.Name)
		d := 0
		if c.Pre != nil {
			d = c.Pre.Depth
		}
		if d+1 > depth {
			depth = d + 1
		}
		if c.TermDepth+1 > termDepth {
			termDepth = c.TermDepth + 1
		}
	}
	name := "f(" + strings.Join(parts, ",") + ")"
	if _, ok := u.byName[name]; ok {
		return false
	}
	if opt.MaxDepth > 0 && depth > opt.MaxDepth {
		u.Truncated = true
		return false
	}
	e := &Event{
		Index:     len(u.Events),
		Trans:     t.ID,
		Peer:      t.Peer,
		Alarm:     t.Alarm,
		Name:      name,
		Pre:       append([]*Condition(nil), preset...),
		Depth:     depth,
		TermDepth: termDepth,
	}
	u.Events = append(u.Events, e)
	u.byName[name] = e
	for _, c := range preset {
		c.Post = append(c.Post, e)
	}

	// Concurrency maintenance: the common co-set of the preset.
	common := make(map[int]bool)
	if len(preset) > 0 {
		for x := range u.co[preset[0].Index] {
			ok := true
			for _, c := range preset[1:] {
				if !u.co[c.Index][x] {
					ok = false
					break
				}
			}
			if ok {
				common[x] = true
			}
		}
	}

	for _, pl := range t.Post {
		c := u.addCondition(pl, e)
		e.Post = append(e.Post, c)
	}
	for _, c := range e.Post {
		for x := range common {
			u.co[c.Index][x] = true
			u.co[x][c.Index] = true
		}
		for _, sib := range e.Post {
			if sib != c {
				u.co[c.Index][sib.Index] = true
			}
		}
	}
	return true
}

// EventByName returns the event with the given canonical name, or nil.
func (u *Unfolding) EventByName(name string) *Event { return u.byName[name] }

// ConcurrentConditions reports whether two conditions are concurrent.
func (u *Unfolding) ConcurrentConditions(a, b *Condition) bool {
	return u.co[a.Index][b.Index]
}

// causes returns the set of events strictly below e, plus e itself.
func causes(e *Event, out map[*Event]bool) {
	if out[e] {
		return
	}
	out[e] = true
	for _, c := range e.Pre {
		if c.Pre != nil {
			causes(c.Pre, out)
		}
	}
}

// LocalConfig returns [e]: e and all its causal ancestors.
func (u *Unfolding) LocalConfig(e *Event) map[*Event]bool {
	out := make(map[*Event]bool)
	causes(e, out)
	return out
}

// Causal reports a ⪯ b for events (Definition 4; reflexive).
func (u *Unfolding) Causal(a, b *Event) bool {
	return u.LocalConfig(b)[a]
}

// Conflict reports a # b: two distinct events in their causal pasts
// consume a common condition (Definition 4).
func (u *Unfolding) Conflict(a, b *Event) bool {
	ca, cb := u.LocalConfig(a), u.LocalConfig(b)
	// For every condition, collect its consumers inside each local config.
	consumerIn := func(cfg map[*Event]bool, c *Condition) *Event {
		for _, ev := range c.Post {
			if cfg[ev] {
				return ev
			}
		}
		return nil
	}
	for _, c := range u.Conditions {
		ea := consumerIn(ca, c)
		eb := consumerIn(cb, c)
		if ea != nil && eb != nil && ea != eb {
			return true
		}
	}
	return false
}

// Concurrent reports a ‖ b for events: neither causal nor in conflict.
func (u *Unfolding) Concurrent(a, b *Event) bool {
	if a == b {
		return false
	}
	return !u.Causal(a, b) && !u.Causal(b, a) && !u.Conflict(a, b)
}

// IsConfiguration reports whether the event set is downward closed and
// conflict-free (the two configuration conditions of Definition 4).
func (u *Unfolding) IsConfiguration(events map[*Event]bool) bool {
	for e := range events {
		for _, c := range e.Pre {
			if c.Pre != nil && !events[c.Pre] {
				return false
			}
		}
	}
	evs := make([]*Event, 0, len(events))
	for e := range events {
		evs = append(evs, e)
	}
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			if u.Conflict(evs[i], evs[j]) {
				return false
			}
		}
	}
	return true
}

// NamesSorted returns the sorted canonical names of a set of events — the
// canonical form of a configuration for comparisons.
func NamesSorted(events map[*Event]bool) []string {
	out := make([]string, 0, len(events))
	for e := range events {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes an unfolding's size.
type Stats struct {
	Events     int
	Conditions int
	Truncated  bool
}

// Stats returns size statistics.
func (u *Unfolding) Stats() Stats {
	return Stats{Events: len(u.Events), Conditions: len(u.Conditions), Truncated: u.Truncated}
}
