package core

import (
	"testing"
	"time"

	"repro/internal/alarm"
)

// TestIncrementalEnginesAgree: for every engine, appending the quickstart
// alarms one at a time ends at the same diagnosis set as a batch run.
func TestIncrementalEnginesAgree(t *testing.T) {
	seq, err := ParseAlarms("b@p1 a@p2 c@p1")
	if err != nil {
		t.Fatal(err)
	}
	sys := Example()
	batch, err := sys.Diagnose(seq, Direct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{Direct, Product, Naive, DQSQ} {
		inc, err := sys.NewIncremental(engine, Options{Timeout: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		var last *Report
		for _, o := range seq {
			if last, err = inc.Append([]alarm.Obs{o}, 0); err != nil {
				t.Fatalf("%v: %v", engine, err)
			}
		}
		if !last.Diagnoses.Equal(batch.Diagnoses) {
			t.Fatalf("%v incremental %v != batch %v", engine, last.Diagnoses.Keys(), batch.Diagnoses.Keys())
		}
		if got := inc.Seq(); len(got) != len(seq) {
			t.Fatalf("%v: Seq() = %v", engine, got)
		}
		if inc.Report() != last {
			t.Fatalf("%v: Report() is not the last report", engine)
		}
	}
}
