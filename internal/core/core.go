// Package core is the library's front door: it ties the Petri-net system
// model, the alarm sequences and the four diagnosis engines together
// behind a small API, and exposes the paper's Datalog machinery for
// callers that want to work at the program level.
//
// A typical session:
//
//	sys, err := core.LoadNet(netText)
//	seq, err := core.ParseAlarms("b@p1 a@p2 c@p1")
//	rep, err := sys.Diagnose(seq, core.DQSQ, core.Options{})
//	for _, cfg := range rep.Diagnoses { ... }
//
// See the examples/ directory for complete programs.
package core

import (
	"fmt"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/ddatalog"
	"repro/internal/diagnosis"
	"repro/internal/parser"
	"repro/internal/petri"
	"repro/internal/unfold"
)

// Engine identifies a diagnosis strategy.
type Engine = diagnosis.Engine

// The available engines.
const (
	// Direct searches net interleavings explicitly (ground truth).
	Direct = diagnosis.EngineDirect
	// Product is the dedicated algorithm of the paper's reference [8].
	Product = diagnosis.EngineProduct
	// Naive evaluates the Section 4 dDatalog program with the naive
	// distributed evaluation of Section 3.2.
	Naive = diagnosis.EngineNaive
	// DQSQ evaluates it with distributed Query-Sub-Query — the paper's
	// contribution.
	DQSQ = diagnosis.EngineDQSQ
)

// Options re-exports the diagnosis run options.
type Options = diagnosis.Options

// Report re-exports the diagnosis report.
type Report = diagnosis.Report

// Budget re-exports evaluation budgets.
type Budget = datalog.Budget

// System is a distributed discrete event system: a safe Petri net whose
// places and transitions are assigned to peers.
type System struct {
	PN *petri.PetriNet
}

// NewSystem wraps an already-built net, checking its safety up to
// maxStates reachable markings (0 means 100000).
func NewSystem(pn *petri.PetriNet, maxStates int) (*System, error) {
	if maxStates == 0 {
		maxStates = 100000
	}
	if _, _, err := pn.CheckSafe(maxStates); err != nil {
		return nil, fmt.Errorf("core: net is not safe: %w", err)
	}
	return &System{PN: pn}, nil
}

// LoadNet parses the textual net format (see parser.Net) and validates
// safety.
func LoadNet(text string) (*System, error) {
	pn, err := parser.Net(text)
	if err != nil {
		return nil, err
	}
	return NewSystem(pn, 0)
}

// Example returns the paper's running example (Figure 1).
func Example() *System {
	return &System{PN: petri.Example()}
}

// ParseAlarms parses "b@p1 a@p2 c@p1".
func ParseAlarms(text string) (alarm.Seq, error) {
	return parser.Alarms(text)
}

// Diagnose computes the diagnosis set of seq with the chosen engine.
func (s *System) Diagnose(seq alarm.Seq, engine Engine, opt Options) (*Report, error) {
	return diagnosis.Run(s.PN, seq, engine, opt)
}

// DiagnosePattern computes the Section 4.4 pattern diagnoses.
func (s *System) DiagnosePattern(p *alarm.Pattern, opt Options) (diagnosis.Diagnoses, error) {
	return diagnosis.DiagnosePattern(s.PN, p.Compile(), opt)
}

// Unfold builds a bounded prefix of the system's unfolding.
func (s *System) Unfold(maxDepth, maxEvents int) *unfold.Unfolding {
	return unfold.Build(s.PN, unfold.Options{MaxDepth: maxDepth, MaxEvents: maxEvents})
}

// UnfoldingProgram returns Prog(N, M) — the Section 4.1 dDatalog program
// whose minimal model is the system's unfolding (Theorem 2). The system's
// net is padded to 2-parent form first.
func (s *System) UnfoldingProgram() (*ddatalog.Program, error) {
	padded, err := petri.Pad2(s.PN)
	if err != nil {
		return nil, err
	}
	return diagnosis.BuildUnfoldingProgram(padded)
}

// DiagnosisProgram returns P_A(N, M, A) — the full Section 4.2 program —
// and the supervisor query atom.
func (s *System) DiagnosisProgram(seq alarm.Seq) (*ddatalog.Program, ddatalog.PAtom, error) {
	padded, err := petri.Pad2(s.PN)
	if err != nil {
		return nil, ddatalog.PAtom{}, err
	}
	return diagnosis.BuildDiagnosisProgram(padded, seq)
}

// Peers lists the system's peers.
func (s *System) Peers() []petri.Peer {
	return s.PN.Net.Peers()
}
