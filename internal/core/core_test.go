package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/parser"
)

func TestLoadNetAndDiagnose(t *testing.T) {
	sys, err := LoadNet(parser.FormatNet(Example().PN))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ParseAlarms("b@p1 a@p2 c@p1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Diagnose(seq, DQSQ, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != 2 {
		t.Fatalf("diagnoses = %v", rep.Diagnoses.Keys())
	}
}

func TestEnginesConsistentThroughFacade(t *testing.T) {
	sys := Example()
	seq, _ := ParseAlarms("b@p1 a@p2 c@p1")
	want, err := sys.Diagnose(seq, Direct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{Product, Naive, DQSQ} {
		rep, err := sys.Diagnose(seq, e, Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Diagnoses.Equal(want.Diagnoses) {
			t.Fatalf("%v differs", e)
		}
	}
}

func TestUnsafeNetRejected(t *testing.T) {
	_, err := LoadNet(`
		place a p
		place b p
		place c p
		trans t1 p x : a -> c
		trans t2 p y : b -> c
		init a b
	`)
	if err == nil || !strings.Contains(err.Error(), "safe") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnfoldFacade(t *testing.T) {
	u := Example().Unfold(3, 1000)
	if len(u.Events) == 0 {
		t.Fatal("empty unfolding")
	}
}

func TestProgramsFacade(t *testing.T) {
	sys := Example()
	up, err := sys.UnfoldingProgram()
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Rules) == 0 {
		t.Fatal("empty unfolding program")
	}
	seq, _ := ParseAlarms("b@p1")
	dp, q, err := sys.DiagnosisProgram(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Rules) <= len(up.Rules) {
		t.Fatal("diagnosis program no larger than unfolding program")
	}
	if q.Rel != "q" {
		t.Fatalf("query = %v", q.Rel)
	}
	if len(sys.Peers()) != 2 {
		t.Fatalf("peers = %v", sys.Peers())
	}
}

func TestPatternFacade(t *testing.T) {
	sys := Example()
	pat := alarm.Concat(alarm.Sym("a", "p2"), alarm.Sym("b", "p2"))
	d, err := sys.DiagnosePattern(pat, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("pattern diagnoses = %v", d.Keys())
	}
}
