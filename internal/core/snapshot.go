package core

import (
	"fmt"
	"time"

	"repro/internal/datalog"
	"repro/internal/diagnosis"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snapnames"
)

// Incremental handles checkpoint to a snapshot file and restore from
// one. Two forms exist:
//
//   - Full form (healthy DQSQ handles): the warm online-dQSQ state —
//     term store, program, rewriters, engine, diagnoser — is serialized
//     section by section. Restore costs O(snapshot size) and the handle
//     continues exactly where it stopped: identical diagnoses, derived
//     counts and message counts on every later append.
//
//   - Meta form (re-evaluating engines, or a poisoned DQSQ handle): only
//     the observed sequence and the last report are kept. Re-evaluating
//     engines lose nothing — they recompute from the sequence on each
//     append anyway. A poisoned DQSQ handle restores still poisoned: its
//     warm state was not trustworthy when it died, so the checkpoint
//     never pretends otherwise.
//
// The net itself travels as text (parser.FormatNet) inside the meta
// section; parsing and padding are deterministic, so the restored
// structures match the snapshot exactly.

// snapshotConsumer tags core.Incremental checkpoints so other snapshot
// consumers (peerd member checkpoints, …) are rejected early.
const snapshotConsumer = "core.incremental"

// EncodeSnapshot writes the handle into f.
func (inc *Incremental) EncodeSnapshot(f *snapshot.File) error {
	full := inc.online != nil && inc.online.Poisoned() == nil
	w := f.Section(snapnames.Meta)
	w.String(snapshotConsumer)
	w.Uvarint(uint64(inc.engine))
	w.String(parser.FormatNet(inc.sys.PN))
	// Options, minus the tracer (runtime-only; re-attach with SetTracer).
	w.Uvarint(uint64(inc.opt.Budget.MaxFacts))
	w.Uvarint(uint64(inc.opt.Budget.MaxIters))
	w.Uvarint(uint64(inc.opt.Budget.MaxTermDepth))
	w.Int(int64(inc.opt.Timeout))
	w.Uvarint(uint64(inc.opt.MaxEvents))
	w.Uvarint(uint64(inc.opt.Direct.MaxSilent))
	w.Uvarint(uint64(inc.opt.Direct.MaxAlarms))
	w.Bool(full)
	if full {
		return inc.online.EncodeSnapshot(f)
	}
	rw := f.Section(snapnames.Report)
	var poison string
	if inc.online != nil {
		poison = inc.online.Poisoned().Error()
	} else if inc.broken != nil {
		poison = inc.broken.Error()
	}
	rw.String(poison)
	diagnosis.EncodeSeqSnapshot(rw, inc.Seq())
	diagnosis.EncodeReportSnapshot(rw, inc.Report())
	return nil
}

// DecodeIncremental restores a handle from a snapshot. The net is
// re-parsed and safety-checked from the embedded text; full-form
// snapshots then rebuild the warm dQSQ session, meta-form snapshots
// re-seat the sequence and last report.
func DecodeIncremental(o *snapshot.OpenFile) (*Incremental, error) {
	r, err := o.Section(snapnames.Meta)
	if err != nil {
		return nil, err
	}
	if c := r.String(); r.Err() == nil && c != snapshotConsumer {
		return nil, fmt.Errorf("%w: snapshot holds %q, not a %s checkpoint", snapshot.ErrCorrupt, c, snapshotConsumer)
	}
	eng := r.Uvarint()
	if r.Err() == nil && eng > uint64(diagnosis.EngineDQSQ) {
		r.Failf("unknown engine %d", eng)
	}
	netText := r.String()
	opt := Options{Budget: datalog.Budget{
		MaxFacts:     int(r.Uvarint()),
		MaxIters:     int(r.Uvarint()),
		MaxTermDepth: int(r.Uvarint()),
	}}
	opt.Timeout = time.Duration(r.Int())
	opt.MaxEvents = int(r.Uvarint())
	opt.Direct.MaxSilent = int(r.Uvarint())
	opt.Direct.MaxAlarms = int(r.Uvarint())
	full := r.Bool()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	sys, err := LoadNet(netText)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded net: %v", snapshot.ErrCorrupt, err)
	}
	inc := &Incremental{sys: sys, engine: Engine(eng), opt: opt}
	if full {
		if inc.engine != DQSQ {
			return nil, fmt.Errorf("%w: full-form snapshot for non-DQSQ engine %v", snapshot.ErrCorrupt, inc.engine)
		}
		d, err := diagnosis.DecodeOnlineDiagnoserSnapshot(o, sys.PN)
		if err != nil {
			return nil, err
		}
		inc.online = d
		return inc, nil
	}
	rr, err := o.Section(snapnames.Report)
	if err != nil {
		return nil, err
	}
	poison := rr.String()
	inc.seq = diagnosis.DecodeSeqSnapshot(rr)
	inc.last = diagnosis.DecodeReportSnapshot(rr)
	if err := rr.Finish(); err != nil {
		return nil, err
	}
	if poison != "" {
		inc.broken = fmt.Errorf("%w: %s (restored from checkpoint)", ErrPoisoned, poison)
	}
	return inc, nil
}

// SetTracer re-attaches an observer to a restored handle (tracers are
// runtime state and never serialized). Call before the first Append.
func (inc *Incremental) SetTracer(t obs.Tracer) {
	inc.opt.Tracer = t
	if inc.online != nil {
		inc.online.SetTracer(t)
	}
}

// SaveIncremental checkpoints inc to path (atomically: temp + fsync +
// rename) and reports the snapshot size in bytes.
func SaveIncremental(path string, inc *Incremental) (int, error) {
	f := snapshot.New()
	if err := inc.EncodeSnapshot(f); err != nil {
		return 0, err
	}
	return snapshot.WriteFile(path, f)
}

// LoadIncremental restores a handle checkpointed by SaveIncremental.
func LoadIncremental(path string) (*Incremental, error) {
	o, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeIncremental(o)
}
