package core

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/datalog"
	"repro/internal/snapshot"
)

func saveLoad(t *testing.T, inc *Incremental) *Incremental {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.dsnp")
	if _, err := SaveIncremental(path, inc); err != nil {
		t.Fatalf("SaveIncremental: %v", err)
	}
	restored, err := LoadIncremental(path)
	if err != nil {
		t.Fatalf("LoadIncremental: %v", err)
	}
	return restored
}

// TestIncrementalSnapshotAllEngines: for every engine, checkpointing
// after two appends and restoring yields the same final diagnosis as the
// uninterrupted handle; for DQSQ the derived/message counters must match
// exactly too (the warm session survived the round trip).
func TestIncrementalSnapshotAllEngines(t *testing.T) {
	seq, err := ParseAlarms("b@p1 a@p2 c@p1")
	if err != nil {
		t.Fatal(err)
	}
	sys := Example()
	for _, engine := range []Engine{Direct, Product, Naive, DQSQ} {
		ref, err := sys.NewIncremental(engine, Options{Timeout: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		cut, err := sys.NewIncremental(engine, Options{Timeout: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		for _, o := range seq[:2] {
			if _, err := ref.Append([]alarm.Obs{o}, 0); err != nil {
				t.Fatalf("%v: %v", engine, err)
			}
			if _, err := cut.Append([]alarm.Obs{o}, 0); err != nil {
				t.Fatalf("%v: %v", engine, err)
			}
		}
		restored := saveLoad(t, cut)
		if restored.Engine() != engine {
			t.Fatalf("%v: restored engine = %v", engine, restored.Engine())
		}
		if got, want := restored.Seq(), ref.Seq(); len(got) != len(want) {
			t.Fatalf("%v: restored Seq %v, want %v", engine, got, want)
		}
		if !restored.Report().Diagnoses.Equal(ref.Report().Diagnoses) {
			t.Fatalf("%v: restored last report differs", engine)
		}
		want, err := ref.Append(seq[2:], 0)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		got, err := restored.Append(seq[2:], 0)
		if err != nil {
			t.Fatalf("%v restored append: %v", engine, err)
		}
		if !got.Diagnoses.Equal(want.Diagnoses) {
			t.Fatalf("%v: %v != %v after restore", engine, got.Diagnoses.Keys(), want.Diagnoses.Keys())
		}
		if engine == DQSQ && (got.Derived != want.Derived || got.Messages != want.Messages) {
			t.Fatalf("DQSQ restored counters %d/%d != %d/%d",
				got.Derived, got.Messages, want.Derived, want.Messages)
		}
	}
}

// TestIncrementalSnapshotPoisoned: a poisoned DQSQ handle checkpoints in
// meta form and restores still poisoned — its last good report remains
// readable, but appends keep failing with ErrPoisoned.
func TestIncrementalSnapshotPoisoned(t *testing.T) {
	sys := Example()
	inc, err := sys.NewIncremental(DQSQ, Options{Budget: datalog.Budget{MaxFacts: 8}})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ParseAlarms("b@p1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(obs, 0); err == nil {
		t.Fatal("expected budget failure")
	}
	restored := saveLoad(t, inc)
	if _, err := restored.Append(obs, 0); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("restored poisoned handle Append err = %v, want ErrPoisoned", err)
	}
}

// TestIncrementalSnapshotRejectsForeign: a snapshot from another consumer
// (here: a bare file with a mislabeled meta section) must be refused.
func TestIncrementalSnapshotRejectsForeign(t *testing.T) {
	f := snapshot.New()
	w := f.Section("meta")
	w.String("somebody.else")
	o, err := snapshot.Open(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeIncremental(o); err == nil {
		t.Fatal("DecodeIncremental accepted a foreign snapshot")
	}
}
