package core

import (
	"time"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
)

// ErrPoisoned wraps every Append on a DQSQ handle after an evaluation
// failure (e.g. a timeout): the warm engine state is ambiguous, so the
// handle refuses to serve further answers. See diagnosis.ErrPoisoned.
var ErrPoisoned = diagnosis.ErrPoisoned

// Incremental is a long-lived diagnosis handle: alarms are appended as
// the supervisor observes them, and after every append the handle holds
// the diagnosis of the whole sequence so far.
//
// For the DQSQ engine the handle is genuinely incremental: it keeps a
// warm online dQSQ session (the paper's Remark 2 machinery), so append
// k+1 extends the already-materialized unfolding prefix instead of
// re-running from scratch. The other engines re-evaluate the accumulated
// sequence on each append, but reuse the parsed, safety-checked net and
// keep the previous report for delta inspection.
//
// An Incremental is not safe for concurrent use; callers serialize
// access (internal/serve wraps one mutex per session).
type Incremental struct {
	sys    *System
	engine Engine
	opt    Options
	online *diagnosis.OnlineDiagnoser // DQSQ only
	seq    alarm.Seq
	last   *Report
	broken error // poisoned-at-checkpoint marker on restored DQSQ handles
}

// NewIncremental opens an incremental diagnosis handle on the system.
// opt.Budget bounds the session's lifetime for the DQSQ engine (each
// append shares one warm evaluation) and each re-evaluation for the
// other engines.
func (s *System) NewIncremental(engine Engine, opt Options) (*Incremental, error) {
	inc := &Incremental{sys: s, engine: engine, opt: opt}
	if engine == DQSQ {
		d, err := diagnosis.NewOnlineDiagnoser(s.PN, opt.Budget)
		if err != nil {
			return nil, err
		}
		// The other engines pick opt.Tracer up per-Diagnose; the warm
		// session needs it installed once, up front.
		d.SetTracer(opt.Tracer)
		inc.online = d
	}
	return inc, nil
}

// Engine returns the handle's engine.
func (inc *Incremental) Engine() Engine { return inc.engine }

// System returns the system the handle diagnoses (restored handles carry
// the net re-parsed from the snapshot's embedded text).
func (inc *Incremental) System() *System { return inc.sys }

// Seq returns the alarms appended so far.
func (inc *Incremental) Seq() alarm.Seq {
	if inc.online != nil {
		return inc.online.Seq()
	}
	return append(alarm.Seq(nil), inc.seq...)
}

// Report returns the report of the last Append (nil before the first).
func (inc *Incremental) Report() *Report {
	if inc.online != nil {
		return inc.online.Report()
	}
	return inc.last
}

// Append extends the observed sequence and returns the diagnosis of the
// full sequence so far. A zero timeout falls back to the handle's
// Options.Timeout.
func (inc *Incremental) Append(obs []alarm.Obs, timeout time.Duration) (*Report, error) {
	if inc.broken != nil {
		return nil, inc.broken
	}
	if timeout <= 0 {
		timeout = inc.opt.Timeout
	}
	if inc.online != nil {
		return inc.online.Append(obs, timeout)
	}
	seq := append(append(alarm.Seq(nil), inc.seq...), obs...)
	opt := inc.opt
	opt.Timeout = timeout
	rep, err := inc.sys.Diagnose(seq, inc.engine, opt)
	if err != nil {
		return nil, err
	}
	inc.seq = seq
	inc.last = rep
	return rep, nil
}
