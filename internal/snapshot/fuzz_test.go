package snapshot

import (
	"bytes"
	"testing"
)

// seedCorpus: well-formed files of varying shape plus corrupt prefixes,
// so the smoke -fuzztime run exercises every Open path.
func seedCorpus(f *testing.F) {
	empty := New()
	f.Add(empty.Bytes())

	one := New()
	w := one.Section("meta")
	w.Uvarint(7)
	w.Int(-3)
	w.String("engine")
	w.Bool(true)
	f.Add(one.Bytes())

	multi := New()
	multi.Section("term.store").String("cells")
	multi.Section("engine").Bytes([]byte{1, 2, 3, 4})
	multi.Section("session").Uvarint(99)
	f.Add(multi.Bytes())

	f.Add([]byte{})
	f.Add([]byte("DSNP"))
	f.Add([]byte("DSNQ\x01\x00\x00"))
	f.Add(append([]byte("DSNP"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x02))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
}

// FuzzOpen: Open is total — arbitrary bytes either parse into a CRC-valid
// file or return an error; they never panic and never over-allocate. A
// file that opens must round-trip through re-encoding.
func FuzzOpen(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		o, err := Open(b)
		if err != nil {
			return
		}
		// Rebuild a file with the same sections: it must open again with
		// identical content.
		re := New()
		for _, name := range o.Sections() {
			r, err := o.Section(name)
			if err != nil {
				t.Fatalf("listed section %q missing: %v", name, err)
			}
			re.Section(name).b = append([]byte(nil), r.b...)
		}
		o2, err := Open(re.Bytes())
		if err != nil {
			t.Fatalf("re-encoded file failed to open: %v", err)
		}
		for _, name := range o.Sections() {
			r1, _ := o.Section(name)
			r2, _ := o2.Section(name)
			if !bytes.Equal(r1.b, r2.b) {
				t.Fatalf("section %q changed across re-encode", name)
			}
		}
	})
}

// FuzzReader: the primitive readers are total over one fuzzed section
// body driven by a fuzzed opcode string.
func FuzzReader(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte("usbi"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, []byte("uuuuu"))
	f.Add([]byte{}, []byte("cbs"))
	f.Fuzz(func(t *testing.T, body, ops []byte) {
		r := &Reader{b: body}
		for _, op := range ops {
			switch op {
			case 'u':
				r.Uvarint()
			case 'i':
				r.Int()
			case 's':
				_ = r.String()
			case 'b':
				r.Bool()
			case 'y':
				r.Byte()
			case 'z':
				r.Bytes()
			case 'c':
				n := r.Count(4)
				if r.Err() == nil && n > len(body)+1 {
					t.Fatalf("Count let %d elements through a %d-byte body", n, len(body))
				}
			}
			if r.Err() != nil {
				return
			}
		}
	})
}
