package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// buildTestSnapshot returns the serialized bytes of a two-section file.
func buildTestSnapshot() []byte {
	f := New()
	a := f.Section("alpha")
	a.String("hello")
	a.Uvarint(42)
	b := f.Section("beta")
	b.Bytes([]byte{1, 2, 3})
	return f.Bytes()
}

// TestFromReaderMatchesOpen checks the streamed parser accepts exactly
// what Open accepts and yields the same sections.
func TestFromReaderMatchesOpen(t *testing.T) {
	data := buildTestSnapshot()
	want, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("FromReader: %v", err)
	}
	if got.Major() != want.Major() || got.Minor() != want.Minor() {
		t.Fatalf("version (%d,%d), want (%d,%d)", got.Major(), got.Minor(), want.Major(), want.Minor())
	}
	gs, ws := got.Sections(), want.Sections()
	if len(gs) != len(ws) {
		t.Fatalf("sections %v, want %v", gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("sections %v, want %v", gs, ws)
		}
	}
	r, err := got.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("alpha string = %q", s)
	}
	if v := r.Uvarint(); v != 42 {
		t.Fatalf("alpha uvarint = %d", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestFromReaderRejects drives the streamed parser through every
// malformed-input class and checks the typed errors.
func TestFromReaderRejects(t *testing.T) {
	data := buildTestSnapshot()

	// Every proper prefix is truncated or corrupt, never accepted.
	for cut := 0; cut < len(data); cut++ {
		_, err := FromReader(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(data))
		}
	}

	// Trailing garbage is corrupt.
	if _, err := FromReader(bytes.NewReader(append(append([]byte(nil), data...), 0xff))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}

	// A flipped body bit is a CRC mismatch.
	bad := append([]byte(nil), data...)
	bad[len(bad)-6] ^= 0x01
	if _, err := FromReader(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit: err = %v, want ErrCorrupt", err)
	}

	// Wrong major version.
	wrong := append([]byte(nil), data...)
	wrong[len(Magic)] = Major + 1
	if _, err := FromReader(bytes.NewReader(wrong)); !errors.Is(err, ErrVersion) {
		t.Fatalf("wrong major: err = %v, want ErrVersion", err)
	}

	// Bad magic.
	if _, err := FromReader(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// Empty stream is truncated.
	if _, err := FromReader(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty stream: err = %v, want ErrTruncated", err)
	}
}
