// Package snapnames centralizes the section names of the checkpoint
// files written across the repository, so writers and readers in
// different packages cannot drift apart.
package snapnames

// Section names. A snapshot file contains the subset relevant to what it
// checkpoints: an offline diagnose checkpoint has Meta+Diagnoser+…, a
// serve session adds ServeSession, a peerd checkpoint has MemberJob+….
const (
	// Meta describes what the file holds (consumer, engine, net text).
	Meta = "meta"
	// TermStore is a hash-consed term store replayed cell-by-cell.
	TermStore = "term.store"
	// Program is a ddatalog program (rules, facts, declared peers) over
	// the file's TermStore.
	Program = "ddatalog.program"
	// Engine is warm ddatalog.Engine state (per-peer stores, relations,
	// rules, subscriptions, counters).
	Engine = "ddatalog.engine"
	// Session is dqsq.OnlineSession state (rewriters, pending appends,
	// rewriting trace).
	Session = "dqsq.session"
	// Diagnoser is diagnosis.OnlineDiagnoser state (alarm seq, query
	// version, per-peer counts, last report).
	Diagnoser = "diagnosis.online"
	// Report is a diagnosis.Report (used alone by engines that re-run
	// the full sequence per append and need no warm state).
	Report = "diagnosis.report"
	// ServeSession is internal/serve session metadata (ID, budgets,
	// alarm log, exhaustion state).
	ServeSession = "serve.session"
	// MemberJob is a peerd member checkpoint: the accepted wire.Job and
	// its round generation.
	MemberJob = "dist.member.job"
)
