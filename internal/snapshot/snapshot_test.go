package snapshot

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	f := New()
	w := f.Section("meta")
	w.Uvarint(42)
	w.Int(-7)
	w.String("hello")
	w.Bool(true)
	w.Bool(false)
	w.Byte(0xAB)
	w.Bytes([]byte{1, 2, 3})
	w2 := f.Section("body")
	w2.String("second section")

	o, err := Open(f.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if o.Major() != Major || o.Minor() != Minor {
		t.Fatalf("version = %d.%d, want %d.%d", o.Major(), o.Minor(), Major, Minor)
	}
	if got := o.Sections(); len(got) != 2 || got[0] != "meta" || got[1] != "body" {
		t.Fatalf("Sections() = %v", got)
	}
	r, err := o.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Uvarint(); v != 42 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if v := r.Byte(); v != 0xAB {
		t.Errorf("Byte = %x", v)
	}
	if v := r.Bytes(); len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("Bytes = %v", v)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
	r2, err := o.Section("body")
	if err != nil {
		t.Fatal(err)
	}
	if v := r2.String(); v != "second section" {
		t.Errorf("body = %q", v)
	}
	if err := r2.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	if _, err := Open([]byte("NOPE")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := Open(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: err = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsWrongMajor(t *testing.T) {
	b := []byte(Magic)
	b = binary.AppendUvarint(b, Major+1)
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, 0)
	_, err := Open(b)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	if !strings.Contains(err.Error(), "major version") {
		t.Errorf("error should name the offending version: %v", err)
	}
}

func TestOpenRejectsCorruptSection(t *testing.T) {
	f := New()
	f.Section("s").String("payload payload payload")
	b := f.Bytes()
	// Flip a byte inside the section body: the CRC must catch it.
	b[len(b)-8] ^= 0xFF
	if _, err := Open(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	f := New()
	f.Section("s").String("some section content here")
	full := f.Bytes()
	for i := 1; i < len(full); i++ {
		if _, err := Open(full[:i]); err == nil {
			t.Fatalf("Open accepted a %d/%d-byte prefix", i, len(full))
		}
	}
}

func TestMissingSection(t *testing.T) {
	f := New()
	f.Section("present").Uvarint(1)
	o, err := Open(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Section("absent"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section: err = %v, want ErrCorrupt", err)
	}
	if o.Has("absent") || !o.Has("present") {
		t.Error("Has() wrong")
	}
}

func TestReaderFinishCatchesTrailingBytes(t *testing.T) {
	f := New()
	w := f.Section("s")
	w.Uvarint(1)
	w.Uvarint(2)
	o, err := Open(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r, _ := o.Section("s")
	r.Uvarint() // leave one value unread
	if err := r.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Finish = %v, want ErrCorrupt", err)
	}
}

func TestReaderCountGuardsAllocation(t *testing.T) {
	// A section claiming 2^40 elements of >= 8 bytes each must fail fast
	// rather than allocate.
	f := New()
	f.Section("s").Uvarint(1 << 40)
	o, err := Open(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r, _ := o.Section("s")
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want guard failure", n, r.Err())
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	f := New()
	f.Section("x").String("durable")
	n, err := WriteFile(path, f)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(n) {
		t.Fatalf("stat: %v size=%v want %d", err, fi, n)
	}
	o, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := o.Section("x")
	if v := r.String(); v != "durable" {
		t.Errorf("got %q", v)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func TestDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate section")
		}
	}()
	f := New()
	f.Section("a")
	f.Section("a")
}
