// Package snapshot is the durable counterpart of the wire codec: a
// stdlib-only, versioned binary container for checkpoint files. Where
// package wire frames the messages of a live evaluation, this package
// frames the state those messages build up — term stores, relations,
// engine and session state — so a process can be killed and restored
// without recomputing the unfolding from scratch.
//
// A snapshot file is a sequence of named sections behind a magic+version
// header. Every section carries a CRC-32 of its body, checked eagerly on
// Open, so torn writes and bit rot surface as ErrCorrupt before any state
// is rebuilt. Section bodies use the same primitives as the wire format
// (uvarints, length-prefixed strings) and the same total-decoder
// discipline: any byte slice either decodes or returns an error — the
// reader never panics and never allocates more than the input could
// justify. FuzzOpen enforces this.
//
// Layout:
//
//	"DSNP" | uvarint major | uvarint minor | uvarint nSections
//	then per section: string name | uvarint bodyLen | body | crc32(body) LE
//
// The major version gates compatibility: readers refuse files from a
// different major outright (there are no compatibility shims, matching
// wire's handshake policy). The minor version is informational.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a snapshot file.
const Magic = "DSNP"

// Major and Minor are the format version this build writes. A reader
// accepts exactly its own major.
const (
	Major = 1
	Minor = 0
)

// MaxSnapshot bounds the size of a snapshot file this package will open
// (256 MiB) — like wire.MaxFrame it stops a corrupt length from forcing a
// giant allocation, scaled up because a checkpoint carries whole stores,
// not single messages.
const MaxSnapshot = 1 << 28

// ErrTruncated reports an input that ended mid-structure.
var ErrTruncated = errors.New("snapshot: truncated input")

// ErrCorrupt reports structurally invalid input (bad magic, CRC mismatch,
// out-of-range reference, trailing bytes).
var ErrCorrupt = errors.New("snapshot: corrupt input")

// ErrVersion reports a snapshot written by an incompatible major version.
var ErrVersion = errors.New("snapshot: unsupported version")

// --- writing -------------------------------------------------------------

// File accumulates sections for one snapshot. Sections are written in
// Section call order and read back by name.
type File struct {
	names    []string
	sections []*Writer
}

// New returns an empty snapshot file.
func New() *File {
	return &File{}
}

// Section starts a new named section and returns its writer. Adding two
// sections with the same name panics: section names are the schema.
func (f *File) Section(name string) *Writer {
	for _, n := range f.names {
		if n == name {
			panic(fmt.Sprintf("snapshot: duplicate section %q", name))
		}
	}
	w := &Writer{}
	f.names = append(f.names, name)
	f.sections = append(f.sections, w)
	return w
}

// Bytes serializes the whole file: header, then each section with its
// length prefix and CRC.
func (f *File) Bytes() []byte {
	out := make([]byte, 0, 64)
	out = append(out, Magic...)
	out = binary.AppendUvarint(out, Major)
	out = binary.AppendUvarint(out, Minor)
	out = binary.AppendUvarint(out, uint64(len(f.sections)))
	for i, w := range f.sections {
		out = binary.AppendUvarint(out, uint64(len(f.names[i])))
		out = append(out, f.names[i]...)
		out = binary.AppendUvarint(out, uint64(len(w.b)))
		out = append(out, w.b...)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(w.b))
	}
	return out
}

// Writer builds one section body.
type Writer struct {
	b []byte
}

// Len reports the bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Int appends a signed value (zigzag varint).
func (w *Writer) Int(v int64) { w.b = binary.AppendVarint(w.b, v) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.b = binary.AppendUvarint(w.b, uint64(len(s)))
	w.b = append(w.b, s...)
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.b = binary.AppendUvarint(w.b, uint64(len(p)))
	w.b = append(w.b, p...)
}

// Bool appends a boolean byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Byte appends one raw byte.
func (w *Writer) Byte(v byte) { w.b = append(w.b, v) }

// Reserve grows the writer's capacity by n bytes so a caller that knows the
// exact encoded size of a bulk append (see UvarintLen) pays one allocation
// instead of log-many doublings.
func (w *Writer) Reserve(n int) {
	if free := cap(w.b) - len(w.b); free < n {
		grown := make([]byte, len(w.b), len(w.b)+n)
		copy(grown, w.b)
		w.b = grown
	}
}

// UvarintLen returns the number of bytes Uvarint(v) appends.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Body returns the bytes written so far. Together with NewReader it
// lets the section primitives double as a standalone payload codec —
// internal/wal record payloads are encoded exactly this way, without
// the file container around them.
func (w *Writer) Body() []byte { return w.b }

// --- reading -------------------------------------------------------------

// OpenFile is a parsed snapshot whose sections have passed their CRC
// checks. Sections are decoded lazily via Section.
type OpenFile struct {
	major, minor int
	order        []string
	bodies       map[string][]byte
}

// Open parses and validates a snapshot: magic, version, section framing
// and every section CRC. It never panics on arbitrary input.
func Open(b []byte) (*OpenFile, error) {
	if len(b) > MaxSnapshot {
		return nil, fmt.Errorf("%w: %d bytes exceeds MaxSnapshot", ErrCorrupt, len(b))
	}
	if len(b) < len(Magic) || string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Reader{b: b, off: len(Magic)}
	major := r.Uvarint()
	minor := r.Uvarint()
	if r.err == nil && major != Major {
		return nil, fmt.Errorf("%w: file has major version %d, this build reads %d", ErrVersion, major, Major)
	}
	// name(≥1) + bodyLen(≥1) + crc(4) is the smallest possible section.
	n := r.Count(6)
	o := &OpenFile{major: int(major), minor: int(minor), bodies: make(map[string][]byte, n)}
	for i := 0; i < n && r.err == nil; i++ {
		name := r.String()
		blen := r.Uvarint()
		if r.err != nil {
			break
		}
		if blen > uint64(len(b)-r.off) {
			r.err = ErrTruncated
			break
		}
		body := b[r.off : r.off+int(blen)]
		r.off += int(blen)
		if len(b)-r.off < 4 {
			r.err = ErrTruncated
			break
		}
		want := binary.LittleEndian.Uint32(b[r.off:])
		r.off += 4
		if crc32.ChecksumIEEE(body) != want {
			return nil, fmt.Errorf("%w: CRC mismatch in section %q", ErrCorrupt, name)
		}
		if _, dup := o.bodies[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		o.order = append(o.order, name)
		o.bodies[name] = body
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.off)
	}
	return o, nil
}

// FromReader parses and validates a snapshot incrementally from a
// stream: header first, then section by section, each CRC-checked as
// soon as its body arrives. A corrupt or over-budget stream fails
// early without buffering anything beyond the offending section —
// unlike Open, which needs the whole file in memory up front. The
// replication follower validates shipped snapshots straight off the
// connection this way. The cumulative section-body budget is
// MaxSnapshot, the same bound Open enforces on whole files.
func FromReader(rd io.Reader) (*OpenFile, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, streamErr(err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	major, err := streamUvarint(br)
	if err != nil {
		return nil, err
	}
	minor, err := streamUvarint(br)
	if err != nil {
		return nil, err
	}
	if major != Major {
		return nil, fmt.Errorf("%w: stream has major version %d, this build reads %d", ErrVersion, major, Major)
	}
	n, err := streamUvarint(br)
	if err != nil {
		return nil, err
	}
	// Same allocation guard as Open: the smallest section needs 6 bytes.
	if n > MaxSnapshot/6 {
		return nil, fmt.Errorf("%w: %d sections", ErrCorrupt, n)
	}
	budget := uint64(MaxSnapshot)
	o := &OpenFile{major: int(major), minor: int(minor), bodies: make(map[string][]byte)}
	for i := uint64(0); i < n; i++ {
		nameLen, err := streamUvarint(br)
		if err != nil {
			return nil, err
		}
		if nameLen > budget {
			return nil, fmt.Errorf("%w: section name of %d bytes", ErrCorrupt, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, streamErr(err)
		}
		name := string(nameBuf)
		blen, err := streamUvarint(br)
		if err != nil {
			return nil, err
		}
		if blen > budget {
			return nil, fmt.Errorf("%w: section %q of %d bytes exceeds the %d-byte budget", ErrCorrupt, name, blen, MaxSnapshot)
		}
		budget -= blen
		body := make([]byte, blen)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, streamErr(err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(br, crc[:]); err != nil {
			return nil, streamErr(err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc[:]) {
			return nil, fmt.Errorf("%w: CRC mismatch in section %q", ErrCorrupt, name)
		}
		if _, dup := o.bodies[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		o.order = append(o.order, name)
		o.bodies[name] = body
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return o, nil
}

// streamUvarint reads one uvarint from the stream, mapping stream ends
// to ErrTruncated and malformed encodings to ErrCorrupt.
func streamUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, ErrTruncated
	}
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

// streamErr maps short reads to ErrTruncated and passes real I/O
// errors through.
func streamErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// Major reports the file's major format version.
func (o *OpenFile) Major() int { return o.major }

// Minor reports the file's minor format version.
func (o *OpenFile) Minor() int { return o.minor }

// Sections lists the section names in file order.
func (o *OpenFile) Sections() []string {
	out := make([]string, len(o.order))
	copy(out, o.order)
	return out
}

// Has reports whether a section is present.
func (o *OpenFile) Has(name string) bool {
	_, ok := o.bodies[name]
	return ok
}

// Section returns a reader over the named section body, or an error if
// the section is absent.
func (o *OpenFile) Section(name string) (*Reader, error) {
	body, ok := o.bodies[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return &Reader{b: body}, nil
}

// Reader is a bounds-checked cursor over one section body. Like the wire
// decoder it is total: methods return zero values once an error is set,
// and Err/Finish surface it. It never panics.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over a standalone byte slice — the decode
// side of Writer.Body for payloads that travel outside a snapshot file
// (WAL records).
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Fail marks the reader corrupt (or truncated, at end of input). Decoders
// layered on top call it when a domain invariant fails.
func (r *Reader) Fail() {
	if r.err == nil {
		if r.off >= len(r.b) {
			r.err = ErrTruncated
		} else {
			r.err = ErrCorrupt
		}
	}
}

// Failf marks the reader corrupt with a specific cause.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Finish checks that the section decoded cleanly and was fully consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes in section", ErrCorrupt, len(r.b)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.Fail()
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed (zigzag varint) value.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.Fail()
		return 0
	}
	r.off += n
	return v
}

// Count reads a collection length and validates it against the bytes
// still available, given that each element occupies at least min bytes —
// the allocation guard inherited from the wire decoder.
func (r *Reader) Count(min int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(len(r.b)-r.off)/uint64(min)+1 {
		r.err = ErrCorrupt
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.Fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice (copied out of the input).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.Fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// Bool reads a boolean byte; any value other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.err = ErrTruncated
		return false
	}
	b := r.b[r.off]
	r.off++
	if b > 1 {
		r.err = ErrCorrupt
		return false
	}
	return b == 1
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

// IntExact reads a signed value and rejects magnitudes outside int range
// on 32-bit builds.
func (r *Reader) IntExact() int {
	v := r.Int()
	if v > math.MaxInt || v < math.MinInt {
		r.err = ErrCorrupt
		return 0
	}
	return int(v)
}

// --- files ---------------------------------------------------------------

// WriteFile atomically writes the snapshot to path: the bytes land in a
// temp file in the same directory, which is fsynced and renamed over the
// target, so a crash mid-write leaves either the old snapshot or the new
// one — never a torn file.
func WriteFile(path string, f *File) (int, error) {
	data := f.Bytes()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return len(data), nil
}

// ReadFile opens and validates the snapshot at path.
func ReadFile(path string) (*OpenFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	o, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return o, nil
}
