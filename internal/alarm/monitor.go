package alarm

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the third Section 4.4 extension: "one may be
// interested only in sequences of alarms not containing some known
// patterns, and block the unfolding construction upon detection of those
// patterns". A forbidden pattern is compiled into a monitor automaton
// whose violation states simply have no outgoing edges — encoded in the
// alarmSeq relation, the construction blocks exactly as the paper says,
// with no negation needed.

// Determinize performs the subset construction on an NFA, returning an
// equivalent NFA that happens to be deterministic (at most one edge per
// (state, observation)). State 0 of the result is the start state.
func (n *NFA) Determinize() *NFA {
	type stateSet = string
	key := func(set map[int]bool) stateSet {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, s := range ids {
			fmt.Fprintf(&b, "%d,", s)
		}
		return b.String()
	}

	start := map[int]bool{0: true}
	index := map[stateSet]int{key(start): 0}
	sets := []map[int]bool{start}
	out := &NFA{Accept: map[int]bool{}, outgoing: map[int][]int{}}

	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		for s := range cur {
			if n.Accept[s] {
				out.Accept[i] = true
			}
		}
		// Group outgoing edges of the subset by observation.
		targets := map[Obs]map[int]bool{}
		var obsOrder []Obs
		for s := range cur {
			for _, ei := range n.outgoing[s] {
				e := n.Edges[ei]
				if targets[e.Obs] == nil {
					targets[e.Obs] = map[int]bool{}
					obsOrder = append(obsOrder, e.Obs)
				}
				targets[e.Obs][e.To] = true
			}
		}
		sort.Slice(obsOrder, func(a, b int) bool {
			if obsOrder[a].Peer != obsOrder[b].Peer {
				return obsOrder[a].Peer < obsOrder[b].Peer
			}
			return obsOrder[a].Alarm < obsOrder[b].Alarm
		})
		for _, o := range obsOrder {
			k := key(targets[o])
			j, ok := index[k]
			if !ok {
				j = len(sets)
				index[k] = j
				sets = append(sets, targets[o])
			}
			ei := len(out.Edges)
			out.Edges = append(out.Edges, Edge{From: i, Obs: o, To: j})
			out.outgoing[i] = append(out.outgoing[i], ei)
		}
	}
	out.States = len(sets)
	return out
}

// Alphabet is the set of observations a system can emit.
type Alphabet []Obs

// Avoiding compiles the monitor for a forbidden pattern over the given
// alphabet: the result accepts exactly the sequences over the alphabet
// that contain NO substring matching `forbidden`. Violation states are
// dead ends (no outgoing edges), so a diagnosis construction driven by
// this automaton blocks as soon as the pattern is detected — Section
// 4.4's "block the unfolding construction upon detection".
func Avoiding(forbidden *Pattern, alphabet Alphabet) *NFA {
	// Build Σ* . forbidden as an NFA, determinize, then flip: subsets
	// containing an accepting NFA state become dead, everything else
	// accepts.
	sigma := make([]*Pattern, 0, len(alphabet))
	for _, o := range alphabet {
		sigma = append(sigma, Sym(o.Alarm, o.Peer))
	}
	detector := Concat(Star(Alt(sigma...)), forbidden).Compile()
	dfa := detector.Determinize()

	out := &NFA{States: dfa.States, Accept: map[int]bool{}, outgoing: map[int][]int{}}
	for s := 0; s < dfa.States; s++ {
		if !dfa.Accept[s] {
			out.Accept[s] = true // any clean state is acceptable
		}
	}
	for _, e := range dfa.Edges {
		if dfa.Accept[e.From] || dfa.Accept[e.To] {
			continue // entering or leaving a violation state is blocked
		}
		ei := len(out.Edges)
		out.Edges = append(out.Edges, e)
		out.outgoing[e.From] = append(out.outgoing[e.From], ei)
	}
	return out
}

// NetAlphabet is a convenience for building the monitor alphabet from
// alarm/peer string pairs: NetAlphabet("a","p1","b","p2").
func NetAlphabet(pairs ...string) Alphabet {
	return Alphabet(S(pairs...))
}
