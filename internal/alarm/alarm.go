// Package alarm models what the supervisor receives: sequences of
// (alarm symbol, emitting peer) pairs (Section 2), their per-peer
// projections, and — for the Section 4.4 extension — regular alarm
// patterns compiled to NFAs whose transition tables can be encoded in the
// alarmSeq relation of the supervisor's Datalog program.
package alarm

import (
	"sort"
	"strings"

	"repro/internal/petri"
)

// Obs is one received alarm (the paper's pair (a, p)).
type Obs = petri.Observation

// Seq is the sequence received by the supervisor. Only the per-peer order
// is meaningful (asynchronous channels, Section 2).
type Seq []Obs

// S builds a sequence from (alarm, peer) string pairs:
// S("b","p1", "a","p2").
func S(pairs ...string) Seq {
	if len(pairs)%2 != 0 {
		panic("alarm: S needs alarm/peer pairs")
	}
	out := make(Seq, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Obs{Alarm: petri.Alarm(pairs[i]), Peer: petri.Peer(pairs[i+1])})
	}
	return out
}

// PerPeer splits the sequence into the per-peer subsequences A_p.
func (s Seq) PerPeer() map[petri.Peer][]petri.Alarm {
	out := make(map[petri.Peer][]petri.Alarm)
	for _, o := range s {
		out[o.Peer] = append(out[o.Peer], o.Alarm)
	}
	return out
}

// Peers returns the peers appearing in the sequence, sorted.
func (s Seq) Peers() []petri.Peer {
	seen := map[petri.Peer]bool{}
	var out []petri.Peer
	for _, o := range s {
		if !seen[o.Peer] {
			seen[o.Peer] = true
			out = append(out, o.Peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the sequence as (b,p1),(a,p2),...
func (s Seq) String() string {
	var b strings.Builder
	for i, o := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('(')
		b.WriteString(string(o.Alarm))
		b.WriteByte(',')
		b.WriteString(string(o.Peer))
		b.WriteByte(')')
	}
	return b.String()
}

// Equivalent reports whether two sequences have identical per-peer
// subsequences — the supervisor cannot distinguish them (Section 2's
// interleaving nondeterminism).
func Equivalent(a, b Seq) bool {
	pa, pb := a.PerPeer(), b.PerPeer()
	if len(pa) != len(pb) {
		return false
	}
	for p, sa := range pa {
		sb := pb[p]
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
	}
	return true
}
