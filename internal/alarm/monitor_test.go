package alarm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/petri"
)

func TestDeterminizeEquivalent(t *testing.T) {
	// a.(b.a)* has nondeterminism after the first a.
	p := Concat(Sym("a", "p"), Star(Concat(Sym("b", "p"), Sym("a", "p"))))
	n := p.Compile()
	d := n.Determinize()

	// Determinism: at most one edge per (state, obs).
	seen := map[string]bool{}
	for _, e := range d.Edges {
		k := string(rune(e.From)) + "|" + string(e.Obs.Alarm) + "@" + string(e.Obs.Peer)
		if seen[k] {
			t.Fatalf("nondeterministic edge %v", e)
		}
		seen[k] = true
	}

	// Language equivalence on random words.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make(Seq, rng.Intn(7))
		for i := range w {
			if rng.Intn(2) == 0 {
				w[i] = Obs{Alarm: "a", Peer: "p"}
			} else {
				w[i] = Obs{Alarm: "b", Peer: "p"}
			}
		}
		return n.Accepts(w) == d.Accepts(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAvoidingBlocksSubstring(t *testing.T) {
	alpha := NetAlphabet("a", "p", "b", "p")
	// Forbid the substring b.b.
	mon := Avoiding(Concat(Sym("b", "p"), Sym("b", "p")), alpha)

	ref := func(s Seq) bool {
		for i := 0; i+1 < len(s); i++ {
			if s[i].Alarm == "b" && s[i+1].Alarm == "b" {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Seq, rng.Intn(8))
		for i := range s {
			if rng.Intn(2) == 0 {
				s[i] = Obs{Alarm: "a", Peer: "p"}
			} else {
				s[i] = Obs{Alarm: "b", Peer: "p"}
			}
		}
		return mon.Accepts(s) == ref(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestAvoidingAcceptsEmptyAndBlocksEarly(t *testing.T) {
	alpha := NetAlphabet("x", "p", "y", "p")
	mon := Avoiding(Sym("y", "p"), alpha)
	if !mon.Accepts(nil) {
		t.Fatal("empty sequence rejected")
	}
	if !mon.Accepts(S("x", "p", "x", "p")) {
		t.Fatal("clean sequence rejected")
	}
	if mon.Accepts(S("y", "p")) || mon.Accepts(S("x", "p", "y", "p", "x", "p")) {
		t.Fatal("forbidden observation accepted")
	}
	// Blocking: after the violation the state set is empty.
	st := mon.Start()
	st = mon.Step(st, Obs{Alarm: "y", Peer: "p"})
	if len(st) != 0 {
		t.Fatalf("violation state survived: %v", st)
	}
}

func TestAvoidingMultiPeer(t *testing.T) {
	alpha := Alphabet{
		{Alarm: petri.Alarm("a"), Peer: "p1"},
		{Alarm: petri.Alarm("a"), Peer: "p2"},
	}
	// Forbid a@p2 (anywhere); a@p1 remains free.
	mon := Avoiding(Sym("a", "p2"), alpha)
	if !mon.Accepts(S("a", "p1", "a", "p1")) {
		t.Fatal("clean multi-peer sequence rejected")
	}
	if mon.Accepts(S("a", "p1", "a", "p2")) {
		t.Fatal("forbidden peer observation accepted")
	}
}
