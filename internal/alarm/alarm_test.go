package alarm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/petri"
)

func TestSeqBasics(t *testing.T) {
	s := S("b", "p1", "a", "p2", "c", "p1")
	if s.String() != "(b,p1),(a,p2),(c,p1)" {
		t.Fatalf("String = %s", s.String())
	}
	per := s.PerPeer()
	if len(per["p1"]) != 2 || per["p1"][0] != "b" || per["p1"][1] != "c" {
		t.Fatalf("p1 = %v", per["p1"])
	}
	if len(per["p2"]) != 1 || per["p2"][0] != "a" {
		t.Fatalf("p2 = %v", per["p2"])
	}
	peers := s.Peers()
	if len(peers) != 2 || peers[0] != "p1" || peers[1] != "p2" {
		t.Fatalf("peers = %v", peers)
	}
}

func TestEquivalentInterleavings(t *testing.T) {
	// The paper's three sequences: the first two are indistinguishable to
	// the supervisor up to cross-peer interleaving; the third swaps b and c
	// within p1 and is genuinely different.
	a1 := S("b", "p1", "a", "p2", "c", "p1")
	a2 := S("b", "p1", "c", "p1", "a", "p2")
	a3 := S("c", "p1", "b", "p1", "a", "p2")
	if !Equivalent(a1, a2) {
		t.Fatal("a1 and a2 must be equivalent")
	}
	if Equivalent(a1, a3) {
		t.Fatal("a1 and a3 must differ")
	}
	if Equivalent(a1, S("b", "p1")) {
		t.Fatal("length mismatch accepted")
	}
}

func TestSPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	S("b")
}

func TestLinearPatternAcceptsExactlyItsSequence(t *testing.T) {
	seq := S("b", "p1", "a", "p2", "c", "p1")
	n := Linear(seq).Compile()
	if !n.Accepts(seq) {
		t.Fatal("linear pattern rejects its own sequence")
	}
	if n.Accepts(S("b", "p1", "a", "p2")) {
		t.Fatal("accepts proper prefix")
	}
	if n.Accepts(S("a", "p2", "b", "p1", "c", "p1")) {
		t.Fatal("accepts permutation")
	}
	if n.Accepts(nil) {
		t.Fatal("accepts empty")
	}
}

func TestStarPattern(t *testing.T) {
	// α.β*.α — the paper's example pattern.
	p := Concat(Sym("α", "p"), Star(Sym("β", "p")), Sym("α", "p"))
	n := p.Compile()
	if !n.Accepts(S("α", "p", "α", "p")) {
		t.Fatal("rejects zero repetitions")
	}
	if !n.Accepts(S("α", "p", "β", "p", "α", "p")) {
		t.Fatal("rejects one repetition")
	}
	if !n.Accepts(S("α", "p", "β", "p", "β", "p", "β", "p", "α", "p")) {
		t.Fatal("rejects three repetitions")
	}
	if n.Accepts(S("α", "p", "β", "p")) {
		t.Fatal("accepts missing closer")
	}
	if n.Accepts(S("β", "p", "α", "p", "α", "p")) {
		t.Fatal("accepts leading β")
	}
}

func TestAltAndEps(t *testing.T) {
	p := Concat(Alt(Sym("a", "p"), Sym("b", "p")), Eps(), Sym("c", "p"))
	n := p.Compile()
	if !n.Accepts(S("a", "p", "c", "p")) || !n.Accepts(S("b", "p", "c", "p")) {
		t.Fatal("alternation broken")
	}
	if n.Accepts(S("c", "p")) {
		t.Fatal("skipped required alternative")
	}
	if !Star(Sym("x", "p")).Compile().Accepts(nil) {
		t.Fatal("x* must accept empty")
	}
}

func TestPeersDistinguishedInPatterns(t *testing.T) {
	n := Sym("a", "p1").Compile()
	if n.Accepts(S("a", "p2")) {
		t.Fatal("pattern ignored peer")
	}
}

func TestStepExposesStateSets(t *testing.T) {
	n := Concat(Sym("a", "p"), Sym("b", "p")).Compile()
	st := n.Start()
	if n.Accepting(st) {
		t.Fatal("start accepting")
	}
	st = n.Step(st, Obs{Alarm: "a", Peer: "p"})
	if len(st) == 0 || n.Accepting(st) {
		t.Fatalf("mid state wrong: %v", st)
	}
	st = n.Step(st, Obs{Alarm: "b", Peer: "p"})
	if !n.Accepting(st) {
		t.Fatal("final state not accepting")
	}
}

// Property: Linear(seq) accepts exactly seq among random same-alphabet
// sequences of the same length.
func TestQuickLinearIsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alph := []petri.Alarm{"a", "b"}
		mk := func() Seq {
			s := make(Seq, 3+rng.Intn(3))
			for i := range s {
				s[i] = Obs{Alarm: alph[rng.Intn(2)], Peer: "p"}
			}
			return s
		}
		s1, s2 := mk(), mk()
		n := Linear(s1).Compile()
		same := len(s1) == len(s2)
		if same {
			for i := range s1 {
				if s1[i] != s2[i] {
					same = false
				}
			}
		}
		return n.Accepts(s2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (αβ*α) acceptance matches a hand-rolled recognizer.
func TestQuickStarAgainstReference(t *testing.T) {
	p := Concat(Sym("a", "p"), Star(Sym("b", "p")), Sym("a", "p")).Compile()
	ref := func(s Seq) bool {
		if len(s) < 2 {
			return false
		}
		if s[0] != (Obs{Alarm: "a", Peer: "p"}) || s[len(s)-1] != (Obs{Alarm: "a", Peer: "p"}) {
			return false
		}
		for _, o := range s[1 : len(s)-1] {
			if o != (Obs{Alarm: "b", Peer: "p"}) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Seq, rng.Intn(6))
		for i := range s {
			if rng.Intn(2) == 0 {
				s[i] = Obs{Alarm: "a", Peer: "p"}
			} else {
				s[i] = Obs{Alarm: "b", Peer: "p"}
			}
		}
		return p.Accepts(s) == ref(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
