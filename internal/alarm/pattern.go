package alarm

import (
	"fmt"

	"repro/internal/petri"
)

// Pattern is a regular expression over observations, for the Section 4.4
// "alarm patterns" extension ("a pattern described by some regular
// language, e.g., α.β*.α"). Build with Sym, Concat, Star, Alt and compile
// with Compile.
type Pattern struct {
	kind patKind
	obs  Obs
	subs []*Pattern
}

type patKind uint8

const (
	pSym patKind = iota
	pConcat
	pStar
	pAlt
	pEps
)

// Sym matches exactly one observation (a, p).
func Sym(a petri.Alarm, p petri.Peer) *Pattern {
	return &Pattern{kind: pSym, obs: Obs{Alarm: a, Peer: p}}
}

// Eps matches the empty sequence.
func Eps() *Pattern { return &Pattern{kind: pEps} }

// Concat matches its arguments in order.
func Concat(ps ...*Pattern) *Pattern { return &Pattern{kind: pConcat, subs: ps} }

// Star matches zero or more repetitions of p.
func Star(p *Pattern) *Pattern { return &Pattern{kind: pStar, subs: []*Pattern{p}} }

// Alt matches any one of its arguments.
func Alt(ps ...*Pattern) *Pattern { return &Pattern{kind: pAlt, subs: ps} }

// Edge is one NFA transition: on observation Obs, move From -> To.
type Edge struct {
	From int
	Obs  Obs
	To   int
}

// NFA is a nondeterministic automaton over observations with epsilon
// transitions already eliminated. State 0 is the start state.
type NFA struct {
	States int
	Accept map[int]bool
	Edges  []Edge
	// outgoing[s] lists edge indexes leaving s.
	outgoing map[int][]int
}

// Compile builds an NFA via Thompson construction followed by epsilon
// closure elimination.
func (p *Pattern) Compile() *NFA {
	b := &thompson{eps: map[int][]int{}}
	start := b.newState()
	end := b.build(p, start)
	// Epsilon elimination.
	nfa := &NFA{States: b.states, Accept: map[int]bool{}, outgoing: map[int][]int{}}
	for s := 0; s < b.states; s++ {
		cl := b.closure(s)
		for t := range cl {
			if t == end {
				nfa.Accept[s] = true
			}
			for _, e := range b.edges[t] {
				nfa.Edges = append(nfa.Edges, Edge{From: s, Obs: e.Obs, To: e.To})
			}
		}
	}
	// Deduplicate edges and index them.
	seen := map[string]bool{}
	dedup := nfa.Edges[:0]
	for _, e := range nfa.Edges {
		k := fmt.Sprintf("%d|%s|%s|%d", e.From, e.Obs.Alarm, e.Obs.Peer, e.To)
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, e)
		}
	}
	nfa.Edges = dedup
	for i, e := range nfa.Edges {
		nfa.outgoing[e.From] = append(nfa.outgoing[e.From], i)
	}
	return nfa
}

type tEdge struct {
	Obs Obs
	To  int
}

type thompson struct {
	states int
	edges  map[int][]tEdge
	eps    map[int][]int
}

func (b *thompson) newState() int {
	if b.edges == nil {
		b.edges = map[int][]tEdge{}
	}
	s := b.states
	b.states++
	return s
}

// build wires pattern p from state `from` and returns its accepting state.
func (b *thompson) build(p *Pattern, from int) int {
	switch p.kind {
	case pEps:
		return from
	case pSym:
		to := b.newState()
		b.edges[from] = append(b.edges[from], tEdge{Obs: p.obs, To: to})
		return to
	case pConcat:
		cur := from
		for _, sub := range p.subs {
			cur = b.build(sub, cur)
		}
		return cur
	case pStar:
		// from -eps-> hub; hub -sub-> back to hub; accept at hub.
		hub := b.newState()
		b.eps[from] = append(b.eps[from], hub)
		end := b.build(p.subs[0], hub)
		b.eps[end] = append(b.eps[end], hub)
		return hub
	case pAlt:
		join := b.newState()
		for _, sub := range p.subs {
			end := b.build(sub, from)
			b.eps[end] = append(b.eps[end], join)
		}
		return join
	default:
		panic("alarm: unknown pattern kind")
	}
}

func (b *thompson) closure(s int) map[int]bool {
	out := map[int]bool{s: true}
	stack := []int{s}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range b.eps[t] {
			if !out[u] {
				out[u] = true
				stack = append(stack, u)
			}
		}
	}
	return out
}

// StateSet is a set of NFA states.
type StateSet map[int]bool

// Start returns the initial state set.
func (n *NFA) Start() StateSet { return StateSet{0: true} }

// Step advances the state set on one observation.
func (n *NFA) Step(states StateSet, o Obs) StateSet {
	out := StateSet{}
	for s := range states {
		for _, ei := range n.outgoing[s] {
			e := n.Edges[ei]
			if e.Obs == o {
				out[e.To] = true
			}
		}
	}
	return out
}

// Accepting reports whether the state set contains an accepting state.
func (n *NFA) Accepting(states StateSet) bool {
	for s := range states {
		if n.Accept[s] {
			return true
		}
	}
	return false
}

// Accepts runs the whole sequence.
func (n *NFA) Accepts(seq Seq) bool {
	st := n.Start()
	for _, o := range seq {
		st = n.Step(st, o)
		if len(st) == 0 {
			return false
		}
	}
	return n.Accepting(st)
}

// Linear returns the pattern matching exactly the given sequence — the
// basic diagnosis problem is the special case of pattern diagnosis where
// the automaton is a straight line, which is how the paper encodes the
// sequence in the alarmSeq relation.
func Linear(seq Seq) *Pattern {
	subs := make([]*Pattern, len(seq))
	for i, o := range seq {
		subs[i] = Sym(o.Alarm, o.Peer)
	}
	return Concat(subs...)
}
