// Package rel implements the storage layer shared by every Datalog
// evaluator in this repository: append-only relations of ground tuples
// with hash indexes built lazily per binding pattern.
//
// Relations are append-only (Datalog is monotone), so a "delta" for
// semi-naive evaluation is just a watermark pair [lo,hi) of positions, and
// index posting lists — which are ascending position slices — support
// delta-restricted scans by binary search.
//
// Tuples live in a columnar arena: one flat []term.ID buffer where tuple i
// occupies the slice [i*arity, (i+1)*arity). The full-tuple dedup set and
// the per-mask indexes are open-addressing tables hashed over the term IDs
// of the (masked) columns, so the probe path — Contains, Scan, ensureIndex
// — never materializes a string key and never allocates.
package rel

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/term"
)

// Name identifies a relation. Distributed code composes names like
// "trans@p1" or adorned names like "R#bf"; the storage layer is agnostic.
type Name string

// Relation is a set of ground tuples of a fixed arity. It is append-only;
// Insert ignores duplicates. Not safe for concurrent use — peers own their
// relations.
type Relation struct {
	arity int
	flat  []term.ID // arena; tuple i occupies flat[i*arity:(i+1)*arity]
	n     int       // number of tuples
	seen  table     // full-tuple dedup: slots hold position+1
	idx   []maskIndex
}

// table is an open-addressing (linear probing, power-of-two sized) hash
// table. Slot values are payload+1 so zero marks an empty slot.
type table struct {
	slots []int32
	n     int
}

// index is the per-mask hash index: slots map a masked-column hash to a
// key number, postings[key] is the ascending list of tuple positions whose
// masked columns equal that key.
type index struct {
	slots    []int32
	postings [][]int32
	built    int // number of tuples absorbed so far
}

// maskIndex pairs a binding mask with its index. Relations see only a
// handful of masks, so a linear scan beats a map on the probe path.
type maskIndex struct {
	mask uint64
	ix   *index
}

// New returns an empty relation of the given arity. Arity 0 is allowed and
// models propositional facts; arity must be < 64 so binding masks fit a
// word.
func New(arity int) *Relation {
	if arity < 0 || arity >= 64 {
		panic(fmt.Sprintf("rel: unsupported arity %d", arity))
	}
	return &Relation{arity: arity}
}

// Arity reports the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of distinct tuples.
func (r *Relation) Len() int { return r.n }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix finalizes a hash with a 64-bit avalanche so nearby term IDs spread
// across the table.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hashTuple hashes every column of a tuple (FNV-1a over the IDs).
func hashTuple(tuple []term.ID) uint64 {
	h := uint64(fnvOffset)
	for _, t := range tuple {
		h ^= uint64(uint32(t))
		h *= fnvPrime
	}
	return mix(h)
}

// hashCols hashes the columns selected by mask.
func hashCols(tuple []term.ID, mask uint64) uint64 {
	h := uint64(fnvOffset)
	for m := mask; m != 0; m &= m - 1 {
		h ^= uint64(uint32(tuple[bits.TrailingZeros64(m)]))
		h *= fnvPrime
	}
	return mix(h)
}

func eqTuple(a, b []term.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eqCols reports whether a and b agree on the columns selected by mask.
func eqCols(a, b []term.ID, mask uint64) bool {
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// row returns the arena view of the tuple at pos. The capped slice keeps an
// appending caller from stomping the next tuple.
func (r *Relation) row(pos int) []term.ID {
	lo, hi := pos*r.arity, (pos+1)*r.arity
	return r.flat[lo:hi:hi]
}

// fullMask is the mask selecting every column of the relation.
func (r *Relation) fullMask() uint64 {
	return (uint64(1) << uint(r.arity)) - 1
}

// Insert adds a ground tuple, returning true if it was new. The tuple is
// copied into the arena. It panics on arity mismatch.
func (r *Relation) Insert(tuple []term.ID) bool {
	_, added := r.InsertPos(tuple)
	return added
}

// InsertPos is Insert returning also the tuple's position: the existing
// position on a duplicate, the newly assigned one otherwise. Callers that
// need a stable view of the stored tuple combine it with At.
func (r *Relation) InsertPos(tuple []term.ID) (int, bool) {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("rel: arity mismatch: inserting %d-tuple into %d-ary relation", len(tuple), r.arity))
	}
	if len(r.seen.slots) == 0 {
		r.seen.slots = make([]int32, 16)
	}
	m := uint64(len(r.seen.slots) - 1)
	i := hashTuple(tuple) & m
	for {
		s := r.seen.slots[i]
		if s == 0 {
			break
		}
		if pos := int(s - 1); eqTuple(r.row(pos), tuple) {
			return pos, false
		}
		i = (i + 1) & m
	}
	pos := r.n
	r.flat = append(r.flat, tuple...)
	r.n++
	r.seen.slots[i] = int32(pos + 1)
	r.seen.n++
	if r.seen.n*4 >= len(r.seen.slots)*3 {
		r.growSeen()
	}
	return pos, true
}

// growSeen doubles the dedup table and reinserts every tuple position.
func (r *Relation) growSeen() {
	slots := make([]int32, 2*len(r.seen.slots))
	m := uint64(len(slots) - 1)
	for _, s := range r.seen.slots {
		if s == 0 {
			continue
		}
		i := hashTuple(r.row(int(s-1))) & m
		for slots[i] != 0 {
			i = (i + 1) & m
		}
		slots[i] = s
	}
	r.seen.slots = slots
}

// Contains reports whether the ground tuple is present.
func (r *Relation) Contains(tuple []term.ID) bool {
	if len(tuple) != r.arity || len(r.seen.slots) == 0 {
		return false
	}
	m := uint64(len(r.seen.slots) - 1)
	i := hashTuple(tuple) & m
	for {
		s := r.seen.slots[i]
		if s == 0 {
			return false
		}
		if eqTuple(r.row(int(s-1)), tuple) {
			return true
		}
		i = (i + 1) & m
	}
}

// At returns the tuple at position pos (insertion order). The returned
// slice is a view into the arena and must not be modified; it stays valid
// across later Inserts.
func (r *Relation) At(pos int) []term.ID { return r.row(pos) }

// ensureIndex brings the index for mask up to date with all tuples.
func (r *Relation) ensureIndex(mask uint64) *index {
	var ix *index
	for i := range r.idx {
		if r.idx[i].mask == mask {
			ix = r.idx[i].ix
			break
		}
	}
	if ix == nil {
		ix = &index{slots: make([]int32, 16)}
		r.idx = append(r.idx, maskIndex{mask: mask, ix: ix})
	}
	for pos := ix.built; pos < r.n; pos++ {
		r.indexInsert(ix, mask, pos)
	}
	ix.built = r.n
	return ix
}

// indexInsert files tuple position pos under its masked-column key.
func (r *Relation) indexInsert(ix *index, mask uint64, pos int) {
	row := r.row(pos)
	m := uint64(len(ix.slots) - 1)
	i := hashCols(row, mask) & m
	for {
		s := ix.slots[i]
		if s == 0 {
			break
		}
		k := int(s - 1)
		if eqCols(r.row(int(ix.postings[k][0])), row, mask) {
			ix.postings[k] = append(ix.postings[k], int32(pos))
			return
		}
		i = (i + 1) & m
	}
	ix.postings = append(ix.postings, []int32{int32(pos)})
	ix.slots[i] = int32(len(ix.postings))
	if len(ix.postings)*4 >= len(ix.slots)*3 {
		r.growIndex(ix, mask)
	}
}

// growIndex doubles an index's slot table and reinserts every key.
func (r *Relation) growIndex(ix *index, mask uint64) {
	slots := make([]int32, 2*len(ix.slots))
	m := uint64(len(slots) - 1)
	for k, posting := range ix.postings {
		i := hashCols(r.row(int(posting[0])), mask) & m
		for slots[i] != 0 {
			i = (i + 1) & m
		}
		slots[i] = int32(k + 1)
	}
	ix.slots = slots
}

// lookup returns the posting list for key's masked columns, or nil.
func (ix *index) lookup(r *Relation, mask uint64, key []term.ID) []int32 {
	m := uint64(len(ix.slots) - 1)
	i := hashCols(key, mask) & m
	for {
		s := ix.slots[i]
		if s == 0 {
			return nil
		}
		posting := ix.postings[s-1]
		if eqCols(r.row(int(posting[0])), key, mask) {
			return posting
		}
		i = (i + 1) & m
	}
}

// searchPos returns the first index in the ascending posting list whose
// value is >= lo.
func searchPos(posting []int32, lo int32) int {
	i, j := 0, len(posting)
	for i < j {
		h := int(uint(i+j) >> 1)
		if posting[h] < lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// Scan calls f for each tuple position in [lo,hi) whose columns selected by
// mask equal the corresponding entries of key (a full-width tuple; columns
// outside mask are ignored). Iteration stops early if f returns false.
// A zero mask scans the whole window.
func (r *Relation) Scan(mask uint64, key []term.ID, lo, hi int, f func(pos int, tuple []term.ID) bool) {
	if hi > r.n {
		hi = r.n
	}
	if lo >= hi {
		return
	}
	if mask == 0 {
		for pos := lo; pos < hi; pos++ {
			if !f(pos, r.row(pos)) {
				return
			}
		}
		return
	}
	posting := r.ensureIndex(mask).lookup(r, mask, key)
	start := searchPos(posting, int32(lo))
	for _, p := range posting[start:] {
		pos := int(p)
		if pos >= hi {
			return
		}
		if !f(pos, r.row(pos)) {
			return
		}
	}
}

// All returns the tuples in insertion order as views into the arena.
// Neither the slice nor its tuples may be modified.
func (r *Relation) All() [][]term.ID {
	out := make([][]term.ID, r.n)
	for i := range out {
		out[i] = r.row(i)
	}
	return out
}

// DB is a named collection of relations sharing one term store.
type DB struct {
	Store *term.Store
	rels  map[Name]*Relation
	order []Name // creation order, for deterministic dumps
}

// NewDB returns an empty database over the given store.
func NewDB(store *term.Store) *DB {
	return &DB{Store: store, rels: make(map[Name]*Relation)}
}

// Rel returns the relation called name, creating it with the given arity on
// first use. It panics if the name exists with a different arity.
func (db *DB) Rel(name Name, arity int) *Relation {
	if r, ok := db.rels[name]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("rel: %s has arity %d, requested %d", name, r.arity, arity))
		}
		return r
	}
	r := New(arity)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r
}

// Lookup returns the relation called name, or nil.
func (db *DB) Lookup(name Name) *Relation { return db.rels[name] }

// Names returns the relation names in creation order.
func (db *DB) Names() []Name {
	out := make([]Name, len(db.order))
	copy(out, db.order)
	return out
}

// FactCount returns the total number of tuples across all relations — the
// materialization metric used throughout the experiments.
func (db *DB) FactCount() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Dump renders the database deterministically, one fact per line, sorted by
// relation name then tuple order, for golden tests and CLI output.
func (db *DB) Dump() string {
	names := db.Names()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	var b strings.Builder
	for _, n := range names {
		r := db.rels[n]
		lines := make([]string, 0, r.Len())
		for _, tup := range r.All() {
			lines = append(lines, formatFact(db.Store, n, tup))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func formatFact(s *term.Store, n Name, tuple []term.ID) string {
	var b strings.Builder
	b.WriteString(string(n))
	b.WriteByte('(')
	for i, t := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String(t))
	}
	b.WriteByte(')')
	return b.String()
}
