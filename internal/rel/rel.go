// Package rel implements the storage layer shared by every Datalog
// evaluator in this repository: append-only relations of ground tuples
// with hash indexes built lazily per binding pattern.
//
// Relations are append-only (Datalog is monotone), so a "delta" for
// semi-naive evaluation is just a watermark pair [lo,hi) of positions, and
// index posting lists — which are ascending position slices — support
// delta-restricted scans by binary search.
package rel

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Name identifies a relation. Distributed code composes names like
// "trans@p1" or adorned names like "R#bf"; the storage layer is agnostic.
type Name string

// Relation is a set of ground tuples of a fixed arity. It is append-only;
// Insert ignores duplicates. Not safe for concurrent use — peers own their
// relations.
type Relation struct {
	arity  int
	tuples [][]term.ID
	seen   map[string]struct{}         // full-tuple dedup
	idx    map[uint64]map[string][]int // bound-column mask -> key -> ascending positions
	built  map[uint64]int              // how many tuples each index has absorbed
}

// New returns an empty relation of the given arity. Arity 0 is allowed and
// models propositional facts; arity must be < 64 so binding masks fit a
// word.
func New(arity int) *Relation {
	if arity < 0 || arity >= 64 {
		panic(fmt.Sprintf("rel: unsupported arity %d", arity))
	}
	return &Relation{
		arity: arity,
		seen:  make(map[string]struct{}),
		idx:   make(map[uint64]map[string][]int),
		built: make(map[uint64]int),
	}
}

// Arity reports the tuple width.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of distinct tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// encode writes the IDs at the positions selected by mask into a string key.
func encode(tuple []term.ID, mask uint64) string {
	var b strings.Builder
	b.Grow(4 * len(tuple))
	var buf [4]byte
	for i, t := range tuple {
		if mask&(1<<uint(i)) != 0 {
			binary.LittleEndian.PutUint32(buf[:], uint32(t))
			b.Write(buf[:])
		}
	}
	return b.String()
}

// fullMask is the mask selecting every column of the relation.
func (r *Relation) fullMask() uint64 {
	return (uint64(1) << uint(r.arity)) - 1
}

// Insert adds a ground tuple, returning true if it was new. The tuple is
// copied. It panics on arity mismatch.
func (r *Relation) Insert(tuple []term.ID) bool {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("rel: arity mismatch: inserting %d-tuple into %d-ary relation", len(tuple), r.arity))
	}
	key := encode(tuple, r.fullMask())
	if _, ok := r.seen[key]; ok {
		return false
	}
	r.seen[key] = struct{}{}
	cp := make([]term.ID, len(tuple))
	copy(cp, tuple)
	r.tuples = append(r.tuples, cp)
	return true
}

// Contains reports whether the ground tuple is present.
func (r *Relation) Contains(tuple []term.ID) bool {
	if len(tuple) != r.arity {
		return false
	}
	_, ok := r.seen[encode(tuple, r.fullMask())]
	return ok
}

// At returns the tuple at position pos (insertion order). The returned
// slice must not be modified.
func (r *Relation) At(pos int) []term.ID { return r.tuples[pos] }

// ensureIndex brings the index for mask up to date with all tuples.
func (r *Relation) ensureIndex(mask uint64) map[string][]int {
	m, ok := r.idx[mask]
	if !ok {
		m = make(map[string][]int)
		r.idx[mask] = m
	}
	for pos := r.built[mask]; pos < len(r.tuples); pos++ {
		k := encode(r.tuples[pos], mask)
		m[k] = append(m[k], pos)
	}
	r.built[mask] = len(r.tuples)
	return m
}

// Scan calls f for each tuple position in [lo,hi) whose columns selected by
// mask equal the corresponding entries of key (a full-width tuple; columns
// outside mask are ignored). Iteration stops early if f returns false.
// A zero mask scans the whole window.
func (r *Relation) Scan(mask uint64, key []term.ID, lo, hi int, f func(pos int, tuple []term.ID) bool) {
	if hi > len(r.tuples) {
		hi = len(r.tuples)
	}
	if lo >= hi {
		return
	}
	if mask == 0 {
		for pos := lo; pos < hi; pos++ {
			if !f(pos, r.tuples[pos]) {
				return
			}
		}
		return
	}
	m := r.ensureIndex(mask)
	posting := m[encode(key, mask)]
	// posting is ascending; restrict to [lo,hi).
	start := sort.SearchInts(posting, lo)
	for _, pos := range posting[start:] {
		if pos >= hi {
			return
		}
		if !f(pos, r.tuples[pos]) {
			return
		}
	}
}

// All returns the backing tuple slice (insertion order). Neither the slice
// nor its tuples may be modified.
func (r *Relation) All() [][]term.ID { return r.tuples }

// DB is a named collection of relations sharing one term store.
type DB struct {
	Store *term.Store
	rels  map[Name]*Relation
	order []Name // creation order, for deterministic dumps
}

// NewDB returns an empty database over the given store.
func NewDB(store *term.Store) *DB {
	return &DB{Store: store, rels: make(map[Name]*Relation)}
}

// Rel returns the relation called name, creating it with the given arity on
// first use. It panics if the name exists with a different arity.
func (db *DB) Rel(name Name, arity int) *Relation {
	if r, ok := db.rels[name]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("rel: %s has arity %d, requested %d", name, r.arity, arity))
		}
		return r
	}
	r := New(arity)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r
}

// Lookup returns the relation called name, or nil.
func (db *DB) Lookup(name Name) *Relation { return db.rels[name] }

// Names returns the relation names in creation order.
func (db *DB) Names() []Name {
	out := make([]Name, len(db.order))
	copy(out, db.order)
	return out
}

// FactCount returns the total number of tuples across all relations — the
// materialization metric used throughout the experiments.
func (db *DB) FactCount() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Dump renders the database deterministically, one fact per line, sorted by
// relation name then tuple order, for golden tests and CLI output.
func (db *DB) Dump() string {
	names := db.Names()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	var b strings.Builder
	for _, n := range names {
		r := db.rels[n]
		lines := make([]string, 0, r.Len())
		for _, tup := range r.All() {
			lines = append(lines, formatFact(db.Store, n, tup))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func formatFact(s *term.Store, n Name, tuple []term.ID) string {
	var b strings.Builder
	b.WriteString(string(n))
	b.WriteByte('(')
	for i, t := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String(t))
	}
	b.WriteByte(')')
	return b.String()
}
