package rel

import (
	"repro/internal/snapshot"
	"repro/internal/term"
)

// EncodeSnapshot writes the relation's arity and tuples (in insertion
// order) into w. The arena keeps insertion order, so the byte format is
// unchanged from the slice-of-tuples representation. The dedup set and the
// lazily built indexes are derived state and are rebuilt on demand after
// decode. The writer is grown up front by the exact encoded size of the
// arena, not a per-column worst case.
func (r *Relation) EncodeSnapshot(w *snapshot.Writer) {
	w.Uvarint(uint64(r.arity))
	w.Uvarint(uint64(r.n))
	total := 0
	for _, id := range r.flat {
		total += snapshot.UvarintLen(uint64(id))
	}
	w.Reserve(total)
	for _, id := range r.flat {
		w.Uvarint(uint64(id))
	}
}

// DecodeRelationSnapshot rebuilds a relation from r. Every term ID is
// validated against storeLen, the size of the term store the tuples refer
// into; duplicate tuples are rejected (an append-only relation never
// contains them, so their presence means corruption).
func DecodeRelationSnapshot(rd *snapshot.Reader, storeLen int) (*Relation, error) {
	arity := rd.Uvarint()
	if rd.Err() == nil && arity >= 64 {
		rd.Failf("relation arity %d", arity)
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	rel := New(int(arity))
	min := int(arity)
	if min < 1 {
		min = 1
	}
	n := rd.Count(min)
	tup := make([]term.ID, arity)
	for i := 0; i < n; i++ {
		for j := range tup {
			id := rd.Uvarint()
			if rd.Err() != nil {
				return nil, rd.Err()
			}
			if id >= uint64(storeLen) {
				rd.Failf("tuple term %d outside store of %d terms", id, storeLen)
				return nil, rd.Err()
			}
			tup[j] = term.ID(id)
		}
		if !rel.Insert(tup) {
			rd.Failf("duplicate tuple %d in relation", i)
			return nil, rd.Err()
		}
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	return rel, nil
}

// EncodeSnapshot writes the database's relations in creation order. The
// shared term store is snapshotted separately by the caller — a DB does
// not own its store.
func (db *DB) EncodeSnapshot(w *snapshot.Writer) {
	w.Uvarint(uint64(len(db.order)))
	for _, name := range db.order {
		w.String(string(name))
		db.rels[name].EncodeSnapshot(w)
	}
}

// DecodeDBSnapshot rebuilds a database over store from rd, restoring the
// relations in their original creation order (Names() and Dump() are
// order-sensitive).
func DecodeDBSnapshot(rd *snapshot.Reader, store *term.Store) (*DB, error) {
	db := NewDB(store)
	n := rd.Count(3) // name length + arity + tuple count minimum
	for i := 0; i < n; i++ {
		name := Name(rd.String())
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		if _, dup := db.rels[name]; dup {
			rd.Failf("duplicate relation %q", name)
			return nil, rd.Err()
		}
		r, err := DecodeRelationSnapshot(rd, store.Len())
		if err != nil {
			return nil, err
		}
		db.rels[name] = r
		db.order = append(db.order, name)
	}
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	return db, nil
}
