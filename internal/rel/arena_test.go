package rel

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/term"
)

// modelRel is the trivially-correct reference the arena Relation is
// checked against: a set keyed by the printed tuple plus an
// insertion-order log.
type modelRel struct {
	pos  map[string]int
	tups [][]term.ID
}

func modelKey(tuple []term.ID) string { return fmt.Sprint(tuple) }

func (m *modelRel) insert(tuple []term.ID) (int, bool) {
	k := modelKey(tuple)
	if p, ok := m.pos[k]; ok {
		return p, false
	}
	p := len(m.tups)
	m.pos[k] = p
	m.tups = append(m.tups, append([]term.ID(nil), tuple...))
	return p, true
}

// scan mirrors Relation.Scan: positions in [lo,hi) whose mask-selected
// columns equal key's.
func (m *modelRel) scan(mask uint64, key []term.ID, lo, hi int) []int {
	if hi > len(m.tups) {
		hi = len(m.tups)
	}
	var out []int
	for p := lo; p < hi; p++ {
		ok := true
		for rest := mask; rest != 0; rest &= rest - 1 {
			c := bits.TrailingZeros64(rest)
			if m.tups[p][c] != key[c] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// TestArenaMatchesModel drives a long random op sequence — inserts (with
// deliberate duplicates), Contains probes, masked Scans over random delta
// windows — through the arena Relation and the map model in lockstep.
func TestArenaMatchesModel(t *testing.T) {
	const arity = 3
	s := term.NewStore()
	syms := make([]term.ID, 7)
	for i := range syms {
		syms[i] = s.Constant(fmt.Sprintf("c%d", i))
	}
	rng := rand.New(rand.NewSource(42))
	randTuple := func() []term.ID {
		tu := make([]term.ID, arity)
		for i := range tu {
			tu[i] = syms[rng.Intn(len(syms))]
		}
		return tu
	}

	r := New(arity)
	m := &modelRel{pos: make(map[string]int)}
	for step := 0; step < 4000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert (the small alphabet makes duplicates common)
			tu := randTuple()
			gotPos, gotNew := r.InsertPos(tu)
			wantPos, wantNew := m.insert(tu)
			if gotPos != wantPos || gotNew != wantNew {
				t.Fatalf("step %d: InsertPos(%v) = (%d,%v), want (%d,%v)", step, tu, gotPos, gotNew, wantPos, wantNew)
			}
			if got := r.At(gotPos); modelKey(got) != modelKey(tu) {
				t.Fatalf("step %d: At(%d) = %v, want %v", step, gotPos, got, tu)
			}
		case 2: // membership
			tu := randTuple()
			_, want := m.pos[modelKey(tu)]
			if got := r.Contains(tu); got != want {
				t.Fatalf("step %d: Contains(%v) = %v, want %v", step, tu, got, want)
			}
		case 3: // masked scan over a random window (delta semantics)
			mask := uint64(rng.Intn(1 << arity))
			key := randTuple()
			lo := rng.Intn(r.Len() + 1)
			hi := lo + rng.Intn(r.Len()-lo+1)
			var got []int
			r.Scan(mask, key, lo, hi, func(pos int, tuple []term.ID) bool {
				if modelKey(tuple) != modelKey(m.tups[pos]) {
					t.Fatalf("step %d: Scan pos %d tuple %v, want %v", step, pos, tuple, m.tups[pos])
				}
				got = append(got, pos)
				return true
			})
			want := m.scan(mask, key, lo, hi)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d: Scan(mask=%b, key=%v, [%d,%d)) = %v, want %v", step, mask, key, lo, hi, got, want)
			}
		}
		if r.Len() != len(m.tups) {
			t.Fatalf("step %d: Len = %d, want %d", step, r.Len(), len(m.tups))
		}
	}

	all := r.All()
	if len(all) != len(m.tups) {
		t.Fatalf("All: %d tuples, want %d", len(all), len(m.tups))
	}
	for i := range all {
		if modelKey(all[i]) != modelKey(m.tups[i]) {
			t.Fatalf("All[%d] = %v, want %v", i, all[i], m.tups[i])
		}
	}
}

// TestContainsZeroAlloc pins the hot-path contract: probing a warm
// relation allocates nothing.
func TestContainsZeroAlloc(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	for i := 0; i < 256; i++ {
		r.Insert(tup(s, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%16)))
	}
	hit := tup(s, "a7", "b7")
	miss := tup(s, "a7", "b9")
	if n := testing.AllocsPerRun(200, func() {
		if !r.Contains(hit) || r.Contains(miss) {
			t.Fatal("Contains wrong")
		}
	}); n != 0 {
		t.Fatalf("Contains allocates %.1f per probe, want 0", n)
	}
}

// TestScanZeroAlloc pins the other hot-path contract: an indexed Scan
// over a warm (already-built, fully-caught-up) index allocates nothing.
func TestScanZeroAlloc(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	for i := 0; i < 256; i++ {
		r.Insert(tup(s, fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", i)))
	}
	key := tup(s, "a3", "")
	count := 0
	visit := func(pos int, tuple []term.ID) bool { count++; return true }
	r.Scan(1, key, 0, r.Len(), visit) // builds and catches up the column-0 index
	if n := testing.AllocsPerRun(200, func() {
		count = 0
		r.Scan(1, key, 0, r.Len(), visit)
		if count != 32 {
			t.Fatalf("Scan matched %d tuples, want 32", count)
		}
	}); n != 0 {
		t.Fatalf("warm indexed Scan allocates %.1f per call, want 0", n)
	}
}
