package rel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func tup(s *term.Store, syms ...string) []term.ID {
	out := make([]term.ID, len(syms))
	for i, sym := range syms {
		out[i] = s.Constant(sym)
	}
	return out
}

func TestInsertDedup(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	if !r.Insert(tup(s, "a", "b")) {
		t.Fatal("first insert reported duplicate")
	}
	if r.Insert(tup(s, "a", "b")) {
		t.Fatal("duplicate insert reported new")
	}
	if !r.Insert(tup(s, "b", "a")) {
		t.Fatal("reversed tuple rejected")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(tup(s, "a", "b")) || r.Contains(tup(s, "a", "z")) {
		t.Fatal("Contains wrong")
	}
}

func TestInsertCopies(t *testing.T) {
	s := term.NewStore()
	r := New(1)
	buf := tup(s, "a")
	r.Insert(buf)
	buf[0] = s.Constant("b")
	if !r.Contains(tup(s, "a")) {
		t.Fatal("relation aliased caller's buffer")
	}
}

func TestZeroArity(t *testing.T) {
	r := New(0)
	if !r.Insert(nil) {
		t.Fatal("nullary insert failed")
	}
	if r.Insert([]term.ID{}) {
		t.Fatal("nullary fact inserted twice")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	s := term.NewStore()
	New(2).Insert(tup(s, "a"))
}

func TestScanByMask(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	r.Insert(tup(s, "a", "1"))
	r.Insert(tup(s, "a", "2"))
	r.Insert(tup(s, "b", "1"))

	var got []string
	key := []term.ID{s.Constant("a"), 0}
	r.Scan(1, key, 0, r.Len(), func(pos int, tuple []term.ID) bool {
		got = append(got, s.String(tuple[1]))
		return true
	})
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("Scan mask=1 got %v", got)
	}

	// Second column bound.
	got = nil
	key = []term.ID{0, s.Constant("1")}
	r.Scan(2, key, 0, r.Len(), func(pos int, tuple []term.ID) bool {
		got = append(got, s.String(tuple[0]))
		return true
	})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Scan mask=2 got %v", got)
	}
}

func TestScanDeltaWindow(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	r.Insert(tup(s, "a", "1"))
	r.Insert(tup(s, "a", "2"))
	lo := r.Len()
	r.Insert(tup(s, "a", "3"))

	var got []string
	key := []term.ID{s.Constant("a"), 0}
	r.Scan(1, key, lo, r.Len(), func(pos int, tuple []term.ID) bool {
		got = append(got, s.String(tuple[1]))
		return true
	})
	if len(got) != 1 || got[0] != "3" {
		t.Fatalf("delta scan got %v, want [3]", got)
	}
}

func TestScanIndexCatchesUpAfterBuild(t *testing.T) {
	s := term.NewStore()
	r := New(2)
	r.Insert(tup(s, "a", "1"))
	// Build the index early...
	n := 0
	r.Scan(1, tup(s, "a", "1"), 0, r.Len(), func(int, []term.ID) bool { n++; return true })
	if n != 1 {
		t.Fatalf("first scan saw %d", n)
	}
	// ...then insert more and make sure the index absorbs them.
	r.Insert(tup(s, "b", "1"))
	r.Insert(tup(s, "a", "2"))
	n = 0
	r.Scan(1, tup(s, "a", "1"), 0, r.Len(), func(int, []term.ID) bool { n++; return true })
	if n != 2 {
		t.Fatalf("second scan saw %d, want 2", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := term.NewStore()
	r := New(1)
	for _, c := range []string{"a", "b", "c"} {
		r.Insert(tup(s, c))
	}
	n := 0
	r.Scan(0, nil, 0, r.Len(), func(int, []term.ID) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop saw %d", n)
	}
}

func TestDBRelAndDump(t *testing.T) {
	s := term.NewStore()
	db := NewDB(s)
	edge := db.Rel("edge", 2)
	edge.Insert(tup(s, "b", "c"))
	edge.Insert(tup(s, "a", "b"))
	db.Rel("node", 1).Insert(tup(s, "a"))

	if db.Rel("edge", 2) != edge {
		t.Fatal("Rel did not return existing relation")
	}
	if db.FactCount() != 3 {
		t.Fatalf("FactCount = %d", db.FactCount())
	}
	want := "edge(a,b)\nedge(b,c)\nnode(a)\n"
	if got := db.Dump(); got != want {
		t.Fatalf("Dump:\n%s\nwant:\n%s", got, want)
	}
	if db.Lookup("nope") != nil {
		t.Fatal("Lookup invented a relation")
	}
}

func TestDBRelArityConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity conflict")
		}
	}()
	db := NewDB(term.NewStore())
	db.Rel("r", 1)
	db.Rel("r", 2)
}

// Property: Scan with a full-column mask finds exactly the inserted tuple
// multiset (deduped), regardless of insertion order.
func TestQuickScanFindsAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := term.NewStore()
		r := New(2)
		inserted := map[string]bool{}
		for i := 0; i < 50; i++ {
			a := string(rune('a' + rng.Intn(5)))
			b := string(rune('a' + rng.Intn(5)))
			r.Insert(tup(s, a, b))
			inserted[a+","+b] = true
		}
		if r.Len() != len(inserted) {
			return false
		}
		// Every inserted tuple is findable with the first column bound.
		for k := range inserted {
			parts := strings.SplitN(k, ",", 2)
			found := false
			r.Scan(1, tup(s, parts[0], parts[1]), 0, r.Len(), func(_ int, tuple []term.ID) bool {
				if s.String(tuple[1]) == parts[1] {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := term.NewStore()
	ids := make([]term.ID, 1000)
	for i := range ids {
		ids[i] = s.Constant(string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	r := New(2)
	for i := 0; i < b.N; i++ {
		r.Insert([]term.ID{ids[i%1000], ids[(i*7)%1000]})
	}
}

func BenchmarkIndexedScan(b *testing.B) {
	s := term.NewStore()
	r := New(2)
	for i := 0; i < 10000; i++ {
		r.Insert(tup(s, string(rune('a'+i%26)), string(rune('a'+(i/26)%26))))
	}
	key := tup(s, "a", "a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r.Scan(1, key, 0, r.Len(), func(int, []term.ID) bool { n++; return true })
	}
}
