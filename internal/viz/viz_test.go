package viz

import (
	"strings"
	"testing"

	"repro/internal/alarm"
	"repro/internal/diagnosis"
	"repro/internal/petri"
	"repro/internal/unfold"
)

func TestNetDOT(t *testing.T) {
	dot := Net(petri.Example())
	for _, want := range []string{
		"digraph net",
		`"1" [shape=doublecircle]`, // marked place
		`"2" [shape=circle]`,       // unmarked place
		`"i" [shape=box`,
		`"1" -> "i"`,
		`"i" -> "2"`,
		"cluster_0", "cluster_1", // one per peer
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestNetDOTSilent(t *testing.T) {
	n := petri.NewNet()
	n.AddPlace("a", "p")
	n.AddPlace("b", "p")
	n.AddTransition("h", "p", petri.Silent, []petri.NodeID{"a"}, []petri.NodeID{"b"})
	pn, err := petri.New(n, petri.NewMarking("a"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Net(pn), "(silent)") {
		t.Fatal("silent transition not marked")
	}
}

func TestUnfoldingDOTShading(t *testing.T) {
	u := unfold.Build(petri.Example(), unfold.Options{MaxDepth: 2, MaxEvents: 1000})
	shaded := map[string]bool{"f(i,g(r,1),g(r,7))": true}
	dot := Unfolding(u, shaded)
	if strings.Count(dot, "fillcolor=gray80") != 1 {
		t.Fatalf("expected exactly one shaded event:\n%s", dot)
	}
	if !strings.Contains(dot, `label="i\nb@p1"`) {
		t.Fatalf("event label missing:\n%s", dot)
	}
}

func TestDiagnosisAndReportDOT(t *testing.T) {
	pn := petri.Example()
	rep, err := diagnosis.Run(pn, alarm.S("b", "p1", "a", "p2", "c", "p1"),
		diagnosis.EngineDirect, diagnosis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Report(pn, rep)
	// Two explanations -> two digraphs, each with three shaded events.
	if strings.Count(out, "digraph unfolding") != 2 {
		t.Fatalf("expected 2 graphs:\n%s", out)
	}
	if strings.Count(out, "fillcolor=gray80") != 6 {
		t.Fatalf("expected 6 shaded events total, got %d", strings.Count(out, "fillcolor=gray80"))
	}
}

func TestEscape(t *testing.T) {
	if escape(`a"b`) != `"a\"b"` {
		t.Fatalf("escape = %s", escape(`a"b`))
	}
}
