// Package viz renders nets, unfoldings and diagnoses as Graphviz DOT —
// the paper's own requirement: "In practice, this set will have to be
// 'explained' to a human supervisor and represented (preferably
// graphically) in a compact form" (Section 2).
//
// Diagnoses render as the unfolding prefix with the explanation's events
// shaded, mirroring Figure 2's shaded configuration.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/diagnosis"
	"repro/internal/petri"
	"repro/internal/unfold"
)

// escape quotes a DOT identifier.
func escape(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// Net renders a Petri net: circles for places (doubled when initially
// marked), boxes for transitions labeled with their alarm, clustered by
// peer.
func Net(pn *petri.PetriNet) string {
	var b strings.Builder
	b.WriteString("digraph net {\n  rankdir=LR;\n")
	byPeer := map[petri.Peer][]string{}
	for _, pl := range pn.Net.Places() {
		p := pn.Net.Place(pl)
		shape := "circle"
		if pn.M0[pl] {
			shape = "doublecircle"
		}
		byPeer[p.Peer] = append(byPeer[p.Peer],
			fmt.Sprintf("    %s [shape=%s];", escape(string(pl)), shape))
	}
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		label := fmt.Sprintf("%s\\n%s", tid, t.Alarm)
		if t.Alarm == petri.Silent {
			label = fmt.Sprintf("%s\\n(silent)", tid)
		}
		byPeer[t.Peer] = append(byPeer[t.Peer],
			fmt.Sprintf("    %s [shape=box,label=%s];", escape(string(tid)), escape(label)))
	}
	peers := make([]string, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, string(p))
	}
	sort.Strings(peers)
	for i, p := range peers {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%s;\n", i, escape(p))
		for _, line := range byPeer[petri.Peer(p)] {
			b.WriteString(line + "\n")
		}
		b.WriteString("  }\n")
	}
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		for _, pl := range t.Pre {
			fmt.Fprintf(&b, "  %s -> %s;\n", escape(string(pl)), escape(string(tid)))
		}
		for _, pl := range t.Post {
			fmt.Fprintf(&b, "  %s -> %s;\n", escape(string(tid)), escape(string(pl)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Unfolding renders a branching process, optionally shading a set of
// events (by canonical name) — Figure 2's presentation. Conditions render
// as circles labeled with their place, events as boxes labeled with their
// transition and alarm.
func Unfolding(u *unfold.Unfolding, shaded map[string]bool) string {
	var b strings.Builder
	b.WriteString("digraph unfolding {\n  rankdir=TB;\n")
	condID := func(c *unfold.Condition) string { return fmt.Sprintf("c%d", c.Index) }
	eventID := func(e *unfold.Event) string { return fmt.Sprintf("e%d", e.Index) }

	for _, c := range u.Conditions {
		fmt.Fprintf(&b, "  %s [shape=circle,label=%s];\n", condID(c), escape(string(c.Place)))
	}
	for _, e := range u.Events {
		style := ""
		if shaded[e.Name] {
			style = ",style=filled,fillcolor=gray80"
		}
		label := fmt.Sprintf("%s\\n%s@%s", e.Trans, e.Alarm, e.Peer)
		fmt.Fprintf(&b, "  %s [shape=box,label=%s%s];\n", eventID(e), escape(label), style)
	}
	for _, e := range u.Events {
		for _, c := range e.Pre {
			fmt.Fprintf(&b, "  %s -> %s;\n", condID(c), eventID(e))
		}
		for _, c := range e.Post {
			fmt.Fprintf(&b, "  %s -> %s;\n", eventID(e), condID(c))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Diagnosis renders one explanation over a bounded unfolding of the net:
// the configuration's events are shaded, everything else is context — the
// compact graphical form the supervisor reads.
func Diagnosis(pn *petri.PetriNet, cfg []string, maxDepth int) string {
	if maxDepth == 0 {
		maxDepth = len(cfg) + 2
	}
	u := unfold.Build(pn, unfold.Options{MaxDepth: maxDepth, MaxEvents: 20000})
	shaded := map[string]bool{}
	for _, name := range cfg {
		shaded[name] = true
	}
	return Unfolding(u, shaded)
}

// Report renders every explanation of a diagnosis report as a DOT digraph
// separated by blank lines (one graph per explanation).
func Report(pn *petri.PetriNet, rep *diagnosis.Report) string {
	var parts []string
	for _, cfg := range rep.Diagnoses {
		parts = append(parts, Diagnosis(pn, cfg, 0))
	}
	return strings.Join(parts, "\n")
}
