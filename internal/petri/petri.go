// Package petri implements the system model of Section 2: safe Petri nets
// whose places and transitions are distributed over peers, with an alarm
// symbol on every transition (Definitions 1-2).
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a place or transition of the net. The paper uses
// numbers for places and roman numerals for transitions; any distinct
// strings work.
type NodeID string

// Alarm is an alarm symbol (the α labeling of transitions). The empty
// alarm marks an unobservable ("hidden") transition, used by the Section
// 4.4 extension.
type Alarm string

// Silent is the alarm of unobservable transitions.
const Silent Alarm = ""

// Peer names the owner of a node (the φ labeling).
type Peer string

// Place is a place node.
type Place struct {
	ID   NodeID
	Peer Peer
}

// Transition is a transition node with its preset (parent places), postset
// (child places) and alarm symbol.
type Transition struct {
	ID    NodeID
	Peer  Peer
	Alarm Alarm
	Pre   []NodeID // parent places, in declaration order
	Post  []NodeID // child places
}

// Net is the static structure (Definition 1) of a finite net.
type Net struct {
	places     map[NodeID]*Place
	trans      map[NodeID]*Transition
	placeOrder []NodeID
	transOrder []NodeID
	consumers  map[NodeID][]NodeID // place -> transitions with it in Pre
	producers  map[NodeID][]NodeID // place -> transitions with it in Post
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{
		places:    make(map[NodeID]*Place),
		trans:     make(map[NodeID]*Transition),
		consumers: make(map[NodeID][]NodeID),
		producers: make(map[NodeID][]NodeID),
	}
}

// AddPlace adds a place. It panics on duplicate IDs — net construction
// errors are programming errors.
func (n *Net) AddPlace(id NodeID, peer Peer) {
	if _, ok := n.places[id]; ok {
		panic(fmt.Sprintf("petri: duplicate place %q", id))
	}
	if _, ok := n.trans[id]; ok {
		panic(fmt.Sprintf("petri: id %q already names a transition", id))
	}
	n.places[id] = &Place{ID: id, Peer: peer}
	n.placeOrder = append(n.placeOrder, id)
}

// AddTransition adds a transition with its preset and postset places.
func (n *Net) AddTransition(id NodeID, peer Peer, alarm Alarm, pre, post []NodeID) {
	if _, ok := n.trans[id]; ok {
		panic(fmt.Sprintf("petri: duplicate transition %q", id))
	}
	if _, ok := n.places[id]; ok {
		panic(fmt.Sprintf("petri: id %q already names a place", id))
	}
	t := &Transition{ID: id, Peer: peer, Alarm: alarm,
		Pre: append([]NodeID(nil), pre...), Post: append([]NodeID(nil), post...)}
	n.trans[id] = t
	n.transOrder = append(n.transOrder, id)
	for _, p := range pre {
		n.consumers[p] = append(n.consumers[p], id)
	}
	for _, p := range post {
		n.producers[p] = append(n.producers[p], id)
	}
}

// Place returns the place with the given ID, or nil.
func (n *Net) Place(id NodeID) *Place { return n.places[id] }

// Transition returns the transition with the given ID, or nil.
func (n *Net) Transition(id NodeID) *Transition { return n.trans[id] }

// Places returns place IDs in declaration order.
func (n *Net) Places() []NodeID { return append([]NodeID(nil), n.placeOrder...) }

// Transitions returns transition IDs in declaration order.
func (n *Net) Transitions() []NodeID { return append([]NodeID(nil), n.transOrder...) }

// Consumers returns the transitions that have place p in their preset.
func (n *Net) Consumers(p NodeID) []NodeID { return n.consumers[p] }

// Producers returns the transitions that have place p in their postset.
func (n *Net) Producers(p NodeID) []NodeID { return n.producers[p] }

// Peers returns the peers of the net, in first-appearance order.
func (n *Net) Peers() []Peer {
	seen := map[Peer]bool{}
	var out []Peer
	for _, id := range n.placeOrder {
		if p := n.places[id].Peer; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, id := range n.transOrder {
		if p := n.trans[id].Peer; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Validate checks structural sanity: every edge endpoint exists, every
// transition has at least one parent (a parentless transition could fire
// unboundedly), and alarms of observable transitions are nonempty strings.
func (n *Net) Validate() error {
	for _, id := range n.transOrder {
		t := n.trans[id]
		if len(t.Pre) == 0 {
			return fmt.Errorf("petri: transition %q has no parent places", id)
		}
		for _, p := range append(append([]NodeID(nil), t.Pre...), t.Post...) {
			if _, ok := n.places[p]; !ok {
				return fmt.Errorf("petri: transition %q references unknown place %q", id, p)
			}
		}
		seen := map[NodeID]bool{}
		for _, p := range t.Pre {
			if seen[p] {
				return fmt.Errorf("petri: transition %q lists parent %q twice", id, p)
			}
			seen[p] = true
		}
	}
	return nil
}

// Marking is a set of marked places.
type Marking map[NodeID]bool

// NewMarking builds a marking from place IDs.
func NewMarking(ids ...NodeID) Marking {
	m := make(Marking, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// Clone copies the marking.
func (m Marking) Clone() Marking {
	out := make(Marking, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// Key renders the marking canonically, for state dedup.
func (m Marking) Key() string {
	ids := make([]string, 0, len(m))
	for k := range m {
		ids = append(ids, string(k))
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// PetriNet is a net with an initial marking (Definition 2).
type PetriNet struct {
	Net *Net
	M0  Marking
}

// New pairs a net with its initial marking, validating both.
func New(n *Net, m0 Marking) (*PetriNet, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	for p := range m0 {
		if n.Place(p) == nil {
			return nil, fmt.Errorf("petri: initial marking contains unknown place %q", p)
		}
	}
	return &PetriNet{Net: n, M0: m0}, nil
}

// Enabled reports whether transition t is enabled in m.
func (pn *PetriNet) Enabled(m Marking, t NodeID) bool {
	tr := pn.Net.Transition(t)
	if tr == nil {
		return false
	}
	for _, p := range tr.Pre {
		if !m[p] {
			return false
		}
	}
	return true
}

// EnabledSet returns the enabled transitions in declaration order.
func (pn *PetriNet) EnabledSet(m Marking) []NodeID {
	var out []NodeID
	for _, t := range pn.Net.Transitions() {
		if pn.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// Fire fires t in m and returns the successor marking M' = M - pre(t) +
// post(t). It returns an error if t is not enabled or if firing would
// violate safety (a post place already marked and not consumed).
func (pn *PetriNet) Fire(m Marking, t NodeID) (Marking, error) {
	if !pn.Enabled(m, t) {
		return nil, fmt.Errorf("petri: transition %q not enabled", t)
	}
	tr := pn.Net.Transition(t)
	next := m.Clone()
	for _, p := range tr.Pre {
		delete(next, p)
	}
	for _, p := range tr.Post {
		if next[p] {
			return nil, fmt.Errorf("petri: firing %q violates safety at place %q", t, p)
		}
		next[p] = true
	}
	return next, nil
}

// CheckSafe explores reachable markings (up to maxStates) and verifies
// the net is safe, i.e. no firing ever puts a second token on a place.
// It returns the number of states explored and whether exploration was
// exhaustive.
func (pn *PetriNet) CheckSafe(maxStates int) (states int, exhaustive bool, err error) {
	seen := map[string]bool{pn.M0.Key(): true}
	queue := []Marking{pn.M0}
	for len(queue) > 0 {
		if len(seen) > maxStates {
			return len(seen), false, nil
		}
		m := queue[0]
		queue = queue[1:]
		for _, t := range pn.EnabledSet(m) {
			next, err := pn.Fire(m, t)
			if err != nil {
				return len(seen), false, err
			}
			if k := next.Key(); !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return len(seen), true, nil
}

// Neighbors returns N eighb(p): the peers p' holding a transition that is
// a grandparent of some transition of p (Section 4.1), i.e. p' produces a
// place consumed by p. A peer is always its own neighbor if it has such
// internal wiring; the initial-marking "virtual root" also makes peers of
// root places relevant, so peers of preset places with no producer are
// included via the place's own peer.
func (pn *PetriNet) Neighbors(p Peer) []Peer {
	seen := map[Peer]bool{}
	var out []Peer
	add := func(q Peer) {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		if t.Peer != p {
			continue
		}
		for _, pl := range t.Pre {
			producers := pn.Net.Producers(pl)
			if len(producers) == 0 {
				add(pn.Net.Place(pl).Peer)
			}
			for _, prod := range producers {
				add(pn.Net.Transition(prod).Peer)
			}
		}
	}
	return out
}

// Mates returns M ates(p): the peers that hold a transition that is a
// grandparent of a grandchild of some transition at p (Section 4.1's
// notConf rules).
func (pn *PetriNet) Mates(p Peer) []Peer {
	seen := map[Peer]bool{}
	var out []Peer
	for _, tid := range pn.Net.Transitions() {
		t := pn.Net.Transition(tid)
		if t.Peer != p {
			continue
		}
		for _, pl := range t.Post {
			for _, child := range pn.Net.Consumers(pl) {
				ct := pn.Net.Transition(child)
				for _, cpl := range ct.Pre {
					for _, gp := range pn.Net.Producers(cpl) {
						q := pn.Net.Transition(gp).Peer
						if !seen[q] {
							seen[q] = true
							out = append(out, q)
						}
					}
				}
			}
		}
	}
	return out
}
