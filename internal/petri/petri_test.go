package petri

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExampleMatchesPaperProse(t *testing.T) {
	pn := Example()

	// α(i) = b, φ(i) = P1, •i = {1,7}, i• = {2,3}.
	i := pn.Net.Transition("i")
	if i.Alarm != "b" || i.Peer != "p1" {
		t.Fatalf("transition i: alarm=%q peer=%q", i.Alarm, i.Peer)
	}
	if len(i.Pre) != 2 || i.Pre[0] != "1" || i.Pre[1] != "7" {
		t.Fatalf("•i = %v", i.Pre)
	}
	if len(i.Post) != 2 || i.Post[0] != "2" || i.Post[1] != "3" {
		t.Fatalf("i• = %v", i.Post)
	}

	// "Transition i, ii and v are enabled."
	enabled := pn.EnabledSet(pn.M0)
	if len(enabled) != 3 || enabled[0] != "i" || enabled[1] != "ii" || enabled[2] != "v" {
		t.Fatalf("initially enabled = %v, want [i ii v]", enabled)
	}

	// "If transition i fires, the marking from places 1, 7 is removed and
	// places 2, 3 become marked."
	m, err := pn.Fire(pn.M0, "i")
	if err != nil {
		t.Fatal(err)
	}
	if m["1"] || m["7"] || !m["2"] || !m["3"] || !m["4"] {
		t.Fatalf("after i: %v", m)
	}

	// Two peers as in the figure.
	if peers := pn.Net.Peers(); len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
}

func TestExampleIsSafe(t *testing.T) {
	pn := Example()
	states, exhaustive, err := pn.CheckSafe(10000)
	if err != nil {
		t.Fatalf("safety violated: %v", err)
	}
	if !exhaustive {
		t.Fatalf("state space not exhausted in %d states", states)
	}
	if states < 4 {
		t.Fatalf("suspiciously small state space: %d", states)
	}
}

func TestExampleCrossPeerNeighbors(t *testing.T) {
	pn := Example()
	// P2's transition iv consumes place 3, produced by i at P1.
	found := false
	for _, p := range pn.Neighbors("p2") {
		if p == "p1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("p1 not a neighbor of p2: %v", pn.Neighbors("p2"))
	}
	// P1's transition i consumes place 7, produced by vi at P2.
	found = false
	for _, p := range pn.Neighbors("p1") {
		if p == "p2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("p2 not a neighbor of p1: %v", pn.Neighbors("p1"))
	}
}

func TestFireNotEnabled(t *testing.T) {
	pn := Example()
	if _, err := pn.Fire(pn.M0, "iv"); err == nil {
		t.Fatal("fired disabled transition")
	}
	if _, err := pn.Fire(pn.M0, "nope"); err == nil {
		t.Fatal("fired unknown transition")
	}
}

func TestUnsafeNetDetected(t *testing.T) {
	n := NewNet()
	n.AddPlace("a", "p")
	n.AddPlace("b", "p")
	n.AddPlace("c", "p")
	n.AddTransition("t1", "p", "x", []NodeID{"a"}, []NodeID{"c"})
	n.AddTransition("t2", "p", "y", []NodeID{"b"}, []NodeID{"c"})
	pn, err := New(n, NewMarking("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pn.CheckSafe(100); err == nil {
		t.Fatal("double marking of c not detected")
	}
}

func TestValidateRejectsBadNets(t *testing.T) {
	n := NewNet()
	n.AddPlace("a", "p")
	n.AddTransition("t", "p", "x", nil, nil)
	if err := n.Validate(); err == nil {
		t.Fatal("parentless transition accepted")
	}

	n2 := NewNet()
	n2.AddPlace("a", "p")
	n2.AddTransition("t", "p", "x", []NodeID{"missing"}, nil)
	if err := n2.Validate(); err == nil {
		t.Fatal("dangling edge accepted")
	}

	n3 := NewNet()
	n3.AddPlace("a", "p")
	n3.AddTransition("t", "p", "x", []NodeID{"a", "a"}, nil)
	if err := n3.Validate(); err == nil {
		t.Fatal("duplicate parent accepted")
	}
}

func TestDuplicateIDsPanic(t *testing.T) {
	n := NewNet()
	n.AddPlace("a", "p")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	n.AddTransition("a", "p", "x", nil, nil)
}

func TestPad2(t *testing.T) {
	pn := Example()
	padded, err := Pad2(pn)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTwoParent(padded) {
		t.Fatal("Pad2 left a non-2-parent transition")
	}
	// Padding preserves safety.
	if _, exhaustive, err := padded.CheckSafe(10000); err != nil || !exhaustive {
		t.Fatalf("padded net unsafe or too large: %v", err)
	}
	// Same initially enabled transitions.
	a := pn.EnabledSet(pn.M0)
	b := padded.EnabledSet(padded.M0)
	if len(a) != len(b) {
		t.Fatalf("enabled sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enabled sets differ: %v vs %v", a, b)
		}
	}
	if !PadPlace("pad.ii") || PadPlace("2") {
		t.Fatal("PadPlace misclassifies")
	}
}

func TestPad2RejectsWidePresets(t *testing.T) {
	n := NewNet()
	for _, id := range []NodeID{"a", "b", "c"} {
		n.AddPlace(id, "p")
	}
	n.AddTransition("t", "p", "x", []NodeID{"a", "b", "c"}, nil)
	pn, err := New(n, NewMarking("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pad2(pn); err == nil {
		t.Fatal("3-parent transition accepted")
	}
}

// Property: padded and original nets produce identical observable alarm
// streams under the same random choices (pad transitions never change the
// enabled set of original transitions).
func TestQuickPad2PreservesExecutions(t *testing.T) {
	f := func(seed int64) bool {
		pn := Example()
		padded, err := Pad2(pn)
		if err != nil {
			return false
		}
		e1, _ := pn.RandomExecution(rand.New(rand.NewSource(seed)), 12)
		e2, _ := padded.RandomExecution(rand.New(rand.NewSource(seed)), 12)
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomExecutionRespectsEnabledness(t *testing.T) {
	pn := Example()
	rng := rand.New(rand.NewSource(7))
	exec, _ := pn.RandomExecution(rng, 20)
	if len(exec) == 0 {
		t.Fatal("no firings")
	}
	// Replay and verify every firing was legal.
	m := pn.M0.Clone()
	for _, f := range exec {
		if !pn.Enabled(m, f.Trans) {
			t.Fatalf("illegal firing %v", f)
		}
		var err error
		m, err = pn.Fire(m, f.Trans)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestObservedAlarmsAndInterleave(t *testing.T) {
	exec := Execution{
		{Trans: "i", Alarm: "b", Peer: "p1"},
		{Trans: "h", Alarm: Silent, Peer: "p1"},
		{Trans: "iv", Alarm: "a", Peer: "p2"},
		{Trans: "iii", Alarm: "c", Peer: "p1"},
	}
	per := exec.ObservedAlarms()
	if len(per["p1"]) != 2 || per["p1"][0] != "b" || per["p1"][1] != "c" {
		t.Fatalf("p1 alarms %v", per["p1"])
	}
	if len(per["p2"]) != 1 {
		t.Fatalf("p2 alarms %v", per["p2"])
	}

	rng := rand.New(rand.NewSource(3))
	seq := Interleave(rng, per)
	if len(seq) != 3 {
		t.Fatalf("interleaving %v", seq)
	}
	// Per-peer order must be preserved.
	var p1 []Alarm
	for _, o := range seq {
		if o.Peer == "p1" {
			p1 = append(p1, o.Alarm)
		}
	}
	if len(p1) != 2 || p1[0] != "b" || p1[1] != "c" {
		t.Fatalf("p1 order broken: %v", p1)
	}
}

// Property: any interleaving preserves per-peer subsequences.
func TestQuickInterleavePreservesPeerOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		per := map[Peer][]Alarm{
			"p1": []Alarm{"a", "b", "c", "d"}[:1+rng.Intn(4)],
			"p2": []Alarm{"x", "y", "z"}[:1+rng.Intn(3)],
		}
		seq := Interleave(rng, per)
		got := map[Peer][]Alarm{}
		for _, o := range seq {
			got[o.Peer] = append(got[o.Peer], o.Alarm)
		}
		for p, want := range per {
			if len(got[p]) != len(want) {
				return false
			}
			for i := range want {
				if got[p][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkingKeyCanonical(t *testing.T) {
	m1 := NewMarking("b", "a")
	m2 := NewMarking("a", "b")
	if m1.Key() != m2.Key() {
		t.Fatal("marking key not canonical")
	}
	if m1.Key() == NewMarking("a").Key() {
		t.Fatal("distinct markings share key")
	}
}

func TestMatesOfExample(t *testing.T) {
	pn := Example()
	// i@p1 produces 3, consumed by iv@p2 whose other grandparents trace
	// back through producers of 3 = {i}. So p1 is a mate of p1 (via its
	// own grandchildren) and mates sets are nonempty.
	if len(pn.Mates("p1")) == 0 {
		t.Fatal("p1 has no mates")
	}
}

func BenchmarkFireExample(b *testing.B) {
	pn := Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := pn.Fire(pn.M0, "i")
		if err != nil || len(m) != 3 {
			b.Fatal("fire failed")
		}
	}
}
